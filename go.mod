module dra4wfms

go 1.22
