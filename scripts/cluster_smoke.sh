#!/bin/sh
# cluster_smoke.sh — failover drill for the clustered document pool:
#
#   1. provision a throwaway trust bundle (drakeys)
#   2. start three drapool nodes and a draportal coordinating them with
#      -cluster-nodes (2 replicas per region), all race-detector builds
#   3. poll GET /v1/readyz until the whole fleet reports ready
#   4. drive Figure 9B workflows through the clustered portal
#   5. ask `dractl cluster status -row` which node leads the region of an
#      upcoming row, and kill -9 exactly that node mid-load
#   6. keep driving: every post-kill run must succeed — acknowledged
#      writes keep flowing and nothing previously acked is lost (the
#      drives re-read their own documents through the portal)
#   7. assert the portal's /v1/readyz converges back to ready-or-degraded
#      and the directory shows the dead node demoted everywhere
#   8. SIGTERM the portal and surviving nodes; all must exit 0
#
# Run from the repository root: ./scripts/cluster_smoke.sh
set -eu

WORK="$(mktemp -d)"
PORT="${CLUSTER_PORT:-19080}"
P1="${CLUSTER_POOL1_PORT:-19301}"
P2="${CLUSTER_POOL2_PORT:-19302}"
P3="${CLUSTER_POOL3_PORT:-19303}"
trap 'kill "$PORTAL_PID" "$N1_PID" "$N2_PID" "$N3_PID" 2>/dev/null || true; rm -rf "$WORK"' EXIT
PORTAL_PID=""; N1_PID=""; N2_PID=""; N3_PID=""

# Race-detector builds: the drill doubles as a concurrency gate for the
# coordinator's write/repair paths under real process churn.
go build -race -o "$WORK/drapool" ./cmd/drapool
go build -race -o "$WORK/draportal" ./cmd/draportal
go build -o "$WORK/drakeys" ./cmd/drakeys
go build -o "$WORK/dractl" ./cmd/dractl

"$WORK/drakeys" -out "$WORK/deploy" \
	-principals designer@acme,alice@acme,bob@acme,betty@bolt,carol@bolt,dave@acme,tfc@cloud \
	-bits 2048 >/dev/null

"$WORK/drapool" -listen "127.0.0.1:$P1" -node-id n1 -grace 5s &
N1_PID=$!
"$WORK/drapool" -listen "127.0.0.1:$P2" -node-id n2 -grace 5s &
N2_PID=$!
"$WORK/drapool" -listen "127.0.0.1:$P3" -node-id n3 -grace 5s &
N3_PID=$!

wait_ready() {
	_port=$1
	_pid=$2
	_name=$3
	echo "cluster_smoke: waiting for $_name readiness on port $_port (pid $_pid)"
	for _ in $(seq 1 50); do
		if curl -fsS "http://127.0.0.1:$_port/v1/readyz" >/dev/null 2>&1; then
			return 0
		fi
		if ! kill -0 "$_pid" 2>/dev/null; then
			echo "cluster_smoke: FAIL: $_name died before becoming ready" >&2
			exit 1
		fi
		sleep 0.2
	done
	echo "cluster_smoke: FAIL: $_name /v1/readyz never reported ready" >&2
	exit 1
}

wait_ready "$P1" "$N1_PID" "drapool n1"
wait_ready "$P2" "$N2_PID" "drapool n2"
wait_ready "$P3" "$N3_PID" "drapool n3"

# The coordinator joins only once the fleet answers: its readyz gates on
# every region having a live primary.
"$WORK/draportal" \
	-listen "127.0.0.1:$PORT" \
	-trust "$WORK/deploy/trust.json" \
	-cluster-nodes "n1=http://127.0.0.1:$P1,n2=http://127.0.0.1:$P2,n3=http://127.0.0.1:$P3" \
	-replicas 2 \
	-cluster-wal "$WORK/replication-outbox.wal" \
	-cluster-status "$WORK/cluster.json" \
	-grace 10s &
PORTAL_PID=$!
wait_ready "$PORT" "$PORTAL_PID" draportal

drive() {
	"$WORK/dractl" remote \
		-portal "http://127.0.0.1:$PORT" \
		-deploy "$WORK/deploy" \
		-workflow fig9a >/dev/null
}

echo "cluster_smoke: fleet ready; driving pre-kill load"
drive
drive

# Pick the kill target the way an adversarial operator would: ask the
# directory which node leads the region documents land in.
TARGET="$("$WORK/dractl" cluster status -url "http://127.0.0.1:$PORT" -row "proc-upcoming" | awk '{print $2}')"
case "$TARGET" in
n1) TARGET_PID=$N1_PID ;;
n2) TARGET_PID=$N2_PID ;;
n3) TARGET_PID=$N3_PID ;;
*)
	echo "cluster_smoke: FAIL: could not resolve kill target (got '$TARGET')" >&2
	exit 1
	;;
esac

echo "cluster_smoke: killing pool node $TARGET (pid $TARGET_PID) with SIGKILL mid-load"
kill -9 "$TARGET_PID"

# Acknowledged writes must keep flowing with the primary dead: each drive
# stores documents and re-reads them through the portal, so a lost acked
# write or a stalled region fails the run.
drive
drive
drive
echo "cluster_smoke: post-kill drives succeeded (no acknowledged write lost)"

# readyz must converge back to 200 — ready, or degraded while the repair
# loop re-replicates, never stuck unready.
READY=""
for _ in $(seq 1 50); do
	if BODY="$(curl -fsS "http://127.0.0.1:$PORT/v1/readyz" 2>/dev/null)"; then
		READY="$BODY"
		break
	fi
	sleep 0.2
done
case "$READY" in
*ready* | *degraded*) echo "cluster_smoke: portal readyz converged: $READY" ;;
*)
	echo "cluster_smoke: FAIL: portal readyz did not converge after the kill (last: '$READY')" >&2
	exit 1
	;;
esac

# The directory must show the dead node demoted everywhere: not alive,
# leading nothing, backing nothing it could serve.
curl -fsS "http://127.0.0.1:$PORT/v1/cluster/status" >"$WORK/status.json"
python3 - "$WORK/status.json" "$TARGET" <<'PYEOF'
import json, sys

st = json.load(open(sys.argv[1]))
target = sys.argv[2]

dead = {n["id"]: n for n in st["nodes"]}[target]
if dead.get("alive"):
    sys.exit(f"cluster_smoke: FAIL: killed node {target} still marked alive")
if dead.get("primaries", 0) != 0:
    sys.exit(f"cluster_smoke: FAIL: killed node {target} still leads {dead['primaries']} region(s)")
for r in st["regions"]:
    leaders = [v["node"] for v in r["replicas"] if v.get("primary")]
    if not leaders:
        sys.exit(f"cluster_smoke: FAIL: region {r['id']} has no primary after failover")
    if leaders[0] == target:
        sys.exit(f"cluster_smoke: FAIL: region {r['id']} still led by the dead node")
print(f"cluster_smoke: directory converged — {target} demoted, every region has a live primary")
PYEOF

echo "cluster_smoke: sending SIGTERM to the portal and surviving nodes"
kill -TERM "$PORTAL_PID"
if ! wait "$PORTAL_PID"; then
	echo "cluster_smoke: FAIL: draportal exited with nonzero status after SIGTERM" >&2
	exit 1
fi

for SURVIVOR in "$N1_PID" "$N2_PID" "$N3_PID"; do
	[ "$SURVIVOR" = "$TARGET_PID" ] && continue
	kill -TERM "$SURVIVOR"
	if ! wait "$SURVIVOR"; then
		echo "cluster_smoke: FAIL: a surviving drapool exited with nonzero status after SIGTERM" >&2
		exit 1
	fi
done

echo "cluster_smoke: PASS (kill -9 of $TARGET lost no acknowledged write; fleet converged and shut down cleanly)"
