#!/bin/sh
# probe_smoke.sh — end-to-end lifecycle check for draportal + dratfc:
#
#   1. provision a throwaway trust bundle (drakeys)
#   2. start draportal and dratfc with durable data dirs
#   3. poll GET /v1/readyz until both report ready
#   4. check GET /v1/healthz
#   5. drive one Figure 9B workflow through both servers (dractl remote)
#   6. scrape GET /v1/traces on both tiers and assert the drive produced
#      one complete multi-tier distributed trace (http, portal, pool,
#      dsig spans on the portal; tfc spans on the TFC) bound to the
#      workflow instance
#   7. send SIGTERM and assert a clean exit (code 0)
#   8. assert the final checkpoint landed in the data dir
#
# Run from the repository root: ./scripts/probe_smoke.sh
set -eu

WORK="$(mktemp -d)"
PORT="${PROBE_PORT:-18080}"
TFC_PORT="${PROBE_TFC_PORT:-18081}"
trap 'kill "$PID" 2>/dev/null || true; kill "$TFC_PID" 2>/dev/null || true; rm -rf "$WORK"' EXIT

go build -o "$WORK/draportal" ./cmd/draportal
go build -o "$WORK/dratfc" ./cmd/dratfc
go build -o "$WORK/drakeys" ./cmd/drakeys
go build -o "$WORK/dractl" ./cmd/dractl

"$WORK/drakeys" -out "$WORK/deploy" \
	-principals designer@acme,alice@acme,bob@acme,betty@bolt,carol@bolt,dave@acme,tfc@cloud \
	-bits 2048 >/dev/null

"$WORK/draportal" \
	-listen "127.0.0.1:$PORT" \
	-trust "$WORK/deploy/trust.json" \
	-data-dir "$WORK/data" \
	-checkpoint-interval 0 \
	-grace 10s &
PID=$!

"$WORK/dratfc" \
	-listen "127.0.0.1:$TFC_PORT" \
	-trust "$WORK/deploy/trust.json" \
	-key "$WORK/deploy/keys/tfc@cloud.pem" \
	-grace 10s &
TFC_PID=$!

wait_ready() {
	_port=$1
	_pid=$2
	_name=$3
	echo "probe_smoke: waiting for $_name readiness on port $_port (pid $_pid)"
	for _ in $(seq 1 50); do
		if curl -fsS "http://127.0.0.1:$_port/v1/readyz" >/dev/null 2>&1; then
			return 0
		fi
		if ! kill -0 "$_pid" 2>/dev/null; then
			echo "probe_smoke: FAIL: $_name died before becoming ready" >&2
			exit 1
		fi
		sleep 0.2
	done
	echo "probe_smoke: FAIL: $_name /v1/readyz never reported ready" >&2
	exit 1
}

wait_ready "$PORT" "$PID" draportal
wait_ready "$TFC_PORT" "$TFC_PID" dratfc

curl -fsS "http://127.0.0.1:$PORT/v1/healthz" >/dev/null
echo "probe_smoke: both tiers ready and live; driving one fig9b workflow"

"$WORK/dractl" remote \
	-portal "http://127.0.0.1:$PORT" \
	-tfc "http://127.0.0.1:$TFC_PORT" \
	-deploy "$WORK/deploy" \
	-workflow fig9b >/dev/null

echo "probe_smoke: drive complete; scraping /v1/traces on both tiers"
curl -fsS "http://127.0.0.1:$PORT/v1/traces" >"$WORK/portal_traces.json"
curl -fsS "http://127.0.0.1:$TFC_PORT/v1/traces" >"$WORK/tfc_traces.json"

python3 - "$WORK/portal_traces.json" "$WORK/tfc_traces.json" <<'PYEOF'
import json, sys

portal = json.load(open(sys.argv[1]))
tfc = json.load(open(sys.argv[2]))

bindings = portal.get("bindings") or {}
if not bindings:
    sys.exit("probe_smoke: FAIL: portal has no instance->trace bindings after the drive")
trace_id = next(iter(bindings.values()))

portal_tiers = {s["tier"] for s in portal.get("spans") or [] if s["trace_id"] == trace_id}
tfc_tiers = {s["tier"] for s in tfc.get("spans") or [] if s["trace_id"] == trace_id}

# The client-tier root span lives in the dractl process's own ring, so
# the portal can only ever hold the server-side tiers.
missing = {"http", "portal", "pool", "dsig"} - portal_tiers
if missing:
    sys.exit(f"probe_smoke: FAIL: portal trace {trace_id} missing tiers {sorted(missing)} (got {sorted(portal_tiers)})")
if "tfc" not in tfc_tiers:
    sys.exit(f"probe_smoke: FAIL: TFC recorded no tfc-tier spans for trace {trace_id} (got {sorted(tfc_tiers)})")
print(f"probe_smoke: trace {trace_id} spans portal tiers {sorted(portal_tiers)} + tfc tiers {sorted(tfc_tiers)}")
PYEOF

echo "probe_smoke: multi-tier trace verified; sending SIGTERM"

kill -TERM "$TFC_PID"
if ! wait "$TFC_PID"; then
	echo "probe_smoke: FAIL: dratfc exited with nonzero status after SIGTERM" >&2
	exit 1
fi

kill -TERM "$PID"
if wait "$PID"; then
	STATUS=0
else
	STATUS=$?
fi
if [ "$STATUS" != 0 ]; then
	echo "probe_smoke: FAIL: draportal exited with status $STATUS after SIGTERM" >&2
	exit 1
fi

if ! ls "$WORK/data"/checkpoint-*.ckpt >/dev/null 2>&1; then
	echo "probe_smoke: FAIL: no final checkpoint in $WORK/data" >&2
	ls -la "$WORK/data" >&2 || true
	exit 1
fi

echo "probe_smoke: PASS (multi-tier trace, graceful shutdown, final checkpoint written)"
