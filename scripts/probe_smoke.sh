#!/bin/sh
# probe_smoke.sh — end-to-end lifecycle check for draportal:
#
#   1. provision a throwaway trust bundle (drakeys)
#   2. start draportal with a durable data dir
#   3. poll GET /v1/readyz until it reports ready
#   4. check GET /v1/healthz
#   5. send SIGTERM and assert a clean exit (code 0)
#   6. assert the final checkpoint landed in the data dir
#
# Run from the repository root: ./scripts/probe_smoke.sh
set -eu

WORK="$(mktemp -d)"
PORT="${PROBE_PORT:-18080}"
trap 'kill "$PID" 2>/dev/null || true; rm -rf "$WORK"' EXIT

go build -o "$WORK/draportal" ./cmd/draportal
go build -o "$WORK/drakeys" ./cmd/drakeys

"$WORK/drakeys" -out "$WORK/deploy" -principals smoke@ci -bits 2048 >/dev/null

"$WORK/draportal" \
	-listen "127.0.0.1:$PORT" \
	-trust "$WORK/deploy/trust.json" \
	-data-dir "$WORK/data" \
	-checkpoint-interval 0 \
	-grace 10s &
PID=$!

echo "probe_smoke: waiting for readiness on port $PORT (pid $PID)"
READY=0
for _ in $(seq 1 50); do
	if curl -fsS "http://127.0.0.1:$PORT/v1/readyz" >/dev/null 2>&1; then
		READY=1
		break
	fi
	if ! kill -0 "$PID" 2>/dev/null; then
		echo "probe_smoke: FAIL: draportal died before becoming ready" >&2
		exit 1
	fi
	sleep 0.2
done
if [ "$READY" != 1 ]; then
	echo "probe_smoke: FAIL: /v1/readyz never reported ready" >&2
	exit 1
fi

curl -fsS "http://127.0.0.1:$PORT/v1/healthz" >/dev/null
echo "probe_smoke: ready and live; sending SIGTERM"

kill -TERM "$PID"
if wait "$PID"; then
	STATUS=0
else
	STATUS=$?
fi
if [ "$STATUS" != 0 ]; then
	echo "probe_smoke: FAIL: draportal exited with status $STATUS after SIGTERM" >&2
	exit 1
fi

if ! ls "$WORK/data"/checkpoint-*.ckpt >/dev/null 2>&1; then
	echo "probe_smoke: FAIL: no final checkpoint in $WORK/data" >&2
	ls -la "$WORK/data" >&2 || true
	exit 1
fi

echo "probe_smoke: PASS (graceful shutdown, final checkpoint written)"
