#!/bin/sh
# chaos_smoke.sh — partition drill through the chaos control plane:
#
#   1. provision a throwaway trust bundle (drakeys)
#   2. start three drapool nodes in -chaos mode and a draportal
#      coordinating them with -cluster-nodes (2 replicas per region) and
#      -max-inflight admission control, all race-detector builds
#   3. poll GET /v1/readyz until the whole fleet reports ready
#   4. drive Figure 9A workflows through the clustered portal
#   5. ask `dractl cluster status -row` which node leads the region of an
#      upcoming row, then POST {"action":"isolate"} to that node's
#      /v1/chaos control plane — an asymmetric partition, not a kill:
#      the process stays up but refuses every non-chaos request with 503
#   6. keep driving: every mid-partition run must succeed — acknowledged
#      writes keep flowing through the promoted backup and each drive
#      re-reads its own documents, so a lost acked write fails the run
#   7. POST {"action":"heal_node"} and assert the coordinator's repair
#      loop auto-rejoins the healed node (alive in /v1/cluster/status)
#      without any operator rejoin call
#   8. SIGTERM everything; all must exit 0
#
# Run from the repository root: ./scripts/chaos_smoke.sh
set -eu

WORK="$(mktemp -d)"
PORT="${CHAOS_PORT:-19090}"
P1="${CHAOS_POOL1_PORT:-19311}"
P2="${CHAOS_POOL2_PORT:-19312}"
P3="${CHAOS_POOL3_PORT:-19313}"
SEED="${CHAOS_SEED:-7}"
trap 'kill "$PORTAL_PID" "$N1_PID" "$N2_PID" "$N3_PID" 2>/dev/null || true; rm -rf "$WORK"' EXIT
PORTAL_PID=""; N1_PID=""; N2_PID=""; N3_PID=""

# Race-detector builds: the drill doubles as a concurrency gate for the
# failover, auto-rejoin, and admission paths under injected faults.
go build -race -o "$WORK/drapool" ./cmd/drapool
go build -race -o "$WORK/draportal" ./cmd/draportal
go build -o "$WORK/drakeys" ./cmd/drakeys
go build -o "$WORK/dractl" ./cmd/dractl

"$WORK/drakeys" -out "$WORK/deploy" \
	-principals designer@acme,alice@acme,bob@acme,betty@bolt,carol@bolt,dave@acme,tfc@cloud \
	-bits 2048 >/dev/null

"$WORK/drapool" -listen "127.0.0.1:$P1" -node-id n1 -chaos -chaos-seed "$SEED" -grace 5s &
N1_PID=$!
"$WORK/drapool" -listen "127.0.0.1:$P2" -node-id n2 -chaos -chaos-seed "$SEED" -grace 5s &
N2_PID=$!
"$WORK/drapool" -listen "127.0.0.1:$P3" -node-id n3 -chaos -chaos-seed "$SEED" -grace 5s &
N3_PID=$!

wait_ready() {
	_port=$1
	_pid=$2
	_name=$3
	echo "chaos_smoke: waiting for $_name readiness on port $_port (pid $_pid)"
	for _ in $(seq 1 50); do
		if curl -fsS "http://127.0.0.1:$_port/v1/readyz" >/dev/null 2>&1; then
			return 0
		fi
		if ! kill -0 "$_pid" 2>/dev/null; then
			echo "chaos_smoke: FAIL: $_name died before becoming ready" >&2
			exit 1
		fi
		sleep 0.2
	done
	echo "chaos_smoke: FAIL: $_name /v1/readyz never reported ready" >&2
	exit 1
}

wait_ready "$P1" "$N1_PID" "drapool n1"
wait_ready "$P2" "$N2_PID" "drapool n2"
wait_ready "$P3" "$N3_PID" "drapool n3"

# -max-inflight exercises the admission wiring end to end: the drill's
# drives must pass untouched (well under the bound), and the flag proves
# the daemon accepts and installs the gate.
"$WORK/draportal" \
	-listen "127.0.0.1:$PORT" \
	-trust "$WORK/deploy/trust.json" \
	-cluster-nodes "n1=http://127.0.0.1:$P1,n2=http://127.0.0.1:$P2,n3=http://127.0.0.1:$P3" \
	-replicas 2 \
	-cluster-wal "$WORK/replication-outbox.wal" \
	-max-inflight 128 \
	-grace 10s &
PORTAL_PID=$!
wait_ready "$PORT" "$PORTAL_PID" draportal

drive() {
	"$WORK/dractl" remote \
		-portal "http://127.0.0.1:$PORT" \
		-deploy "$WORK/deploy" \
		-workflow fig9a >/dev/null
}

echo "chaos_smoke: fleet ready; driving pre-partition load"
drive
drive

# Partition the node an adversarial operator would: the one leading the
# region that upcoming documents land in.
TARGET="$("$WORK/dractl" cluster status -url "http://127.0.0.1:$PORT" -row "proc-upcoming" | awk '{print $2}')"
case "$TARGET" in
n1) TARGET_PORT=$P1 ;;
n2) TARGET_PORT=$P2 ;;
n3) TARGET_PORT=$P3 ;;
*)
	echo "chaos_smoke: FAIL: could not resolve partition target (got '$TARGET')" >&2
	exit 1
	;;
esac

echo "chaos_smoke: isolating pool node $TARGET via its chaos control plane"
curl -fsS -X POST "http://127.0.0.1:$TARGET_PORT/v1/chaos" \
	-d "{\"action\":\"isolate\",\"node\":\"$TARGET\"}" >/dev/null

# The partitioned node must refuse data-plane traffic (503) while its
# chaos control plane stays reachable — that is the whole point of
# enforcing partitions above the listener.
if curl -fsS "http://127.0.0.1:$TARGET_PORT/v1/readyz" >/dev/null 2>&1; then
	echo "chaos_smoke: FAIL: isolated node $TARGET still answers readyz" >&2
	exit 1
fi
curl -fsS "http://127.0.0.1:$TARGET_PORT/v1/chaos" >/dev/null

# Acknowledged writes must keep flowing across the partition: each drive
# stores documents and re-reads them through the portal, so a lost acked
# write or a stalled region fails the run.
drive
drive
drive
echo "chaos_smoke: mid-partition drives succeeded (no acknowledged write lost)"

echo "chaos_smoke: healing $TARGET"
curl -fsS -X POST "http://127.0.0.1:$TARGET_PORT/v1/chaos" \
	-d "{\"action\":\"heal_node\",\"node\":\"$TARGET\"}" >/dev/null

# The coordinator's repair loop probes suspected members and must
# readmit the healed node on its own — no operator rejoin call.
REJOINED=""
for _ in $(seq 1 100); do
	if curl -fsS "http://127.0.0.1:$PORT/v1/cluster/status" >"$WORK/status.json" 2>/dev/null &&
		python3 - "$WORK/status.json" "$TARGET" <<'PYEOF'
import json, sys

st = json.load(open(sys.argv[1]))
node = {n["id"]: n for n in st["nodes"]}.get(sys.argv[2], {})
sys.exit(0 if node.get("alive") else 1)
PYEOF
	then
		REJOINED=yes
		break
	fi
	sleep 0.2
done
if [ -z "$REJOINED" ]; then
	echo "chaos_smoke: FAIL: healed node $TARGET was not auto-rejoined" >&2
	exit 1
fi
echo "chaos_smoke: repair loop auto-rejoined $TARGET"

# Post-heal, the fleet serves and every region has a live primary.
drive
curl -fsS "http://127.0.0.1:$PORT/v1/cluster/status" >"$WORK/status.json"
python3 - "$WORK/status.json" <<'PYEOF'
import json, sys

st = json.load(open(sys.argv[1]))
for n in st["nodes"]:
    if not n.get("alive"):
        sys.exit(f"chaos_smoke: FAIL: node {n['id']} still dead after heal")
for r in st["regions"]:
    if not [v for v in r["replicas"] if v.get("primary")]:
        sys.exit(f"chaos_smoke: FAIL: region {r['id']} has no primary after heal")
print("chaos_smoke: directory converged — all nodes alive, every region led")
PYEOF

echo "chaos_smoke: sending SIGTERM to the portal and pool nodes"
kill -TERM "$PORTAL_PID"
if ! wait "$PORTAL_PID"; then
	echo "chaos_smoke: FAIL: draportal exited with nonzero status after SIGTERM" >&2
	exit 1
fi
for NODE_PID in "$N1_PID" "$N2_PID" "$N3_PID"; do
	kill -TERM "$NODE_PID"
	if ! wait "$NODE_PID"; then
		echo "chaos_smoke: FAIL: a drapool exited with nonzero status after SIGTERM" >&2
		exit 1
	fi
done

echo "chaos_smoke: PASS (partition of $TARGET lost no acknowledged write; heal auto-rejoined it; fleet shut down cleanly)"
