// Root benchmarks: one testing.B benchmark per table and figure of the
// paper's evaluation, plus the ablations indexed in DESIGN.md. They wrap
// the runners of internal/bench; `cmd/drabench` prints the same results as
// paper-style tables.
//
// Run: go test -bench=. -benchmem
package dra4wfms

import (
	"fmt"
	"testing"
	"time"

	"dra4wfms/internal/aea"
	"dra4wfms/internal/bench"
	"dra4wfms/internal/document"
	"dra4wfms/internal/pool"
	"dra4wfms/internal/portal"
	"dra4wfms/internal/testenv"
	"dra4wfms/internal/tfc"
	"dra4wfms/internal/wfdef"
	"dra4wfms/internal/xmlenc"
)

// benchBits is the RSA modulus size for benchmarks: 2048 mirrors a real
// deployment (and the 2012 prototype's key class). Keys are cached
// process-wide, so only the first benchmark pays generation cost.
const benchBits = 2048

// BenchmarkTable1 regenerates Table 1: one op = one complete run of the
// Figure 9A workflow (two passes, 10 activity executions) under the basic
// operational model, measuring the AEA α (verify+decrypt) and β
// (encrypt+sign) phases per document. Custom metrics report the final
// document size (the paper's Σ for X_D(1)) and the terminal α.
func BenchmarkTable1(b *testing.B) {
	var rows []bench.Table1Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = bench.RunTable1(benchBits, 1)
		if err != nil {
			b.Fatal(err)
		}
	}
	last := rows[len(rows)-1]
	b.ReportMetric(float64(last.Sigma), "finalDocBytes")
	b.ReportMetric(float64(last.Alpha.Microseconds()), "alphaLast_us")
	b.ReportMetric(float64(last.Beta.Microseconds()), "betaLast_us")
}

// BenchmarkTable2 regenerates Table 2: one op = one complete run of the
// Figure 9B workflow under the advanced operational model (every hop via
// the TFC server), reporting the terminal sizes and the TFC γ phase.
func BenchmarkTable2(b *testing.B) {
	var rows []bench.Table2Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = bench.RunTable2(benchBits, 1)
		if err != nil {
			b.Fatal(err)
		}
	}
	last := rows[len(rows)-1]
	b.ReportMetric(float64(last.Sigma), "finalDocBytes")
	b.ReportMetric(float64(last.Alpha.Microseconds()), "alphaLast_us")
	b.ReportMetric(float64(last.Gamma.Microseconds()), "gammaLast_us")
}

// BenchmarkSignatureCascadeDepth isolates the linear α term of Tables 1
// and 2: full-document verification against the number of cascaded CERs.
func BenchmarkSignatureCascadeDepth(b *testing.B) {
	env := testenv.Fig9(benchBits)
	for _, depth := range []int{1, 4, 16, 64} {
		depth := depth
		b.Run(fmt.Sprintf("cers-%d", depth), func(b *testing.B) {
			doc := buildChain(b, env, depth)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := doc.VerifyAll(env.Registry); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(doc.Size()), "docBytes")
		})
	}
}

// buildChain produces a document with a linear cascade of n CERs by
// executing a generated n-activity sequence.
func buildChain(b *testing.B, env *testenv.Env, n int) *document.Document {
	b.Helper()
	builder := wfdef.NewBuilder("chain", "designer@acme")
	prev := ""
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("S%03d", i)
		builder = builder.Activity(id, "", "alice@acme").Response("v", "string", false).Done()
		if prev == "" {
			builder = builder.Start(id)
		} else {
			builder = builder.Edge(prev, id)
		}
		prev = id
	}
	def, err := builder.End(prev).DefaultReaders("alice@acme").Build()
	if err != nil {
		b.Fatal(err)
	}
	env.MustRegister("alice@acme")
	doc, err := document.New(def, env.KeyOf("designer@acme"), testenv.ProcessID(), time.Now())
	if err != nil {
		b.Fatal(err)
	}
	agent := aea.New(env.KeyOf("alice@acme"), env.Registry)
	cur := doc
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("S%03d", i)
		out, err := agent.Execute(cur, id, aea.Inputs{"v": "x"}, time.Now())
		if err != nil {
			b.Fatal(err)
		}
		cur = out.Doc
		if next := fmt.Sprintf("S%03d", i+1); out.Routed[next] != nil {
			cur = out.Routed[next]
		}
	}
	return cur
}

// BenchmarkNonrepScope measures Algorithm 1 (nonrepudiation-scope
// derivation) against document size; it is pure graph closure, no crypto.
func BenchmarkNonrepScope(b *testing.B) {
	env := testenv.Fig9(benchBits)
	for _, depth := range []int{4, 16, 64} {
		depth := depth
		b.Run(fmt.Sprintf("cers-%d", depth), func(b *testing.B) {
			doc := buildChain(b, env, depth)
			last := fmt.Sprintf("cer-S%03d-0", depth-1)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := doc.NonrepudiationScope(last); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkElementwiseVsWholeDoc compares the paper's element-wise
// encryption against whole-result encryption (Section 2 design choice).
func BenchmarkElementwiseVsWholeDoc(b *testing.B) {
	env := testenv.Fig9(benchBits)
	env.MustRegister("amy@x", "bob@x")
	recips := []xmlenc.Recipient{
		{ID: "amy@x", Key: env.KeyOf("amy@x").Public()},
		{ID: "bob@x", Key: env.KeyOf("bob@x").Public()},
	}
	const fields = 8
	mk := func() []*documentField {
		out := make([]*documentField, fields)
		for i := range out {
			out[i] = &documentField{name: fmt.Sprintf("v%d", i), value: "the execution result payload"}
		}
		return out
	}
	b.Run("elementwise", func(b *testing.B) {
		fs := mk()
		for i := 0; i < b.N; i++ {
			for _, f := range fs {
				if _, err := xmlenc.Encrypt(document.Field(f.name, f.value), "e", recips...); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("wholedoc", func(b *testing.B) {
		fs := mk()
		for i := 0; i < b.N; i++ {
			whole := document.Field("all", "")
			for _, f := range fs {
				whole.AppendChild(document.Field(f.name, f.value))
			}
			if _, err := xmlenc.Encrypt(whole, "e", recips...); err != nil {
				b.Fatal(err)
			}
		}
	})
}

type documentField struct{ name, value string }

// BenchmarkMultiRecipient measures granting k readers access to one
// element (k RSA-OAEP wraps of the shared CEK).
func BenchmarkMultiRecipient(b *testing.B) {
	env := testenv.New(benchBits)
	for _, k := range []int{1, 4, 16} {
		k := k
		b.Run(fmt.Sprintf("readers-%d", k), func(b *testing.B) {
			recips := make([]xmlenc.Recipient, k)
			for i := range recips {
				id := fmt.Sprintf("reader%03d@x", i)
				recips[i] = xmlenc.Recipient{ID: id, Key: env.KeyOf(id).Public()}
			}
			field := document.Field("v", "confidential")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := xmlenc.Encrypt(field, "e", recips...); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTFCThroughput measures the TFC server's per-document processing
// (verify + unwrap + policy-encrypt + stamp + sign + route) — the Section
// 4.1 "TFC is not the bottleneck" claim.
func BenchmarkTFCThroughput(b *testing.B) {
	env := testenv.Fig9(benchBits)
	def := wfdef.Fig9B()
	server := tfc.New(env.KeyOf("tfc@cloud"), env.Registry, time.Now)
	// Pre-build b.N intermediate documents outside the timed region.
	docs := make([]*document.Document, b.N)
	for i := range docs {
		agent := aea.New(env.KeyOf(wfdef.Fig9Participants["A"]), env.Registry)
		doc, err := document.New(def, env.KeyOf("designer@acme"), testenv.ProcessID(), time.Now())
		if err != nil {
			b.Fatal(err)
		}
		docs[i], err = agent.ExecuteToTFC(doc, "A", aea.Inputs{"request": "r"})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := server.Process(docs[i]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAEAOpen measures the receive-side α phase alone on a mid-run
// Figure 9A document.
func BenchmarkAEAOpen(b *testing.B) {
	env := testenv.Fig9(benchBits)
	def := wfdef.Fig9A()
	doc, err := document.New(def, env.KeyOf("designer@acme"), testenv.ProcessID(), time.Now())
	if err != nil {
		b.Fatal(err)
	}
	aAgent := aea.New(env.KeyOf(wfdef.Fig9Participants["A"]), env.Registry)
	out, err := aAgent.Execute(doc, "A", aea.Inputs{"request": "r"}, time.Now())
	if err != nil {
		b.Fatal(err)
	}
	received := out.Routed["B1"]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// A fresh agent per op: Open marks no replay state, but agents are
		// cheap and this keeps iterations independent.
		agent := aea.New(env.KeyOf(wfdef.Fig9Participants["B1"]), env.Registry)
		if _, err := agent.Open(received, "B1"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineVsDRA compares one plaintext engine-based instance against
// one full-crypto DRA4WfMS instance (single accepting pass of Figure 9A).
func BenchmarkEngineVsDRA(b *testing.B) {
	b.Run("engine-baseline", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := bench.RunEngineVsDRA(benchBits, 1); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkPoolPutGetScan measures document-pool primitives with
// region splitting enabled.
func BenchmarkPoolPutGetScan(b *testing.B) {
	b.Run("put4k", func(b *testing.B) {
		tbl := newBenchTable(b)
		val := make([]byte, 4096)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := tbl.Put(fmt.Sprintf("proc-%09d", i), "doc", "content", val); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("get4k", func(b *testing.B) {
		tbl := newBenchTable(b)
		val := make([]byte, 4096)
		const rows = 10000
		for i := 0; i < rows; i++ {
			tbl.Put(fmt.Sprintf("proc-%09d", i), "doc", "content", val)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, ok := tbl.Get(fmt.Sprintf("proc-%09d", i%rows), "doc", "content"); !ok {
				b.Fatal("row lost")
			}
		}
	})
	b.Run("scan10k", func(b *testing.B) {
		tbl := newBenchTable(b)
		for i := 0; i < 10000; i++ {
			tbl.Put(fmt.Sprintf("proc-%09d", i), "meta", "state", []byte("running"))
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if got := len(tbl.Scan(pool.ScanOptions{Family: "meta"})); got != 10000 {
				b.Fatalf("scan = %d", got)
			}
		}
	})
}

func newBenchTable(b *testing.B) *pool.Table {
	b.Helper()
	c, err := pool.NewCluster([]string{"rs1", "rs2", "rs3"}, 8<<20)
	if err != nil {
		b.Fatal(err)
	}
	tbl, err := c.CreateTable("bench",
		pool.FamilySpec{Name: "doc"}, pool.FamilySpec{Name: "meta"})
	if err != nil {
		b.Fatal(err)
	}
	return tbl
}

// BenchmarkScalabilitySim runs the calibrated discrete-event comparison at
// a fixed load (it is a simulation: one op = simulating 200 instances).
func BenchmarkScalabilitySim(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := bench.RunScalability([]int{200}, time.Millisecond, 4*time.Millisecond, time.Millisecond, 2)
		if len(rows) != 2 {
			b.Fatal("bad row count")
		}
	}
}

// BenchmarkPortalLifecycle measures one full cloud-tier instance per op:
// StoreInitial, then five retrieve→execute→store cycles through the
// portal (the user-visible end-to-end cost of Figure 7's deployment).
func BenchmarkPortalLifecycle(b *testing.B) {
	env := testenv.Fig9(benchBits)
	cluster, err := pool.NewCluster([]string{"rs1", "rs2"}, 1<<20)
	if err != nil {
		b.Fatal(err)
	}
	table, err := portal.CreateTable(cluster)
	if err != nil {
		b.Fatal(err)
	}
	p := portal.New("bench-portal", env.Registry, table, time.Now)
	def := wfdef.Fig9A()
	steps := []struct {
		act    string
		inputs aea.Inputs
	}{
		{"A", aea.Inputs{"request": "r"}},
		{"B1", aea.Inputs{"techReview": "ok"}},
		{"B2", aea.Inputs{"budgetReview": "ok"}},
		{"C", aea.Inputs{"summary": "s"}},
		{"D", aea.Inputs{"accept": "true"}},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		doc, err := document.New(def, env.KeyOf("designer@acme"), testenv.ProcessID(), time.Now())
		if err != nil {
			b.Fatal(err)
		}
		if _, err := p.StoreInitial(doc); err != nil {
			b.Fatal(err)
		}
		for _, s := range steps {
			participant := wfdef.Fig9Participants[s.act]
			cur, err := p.Retrieve(participant, doc.ProcessID())
			if err != nil {
				b.Fatal(err)
			}
			agent := aea.New(env.KeyOf(participant), env.Registry)
			out, err := agent.Execute(cur, s.act, s.inputs, time.Now())
			if err != nil {
				b.Fatal(err)
			}
			if _, err := p.Store(out.Doc); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkCryptoSuites regenerates the crypto-throughput ablation: one
// op = the full suite × seed/cold/warm hop sweep on the Figure 9A
// cascade, reporting the headline hops (see EXPERIMENTS.md).
func BenchmarkCryptoSuites(b *testing.B) {
	var rows []bench.CryptoRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = bench.RunCrypto(benchBits, 1)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		switch {
		case r.Suite == "rsa-sha256" && r.Mode == "seed":
			b.ReportMetric(float64(r.Hop.Microseconds()), "rsaSeedHop_us")
		case r.Suite == "rsa-sha256" && r.Mode == "warm":
			b.ReportMetric(float64(r.Hop.Microseconds()), "rsaWarmHop_us")
		case r.Suite == "ed25519" && r.Mode == "warm":
			b.ReportMetric(float64(r.Hop.Microseconds()), "edWarmHop_us")
		}
	}
}
