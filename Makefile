GO ?= go

.PHONY: check fmt vet lint lintdefs build test race bench benchsmoke faults crash smoke clustersmoke chaossmoke ratchet

# check is the CI gate: formatting, static analysis (go vet plus the
# repo's own dralint rules and the workflow-definition lint over every
# shipped definition), build, the benchmark smoke run for the
# verification fast path, the relay reliability gate, the pool
# crash-recovery gate, the daemon lifecycle smokes (single-node,
# clustered failover, and chaos partition), and the full test suite
# under the race detector.
check: fmt vet lint build lintdefs benchsmoke faults crash smoke clustersmoke chaossmoke race

# crash is the pool durability gate: kill-mid-write recovery (torn and
# bit-flipped WAL tails), checkpoint fallback, and concurrent
# mutations-during-checkpoint, all under the race detector. The race
# target covers these too; the split keeps the gate visible.
crash:
	$(GO) test -race -count=1 -run 'TestStore|TestSnapshot|TestServeGraceful|TestProbes' ./internal/pool/ ./internal/httpapi/

# smoke boots a real draportal with a durable data dir, waits for
# /v1/readyz, and asserts SIGTERM drains cleanly (exit 0) and writes a
# final checkpoint, then drives a workflow step and asserts the trace
# ring exposes a multi-tier trace at /v1/traces.
smoke:
	./scripts/probe_smoke.sh

# clustersmoke is the failover drill: three drapool nodes behind a
# clustered draportal (race builds), kill -9 the primary of an upcoming
# row's region mid-load, and assert no acknowledged write is lost, readyz
# converges back to ready-or-degraded, and shutdown stays clean.
clustersmoke:
	./scripts/cluster_smoke.sh

# chaossmoke is the partition drill: three drapool nodes in -chaos mode
# behind a clustered draportal with -max-inflight admission (race
# builds), the region leader isolated through its /v1/chaos control
# plane mid-load, and assertions that no acknowledged write is lost and
# the coordinator auto-rejoins the node after heal_node.
chaossmoke:
	./scripts/chaos_smoke.sh

# ratchet compares the two newest BENCH_<n>.json trajectories in the
# repo root and fails on >10% regressions in the recorded α/β/γ timings
# (record runs with `drabench -json`). CI runs the same comparator on
# two fresh scratch runs with a looser threshold.
ratchet:
	$(GO) run ./cmd/drabench -compare

# benchsmoke compiles and runs every dsig/xmltree benchmark once, so the
# fast-path benchmarks (BenchmarkVerifyAll, BenchmarkCanonicalMemo) cannot
# rot between perf-focused PRs.
benchsmoke:
	$(GO) test -run=NONE -bench=. -benchtime=1x ./internal/dsig/... ./internal/xmltree/...

# faults is the relay reliability gate: fault-injection workflows (20% of
# hops dropped/duplicated), crash recovery from the outbox WAL, and
# receiver-side idempotency, all under the race detector. The race target
# covers these too; the split keeps the gate visible and fast to re-run.
faults:
	$(GO) test -race -count=1 -run 'TestFaultInjection|TestCrashRecovery|TestReceiverIdempotency|TestOutboxTornTail' ./internal/relay/ ./internal/httpapi/

# lint runs the project's domain analyzers (discarded crypto errors,
# variable-time digest comparisons, nondeterministic verification inputs,
# leaked telemetry spans, locks held across I/O). See README "Static
# analysis".
lint:
	$(GO) run ./cmd/dralint ./...

# lintdefs runs the workflow-definition lint — control-flow, security
# policy, and the information-flow (concealment) pass — over every
# definition shipped with the examples. Errors fail the gate.
lintdefs:
	$(GO) run ./cmd/dractl lint fig9a fig9b fig4 leave-request expense-approval

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...
