GO ?= go

.PHONY: check fmt vet lint build test race bench

# check is the CI gate: formatting, static analysis (go vet plus the
# repo's own dralint rules), build, and the full test suite under the
# race detector.
check: fmt vet lint build race

# lint runs the project's domain analyzers (discarded crypto errors,
# variable-time digest comparisons, nondeterministic verification inputs,
# leaked telemetry spans, locks held across I/O). See README "Static
# analysis".
lint:
	$(GO) run ./cmd/dralint ./...

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...
