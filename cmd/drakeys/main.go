// drakeys provisions the trust fabric of a DRA4WfMS deployment: it creates
// a certification authority, generates and certifies a key pair for every
// named principal, and writes
//
//	<out>/trust.json      — the public trust bundle (issuer key + certs)
//	<out>/keys/<id>.pem   — each principal's private key (incl. the CA's)
//
// draportal and dratfc load trust.json; each participant tool and TFC
// server additionally loads its own PEM key.
//
// Usage:
//
//	drakeys -out ./deploy -principals alice@acme,bob@acme,tfc@cloud [-bits 2048]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"
	"time"

	"dra4wfms/internal/pki"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("drakeys: ")
	out := flag.String("out", "deploy", "output directory")
	principals := flag.String("principals", "", "comma-separated principal IDs")
	bits := flag.Int("bits", 2048, "RSA modulus size")
	validity := flag.Duration("validity", 365*24*time.Hour, "certificate validity")
	flag.Parse()

	ids := splitNonEmpty(*principals)
	if len(ids) == 0 {
		log.Fatal("no principals given (-principals a@x,b@y,...)")
	}
	keysDir := filepath.Join(*out, "keys")
	if err := os.MkdirAll(keysDir, 0o700); err != nil {
		log.Fatal(err)
	}

	ca, err := pki.NewCA("ca@dra4wfms", *bits)
	if err != nil {
		log.Fatal(err)
	}
	reg := pki.NewRegistry(ca)
	now := time.Now()

	writeKey := func(kp *pki.KeyPair) {
		pemBytes, err := pki.EncodePrivateKeyPEM(kp)
		if err != nil {
			log.Fatal(err)
		}
		path := filepath.Join(keysDir, sanitize(kp.Owner)+".pem")
		if err := os.WriteFile(path, pemBytes, 0o600); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("key     %s\n", path)
	}
	writeKey(ca.Keys)

	for _, id := range ids {
		kp, err := pki.GenerateKeyPair(id, *bits)
		if err != nil {
			log.Fatal(err)
		}
		org := ""
		if at := strings.IndexByte(id, '@'); at >= 0 {
			org = id[at+1:]
		}
		cert, err := ca.IssueKeys(pki.Identity{ID: id, DisplayName: id, Org: org}, kp, now, *validity)
		if err != nil {
			log.Fatal(err)
		}
		if err := reg.Register(cert, now); err != nil {
			log.Fatal(err)
		}
		writeKey(kp)
	}

	bundle, err := pki.ExportBundle(ca, reg)
	if err != nil {
		log.Fatal(err)
	}
	data, err := bundle.Marshal()
	if err != nil {
		log.Fatal(err)
	}
	trustPath := filepath.Join(*out, "trust.json")
	if err := os.WriteFile(trustPath, data, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bundle  %s (%d certificates)\n", trustPath, len(bundle.Certificates))
}

func splitNonEmpty(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// sanitize maps a principal ID to a safe file name.
func sanitize(id string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '.', r == '@', r == '_':
			return r
		}
		return '_'
	}, id)
}
