// dratfc runs a DRA4WfMS timestamp-and-flow-control server over HTTP (the
// advanced operational model's notary, Section 2.2 of the paper). It loads
// the deployment trust bundle plus its own private key (see drakeys).
//
// Usage:
//
//	dratfc -listen :8081 -trust deploy/trust.json -key deploy/keys/tfc@cloud.pem
package main

import (
	"flag"
	"log"
	"os"
	"time"

	"dra4wfms/internal/dsig"
	"dra4wfms/internal/httpapi"
	"dra4wfms/internal/pki"
	"dra4wfms/internal/telemetry"
	"dra4wfms/internal/tfc"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("dratfc: ")
	listen := flag.String("listen", ":8081", "listen address")
	trust := flag.String("trust", "deploy/trust.json", "trust bundle path")
	keyPath := flag.String("key", "", "this server's private-key PEM")
	pprofOn := flag.Bool("pprof", false, "serve /debug/pprof/* on the listen address")
	slowOps := flag.Duration("slowops", 0, "log spans slower than this duration (0 disables)")
	verifyWorkers := flag.Int("verify-workers", 0, "max concurrent signature verifications per document (0 = all cores, 1 = serial)")
	verifyCache := flag.Int("verify-cache", dsig.DefaultCacheSize, "verified-prefix cache entries (0 disables the cache)")
	flag.Parse()

	dsig.Configure(*verifyWorkers, *verifyCache)
	if *slowOps > 0 {
		telemetry.Default().SetSlowOpThreshold(*slowOps)
		telemetry.Default().SetSlowOpLogger(log.Default())
		log.Printf("logging operations slower than %s", *slowOps)
	}

	if *keyPath == "" {
		log.Fatal("missing -key (the TFC's private key PEM)")
	}
	keyPEM, err := os.ReadFile(*keyPath)
	if err != nil {
		log.Fatal(err)
	}
	keys, err := pki.DecodePrivateKeyPEM(keyPEM)
	if err != nil {
		log.Fatal(err)
	}
	data, err := os.ReadFile(*trust)
	if err != nil {
		log.Fatal(err)
	}
	bundle, err := pki.ParseBundle(data)
	if err != nil {
		log.Fatal(err)
	}
	reg, err := bundle.BuildRegistry(time.Now())
	if err != nil {
		log.Fatal(err)
	}

	server := tfc.New(keys, reg, time.Now)
	srv := httpapi.NewTFCServer(server, httpapi.NewAuthenticator(reg, time.Now))
	srv.EnablePprof = *pprofOn
	log.Printf("TFC %s serving on %s", keys.Owner, *listen)
	log.Fatal(httpapi.ListenAndServe(*listen, srv.Handler()))
}
