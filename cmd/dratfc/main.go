// dratfc runs a DRA4WfMS timestamp-and-flow-control server over HTTP (the
// advanced operational model's notary, Section 2.2 of the paper). It loads
// the deployment trust bundle plus its own private key (see drakeys).
//
// Usage:
//
//	dratfc -listen :8081 -trust deploy/trust.json -key deploy/keys/tfc@cloud.pem
//	       [-data-dir ./tfc-data] [-fsync=true] [-checkpoint-interval 5m]
//	       [-grace 15s]
//	       [-cluster-nodes n1=http://…,n2=http://…] [-replicas 2] [-cluster-wal FILE]
//
// With -data-dir the forwarding log — and with it the replay guard — is
// persisted through the crash-safe pool store: every ForwardRecord is
// journaled before the process response is acknowledged, and on boot the
// log is restored so already-notarized intermediates stay rejected across
// restarts. GET /v1/readyz reports 200 only after restore completes; on
// SIGINT/SIGTERM the server drains, writes a final checkpoint, and exits 0.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"dra4wfms/internal/chaos"
	"dra4wfms/internal/dsig"
	"dra4wfms/internal/httpapi"
	"dra4wfms/internal/pki"
	"dra4wfms/internal/pool"
	"dra4wfms/internal/poolcluster"
	"dra4wfms/internal/telemetry"
	"dra4wfms/internal/tfc"
	"dra4wfms/internal/trace"
)

// The persisted forwarding log lives in one durable pool table: one row
// per record, keyed by append index so scan order is append order.
const (
	stateTable  = "tfcstate"
	stateFamily = "rec"
	stateQual   = "json"
)

func stateRow(n uint64) string { return fmt.Sprintf("rec|%020d", n) }

// parseStateRow inverts stateRow, recovering the append index a persisted
// forwarding record was stored under.
func parseStateRow(row string) (uint64, error) {
	digits, ok := strings.CutPrefix(row, "rec|")
	if !ok {
		return 0, fmt.Errorf("not a forwarding-log row")
	}
	n, err := strconv.ParseUint(digits, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad index: %w", err)
	}
	return n, nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("dratfc: ")
	listen := flag.String("listen", ":8081", "listen address")
	trust := flag.String("trust", "deploy/trust.json", "trust bundle path")
	keyPath := flag.String("key", "", "this server's private-key PEM")
	dataDir := flag.String("data-dir", "", "durable state directory (WAL + checkpoints) for the forwarding log; empty keeps it memory-only")
	clusterNodes := flag.String("cluster-nodes", "", "store the forwarding log on a clustered pool: comma-separated id=url list of drapool nodes (mutually exclusive with -data-dir)")
	replicas := flag.Int("replicas", 2, "copies of each region across the drapool fleet, primary included (requires -cluster-nodes)")
	clusterWAL := flag.String("cluster-wal", "", "replication outbox WAL file; journaled replication intents survive restarts (requires -cluster-nodes)")
	fsync := flag.Bool("fsync", true, "fsync the state WAL on every record (requires -data-dir)")
	ckInterval := flag.Duration("checkpoint-interval", 5*time.Minute, "periodic state checkpoint interval (0 disables periodic checkpoints)")
	grace := flag.Duration("grace", 15*time.Second, "shutdown grace period for draining in-flight requests")
	pprofOn := flag.Bool("pprof", false, "serve /debug/pprof/* on the listen address")
	slowOps := flag.Duration("slowops", 0, "log spans slower than this duration (0 disables)")
	verifyWorkers := flag.Int("verify-workers", 0, "max concurrent signature verifications per document (0 = all cores, 1 = serial)")
	verifyCache := flag.Int("verify-cache", dsig.DefaultCacheSize, "verified-prefix cache entries (0 disables the cache)")
	suite := flag.String("suite", dsig.SignatureAlg, "signature suite for locally produced signatures; verification always honors each signature's recorded algorithm")
	traceOut := flag.String("trace-out", "", "append finished trace spans to this file as JSONL (empty disables the export; GET /v1/traces always serves the in-memory ring)")
	traceSample := flag.Float64("trace-sample", 1, "fraction of locally rooted traces to record, 0..1; hops continuing an inbound traceparent honor its sampled flag instead")
	maxInflight := flag.Int("max-inflight", 0, "admission control: shed requests beyond this many in flight with 429 (0 disables; probes always pass, writes shed before reads)")
	chaosOn := flag.Bool("chaos", false, "serve the "+chaos.AdminPath+" fault-injection control plane (TEST ONLY: unauthenticated)")
	chaosSeed := flag.Int64("chaos-seed", 42, "deterministic seed for the chaos fault PRNG (requires -chaos)")
	flag.Parse()

	dsig.Configure(*verifyWorkers, *verifyCache)
	if err := dsig.ConfigureSuite(*suite); err != nil {
		log.Fatalf("-suite: %v", err)
	}
	if *traceSample < 1 {
		trace.Default().SetSampler(trace.RatioSample(*traceSample))
		log.Printf("sampling %.0f%% of trace roots", *traceSample*100)
	}
	var traceFile *os.File
	if *traceOut != "" {
		f, err := os.OpenFile(*traceOut, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
		if err != nil {
			log.Fatalf("opening -trace-out: %v", err)
		}
		traceFile = f
		trace.Default().SetOutput(f)
		log.Printf("exporting trace spans to %s", *traceOut)
	}
	if *slowOps > 0 {
		telemetry.Default().SetSlowOpThreshold(*slowOps)
		telemetry.Default().SetSlowOpLogger(log.Default())
		log.Printf("logging operations slower than %s", *slowOps)
	}

	if *keyPath == "" {
		log.Fatal("missing -key (the TFC's private key PEM)")
	}
	keyPEM, err := os.ReadFile(*keyPath)
	if err != nil {
		log.Fatal(err)
	}
	keys, err := pki.DecodePrivateKeyPEM(keyPEM)
	if err != nil {
		log.Fatal(err)
	}
	data, err := os.ReadFile(*trust)
	if err != nil {
		log.Fatal(err)
	}
	bundle, err := pki.ParseBundle(data)
	if err != nil {
		log.Fatal(err)
	}
	reg, err := bundle.BuildRegistry(time.Now())
	if err != nil {
		log.Fatal(err)
	}

	server := tfc.New(keys, reg, time.Now)

	// Durable forwarding log: recover, restore into the server (re-arming
	// the replay guard), then journal every new record before the HTTP
	// response leaves the process. The log lives either in a local
	// crash-safe store (-data-dir) or on a clustered pool (-cluster-nodes),
	// where it shares the drapool fleet's table under the "rec|" prefix.
	var store *pool.Store
	var pc *poolcluster.Cluster
	var stateTab pool.DocTable
	if *clusterNodes != "" {
		if *dataDir != "" {
			log.Fatal("-cluster-nodes and -data-dir are mutually exclusive: with a clustered pool, durability lives on the drapool nodes")
		}
		refs, err := httpapi.ParseClusterNodes(*clusterNodes)
		if err != nil {
			log.Fatal(err)
		}
		pc, err = poolcluster.New(refs, poolcluster.Config{
			Replicas: *replicas,
			RelayDir: *clusterWAL,
		})
		if err != nil {
			log.Fatalf("joining pool cluster: %v", err)
		}
		stateTab = pc.NewSession()
		log.Printf("clustered forwarding log: %d nodes, %d replicas per region", len(refs), pc.Replicas())
	} else if *dataDir != "" {
		cluster, err := pool.NewCluster([]string{"tfc-rs"}, 0)
		if err != nil {
			log.Fatal(err)
		}
		table, err := cluster.CreateTable(stateTable, pool.FamilySpec{Name: stateFamily, MaxVersions: 1})
		if err != nil {
			log.Fatal(err)
		}
		var rep *pool.RecoveryReport
		store, rep, err = pool.Open(table, *dataDir, pool.StoreOptions{
			NoFsync:            !*fsync,
			CheckpointInterval: *ckInterval,
		})
		if err != nil {
			log.Fatalf("opening durable state in %s: %v", *dataDir, err)
		}
		log.Printf("durable state in %s: %s", *dataDir, rep.Summary())
		if rep.Damaged() {
			log.Printf("WARNING: recovery quarantined damaged WAL data (%s); inspect %s", rep.DamageReason, rep.QuarantineFile)
		}
		stateTab = table
	}
	if stateTab != nil {
		// seq is the next free row index. It must come from the highest
		// restored index, not the row count: a failed Put can leave a gap in
		// the rec|NNN sequence, and counting rows across such a gap would
		// make a future record overwrite an existing persisted row
		// (stateFamily keeps one version) and silently drop its replay-guard
		// entry.
		var restored []tfc.ForwardRecord
		var seq atomic.Uint64
		// The prefix scan matters on a clustered pool, where the table is
		// shared with portal document rows.
		for _, kv := range stateTab.Scan(pool.ScanOptions{Prefix: "rec|", Family: stateFamily}) {
			var rec tfc.ForwardRecord
			if err := json.Unmarshal(kv.Value, &rec); err != nil {
				log.Fatalf("decoding persisted record %s: %v", kv.Row, err)
			}
			restored = append(restored, rec)
			idx, err := parseStateRow(kv.Row)
			if err != nil {
				log.Fatalf("persisted record key %s: %v", kv.Row, err)
			}
			if idx+1 > seq.Load() {
				seq.Store(idx + 1)
			}
		}
		server.Restore(restored)
		if len(restored) > 0 {
			log.Printf("restored %d forwarding records (replay guard re-armed)", len(restored))
		}

		// A persistence failure fails the whole Process call (the client
		// sees an error and can retry) instead of acknowledging a response
		// whose replay guard would be disarmed by the next restart.
		server.OnRecord = func(rec tfc.ForwardRecord) error {
			raw, err := json.Marshal(rec)
			if err != nil {
				return fmt.Errorf("encoding forwarding record: %w", err)
			}
			return stateTab.Put(stateRow(seq.Add(1)-1), stateFamily, stateQual, raw)
		}
	}

	srv := httpapi.NewTFCServer(server, httpapi.NewAuthenticator(reg, time.Now))
	srv.EnablePprof = *pprofOn
	probes := httpapi.NewProbes()
	srv.Probes = probes
	if pc != nil {
		probes.AddCheck("cluster", pc.HealthCheck)
		probes.AddDegradedCheck("replication-lag", pc.LagCheck(1_000))
	}
	if *maxInflight > 0 {
		// The TFC's work is verify-bound: shed notarizations (writes) early
		// when the shared verify pool saturates, before the RSA is bought.
		srv.Admission = httpapi.NewAdmission(httpapi.AdmissionConfig{
			MaxInFlight: *maxInflight,
			VerifyDepth: dsig.PoolDepth,
		})
		log.Printf("admission control: max %d in-flight requests", *maxInflight)
	}
	probes.SetReady(true)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	handler := http.Handler(srv.Handler())
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatalf("listening on %s: %v", *listen, err)
	}
	if *chaosOn {
		cnet := chaos.NewNetwork(*chaosSeed)
		mux := http.NewServeMux()
		mux.Handle(chaos.AdminPath, cnet.Handler())
		mux.Handle("/", handler)
		handler = cnet.Gate("tfc", mux)
		ln = cnet.WrapListener("tfc", ln)
		log.Printf("CHAOS MODE: fault injection enabled (seed %d, control plane on %s)", *chaosSeed, chaos.AdminPath)
	}

	log.Printf("TFC %s serving on %s", keys.Owner, *listen)
	if err := httpapi.ServeListener(ctx, ln, handler, *grace, func() {
		log.Printf("shutdown requested, draining in-flight requests (grace %s)", *grace)
		probes.StartDraining()
	}); err != nil {
		log.Fatalf("serving: %v", err)
	}

	if pc != nil {
		qctx, qcancel := context.WithTimeout(context.Background(), 10*time.Second)
		if err := pc.Quiesce(qctx); err != nil {
			log.Printf("cluster quiesce: %v", err)
		}
		qcancel()
		if err := pc.Close(); err != nil {
			log.Printf("closing cluster coordinator: %v", err)
		}
	}
	if store != nil {
		if err := store.Close(); err != nil {
			log.Fatalf("final checkpoint: %v", err)
		}
		log.Printf("final checkpoint written to %s", store.Dir())
	}
	if traceFile != nil {
		trace.Default().SetOutput(nil)
		if err := traceFile.Close(); err != nil {
			log.Printf("closing trace export: %v", err)
		}
	}
	log.Print("shutdown complete")
}
