// dralint is the DRA4WfMS static-analysis gate: it runs the internal/lint
// analyzers — the machine-checked crypto and telemetry invariants of the
// engine-less architecture — over the module and exits non-zero on
// findings.
//
// Usage:
//
//	dralint [-json] [-rules LIST] [-tests=false] [-v] [packages]
//
// Packages default to ./... relative to the enclosing module root.
// Findings print as file:line:col: [rule] message; a //lint:ignore
// directive with a reason suppresses a finding (suppressed findings are
// listed with -v and counted in -json output).
//
// Exit status: 0 clean, 1 findings, 2 usage or load failure.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"dra4wfms/internal/lint"
)

func main() {
	fs := flag.NewFlagSet("dralint", flag.ExitOnError)
	jsonOut := fs.Bool("json", false, "emit machine-readable JSON on stdout")
	rules := fs.String("rules", "", "comma-separated analyzer subset (default: all)")
	withTests := fs.Bool("tests", true, "also load _test.go files (per-rule exemptions still apply)")
	verbose := fs.Bool("v", false, "list suppressed findings and type-check warnings")
	list := fs.Bool("list", false, "print the available analyzers and exit")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: dralint [-json] [-rules LIST] [-tests=false] [-v] [packages]")
		fs.PrintDefaults()
	}
	fs.Parse(os.Args[1:])

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers, err := lint.ByName(*rules)
	if err != nil {
		fatal(err)
	}

	cwd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	root, err := lint.FindModuleRoot(cwd)
	if err != nil {
		fatal(err)
	}
	loader, err := lint.NewLoader("", root)
	if err != nil {
		fatal(err)
	}
	loader.IncludeTests = *withTests

	patterns := fs.Args()
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fatal(err)
	}
	if len(pkgs) == 0 {
		fatal(fmt.Errorf("dralint: no packages matched %v", patterns))
	}
	if *verbose {
		for _, pkg := range pkgs {
			for _, terr := range pkg.TypeErrors {
				fmt.Fprintf(os.Stderr, "dralint: typecheck %s: %v\n", pkg.Path, terr)
			}
		}
	}

	res := lint.Run(pkgs, analyzers)

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			fatal(err)
		}
	} else {
		for _, d := range res.Diagnostics {
			fmt.Println(d)
		}
		if *verbose {
			for _, d := range res.Suppressed {
				fmt.Printf("%s (suppressed: %s)\n", d, d.SuppressReason)
			}
		}
		if n := len(res.Diagnostics); n > 0 {
			fmt.Fprintf(os.Stderr, "dralint: %d finding(s) in %d package(s)\n", n, len(pkgs))
		}
	}
	if len(res.Diagnostics) > 0 {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "dralint: %v\n", err)
	os.Exit(2)
}
