// dralint is the DRA4WfMS static-analysis gate: it runs the internal/lint
// analyzers — the machine-checked crypto and telemetry invariants of the
// engine-less architecture — over the module and exits non-zero on
// findings.
//
// Usage:
//
//	dralint [-json|-sarif] [-rules LIST] [-importer MODE] [-tests=false] [-v] [packages]
//
// Packages default to ./... relative to the enclosing module root.
// Findings print as file:line:col: [rule] message; a //lint:ignore
// directive with a reason suppresses a finding (suppressed findings are
// listed with -v and counted in -json and -sarif output).
//
// -sarif emits a SARIF 2.1.0 log on stdout for GitHub code-scanning
// upload, with file URIs relative to the module root. -importer picks
// how standard-library imports type-check: auto (export data, source
// fallback), gc, or source — CI runs the suite under both concrete
// modes.
//
// Exit status: 0 clean, 1 findings, 2 usage or load failure.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"dra4wfms/internal/lint"
)

func main() {
	fs := flag.NewFlagSet("dralint", flag.ExitOnError)
	jsonOut := fs.Bool("json", false, "emit machine-readable JSON on stdout")
	sarifOut := fs.Bool("sarif", false, "emit a SARIF 2.1.0 log on stdout (for code-scanning upload)")
	rules := fs.String("rules", "", "comma-separated analyzer subset (default: all)")
	importerMode := fs.String("importer", "auto", "stdlib importer: auto, gc, or source")
	withTests := fs.Bool("tests", true, "also load _test.go files (per-rule exemptions still apply)")
	verbose := fs.Bool("v", false, "list suppressed findings and type-check warnings")
	list := fs.Bool("list", false, "print the available analyzers and exit")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: dralint [-json|-sarif] [-rules LIST] [-importer MODE] [-tests=false] [-v] [packages]")
		fs.PrintDefaults()
	}
	fs.Parse(os.Args[1:])

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers, err := lint.ByName(*rules)
	if err != nil {
		fatal(err)
	}

	cwd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	root, err := lint.FindModuleRoot(cwd)
	if err != nil {
		fatal(err)
	}
	loader, err := lint.NewLoader("", root)
	if err != nil {
		fatal(err)
	}
	loader.IncludeTests = *withTests
	loader.Importer = *importerMode

	patterns := fs.Args()
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fatal(err)
	}
	if len(pkgs) == 0 {
		fatal(fmt.Errorf("dralint: no packages matched %v", patterns))
	}
	if *verbose {
		for _, pkg := range pkgs {
			for _, terr := range pkg.TypeErrors {
				fmt.Fprintf(os.Stderr, "dralint: typecheck %s: %v\n", pkg.Path, terr)
			}
		}
	}

	res := lint.Run(pkgs, analyzers)

	switch {
	case *sarifOut:
		if err := lint.WriteSARIF(os.Stdout, res, analyzers, root); err != nil {
			fatal(err)
		}
	case *jsonOut:
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			fatal(err)
		}
	default:
		for _, d := range res.Diagnostics {
			fmt.Println(d)
		}
		if *verbose {
			for _, d := range res.Suppressed {
				fmt.Printf("%s (suppressed: %s)\n", d, d.SuppressReason)
			}
		}
		if n := len(res.Diagnostics); n > 0 {
			fmt.Fprintf(os.Stderr, "dralint: %d finding(s) in %d package(s)\n", n, len(pkgs))
		}
	}
	if len(res.Diagnostics) > 0 {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "dralint: %v\n", err)
	os.Exit(2)
}
