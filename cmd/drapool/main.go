// drapool runs one node of a clustered DRA4WfMS document pool: it hosts
// a single documents table and serves the cluster-internal replication
// and read endpoints (/v1/cluster/*) a draportal or dratfc coordinator
// drives through -cluster-nodes. See DESIGN.md "Clustered pool".
//
// Usage:
//
//	drapool -listen :9201 -node-id n1 [-data-dir ./pool-n1]
//	        [-fsync=true] [-checkpoint-interval 5m] [-grace 15s]
//
// The node's table declares the union of the families every coordinator
// uses — the portal's documents families (doc, meta, idx) plus the TFC's
// forwarding-log family (rec). Portal rows ("proc-…", "tpl#…") and TFC
// rows ("rec|…") share the clustered key space with disjoint prefixes,
// so one drapool fleet can back both tiers.
//
// The /v1/cluster/* endpoints are unauthenticated by design (see
// internal/httpapi): deploy drapool on the private cluster network only.
//
// With -data-dir the node's table is crash-safe (WAL + checkpoints, same
// machinery as draportal -data-dir); GET /v1/readyz reports 200 only
// after recovery completes. On SIGINT/SIGTERM the node drains, writes a
// final checkpoint, and exits 0 — rejoin is then just restarting it: the
// coordinator's repair loop replays whatever the node missed.
package main

import (
	"context"
	"flag"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dra4wfms/internal/chaos"
	"dra4wfms/internal/httpapi"
	"dra4wfms/internal/pool"
	"dra4wfms/internal/poolcluster"
	"dra4wfms/internal/portal"
	"dra4wfms/internal/telemetry"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("drapool: ")
	listen := flag.String("listen", ":9201", "listen address")
	nodeID := flag.String("node-id", "", "cluster-unique node ID (required; must match the coordinator's -cluster-nodes entry)")
	dataDir := flag.String("data-dir", "", "durable table directory (WAL + checkpoints); empty keeps the node memory-only")
	fsync := flag.Bool("fsync", true, "fsync the WAL on every mutation (requires -data-dir; disable only for benchmarks)")
	ckInterval := flag.Duration("checkpoint-interval", 5*time.Minute, "periodic checkpoint interval (0 disables periodic checkpoints)")
	grace := flag.Duration("grace", 15*time.Second, "shutdown grace period for draining in-flight requests")
	pprofOn := flag.Bool("pprof", false, "serve /debug/pprof/* on the listen address")
	slowOps := flag.Duration("slowops", 0, "log spans slower than this duration (0 disables)")
	chaosOn := flag.Bool("chaos", false, "serve the "+chaos.AdminPath+" fault-injection control plane (TEST ONLY: unauthenticated)")
	chaosSeed := flag.Int64("chaos-seed", 42, "deterministic seed for the chaos fault PRNG (requires -chaos)")
	flag.Parse()

	if *nodeID == "" {
		log.Fatal("missing -node-id")
	}
	if *slowOps > 0 {
		telemetry.Default().SetSlowOpThreshold(*slowOps)
		telemetry.Default().SetSlowOpLogger(log.Default())
	}

	cluster, err := pool.NewCluster([]string{*nodeID + "-rs"}, 1<<20)
	if err != nil {
		log.Fatal(err)
	}
	families := append(append([]pool.FamilySpec{}, portal.Families...),
		pool.FamilySpec{Name: "rec", MaxVersions: 1})
	table, err := cluster.CreateTable(portal.TableName, families...)
	if err != nil {
		log.Fatal(err)
	}

	var store *pool.Store
	if *dataDir != "" {
		var rep *pool.RecoveryReport
		store, rep, err = pool.Open(table, *dataDir, pool.StoreOptions{
			NoFsync:            !*fsync,
			CheckpointInterval: *ckInterval,
		})
		if err != nil {
			log.Fatalf("opening durable table in %s: %v", *dataDir, err)
		}
		log.Printf("durable table in %s: %s", *dataDir, rep.Summary())
		if rep.Damaged() {
			log.Printf("WARNING: recovery quarantined damaged WAL data (%s); inspect %s", rep.DamageReason, rep.QuarantineFile)
		}
	}

	node := poolcluster.NewNode(*nodeID, table)
	srv := httpapi.NewPoolNodeServer(node)
	srv.EnablePprof = *pprofOn
	probes := httpapi.NewProbes()
	srv.Probes = probes
	probes.SetReady(true)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	handler := http.Handler(srv.Handler())
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatalf("listening on %s: %v", *listen, err)
	}
	if *chaosOn {
		// Chaos mode: the node's own traffic passes through the fault
		// model (crash/slow at the listener, partitions at the handler
		// gate), and the control plane that drives it is served on
		// AdminPath — exempt from the gate so drills can heal what they
		// injected. Test-only: the control plane is unauthenticated.
		cnet := chaos.NewNetwork(*chaosSeed)
		mux := http.NewServeMux()
		mux.Handle(chaos.AdminPath, cnet.Handler())
		mux.Handle("/", handler)
		handler = cnet.Gate(*nodeID, mux)
		ln = cnet.WrapListener(*nodeID, ln)
		log.Printf("CHAOS MODE: fault injection enabled (seed %d, control plane on %s)", *chaosSeed, chaos.AdminPath)
	}

	log.Printf("pool node %s serving on %s", *nodeID, *listen)
	if err := httpapi.ServeListener(ctx, ln, handler, *grace, func() {
		log.Printf("shutdown requested, draining in-flight requests (grace %s)", *grace)
		probes.StartDraining()
	}); err != nil {
		log.Fatalf("serving: %v", err)
	}

	if store != nil {
		if err := store.Close(); err != nil {
			log.Fatalf("final checkpoint: %v", err)
		}
		log.Printf("final checkpoint written to %s", store.Dir())
	}
	log.Print("shutdown complete")
}
