package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"

	"dra4wfms/internal/httpapi"
	"dra4wfms/internal/trace"
)

// cmdTrace fetches the span rings of the portal and (optionally) TFC
// tiers, merges the spans of one distributed trace, and renders the
// assembled tree as a waterfall with per-tier timing attribution. The
// argument may be a 32-hex trace ID or a workflow instance (process) ID;
// the latter is resolved through the portal's instance→trace binding.
func cmdTrace(args []string) {
	fs := flag.NewFlagSet("trace", flag.ExitOnError)
	portalURL := fs.String("portal", "http://localhost:8080", "portal base URL")
	tfcURL := fs.String("tfc", "", "TFC base URL; empty skips the TFC tier")
	jsonOut := fs.Bool("json", false, "print the merged spans as JSON instead of a waterfall")
	// Flags are accepted on either side of the positional ID (flag.Parse
	// stops at the first non-flag argument, so the remainder is re-parsed
	// after peeling the ID off).
	fs.Parse(args)
	rest := fs.Args()
	if len(rest) == 0 {
		log.Fatal("usage: dractl trace <trace-id|process-id> [-portal URL] [-tfc URL] [-json]")
	}
	id := rest[0]
	fs.Parse(rest[1:])
	if fs.NArg() != 0 {
		log.Fatal("usage: dractl trace <trace-id|process-id> [-portal URL] [-tfc URL] [-json]")
	}

	portalClient := httpapi.NewClient(*portalURL, nil)
	traceID := id
	if !isHexTraceID(id) {
		// Not a trace ID: resolve as a workflow instance through the
		// portal's bindings.
		all, err := portalClient.Traces("")
		if err != nil {
			log.Fatalf("fetching portal bindings: %v", err)
		}
		tid, ok := all.Bindings[id]
		if !ok {
			log.Fatalf("%q is neither a 32-hex trace ID nor a process ID the portal has a trace binding for", id)
		}
		traceID = tid
	}

	spans := fetchTier(portalClient, "portal", traceID)
	if *tfcURL != "" {
		spans = append(spans, fetchTier(httpapi.NewClient(*tfcURL, nil), "tfc", traceID)...)
	}
	if len(spans) == 0 {
		log.Fatalf("no spans recorded for trace %s (ring evicted, unsampled, or wrong servers?)", traceID)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(spans); err != nil {
			log.Fatal(err)
		}
		return
	}
	trace.Waterfall(os.Stdout, trace.Assemble(spans))
}

// fetchTier pulls one service's spans for the trace; a tier being down is
// reported but not fatal, so a partial waterfall still renders.
func fetchTier(c *httpapi.Client, label, traceID string) []trace.FinishedSpan {
	resp, err := c.Traces(traceID)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dractl: warning: fetching %s spans: %v\n", label, err)
		return nil
	}
	return resp.Spans
}

// isHexTraceID reports whether s looks like a 128-bit trace ID.
func isHexTraceID(s string) bool {
	if len(s) != 32 {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}
