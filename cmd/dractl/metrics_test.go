package main

import (
	"math"
	"testing"
)

const exposition = `# TYPE aea_sign_ops_total counter
aea_sign_ops_total 6
# TYPE http_requests_total counter
http_requests_total{route="POST /v1/documents",code="2xx"} 5
# TYPE portal_store_seconds histogram
portal_store_seconds_bucket{le="0.001"} 2
portal_store_seconds_bucket{le="0.01"} 9
portal_store_seconds_bucket{le="+Inf"} 10
portal_store_seconds_sum 0.05
portal_store_seconds_count 10
`

func TestParseExposition(t *testing.T) {
	scalars, hists := parseExposition(exposition)

	if got := scalars["aea_sign_ops_total"]; got != "6" {
		t.Errorf("aea_sign_ops_total = %q, want 6", got)
	}
	if got := scalars[`http_requests_total{route="POST /v1/documents",code="2xx"}`]; got != "5" {
		t.Errorf("labeled counter = %q, want 5", got)
	}

	h := hists["portal_store_seconds"]
	if h == nil {
		t.Fatalf("histogram missing; have %v", hists)
	}
	if h.count != 10 || h.sum != 0.05 {
		t.Errorf("count/sum = %d/%v, want 10/0.05", h.count, h.sum)
	}
	if len(h.bounds) != 3 || !math.IsInf(h.bounds[2], 1) {
		t.Fatalf("bounds = %v", h.bounds)
	}
	// p50: rank 5 lands in the (0.001, 0.01] bucket holding observations
	// 3..9 → 0.001 + 0.009*(5-2)/7.
	want := 0.001 + 0.009*3/7
	if got := h.quantile(0.5); math.Abs(got-want) > 1e-12 {
		t.Errorf("p50 = %v, want %v", got, want)
	}
	// p99: rank 9.9 falls in the +Inf bucket → clamps to the highest
	// finite bound.
	if got := h.quantile(0.99); got != 0.01 {
		t.Errorf("p99 = %v, want 0.01", got)
	}
}

func TestSplitPairsQuotedComma(t *testing.T) {
	pairs := splitPairs(`a="x,y",b="z"`)
	if len(pairs) != 2 || pairs[0] != `a="x,y"` || pairs[1] != `b="z"` {
		t.Fatalf("splitPairs = %v", pairs)
	}
}
