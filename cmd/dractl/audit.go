package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"dra4wfms/internal/audit"
	"dra4wfms/internal/pki"
)

// cmdAudit performs offline third-party verification of a DRA4WfMS
// document file against a deployment's trust bundle — the dispute-
// settlement flow: no server or database is consulted.
func cmdAudit(args []string) {
	fs := flag.NewFlagSet("audit", flag.ExitOnError)
	trust := fs.String("trust", "deploy/trust.json", "trust bundle path")
	fs.Parse(args)
	if fs.NArg() != 1 {
		usage()
	}

	trustData, err := os.ReadFile(*trust)
	if err != nil {
		log.Fatal(err)
	}
	bundle, err := pki.ParseBundle(trustData)
	if err != nil {
		log.Fatal(err)
	}
	registry, err := bundle.BuildRegistry(time.Now())
	if err != nil {
		log.Fatal(err)
	}

	doc := loadDoc(fs.Arg(0))
	report, err := audit.Audit(doc, registry)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(report.Render())
	if !report.Verified {
		os.Exit(1)
	}
}
