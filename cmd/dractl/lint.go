package main

import (
	"fmt"
	"log"
	"os"

	"dra4wfms/internal/wfdef"
	"dra4wfms/internal/xmltree"
)

// cmdLint statically checks one or more workflow definitions — fixture
// names or WorkflowDefinition XML files — and prints every finding,
// graded error/warning/info. Unlike `dractl validate`, which stops at
// the first hard error, lint reports everything it can see:
// control-flow problems (dead cycles, unreachable activities,
// XOR-splits with no default), security-policy problems (read grants to
// principals outside the workflow), and information-flow problems
// (concealed variables reaching non-readers, with the leaking activity
// path). Exits 1 when any definition has an error-severity finding (or
// a Validate failure).
func cmdLint(args []string) {
	if len(args) == 0 {
		usage()
	}

	failed := false
	for _, arg := range args {
		if !lintOne(arg) {
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}

// lintOne lints a single fixture name or definition file and reports
// whether it is free of error-severity findings.
func lintOne(arg string) bool {
	def, ok := defByName(arg)
	if !ok {
		raw, err := os.ReadFile(arg)
		if err != nil {
			log.Fatal(err)
		}
		el, err := xmltree.ParseBytes(raw)
		if err != nil {
			log.Fatal(err)
		}
		def, err = wfdef.FromXML(el)
		if err != nil {
			log.Fatal(err)
		}
	}

	findings := wfdef.Lint(def)
	errors := 0
	if err := def.Validate(); err != nil {
		findings = append(findings, wfdef.Finding{
			Severity: wfdef.SevError, Rule: "validate", Message: err.Error(),
		})
	}
	for _, f := range findings {
		fmt.Println(f)
		if f.Severity == wfdef.SevError {
			errors++
		}
	}
	switch {
	case errors > 0:
		fmt.Printf("%s: %d finding(s), %d error(s)\n", def.Name, len(findings), errors)
		return false
	case len(findings) > 0:
		fmt.Printf("%s: %d finding(s), no errors\n", def.Name, len(findings))
	default:
		fmt.Printf("%s: clean\n", def.Name)
	}
	return true
}
