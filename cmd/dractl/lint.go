package main

import (
	"fmt"
	"log"
	"os"

	"dra4wfms/internal/wfdef"
	"dra4wfms/internal/xmltree"
)

// cmdLint statically checks a workflow definition — a fixture name or a
// WorkflowDefinition XML file — and prints every finding, graded
// error/warning/info. Unlike `dractl validate`, which stops at the first
// hard error, lint reports everything it can see: control-flow problems
// (dead cycles, unreachable activities, XOR-splits with no default) and
// security-policy problems (variables displayed to participants who hold
// no key for them, read grants to principals outside the workflow).
// Exits 1 when any error-severity finding (or a Validate failure) is
// present.
func cmdLint(args []string) {
	if len(args) != 1 {
		usage()
	}

	var def *wfdef.Definition
	switch args[0] {
	case "fig9a":
		def = wfdef.Fig9A()
	case "fig9b":
		def = wfdef.Fig9B()
	case "fig4":
		def = wfdef.Fig4()
	default:
		raw, err := os.ReadFile(args[0])
		if err != nil {
			log.Fatal(err)
		}
		el, err := xmltree.ParseBytes(raw)
		if err != nil {
			log.Fatal(err)
		}
		def, err = wfdef.FromXML(el)
		if err != nil {
			log.Fatal(err)
		}
	}

	findings := wfdef.Lint(def)
	errors := 0
	if err := def.Validate(); err != nil {
		findings = append(findings, wfdef.Finding{
			Severity: wfdef.SevError, Rule: "validate", Message: err.Error(),
		})
	}
	for _, f := range findings {
		fmt.Println(f)
		if f.Severity == wfdef.SevError {
			errors++
		}
	}
	switch {
	case errors > 0:
		fmt.Printf("%s: %d finding(s), %d error(s)\n", def.Name, len(findings), errors)
		os.Exit(1)
	case len(findings) > 0:
		fmt.Printf("%s: %d finding(s), no errors\n", def.Name, len(findings))
	default:
		fmt.Printf("%s: clean\n", def.Name)
	}
}
