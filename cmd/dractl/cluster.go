package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"strings"

	"dra4wfms/internal/poolcluster"
)

// cmdCluster inspects and steers a clustered document pool.
//
//	dractl cluster status    [-url PORTAL] [-data-dir DIR] [-row ROW]
//	dractl cluster rebalance [-url PORTAL]
//
// status renders the region directory — region → node placement, epochs,
// and per-replica applied/lag in WAL records — from a live portal's
// GET /v1/cluster/status or, with -data-dir, offline from the
// cluster.json snapshot the coordinator persists (-cluster-status).
// With -row it instead prints "REGION NODE" for the row's current
// primary, which is how the failover drill picks its kill target.
// rebalance asks the portal to spread region leadership evenly and
// prints the migrations performed.
func cmdCluster(args []string) {
	if len(args) < 1 {
		usage()
	}
	sub := args[0]
	fs := flag.NewFlagSet("cluster", flag.ExitOnError)
	base := fs.String("url", "", "portal base URL serving /v1/cluster/*")
	dataDir := fs.String("data-dir", "", "read the persisted cluster.json snapshot instead of a live portal (status only)")
	row := fs.String("row", "", "print the region and primary node owning ROW instead of the full directory (status only)")
	fs.Parse(args[1:])

	switch sub {
	case "status":
		st := loadClusterStatus(*base, *dataDir)
		if *row != "" {
			region, node := primaryForRow(st, *row)
			if region == "" {
				log.Fatalf("no region covers row %q", *row)
			}
			if node == "" {
				log.Fatalf("region %s currently has no primary", region)
			}
			fmt.Printf("%s %s\n", region, node)
			return
		}
		fmt.Print(st.Render())
	case "rebalance":
		if *base == "" {
			log.Fatal("rebalance needs -url (a live portal)")
		}
		resp, err := http.Post(strings.TrimRight(*base, "/")+"/v1/cluster/rebalance", "application/json", nil)
		if err != nil {
			log.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		var reb struct {
			Moves []poolcluster.Move `json:"moves"`
			Error string             `json:"error"`
		}
		if err := json.Unmarshal(body, &reb); err != nil {
			log.Fatalf("POST /v1/cluster/rebalance: %s: %s", resp.Status, strings.TrimSpace(string(body)))
		}
		for _, m := range reb.Moves {
			fmt.Printf("moved %s: %s -> %s\n", m.Region, m.From, m.To)
		}
		if reb.Error != "" {
			log.Fatalf("rebalance stopped: %s", reb.Error)
		}
		if len(reb.Moves) == 0 {
			fmt.Println("already balanced")
		}
	default:
		usage()
	}
}

// loadClusterStatus fetches the directory from a live portal or reads
// the offline snapshot.
func loadClusterStatus(base, dataDir string) poolcluster.ClusterStatus {
	switch {
	case base != "":
		u := strings.TrimRight(base, "/") + "/v1/cluster/status"
		resp, err := http.Get(u)
		if err != nil {
			log.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			log.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			log.Fatalf("GET /v1/cluster/status: %s: %s", resp.Status, strings.TrimSpace(string(body)))
		}
		var st poolcluster.ClusterStatus
		if err := json.Unmarshal(body, &st); err != nil {
			log.Fatalf("decoding cluster status: %v", err)
		}
		return st
	case dataDir != "":
		st, err := poolcluster.ReadStatusFile(dataDir)
		if err != nil {
			log.Fatal(err)
		}
		return st
	default:
		log.Fatal("cluster status needs -url or -data-dir")
		panic("unreachable")
	}
}

// primaryForRow resolves which region's span covers row and which node
// the directory snapshot says leads it. Works on both live and offline
// snapshots, so the kill-target lookup does not need a special endpoint.
func primaryForRow(st poolcluster.ClusterStatus, row string) (region, node string) {
	for _, r := range st.Regions {
		if (r.Start == "" || row >= r.Start) && (r.End == "" || row < r.End) {
			for _, rv := range r.Replicas {
				if rv.Primary {
					return r.ID, rv.Node
				}
			}
			return r.ID, ""
		}
	}
	return "", ""
}
