package main

import (
	"flag"
	"fmt"
	"log"
	"strconv"

	"dra4wfms/internal/relay"
)

// cmdDLQ inspects and re-drives a relay outbox WAL offline: list the
// pending and dead-lettered deliveries, requeue dead letters for the
// next relay start, or drop them for good. Run it against the WAL of a
// stopped process — the outbox is single-writer.
func cmdDLQ(args []string) {
	fs := flag.NewFlagSet("dlq", flag.ExitOnError)
	wal := fs.String("wal", "", "relay outbox WAL file (required)")
	fs.Usage = func() {
		fmt.Fprintln(fs.Output(), `usage:
  dractl dlq -wal FILE list
  dractl dlq -wal FILE requeue SEQ|all
  dractl dlq -wal FILE drop SEQ`)
		fs.PrintDefaults()
	}
	fs.Parse(args)
	if *wal == "" || fs.NArg() < 1 {
		fs.Usage()
		log.Fatal("need -wal FILE and a verb (list, requeue, drop)")
	}

	ob, err := relay.OpenOutbox(*wal)
	if err != nil {
		log.Fatal(err)
	}
	defer ob.Close()

	switch verb := fs.Arg(0); verb {
	case "list":
		pending, dead := ob.Counts()
		fmt.Printf("%s: %d pending, %d dead-lettered\n", *wal, pending, dead)
		if pending > 0 {
			fmt.Printf("\n%-6s %-14s %-8s %8s  %s\n", "SEQ", "kind", "attempts", "bytes", "destination")
			for _, e := range ob.Pending() {
				fmt.Printf("%-6d %-14s %-8d %8d  %s\n", e.Seq, e.Kind, e.Attempts, len(e.Payload), e.Dest)
			}
		}
		if dead > 0 {
			fmt.Printf("\ndead letters:\n%-6s %-14s %-8s  %-40s %s\n", "SEQ", "kind", "attempts", "destination", "reason")
			for _, e := range ob.DeadLetters() {
				fmt.Printf("%-6d %-14s %-8d  %-40s %s\n", e.Seq, e.Kind, e.Attempts, e.Dest, e.Reason)
			}
		}
	case "requeue":
		if fs.NArg() != 2 {
			log.Fatal("requeue needs SEQ or 'all'")
		}
		if fs.Arg(1) == "all" {
			n := 0
			for _, e := range ob.DeadLetters() {
				if err := ob.Requeue(e.Seq); err != nil {
					log.Fatal(err)
				}
				n++
			}
			fmt.Printf("requeued %d dead letters; they retry on the next relay start\n", n)
			return
		}
		seq := parseSeq(fs.Arg(1))
		if err := ob.Requeue(seq); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("requeued seq %d; it retries on the next relay start\n", seq)
	case "drop":
		if fs.NArg() != 2 {
			log.Fatal("drop needs SEQ")
		}
		seq := parseSeq(fs.Arg(1))
		if err := ob.Drop(seq); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("dropped seq %d\n", seq)
	default:
		fs.Usage()
		log.Fatalf("unknown dlq verb %q", verb)
	}
}

func parseSeq(s string) uint64 {
	seq, err := strconv.ParseUint(s, 10, 64)
	if err != nil {
		log.Fatalf("bad sequence number %q", s)
	}
	return seq
}
