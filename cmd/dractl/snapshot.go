package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"

	"dra4wfms/internal/pool"
)

// cmdSnapshot drives the pool checkpoint format offline: save recovers a
// daemon's data directory (without running the daemon) into a portable
// snapshot file, restore seeds a fresh data directory from one, and
// inspect summarizes a snapshot or checkpoint file. Together they are the
// backup/migration path for draportal -data-dir and dratfc -data-dir.
func cmdSnapshot(args []string) {
	if len(args) < 1 {
		usage()
	}
	switch args[0] {
	case "save":
		cmdSnapshotSave(args[1:])
	case "restore":
		cmdSnapshotRestore(args[1:])
	case "inspect":
		cmdSnapshotInspect(args[1:])
	default:
		usage()
	}
}

// cmdSnapshotSave performs the same recovery a daemon boot would —
// newest valid checkpoint plus intact WAL suffix, damage quarantined and
// reported — and writes the resulting live state as one snapshot file.
// pool.Open takes the data directory's exclusive lock, so running save
// against a live daemon's dir fails fast instead of corrupting its WAL.
func cmdSnapshotSave(args []string) {
	fs := flag.NewFlagSet("snapshot save", flag.ExitOnError)
	dataDir := fs.String("data-dir", "", "daemon data directory to recover (required)")
	out := fs.String("out", "", "snapshot file to write (required; - for stdout)")
	tableName := fs.String("table", "documents", "table name recorded in the snapshot header")
	fs.Parse(args)
	if *dataDir == "" || *out == "" {
		log.Fatal("snapshot save needs -data-dir and -out")
	}

	cluster, err := pool.NewCluster([]string{"offline"}, 0)
	if err != nil {
		log.Fatal(err)
	}
	// The placeholder family only satisfies table creation; recovery
	// replays cells under their original families regardless.
	table, err := cluster.CreateTable(*tableName, pool.FamilySpec{Name: "offline"})
	if err != nil {
		log.Fatal(err)
	}
	store, rep, err := pool.Open(table, *dataDir, pool.StoreOptions{})
	if err != nil {
		log.Fatalf("recovering %s: %v", *dataDir, err)
	}
	fmt.Fprintf(os.Stderr, "dractl: %s\n", rep.Summary())
	if rep.Damaged() {
		fmt.Fprintf(os.Stderr, "dractl: WARNING: recovery quarantined damage; the snapshot holds the intact state only\n")
	}

	info := &pool.SnapshotInfo{
		Table:  *tableName,
		WALSeq: store.LastLSN(),
		Cells:  table.Scan(pool.ScanOptions{}),
	}
	w := os.Stdout
	if *out != "-" {
		f, err := os.OpenFile(*out, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
		if err != nil {
			log.Fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
		}()
		w = f
	}
	if err := pool.WriteSnapshot(w, info); err != nil {
		log.Fatal(err)
	}
	if *out != "-" {
		fmt.Printf("saved %d cells (WAL watermark %d) to %s\n", len(info.Cells), info.WALSeq, *out)
	}
}

// cmdSnapshotRestore seeds a fresh data directory with one checkpoint
// built from a snapshot file; the next daemon boot recovers from it.
func cmdSnapshotRestore(args []string) {
	fs := flag.NewFlagSet("snapshot restore", flag.ExitOnError)
	dataDir := fs.String("data-dir", "", "fresh data directory to seed (required; must not hold state)")
	in := fs.String("in", "", "snapshot file to restore from (required)")
	fs.Parse(args)
	if *dataDir == "" || *in == "" {
		log.Fatal("snapshot restore needs -data-dir and -in")
	}
	if entries, err := os.ReadDir(*dataDir); err == nil && len(entries) > 0 {
		log.Fatalf("refusing to restore into non-empty directory %s (restore seeds a fresh data dir)", *dataDir)
	}

	f, err := os.Open(*in)
	if err != nil {
		log.Fatal(err)
	}
	info, err := pool.ReadSnapshot(f)
	f.Close()
	if err != nil {
		log.Fatalf("validating %s: %v", *in, err)
	}
	name, err := pool.WriteCheckpointFile(*dataDir, info)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("restored %d cells into %s (checkpoint %s)\n", len(info.Cells), *dataDir, name)
}

// cmdSnapshotInspect validates a snapshot/checkpoint file and summarizes
// its contents without touching any data directory.
func cmdSnapshotInspect(args []string) {
	if len(args) != 1 {
		usage()
	}
	f, err := os.Open(args[0])
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	info, err := pool.ReadSnapshot(f)
	if err != nil {
		log.Fatalf("INVALID: %v", err)
	}

	rows := map[string]bool{}
	families := map[string]int{}
	var bytes int
	for _, kv := range info.Cells {
		rows[kv.Row] = true
		families[kv.Family]++
		bytes += len(kv.Value)
	}
	fmt.Printf("table:         %s\n", info.Table)
	fmt.Printf("wal watermark: %d\n", info.WALSeq)
	fmt.Printf("cells:         %d (%d rows, %d value bytes)\n", len(info.Cells), len(rows), bytes)
	names := make([]string, 0, len(families))
	for fam := range families {
		names = append(names, fam)
	}
	sort.Strings(names)
	for _, fam := range names {
		fmt.Printf("  family %-12s %d cells\n", fam, families[fam])
	}
}
