package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"dra4wfms/internal/aea"
	"dra4wfms/internal/document"
	"dra4wfms/internal/httpapi"
	"dra4wfms/internal/pki"
	"dra4wfms/internal/trace"
	"dra4wfms/internal/wfdef"
	"dra4wfms/internal/xmlenc"
)

// cmdRemote drives one Figure 9 process instance against REAL portal and
// TFC servers over HTTP (see cmd/draportal and cmd/dratfc), loading the
// participants' private keys from a drakeys deployment directory. This is
// the full multi-process cloud flow: designer → portal → participants'
// AEAs → (TFC) → portal, authenticated end to end.
func cmdRemote(args []string) {
	fs := flag.NewFlagSet("remote", flag.ExitOnError)
	portalURL := fs.String("portal", "http://localhost:8080", "portal base URL")
	tfcURL := fs.String("tfc", "http://localhost:8081", "TFC base URL (advanced model)")
	deploy := fs.String("deploy", "deploy", "drakeys deployment directory")
	workflow := fs.String("workflow", "fig9a", "fig9a or fig9b")
	out := fs.String("out", "", "write the final document to this file")
	fs.Parse(args)

	var def *wfdef.Definition
	switch *workflow {
	case "fig9a":
		def = wfdef.Fig9A()
	case "fig9b":
		def = wfdef.Fig9B()
	default:
		log.Fatalf("remote supports fig9a/fig9b, not %q", *workflow)
	}

	loadKey := func(id string) *pki.KeyPair {
		data, err := os.ReadFile(filepath.Join(*deploy, "keys", sanitize(id)+".pem"))
		if err != nil {
			log.Fatalf("loading key for %s: %v", id, err)
		}
		kp, err := pki.DecodePrivateKeyPEM(data)
		if err != nil {
			log.Fatal(err)
		}
		return kp
	}
	trustData, err := os.ReadFile(filepath.Join(*deploy, "trust.json"))
	if err != nil {
		log.Fatal(err)
	}
	bundle, err := pki.ParseBundle(trustData)
	if err != nil {
		log.Fatal(err)
	}
	registry, err := bundle.BuildRegistry(time.Now())
	if err != nil {
		log.Fatal(err)
	}

	designerKeys := loadKey("designer@acme")
	var doc *document.Document
	if def.Policy.ConcealFlow {
		tfcPub, err := registry.PublicKey(def.Policy.TFC)
		if err != nil {
			log.Fatal(err)
		}
		doc, err = document.NewConcealed(def, designerKeys, fmt.Sprintf("proc-remote-%d", time.Now().UnixNano()),
			time.Now(), xmlenc.Recipient{ID: def.Policy.TFC, Key: tfcPub})
		if err != nil {
			log.Fatal(err)
		}
	} else {
		doc, err = document.New(def, designerKeys, fmt.Sprintf("proc-remote-%d", time.Now().UnixNano()), time.Now())
		if err != nil {
			log.Fatal(err)
		}
	}
	pid := doc.ProcessID()

	// The drive is the trace root: every HTTP hop below carries its
	// traceparent, so the whole cascade lands under one trace ID that
	// `dractl trace` can assemble afterwards.
	ctx, rootSpan := trace.Default().StartRoot(context.Background(), "client", "client_remote_drive_seconds")
	rootSpan.SetAttr("workflow", *workflow)
	defer rootSpan.End()
	traceID := rootSpan.Context().TraceID.String()

	designerClient := httpapi.NewClient(*portalURL, designerKeys)
	notes, err := designerClient.StoreInitialCtx(ctx, doc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("started %s (trace %s); notified %v\n", pid, traceID, notes)

	inputs := map[string]aea.Inputs{
		"A":  {"request": "purchase 10 servers", "attachment": "quote.pdf"},
		"B1": {"techReview": "adequate"},
		"B2": {"budgetReview": "within budget"},
		"C":  {"summary": "both positive"},
		"D":  {"accept": "true"},
	}
	order := []string{"A", "B1", "B2", "C", "D"}
	for _, act := range order {
		participant := wfdef.Fig9Participants[act]
		keys := loadKey(participant)
		cli := httpapi.NewClient(*portalURL, keys)

		items, err := cli.Worklist()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("[%s] %s worklist: %d item(s)\n", act, participant, len(items))

		cur, err := cli.RetrieveCtx(ctx, pid)
		if err != nil {
			log.Fatal(err)
		}
		agent := aea.New(keys, registry)
		if def.Policy.TFC != "" {
			interm, err := agent.ExecuteToTFC(cur, act, inputs[act])
			if err != nil {
				log.Fatal(err)
			}
			tfcClient := httpapi.NewClient(*tfcURL, keys)
			pr, outDoc, err := tfcClient.ProcessViaTFCCtx(ctx, interm)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("[%s] TFC stamped %s, routed to %v\n", act, pr.Timestamp.Format(time.RFC3339), pr.Next)
			if _, err := cli.StoreCtx(ctx, outDoc); err != nil {
				log.Fatal(err)
			}
		} else {
			out, err := agent.Execute(cur, act, inputs[act], time.Now())
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("[%s] routed to %v\n", act, out.Next)
			if _, err := cli.StoreCtx(ctx, out.Doc); err != nil {
				log.Fatal(err)
			}
		}
	}

	st, err := designerClient.Status(pid)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("final state: %s with %d steps\n", st.State, len(st.Steps))
	final, err := designerClient.Retrieve(pid)
	if err != nil {
		log.Fatal(err)
	}
	n, err := final.VerifyAll(registry)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("retrieved final document: %d bytes, %d signatures verify\n", final.Size(), n)
	fmt.Printf("inspect the cascade: dractl trace %s -portal %s -tfc %s\n", traceID, *portalURL, *tfcURL)
	if *out != "" {
		if err := os.WriteFile(*out, final.Bytes(), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("final document written to %s\n", *out)
	}
}

// sanitize mirrors drakeys' key-file naming.
func sanitize(id string) string {
	out := []rune(id)
	for i, r := range out {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '-', r == '.', r == '@', r == '_':
		default:
			out[i] = '_'
		}
	}
	return string(out)
}
