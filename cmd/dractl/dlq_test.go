package main

import (
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"dra4wfms/internal/relay"
)

// captureStdout runs fn with os.Stdout redirected to a pipe and returns
// what it printed.
func captureStdout(t *testing.T, fn func()) string {
	t.Helper()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	old := os.Stdout
	os.Stdout = w
	defer func() { os.Stdout = old }()
	fn()
	w.Close()
	out, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	return string(out)
}

func TestDLQListAndRequeue(t *testing.T) {
	wal := filepath.Join(t.TempDir(), "relay.wal")
	ob, err := relay.OpenOutbox(wal)
	if err != nil {
		t.Fatal(err)
	}
	live, _, err := ob.Append("http://portal.example", "store", "key-live", "", []byte("<doc/>"))
	if err != nil {
		t.Fatal(err)
	}
	dead, _, err := ob.Append("http://tfc.example", "process", "key-dead", "", []byte("<doc2/>"))
	if err != nil {
		t.Fatal(err)
	}
	if err := ob.DeadLetter(dead.Seq, "after 8 attempts: connection refused"); err != nil {
		t.Fatal(err)
	}
	if err := ob.Close(); err != nil {
		t.Fatal(err)
	}

	out := captureStdout(t, func() { cmdDLQ([]string{"-wal", wal, "list"}) })
	for _, want := range []string{"1 pending, 1 dead-lettered", "http://portal.example", "http://tfc.example", "connection refused"} {
		if !strings.Contains(out, want) {
			t.Fatalf("list output missing %q:\n%s", want, out)
		}
	}

	out = captureStdout(t, func() { cmdDLQ([]string{"-wal", wal, "requeue", "all"}) })
	if !strings.Contains(out, "requeued 1 dead letters") {
		t.Fatalf("requeue output:\n%s", out)
	}

	// The requeued entry is pending again and survives a reopen.
	ob, err = relay.OpenOutbox(wal)
	if err != nil {
		t.Fatal(err)
	}
	defer ob.Close()
	pending, deadCount := ob.Counts()
	if pending != 2 || deadCount != 0 {
		t.Fatalf("after requeue: %d pending, %d dead — want 2, 0", pending, deadCount)
	}
	found := false
	for _, e := range ob.Pending() {
		if e.Seq == dead.Seq {
			found = true
			if e.Attempts != 0 {
				t.Fatalf("requeued entry kept %d attempts", e.Attempts)
			}
		}
	}
	if !found {
		t.Fatalf("requeued seq %d not pending; live seq %d", dead.Seq, live.Seq)
	}
}

func TestDLQDrop(t *testing.T) {
	wal := filepath.Join(t.TempDir(), "relay.wal")
	ob, err := relay.OpenOutbox(wal)
	if err != nil {
		t.Fatal(err)
	}
	e, _, err := ob.Append("http://portal.example", "store", "k", "", []byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	if err := ob.DeadLetter(e.Seq, "poison payload"); err != nil {
		t.Fatal(err)
	}
	if err := ob.Close(); err != nil {
		t.Fatal(err)
	}

	seq := strconv.FormatUint(e.Seq, 10)
	out := captureStdout(t, func() { cmdDLQ([]string{"-wal", wal, "drop", seq}) })
	if !strings.Contains(out, "dropped seq "+seq) {
		t.Fatalf("drop output:\n%s", out)
	}
	ob, err = relay.OpenOutbox(wal)
	if err != nil {
		t.Fatal(err)
	}
	defer ob.Close()
	if pending, dead := ob.Counts(); pending != 0 || dead != 0 {
		t.Fatalf("after drop: %d pending, %d dead", pending, dead)
	}
}
