package main

import (
	"fmt"
	"path/filepath"
	"strings"
	"testing"

	"dra4wfms/internal/pool"
)

// seedDataDir simulates a daemon run: a durable table receives mutations
// and crashes without Close, leaving a data dir with a WAL to recover.
func seedDataDir(t *testing.T, dir string) []pool.KeyValue {
	t.Helper()
	cluster, err := pool.NewCluster([]string{"rs1"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	table, err := cluster.CreateTable("documents",
		pool.FamilySpec{Name: "doc", MaxVersions: 3},
		pool.FamilySpec{Name: "meta", MaxVersions: 1},
	)
	if err != nil {
		t.Fatal(err)
	}
	store, _, err := pool.Open(table, dir, pool.StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := table.Put(fmt.Sprintf("p-%02d", i), "doc", "xml", []byte(fmt.Sprintf("doc %d", i))); err != nil {
			t.Fatal(err)
		}
		if err := table.Put(fmt.Sprintf("p-%02d", i), "meta", "state", []byte("running")); err != nil {
			t.Fatal(err)
		}
	}
	if err := table.Delete("p-00", "doc", "xml"); err != nil {
		t.Fatal(err)
	}
	// Crash (not Close): the process would release the data-dir lock with
	// its death, which snapshot save then acquires for itself.
	if err := store.Abandon(); err != nil {
		t.Fatal(err)
	}
	return table.Scan(pool.ScanOptions{})
}

func TestSnapshotSaveRestoreInspect(t *testing.T) {
	srcDir := t.TempDir()
	want := seedDataDir(t, srcDir)
	snapFile := filepath.Join(t.TempDir(), "backup.snap")

	out := captureStdout(t, func() {
		cmdSnapshotSave([]string{"-data-dir", srcDir, "-out", snapFile})
	})
	if !strings.Contains(out, fmt.Sprintf("saved %d cells", len(want))) {
		t.Fatalf("save output = %q", out)
	}

	out = captureStdout(t, func() {
		cmdSnapshotInspect([]string{snapFile})
	})
	for _, frag := range []string{"table:         documents", "family doc", "family meta"} {
		if !strings.Contains(out, frag) {
			t.Fatalf("inspect output missing %q:\n%s", frag, out)
		}
	}

	dstDir := t.TempDir()
	out = captureStdout(t, func() {
		cmdSnapshotRestore([]string{"-data-dir", dstDir, "-in", snapFile})
	})
	if !strings.Contains(out, "restored") {
		t.Fatalf("restore output = %q", out)
	}

	// A daemon booting on the restored directory must see the saved state.
	cluster, err := pool.NewCluster([]string{"rs1"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	table, err := cluster.CreateTable("documents",
		pool.FamilySpec{Name: "doc", MaxVersions: 3},
		pool.FamilySpec{Name: "meta", MaxVersions: 1},
	)
	if err != nil {
		t.Fatal(err)
	}
	_, rep, err := pool.Open(table, dstDir, pool.StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Checkpoint == "" || rep.Damaged() {
		t.Fatalf("restored dir recovery: %s", rep.Summary())
	}
	got := table.Scan(pool.ScanOptions{})
	if len(got) != len(want) {
		t.Fatalf("restored %d cells, want %d", len(got), len(want))
	}
	for i := range want {
		if want[i].Row != got[i].Row || want[i].Family != got[i].Family ||
			want[i].Qualifier != got[i].Qualifier || string(want[i].Value) != string(got[i].Value) {
			t.Fatalf("cell %d: want %+v, got %+v", i, want[i], got[i])
		}
	}
	if _, ok := table.Get("p-00", "doc", "xml"); ok {
		t.Fatal("tombstoned cell resurrected through save/restore")
	}
}
