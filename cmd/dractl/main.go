// dractl is the DRA4WfMS command-line tool: it runs demo process
// instances, writes the routed documents to disk, and inspects DRA4WfMS
// document files (structure, signatures, nonrepudiation scopes).
//
// Usage:
//
//	dractl demo    [-workflow fig9a|fig9b|fig4] [-out DIR] [-bits N]
//	dractl inspect FILE.xml
//	dractl scope   FILE.xml CER-ID
//	dractl cers    FILE.xml
//	dractl remote  [-portal URL] [-tfc URL] [-deploy DIR] [-workflow fig9a|fig9b] [-out FILE]
//	dractl trace   TRACE-ID|PROCESS-ID [-portal URL] [-tfc URL] [-json]
//	dractl metrics [-url URL] [-filter PREFIX] [-raw]
//	dractl cluster status [-url PORTAL|-data-dir DIR] [-row ROW] | rebalance -url PORTAL
//	dractl dlq     -wal FILE list|requeue SEQ|all|drop SEQ
//	dractl snapshot save -data-dir DIR -out FILE | restore -data-dir DIR -in FILE | inspect FILE
//	dractl audit   -trust trust.json FILE.xml
//	dractl dot     NAME|FILE.xml
//	dractl export-def NAME
//	dractl validate DEFINITION.xml
//	dractl lint     NAME|DEFINITION.xml ...
//
// NAME is a built-in fixture: fig9a, fig9b, fig4, leave-request, or
// expense-approval.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"dra4wfms/internal/aea"
	"dra4wfms/internal/core"
	"dra4wfms/internal/document"
	"dra4wfms/internal/dsig"
	"dra4wfms/internal/wfdef"
	"dra4wfms/internal/xmltree"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("dractl: ")
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "demo":
		cmdDemo(os.Args[2:])
	case "inspect":
		cmdInspect(os.Args[2:])
	case "scope":
		cmdScope(os.Args[2:])
	case "cers":
		cmdCERs(os.Args[2:])
	case "remote":
		cmdRemote(os.Args[2:])
	case "trace":
		cmdTrace(os.Args[2:])
	case "metrics":
		cmdMetrics(os.Args[2:])
	case "cluster":
		cmdCluster(os.Args[2:])
	case "dlq":
		cmdDLQ(os.Args[2:])
	case "snapshot":
		cmdSnapshot(os.Args[2:])
	case "audit":
		cmdAudit(os.Args[2:])
	case "dot":
		cmdDot(os.Args[2:])
	case "export-def":
		cmdExportDef(os.Args[2:])
	case "validate":
		cmdValidate(os.Args[2:])
	case "lint":
		cmdLint(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  dractl demo    [-workflow fig9a|fig9b|fig4] [-out DIR] [-bits N]
  dractl inspect FILE.xml
  dractl scope   FILE.xml CER-ID
  dractl cers    FILE.xml
  dractl remote  [-portal URL] [-tfc URL] [-deploy DIR] [-workflow fig9a|fig9b]
  dractl trace   TRACE-ID|PROCESS-ID [-portal URL] [-tfc URL] [-json]
  dractl metrics [-url URL] [-filter PREFIX] [-raw]
  dractl cluster status [-url PORTAL|-data-dir DIR] [-row ROW] | rebalance -url PORTAL
  dractl dlq     -wal FILE list|requeue SEQ|all|drop SEQ
  dractl snapshot save -data-dir DIR -out FILE | restore -data-dir DIR -in FILE | inspect FILE
  dractl audit   -trust trust.json FILE.xml
  dractl dot     NAME|FILE.xml
  dractl export-def NAME
  dractl validate DEFINITION.xml
  dractl lint     NAME|DEFINITION.xml ...

NAME is a built-in fixture: `+fixtureNames)
	os.Exit(2)
}

func cmdDemo(args []string) {
	fs := flag.NewFlagSet("demo", flag.ExitOnError)
	workflow := fs.String("workflow", "fig9a", "fig9a, fig9b or fig4")
	out := fs.String("out", "", "directory to write the final document to")
	bits := fs.Int("bits", 2048, "RSA modulus size")
	fs.Parse(args)

	var (
		def      *wfdef.Definition
		designer string
	)
	switch *workflow {
	case "fig9a":
		def, designer = wfdef.Fig9A(), "designer@acme"
	case "fig9b":
		def, designer = wfdef.Fig9B(), "designer@acme"
	case "fig4":
		def, designer = wfdef.Fig4(), "designer@p0"
	default:
		log.Fatalf("unknown workflow %q", *workflow)
	}

	sys, err := core.NewSystem(core.Config{KeyBits: *bits})
	if err != nil {
		log.Fatal(err)
	}
	designerKeys, err := sys.Enroll(designer)
	if err != nil {
		log.Fatal(err)
	}
	for _, a := range def.Activities {
		if _, err := sys.Enroll(a.Participant); err != nil {
			log.Fatal(err)
		}
	}
	if def.Policy.TFC != "" {
		if _, err := sys.EnrollTFC(def.Policy.TFC); err != nil {
			log.Fatal(err)
		}
	}

	doc, _, err := sys.StartProcess(def, designerKeys)
	if err != nil {
		log.Fatal(err)
	}
	runner := sys.NewRunner()
	switch *workflow {
	case "fig9a", "fig9b":
		first := true
		runner.RespondValues("A", aea.Inputs{"request": "purchase 10 servers", "attachment": "quote.pdf"}).
			RespondValues("B1", aea.Inputs{"techReview": "adequate"}).
			RespondValues("B2", aea.Inputs{"budgetReview": "within budget"}).
			RespondValues("C", aea.Inputs{"summary": "both positive"}).
			Respond("D", func(*aea.Session) (aea.Inputs, error) {
				if first {
					first = false
					return aea.Inputs{"accept": "false"}, nil
				}
				return aea.Inputs{"accept": "true"}, nil
			})
	case "fig4":
		runner.RespondValues("A1", aea.Inputs{"X": "1500"}).
			RespondValues("A2", aea.Inputs{"Y": "dossier"}).
			RespondValues("A3", aea.Inputs{"reviewed": "true"}).
			RespondValues("A4", aea.Inputs{"highResult": "approved"}).
			RespondValues("A5", aea.Inputs{"lowResult": "approved"})
	}
	final, err := runner.Run(doc.ProcessID())
	if err != nil {
		log.Fatal(err)
	}
	n, err := final.VerifyAll(sys.Registry)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(final.Summary())
	fmt.Printf("all %d signatures verify\n", n)

	if *out != "" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			log.Fatal(err)
		}
		path := filepath.Join(*out, final.ProcessID()+".xml")
		if err := os.WriteFile(path, final.Bytes(), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("final document written to %s (%d bytes)\n", path, final.Size())
	}
}

// defByName resolves the built-in workflow fixtures — the definitions
// shipped with the examples — by CLI name.
func defByName(name string) (*wfdef.Definition, bool) {
	switch name {
	case "fig9a":
		return wfdef.Fig9A(), true
	case "fig9b":
		return wfdef.Fig9B(), true
	case "fig4":
		return wfdef.Fig4(), true
	case "leave-request":
		return wfdef.LeaveRequest(), true
	case "expense-approval":
		return wfdef.ExpenseApproval(), true
	}
	return nil, false
}

// fixtureNames is the usage-string list of defByName's names.
const fixtureNames = "fig9a|fig9b|fig4|leave-request|expense-approval"

func loadDoc(path string) *document.Document {
	raw, err := os.ReadFile(path)
	if err != nil {
		log.Fatal(err)
	}
	doc, err := document.Parse(raw)
	if err != nil {
		log.Fatal(err)
	}
	return doc
}

func cmdInspect(args []string) {
	if len(args) != 1 {
		usage()
	}
	doc := loadDoc(args[0])
	fmt.Println(doc.Summary())
	def, err := doc.Definition()
	if err != nil {
		log.Fatalf("embedded definition: %v", err)
	}
	fmt.Println("\nembedded workflow definition:")
	fmt.Print(def)
	fmt.Println("\nnote: signature verification needs the principals' registry; see 'dractl demo'.")
}

func cmdCERs(args []string) {
	if len(args) != 1 {
		usage()
	}
	doc := loadDoc(args[0])
	fmt.Printf("%-16s %-14s %-5s %-16s %s\n", "CER", "activity#iter", "kind", "signer", "signed references")
	for _, c := range doc.CERs() {
		refs := "-"
		if sig := c.Signature(); sig != nil {
			refs = strings.Join(dsig.References(sig), " ")
		}
		fmt.Printf("%-16s %-14s %-5s %-16s %s\n",
			c.ID(), fmt.Sprintf("%s#%d", c.ActivityID(), c.Iteration()),
			c.Kind()[:4], c.Signer(), refs)
	}
}

func cmdScope(args []string) {
	if len(args) != 2 {
		usage()
	}
	doc := loadDoc(args[0])
	scope, err := doc.NonrepudiationScope(args[1])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("nonrepudiation scope of %s (%d CERs):\n", args[1], len(scope))
	for _, id := range scope {
		fmt.Println("  " + id)
	}
}

// cmdDot prints the Graphviz rendering of a fixture workflow or of the
// definition embedded in a document file.
func cmdDot(args []string) {
	if len(args) != 1 {
		usage()
	}
	if def, ok := defByName(args[0]); ok {
		fmt.Print(def.DOT())
		return
	}
	doc := loadDoc(args[0])
	def, err := doc.Definition()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(def.DOT())
}

// cmdExportDef writes a fixture workflow definition as XML (for editing
// and re-validation with `dractl validate`).
func cmdExportDef(args []string) {
	if len(args) != 1 {
		usage()
	}
	def, ok := defByName(args[0])
	if !ok {
		log.Fatalf("unknown fixture %q (%s)", args[0], fixtureNames)
	}
	fmt.Println(def.ToXML().Indent())
}

// cmdValidate parses and validates a WorkflowDefinition XML file.
func cmdValidate(args []string) {
	if len(args) != 1 {
		usage()
	}
	raw, err := os.ReadFile(args[0])
	if err != nil {
		log.Fatal(err)
	}
	el, err := xmltree.ParseBytes(raw)
	if err != nil {
		log.Fatal(err)
	}
	def, err := wfdef.FromXML(el)
	if err != nil {
		log.Fatal(err)
	}
	if err := def.Validate(); err != nil {
		log.Fatalf("INVALID: %v", err)
	}
	fmt.Printf("VALID: %s\n", def.Summary())
}
