package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"dra4wfms/internal/poolcluster"
)

// testStatus is a frozen three-node, three-region directory snapshot of
// the shape a coordinator persists to its -cluster-status file.
func testStatus() poolcluster.ClusterStatus {
	return poolcluster.ClusterStatus{
		AsOf:     time.Date(2026, 8, 9, 12, 0, 0, 0, time.UTC),
		Replicas: 2,
		Nodes: []poolcluster.NodeView{
			{ID: "n1", Alive: true, Primaries: 2, Backups: 1},
			{ID: "n2", Alive: true, Primaries: 1, Backups: 1},
			{ID: "n3", Alive: false},
		},
		Regions: []poolcluster.RegionView{
			{ID: "region-0000", Start: "", End: "h", Epoch: 1, Seq: 40, Replicas: []poolcluster.ReplicaView{
				{Node: "n1", Primary: true, Alive: true, Applied: 40},
				{Node: "n2", Alive: true, Applied: 38, Lag: 2},
			}},
			{ID: "region-0001", Start: "h", End: "q", Epoch: 3, Seq: 12, Replicas: []poolcluster.ReplicaView{
				{Node: "n2", Primary: true, Alive: true, Applied: 12},
				{Node: "n1", Alive: true, Applied: 12},
			}},
			// A failed-over region: the old primary n3 is gone and the
			// promoted replica has not been topped back up yet.
			{ID: "region-0002", Start: "q", End: "", Epoch: 5, Seq: 7, Replicas: []poolcluster.ReplicaView{
				{Node: "n1", Primary: true, Alive: true, Applied: 7},
			}},
		},
	}
}

func TestPrimaryForRow(t *testing.T) {
	st := testStatus()
	cases := []struct {
		row, region, node string
	}{
		{"a-0001", "region-0000", "n1"},    // first span, open start
		{"h", "region-0001", "n2"},         // boundary row lands in the right-hand span
		{"proc-0001", "region-0001", "n2"}, // 'p' sorts below the "q" boundary
		{"q", "region-0002", "n1"},         // last span, open end
		{"zzz", "region-0002", "n1"},
	}
	for _, c := range cases {
		region, node := primaryForRow(st, c.row)
		if region != c.region || node != c.node {
			t.Errorf("primaryForRow(%q) = %s %s, want %s %s", c.row, region, node, c.region, c.node)
		}
	}
}

func TestPrimaryForRowLeaderless(t *testing.T) {
	st := testStatus()
	// Strip the primary flag from region-0001: the row still resolves to
	// its region, with no leader.
	st.Regions[1].Replicas[0].Primary = false
	region, node := primaryForRow(st, "k-0001")
	if region != "region-0001" || node != "" {
		t.Fatalf("leaderless lookup = %q %q, want region-0001 with no node", region, node)
	}
}

// TestOfflineStatusFile pins the offline path end to end: a persisted
// cluster.json round-trips through ReadStatusFile and renders the same
// operator table a live portal would produce.
func TestOfflineStatusFile(t *testing.T) {
	dir := t.TempDir()
	raw, err := json.MarshalIndent(testStatus(), "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, poolcluster.StatusFileName), raw, 0o644); err != nil {
		t.Fatal(err)
	}

	st := loadClusterStatus("", dir)
	if st.Replicas != 2 || len(st.Nodes) != 3 || len(st.Regions) != 3 {
		t.Fatalf("snapshot did not round-trip: %+v", st)
	}

	out := st.Render()
	for _, want := range []string{
		"replicas=2",
		"n3", "false", // the dead node shows up dead
		"region-0002", "[q, ∅)", // open-ended span renders with the empty marker
		"n2=backup(38/2)",  // lag is visible per replica
		"n1=primary(40/0)", // caught-up primary
	} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered status missing %q:\n%s", want, out)
		}
	}

	// The kill-target lookup the failover drill scripts use works on the
	// same offline snapshot.
	region, node := primaryForRow(st, "proc-00000042")
	if region != "region-0001" || node != "n2" {
		t.Fatalf("offline kill-target lookup = %s %s, want region-0001 n2", region, node)
	}
}
