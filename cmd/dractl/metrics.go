package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// cmdMetrics scrapes a service's GET /v1/metrics endpoint and renders the
// Prometheus exposition for humans: counters and gauges as-is, histograms
// condensed to count/mean/p50/p95/p99 estimated from the buckets.
func cmdMetrics(args []string) {
	fs := flag.NewFlagSet("metrics", flag.ExitOnError)
	url := fs.String("url", "http://localhost:8080", "portal or TFC base URL")
	filter := fs.String("filter", "", "only show metrics whose name has this prefix")
	raw := fs.Bool("raw", false, "print the exposition text verbatim")
	fs.Parse(args)

	resp, err := http.Get(strings.TrimRight(*url, "/") + "/v1/metrics")
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		log.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("GET /v1/metrics: %s: %s", resp.Status, strings.TrimSpace(string(body)))
	}
	if *raw {
		fmt.Print(string(body))
		return
	}

	scalars, hists := parseExposition(string(body))

	var names []string
	for name := range scalars {
		names = append(names, name)
	}
	sort.Strings(names)
	shown := 0
	for _, name := range names {
		if !strings.HasPrefix(name, *filter) {
			continue
		}
		fmt.Printf("%-64s %s\n", name, scalars[name])
		shown++
	}

	names = names[:0]
	for name := range hists {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if !strings.HasPrefix(name, *filter) {
			continue
		}
		h := hists[name]
		mean := 0.0
		if h.count > 0 {
			mean = h.sum / float64(h.count)
		}
		fmt.Printf("%-64s count=%d mean=%s p50=%s p95=%s p99=%s\n",
			name, h.count, fmtSeconds(mean),
			fmtSeconds(h.quantile(0.50)), fmtSeconds(h.quantile(0.95)), fmtSeconds(h.quantile(0.99)))
		shown++
	}
	if shown == 0 {
		log.Fatalf("no metrics matched filter %q", *filter)
	}
}

// histogramSeries is one histogram sample set: cumulative bucket counts
// keyed by upper bound, plus the _sum and _count series.
type histogramSeries struct {
	bounds []float64 // ascending; math.Inf(1) last
	counts []uint64  // cumulative, parallel to bounds
	sum    float64
	count  uint64
}

// quantile mirrors the server-side estimate: linear interpolation inside
// the bucket holding the q-th observation, clamping +Inf to the highest
// finite bound.
func (h *histogramSeries) quantile(q float64) float64 {
	if h.count == 0 {
		return 0
	}
	rank := q * float64(h.count)
	prevCum, lower := uint64(0), 0.0
	for i, cum := range h.counts {
		if float64(cum) >= rank {
			upper := h.bounds[i]
			if math.IsInf(upper, 1) {
				if i > 0 {
					return h.bounds[i-1]
				}
				return 0
			}
			in := cum - prevCum
			if in == 0 {
				return upper
			}
			return lower + (upper-lower)*(rank-float64(prevCum))/float64(in)
		}
		prevCum, lower = cum, h.bounds[i]
	}
	return h.bounds[len(h.bounds)-1]
}

// parseExposition splits Prometheus text into scalar samples (counters and
// gauges, rendered name{labels} → value string) and histogram series keyed
// by name{non-le labels}.
func parseExposition(text string) (map[string]string, map[string]*histogramSeries) {
	kinds := map[string]string{}
	scalars := map[string]string{}
	hists := map[string]*histogramSeries{}
	for _, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			if parts := strings.Fields(rest); len(parts) == 2 {
				kinds[parts[0]] = parts[1]
			}
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		name, labels, value, ok := parseSample(line)
		if !ok {
			continue
		}
		base, suffix := name, ""
		for _, s := range []string{"_bucket", "_sum", "_count"} {
			if b, found := strings.CutSuffix(name, s); found && kinds[b] == "histogram" {
				base, suffix = b, s
				break
			}
		}
		if suffix == "" {
			scalars[name+labelSuffix(labels, "")] = value
			continue
		}
		key := base + labelSuffix(labels, "le")
		h := hists[key]
		if h == nil {
			h = &histogramSeries{}
			hists[key] = h
		}
		switch suffix {
		case "_sum":
			h.sum, _ = strconv.ParseFloat(value, 64)
		case "_count":
			h.count, _ = strconv.ParseUint(value, 10, 64)
		case "_bucket":
			le := labelValue(labels, "le")
			bound := math.Inf(1)
			if le != "+Inf" {
				bound, _ = strconv.ParseFloat(le, 64)
			}
			cum, _ := strconv.ParseUint(value, 10, 64)
			h.bounds = append(h.bounds, bound)
			h.counts = append(h.counts, cum)
		}
	}
	return scalars, hists
}

// parseSample splits `name{k="v",...} value` into its parts; labels is the
// raw brace content ("" when absent).
func parseSample(line string) (name, labels, value string, ok bool) {
	sp := strings.LastIndexByte(line, ' ')
	if sp < 0 {
		return "", "", "", false
	}
	series, value := line[:sp], line[sp+1:]
	if open := strings.IndexByte(series, '{'); open >= 0 {
		if !strings.HasSuffix(series, "}") {
			return "", "", "", false
		}
		return series[:open], series[open+1 : len(series)-1], value, true
	}
	return series, "", value, true
}

// labelSuffix re-renders labels (minus one excluded key) for display keys.
func labelSuffix(labels, exclude string) string {
	if labels == "" {
		return ""
	}
	var kept []string
	for _, pair := range splitPairs(labels) {
		if exclude != "" && strings.HasPrefix(pair, exclude+"=") {
			continue
		}
		kept = append(kept, pair)
	}
	if len(kept) == 0 {
		return ""
	}
	return "{" + strings.Join(kept, ",") + "}"
}

// labelValue extracts one label's (unescaped-enough) value.
func labelValue(labels, key string) string {
	for _, pair := range splitPairs(labels) {
		if rest, ok := strings.CutPrefix(pair, key+"="); ok {
			return strings.Trim(rest, `"`)
		}
	}
	return ""
}

// splitPairs splits `k="v",k2="v2"` on commas outside quotes.
func splitPairs(labels string) []string {
	var pairs []string
	start, inQuotes, escaped := 0, false, false
	for i := 0; i < len(labels); i++ {
		c := labels[i]
		switch {
		case escaped:
			escaped = false
		case c == '\\':
			escaped = true
		case c == '"':
			inQuotes = !inQuotes
		case c == ',' && !inQuotes:
			pairs = append(pairs, labels[start:i])
			start = i + 1
		}
	}
	if start < len(labels) {
		pairs = append(pairs, labels[start:])
	}
	return pairs
}

// fmtSeconds renders a seconds value at a readable scale. Histograms in
// this codebase record either seconds or byte sizes; sub-1000 values get
// duration-style units, larger ones plain notation.
func fmtSeconds(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v < 1e-3:
		return fmt.Sprintf("%.1fµs", v*1e6)
	case v < 1:
		return fmt.Sprintf("%.2fms", v*1e3)
	case v < 1000:
		return fmt.Sprintf("%.3fs", v)
	default:
		return strconv.FormatFloat(v, 'g', 4, 64)
	}
}
