// draportal runs a DRA4WfMS portal server over HTTP (Figure 7 of the
// paper): it hosts a document pool, the portal logic, and the monitoring
// endpoints, authenticating every request against the deployment's trust
// bundle (see drakeys).
//
// Usage:
//
//	draportal -listen :8080 -trust deploy/trust.json [-servers 3]
//
// Note: each draportal process hosts its own in-memory pool. Pointing
// several portals at one shared pool service would require the pool to be
// a networked service of its own — internal/pool models the store, the
// cross-process protocol is out of scope for this binary.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"dra4wfms/internal/dsig"
	"dra4wfms/internal/httpapi"
	"dra4wfms/internal/monitor"
	"dra4wfms/internal/pki"
	"dra4wfms/internal/pool"
	"dra4wfms/internal/portal"
	"dra4wfms/internal/telemetry"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("draportal: ")
	listen := flag.String("listen", ":8080", "listen address")
	trust := flag.String("trust", "deploy/trust.json", "trust bundle path")
	servers := flag.Int("servers", 3, "pool region servers")
	keyPath := flag.String("key", "", "portal private-key PEM; enables signed webhook notifications")
	webhookWAL := flag.String("webhook-wal", "", "outbox WAL file for webhook deliveries; pending notifications survive restarts (requires -key)")
	pprofOn := flag.Bool("pprof", false, "serve /debug/pprof/* on the listen address")
	slowOps := flag.Duration("slowops", 0, "log spans slower than this duration (0 disables)")
	verifyWorkers := flag.Int("verify-workers", 0, "max concurrent signature verifications per document (0 = all cores, 1 = serial)")
	verifyCache := flag.Int("verify-cache", dsig.DefaultCacheSize, "verified-prefix cache entries (0 disables the cache)")
	flag.Parse()

	dsig.Configure(*verifyWorkers, *verifyCache)
	if *slowOps > 0 {
		telemetry.Default().SetSlowOpThreshold(*slowOps)
		telemetry.Default().SetSlowOpLogger(log.Default())
		log.Printf("logging operations slower than %s", *slowOps)
	}

	data, err := os.ReadFile(*trust)
	if err != nil {
		log.Fatal(err)
	}
	bundle, err := pki.ParseBundle(data)
	if err != nil {
		log.Fatal(err)
	}
	reg, err := bundle.BuildRegistry(time.Now())
	if err != nil {
		log.Fatal(err)
	}

	ids := make([]string, *servers)
	for i := range ids {
		ids[i] = fmt.Sprintf("rs-%d", i+1)
	}
	cluster, err := pool.NewCluster(ids, 1<<20)
	if err != nil {
		log.Fatal(err)
	}
	table, err := portal.CreateTable(cluster)
	if err != nil {
		log.Fatal(err)
	}

	p := portal.New("portal", reg, table, time.Now)
	srv := httpapi.NewPortalServer(p, monitor.New(table), httpapi.NewAuthenticator(reg, time.Now))
	srv.EnablePprof = *pprofOn
	if *keyPath != "" {
		keyPEM, err := os.ReadFile(*keyPath)
		if err != nil {
			log.Fatal(err)
		}
		keys, err := pki.DecodePrivateKeyPEM(keyPEM)
		if err != nil {
			log.Fatal(err)
		}
		srv.EnableWebhooksAt(keys, *webhookWAL)
		if *webhookWAL != "" {
			log.Printf("webhook notifications enabled, signing as %s, outbox WAL %s", keys.Owner, *webhookWAL)
		} else {
			log.Printf("webhook notifications enabled, signing as %s", keys.Owner)
		}
	} else if *webhookWAL != "" {
		log.Fatal("-webhook-wal requires -key")
	}
	log.Printf("serving %d principals on %s", len(reg.Principals()), *listen)
	log.Fatal(httpapi.ListenAndServe(*listen, srv.Handler()))
}
