// draportal runs a DRA4WfMS portal server over HTTP (Figure 7 of the
// paper): it hosts a document pool, the portal logic, and the monitoring
// endpoints, authenticating every request against the deployment's trust
// bundle (see drakeys).
//
// Usage:
//
//	draportal -listen :8080 -trust deploy/trust.json [-servers 3]
//	          [-data-dir ./data] [-fsync=true] [-checkpoint-interval 5m]
//	          [-grace 15s]
//	          [-cluster-nodes n1=http://…,n2=http://…] [-replicas 2]
//	          [-cluster-wal FILE] [-cluster-status FILE]
//
// With -data-dir the document pool is crash-safe: every mutation is
// journaled to a checksummed WAL before it is acknowledged, checkpoints
// are written periodically, and on boot the pool recovers from the latest
// valid checkpoint plus the WAL suffix. GET /v1/readyz reports 200 only
// after recovery has completed. On SIGINT/SIGTERM the server drains
// in-flight requests, flushes the webhook outbox, writes a final
// checkpoint, and exits 0.
//
// By default each draportal process hosts its own pool. With
// -cluster-nodes the portal instead coordinates a fleet of drapool
// processes: writes replicate across -replicas nodes, the portal's reads
// are read-your-writes, and killing a pool node loses no acknowledged
// write (see DESIGN.md "Clustered pool"). -cluster-nodes is mutually
// exclusive with -data-dir — durability then lives on the drapool nodes.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dra4wfms/internal/chaos"
	"dra4wfms/internal/dsig"
	"dra4wfms/internal/httpapi"
	"dra4wfms/internal/monitor"
	"dra4wfms/internal/pki"
	"dra4wfms/internal/pool"
	"dra4wfms/internal/poolcluster"
	"dra4wfms/internal/portal"
	"dra4wfms/internal/relay"
	"dra4wfms/internal/telemetry"
	"dra4wfms/internal/trace"
)

// maxRelayBacklog is the webhook outbox depth past which /v1/readyz
// reports unready (delivery is falling behind; stop routing new work).
const maxRelayBacklog = 10_000

// maxReplicaLag is the backup replication lag (in WAL records) past
// which /v1/readyz reports *degraded* — still 200, the primary serves,
// but the shrinking failover safety margin is surfaced.
const maxReplicaLag = 1_000

func main() {
	log.SetFlags(0)
	log.SetPrefix("draportal: ")
	listen := flag.String("listen", ":8080", "listen address")
	trust := flag.String("trust", "deploy/trust.json", "trust bundle path")
	servers := flag.Int("servers", 3, "pool region servers")
	keyPath := flag.String("key", "", "portal private-key PEM; enables signed webhook notifications")
	webhookWAL := flag.String("webhook-wal", "", "outbox WAL file for webhook deliveries; pending notifications survive restarts (requires -key)")
	dataDir := flag.String("data-dir", "", "durable pool directory (WAL + checkpoints); empty keeps the pool memory-only")
	clusterNodes := flag.String("cluster-nodes", "", "clustered pool: comma-separated id=url list of drapool nodes (mutually exclusive with -data-dir)")
	replicas := flag.Int("replicas", 2, "copies of each region across the drapool fleet, primary included (requires -cluster-nodes)")
	clusterWAL := flag.String("cluster-wal", "", "replication outbox WAL file; journaled replication intents survive portal restarts (requires -cluster-nodes)")
	clusterStatus := flag.String("cluster-status", "", "file receiving the region-directory snapshot on every topology change, for offline `dractl cluster status -data-dir` (requires -cluster-nodes)")
	fsync := flag.Bool("fsync", true, "fsync the pool WAL on every mutation (requires -data-dir; disable only for benchmarks)")
	ckInterval := flag.Duration("checkpoint-interval", 5*time.Minute, "periodic pool checkpoint interval (0 disables periodic checkpoints)")
	grace := flag.Duration("grace", 15*time.Second, "shutdown grace period for draining in-flight requests")
	pprofOn := flag.Bool("pprof", false, "serve /debug/pprof/* on the listen address")
	slowOps := flag.Duration("slowops", 0, "log spans slower than this duration (0 disables)")
	verifyWorkers := flag.Int("verify-workers", 0, "max concurrent signature verifications per document (0 = all cores, 1 = serial)")
	verifyCache := flag.Int("verify-cache", dsig.DefaultCacheSize, "verified-prefix cache entries (0 disables the cache)")
	suite := flag.String("suite", dsig.SignatureAlg, "signature suite for locally produced signatures; verification always honors each signature's recorded algorithm")
	traceOut := flag.String("trace-out", "", "append finished trace spans to this file as JSONL (empty disables the export; GET /v1/traces always serves the in-memory ring)")
	traceSample := flag.Float64("trace-sample", 1, "fraction of locally rooted traces to record, 0..1; hops continuing an inbound traceparent honor its sampled flag instead")
	maxInflight := flag.Int("max-inflight", 0, "admission control: shed requests beyond this many in flight with 429 (0 disables; probes always pass, writes shed before reads)")
	chaosOn := flag.Bool("chaos", false, "serve the "+chaos.AdminPath+" fault-injection control plane (TEST ONLY: unauthenticated)")
	chaosSeed := flag.Int64("chaos-seed", 42, "deterministic seed for the chaos fault PRNG (requires -chaos)")
	flag.Parse()

	dsig.Configure(*verifyWorkers, *verifyCache)
	if err := dsig.ConfigureSuite(*suite); err != nil {
		log.Fatalf("-suite: %v", err)
	}
	if *traceSample < 1 {
		trace.Default().SetSampler(trace.RatioSample(*traceSample))
		log.Printf("sampling %.0f%% of trace roots", *traceSample*100)
	}
	var traceFile *os.File
	if *traceOut != "" {
		f, err := os.OpenFile(*traceOut, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
		if err != nil {
			log.Fatalf("opening -trace-out: %v", err)
		}
		traceFile = f
		trace.Default().SetOutput(f)
		log.Printf("exporting trace spans to %s", *traceOut)
	}
	if *slowOps > 0 {
		telemetry.Default().SetSlowOpThreshold(*slowOps)
		telemetry.Default().SetSlowOpLogger(log.Default())
		log.Printf("logging operations slower than %s", *slowOps)
	}

	data, err := os.ReadFile(*trust)
	if err != nil {
		log.Fatal(err)
	}
	bundle, err := pki.ParseBundle(data)
	if err != nil {
		log.Fatal(err)
	}
	reg, err := bundle.BuildRegistry(time.Now())
	if err != nil {
		log.Fatal(err)
	}

	// The documents table: a local in-process pool (optionally durable via
	// -data-dir) or a read-your-writes session over a drapool fleet.
	var docs pool.DocTable
	var store *pool.Store
	var pc *poolcluster.Cluster
	if *clusterNodes != "" {
		if *dataDir != "" {
			log.Fatal("-cluster-nodes and -data-dir are mutually exclusive: with a clustered pool, durability lives on the drapool nodes")
		}
		refs, err := httpapi.ParseClusterNodes(*clusterNodes)
		if err != nil {
			log.Fatal(err)
		}
		pc, err = poolcluster.New(refs, poolcluster.Config{
			Replicas:   *replicas,
			RelayDir:   *clusterWAL,
			StatusPath: *clusterStatus,
		})
		if err != nil {
			log.Fatalf("joining pool cluster: %v", err)
		}
		docs = pc.NewSession()
		log.Printf("clustered pool: %d nodes, %d replicas per region", len(refs), pc.Replicas())
	} else {
		ids := make([]string, *servers)
		for i := range ids {
			ids[i] = fmt.Sprintf("rs-%d", i+1)
		}
		cluster, err := pool.NewCluster(ids, 1<<20)
		if err != nil {
			log.Fatal(err)
		}
		table, err := portal.CreateTable(cluster)
		if err != nil {
			log.Fatal(err)
		}
		docs = table

		// Durable pool: recover before taking traffic, so readyz gates on
		// a fully replayed table.
		if *dataDir != "" {
			var rep *pool.RecoveryReport
			store, rep, err = pool.Open(table, *dataDir, pool.StoreOptions{
				NoFsync:            !*fsync,
				CheckpointInterval: *ckInterval,
			})
			if err != nil {
				log.Fatalf("opening durable pool in %s: %v", *dataDir, err)
			}
			log.Printf("durable pool in %s: %s", *dataDir, rep.Summary())
			if rep.Damaged() {
				log.Printf("WARNING: recovery quarantined damaged WAL data (%s); inspect %s", rep.DamageReason, rep.QuarantineFile)
			}
		}
	}

	p := portal.New("portal", reg, docs, time.Now)
	srv := httpapi.NewPortalServer(p, monitor.New(docs), httpapi.NewAuthenticator(reg, time.Now))
	srv.EnablePprof = *pprofOn
	srv.Cluster = pc
	probes := httpapi.NewProbes()
	srv.Probes = probes
	if pc != nil {
		// A region without a live primary cannot accept writes: unready.
		// A lagging backup still serves: degraded, stays in rotation.
		probes.AddCheck("cluster", pc.HealthCheck)
		probes.AddDegradedCheck("replication-lag", pc.LagCheck(maxReplicaLag))
	}
	if *keyPath != "" {
		keyPEM, err := os.ReadFile(*keyPath)
		if err != nil {
			log.Fatal(err)
		}
		keys, err := pki.DecodePrivateKeyPEM(keyPEM)
		if err != nil {
			log.Fatal(err)
		}
		srv.EnableWebhooksAt(keys, *webhookWAL)
		if *webhookWAL != "" {
			log.Printf("webhook notifications enabled, signing as %s, outbox WAL %s", keys.Owner, *webhookWAL)
		} else {
			log.Printf("webhook notifications enabled, signing as %s", keys.Owner)
		}
		probes.AddCheck("relay", httpapi.RelaySaturationCheck(func() *relay.Relay {
			return srv.Webhooks.Relay()
		}, maxRelayBacklog))
	} else if *webhookWAL != "" {
		log.Fatal("-webhook-wal requires -key")
	}

	// Admission control: bound the in-flight request count and shed the
	// excess with 429 before any RSA work is bought. Pressure signals —
	// verify-pool depth and webhook-relay backlog — shed writes early so
	// reads and probes stay responsive under overload.
	if *maxInflight > 0 {
		cfg := httpapi.AdmissionConfig{
			MaxInFlight: *maxInflight,
			VerifyDepth: dsig.PoolDepth,
		}
		if srv.Webhooks != nil {
			cfg.RelayPending = func() int {
				if r := srv.Webhooks.Relay(); r != nil {
					return int(r.Stats().Pending)
				}
				return 0
			}
		}
		srv.Admission = httpapi.NewAdmission(cfg)
		log.Printf("admission control: max %d in-flight requests", *maxInflight)
	}

	// Recovery is complete and all subsystems are wired: advertise ready.
	probes.SetReady(true)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	handler := http.Handler(srv.Handler())
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatalf("listening on %s: %v", *listen, err)
	}
	if *chaosOn {
		// Chaos mode: partitions gate the handler, crash/slow wrap the
		// listener, and the control plane on AdminPath stays reachable so
		// drills can heal what they injected. Test-only.
		cnet := chaos.NewNetwork(*chaosSeed)
		mux := http.NewServeMux()
		mux.Handle(chaos.AdminPath, cnet.Handler())
		mux.Handle("/", handler)
		handler = cnet.Gate("portal", mux)
		ln = cnet.WrapListener("portal", ln)
		log.Printf("CHAOS MODE: fault injection enabled (seed %d, control plane on %s)", *chaosSeed, chaos.AdminPath)
	}

	log.Printf("serving %d principals on %s", len(reg.Principals()), *listen)
	if err := httpapi.ServeListener(ctx, ln, handler, *grace, func() {
		log.Printf("shutdown requested, draining in-flight requests (grace %s)", *grace)
		probes.StartDraining()
	}); err != nil {
		log.Fatalf("serving: %v", err)
	}

	// Drain order: webhook outbox first (it may still append relay state),
	// then the pool's final checkpoint.
	if srv.Webhooks != nil {
		if err := srv.Webhooks.Close(); err != nil {
			log.Printf("flushing webhook outbox: %v", err)
		}
	}
	if pc != nil {
		// Best-effort convergence before handoff; unjournaled nothing is
		// at stake (intents are already durable), this just shortens the
		// next coordinator's catch-up.
		qctx, qcancel := context.WithTimeout(context.Background(), 10*time.Second)
		if err := pc.Quiesce(qctx); err != nil {
			log.Printf("cluster quiesce: %v", err)
		}
		qcancel()
		if err := pc.Close(); err != nil {
			log.Printf("closing cluster coordinator: %v", err)
		}
	}
	if store != nil {
		if err := store.Close(); err != nil {
			log.Fatalf("final checkpoint: %v", err)
		}
		log.Printf("final checkpoint written to %s", store.Dir())
	}
	if traceFile != nil {
		trace.Default().SetOutput(nil)
		if err := traceFile.Close(); err != nil {
			log.Printf("closing trace export: %v", err)
		}
	}
	log.Print("shutdown complete")
}
