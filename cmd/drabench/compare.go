package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"
)

// Trajectory comparison: `drabench -compare` diffs the two newest
// BENCH_<n>.json files — the previous run is the baseline, the newest is
// the candidate — and exits nonzero when any named duration metric
// regressed by more than the threshold. This is the ratchet half of the
// trajectory files: -json records runs, -compare refuses to let them
// quietly get slower.

// benchMetric is one named measurement extracted from a trajectory:
// durations for the α/β/γ timings, bytes for the Σ document sizes.
type benchMetric struct {
	Name  string
	Value float64
	Unit  string // "ns" or "B"
}

// format renders the value in its unit for the report table.
func (m benchMetric) format(v float64) string {
	if m.Unit == "B" {
		return fmt.Sprintf("%.0fB", v)
	}
	return time.Duration(v).Round(time.Microsecond).String()
}

// metricsOf flattens a trajectory into named metrics. Names are stable
// across runs ("table1/X_A(0)/alpha", "cascade/cers=64/verify", …) so
// two trajectories join on them.
func metricsOf(traj *trajectory) []benchMetric {
	var out []benchMetric
	add := func(name string, d time.Duration) {
		out = append(out, benchMetric{Name: name, Value: float64(d), Unit: "ns"})
	}
	addBytes := func(name string, b int) {
		out = append(out, benchMetric{Name: name, Value: float64(b), Unit: "B"})
	}
	for _, r := range traj.Table1 {
		add(fmt.Sprintf("table1/%s/alpha", r.Doc), r.Alpha)
		add(fmt.Sprintf("table1/%s/beta", r.Doc), r.Beta)
		addBytes(fmt.Sprintf("table1/%s/sigma", r.Doc), r.Sigma)
	}
	for _, r := range traj.Table2 {
		add(fmt.Sprintf("table2/%s:%s/alpha", r.Doc, r.Stage), r.Alpha)
		add(fmt.Sprintf("table2/%s:%s/beta", r.Doc, r.Stage), r.Beta)
		add(fmt.Sprintf("table2/%s:%s/gamma", r.Doc, r.Stage), r.Gamma)
		addBytes(fmt.Sprintf("table2/%s:%s/sigma", r.Doc, r.Stage), r.Sigma)
	}
	for _, r := range traj.Cascade {
		add(fmt.Sprintf("cascade/cers=%d/verify", r.CERs), r.VerifyTime)
		add(fmt.Sprintf("cascade/cers=%d/warm_verify", r.CERs), r.WarmVerifyTime)
		add(fmt.Sprintf("cascade/cers=%d/scope", r.CERs), r.ScopeTime)
	}
	for _, r := range traj.VerifyCache {
		add(fmt.Sprintf("verifycache/cers=%d/cold_serial", r.CERs), r.ColdSerial)
		add(fmt.Sprintf("verifycache/cers=%d/cold_fast", r.CERs), r.ColdFast)
		add(fmt.Sprintf("verifycache/cers=%d/warm_hop", r.CERs), r.WarmHop)
	}
	for _, r := range traj.PoolScale {
		base := fmt.Sprintf("poolscale/servers=%d,docs=%d", r.Servers, r.Documents)
		add(base+"/store_doc", time.Duration(r.StoreMicrosPerDoc*float64(time.Microsecond)))
		add(base+"/query_doc", time.Duration(r.QueryMicrosPerDoc*float64(time.Microsecond)))
	}
	for _, r := range traj.Crypto {
		add(fmt.Sprintf("crypto/%s/%s_hop", r.Suite, r.Mode), r.Hop)
		add(fmt.Sprintf("crypto/%s/%s_verify", r.Suite, r.Mode), r.Verify)
		add(fmt.Sprintf("crypto/%s/%s_sign", r.Suite, r.Mode), r.Sign)
	}
	if f := traj.PoolFailover; f != nil {
		add("poolfailover/failover_write", f.FailoverLatency)
		add("poolfailover/max_stall", f.MaxStall)
		add("poolfailover/mean_write", f.MeanWrite)
	}
	for _, r := range traj.Chaos {
		base := "chaos/" + r.Scenario
		if r.FailoverLatency > 0 {
			add(base+"/failover", r.FailoverLatency)
		}
		if r.Recovery > 0 {
			add(base+"/recovery", r.Recovery)
		}
		if r.MeanWrite > 0 {
			add(base+"/mean_write", r.MeanWrite)
		}
		if r.MaxStall > 0 {
			add(base+"/max_stall", r.MaxStall)
		}
	}
	return out
}

// newestTrajectories returns the paths of the two highest-numbered
// BENCH_<n>.json files in dir, baseline first.
func newestTrajectories(dir string) (baseline, candidate string, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return "", "", err
	}
	var ns []int
	for _, e := range entries {
		var n int
		if _, err := fmt.Sscanf(e.Name(), "BENCH_%d.json", &n); err == nil {
			ns = append(ns, n)
		}
	}
	if len(ns) < 2 {
		return "", "", nil
	}
	sort.Ints(ns)
	baseline = filepath.Join(dir, fmt.Sprintf("BENCH_%d.json", ns[len(ns)-2]))
	candidate = filepath.Join(dir, fmt.Sprintf("BENCH_%d.json", ns[len(ns)-1]))
	return baseline, candidate, nil
}

func readTrajectory(path string) (*trajectory, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var traj trajectory
	if err := json.Unmarshal(data, &traj); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &traj, nil
}

// compareTrajectories joins the two runs' metrics by name and reports
// every regression beyond threshold (0.10 = 10% slower). Metrics whose
// larger side is below floor are ignored: at sub-floor absolute times the
// relative delta is measurement noise, not a regression.
func compareTrajectories(base, cand *trajectory, threshold float64, floor time.Duration) (report string, regressions int) {
	baseBy := map[string]float64{}
	for _, m := range metricsOf(base) {
		baseBy[m.Name] = m.Value
	}
	out := fmt.Sprintf("%-40s %12s %12s %8s\n", "metric", "baseline", "candidate", "delta")
	compared := 0
	for _, m := range metricsOf(cand) {
		old, ok := baseBy[m.Name]
		if !ok || old <= 0 {
			continue
		}
		compared++
		delta := (m.Value - old) / old
		mark := ""
		if m.Value > old && delta > threshold {
			// The noise floor applies to durations only: document sizes
			// are deterministic, so any growth there is real.
			if m.Unit == "ns" && m.Value < float64(floor) && old < float64(floor) {
				mark = "  (noise: below floor)"
			} else {
				mark = "  REGRESSION"
				regressions++
			}
		}
		out += fmt.Sprintf("%-40s %12s %12s %+7.1f%%%s\n",
			m.Name, m.format(old), m.format(m.Value), delta*100, mark)
	}
	out += fmt.Sprintf("\n%d metrics compared, %d regression(s) beyond %.0f%% (floor %s)\n",
		compared, regressions, threshold*100, floor)
	return out, regressions
}

// runCompare is the -compare entry point: returns the process exit code.
func runCompare(dir string, threshold float64, floor time.Duration) int {
	basePath, candPath, err := newestTrajectories(dir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "drabench: %v\n", err)
		return 2
	}
	if basePath == "" {
		fmt.Printf("fewer than two BENCH_<n>.json trajectories in %s — nothing to compare yet\n", dir)
		return 0
	}
	base, err := readTrajectory(basePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "drabench: %v\n", err)
		return 2
	}
	cand, err := readTrajectory(candPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "drabench: %v\n", err)
		return 2
	}
	fmt.Printf("comparing %s (baseline) → %s (candidate)\n\n", basePath, candPath)
	report, regressions := compareTrajectories(base, cand, threshold, floor)
	fmt.Print(report)
	if regressions > 0 {
		return 1
	}
	return 0
}
