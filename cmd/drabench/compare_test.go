package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"dra4wfms/internal/bench"
)

// writeBenchFile marshals traj to dir/BENCH_<n>.json.
func writeBenchFile(t *testing.T, dir string, n int, traj *trajectory) {
	t.Helper()
	data, err := json.Marshal(traj)
	if err != nil {
		t.Fatal(err)
	}
	name := filepath.Join(dir, "BENCH_"+itoa(n)+".json")
	if err := os.WriteFile(name, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}

func sampleTrajectory(alpha time.Duration, sigma int) *trajectory {
	return &trajectory{
		Bits: 2048, Reps: 1, Experiment: "table1",
		Table1: []bench.Table1Row{
			{Doc: "X_A(0)", SigsVerified: 1, CERs: 1, Alpha: alpha, Beta: 2 * alpha, Sigma: sigma},
		},
		Cascade: []bench.CascadeRow{
			{CERs: 4, VerifyTime: 40 * time.Millisecond, WarmVerifyTime: 4 * time.Millisecond, ScopeTime: time.Millisecond},
		},
	}
}

func TestCompareDetectsRegression(t *testing.T) {
	base := sampleTrajectory(100*time.Millisecond, 1000)
	cand := sampleTrajectory(150*time.Millisecond, 1000) // 50% slower

	report, regressions := compareTrajectories(base, cand, 0.10, 5*time.Millisecond)
	if regressions == 0 {
		t.Fatalf("50%% slowdown not flagged:\n%s", report)
	}
	if !strings.Contains(report, "REGRESSION") {
		t.Fatalf("report missing REGRESSION marker:\n%s", report)
	}
	if !strings.Contains(report, "table1/X_A(0)/alpha") {
		t.Fatalf("report missing metric name:\n%s", report)
	}

	// Within threshold: clean.
	cand2 := sampleTrajectory(105*time.Millisecond, 1000) // 5% slower
	report, regressions = compareTrajectories(base, cand2, 0.10, 5*time.Millisecond)
	if regressions != 0 {
		t.Fatalf("5%% slowdown flagged at a 10%% threshold:\n%s", report)
	}
}

func TestCompareFloorDampsNoise(t *testing.T) {
	// 100µs → 200µs is +100%, but both sit below the 5ms floor: noise.
	base := sampleTrajectory(100*time.Microsecond, 1000)
	cand := sampleTrajectory(200*time.Microsecond, 1000)
	report, regressions := compareTrajectories(base, cand, 0.10, 5*time.Millisecond)
	if regressions != 0 {
		t.Fatalf("sub-floor delta flagged as regression:\n%s", report)
	}
	if !strings.Contains(report, "below floor") {
		t.Fatalf("report missing the noise annotation:\n%s", report)
	}

	// Document sizes are deterministic: growth counts even below any floor.
	cand2 := sampleTrajectory(100*time.Microsecond, 2000)
	_, regressions = compareTrajectories(base, cand2, 0.10, 5*time.Millisecond)
	if regressions == 0 {
		t.Fatal("doubled document size not flagged (sizes must ignore the noise floor)")
	}
}

func TestRunCompareEndToEnd(t *testing.T) {
	dir := t.TempDir()

	// Fewer than two trajectories: nothing to compare, exit 0.
	if code := runCompare(dir, 0.10, 5*time.Millisecond); code != 0 {
		t.Fatalf("empty dir exit = %d, want 0", code)
	}
	writeBenchFile(t, dir, 1, sampleTrajectory(100*time.Millisecond, 1000))
	if code := runCompare(dir, 0.10, 5*time.Millisecond); code != 0 {
		t.Fatalf("single-file exit = %d, want 0", code)
	}

	// Two files, newest regressed: exit 1; the two HIGHEST-numbered files
	// are chosen (the clean n=2 run must be skipped as stale).
	writeBenchFile(t, dir, 2, sampleTrajectory(90*time.Millisecond, 1000))
	writeBenchFile(t, dir, 3, sampleTrajectory(10*time.Millisecond, 1000))
	writeBenchFile(t, dir, 10, sampleTrajectory(200*time.Millisecond, 1000))
	if code := runCompare(dir, 0.10, 5*time.Millisecond); code != 1 {
		t.Fatalf("regressed candidate exit = %d, want 1", code)
	}

	// Newest now improves on its baseline: exit 0 again.
	writeBenchFile(t, dir, 11, sampleTrajectory(20*time.Millisecond, 1000))
	if code := runCompare(dir, 0.10, 5*time.Millisecond); code != 0 {
		t.Fatalf("improved candidate exit = %d, want 0", code)
	}

	// Corrupt candidate: I/O error, exit 2.
	if err := os.WriteFile(filepath.Join(dir, "BENCH_12.json"), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if code := runCompare(dir, 0.10, 5*time.Millisecond); code != 2 {
		t.Fatalf("corrupt candidate exit = %d, want 2", code)
	}
}
