// drabench regenerates the paper's evaluation: Table 1 (basic operational
// model) and Table 2 (advanced operational model) on the Figure 9
// workflows, plus the ablation and comparison experiments indexed in
// DESIGN.md. It prints the same rows/series the paper reports; absolute
// times differ from the 2012 testbed (JDK 6, Core 2 Quad), the shape is
// what reproduces.
//
// Usage:
//
//	drabench [-experiment all|table1|table2|cascade|verifycache|elementwise|
//	          multirecipient|tfc|scalability|dos|engine|poolscale|pool|faults]
//	         [-bits 2048] [-reps 5] [-json] [-faults]
//	drabench -compare [-bench-dir DIR] [-threshold 0.10] [-floor 5ms]
//
// After the experiments it prints the run's telemetry — crypto op counts
// and latency histograms accumulated by the instrumented packages — as a
// table, or as a JSON metrics section with -json. With -json the α/β/Σ
// tables of the run are additionally written to a BENCH_<n>.json
// trajectory file in the current directory (n auto-increments), so future
// changes can diff performance against recorded runs; see EXPERIMENTS.md
// "Raw outputs" for the format.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"dra4wfms/internal/bench"
	"dra4wfms/internal/cloudsim"
	"dra4wfms/internal/relay"
	"dra4wfms/internal/telemetry"
)

func main() {
	experiment := flag.String("experiment", "all", "which experiment to run")
	bits := flag.Int("bits", 2048, "RSA modulus size")
	reps := flag.Int("reps", 5, "repetitions to average over (tables)")
	jsonOut := flag.Bool("json", false, "emit the closing telemetry snapshot as JSON on stdout (tables move to stderr)")
	faultsOnly := flag.Bool("faults", false, "shorthand for -experiment faults")
	compare := flag.Bool("compare", false, "compare the two newest BENCH_<n>.json trajectories instead of running experiments; exits 1 on regression")
	benchDir := flag.String("bench-dir", ".", "directory holding the BENCH_<n>.json trajectories (-compare)")
	threshold := flag.Float64("threshold", 0.10, "relative slowdown that counts as a regression (-compare; 0.10 = 10%)")
	floor := flag.Duration("floor", 5*time.Millisecond, "ignore regressions whose absolute times are both below this (-compare noise damping)")
	chaosSeed := flag.Int64("chaos-seed", 42, "PRNG seed for the chaos experiment's fault schedule")
	flag.Parse()
	if *faultsOnly {
		*experiment = "faults"
	}
	if *compare {
		os.Exit(runCompare(*benchDir, *threshold, *floor))
	}

	// With -json, stdout must stay machine-readable: divert the human
	// tables (all printed via fmt.Printf) to stderr for the run, keeping
	// the real stdout for the closing JSON document.
	jsonDst := os.Stdout
	if *jsonOut {
		os.Stdout = os.Stderr
	}

	// traj collects the rows of the tables that ran, for the BENCH_<n>.json
	// trajectory file written with -json.
	traj := &trajectory{Bits: *bits, Reps: *reps, Experiment: *experiment}

	run := func(name string, fn func() error) {
		switch *experiment {
		case "all", name:
			fmt.Printf("\n================ %s ================\n", name)
			if err := fn(); err != nil {
				log.Fatalf("%s: %v", name, err)
			}
		}
	}

	run("table1", func() error {
		fmt.Printf("Table 1 — basic operational model, Figure 9A (RSA-%d, %d reps)\n", *bits, *reps)
		rows, err := bench.RunTable1(*bits, *reps)
		if err != nil {
			return err
		}
		traj.Table1 = rows
		fmt.Print(bench.FormatTable1(rows))
		fmt.Println("expected shape: alpha grows ~linearly with #sigs; beta ~constant; Sigma linear.")
		return nil
	})

	run("table2", func() error {
		fmt.Printf("Table 2 — advanced operational model via TFC, Figure 9B (RSA-%d, %d reps)\n", *bits, *reps)
		rows, err := bench.RunTable2(*bits, *reps)
		if err != nil {
			return err
		}
		traj.Table2 = rows
		fmt.Print(bench.FormatTable2(rows))
		fmt.Println("expected shape: alpha grows with #CERs on both AEA and TFC sides; beta, gamma ~constant;")
		fmt.Println("documents larger than Table 1 (intermediate CERs + timestamps).")
		return nil
	})

	run("cascade", func() error {
		fmt.Println("Ablation — signature-cascade depth (VerifyAll and Algorithm 1 vs chain length;")
		fmt.Printf("median of %d reps after warm-up; 'verify' is the serial cache-less baseline,\n", *reps)
		fmt.Println("'verify(warm)' re-verifies through a warm verified-prefix cache)")
		rows, err := bench.RunCascadeDepth(*bits, []int{1, 2, 4, 8, 16, 32}, *reps)
		if err != nil {
			return err
		}
		traj.Cascade = rows
		fmt.Printf("%6s %14s %14s %10s %14s %8s\n", "CERs", "verify", "verify(warm)", "bytes", "scope(Alg.1)", "|scope|")
		for _, r := range rows {
			fmt.Printf("%6d %14v %14v %10d %14v %8d\n", r.CERs, r.VerifyTime.Round(time.Microsecond),
				r.WarmVerifyTime.Round(time.Microsecond),
				r.DocBytes, r.ScopeTime.Round(time.Microsecond), r.ScopeSize)
		}
		return nil
	})

	run("verifycache", func() error {
		fmt.Println("Ablation — verified-prefix cache (per-hop α before/after the fast path;")
		fmt.Printf("median of %d reps after warm-up)\n", *reps)
		rows, err := bench.RunVerifyCache(*bits, []int{1, 2, 4, 8, 16, 32}, *reps)
		if err != nil {
			return err
		}
		traj.VerifyCache = rows
		fmt.Printf("%6s %6s %14s %14s %14s\n", "CERs", "sigs", "cold-serial", "cold-fast", "warm-hop")
		for _, r := range rows {
			fmt.Printf("%6d %6d %14v %14v %14v\n", r.CERs, r.Sigs,
				r.ColdSerial.Round(time.Microsecond), r.ColdFast.Round(time.Microsecond),
				r.WarmHop.Round(time.Microsecond))
		}
		fmt.Println("expected shape: cold-serial grows ~linearly in CERs (the paper's Fig. 9 alpha")
		fmt.Println("curve); warm-hop stays ~flat — the cache turns per-hop alpha into O(new sigs).")
		return nil
	})

	run("elementwise", func() error {
		fmt.Println("Ablation — element-wise vs whole-document encryption (2 readers)")
		rows, err := bench.RunElementwiseVsWhole(*bits, []int{1, 2, 4, 8, 16})
		if err != nil {
			return err
		}
		fmt.Printf("%7s %12s %12s %14s %12s %10s %10s\n",
			"fields", "ew-enc", "whole-enc", "ew-dec-one", "whole-dec", "ew-bytes", "wh-bytes")
		for _, r := range rows {
			fmt.Printf("%7d %12v %12v %14v %12v %10d %10d\n",
				r.Fields, r.ElementwiseEncrypt.Round(time.Microsecond), r.WholeEncrypt.Round(time.Microsecond),
				r.ElementwiseDecryptOne.Round(time.Microsecond), r.WholeDecrypt.Round(time.Microsecond),
				r.ElementwiseBytes, r.WholeBytes)
		}
		fmt.Println("element-wise pays more bytes/encrypt time but supports per-field readers and")
		fmt.Println("single-field decryption — the design choice of Section 2 of the paper.")
		return nil
	})

	run("multirecipient", func() error {
		fmt.Println("Ablation — one element encrypted to k readers (k RSA-OAEP key wraps)")
		rows, err := bench.RunMultiRecipient(*bits, []int{1, 2, 4, 8, 16, 32})
		if err != nil {
			return err
		}
		fmt.Printf("%10s %14s %10s\n", "recipients", "encrypt", "bytes")
		for _, r := range rows {
			fmt.Printf("%10d %14v %10d\n", r.Recipients, r.EncryptTime.Round(time.Microsecond), r.Bytes)
		}
		return nil
	})

	run("tfc", func() error {
		fmt.Println("Claim — the TFC server is not the bottleneck (Section 4.1)")
		res, err := bench.RunTFCThroughput(*bits, 50)
		if err != nil {
			return err
		}
		fmt.Printf("AEA path (Open+CompleteToTFC): %v/doc\n", res.AEAMeanPerDoc.Round(time.Microsecond))
		fmt.Printf("TFC path (Process):            %v/doc  (%.0f docs/s single-threaded)\n",
			res.TFCMeanPerDoc.Round(time.Microsecond), res.TFCDocsPerSecond)
		fmt.Println("the TFC holds no interactive session, so its capacity scales with servers.")
		return nil
	})

	run("scalability", func() error {
		fmt.Println("Comparison — centralized engine vs engine-less DRA4WfMS (discrete-event sim,")
		fmt.Println("service times calibrated from measured per-document costs)")
		// Calibrate the shared tiers from the measured TFC path: per
		// activity step both deployments handle one document at the shared
		// tier (the engine additionally owns the participant's interactive
		// session and the instance store; treating it as equal is
		// charitable to the baseline). The heavy AEA crypto runs on the
		// participants' own machines under DRA4WfMS — in parallel across
		// instances — and is the per-step latency offset.
		cal, err := bench.RunTFCThroughput(*bits, 20)
		if err != nil {
			return err
		}
		engineSvc := cal.TFCMeanPerDoc
		tfcSvc := cal.TFCMeanPerDoc
		aeaSvc := cal.AEAMeanPerDoc
		fmt.Printf("calibrated: shared-tier step %v (engine and TFC), AEA edge step %v\n\n",
			engineSvc.Round(time.Microsecond), aeaSvc.Round(time.Microsecond))
		loads := []int{10, 50, 100, 500, 1000}
		rows := bench.RunScalability(loads, engineSvc, aeaSvc, tfcSvc, 2)
		rows = append(rows, bench.RunScalabilityDistributed(loads, engineSvc, 5*time.Millisecond)...)
		for _, r := range rows {
			fmt.Println(cloudsim.FormatLoadLine(r.Label, r.Instances, r.MeanLatency, r.P99Latency, r.Makespan))
		}
		fmt.Println("\nexpected shape: centralized latency grows ~linearly with load (every step")
		fmt.Println("serializes through the one engine); DRA4WfMS degrades ~half as fast with two")
		fmt.Println("TFC servers, and the TFC tier is stateless so capacity scales with servers.")
		return nil
	})

	run("dos", func() error {
		fmt.Println("Comparison — denial-of-service on the fixed address (Section 1, difficulty 2)")
		rows := bench.RunDoS([]int{0, 100, 500, 1000, 5000}, 2*time.Millisecond, 4)
		fmt.Printf("%-22s %10s %14s %14s\n", "deployment", "atk/s", "legit mean", "legit p99")
		for _, r := range rows {
			fmt.Printf("%-22s %10d %14v %14v\n", r.Label, r.AttackRate,
				r.LegitMean.Round(time.Microsecond), r.LegitP99.Round(time.Microsecond))
		}
		return nil
	})

	run("crypto", func() error {
		fmt.Println("Ablation — signature-suite crypto throughput on the Figure 9A hop")
		fmt.Printf("(median of %d reps; hop = verify full cascade (alpha) + sign next CER (beta);\n", *reps)
		fmt.Println("seed = serial verify, no prefix cache, cache-less CA-re-verifying resolver)")
		rows, err := bench.RunCrypto(*bits, *reps)
		if err != nil {
			return err
		}
		traj.Crypto = rows
		fmt.Printf("%-12s %6s %6s %12s %12s %12s %10s\n",
			"suite", "mode", "sigs", "verify", "sign", "hop", "docs/s")
		var seedHop time.Duration
		for _, r := range rows {
			if r.Mode == "seed" {
				seedHop = r.Hop
			}
			speedup := ""
			if seedHop > 0 && r.Mode != "seed" {
				speedup = fmt.Sprintf("  (%.1fx vs seed)", float64(seedHop)/float64(r.Hop))
			}
			fmt.Printf("%-12s %6s %6d %12v %12v %12v %10.0f%s\n",
				r.Suite, r.Mode, r.Sigs,
				r.Verify.Round(time.Microsecond), r.Sign.Round(time.Microsecond),
				r.Hop.Round(time.Microsecond), r.DocsPerSecond(), speedup)
		}
		fmt.Println("expected shape: warm verify ~flat (prefix cache); ed25519 sign ~50x cheaper")
		fmt.Println("than RSA-2048, so ed25519 hops are sign-bound no longer.")
		return nil
	})

	run("engine", func() error {
		fmt.Println("Comparison — wall-clock cost and tamper detectability, engine vs DRA4WfMS")
		res, err := bench.RunEngineVsDRA(*bits, 5)
		if err != nil {
			return err
		}
		fmt.Printf("engine (plaintext store): %v/instance — superuser tamper detected: %v\n",
			res.EngineMeanPerInst.Round(time.Microsecond), res.EngineTamperCaught)
		fmt.Printf("DRA4WfMS (basic model):   %v/instance — tamper detected: %v\n",
			res.DRAMeanPerInst.Round(time.Microsecond), res.DRATamperCaught)
		fmt.Println("DRA4WfMS pays crypto per step and buys verifiable nonrepudiation.")
		return nil
	})

	run("poolscale", func() error {
		fmt.Println("Paper's stated future work — pool scale-out: querying, storing, monitoring")
		fmt.Println("and statistical analyses as documents and region servers grow")
		rows, err := bench.RunPoolScale(*bits, []int{1, 3, 9}, []int{1000, 10000})
		if err != nil {
			return err
		}
		traj.PoolScale = rows
		fmt.Printf("%8s %10s %8s %12s %12s %12s %12s\n",
			"servers", "docs", "regions", "store/doc", "query/doc", "monitor", "stats(MR)")
		for _, r := range rows {
			fmt.Printf("%8d %10d %8d %10.1fus %10.1fus %10.1fus %10.2fms\n",
				r.Servers, r.Documents, r.Regions, r.StoreMicrosPerDoc, r.QueryMicrosPerDoc,
				r.MonitorMicros, r.StatsMillis)
		}
		fmt.Println("expected shape: store/query ~flat with pool size (region routing);")
		fmt.Println("statistics linear in documents but parallelized by the MR layer.")

		fmt.Println("\nFailover — clustered pool, kill a node's primary mid-run")
		fmt.Println("(3 pool nodes, 2 replicas/region; every write must stay acknowledged)")
		fo, err := bench.RunPoolFailover(3, 2000)
		if err != nil {
			return err
		}
		traj.PoolFailover = fo
		fmt.Printf("killed %s (primary of %s) at write %d/%d: %d acked, %d lost\n",
			fo.KilledNode, fo.KilledRegion, fo.AckedWrites/2, fo.AckedWrites,
			fo.AckedWrites, fo.LostWrites)
		fmt.Printf("failover write %v   max stall %v   mean write %v\n",
			fo.FailoverLatency.Round(time.Microsecond), fo.MaxStall.Round(time.Microsecond),
			fo.MeanWrite.Round(time.Microsecond))
		fmt.Println("expected shape: zero lost acknowledged writes; exactly one write pays the")
		fmt.Println("failover stall (failure detection + primary promotion, inline).")
		return nil
	})

	run("chaos", func() error {
		fmt.Println("Robustness — deterministic chaos scenarios on the clustered pool and the")
		fmt.Printf("admission gate (seed %d; partition, slow backup, flapping membership, 2x overload)\n", *chaosSeed)
		rows, err := bench.RunChaos(*chaosSeed, 400)
		if err != nil {
			return err
		}
		traj.Chaos = rows
		fmt.Printf("%-18s %8s %6s %12s %12s %12s %12s %8s %8s %8s\n",
			"scenario", "acked", "lost", "failover", "recovery", "mean", "max", "served", "shed", "goodput")
		for _, r := range rows {
			goodput := ""
			if r.GoodputRatio > 0 {
				goodput = fmt.Sprintf("%.0f%%", r.GoodputRatio*100)
			}
			fmt.Printf("%-18s %8d %6d %12v %12v %12v %12v %8d %8d %8s\n",
				r.Scenario, r.AckedWrites, r.LostWrites,
				r.FailoverLatency.Round(time.Microsecond), r.Recovery.Round(time.Millisecond),
				r.MeanWrite.Round(time.Microsecond), r.MaxStall.Round(time.Microsecond),
				r.Served, r.Shed, goodput)
		}
		fmt.Println("expected shape: zero lost acknowledged writes everywhere; exactly one write")
		fmt.Println("pays each partition's failover; overload sheds with 429 while goodput holds.")
		return nil
	})

	run("faults", func() error {
		fmt.Println("Reliability — relay retry policy on lossy hops (discrete-event sim of the")
		fmt.Println("Figure 9A hop chain; duplicates absorbed by receiver-side idempotency keys)")
		rows := bench.RunFaults([]float64{0, 0.05, 0.1, 0.2, 0.3}, 200, 8, relay.BackoffPolicy{
			Base: 100 * time.Millisecond, Cap: 30 * time.Second, Factor: 2,
		}, 1)
		fmt.Printf("%6s %6s %12s %12s %6s %9s %6s %12s %12s\n",
			"drop", "dup", "done(1shot)", "done(relay)", "DLQ", "attempts", "dups", "mean", "p99")
		for _, r := range rows {
			fmt.Printf("%5.0f%% %5.0f%% %8d/%-4d %8d/%-4d %6d %9d %6d %12v %12v\n",
				r.DropRate*100, r.DupRate*100, r.CompletedNoRetry, r.Instances,
				r.CompletedRelay, r.Instances, r.DeadLetters, r.Attempts, r.DupSuppressed,
				r.MeanLatency.Round(time.Microsecond), r.P99Latency.Round(time.Microsecond))
		}
		fmt.Println("expected shape: fire-and-forget strands ~1-(1-p)^6 of instances; the relay")
		fmt.Println("completes all of them, paying latency that grows with the loss rate.")
		fmt.Println("stranded relay hops (DLQ>0) are inspectable with 'dractl dlq -wal FILE list'.")
		return nil
	})

	run("pool", func() error {
		fmt.Println("Substrate — document-pool primitives (region-sharded column store)")
		for _, n := range []int{1000, 10000} {
			res, err := bench.RunPool(n, 4096, 1<<20)
			if err != nil {
				return err
			}
			fmt.Printf("rows=%6d  puts/s=%9.0f  gets/s=%9.0f  full-scan=%8.2fms  regions=%d\n",
				res.Rows, res.PutsPerSecond, res.GetsPerSecond, res.ScanMillis, res.Regions)
		}
		return nil
	})

	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "unexpected arguments: %v\n", flag.Args())
		os.Exit(2)
	}

	printTelemetry(*jsonOut, jsonDst)

	if *jsonOut {
		path, err := writeTrajectory(traj)
		if err != nil {
			log.Fatalf("writing trajectory file: %v", err)
		}
		fmt.Fprintf(os.Stderr, "trajectory written to %s\n", path)
	}
}

// trajectory is the schema of the BENCH_<n>.json file: the α/β/Σ tables
// (and the fast-path ablations) of one drabench run, for diffing
// performance across changes. Durations serialize as integer nanoseconds
// (Go's time.Duration JSON encoding).
type trajectory struct {
	Timestamp   string                 `json:"timestamp"`
	Bits        int                    `json:"bits"`
	Reps        int                    `json:"reps"`
	Experiment  string                 `json:"experiment"`
	Table1      []bench.Table1Row      `json:"table1,omitempty"`
	Table2      []bench.Table2Row      `json:"table2,omitempty"`
	Cascade     []bench.CascadeRow     `json:"cascade,omitempty"`
	VerifyCache []bench.VerifyCacheRow `json:"verifycache,omitempty"`
	// PoolScale/PoolFailover record the clustered-pool experiments: the
	// scale-out table and the kill-a-node run (zero acked-write loss plus
	// its failover latency). Baselines without these fields compare
	// cleanly: metricsOf skips metrics the baseline lacks.
	PoolScale    []bench.PoolScaleRow      `json:"poolscale,omitempty"`
	PoolFailover *bench.PoolFailoverResult `json:"poolfailover,omitempty"`
	// Crypto records the signature-suite throughput ablation: per suite,
	// the seed/cold/warm hop cost on the Figure 9A cascade.
	Crypto []bench.CryptoRow `json:"crypto,omitempty"`
	// Chaos records the deterministic fault-injection scenarios: per
	// scenario, the zero-loss verdict and its failover/recovery costs.
	Chaos []bench.ChaosRow `json:"chaos,omitempty"`
}

// writeTrajectory writes traj to BENCH_<n>.json in the current directory,
// where n is one more than the highest existing trajectory number — runs
// accumulate instead of overwriting, so the sequence forms a perf history.
func writeTrajectory(traj *trajectory) (string, error) {
	traj.Timestamp = time.Now().UTC().Format(time.RFC3339)
	max := 0
	entries, err := os.ReadDir(".")
	if err != nil {
		return "", err
	}
	for _, e := range entries {
		var n int
		if _, err := fmt.Sscanf(e.Name(), "BENCH_%d.json", &n); err == nil && n > max {
			max = n
		}
	}
	path := fmt.Sprintf("BENCH_%d.json", max+1)
	data, err := json.MarshalIndent(traj, "", "  ")
	if err != nil {
		return "", err
	}
	return path, os.WriteFile(path, append(data, '\n'), 0o644)
}

// printTelemetry dumps the process-wide registry accumulated while the
// experiments ran: every dsig/xmlenc/aea/tfc/pool operation the harness
// performed in-process is in here, so the numbers contextualize the
// tables above (e.g. how many signature verifications Table 1 cost).
func printTelemetry(asJSON bool, jsonDst *os.File) {
	snap := telemetry.Default().Snapshot()
	if asJSON {
		enc := json.NewEncoder(jsonDst)
		enc.SetIndent("", "  ")
		if err := enc.Encode(map[string]telemetry.Snapshot{"metrics": snap}); err != nil {
			log.Fatal(err)
		}
		return
	}

	fmt.Printf("\n================ telemetry ================\n")
	if len(snap.Counters) > 0 {
		fmt.Printf("%-44s %12s\n", "counter", "value")
		for _, c := range snap.Counters {
			fmt.Printf("%-44s %12d\n", c.Name+labelSuffix(c.Labels), c.Value)
		}
	}
	if len(snap.Histograms) > 0 {
		fmt.Printf("\n%-44s %10s %12s %12s %12s\n", "histogram", "count", "p50", "p95", "p99")
		for _, h := range snap.Histograms {
			if h.Count == 0 {
				continue
			}
			fmt.Printf("%-44s %10d %12s %12s %12s\n",
				h.Name+labelSuffix(h.Labels), h.Count, fmtQ(h.P50), fmtQ(h.P95), fmtQ(h.P99))
		}
	}
}

// labelSuffix renders a flat [k, v, ...] label list as {k="v",...}.
func labelSuffix(labels []string) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i := 0; i+1 < len(labels); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", labels[i], labels[i+1])
	}
	b.WriteByte('}')
	return b.String()
}

// fmtQ renders a histogram quantile: latency histograms hold seconds,
// size histograms hold bytes; sub-second values read best as durations.
func fmtQ(v float64) string {
	if v > 0 && v < 1000 {
		return time.Duration(v * float64(time.Second)).Round(time.Microsecond).String()
	}
	return fmt.Sprintf("%.0f", v)
}
