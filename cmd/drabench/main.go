// drabench regenerates the paper's evaluation: Table 1 (basic operational
// model) and Table 2 (advanced operational model) on the Figure 9
// workflows, plus the ablation and comparison experiments indexed in
// DESIGN.md. It prints the same rows/series the paper reports; absolute
// times differ from the 2012 testbed (JDK 6, Core 2 Quad), the shape is
// what reproduces.
//
// Usage:
//
//	drabench [-experiment all|table1|table2|cascade|elementwise|
//	          multirecipient|tfc|scalability|dos|engine|poolscale|pool]
//	         [-bits 2048] [-reps 5]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"dra4wfms/internal/bench"
	"dra4wfms/internal/cloudsim"
)

func main() {
	experiment := flag.String("experiment", "all", "which experiment to run")
	bits := flag.Int("bits", 2048, "RSA modulus size")
	reps := flag.Int("reps", 5, "repetitions to average over (tables)")
	flag.Parse()

	run := func(name string, fn func() error) {
		switch *experiment {
		case "all", name:
			fmt.Printf("\n================ %s ================\n", name)
			if err := fn(); err != nil {
				log.Fatalf("%s: %v", name, err)
			}
		}
	}

	run("table1", func() error {
		fmt.Printf("Table 1 — basic operational model, Figure 9A (RSA-%d, %d reps)\n", *bits, *reps)
		rows, err := bench.RunTable1(*bits, *reps)
		if err != nil {
			return err
		}
		fmt.Print(bench.FormatTable1(rows))
		fmt.Println("expected shape: alpha grows ~linearly with #sigs; beta ~constant; Sigma linear.")
		return nil
	})

	run("table2", func() error {
		fmt.Printf("Table 2 — advanced operational model via TFC, Figure 9B (RSA-%d, %d reps)\n", *bits, *reps)
		rows, err := bench.RunTable2(*bits, *reps)
		if err != nil {
			return err
		}
		fmt.Print(bench.FormatTable2(rows))
		fmt.Println("expected shape: alpha grows with #CERs on both AEA and TFC sides; beta, gamma ~constant;")
		fmt.Println("documents larger than Table 1 (intermediate CERs + timestamps).")
		return nil
	})

	run("cascade", func() error {
		fmt.Println("Ablation — signature-cascade depth (VerifyAll and Algorithm 1 vs chain length)")
		rows, err := bench.RunCascadeDepth(*bits, []int{1, 2, 4, 8, 16, 32})
		if err != nil {
			return err
		}
		fmt.Printf("%6s %14s %10s %14s %8s\n", "CERs", "verify", "bytes", "scope(Alg.1)", "|scope|")
		for _, r := range rows {
			fmt.Printf("%6d %14v %10d %14v %8d\n", r.CERs, r.VerifyTime.Round(time.Microsecond),
				r.DocBytes, r.ScopeTime.Round(time.Microsecond), r.ScopeSize)
		}
		return nil
	})

	run("elementwise", func() error {
		fmt.Println("Ablation — element-wise vs whole-document encryption (2 readers)")
		rows, err := bench.RunElementwiseVsWhole(*bits, []int{1, 2, 4, 8, 16})
		if err != nil {
			return err
		}
		fmt.Printf("%7s %12s %12s %14s %12s %10s %10s\n",
			"fields", "ew-enc", "whole-enc", "ew-dec-one", "whole-dec", "ew-bytes", "wh-bytes")
		for _, r := range rows {
			fmt.Printf("%7d %12v %12v %14v %12v %10d %10d\n",
				r.Fields, r.ElementwiseEncrypt.Round(time.Microsecond), r.WholeEncrypt.Round(time.Microsecond),
				r.ElementwiseDecryptOne.Round(time.Microsecond), r.WholeDecrypt.Round(time.Microsecond),
				r.ElementwiseBytes, r.WholeBytes)
		}
		fmt.Println("element-wise pays more bytes/encrypt time but supports per-field readers and")
		fmt.Println("single-field decryption — the design choice of Section 2 of the paper.")
		return nil
	})

	run("multirecipient", func() error {
		fmt.Println("Ablation — one element encrypted to k readers (k RSA-OAEP key wraps)")
		rows, err := bench.RunMultiRecipient(*bits, []int{1, 2, 4, 8, 16, 32})
		if err != nil {
			return err
		}
		fmt.Printf("%10s %14s %10s\n", "recipients", "encrypt", "bytes")
		for _, r := range rows {
			fmt.Printf("%10d %14v %10d\n", r.Recipients, r.EncryptTime.Round(time.Microsecond), r.Bytes)
		}
		return nil
	})

	run("tfc", func() error {
		fmt.Println("Claim — the TFC server is not the bottleneck (Section 4.1)")
		res, err := bench.RunTFCThroughput(*bits, 50)
		if err != nil {
			return err
		}
		fmt.Printf("AEA path (Open+CompleteToTFC): %v/doc\n", res.AEAMeanPerDoc.Round(time.Microsecond))
		fmt.Printf("TFC path (Process):            %v/doc  (%.0f docs/s single-threaded)\n",
			res.TFCMeanPerDoc.Round(time.Microsecond), res.TFCDocsPerSecond)
		fmt.Println("the TFC holds no interactive session, so its capacity scales with servers.")
		return nil
	})

	run("scalability", func() error {
		fmt.Println("Comparison — centralized engine vs engine-less DRA4WfMS (discrete-event sim,")
		fmt.Println("service times calibrated from measured per-document costs)")
		// Calibrate the shared tiers from the measured TFC path: per
		// activity step both deployments handle one document at the shared
		// tier (the engine additionally owns the participant's interactive
		// session and the instance store; treating it as equal is
		// charitable to the baseline). The heavy AEA crypto runs on the
		// participants' own machines under DRA4WfMS — in parallel across
		// instances — and is the per-step latency offset.
		cal, err := bench.RunTFCThroughput(*bits, 20)
		if err != nil {
			return err
		}
		engineSvc := cal.TFCMeanPerDoc
		tfcSvc := cal.TFCMeanPerDoc
		aeaSvc := cal.AEAMeanPerDoc
		fmt.Printf("calibrated: shared-tier step %v (engine and TFC), AEA edge step %v\n\n",
			engineSvc.Round(time.Microsecond), aeaSvc.Round(time.Microsecond))
		loads := []int{10, 50, 100, 500, 1000}
		rows := bench.RunScalability(loads, engineSvc, aeaSvc, tfcSvc, 2)
		rows = append(rows, bench.RunScalabilityDistributed(loads, engineSvc, 5*time.Millisecond)...)
		for _, r := range rows {
			fmt.Println(cloudsim.FormatLoadLine(r.Label, r.Instances, r.MeanLatency, r.P99Latency, r.Makespan))
		}
		fmt.Println("\nexpected shape: centralized latency grows ~linearly with load (every step")
		fmt.Println("serializes through the one engine); DRA4WfMS degrades ~half as fast with two")
		fmt.Println("TFC servers, and the TFC tier is stateless so capacity scales with servers.")
		return nil
	})

	run("dos", func() error {
		fmt.Println("Comparison — denial-of-service on the fixed address (Section 1, difficulty 2)")
		rows := bench.RunDoS([]int{0, 100, 500, 1000, 5000}, 2*time.Millisecond, 4)
		fmt.Printf("%-22s %10s %14s %14s\n", "deployment", "atk/s", "legit mean", "legit p99")
		for _, r := range rows {
			fmt.Printf("%-22s %10d %14v %14v\n", r.Label, r.AttackRate,
				r.LegitMean.Round(time.Microsecond), r.LegitP99.Round(time.Microsecond))
		}
		return nil
	})

	run("engine", func() error {
		fmt.Println("Comparison — wall-clock cost and tamper detectability, engine vs DRA4WfMS")
		res, err := bench.RunEngineVsDRA(*bits, 5)
		if err != nil {
			return err
		}
		fmt.Printf("engine (plaintext store): %v/instance — superuser tamper detected: %v\n",
			res.EngineMeanPerInst.Round(time.Microsecond), res.EngineTamperCaught)
		fmt.Printf("DRA4WfMS (basic model):   %v/instance — tamper detected: %v\n",
			res.DRAMeanPerInst.Round(time.Microsecond), res.DRATamperCaught)
		fmt.Println("DRA4WfMS pays crypto per step and buys verifiable nonrepudiation.")
		return nil
	})

	run("poolscale", func() error {
		fmt.Println("Paper's stated future work — pool scale-out: querying, storing, monitoring")
		fmt.Println("and statistical analyses as documents and region servers grow")
		rows, err := bench.RunPoolScale(*bits, []int{1, 3, 9}, []int{1000, 10000})
		if err != nil {
			return err
		}
		fmt.Printf("%8s %10s %8s %12s %12s %12s %12s\n",
			"servers", "docs", "regions", "store/doc", "query/doc", "monitor", "stats(MR)")
		for _, r := range rows {
			fmt.Printf("%8d %10d %8d %10.1fus %10.1fus %10.1fus %10.2fms\n",
				r.Servers, r.Documents, r.Regions, r.StoreMicrosPerDoc, r.QueryMicrosPerDoc,
				r.MonitorMicros, r.StatsMillis)
		}
		fmt.Println("expected shape: store/query ~flat with pool size (region routing);")
		fmt.Println("statistics linear in documents but parallelized by the MR layer.")
		return nil
	})

	run("pool", func() error {
		fmt.Println("Substrate — document-pool primitives (region-sharded column store)")
		for _, n := range []int{1000, 10000} {
			res, err := bench.RunPool(n, 4096, 1<<20)
			if err != nil {
				return err
			}
			fmt.Printf("rows=%6d  puts/s=%9.0f  gets/s=%9.0f  full-scan=%8.2fms  regions=%d\n",
				res.Rows, res.PutsPerSecond, res.GetsPerSecond, res.ScanMillis, res.Regions)
		}
		return nil
	})

	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "unexpected arguments: %v\n", flag.Args())
		os.Exit(2)
	}
}
