package relay

import (
	"sync"
	"time"
)

// Retry budgets bound retry *amplification* per destination: a breaker
// reacts to consecutive failures, but a destination that is merely slow
// or flapping under partition can still soak up a retry storm — every
// sender retrying every delivery multiplies offered load exactly when
// the destination can least afford it. The budget is a token bucket
// refilled by successes: each acknowledged delivery to a destination
// earns Ratio tokens (capped at Burst) and each retry spends one, so
// sustained retries cannot exceed Ratio × the recent success rate. An
// exhausted budget still admits one timed probe per ProbeInterval — the
// trickle that discovers recovery even under a total partition, at a
// bounded, storm-proof rate.

// BudgetPolicy configures per-destination retry budgets.
type BudgetPolicy struct {
	// Ratio is how many retry tokens one acknowledged delivery earns
	// (default 0.2 — retries bounded to ~20% of recent successes;
	// <0 disables budgeting entirely).
	Ratio float64
	// Burst is the token balance a fresh destination starts with and the
	// cap successes refill to (default 10).
	Burst float64
	// ProbeInterval paces the trickle probe an exhausted destination
	// still gets, so recovery is discovered without a storm (default 1s).
	ProbeInterval time.Duration
}

func (p BudgetPolicy) withDefaults() BudgetPolicy {
	if p.Ratio == 0 {
		p.Ratio = 0.2
	}
	if p.Burst <= 0 {
		p.Burst = 10
	}
	if p.ProbeInterval <= 0 {
		p.ProbeInterval = time.Second
	}
	return p
}

// budget is one destination's retry balance.
type budget struct {
	tokens    float64
	lastProbe time.Time
}

// budgetSet tracks retry budgets per destination.
type budgetSet struct {
	policy BudgetPolicy

	mu sync.Mutex
	m  map[string]*budget
}

func newBudgetSet(p BudgetPolicy) *budgetSet {
	return &budgetSet{policy: p.withDefaults(), m: map[string]*budget{}}
}

func (s *budgetSet) get(dest string) *budget {
	b, ok := s.m[dest]
	if !ok {
		b = &budget{tokens: s.policy.Burst}
		s.m[dest] = b
	}
	return b
}

// allowRetry reports whether a retry to dest may proceed now, spending a
// token (or the timed probe) when it may. When it may not, retryAt is
// when the next probe becomes available.
func (s *budgetSet) allowRetry(dest string, now time.Time) (ok bool, retryAt time.Time) {
	if s.policy.Ratio < 0 {
		return true, time.Time{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	b := s.get(dest)
	if b.tokens >= 1 {
		b.tokens--
		return true, time.Time{}
	}
	if b.lastProbe.IsZero() || now.Sub(b.lastProbe) >= s.policy.ProbeInterval {
		b.lastProbe = now
		return true, time.Time{}
	}
	return false, b.lastProbe.Add(s.policy.ProbeInterval)
}

// success records an acknowledged delivery, earning Ratio tokens toward
// future retries (capped at Burst).
func (s *budgetSet) success(dest string) {
	if s.policy.Ratio < 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	b := s.get(dest)
	b.tokens += s.policy.Ratio
	if b.tokens > s.policy.Burst {
		b.tokens = s.policy.Burst
	}
}
