package relay

import "dra4wfms/internal/telemetry"

// Relay observability, recorded into the process-wide registry and thus
// visible at GET /v1/metrics and through `dractl metrics`. Gauges are
// updated by delta so several relays in one process (webhook dispatcher,
// client forwarder) compose into process totals.
var (
	tel = telemetry.Default()

	// mQueueDepth is the number of deliveries accepted but not yet
	// acknowledged or dead-lettered, across all relays in the process.
	mQueueDepth = tel.Gauge("relay_queue_depth")
	// mDLQSize is the number of dead-lettered deliveries awaiting an
	// operator (requeue or drop).
	mDLQSize = tel.Gauge("relay_dlq_size")
	// mBreakerState is the most recent breaker transition:
	// 0 closed, 1 half-open, 2 open.
	mBreakerState = tel.Gauge("relay_breaker_state")

	mDelivered    = tel.Counter("relay_delivered_total")
	mAttempts     = tel.Counter("relay_attempts_total")
	mRetries      = tel.Counter("relay_retries_total")
	mDeadletters  = tel.Counter("relay_deadletters_total")
	mDedup        = tel.Counter("relay_dedup_total")
	mBreakerOpens = tel.Counter("relay_breaker_open_total")
	// mBudgetDenied counts retries deferred because the destination's
	// retry budget was exhausted (budget.go).
	mBudgetDenied = tel.Counter("relay_budget_denied_total")
)
