package relay

import "time"

// BackoffPolicy computes retry delays: exponential growth capped at Cap,
// then scaled by "full jitter" (delay drawn uniformly from [0, capped]).
// Full jitter decorrelates the retry storms of many senders hammering a
// recovering peer — the standard cure for thundering herds.
type BackoffPolicy struct {
	// Base is the delay before the first retry (default 100ms).
	Base time.Duration
	// Cap bounds the exponential growth (default 30s).
	Cap time.Duration
	// Factor multiplies the delay per attempt (default 2).
	Factor float64
}

// withDefaults fills zero fields.
func (p BackoffPolicy) withDefaults() BackoffPolicy {
	if p.Base <= 0 {
		p.Base = 100 * time.Millisecond
	}
	if p.Cap <= 0 {
		p.Cap = 30 * time.Second
	}
	if p.Factor < 1 {
		p.Factor = 2
	}
	return p
}

// Delay returns the jittered delay before retry number attempt (1 = the
// first retry). rnd supplies the jitter draw in [0,1); nil disables
// jitter (full deterministic delay), which tests use.
func (p BackoffPolicy) Delay(attempt int, rnd func() float64) time.Duration {
	p = p.withDefaults()
	if attempt < 1 {
		attempt = 1
	}
	d := float64(p.Base)
	for i := 1; i < attempt; i++ {
		d *= p.Factor
		if d >= float64(p.Cap) {
			break
		}
	}
	if d > float64(p.Cap) {
		d = float64(p.Cap)
	}
	if rnd != nil {
		d *= rnd()
	}
	if d < float64(time.Millisecond) {
		d = float64(time.Millisecond)
	}
	return time.Duration(d)
}
