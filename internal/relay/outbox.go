package relay

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"sync"
)

// The outbox is the durability half of the relay: every delivery is
// appended to a write-ahead log before the first attempt, acknowledged
// after a successful one, and dead-lettered when the retry budget runs
// out. Reopening the log after a crash replays it and reconstructs the
// exact pending/dead sets, so no accepted delivery is ever lost and no
// acknowledged one is attempted again.
//
// The log is a line-oriented JSON journal:
//
//	{"op":"enq","seq":7,"dest":"http://...","kind":"store","key":"ab12...","payload":"...base64..."}
//	{"op":"fail","seq":7}                      one attempt failed (attempt count survives restart)
//	{"op":"ack","seq":7}                       delivered; entry is logically gone
//	{"op":"dead","seq":9,"reason":"..."}       moved to the dead-letter queue
//	{"op":"requeue","seq":9}                   operator moved it back to pending
//	{"op":"drop","seq":9}                      operator discarded it
//
// Acked entries accumulate as dead weight in the file; Compact rewrites
// the journal with only live state. Ack triggers compaction automatically
// every compactEvery acknowledgements.

// walRecord is one journal line.
type walRecord struct {
	Op       string `json:"op"`
	Seq      uint64 `json:"seq"`
	Dest     string `json:"dest,omitempty"`
	Kind     string `json:"kind,omitempty"`
	Key      string `json:"key,omitempty"`
	Payload  []byte `json:"payload,omitempty"`
	Attempts int    `json:"attempts,omitempty"`
	Reason   string `json:"reason,omitempty"`
	Trace    string `json:"trace,omitempty"`
}

// Entry is one delivery tracked by the outbox.
type Entry struct {
	// Seq is the append sequence number, unique within one outbox.
	Seq uint64
	// Dest is the destination the transport delivers to (a URL for the
	// HTTP transport).
	Dest string
	// Kind names the delivery type (e.g. "webhook", "store", "process");
	// transports dispatch on it.
	Kind string
	// Key is the idempotency key; the outbox refuses to enqueue a key
	// that is already pending or was already acknowledged, and receivers
	// use it to deduplicate redeliveries.
	Key string
	// Payload is the opaque delivery body.
	Payload []byte
	// Attempts counts delivery attempts so far.
	Attempts int
	// Reason records why the entry was dead-lettered (empty while live).
	Reason string
	// Trace is the W3C traceparent of the hop that enqueued the delivery
	// (empty when the hop was untraced). Persisted in the WAL so a retry —
	// even one after a crash and replay — continues the originating trace.
	Trace string
}

// compactEvery bounds journal garbage: after this many acks since the
// last rewrite the journal is compacted in place.
const compactEvery = 512

// maxAckedKeys bounds the sender-side dedup memory of acknowledged keys.
const maxAckedKeys = 8192

// Outbox is the persistent pending-delivery log. The zero value is not
// usable; open one with OpenOutbox. Safe for concurrent use.
type Outbox struct {
	mu      sync.Mutex
	path    string   // "" = memory-only (tests, ephemeral relays)
	f       *os.File // nil when memory-only
	nextSeq uint64
	pending map[uint64]*Entry
	dead    map[uint64]*Entry
	// liveKeys maps an idempotency key to its live (pending or dead)
	// entry; ackedKeys remembers recently completed keys so redundant
	// enqueues of an already-delivered message are dropped at the source.
	liveKeys  map[string]uint64
	ackedKeys map[string]bool
	ackedList []string // FIFO eviction order for ackedKeys
	acks      int      // acks since the last compaction
}

// OpenOutbox opens (creating if needed) the journal at path and replays
// it. An empty path keeps the outbox in memory only — no durability, but
// the same semantics.
func OpenOutbox(path string) (*Outbox, error) {
	o := &Outbox{
		path:      path,
		pending:   map[uint64]*Entry{},
		dead:      map[uint64]*Entry{},
		liveKeys:  map[string]uint64{},
		ackedKeys: map[string]bool{},
	}
	if path == "" {
		return o, nil
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("relay: opening outbox: %w", err)
	}
	keep, err := o.replay(f)
	if err != nil {
		f.Close()
		return nil, err
	}
	// An intact final line with no trailing newline still counts its
	// would-be newline in keep; never truncate past the real size, and
	// re-terminate the line so the next append starts fresh.
	missingNewline := false
	if st, err := f.Stat(); err == nil && keep > st.Size() {
		keep = st.Size()
		missingNewline = keep > 0
	}
	// Drop a torn tail (crash mid-append) so new records start clean.
	if err := f.Truncate(keep); err != nil {
		f.Close()
		return nil, err
	}
	if _, err := f.Seek(keep, 0); err != nil {
		f.Close()
		return nil, err
	}
	if missingNewline {
		if _, err := f.Write([]byte("\n")); err != nil {
			f.Close()
			return nil, err
		}
	}
	o.f = f
	return o, nil
}

// replay reconstructs the live state from the journal and returns the
// byte offset up to which the journal is intact.
func (o *Outbox) replay(f *os.File) (int64, error) {
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 64<<20)
	var (
		torn     error // a torn FINAL line is expected after a crash mid-append
		tornLine int
		line     int
		offset   int64 // start of the current line
		keep     int64 // end of the last intact line
	)
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		lineStart := offset
		offset += int64(len(raw)) + 1
		if len(raw) == 0 {
			keep = offset
			continue
		}
		if torn != nil {
			// The bad line was not the last one: real corruption.
			return 0, fmt.Errorf("relay: outbox journal line %d corrupt: %w", tornLine, torn)
		}
		var rec walRecord
		if err := json.Unmarshal(raw, &rec); err != nil {
			torn, tornLine = err, line
			offset = lineStart
			continue
		}
		o.apply(rec)
		keep = offset
	}
	return keep, sc.Err()
}

// apply folds one journal record into the in-memory state.
func (o *Outbox) apply(rec walRecord) {
	switch rec.Op {
	case "enq":
		e := &Entry{Seq: rec.Seq, Dest: rec.Dest, Kind: rec.Kind, Key: rec.Key,
			Payload: rec.Payload, Attempts: rec.Attempts, Trace: rec.Trace}
		o.pending[e.Seq] = e
		if e.Key != "" {
			o.liveKeys[e.Key] = e.Seq
		}
		if rec.Seq >= o.nextSeq {
			o.nextSeq = rec.Seq + 1
		}
	case "fail":
		if e, ok := o.pending[rec.Seq]; ok {
			e.Attempts++
		}
	case "ack":
		if e, ok := o.pending[rec.Seq]; ok {
			delete(o.pending, rec.Seq)
			o.forgetLive(e)
			o.rememberAcked(e.Key)
		}
	case "dead":
		if e, ok := o.pending[rec.Seq]; ok {
			delete(o.pending, rec.Seq)
			e.Reason = rec.Reason
			o.dead[rec.Seq] = e
		}
	case "requeue":
		if e, ok := o.dead[rec.Seq]; ok {
			delete(o.dead, rec.Seq)
			e.Reason = ""
			e.Attempts = 0
			o.pending[rec.Seq] = e
		}
	case "drop":
		if e, ok := o.dead[rec.Seq]; ok {
			delete(o.dead, rec.Seq)
			o.forgetLive(e)
		}
	}
}

func (o *Outbox) forgetLive(e *Entry) {
	if e.Key != "" && o.liveKeys[e.Key] == e.Seq {
		delete(o.liveKeys, e.Key)
	}
}

func (o *Outbox) rememberAcked(key string) {
	if key == "" {
		return
	}
	if !o.ackedKeys[key] {
		o.ackedKeys[key] = true
		o.ackedList = append(o.ackedList, key)
		for len(o.ackedList) > maxAckedKeys {
			delete(o.ackedKeys, o.ackedList[0])
			o.ackedList = o.ackedList[1:]
		}
	}
}

// write appends one record to the journal (no-op in memory mode). The
// caller holds o.mu; journal appends are serialized by design — the WAL
// is the ordering authority for replay.
func (o *Outbox) write(rec walRecord) error {
	if o.f == nil {
		return nil
	}
	b, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	if _, err := o.f.Write(append(b, '\n')); err != nil {
		return fmt.Errorf("relay: appending to outbox: %w", err)
	}
	return nil
}

// Append enqueues a delivery. If key is non-empty and already pending,
// dead, or recently acknowledged, the enqueue is a duplicate: Append
// returns the existing entry (zero Entry for acked keys) with dup=true
// and writes nothing. trace is the enqueuing hop's traceparent ("" when
// untraced); it is journaled with the entry.
func (o *Outbox) Append(dest, kind, key, trace string, payload []byte) (Entry, bool, error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if key != "" {
		if seq, ok := o.liveKeys[key]; ok {
			if e, ok := o.pending[seq]; ok {
				return *e, true, nil
			}
			if e, ok := o.dead[seq]; ok {
				return *e, true, nil
			}
		}
		if o.ackedKeys[key] {
			return Entry{}, true, nil
		}
	}
	e := &Entry{Seq: o.nextSeq, Dest: dest, Kind: kind, Key: key, Trace: trace,
		Payload: append([]byte(nil), payload...)}
	rec := walRecord{Op: "enq", Seq: e.Seq, Dest: dest, Kind: kind, Key: key, Payload: e.Payload, Trace: trace}
	if err := o.write(rec); err != nil {
		return Entry{}, false, err
	}
	o.nextSeq++
	o.pending[e.Seq] = e
	if key != "" {
		o.liveKeys[key] = e.Seq
	}
	return *e, false, nil
}

// Fail records one failed attempt; the attempt count survives restarts.
func (o *Outbox) Fail(seq uint64) (attempts int, err error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	e, ok := o.pending[seq]
	if !ok {
		return 0, fmt.Errorf("relay: fail: no pending entry %d", seq)
	}
	if err := o.write(walRecord{Op: "fail", Seq: seq}); err != nil {
		return e.Attempts, err
	}
	e.Attempts++
	return e.Attempts, nil
}

// Ack marks a delivery complete and compacts the journal when enough
// garbage has accumulated.
func (o *Outbox) Ack(seq uint64) error {
	o.mu.Lock()
	defer o.mu.Unlock()
	e, ok := o.pending[seq]
	if !ok {
		return fmt.Errorf("relay: ack: no pending entry %d", seq)
	}
	if err := o.write(walRecord{Op: "ack", Seq: seq}); err != nil {
		return err
	}
	delete(o.pending, seq)
	o.forgetLive(e)
	o.rememberAcked(e.Key)
	o.acks++
	if o.acks >= compactEvery {
		return o.compactLocked()
	}
	return nil
}

// DeadLetter moves a pending entry to the dead-letter queue.
func (o *Outbox) DeadLetter(seq uint64, reason string) error {
	o.mu.Lock()
	defer o.mu.Unlock()
	e, ok := o.pending[seq]
	if !ok {
		return fmt.Errorf("relay: deadletter: no pending entry %d", seq)
	}
	if err := o.write(walRecord{Op: "dead", Seq: seq, Reason: reason}); err != nil {
		return err
	}
	delete(o.pending, seq)
	e.Reason = reason
	o.dead[seq] = e
	return nil
}

// Requeue moves a dead-lettered entry back to pending with a fresh
// attempt budget.
func (o *Outbox) Requeue(seq uint64) error {
	o.mu.Lock()
	defer o.mu.Unlock()
	e, ok := o.dead[seq]
	if !ok {
		return fmt.Errorf("relay: requeue: no dead-lettered entry %d", seq)
	}
	if err := o.write(walRecord{Op: "requeue", Seq: seq}); err != nil {
		return err
	}
	delete(o.dead, seq)
	e.Reason = ""
	e.Attempts = 0
	o.pending[seq] = e
	return nil
}

// Drop discards a dead-lettered entry permanently.
func (o *Outbox) Drop(seq uint64) error {
	o.mu.Lock()
	defer o.mu.Unlock()
	e, ok := o.dead[seq]
	if !ok {
		return fmt.Errorf("relay: drop: no dead-lettered entry %d", seq)
	}
	if err := o.write(walRecord{Op: "drop", Seq: seq}); err != nil {
		return err
	}
	delete(o.dead, seq)
	o.forgetLive(e)
	return nil
}

// Pending returns the live entries in sequence order.
func (o *Outbox) Pending() []Entry {
	o.mu.Lock()
	defer o.mu.Unlock()
	return sortedCopies(o.pending)
}

// DeadLetters returns the dead-letter queue in sequence order.
func (o *Outbox) DeadLetters() []Entry {
	o.mu.Lock()
	defer o.mu.Unlock()
	return sortedCopies(o.dead)
}

// Counts returns (pending, dead) sizes in one lock acquisition.
func (o *Outbox) Counts() (pending, dead int) {
	o.mu.Lock()
	defer o.mu.Unlock()
	return len(o.pending), len(o.dead)
}

func sortedCopies(m map[uint64]*Entry) []Entry {
	out := make([]Entry, 0, len(m))
	for _, e := range m {
		out = append(out, *e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// Compact rewrites the journal so it holds only live state: one enq
// record per pending entry, and enq+dead records per dead letter.
func (o *Outbox) Compact() error {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.compactLocked()
}

func (o *Outbox) compactLocked() error {
	o.acks = 0
	if o.f == nil {
		return nil
	}
	tmp := o.path + ".compact"
	nf, err := os.OpenFile(tmp, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("relay: compacting outbox: %w", err)
	}
	w := bufio.NewWriter(nf)
	writeRec := func(rec walRecord) error {
		b, err := json.Marshal(rec)
		if err != nil {
			return err
		}
		_, err = w.Write(append(b, '\n'))
		return err
	}
	var fail error
	for _, e := range sortedCopies(o.pending) {
		if fail == nil {
			fail = writeRec(walRecord{Op: "enq", Seq: e.Seq, Dest: e.Dest, Kind: e.Kind,
				Key: e.Key, Payload: e.Payload, Attempts: e.Attempts, Trace: e.Trace})
		}
	}
	for _, e := range sortedCopies(o.dead) {
		if fail == nil {
			fail = writeRec(walRecord{Op: "enq", Seq: e.Seq, Dest: e.Dest, Kind: e.Kind,
				Key: e.Key, Payload: e.Payload, Attempts: e.Attempts, Trace: e.Trace})
		}
		if fail == nil {
			fail = writeRec(walRecord{Op: "dead", Seq: e.Seq, Reason: e.Reason})
		}
	}
	if fail == nil {
		fail = w.Flush()
	}
	if fail == nil {
		fail = nf.Sync()
	}
	if fail != nil {
		nf.Close()
		os.Remove(tmp)
		return fmt.Errorf("relay: compacting outbox: %w", fail)
	}
	if err := nf.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, o.path); err != nil {
		os.Remove(tmp)
		return err
	}
	old := o.f
	nf, err = os.OpenFile(o.path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return err
	}
	if _, err := nf.Seek(0, 2); err != nil {
		nf.Close()
		return err
	}
	o.f = nf
	old.Close()
	return nil
}

// Close flushes and closes the journal; the outbox is unusable after.
func (o *Outbox) Close() error {
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.f == nil {
		return nil
	}
	err := o.f.Close()
	o.f = nil
	return err
}
