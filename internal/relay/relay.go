// Package relay is the durable delivery subsystem every outbound hop of
// the DRA4WfMS reproduction routes through. The paper's engine-less
// architecture (Sections 2.1–2.2, Fig. 7) makes the routed document the
// only carrier of process state, so a hop that is silently lost stalls a
// workflow and a hop that is silently duplicated corrupts one. The relay
// closes that gap with three cooperating pieces:
//
//   - an append-only outbox WAL (outbox.go): every delivery is persisted
//     before the first attempt and replayed after a crash;
//   - a bounded worker pool (this file) draining the outbox with
//     exponential backoff + full jitter, per-destination circuit breakers
//     (breaker.go), and a dead-letter queue for deliveries that exhaust
//     their attempt budget;
//   - idempotency keys (dedup.go), deduplicated at the sender (the outbox
//     refuses keys it has seen) and at the receiver (httpapi replays the
//     cached response), so at-least-once delivery yields exactly-once
//     effects.
package relay

import (
	"container/heap"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"dra4wfms/internal/trace"
)

// ErrClosed is returned by Enqueue after Close.
var ErrClosed = errors.New("relay: closed")

// Transport performs one delivery attempt. Implementations must be safe
// for concurrent use; the relay calls Deliver from several workers.
type Transport interface {
	Deliver(ctx context.Context, e Entry) error
}

// TransportFunc adapts a function to the Transport interface.
type TransportFunc func(ctx context.Context, e Entry) error

// Deliver calls f.
func (f TransportFunc) Deliver(ctx context.Context, e Entry) error { return f(ctx, e) }

// permanentError marks a delivery failure as non-retryable.
type permanentError struct{ err error }

func (p *permanentError) Error() string { return p.err.Error() }
func (p *permanentError) Unwrap() error { return p.err }

// Permanent wraps err so the relay dead-letters the delivery immediately
// instead of retrying — for failures retrying cannot fix (a 4xx from the
// peer, a signature the receiver rejects).
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return &permanentError{err: err}
}

// IsPermanent reports whether err was wrapped by Permanent.
func IsPermanent(err error) bool {
	var p *permanentError
	return errors.As(err, &p)
}

// Config tunes a Relay. The zero value is usable: 4 workers, 8 attempts,
// 30s per attempt, default backoff and breaker policies, seeded jitter.
type Config struct {
	// Workers bounds concurrent delivery attempts (default 4).
	Workers int
	// MaxAttempts is the retry budget before dead-lettering (default 8).
	MaxAttempts int
	// AttemptTimeout bounds one Deliver call (default 30s).
	AttemptTimeout time.Duration
	// Backoff shapes the retry delay curve.
	Backoff BackoffPolicy
	// Breaker shapes per-destination circuit breaking.
	Breaker BreakerPolicy
	// Budget bounds per-destination retry amplification (budget.go).
	Budget BudgetPolicy
	// Rand supplies jitter draws in [0,1); nil seeds a private PRNG.
	// Tests pass a deterministic source.
	Rand func() float64
	// Clock overrides time.Now for breaker and scheduling decisions.
	Clock func() time.Time
	// OnSettle, when set, is called once a delivery settles: err is nil
	// for an acknowledged delivery, the final delivery error for a
	// dead-lettered one. Called from worker goroutines — keep it fast.
	OnSettle func(e Entry, err error)
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 8
	}
	if c.AttemptTimeout <= 0 {
		c.AttemptTimeout = 30 * time.Second
	}
	return c
}

// item is one scheduled delivery; the dispatcher orders them by readiness.
type item struct {
	e       Entry
	readyAt time.Time
}

type itemHeap []item

func (h itemHeap) Len() int { return len(h) }
func (h itemHeap) Less(i, j int) bool {
	if !h[i].readyAt.Equal(h[j].readyAt) {
		return h[i].readyAt.Before(h[j].readyAt)
	}
	return h[i].e.Seq < h[j].e.Seq
}
func (h itemHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *itemHeap) Push(x any)   { *h = append(*h, x.(item)) }
func (h *itemHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// Stats is a point-in-time view of one relay's lifetime counters and
// current queue sizes.
type Stats struct {
	// Delivered counts acknowledged deliveries.
	Delivered int64
	// DeadLettered counts deliveries moved to the DLQ.
	DeadLettered int64
	// Retries counts attempts past the first per delivery.
	Retries int64
	// Attempts counts all delivery attempts.
	Attempts int64
	// Deduped counts enqueues refused as duplicates of a live or
	// recently acknowledged idempotency key.
	Deduped int64
	// BudgetDenied counts retries deferred by an exhausted retry budget.
	BudgetDenied int64
	// Pending and Dead are the current outbox queue sizes.
	Pending, Dead int
}

// Relay drains an outbox through a transport with a bounded worker pool.
// Create with New; a Relay owns its outbox and closes it on Close.
type Relay struct {
	cfg Config
	ob  *Outbox
	tr  Transport
	br  *breakerSet
	bud *budgetSet

	rngMu sync.Mutex
	rng   func() float64

	mu       sync.Mutex
	drained  *sync.Cond // broadcast when queue+inflight may have hit zero
	q        itemHeap
	inflight int
	stopped  bool

	wake   chan struct{}
	stopCh chan struct{}
	workCh chan Entry
	wg     sync.WaitGroup

	delivered, deadLettered, retries, attempts, deduped, budgetDenied atomic.Int64
}

// New starts a relay draining ob through tr. Deliveries already pending
// in the outbox (crash recovery) are scheduled immediately.
func New(ob *Outbox, tr Transport, cfg Config) *Relay {
	cfg = cfg.withDefaults()
	r := &Relay{
		cfg:    cfg,
		ob:     ob,
		tr:     tr,
		bud:    newBudgetSet(cfg.Budget),
		wake:   make(chan struct{}, 1),
		stopCh: make(chan struct{}),
		workCh: make(chan Entry),
	}
	r.drained = sync.NewCond(&r.mu)
	if cfg.Rand != nil {
		r.rng = cfg.Rand
	} else {
		r.rng = rand.New(rand.NewSource(time.Now().UnixNano())).Float64
	}
	// The breaker set shares the relay's jitter source, so r.rng must be
	// wired before it is built.
	r.br = newBreakerSet(cfg.Breaker, r.jitter)
	now := r.now()
	for _, e := range ob.Pending() {
		heap.Push(&r.q, item{e: e, readyAt: now})
	}
	p, d := ob.Counts()
	mQueueDepth.Add(float64(p))
	mDLQSize.Add(float64(d))
	r.wg.Add(1 + cfg.Workers)
	go r.dispatch()
	for i := 0; i < cfg.Workers; i++ {
		go r.worker()
	}
	return r
}

func (r *Relay) now() time.Time {
	if r.cfg.Clock != nil {
		return r.cfg.Clock()
	}
	return time.Now()
}

// jitter draws from the configured randomness source.
func (r *Relay) jitter() float64 {
	r.rngMu.Lock()
	defer r.rngMu.Unlock()
	return r.rng()
}

// poke nudges the dispatcher without blocking.
func (r *Relay) poke() {
	select {
	case r.wake <- struct{}{}:
	default:
	}
}

// Enqueue accepts a delivery: persisted to the outbox first, then
// scheduled. A non-empty key already pending, dead-lettered, or recently
// acknowledged makes the enqueue a duplicate — nothing is written and
// dup is true.
func (r *Relay) Enqueue(dest, kind, key string, payload []byte) (Entry, bool, error) {
	return r.EnqueueTraced(dest, kind, key, "", payload)
}

// EnqueueTraced is Enqueue with the enqueuing hop's traceparent attached.
// The trace string is persisted in the outbox WAL alongside the payload,
// so every delivery attempt — including retries after a crash — is
// recorded as a span of the originating trace.
func (r *Relay) EnqueueTraced(dest, kind, key, trace string, payload []byte) (Entry, bool, error) {
	r.mu.Lock()
	if r.stopped {
		r.mu.Unlock()
		return Entry{}, false, ErrClosed
	}
	r.mu.Unlock()
	e, dup, err := r.ob.Append(dest, kind, key, trace, payload)
	if err != nil {
		return Entry{}, false, err
	}
	if dup {
		r.deduped.Add(1)
		mDedup.Inc()
		return e, true, nil
	}
	mQueueDepth.Add(1)
	r.mu.Lock()
	heap.Push(&r.q, item{e: e, readyAt: r.now()})
	r.mu.Unlock()
	r.poke()
	return e, false, nil
}

// dispatch is the single scheduler goroutine: it sleeps until the
// earliest-ready item is due and hands it to a worker.
func (r *Relay) dispatch() {
	defer r.wg.Done()
	timer := time.NewTimer(time.Hour)
	defer timer.Stop()
	for {
		r.mu.Lock()
		if r.stopped {
			r.mu.Unlock()
			break
		}
		if len(r.q) == 0 {
			r.mu.Unlock()
			select {
			case <-r.wake:
			case <-r.stopCh:
			}
			continue
		}
		if d := r.q[0].readyAt.Sub(r.now()); d > 0 {
			r.mu.Unlock()
			timer.Reset(d)
			select {
			case <-r.wake:
			case <-timer.C:
			case <-r.stopCh:
			}
			continue
		}
		it := heap.Pop(&r.q).(item)
		r.inflight++
		r.mu.Unlock()
		select {
		case r.workCh <- it.e:
		case <-r.stopCh:
			r.mu.Lock()
			heap.Push(&r.q, it)
			r.inflight--
			r.mu.Unlock()
		}
	}
	close(r.workCh)
}

func (r *Relay) worker() {
	defer r.wg.Done()
	for e := range r.workCh {
		r.process(e)
	}
}

// attempt runs one timed delivery attempt. When the entry carries a
// traceparent the attempt is recorded as a span of that trace, so an
// async hop — even one replayed from the WAL after a crash — shows up
// under the request that caused it.
func (r *Relay) attempt(e Entry) error {
	ctx := context.Background()
	if sc, ok := trace.ParseTraceparent(e.Trace); ok {
		ctx = trace.ContextWith(ctx, sc)
	}
	ctx, span := tel.StartSpanCtx(ctx, "relay_delivery_seconds")
	defer span.End()
	span.Trace().SetAttr("kind", e.Kind)
	span.Trace().SetAttr("dest", e.Dest)
	span.Trace().SetAttr("attempt", strconv.Itoa(e.Attempts+1))
	ctx, cancel := context.WithTimeout(ctx, r.cfg.AttemptTimeout)
	defer cancel()
	err := r.tr.Deliver(ctx, e)
	if err != nil {
		span.Trace().SetStatus("error")
	}
	return err
}

// process drives one popped entry to ack, retry, or the DLQ.
func (r *Relay) process(e Entry) {
	if ok, retryAt := r.br.allow(e.Dest, r.now()); !ok {
		// Parked by an open breaker: no attempt consumed.
		r.reschedule(e, retryAt)
		return
	}
	r.attempts.Add(1)
	mAttempts.Inc()
	err := r.attempt(e)
	if err == nil {
		r.br.success(e.Dest)
		r.bud.success(e.Dest)
		// An ack that fails to journal leaves the entry pending in the
		// WAL; the redelivery after restart is absorbed by receiver-side
		// idempotency.
		if aerr := r.ob.Ack(e.Seq); aerr == nil {
			mQueueDepth.Add(-1)
		}
		r.delivered.Add(1)
		mDelivered.Inc()
		r.finish()
		if r.cfg.OnSettle != nil {
			r.cfg.OnSettle(e, nil)
		}
		return
	}
	r.br.failure(e.Dest, r.now())
	attempts, ferr := r.ob.Fail(e.Seq)
	if ferr != nil {
		attempts = e.Attempts + 1
	}
	e.Attempts = attempts
	if IsPermanent(err) || attempts >= r.cfg.MaxAttempts {
		reason := fmt.Sprintf("after %d attempts: %v", attempts, err)
		if derr := r.ob.DeadLetter(e.Seq, reason); derr == nil {
			mQueueDepth.Add(-1)
			mDLQSize.Add(1)
		}
		r.deadLettered.Add(1)
		mDeadletters.Inc()
		r.finish()
		if r.cfg.OnSettle != nil {
			r.cfg.OnSettle(e, err)
		}
		return
	}
	if ok, retryAt := r.bud.allowRetry(e.Dest, r.now()); !ok {
		// Retry budget exhausted: park until the next trickle probe.
		// Like a breaker park, no retry is counted — the delivery is
		// deferred, not attempted.
		r.budgetDenied.Add(1)
		mBudgetDenied.Inc()
		r.reschedule(e, retryAt)
		return
	}
	r.retries.Add(1)
	mRetries.Inc()
	r.reschedule(e, r.now().Add(r.cfg.Backoff.Delay(attempts, r.jitter)))
}

// reschedule returns an in-flight entry to the queue for a later attempt.
func (r *Relay) reschedule(e Entry, at time.Time) {
	r.mu.Lock()
	r.inflight--
	heap.Push(&r.q, item{e: e, readyAt: at})
	r.mu.Unlock()
	r.poke()
}

// finish retires an in-flight entry (acked or dead-lettered).
func (r *Relay) finish() {
	r.mu.Lock()
	r.inflight--
	r.drained.Broadcast()
	r.mu.Unlock()
}

// Flush blocks until every accepted delivery has been acknowledged or
// dead-lettered (or the relay is closed). With a down destination this
// waits out the full retry budget — bound it with test-sized policies.
func (r *Relay) Flush() {
	r.mu.Lock()
	for !r.stopped && (len(r.q) > 0 || r.inflight > 0) {
		r.drained.Wait()
	}
	r.mu.Unlock()
}

// DeadLetters returns the DLQ in sequence order.
func (r *Relay) DeadLetters() []Entry { return r.ob.DeadLetters() }

// Requeue moves a dead-lettered delivery back into the queue with a
// fresh attempt budget.
func (r *Relay) Requeue(seq uint64) error {
	if err := r.ob.Requeue(seq); err != nil {
		return err
	}
	mDLQSize.Add(-1)
	mQueueDepth.Add(1)
	for _, e := range r.ob.Pending() {
		if e.Seq == seq {
			r.mu.Lock()
			heap.Push(&r.q, item{e: e, readyAt: r.now()})
			r.mu.Unlock()
			r.poke()
			break
		}
	}
	return nil
}

// RequeueAll requeues every dead letter and returns how many.
func (r *Relay) RequeueAll() int {
	n := 0
	for _, e := range r.ob.DeadLetters() {
		if r.Requeue(e.Seq) == nil {
			n++
		}
	}
	return n
}

// Drop discards a dead-lettered delivery permanently.
func (r *Relay) Drop(seq uint64) error {
	if err := r.ob.Drop(seq); err != nil {
		return err
	}
	mDLQSize.Add(-1)
	return nil
}

// BreakerState returns dest's circuit state (BreakerClosed/HalfOpen/Open).
func (r *Relay) BreakerState(dest string) float64 { return r.br.stateOf(dest) }

// Stats snapshots the relay's counters and queue sizes.
func (r *Relay) Stats() Stats {
	p, d := r.ob.Counts()
	return Stats{
		Delivered:    r.delivered.Load(),
		DeadLettered: r.deadLettered.Load(),
		Retries:      r.retries.Load(),
		Attempts:     r.attempts.Load(),
		Deduped:      r.deduped.Load(),
		BudgetDenied: r.budgetDenied.Load(),
		Pending:      p,
		Dead:         d,
	}
}

// Close stops accepting work, waits for in-flight attempts to settle,
// and closes the outbox. Deliveries still pending remain in the WAL and
// are rescheduled when the outbox is next opened.
func (r *Relay) Close() error {
	r.mu.Lock()
	if r.stopped {
		r.mu.Unlock()
		return nil
	}
	r.stopped = true
	r.drained.Broadcast()
	r.mu.Unlock()
	close(r.stopCh)
	r.wg.Wait()
	return r.ob.Close()
}
