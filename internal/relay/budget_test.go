package relay

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestBudgetTokensProbeAndEarnback(t *testing.T) {
	s := newBudgetSet(BudgetPolicy{Ratio: 0.5, Burst: 2, ProbeInterval: time.Minute})
	now := time.Unix(1000, 0)
	dest := "http://peer"

	// The initial burst covers the first Burst retries.
	for i := 0; i < 2; i++ {
		if ok, _ := s.allowRetry(dest, now); !ok {
			t.Fatalf("retry %d should be covered by the burst", i+1)
		}
	}
	// Exhausted: the first probe is free, then one per ProbeInterval.
	if ok, _ := s.allowRetry(dest, now); !ok {
		t.Fatal("first trickle probe should be admitted")
	}
	ok, retryAt := s.allowRetry(dest, now.Add(10*time.Second))
	if ok {
		t.Fatal("probe inside the interval should be denied")
	}
	if want := now.Add(time.Minute); !retryAt.Equal(want) {
		t.Fatalf("retryAt = %v, want %v", retryAt, want)
	}
	if ok, _ := s.allowRetry(dest, now.Add(time.Minute)); !ok {
		t.Fatal("probe after the interval should be admitted")
	}

	// Successes earn Ratio tokens each, capped at Burst.
	for i := 0; i < 10; i++ {
		s.success(dest)
	}
	for i := 0; i < 2; i++ {
		if ok, _ := s.allowRetry(dest, now); !ok {
			t.Fatalf("earned retry %d should be admitted", i+1)
		}
	}
	// (still within the probe interval of the last probe, so admission
	// here could only come from a token balance above Burst)
	if ok, _ := s.allowRetry(dest, now.Add(90*time.Second)); ok {
		t.Fatal("earnback must cap at Burst, not accumulate 5 tokens")
	}

	// Budgets are per destination.
	if ok, _ := s.allowRetry("http://other", now); !ok {
		t.Fatal("fresh destination should have its own burst")
	}

	// Ratio < 0 disables budgeting.
	off := newBudgetSet(BudgetPolicy{Ratio: -1, Burst: 1})
	for i := 0; i < 50; i++ {
		if ok, _ := off.allowRetry(dest, now); !ok {
			t.Fatal("disabled budget should always allow")
		}
	}
}

// An always-failing destination gets the burst plus the free first probe,
// then retries are parked until the probe interval — the retry storm a
// partition would otherwise sustain is capped.
func TestRetryBudgetParksRetryStorm(t *testing.T) {
	ob, _ := OpenOutbox("")
	tr := TransportFunc(func(ctx context.Context, e Entry) error {
		return errors.New("down")
	})
	cfg := testConfig()
	cfg.MaxAttempts = 100
	cfg.Budget = BudgetPolicy{Ratio: 0.2, Burst: 2, ProbeInterval: 10 * time.Minute}
	r := New(ob, tr, cfg)
	defer r.Close()
	r.Enqueue("d", "store", "k", []byte("p"))

	// 1 first attempt + 2 budgeted retries + 1 free probe = 4 attempts,
	// then nothing until the 10-minute probe interval elapses.
	deadline := time.Now().Add(5 * time.Second)
	for r.Stats().Attempts < 4 {
		if time.Now().After(deadline) {
			t.Fatalf("attempts = %d, want 4", r.Stats().Attempts)
		}
		time.Sleep(time.Millisecond)
	}
	time.Sleep(50 * time.Millisecond)
	st := r.Stats()
	if st.Attempts != 4 {
		t.Fatalf("attempts = %d, want exactly 4 (budget exhausted)", st.Attempts)
	}
	if st.BudgetDenied < 1 {
		t.Fatalf("BudgetDenied = %d, want >= 1", st.BudgetDenied)
	}
	if st.Pending != 1 || st.Dead != 0 {
		t.Fatalf("parked delivery should stay pending, got %+v", st)
	}
}

// Breaker cooldowns stretch by up to Jitter×Cooldown so senders that
// tripped together do not re-probe in lockstep. The draw happens once
// per opening.
func TestBreakerCooldownJitter(t *testing.T) {
	now := time.Unix(1000, 0)
	dest := "http://peer"
	pol := BreakerPolicy{Threshold: 1, Cooldown: time.Hour, Jitter: 0.5}

	early := newBreakerSet(pol, func() float64 { return 0.0 })
	late := newBreakerSet(pol, func() float64 { return 1.0 })
	early.failure(dest, now)
	late.failure(dest, now)

	// Zero draw: plain cooldown.
	if ok, retryAt := early.allow(dest, now); ok {
		t.Fatal("open breaker should park")
	} else if want := now.Add(time.Hour); !retryAt.Equal(want) {
		t.Fatalf("unjittered retryAt = %v, want %v", retryAt, want)
	}
	// Full draw: cooldown stretched by Jitter×Cooldown.
	if ok, retryAt := late.allow(dest, now); ok {
		t.Fatal("open breaker should park")
	} else if want := now.Add(90 * time.Minute); !retryAt.Equal(want) {
		t.Fatalf("jittered retryAt = %v, want %v", retryAt, want)
	}

	// The jittered breaker is still parked at the plain cooldown mark and
	// half-opens only once its stretched cooldown elapses.
	if ok, _ := late.allow(dest, now.Add(time.Hour)); ok {
		t.Fatal("jittered breaker half-opened at the unjittered cooldown")
	}
	if ok, _ := late.allow(dest, now.Add(90*time.Minute)); !ok {
		t.Fatal("jittered breaker should admit a probe after cooldown+jitter")
	}
}
