package relay

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// testConfig returns a config with millisecond-scale retries so failure
// paths settle quickly in tests.
func testConfig() Config {
	return Config{
		Workers:        2,
		MaxAttempts:    3,
		AttemptTimeout: time.Second,
		Backoff:        BackoffPolicy{Base: time.Millisecond, Cap: 5 * time.Millisecond},
		Breaker:        BreakerPolicy{Threshold: -1},
		Rand:           func() float64 { return 0.5 },
	}
}

func TestBackoffDelayGrowsAndCaps(t *testing.T) {
	p := BackoffPolicy{Base: 100 * time.Millisecond, Cap: time.Second, Factor: 2}
	var prev time.Duration
	for attempt := 1; attempt <= 10; attempt++ {
		d := p.Delay(attempt, nil)
		if d > time.Second {
			t.Fatalf("attempt %d: delay %v exceeds cap", attempt, d)
		}
		if d < prev {
			t.Fatalf("attempt %d: delay %v shrank from %v", attempt, d, prev)
		}
		prev = d
	}
	if got := p.Delay(1, nil); got != 100*time.Millisecond {
		t.Fatalf("first retry delay = %v, want 100ms", got)
	}
	if got := p.Delay(4, nil); got != 800*time.Millisecond {
		t.Fatalf("fourth retry delay = %v, want 800ms", got)
	}
	// Full jitter scales the delay by the draw.
	if got := p.Delay(1, func() float64 { return 0.25 }); got != 25*time.Millisecond {
		t.Fatalf("jittered delay = %v, want 25ms", got)
	}
}

func TestBreakerLifecycle(t *testing.T) {
	s := newBreakerSet(BreakerPolicy{Threshold: 2, Cooldown: time.Hour}, nil)
	now := time.Unix(1000, 0)
	dest := "http://peer"

	if ok, _ := s.allow(dest, now); !ok {
		t.Fatal("fresh breaker should allow")
	}
	s.failure(dest, now)
	if ok, _ := s.allow(dest, now); !ok {
		t.Fatal("one failure under threshold should still allow")
	}
	s.failure(dest, now)
	if got := s.stateOf(dest); got != BreakerOpen {
		t.Fatalf("state after threshold failures = %v, want open", got)
	}
	if ok, retryAt := s.allow(dest, now.Add(time.Minute)); ok {
		t.Fatal("open breaker should reject within cooldown")
	} else if want := now.Add(time.Hour); !retryAt.Equal(want) {
		t.Fatalf("retryAt = %v, want %v", retryAt, want)
	}
	// After the cooldown, exactly one probe gets through.
	later := now.Add(2 * time.Hour)
	if ok, _ := s.allow(dest, later); !ok {
		t.Fatal("half-open breaker should admit a probe")
	}
	if ok, _ := s.allow(dest, later); ok {
		t.Fatal("second concurrent probe should be rejected")
	}
	s.success(dest)
	if got := s.stateOf(dest); got != BreakerClosed {
		t.Fatalf("state after successful probe = %v, want closed", got)
	}
	// A failed probe re-opens immediately.
	s.failure(dest, later)
	s.failure(dest, later)
	probeAt := later.Add(2 * time.Hour)
	if ok, _ := s.allow(dest, probeAt); !ok {
		t.Fatal("expected probe admission")
	}
	s.failure(dest, probeAt)
	if got := s.stateOf(dest); got != BreakerOpen {
		t.Fatalf("state after failed probe = %v, want open", got)
	}
}

func TestOutboxLifecycle(t *testing.T) {
	o, err := OpenOutbox("")
	if err != nil {
		t.Fatal(err)
	}
	e, dup, err := o.Append("d1", "store", "k1", "", []byte("p1"))
	if err != nil || dup {
		t.Fatalf("Append = %v dup=%v", err, dup)
	}
	if _, dup, _ := o.Append("d1", "store", "k1", "", []byte("p1")); !dup {
		t.Fatal("second append of live key should be a duplicate")
	}
	if n, _ := o.Fail(e.Seq); n != 1 {
		t.Fatalf("attempts after one Fail = %d, want 1", n)
	}
	if err := o.Ack(e.Seq); err != nil {
		t.Fatal(err)
	}
	if _, dup, _ := o.Append("d1", "store", "k1", "", []byte("p1")); !dup {
		t.Fatal("append of an acked key should be a duplicate")
	}
	e2, _, _ := o.Append("d2", "store", "k2", "", []byte("p2"))
	if err := o.DeadLetter(e2.Seq, "boom"); err != nil {
		t.Fatal(err)
	}
	if p, d := o.Counts(); p != 0 || d != 1 {
		t.Fatalf("Counts = (%d,%d), want (0,1)", p, d)
	}
	if _, dup, _ := o.Append("d2", "store", "k2", "", nil); !dup {
		t.Fatal("append of a dead-lettered key should be a duplicate")
	}
	if err := o.Requeue(e2.Seq); err != nil {
		t.Fatal(err)
	}
	got := o.Pending()
	if len(got) != 1 || got[0].Seq != e2.Seq || got[0].Attempts != 0 || got[0].Reason != "" {
		t.Fatalf("requeued entry = %+v", got)
	}
	if err := o.DeadLetter(e2.Seq, "again"); err != nil {
		t.Fatal(err)
	}
	if err := o.Drop(e2.Seq); err != nil {
		t.Fatal(err)
	}
	if p, d := o.Counts(); p != 0 || d != 0 {
		t.Fatalf("Counts after drop = (%d,%d), want (0,0)", p, d)
	}
}

func TestRelayDeliversAndRetries(t *testing.T) {
	ob, _ := OpenOutbox("")
	var calls atomic.Int64
	tr := TransportFunc(func(ctx context.Context, e Entry) error {
		if calls.Add(1) < 3 {
			return errors.New("flaky")
		}
		return nil
	})
	r := New(ob, tr, testConfig())
	defer r.Close()
	if _, dup, err := r.Enqueue("d", "store", "k", []byte("p")); err != nil || dup {
		t.Fatalf("Enqueue = dup=%v err=%v", dup, err)
	}
	r.Flush()
	st := r.Stats()
	if st.Delivered != 1 || st.Attempts != 3 || st.Retries != 2 || st.Pending != 0 || st.Dead != 0 {
		t.Fatalf("Stats = %+v", st)
	}
}

func TestRelayDeadLettersAndRequeues(t *testing.T) {
	ob, _ := OpenOutbox("")
	var fail atomic.Bool
	fail.Store(true)
	tr := TransportFunc(func(ctx context.Context, e Entry) error {
		if fail.Load() {
			return errors.New("down")
		}
		return nil
	})
	r := New(ob, tr, testConfig())
	defer r.Close()
	r.Enqueue("d", "store", "k", []byte("p"))
	r.Flush()
	dead := r.DeadLetters()
	if len(dead) != 1 || dead[0].Attempts != 3 {
		t.Fatalf("DeadLetters = %+v", dead)
	}
	if st := r.Stats(); st.DeadLettered != 1 || st.Dead != 1 {
		t.Fatalf("Stats = %+v", st)
	}
	// An operator requeue after the peer recovers drains the DLQ.
	fail.Store(false)
	if n := r.RequeueAll(); n != 1 {
		t.Fatalf("RequeueAll = %d, want 1", n)
	}
	r.Flush()
	if st := r.Stats(); st.Delivered != 1 || st.Dead != 0 || st.Pending != 0 {
		t.Fatalf("Stats after requeue = %+v", st)
	}
}

func TestRelayPermanentErrorSkipsRetries(t *testing.T) {
	ob, _ := OpenOutbox("")
	var calls atomic.Int64
	tr := TransportFunc(func(ctx context.Context, e Entry) error {
		calls.Add(1)
		return Permanent(errors.New("rejected"))
	})
	r := New(ob, tr, testConfig())
	defer r.Close()
	r.Enqueue("d", "store", "k", []byte("p"))
	r.Flush()
	if got := calls.Load(); got != 1 {
		t.Fatalf("attempts = %d, want 1 (permanent)", got)
	}
	if len(r.DeadLetters()) != 1 {
		t.Fatal("permanent failure should dead-letter")
	}
}

func TestRelayEnqueueDedup(t *testing.T) {
	ob, _ := OpenOutbox("")
	var calls atomic.Int64
	var mu sync.Mutex
	block := true
	cond := sync.NewCond(&mu)
	tr := TransportFunc(func(ctx context.Context, e Entry) error {
		mu.Lock()
		for block {
			cond.Wait()
		}
		mu.Unlock()
		calls.Add(1)
		return nil
	})
	r := New(ob, tr, testConfig())
	defer r.Close()
	key := IdempotencyKey("store", "d", []byte("p"))
	r.Enqueue("d", "store", key, []byte("p"))
	if _, dup, _ := r.Enqueue("d", "store", key, []byte("p")); !dup {
		t.Fatal("second enqueue of same key should dedup")
	}
	mu.Lock()
	block = false
	cond.Broadcast()
	mu.Unlock()
	r.Flush()
	if got := calls.Load(); got != 1 {
		t.Fatalf("deliveries = %d, want 1", got)
	}
	// After the ack the key stays deduplicated.
	if _, dup, _ := r.Enqueue("d", "store", key, []byte("p")); !dup {
		t.Fatal("enqueue after ack should dedup")
	}
	if st := r.Stats(); st.Deduped != 2 {
		t.Fatalf("Deduped = %d, want 2", st.Deduped)
	}
}

func TestRelayBreakerParksDeliveries(t *testing.T) {
	ob, _ := OpenOutbox("")
	var calls atomic.Int64
	tr := TransportFunc(func(ctx context.Context, e Entry) error {
		calls.Add(1)
		return errors.New("down")
	})
	cfg := testConfig()
	cfg.Workers = 1
	cfg.MaxAttempts = 100
	cfg.Breaker = BreakerPolicy{Threshold: 2, Cooldown: 50 * time.Millisecond}
	r := New(ob, tr, cfg)
	defer r.Close()
	for i := 0; i < 4; i++ {
		r.Enqueue("d", "store", fmt.Sprintf("k%d", i), nil)
	}
	deadline := time.Now().Add(2 * time.Second)
	for r.BreakerState("d") != BreakerOpen {
		if time.Now().After(deadline) {
			t.Fatal("breaker never opened")
		}
		time.Sleep(time.Millisecond)
	}
	opened := calls.Load()
	if opened < 2 {
		t.Fatalf("breaker opened after %d attempts, want >= 2", opened)
	}
	// While open, parked deliveries consume no attempts.
	time.Sleep(20 * time.Millisecond)
	if got := calls.Load(); got > opened+1 {
		t.Fatalf("open breaker admitted %d attempts", got-opened)
	}
	// After the cooldown it half-opens and probes again.
	time.Sleep(100 * time.Millisecond)
	if got := calls.Load(); got <= opened {
		t.Fatal("half-open breaker never probed")
	}
}

func TestDeduper(t *testing.T) {
	var d Deduper
	d.Cap = 2
	d.Remember("a", 1)
	d.Remember("a", 99) // first outcome wins
	d.Remember("b", 2)
	if v, ok := d.Lookup("a"); !ok || v.(int) != 1 {
		t.Fatalf("Lookup(a) = %v %v", v, ok)
	}
	d.Remember("c", 3) // evicts a
	if _, ok := d.Lookup("a"); ok {
		t.Fatal("a should have been evicted")
	}
	if _, ok := d.Lookup("c"); !ok {
		t.Fatal("c should be retained")
	}
	if d.Len() != 2 {
		t.Fatalf("Len = %d, want 2", d.Len())
	}
	d.Remember("", 0)
	if _, ok := d.Lookup(""); ok {
		t.Fatal("empty key must not be remembered")
	}
}

func TestIdempotencyKeyDistinguishesHops(t *testing.T) {
	base := IdempotencyKey("store", "d1", []byte("p"))
	if IdempotencyKey("store", "d1", []byte("p")) != base {
		t.Fatal("key must be deterministic")
	}
	for _, other := range []string{
		IdempotencyKey("webhook", "d1", []byte("p")),
		IdempotencyKey("store", "d2", []byte("p")),
		IdempotencyKey("store", "d1", []byte("q")),
	} {
		if other == base {
			t.Fatal("distinct hops must get distinct keys")
		}
	}
}

func TestFaultInjector(t *testing.T) {
	var delivered atomic.Int64
	inner := TransportFunc(func(ctx context.Context, e Entry) error {
		delivered.Add(1)
		return nil
	})
	draws := []float64{0.1, 0.9, 0.05, 0.9, 0.9, 0.9, 0.02}
	i := 0
	f := &FaultInjector{
		Inner: inner, DropRate: 0.2, DupRate: 0.1, AckLossRate: 0.05,
		Rand: func() float64 { v := draws[i%len(draws)]; i++; return v },
	}
	ctx := context.Background()
	// draw 0.1 < DropRate 0.2 → dropped before delivery.
	if err := f.Deliver(ctx, Entry{}); !errors.Is(err, ErrInjectedDrop) {
		t.Fatalf("want injected drop, got %v", err)
	}
	// draws 0.9 (no drop), 0.05 < DupRate → delivered twice, then 0.9 no ack loss.
	if err := f.Deliver(ctx, Entry{}); err != nil {
		t.Fatalf("Deliver = %v", err)
	}
	if got := delivered.Load(); got != 2 {
		t.Fatalf("deliveries = %d, want 2 (dup)", got)
	}
	// draws 0.9, 0.9, 0.02 < AckLossRate → delivered but reported failed.
	if err := f.Deliver(ctx, Entry{}); !errors.Is(err, ErrInjectedDrop) {
		t.Fatalf("want ack loss, got %v", err)
	}
	if got := delivered.Load(); got != 3 {
		t.Fatalf("deliveries = %d, want 3", got)
	}
	drops, acks, dups := f.Injected()
	if drops != 1 || acks != 1 || dups != 1 {
		t.Fatalf("Injected = (%d,%d,%d)", drops, acks, dups)
	}
}

func TestOutboxCompaction(t *testing.T) {
	path := filepath.Join(t.TempDir(), "outbox.wal")
	o, err := OpenOutbox(path)
	if err != nil {
		t.Fatal(err)
	}
	var keepSeq uint64
	for i := 0; i < 50; i++ {
		e, _, err := o.Append("d", "store", fmt.Sprintf("k%d", i), "", []byte("payload"))
		if err != nil {
			t.Fatal(err)
		}
		if i == 49 {
			keepSeq = e.Seq
			break
		}
		if err := o.Ack(e.Seq); err != nil {
			t.Fatal(err)
		}
	}
	if err := o.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := o.Close(); err != nil {
		t.Fatal(err)
	}
	// The compacted journal replays to the same state.
	o2, err := OpenOutbox(path)
	if err != nil {
		t.Fatal(err)
	}
	defer o2.Close()
	got := o2.Pending()
	if len(got) != 1 || got[0].Seq != keepSeq {
		t.Fatalf("pending after compaction = %+v, want seq %d", got, keepSeq)
	}
	// Sequence numbers keep advancing past compaction.
	e, _, err := o2.Append("d", "store", "fresh", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	if e.Seq <= keepSeq {
		t.Fatalf("new seq %d should exceed %d", e.Seq, keepSeq)
	}
}
