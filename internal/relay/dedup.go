package relay

import (
	"crypto/sha256"
	"encoding/hex"
	"sync"
)

// IdempotencyKey derives the key that identifies one logical delivery:
// the digest of (kind, destination, payload). Retries of the same hop
// collide on it — the outbox refuses a second enqueue and receivers
// replay their cached response instead of re-applying the document.
// Callers whose payloads legitimately repeat (a loop re-notifying the
// same worklist) must fold a local sequence number into the payload or
// supply their own key.
func IdempotencyKey(kind, dest string, payload []byte) string {
	h := sha256.New()
	h.Write([]byte(kind))
	h.Write([]byte{0})
	h.Write([]byte(dest))
	h.Write([]byte{0})
	h.Write(payload)
	return hex.EncodeToString(h.Sum(nil))
}

// defaultDeduperCap bounds receiver-side dedup memory.
const defaultDeduperCap = 4096

// Deduper is the receiver half of exactly-once: it remembers the outcome
// of each idempotency key so a redelivered request gets the original
// response replayed instead of a second application. Bounded FIFO; safe
// for concurrent use. The zero value is ready with the default capacity.
type Deduper struct {
	// Cap overrides the retention bound when set before first use.
	Cap int

	mu    sync.Mutex
	m     map[string]any
	order []string
}

// Remember records the outcome for key, evicting the oldest entries past
// capacity. An empty key is ignored; a key already present keeps its
// first outcome.
func (d *Deduper) Remember(key string, outcome any) {
	if key == "" {
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.m == nil {
		d.m = map[string]any{}
	}
	if _, ok := d.m[key]; ok {
		return
	}
	d.m[key] = outcome
	d.order = append(d.order, key)
	cap := d.Cap
	if cap <= 0 {
		cap = defaultDeduperCap
	}
	for len(d.order) > cap {
		delete(d.m, d.order[0])
		d.order = d.order[1:]
	}
}

// Lookup returns the remembered outcome for key, if any.
func (d *Deduper) Lookup(key string) (any, bool) {
	if key == "" {
		return nil, false
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	v, ok := d.m[key]
	return v, ok
}

// Len returns how many keys are retained.
func (d *Deduper) Len() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.m)
}
