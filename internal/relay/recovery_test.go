package relay

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// receiver is a fake peer that applies deliveries exactly once per
// idempotency key, like the httpapi servers do: a redelivered key is
// acknowledged without a second application.
type receiver struct {
	mu       sync.Mutex
	dedup    Deduper
	applied  map[string]int // key → times actually applied
	received map[string]int // key → times a delivery arrived
}

func newReceiver() *receiver {
	return &receiver{applied: map[string]int{}, received: map[string]int{}}
}

func (rc *receiver) deliver(e Entry) {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	rc.received[e.Key]++
	if _, seen := rc.dedup.Lookup(e.Key); seen {
		return
	}
	rc.dedup.Remember(e.Key, true)
	rc.applied[e.Key]++
}

func (rc *receiver) appliedCount(key string) int {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return rc.applied[key]
}

func (rc *receiver) receivedCount(key string) int {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return rc.received[key]
}

// TestCrashRecovery kills a relay mid-flight and proves the WAL replay
// loses nothing and double-applies nothing. Phase 1 runs against a peer
// where two deliveries succeed cleanly, one succeeds but its
// acknowledgement is lost (the classic duplicating failure), and three
// fail outright; the relay is then closed with those four unsettled.
// Phase 2 reopens the same WAL against a healed peer.
func TestCrashRecovery(t *testing.T) {
	path := filepath.Join(t.TempDir(), "outbox.wal")
	rc := newReceiver()
	keys := []string{"a", "b", "c", "d", "e", "f"}

	tr1 := TransportFunc(func(ctx context.Context, e Entry) error {
		switch e.Key {
		case "a", "b":
			rc.deliver(e)
			return nil
		case "c":
			// Applied by the peer, but the ack never makes it back.
			rc.deliver(e)
			return errors.New("ack lost")
		default:
			return errors.New("peer down")
		}
	})

	ob, err := OpenOutbox(path)
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig()
	cfg.MaxAttempts = 1000 // nothing dead-letters; unsettled work survives the crash
	r := New(ob, tr1, cfg)
	for _, k := range keys {
		if _, dup, err := r.Enqueue("peer", "store", k, []byte("payload-"+k)); err != nil || dup {
			t.Fatalf("Enqueue(%s) = dup=%v err=%v", k, dup, err)
		}
	}
	// Wait until the clean deliveries acked and the others have been tried.
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := r.Stats()
		if st.Delivered >= 2 && rc.appliedCount("c") == 1 && st.Attempts >= 6 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("phase 1 never settled: %+v", r.Stats())
		}
		time.Sleep(time.Millisecond)
	}
	if err := r.Close(); err != nil { // the "crash": pending work stays in the WAL
		t.Fatal(err)
	}

	// Phase 2: reopen the journal against a healed peer.
	ob2, err := OpenOutbox(path)
	if err != nil {
		t.Fatal(err)
	}
	if p, d := ob2.Counts(); p != 4 || d != 0 {
		t.Fatalf("replayed counts = (%d,%d), want (4,0)", p, d)
	}
	tr2 := TransportFunc(func(ctx context.Context, e Entry) error {
		rc.deliver(e)
		return nil
	})
	r2 := New(ob2, tr2, testConfig())
	defer r2.Close()
	r2.Flush()

	if st := r2.Stats(); st.Pending != 0 || st.Dead != 0 || st.Delivered != 4 {
		t.Fatalf("phase 2 stats = %+v", st)
	}
	// No delivery lost: every key applied; none applied twice — including
	// "c", which arrived in both phases and was absorbed by receiver-side
	// idempotency.
	for _, k := range keys {
		if got := rc.appliedCount(k); got != 1 {
			t.Fatalf("key %s applied %d times, want exactly 1", k, got)
		}
	}
	if got := rc.receivedCount("c"); got < 2 {
		t.Fatalf("key c received %d times, want >= 2 (redelivery)", got)
	}
	// Acked deliveries were not redelivered after the restart.
	for _, k := range []string{"a", "b"} {
		if got := rc.receivedCount(k); got != 1 {
			t.Fatalf("acked key %s received %d times after restart, want 1", k, got)
		}
	}
}

// TestOutboxTornTailRecovery crashes "mid-append": the journal ends in a
// half-written record, which replay must drop without losing the intact
// prefix — and the next append must not corrupt the file.
func TestOutboxTornTailRecovery(t *testing.T) {
	path := filepath.Join(t.TempDir(), "outbox.wal")
	o, err := OpenOutbox(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, _, err := o.Append("d", "store", fmt.Sprintf("k%d", i), "", []byte("p")); err != nil {
			t.Fatal(err)
		}
	}
	if err := o.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-append: a partial record with no newline.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"op":"enq","seq":3,"de`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	o2, err := OpenOutbox(path)
	if err != nil {
		t.Fatalf("reopen with torn tail: %v", err)
	}
	if p, d := o2.Counts(); p != 3 || d != 0 {
		t.Fatalf("counts after torn-tail replay = (%d,%d), want (3,0)", p, d)
	}
	// The file must be clean for new appends.
	if _, _, err := o2.Append("d", "store", "k3", "", []byte("p")); err != nil {
		t.Fatal(err)
	}
	if err := o2.Close(); err != nil {
		t.Fatal(err)
	}
	o3, err := OpenOutbox(path)
	if err != nil {
		t.Fatal(err)
	}
	defer o3.Close()
	if p, _ := o3.Counts(); p != 4 {
		t.Fatalf("pending after post-tear append = %d, want 4", p)
	}
}

// TestOutboxRejectsMidFileCorruption: a mangled record that is NOT the
// final line is real corruption and must fail loudly, not be skipped.
func TestOutboxRejectsMidFileCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "outbox.wal")
	content := `{"op":"enq","seq":0,"dest":"d","kind":"store","key":"a"}
not json at all
{"op":"enq","seq":1,"dest":"d","kind":"store","key":"b"}
`
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenOutbox(path); err == nil {
		t.Fatal("mid-file corruption must be an error")
	}
}
