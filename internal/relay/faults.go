package relay

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"
)

// ErrInjectedDrop is the failure a FaultInjector reports for a dropped
// delivery attempt.
var ErrInjectedDrop = errors.New("relay: injected fault: delivery dropped")

// FaultInjector wraps a Transport with the three network pathologies the
// relay exists to survive: lost requests (the receiver never sees the
// hop), lost acknowledgements (the receiver applies the hop but the
// sender sees a failure and retries), and duplicated deliveries (the hop
// arrives twice). Rates are probabilities in [0,1] drawn per attempt.
// Used by the fault-injection tests and drabench.
type FaultInjector struct {
	// Inner performs the real delivery.
	Inner Transport
	// DropRate is the chance an attempt is dropped before reaching the
	// receiver.
	DropRate float64
	// AckLossRate is the chance a successful delivery is reported as
	// failed (forcing a sender retry the receiver must deduplicate).
	AckLossRate float64
	// DupRate is the chance a successful delivery is immediately
	// delivered a second time.
	DupRate float64
	// Delay is fixed extra latency per attempt.
	Delay time.Duration
	// Rand supplies draws in [0,1); required (tests seed it for
	// determinism).
	Rand func() float64

	randMu sync.Mutex
	drops  atomic.Int64
	acklss atomic.Int64
	dups   atomic.Int64
}

// draw takes one synchronized random sample.
func (f *FaultInjector) draw() float64 {
	f.randMu.Lock()
	defer f.randMu.Unlock()
	return f.Rand()
}

// Deliver applies the configured faults around the inner transport.
func (f *FaultInjector) Deliver(ctx context.Context, e Entry) error {
	if f.Delay > 0 {
		select {
		case <-time.After(f.Delay):
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	if f.DropRate > 0 && f.draw() < f.DropRate {
		f.drops.Add(1)
		return ErrInjectedDrop
	}
	err := f.Inner.Deliver(ctx, e)
	if err != nil {
		return err
	}
	if f.DupRate > 0 && f.draw() < f.DupRate {
		f.dups.Add(1)
		// The duplicate's own outcome is irrelevant — the point is that
		// the receiver sees the hop twice.
		//lint:ignore cryptoerr the injected duplicate's outcome is intentionally unobserved; the primary delivery's error was already returned above
		_ = f.Inner.Deliver(ctx, e)
	}
	if f.AckLossRate > 0 && f.draw() < f.AckLossRate {
		f.acklss.Add(1)
		return ErrInjectedDrop
	}
	return nil
}

// Injected returns how many faults fired: dropped requests, lost acks,
// and duplicated deliveries.
func (f *FaultInjector) Injected() (drops, ackLosses, dups int64) {
	return f.drops.Load(), f.acklss.Load(), f.dups.Load()
}
