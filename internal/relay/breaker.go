package relay

import (
	"sync"
	"time"
)

// Circuit breakers stop the relay from burning its retry budget (and its
// workers) on a destination that is down: after Threshold consecutive
// failures the destination's breaker opens and deliveries are parked
// without an attempt until Cooldown elapses; the breaker then half-opens
// and lets a single probe through. A successful probe closes the circuit,
// a failed one re-opens it for another cooldown.

// Breaker states, exported as the relay_breaker_state gauge value.
const (
	BreakerClosed   = 0.0
	BreakerHalfOpen = 1.0
	BreakerOpen     = 2.0
)

// BreakerPolicy configures per-destination circuit breaking.
type BreakerPolicy struct {
	// Threshold is the consecutive-failure count that opens the circuit
	// (default 5; <0 disables breaking entirely).
	Threshold int
	// Cooldown is how long an open circuit rejects attempts before
	// half-opening (default 5s).
	Cooldown time.Duration
	// Jitter stretches each cooldown by up to Jitter×Cooldown, drawn
	// per opening. Senders that tripped on the same outage then half-open
	// at different times instead of probing the recovering destination in
	// lockstep (default 0 — no jitter).
	Jitter float64
}

func (p BreakerPolicy) withDefaults() BreakerPolicy {
	if p.Threshold == 0 {
		p.Threshold = 5
	}
	if p.Cooldown <= 0 {
		p.Cooldown = 5 * time.Second
	}
	return p
}

// breaker is one destination's circuit state. Callers synchronize through
// breakerSet.
type breaker struct {
	state    float64
	failures int
	reopenAt time.Time // when an open circuit half-opens (cooldown + jitter)
	probing  bool      // a half-open probe is in flight
}

// breakerSet tracks breakers per destination.
type breakerSet struct {
	policy BreakerPolicy
	jitter func() float64 // draws in [0,1); nil means no jitter

	mu sync.Mutex
	m  map[string]*breaker
}

func newBreakerSet(p BreakerPolicy, jitter func() float64) *breakerSet {
	return &breakerSet{policy: p.withDefaults(), jitter: jitter, m: map[string]*breaker{}}
}

// jitteredCooldown draws one cooldown, stretched by up to Jitter×Cooldown.
func (s *breakerSet) jitteredCooldown() time.Duration {
	cd := s.policy.Cooldown
	if s.policy.Jitter > 0 && s.jitter != nil {
		cd += time.Duration(s.jitter() * s.policy.Jitter * float64(cd))
	}
	return cd
}

func (s *breakerSet) get(dest string) *breaker {
	b, ok := s.m[dest]
	if !ok {
		b = &breaker{}
		s.m[dest] = b
	}
	return b
}

// allow reports whether an attempt to dest may proceed now; when it may
// not, retryAt is when the circuit will next admit one.
func (s *breakerSet) allow(dest string, now time.Time) (ok bool, retryAt time.Time) {
	if s.policy.Threshold < 0 {
		return true, time.Time{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	b := s.get(dest)
	switch b.state {
	case BreakerOpen:
		if now.Before(b.reopenAt) {
			return false, b.reopenAt
		}
		b.state = BreakerHalfOpen
		b.probing = false
		mBreakerState.Set(BreakerHalfOpen)
		fallthrough
	case BreakerHalfOpen:
		if b.probing {
			// One probe at a time; others wait out a (jittered) cooldown.
			return false, now.Add(s.jitteredCooldown())
		}
		b.probing = true
		return true, time.Time{}
	default:
		return true, time.Time{}
	}
}

// success records a delivered attempt, closing the circuit.
func (s *breakerSet) success(dest string) {
	if s.policy.Threshold < 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	b := s.get(dest)
	b.failures = 0
	b.probing = false
	if b.state != BreakerClosed {
		b.state = BreakerClosed
		mBreakerState.Set(BreakerClosed)
	}
}

// failure records a failed attempt, opening the circuit at the threshold.
func (s *breakerSet) failure(dest string, now time.Time) {
	if s.policy.Threshold < 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	b := s.get(dest)
	b.failures++
	b.probing = false
	if b.state == BreakerHalfOpen || b.failures >= s.policy.Threshold {
		if b.state != BreakerOpen {
			mBreakerOpens.Inc()
		}
		b.state = BreakerOpen
		// The jitter draw happens once per opening, so the reopen time is
		// fixed at open time and every parked delivery sees the same one.
		b.reopenAt = now.Add(s.jitteredCooldown())
		mBreakerState.Set(BreakerOpen)
	}
}

// state returns the current state value for dest.
func (s *breakerSet) stateOf(dest string) float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if b, ok := s.m[dest]; ok {
		return b.state
	}
	return BreakerClosed
}
