// Package audit performs offline, after-the-fact verification of DRA4WfMS
// documents — the arbiter's role in the paper's nonrepudiation story. A
// dispute ("I never approved that", "the form I was shown said something
// else") is settled by handing the document and the deployment's trust
// bundle to any third party: no server, no database, and no cooperation
// from the accused is needed, because the document carries all the
// evidence.
//
// The auditor checks more than signature validity: it reconstructs the
// cascade, confirms that every CER's signature chain reaches the workflow
// designer's signature (an orphaned CER would indicate a spliced-in
// result), that recorded participants match the embedded definition's
// assignments, that the control flow recorded in the signed Next elements
// is a legal execution of the definition, and that advanced-model
// timestamps are monotone.
package audit

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"dra4wfms/internal/document"
	"dra4wfms/internal/dsig"
	"dra4wfms/internal/pki"
)

// Severity grades a finding.
type Severity string

const (
	// Fatal findings mean the document is not trustworthy.
	Fatal Severity = "FATAL"
	// Warn findings are irregularities that do not break integrity.
	Warn Severity = "WARN"
	// Info findings are notable observations.
	Info Severity = "INFO"
)

// Finding is one audit observation.
type Finding struct {
	Severity Severity
	// Subject is the CER id or document region concerned.
	Subject string
	// Message describes the observation.
	Message string
}

// Report is the outcome of auditing one document.
type Report struct {
	ProcessID  string
	Definition string
	// Verified is true when no Fatal finding was raised.
	Verified bool
	// Signatures is the number of valid signatures checked.
	Signatures int
	// Steps lists the final CERs in document order with their signers.
	Steps []StepRecord
	// Findings lists all observations, worst first.
	Findings []Finding
	// Completed reports whether the recorded flow reached the end.
	Completed bool
}

// StepRecord summarizes one audited execution step.
type StepRecord struct {
	CER         string
	Activity    string
	Iteration   int
	Participant string
	Signer      string
	Timestamp   time.Time
	Next        []string
	// ScopeSize is the size of the step's nonrepudiation scope.
	ScopeSize int
}

// Audit verifies the document against the resolver (a registry or a trust
// bundle's registry) and returns a full report. It never returns an error
// for content problems — those become findings; errors indicate the
// document is not even parseable as a DRA4WfMS document.
func Audit(doc *document.Document, resolver dsig.KeyResolver) (*Report, error) {
	rep := &Report{
		ProcessID:  doc.ProcessID(),
		Definition: doc.DefinitionName(),
	}
	add := func(sev Severity, subject, format string, args ...interface{}) {
		rep.Findings = append(rep.Findings, Finding{Severity: sev, Subject: subject, Message: fmt.Sprintf(format, args...)})
	}

	// 1. Cryptographic verification of every signature + binding checks.
	nsigs, err := doc.VerifyAll(resolver)
	if err != nil {
		add(Fatal, "document", "signature verification failed: %v", err)
	} else {
		rep.Signatures = nsigs
	}

	// 2. The embedded definition must parse and validate.
	def, err := doc.Definition()
	if err != nil {
		add(Fatal, "definition", "embedded definition unreadable: %v", err)
		rep.finish()
		return rep, nil
	}
	if err := def.Validate(); err != nil {
		add(Fatal, "definition", "embedded definition invalid: %v", err)
	}

	// 3. Cascade reachability: every CER's scope must include CER(A0).
	for _, c := range doc.CERs() {
		scope, err := doc.NonrepudiationScope(c.ID())
		if err != nil {
			add(Fatal, c.ID(), "scope derivation failed: %v", err)
			continue
		}
		rooted := false
		for _, id := range scope {
			if id == "cer-A0" {
				rooted = true
			}
		}
		if !rooted {
			add(Fatal, c.ID(), "signature cascade does not reach the designer (possible splice)")
		}
		if c.Kind() == document.KindFinal {
			ts, hasTS := c.Timestamp()
			rep.Steps = append(rep.Steps, StepRecord{
				CER:         c.ID(),
				Activity:    c.ActivityID(),
				Iteration:   c.Iteration(),
				Participant: c.Participant(),
				Signer:      c.Signer(),
				Timestamp:   ts,
				Next:        c.Next(),
				ScopeSize:   len(scope),
			})
			_ = hasTS
		}
	}

	// 4. Participant assignment: the recorded executor must match the
	// definition; the signer must be the participant (basic model) or the
	// declared TFC (advanced model). Role-based assignments need an
	// identity resolver to verify membership; without one they are noted.
	type identityResolver interface {
		Identity(id string) (*pki.Identity, error)
	}
	idRes, hasIDRes := resolver.(identityResolver)
	for _, c := range doc.CERs() {
		act := def.Activity(c.ActivityID())
		if act == nil {
			add(Fatal, c.ID(), "names activity %q absent from the definition", c.ActivityID())
			continue
		}
		if act.Participant != "" && act.Participant != c.Participant() {
			add(Fatal, c.ID(), "recorded participant %q but definition assigns %q", c.Participant(), act.Participant)
		}
		if act.Role != "" {
			if hasIDRes {
				id, err := idRes.Identity(c.Participant())
				if err != nil {
					add(Fatal, c.ID(), "executor %q unknown to the registry: %v", c.Participant(), err)
				} else if !id.HasRole(act.Role) {
					add(Fatal, c.ID(), "executor %q lacks required role %q", c.Participant(), act.Role)
				}
			} else {
				add(Info, c.ID(), "role %q membership of %q not checkable with this resolver", act.Role, c.Participant())
			}
		}
		switch c.Kind() {
		case document.KindIntermediate:
			if c.Signer() != c.Participant() {
				add(Fatal, c.ID(), "intermediate CER signed by %q, not its participant %q", c.Signer(), c.Participant())
			}
		case document.KindFinal:
			responsibleTFC := def.TFCFor(c.ActivityID())
			signerOK := c.Signer() == c.Participant() || (responsibleTFC != "" && c.Signer() == responsibleTFC)
			if !signerOK {
				add(Fatal, c.ID(), "final CER signed by %q (neither participant %q nor TFC %q)",
					c.Signer(), c.Participant(), responsibleTFC)
			}
		}
	}

	// 5. Control-flow replay: the signed Next decisions must be a legal
	// token-game execution.
	if enabled, completed, err := document.Enabled(def, doc); err != nil {
		add(Fatal, "flow", "recorded flow is not replayable: %v", err)
	} else {
		rep.Completed = completed
		if !completed && len(enabled) == 0 && len(doc.FinalCERs()) > 0 {
			add(Warn, "flow", "instance is stuck: nothing enabled and not completed")
		}
		// Each recorded Next target must be a declared outgoing edge.
		for _, c := range doc.FinalCERs() {
			outs := map[string]bool{}
			for _, tr := range def.Outgoing(c.ActivityID()) {
				outs[tr.To] = true
			}
			for _, to := range c.Next() {
				if !outs[to] {
					add(Fatal, c.ID(), "routes to %q which is not an outgoing edge of %s", to, c.ActivityID())
				}
			}
		}
	}

	// 6. Timestamps (advanced model): monotone in document order.
	var prev time.Time
	var prevID string
	for _, c := range doc.FinalCERs() {
		ts, ok := c.Timestamp()
		if !ok {
			continue
		}
		if !prev.IsZero() && ts.Before(prev) {
			add(Warn, c.ID(), "timestamp %v precedes predecessor %s (%v)", ts, prevID, prev)
		}
		prev, prevID = ts, c.ID()
	}

	rep.finish()
	return rep, nil
}

func (r *Report) finish() {
	r.Verified = true
	for _, f := range r.Findings {
		if f.Severity == Fatal {
			r.Verified = false
		}
	}
	sort.SliceStable(r.Findings, func(i, j int) bool {
		rank := map[Severity]int{Fatal: 0, Warn: 1, Info: 2}
		return rank[r.Findings[i].Severity] < rank[r.Findings[j].Severity]
	})
}

// Render formats the report for humans.
func (r *Report) Render() string {
	var b strings.Builder
	verdict := "VERIFIED"
	if !r.Verified {
		verdict = "NOT TRUSTWORTHY"
	}
	fmt.Fprintf(&b, "audit of process %s (%s): %s\n", r.ProcessID, r.Definition, verdict)
	fmt.Fprintf(&b, "signatures checked: %d, completed: %v\n", r.Signatures, r.Completed)
	if len(r.Steps) > 0 {
		b.WriteString("steps:\n")
		for _, s := range r.Steps {
			fmt.Fprintf(&b, "  %-14s %s#%d by %-14s signed %-14s scope %d",
				s.CER, s.Activity, s.Iteration, s.Participant, s.Signer, s.ScopeSize)
			if !s.Timestamp.IsZero() {
				fmt.Fprintf(&b, " at %s", s.Timestamp.Format(time.RFC3339))
			}
			if len(s.Next) > 0 {
				fmt.Fprintf(&b, " -> %s", strings.Join(s.Next, ","))
			}
			b.WriteString("\n")
		}
	}
	if len(r.Findings) > 0 {
		b.WriteString("findings:\n")
		for _, f := range r.Findings {
			fmt.Fprintf(&b, "  [%s] %s: %s\n", f.Severity, f.Subject, f.Message)
		}
	}
	return b.String()
}
