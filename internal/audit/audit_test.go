package audit

import (
	"strings"
	"testing"
	"time"

	"dra4wfms/internal/aea"
	"dra4wfms/internal/document"
	"dra4wfms/internal/testenv"
	"dra4wfms/internal/tfc"
	"dra4wfms/internal/wfdef"
)

var now = time.Date(2026, 7, 6, 18, 0, 0, 0, time.UTC)

// runBasic executes Figure 9A once (accepting) and returns the final doc.
func runBasic(t *testing.T, env *testenv.Env) *document.Document {
	t.Helper()
	def := wfdef.Fig9A()
	doc, err := document.New(def, env.KeyOf("designer@acme"), testenv.ProcessID(), now)
	if err != nil {
		t.Fatal(err)
	}
	agents := map[string]*aea.AEA{}
	for act, p := range wfdef.Fig9Participants {
		agents[act] = aea.New(env.KeyOf(p), env.Registry)
	}
	steps := []struct {
		act    string
		inputs aea.Inputs
	}{
		{"A", aea.Inputs{"request": "r"}},
		{"B1", aea.Inputs{"techReview": "ok"}},
		{"B2", aea.Inputs{"budgetReview": "ok"}},
		{"C", aea.Inputs{"summary": "s"}},
		{"D", aea.Inputs{"accept": "true"}},
	}
	cur := doc
	for _, s := range steps {
		out, err := agents[s.act].Execute(cur, s.act, s.inputs, now)
		if err != nil {
			t.Fatal(err)
		}
		cur = out.Doc
	}
	return cur
}

func runAdvanced(t *testing.T, env *testenv.Env) *document.Document {
	t.Helper()
	def := wfdef.Fig9B()
	doc, err := document.New(def, env.KeyOf("designer@acme"), testenv.ProcessID(), now)
	if err != nil {
		t.Fatal(err)
	}
	tick := now
	server := tfc.New(env.KeyOf("tfc@cloud"), env.Registry, func() time.Time {
		tick = tick.Add(time.Minute)
		return tick
	})
	agents := map[string]*aea.AEA{}
	for act, p := range wfdef.Fig9Participants {
		agents[act] = aea.New(env.KeyOf(p), env.Registry)
	}
	steps := []struct {
		act    string
		inputs aea.Inputs
	}{
		{"A", aea.Inputs{"request": "r"}},
		{"B1", aea.Inputs{"techReview": "ok"}},
		{"B2", aea.Inputs{"budgetReview": "ok"}},
		{"C", aea.Inputs{"summary": "s"}},
		{"D", aea.Inputs{"accept": "true"}},
	}
	cur := doc
	for _, s := range steps {
		interm, err := agents[s.act].ExecuteToTFC(cur, s.act, s.inputs)
		if err != nil {
			t.Fatal(err)
		}
		out, err := server.Process(interm)
		if err != nil {
			t.Fatal(err)
		}
		cur = out.Doc
	}
	return cur
}

func TestAuditCleanBasicRun(t *testing.T) {
	env := testenv.Fig9(0)
	doc := runBasic(t, env)
	rep, err := Audit(doc, env.Registry)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Verified {
		t.Fatalf("clean run not verified:\n%s", rep.Render())
	}
	if !rep.Completed || rep.Signatures != 6 || len(rep.Steps) != 5 {
		t.Fatalf("report = %+v", rep)
	}
	if len(rep.Findings) != 0 {
		t.Fatalf("unexpected findings: %v", rep.Findings)
	}
	// Scopes grow along the chain.
	if rep.Steps[0].ScopeSize >= rep.Steps[4].ScopeSize {
		t.Fatalf("scopes not growing: %v", rep.Steps)
	}
	out := rep.Render()
	for _, want := range []string{"VERIFIED", "cer-D-0", "signatures checked: 6"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestAuditCleanAdvancedRun(t *testing.T) {
	env := testenv.Fig9(0)
	doc := runAdvanced(t, env)
	rep, err := Audit(doc, env.Registry)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Verified || len(rep.Findings) != 0 {
		t.Fatalf("advanced run findings: %v", rep.Findings)
	}
	if rep.Signatures != 11 {
		t.Fatalf("signatures = %d", rep.Signatures)
	}
	for _, s := range rep.Steps {
		if s.Signer != "tfc@cloud" || s.Timestamp.IsZero() {
			t.Fatalf("step %+v", s)
		}
	}
}

func TestAuditDetectsTamper(t *testing.T) {
	env := testenv.Fig9(0)
	doc := runBasic(t, env)
	forged := doc.Clone()
	forged.Root.FindByID("res-C-0").SetText("forged summary")
	rep, err := Audit(forged, env.Registry)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verified {
		t.Fatal("tampered document verified")
	}
	if !strings.Contains(rep.Render(), "NOT TRUSTWORTHY") {
		t.Fatalf("render:\n%s", rep.Render())
	}
}

func TestAuditDetectsSplicedCER(t *testing.T) {
	// A CER whose cascade chains only to itself (self-contained signature
	// island) must be flagged even though its own signature verifies.
	env := testenv.Fig9(0)
	doc := runBasic(t, env)

	// Build a rogue CER signed by a legitimate key but referencing only
	// its own result — no predecessor in refs is impossible (AppendCER
	// enforces preds), so splice by copying an existing CER from ANOTHER
	// instance: its signature verifies in isolation but its predecessor
	// references resolve to... actually they resolve to same-named sig IDs
	// of THIS doc and fail digest checks. So simulate the subtle case:
	// remove the designer reference chain by deleting the middle CERs and
	// re-inserting a CER whose preds were those deleted ones.
	cerD, _ := doc.FindCER(document.KindFinal, "D", 0)
	spliced := document.Document{Root: doc.Root.Clone()}
	results := spliced.Root.Child("ActivityResults")
	// Remove every CER except D's.
	for _, c := range spliced.CERs() {
		if c.ID() != cerD.ID() {
			results.RemoveChild(c.El)
		}
	}
	rep, err := Audit(&spliced, env.Registry)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verified {
		t.Fatal("spliced document verified")
	}
}

func TestAuditDetectsIllegalRouting(t *testing.T) {
	// A document claiming a Next target that the definition does not
	// declare must be flagged — construct it directly via AppendCER.
	env := testenv.Fig9(0)
	def := wfdef.Fig9A()
	doc, err := document.New(def, env.KeyOf("designer@acme"), testenv.ProcessID(), now)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := doc.AppendCER(document.AppendSpec{
		ActivityID:  "A",
		Kind:        document.KindFinal,
		Participant: wfdef.Fig9Participants["A"],
		Next:        []string{"D"}, // A has no edge to D
		PredSigIDs:  []string{document.DesignerSig},
		Signer:      env.KeyOf(wfdef.Fig9Participants["A"]),
	}); err != nil {
		t.Fatal(err)
	}
	rep, err := Audit(doc, env.Registry)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verified {
		t.Fatal("illegal routing verified")
	}
	found := false
	for _, f := range rep.Findings {
		if strings.Contains(f.Message, "not an outgoing edge") {
			found = true
		}
	}
	if !found {
		t.Fatalf("missing routing finding: %v", rep.Findings)
	}
}

func TestAuditDetectsWrongParticipant(t *testing.T) {
	env := testenv.Fig9(0)
	def := wfdef.Fig9A()
	doc, _ := document.New(def, env.KeyOf("designer@acme"), testenv.ProcessID(), now)
	// bob executes and signs A although alice is assigned.
	if _, err := doc.AppendCER(document.AppendSpec{
		ActivityID:  "A",
		Kind:        document.KindFinal,
		Participant: wfdef.Fig9Participants["B1"], // recorded bob
		Next:        []string{"B1", "B2"},
		PredSigIDs:  []string{document.DesignerSig},
		Signer:      env.KeyOf(wfdef.Fig9Participants["B1"]),
	}); err != nil {
		t.Fatal(err)
	}
	rep, _ := Audit(doc, env.Registry)
	if rep.Verified {
		t.Fatal("wrong-participant CER verified")
	}
}

func TestAuditWarnsNonMonotoneTimestamps(t *testing.T) {
	env := testenv.Fig9(0)
	def := wfdef.Fig9B()
	doc, _ := document.New(def, env.KeyOf("designer@acme"), testenv.ProcessID(), now)
	tick := now.Add(time.Hour)
	server := tfc.New(env.KeyOf("tfc@cloud"), env.Registry, func() time.Time {
		tick = tick.Add(-time.Minute) // clock running backwards
		return tick
	})
	agents := map[string]*aea.AEA{}
	for act, p := range wfdef.Fig9Participants {
		agents[act] = aea.New(env.KeyOf(p), env.Registry)
	}
	cur := doc
	for _, s := range []struct {
		act    string
		inputs aea.Inputs
	}{
		{"A", aea.Inputs{"request": "r"}},
		{"B1", aea.Inputs{"techReview": "ok"}},
	} {
		interm, err := agents[s.act].ExecuteToTFC(cur, s.act, s.inputs)
		if err != nil {
			t.Fatal(err)
		}
		out, err := server.Process(interm)
		if err != nil {
			t.Fatal(err)
		}
		cur = out.Doc
	}
	rep, _ := Audit(cur, env.Registry)
	warned := false
	for _, f := range rep.Findings {
		if f.Severity == Warn && strings.Contains(f.Message, "precedes") {
			warned = true
		}
	}
	if !warned {
		t.Fatalf("no timestamp warning: %v", rep.Findings)
	}
	// Warnings alone do not break verification.
	if !rep.Verified {
		t.Fatal("warn-only report marked untrustworthy")
	}
}

func TestAuditUnreadableDefinition(t *testing.T) {
	env := testenv.Fig9(0)
	doc := runBasic(t, env)
	broken := doc.Clone()
	// Replace the WorkflowDefinition with a husk (also breaks signatures).
	wf := broken.WorkflowElement()
	wf.Children = nil
	wf.Name = "Mangled"
	rep, err := Audit(broken, env.Registry)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verified {
		t.Fatal("mangled definition verified")
	}
}
