// Package expr implements the small boolean expression language used in
// workflow definitions for OR-split (conditional branch) and loop
// conditions — the paper's `Func(X)=True` predicates and the
// "Attachment is insufficient" loop guard of Figure 9.
//
// The language has three value types (string, number, bool), comparison and
// logical operators, parentheses, variable references resolving against the
// workflow process instance, and a handful of built-in functions:
//
//	amount > 10000 && status == "approved"
//	!contains(comment, "reject") || retries >= 3
//	len(attachment) == 0
//
// Expressions are parsed once at definition-validation time and evaluated
// by whoever is entitled to see the condition variables: the participant's
// AEA in the basic operational model, or the TFC server in the advanced
// model when flow information is concealed from participants.
package expr

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// Kind enumerates the value types of the language.
type Kind int

const (
	// StringKind is a UTF-8 string value.
	StringKind Kind = iota
	// NumberKind is a float64 value.
	NumberKind
	// BoolKind is a boolean value.
	BoolKind
)

func (k Kind) String() string {
	switch k {
	case StringKind:
		return "string"
	case NumberKind:
		return "number"
	case BoolKind:
		return "bool"
	}
	return "invalid"
}

// Value is a tagged union of the three language types.
type Value struct {
	Kind Kind
	Str  string
	Num  float64
	Bool bool
}

// String builds a string value.
func String(s string) Value { return Value{Kind: StringKind, Str: s} }

// Number builds a numeric value.
func Number(f float64) Value { return Value{Kind: NumberKind, Num: f} }

// Bool builds a boolean value.
func Bool(b bool) Value { return Value{Kind: BoolKind, Bool: b} }

// Text renders the value as a string for storage in workflow variables
// (all process-instance data is carried as XML text).
func (v Value) Text() string {
	switch v.Kind {
	case StringKind:
		return v.Str
	case NumberKind:
		return strconv.FormatFloat(v.Num, 'g', -1, 64)
	case BoolKind:
		return strconv.FormatBool(v.Bool)
	}
	return ""
}

// FromText parses a stored variable back into a Value: "true"/"false"
// become bools, parseable numbers become numbers, everything else is a
// string. This mirrors how workflow variables are stored as XML text.
func FromText(s string) Value {
	switch s {
	case "true":
		return Bool(true)
	case "false":
		return Bool(false)
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		return Number(f)
	}
	return String(s)
}

// Env resolves variable names during evaluation.
type Env interface {
	// Lookup returns the value bound to name and whether it exists.
	Lookup(name string) (Value, bool)
}

// MapEnv is the simplest Env: a map of variable bindings.
type MapEnv map[string]Value

// Lookup implements Env.
func (m MapEnv) Lookup(name string) (Value, bool) {
	v, ok := m[name]
	return v, ok
}

// ErrUndefinedVariable is wrapped by evaluation errors caused by a variable
// that the environment cannot resolve — in the advanced operational model
// this is the signal that a participant lacks the clearance to evaluate a
// concealed flow condition.
var ErrUndefinedVariable = errors.New("expr: undefined variable")

// Node is a parsed expression tree node.
type Node interface {
	eval(env Env) (Value, error)
	writeTo(b *strings.Builder)
}

// Expr is a parsed, reusable expression.
type Expr struct {
	root Node
	src  string
}

// Source returns the original source text of the expression.
func (e *Expr) Source() string { return e.src }

// String returns a canonical rendering of the parsed expression (fully
// parenthesized where grouping matters).
func (e *Expr) String() string {
	var b strings.Builder
	e.root.writeTo(&b)
	return b.String()
}

// Eval evaluates the expression in env.
func (e *Expr) Eval(env Env) (Value, error) { return e.root.eval(env) }

// EvalBool evaluates the expression and requires a boolean result.
func (e *Expr) EvalBool(env Env) (bool, error) {
	v, err := e.Eval(env)
	if err != nil {
		return false, err
	}
	if v.Kind != BoolKind {
		return false, fmt.Errorf("expr: condition %q evaluated to %s, want bool", e.src, v.Kind)
	}
	return v.Bool, nil
}

// Variables returns the set of variable names the expression references, in
// first-occurrence order. The TFC server uses this to decide which process
// variables it must decrypt before evaluating a concealed condition.
func (e *Expr) Variables() []string {
	var out []string
	seen := map[string]bool{}
	var rec func(n Node)
	rec = func(n Node) {
		switch t := n.(type) {
		case *varNode:
			if !seen[t.name] {
				seen[t.name] = true
				out = append(out, t.name)
			}
		case *binaryNode:
			rec(t.lhs)
			rec(t.rhs)
		case *unaryNode:
			rec(t.operand)
		case *callNode:
			for _, a := range t.args {
				rec(a)
			}
		}
	}
	rec(e.root)
	return out
}

// --- AST nodes -------------------------------------------------------------

type litNode struct{ v Value }

func (n *litNode) eval(Env) (Value, error) { return n.v, nil }
func (n *litNode) writeTo(b *strings.Builder) {
	if n.v.Kind == StringKind {
		b.WriteString(strconv.Quote(n.v.Str))
		return
	}
	b.WriteString(n.v.Text())
}

type varNode struct{ name string }

func (n *varNode) eval(env Env) (Value, error) {
	v, ok := env.Lookup(n.name)
	if !ok {
		return Value{}, fmt.Errorf("%w: %s", ErrUndefinedVariable, n.name)
	}
	return v, nil
}
func (n *varNode) writeTo(b *strings.Builder) { b.WriteString(n.name) }

type unaryNode struct {
	op      string // "!"
	operand Node
}

func (n *unaryNode) eval(env Env) (Value, error) {
	v, err := n.operand.eval(env)
	if err != nil {
		return Value{}, err
	}
	if v.Kind != BoolKind {
		return Value{}, fmt.Errorf("expr: operator ! requires bool, got %s", v.Kind)
	}
	return Bool(!v.Bool), nil
}
func (n *unaryNode) writeTo(b *strings.Builder) {
	b.WriteString("!")
	n.operand.writeTo(b)
}

type binaryNode struct {
	op       string
	lhs, rhs Node
}

func (n *binaryNode) eval(env Env) (Value, error) {
	l, err := n.lhs.eval(env)
	if err != nil {
		return Value{}, err
	}
	// Short-circuit logical operators.
	switch n.op {
	case "&&", "||":
		if l.Kind != BoolKind {
			return Value{}, fmt.Errorf("expr: operator %s requires bool operands, got %s", n.op, l.Kind)
		}
		if n.op == "&&" && !l.Bool {
			return Bool(false), nil
		}
		if n.op == "||" && l.Bool {
			return Bool(true), nil
		}
		r, err := n.rhs.eval(env)
		if err != nil {
			return Value{}, err
		}
		if r.Kind != BoolKind {
			return Value{}, fmt.Errorf("expr: operator %s requires bool operands, got %s", n.op, r.Kind)
		}
		return r, nil
	}
	r, err := n.rhs.eval(env)
	if err != nil {
		return Value{}, err
	}
	switch n.op {
	case "==", "!=":
		eq, err := equalValues(l, r)
		if err != nil {
			return Value{}, err
		}
		if n.op == "!=" {
			eq = !eq
		}
		return Bool(eq), nil
	case "<", "<=", ">", ">=":
		cmp, err := compareValues(l, r)
		if err != nil {
			return Value{}, err
		}
		switch n.op {
		case "<":
			return Bool(cmp < 0), nil
		case "<=":
			return Bool(cmp <= 0), nil
		case ">":
			return Bool(cmp > 0), nil
		default:
			return Bool(cmp >= 0), nil
		}
	case "+":
		if l.Kind == StringKind && r.Kind == StringKind {
			return String(l.Str + r.Str), nil
		}
		if l.Kind == NumberKind && r.Kind == NumberKind {
			return Number(l.Num + r.Num), nil
		}
		return Value{}, fmt.Errorf("expr: operator + requires two numbers or two strings")
	case "-", "*", "/":
		if l.Kind != NumberKind || r.Kind != NumberKind {
			return Value{}, fmt.Errorf("expr: operator %s requires numbers", n.op)
		}
		switch n.op {
		case "-":
			return Number(l.Num - r.Num), nil
		case "*":
			return Number(l.Num * r.Num), nil
		default:
			if r.Num == 0 {
				return Value{}, errors.New("expr: division by zero")
			}
			return Number(l.Num / r.Num), nil
		}
	}
	return Value{}, fmt.Errorf("expr: unknown operator %s", n.op)
}

func (n *binaryNode) writeTo(b *strings.Builder) {
	b.WriteString("(")
	n.lhs.writeTo(b)
	b.WriteString(" ")
	b.WriteString(n.op)
	b.WriteString(" ")
	n.rhs.writeTo(b)
	b.WriteString(")")
}

type callNode struct {
	fn   string
	args []Node
}

func (n *callNode) eval(env Env) (Value, error) {
	f, ok := builtins[n.fn]
	if !ok {
		return Value{}, fmt.Errorf("expr: unknown function %s", n.fn)
	}
	args := make([]Value, len(n.args))
	for i, a := range n.args {
		v, err := a.eval(env)
		if err != nil {
			return Value{}, err
		}
		args[i] = v
	}
	return f(args)
}

func (n *callNode) writeTo(b *strings.Builder) {
	b.WriteString(n.fn)
	b.WriteString("(")
	for i, a := range n.args {
		if i > 0 {
			b.WriteString(", ")
		}
		a.writeTo(b)
	}
	b.WriteString(")")
}

func equalValues(l, r Value) (bool, error) {
	if l.Kind != r.Kind {
		return false, fmt.Errorf("expr: cannot compare %s with %s", l.Kind, r.Kind)
	}
	switch l.Kind {
	case StringKind:
		return l.Str == r.Str, nil
	case NumberKind:
		return l.Num == r.Num, nil
	default:
		return l.Bool == r.Bool, nil
	}
}

func compareValues(l, r Value) (int, error) {
	if l.Kind != r.Kind || l.Kind == BoolKind {
		return 0, fmt.Errorf("expr: cannot order %s against %s", l.Kind, r.Kind)
	}
	switch l.Kind {
	case StringKind:
		return strings.Compare(l.Str, r.Str), nil
	default:
		switch {
		case l.Num < r.Num:
			return -1, nil
		case l.Num > r.Num:
			return 1, nil
		}
		return 0, nil
	}
}

// builtins are the callable functions of the language.
var builtins = map[string]func([]Value) (Value, error){
	"len": func(args []Value) (Value, error) {
		if len(args) != 1 || args[0].Kind != StringKind {
			return Value{}, errors.New("expr: len(string) takes one string")
		}
		return Number(float64(len(args[0].Str))), nil
	},
	"contains": func(args []Value) (Value, error) {
		if len(args) != 2 || args[0].Kind != StringKind || args[1].Kind != StringKind {
			return Value{}, errors.New("expr: contains(string, string) takes two strings")
		}
		return Bool(strings.Contains(args[0].Str, args[1].Str)), nil
	},
	"startswith": func(args []Value) (Value, error) {
		if len(args) != 2 || args[0].Kind != StringKind || args[1].Kind != StringKind {
			return Value{}, errors.New("expr: startswith(string, string) takes two strings")
		}
		return Bool(strings.HasPrefix(args[0].Str, args[1].Str)), nil
	},
	"defined": func(args []Value) (Value, error) {
		// defined(x) can never see an undefined variable (evaluation of the
		// argument fails first); it exists for symmetry and returns true.
		if len(args) != 1 {
			return Value{}, errors.New("expr: defined(x) takes one argument")
		}
		return Bool(true), nil
	},
	"min": func(args []Value) (Value, error) {
		return foldNumeric("min", args, func(a, b float64) float64 {
			if b < a {
				return b
			}
			return a
		})
	},
	"max": func(args []Value) (Value, error) {
		return foldNumeric("max", args, func(a, b float64) float64 {
			if b > a {
				return b
			}
			return a
		})
	},
	"abs": func(args []Value) (Value, error) {
		if len(args) != 1 || args[0].Kind != NumberKind {
			return Value{}, errors.New("expr: abs(number) takes one number")
		}
		n := args[0].Num
		if n < 0 {
			n = -n
		}
		return Number(n), nil
	},
	"upper": func(args []Value) (Value, error) {
		if len(args) != 1 || args[0].Kind != StringKind {
			return Value{}, errors.New("expr: upper(string) takes one string")
		}
		return String(strings.ToUpper(args[0].Str)), nil
	},
	"lower": func(args []Value) (Value, error) {
		if len(args) != 1 || args[0].Kind != StringKind {
			return Value{}, errors.New("expr: lower(string) takes one string")
		}
		return String(strings.ToLower(args[0].Str)), nil
	},
	"trim": func(args []Value) (Value, error) {
		if len(args) != 1 || args[0].Kind != StringKind {
			return Value{}, errors.New("expr: trim(string) takes one string")
		}
		return String(strings.TrimSpace(args[0].Str)), nil
	},
	"num": func(args []Value) (Value, error) {
		if len(args) != 1 {
			return Value{}, errors.New("expr: num(x) takes one argument")
		}
		switch args[0].Kind {
		case NumberKind:
			return args[0], nil
		case StringKind:
			f, err := strconv.ParseFloat(strings.TrimSpace(args[0].Str), 64)
			if err != nil {
				return Value{}, fmt.Errorf("expr: num(%q): not a number", args[0].Str)
			}
			return Number(f), nil
		default:
			return Value{}, errors.New("expr: num(bool) is not defined")
		}
	},
}

// foldNumeric reduces 1+ numeric arguments with f.
func foldNumeric(name string, args []Value, f func(a, b float64) float64) (Value, error) {
	if len(args) == 0 {
		return Value{}, fmt.Errorf("expr: %s needs at least one argument", name)
	}
	for _, a := range args {
		if a.Kind != NumberKind {
			return Value{}, fmt.Errorf("expr: %s takes numbers only", name)
		}
	}
	acc := args[0].Num
	for _, a := range args[1:] {
		acc = f(acc, a.Num)
	}
	return Number(acc), nil
}

// --- lexer ------------------------------------------------------------------

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokOp
	tokLParen
	tokRParen
	tokComma
)

type token struct {
	kind tokenKind
	text string
	num  float64
	pos  int
}

type lexer struct {
	src  string
	pos  int
	toks []token
}

func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.pos++
		case c == '(':
			l.emit(tokLParen, "(")
		case c == ')':
			l.emit(tokRParen, ")")
		case c == ',':
			l.emit(tokComma, ",")
		case c == '"':
			if err := l.lexString(); err != nil {
				return nil, err
			}
		case c >= '0' && c <= '9':
			l.lexNumber()
		case isIdentStart(rune(c)):
			l.lexIdent()
		default:
			if err := l.lexOp(); err != nil {
				return nil, err
			}
		}
	}
	l.toks = append(l.toks, token{kind: tokEOF, pos: l.pos})
	return l.toks, nil
}

func (l *lexer) emit(kind tokenKind, text string) {
	l.toks = append(l.toks, token{kind: kind, text: text, pos: l.pos})
	l.pos += len(text)
}

func (l *lexer) lexString() error {
	start := l.pos
	l.pos++ // opening quote
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '\\' && l.pos+1 < len(l.src) {
			next := l.src[l.pos+1]
			switch next {
			case '"', '\\':
				b.WriteByte(next)
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			default:
				return fmt.Errorf("expr: bad escape \\%c at %d", next, l.pos)
			}
			l.pos += 2
			continue
		}
		if c == '"' {
			l.pos++
			l.toks = append(l.toks, token{kind: tokString, text: b.String(), pos: start})
			return nil
		}
		b.WriteByte(c)
		l.pos++
	}
	return fmt.Errorf("expr: unterminated string at %d", start)
}

func (l *lexer) lexNumber() {
	start := l.pos
	for l.pos < len(l.src) && (l.src[l.pos] >= '0' && l.src[l.pos] <= '9' || l.src[l.pos] == '.') {
		l.pos++
	}
	text := l.src[start:l.pos]
	f, _ := strconv.ParseFloat(text, 64)
	l.toks = append(l.toks, token{kind: tokNumber, text: text, num: f, pos: start})
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func (l *lexer) lexIdent() {
	start := l.pos
	for l.pos < len(l.src) {
		r := rune(l.src[l.pos])
		if !isIdentStart(r) && !(r >= '0' && r <= '9') && r != '.' {
			break
		}
		l.pos++
	}
	l.toks = append(l.toks, token{kind: tokIdent, text: l.src[start:l.pos], pos: start})
}

func (l *lexer) lexOp() error {
	two := ""
	if l.pos+1 < len(l.src) {
		two = l.src[l.pos : l.pos+2]
	}
	switch two {
	case "&&", "||", "==", "!=", "<=", ">=":
		l.emit(tokOp, two)
		return nil
	}
	switch c := l.src[l.pos]; c {
	case '!', '<', '>', '+', '-', '*', '/', '=':
		// A single '=' is accepted as equality for convenience with the
		// paper's notation Func(X)=True.
		text := string(c)
		l.toks = append(l.toks, token{kind: tokOp, text: text, pos: l.pos})
		l.pos++
		return nil
	}
	return fmt.Errorf("expr: unexpected character %q at %d", l.src[l.pos], l.pos)
}

// --- parser -----------------------------------------------------------------

type parser struct {
	toks []token
	pos  int
	src  string
}

// Parse compiles source text into a reusable expression.
func Parse(src string) (*Expr, error) {
	if strings.TrimSpace(src) == "" {
		return nil, errors.New("expr: empty expression")
	}
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, src: src}
	root, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if p.peek().kind != tokEOF {
		return nil, fmt.Errorf("expr: unexpected %q at %d", p.peek().text, p.peek().pos)
	}
	return &Expr{root: root, src: src}, nil
}

// VariablesOf parses source text and returns the variables it references,
// in first-appearance order. It is the one-shot form of Parse().Variables()
// used by static analyses (wfdef condition collection, the IFC lint) that
// care about a condition's information sources, not its value.
func VariablesOf(src string) ([]string, error) {
	e, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return e.Variables(), nil
}

// MustParse is Parse for static expressions in tests and fixtures; it
// panics on error.
func MustParse(src string) *Expr {
	e, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return e
}

func (p *parser) peek() token { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }
func (p *parser) accept(kind tokenKind, text string) bool {
	t := p.peek()
	if t.kind == kind && (text == "" || t.text == text) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) parseOr() (Node, error) {
	lhs, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.accept(tokOp, "||") {
		rhs, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		lhs = &binaryNode{op: "||", lhs: lhs, rhs: rhs}
	}
	return lhs, nil
}

func (p *parser) parseAnd() (Node, error) {
	lhs, err := p.parseCmp()
	if err != nil {
		return nil, err
	}
	for p.accept(tokOp, "&&") {
		rhs, err := p.parseCmp()
		if err != nil {
			return nil, err
		}
		lhs = &binaryNode{op: "&&", lhs: lhs, rhs: rhs}
	}
	return lhs, nil
}

func (p *parser) parseCmp() (Node, error) {
	lhs, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	t := p.peek()
	if t.kind == tokOp {
		switch t.text {
		case "==", "!=", "<", "<=", ">", ">=", "=":
			p.pos++
			op := t.text
			if op == "=" {
				op = "=="
			}
			rhs, err := p.parseAdd()
			if err != nil {
				return nil, err
			}
			return &binaryNode{op: op, lhs: lhs, rhs: rhs}, nil
		}
	}
	return lhs, nil
}

func (p *parser) parseAdd() (Node, error) {
	lhs, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind == tokOp && (t.text == "+" || t.text == "-") {
			p.pos++
			rhs, err := p.parseMul()
			if err != nil {
				return nil, err
			}
			lhs = &binaryNode{op: t.text, lhs: lhs, rhs: rhs}
			continue
		}
		return lhs, nil
	}
}

func (p *parser) parseMul() (Node, error) {
	lhs, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind == tokOp && (t.text == "*" || t.text == "/") {
			p.pos++
			rhs, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			lhs = &binaryNode{op: t.text, lhs: lhs, rhs: rhs}
			continue
		}
		return lhs, nil
	}
}

func (p *parser) parseUnary() (Node, error) {
	if p.accept(tokOp, "!") {
		operand, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &unaryNode{op: "!", operand: operand}, nil
	}
	if p.accept(tokOp, "-") {
		operand, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &binaryNode{op: "-", lhs: &litNode{v: Number(0)}, rhs: operand}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Node, error) {
	t := p.next()
	switch t.kind {
	case tokNumber:
		return &litNode{v: Number(t.num)}, nil
	case tokString:
		return &litNode{v: String(t.text)}, nil
	case tokIdent:
		switch t.text {
		case "true", "True":
			return &litNode{v: Bool(true)}, nil
		case "false", "False":
			return &litNode{v: Bool(false)}, nil
		}
		if p.accept(tokLParen, "") {
			var args []Node
			if !p.accept(tokRParen, "") {
				for {
					a, err := p.parseOr()
					if err != nil {
						return nil, err
					}
					args = append(args, a)
					if p.accept(tokComma, "") {
						continue
					}
					if p.accept(tokRParen, "") {
						break
					}
					return nil, fmt.Errorf("expr: expected , or ) at %d", p.peek().pos)
				}
			}
			fn := strings.ToLower(t.text)
			if _, ok := builtins[fn]; !ok {
				return nil, fmt.Errorf("expr: unknown function %q", t.text)
			}
			return &callNode{fn: fn, args: args}, nil
		}
		return &varNode{name: t.text}, nil
	case tokLParen:
		inner, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if !p.accept(tokRParen, "") {
			return nil, fmt.Errorf("expr: missing ) at %d", p.peek().pos)
		}
		return inner, nil
	}
	return nil, fmt.Errorf("expr: unexpected %q at %d", t.text, t.pos)
}
