package expr

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

func env() MapEnv {
	return MapEnv{
		"amount":     Number(15000),
		"status":     String("approved"),
		"attachment": String(""),
		"comment":    String("looks good"),
		"ok":         Bool(true),
		"retries":    Number(2),
	}
}

func TestEvalTable(t *testing.T) {
	cases := []struct {
		src  string
		want bool
	}{
		{`amount > 10000`, true},
		{`amount >= 15000`, true},
		{`amount < 15000`, false},
		{`amount <= 14999`, false},
		{`status == "approved"`, true},
		{`status = "approved"`, true}, // paper notation Func(X)=True
		{`status != "rejected"`, true},
		{`ok`, true},
		{`!ok`, false},
		{`ok && amount > 0`, true},
		{`ok && amount < 0`, false},
		{`!ok || amount > 0`, true},
		{`len(attachment) == 0`, true},
		{`len(comment) > 5`, true},
		{`contains(comment, "good")`, true},
		{`contains(comment, "bad")`, false},
		{`startswith(comment, "looks")`, true},
		{`(amount > 10000 && status == "approved") || retries >= 3`, true},
		{`amount + 1000 == 16000`, true},
		{`amount - 5000 == 10000`, true},
		{`amount * 2 > 29999`, true},
		{`amount / 3 < 5001`, true},
		{`-amount < 0`, true},
		{`num("42") == 42`, true},
		{`true`, true},
		{`True`, true},
		{`false`, false},
		{`False`, false},
		{`"b" > "a"`, true},
		{`defined(amount)`, true},
		{`retries >= 3`, false},
	}
	for _, c := range cases {
		e, err := Parse(c.src)
		if err != nil {
			t.Errorf("Parse(%q): %v", c.src, err)
			continue
		}
		got, err := e.EvalBool(env())
		if err != nil {
			t.Errorf("Eval(%q): %v", c.src, err)
			continue
		}
		if got != c.want {
			t.Errorf("Eval(%q) = %v, want %v", c.src, got, c.want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		``, `   `, `amount >`, `(amount`, `amount))`, `"unterminated`,
		`nosuchfn(1)`, `amount @ 2`, `"bad \q escape"`, `x ==`, `&& y`,
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestEvalErrors(t *testing.T) {
	cases := []string{
		`missing > 1`,            // undefined variable
		`amount && ok`,           // non-bool logical operand
		`!amount`,                // non-bool negation
		`amount == status`,       // cross-type equality
		`ok < true`,              // ordering bools
		`amount + status`,        // mixed +
		`status - "x"`,           // strings with -
		`amount / 0`,             // division by zero
		`len(amount)`,            // len of number
		`contains(amount, "x")`,  // wrong arg type
		`num(ok)`,                // num of bool
		`num("not-a-number")`,    // unparsable
		`len("a", "b")`,          // arity
		`5 > 1 && missing == ""`, // error on RHS after short-circuit passes
	}
	for _, src := range cases {
		e, err := Parse(src)
		if err != nil {
			t.Errorf("Parse(%q) failed at parse time: %v (want eval-time error)", src, err)
			continue
		}
		if _, err := e.Eval(env()); err == nil {
			t.Errorf("Eval(%q) succeeded, want error", src)
		}
	}
}

func TestUndefinedVariableErrorIsTyped(t *testing.T) {
	e := MustParse(`concealed == "x"`)
	_, err := e.Eval(MapEnv{})
	if !errors.Is(err, ErrUndefinedVariable) {
		t.Fatalf("err = %v, want ErrUndefinedVariable", err)
	}
}

func TestShortCircuit(t *testing.T) {
	// RHS with undefined variable is never evaluated when LHS decides.
	e := MustParse(`false && missing == 1`)
	if got, err := e.EvalBool(env()); err != nil || got {
		t.Fatalf("short-circuit && failed: %v %v", got, err)
	}
	e = MustParse(`true || missing == 1`)
	if got, err := e.EvalBool(env()); err != nil || !got {
		t.Fatalf("short-circuit || failed: %v %v", got, err)
	}
}

func TestEvalBoolRequiresBool(t *testing.T) {
	e := MustParse(`amount + 1`)
	if _, err := e.EvalBool(env()); err == nil {
		t.Fatal("EvalBool of numeric expression succeeded")
	}
}

func TestVariables(t *testing.T) {
	e := MustParse(`amount > 0 && contains(status, comment) || amount < 5`)
	got := e.Variables()
	want := []string{"amount", "status", "comment"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("Variables = %v, want %v", got, want)
	}
	if vars := MustParse(`1 + 2 == 3`).Variables(); len(vars) != 0 {
		t.Fatalf("literal expression has variables %v", vars)
	}
}

func TestPrecedence(t *testing.T) {
	cases := []struct {
		src  string
		want bool
	}{
		{`1 + 2 * 3 == 7`, true},
		{`(1 + 2) * 3 == 9`, true},
		{`2 * 3 + 1 == 7`, true},
		{`10 - 2 - 3 == 5`, true},        // left assoc
		{`12 / 2 / 3 == 2`, true},        // left assoc
		{`true || false && false`, true}, // && binds tighter
		{`!false && true`, true},
	}
	for _, c := range cases {
		got, err := MustParse(c.src).EvalBool(MapEnv{})
		if err != nil || got != c.want {
			t.Errorf("Eval(%q) = %v, %v; want %v", c.src, got, err, c.want)
		}
	}
}

func TestStringEscapes(t *testing.T) {
	e := MustParse(`x == "a\"b\\c\nd\te"`)
	got, err := e.EvalBool(MapEnv{"x": String("a\"b\\c\nd\te")})
	if err != nil || !got {
		t.Fatalf("escape handling: %v %v", got, err)
	}
}

func TestCanonicalStringRoundTrip(t *testing.T) {
	// Parse → String → Parse must preserve evaluation behaviour.
	sources := []string{
		`amount > 10000 && status == "approved"`,
		`!ok || (retries >= 3 && len(attachment) == 0)`,
		`contains(comment, "good") != false`,
		`-amount + 15000 == 0`,
		`num("3.5") * 2 == 7`,
	}
	for _, src := range sources {
		e1 := MustParse(src)
		e2, err := Parse(e1.String())
		if err != nil {
			t.Errorf("reparse of %q (%q) failed: %v", src, e1.String(), err)
			continue
		}
		v1, err1 := e1.Eval(env())
		v2, err2 := e2.Eval(env())
		if (err1 == nil) != (err2 == nil) || v1 != v2 {
			t.Errorf("round trip changed semantics for %q: %v/%v vs %v/%v", src, v1, err1, v2, err2)
		}
	}
}

func TestValueTextRoundTrip(t *testing.T) {
	f := func(n float64, s string, b bool) bool {
		if FromText(Number(n).Text()).Num != n && !(n != n) { // NaN excluded
			return false
		}
		if FromText(Bool(b).Text()).Bool != b {
			return false
		}
		// Strings that *look like* numbers or bools intentionally re-parse
		// as those kinds; plain strings survive.
		v := FromText(s)
		if v.Kind == StringKind && v.Str != s {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestFromTextKinds(t *testing.T) {
	if FromText("true").Kind != BoolKind || FromText("false").Kind != BoolKind {
		t.Fatal("bool text not detected")
	}
	if FromText("3.25").Kind != NumberKind {
		t.Fatal("number text not detected")
	}
	if FromText("hello").Kind != StringKind {
		t.Fatal("plain string misdetected")
	}
}

func TestSourcePreserved(t *testing.T) {
	src := `amount > 10`
	if got := MustParse(src).Source(); got != src {
		t.Fatalf("Source = %q", got)
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParse of invalid source did not panic")
		}
	}()
	MustParse(`((`)
}

func TestExtendedBuiltins(t *testing.T) {
	cases := []struct {
		src  string
		want bool
	}{
		{`min(3, 1, 2) == 1`, true},
		{`max(3, 1, 2) == 3`, true},
		{`min(5) == 5`, true},
		{`abs(-4) == 4`, true},
		{`abs(4) == 4`, true},
		{`upper("abc") == "ABC"`, true},
		{`lower("AbC") == "abc"`, true},
		{`trim("  x  ") == "x"`, true},
		{`max(amount, 20000) == 20000`, true},
	}
	for _, c := range cases {
		got, err := MustParse(c.src).EvalBool(env())
		if err != nil || got != c.want {
			t.Errorf("Eval(%q) = %v, %v; want %v", c.src, got, err, c.want)
		}
	}
	bad := []string{
		`min()`, `min("a")`, `max(true)`, `abs("x")`, `abs(1, 2)`,
		`upper(1)`, `lower(true)`, `trim(3)`,
	}
	for _, src := range bad {
		if _, err := MustParse(src).Eval(env()); err == nil {
			t.Errorf("Eval(%q) succeeded, want error", src)
		}
	}
}

// TestPropParserNeverPanics: Parse must reject or accept arbitrary input,
// never panic (routing code feeds it designer-controlled text).
func TestPropParserNeverPanics(t *testing.T) {
	f := func(src string) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("Parse(%q) panicked: %v", src, r)
			}
		}()
		e, err := Parse(src)
		if err == nil && e != nil {
			// Evaluation must not panic either.
			_, _ = e.Eval(env())
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
	// Targeted nasties.
	for _, src := range []string{
		"((((((((((", "!!!!!!!", "a=====b", "\"", "\\", "\x00", "1..2..3",
		"min(min(min(min(", ")(", "a&&&&b", "-", "--", "- -", "&& ||",
	} {
		_, _ = Parse(src)
	}
}
