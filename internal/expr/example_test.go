package expr_test

import (
	"fmt"

	"dra4wfms/internal/expr"
)

// A transition condition is parsed once and evaluated against the process
// variables visible to whoever routes the document.
func ExampleParse() {
	cond, err := expr.Parse(`amount > 10000 && status == "approved"`)
	if err != nil {
		panic(err)
	}
	env := expr.MapEnv{
		"amount": expr.Number(15000),
		"status": expr.String("approved"),
	}
	ok, err := cond.EvalBool(env)
	fmt.Println(ok, err)
	fmt.Println(cond.Variables())
	// Output:
	// true <nil>
	// [amount status]
}

// Stored workflow variables are plain XML text; FromText recovers their
// natural type for evaluation.
func ExampleFromText() {
	fmt.Println(expr.FromText("true").Kind)
	fmt.Println(expr.FromText("3.25").Kind)
	fmt.Println(expr.FromText("hello").Kind)
	// Output:
	// bool
	// number
	// string
}
