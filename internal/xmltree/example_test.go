package xmltree_test

import (
	"fmt"

	"dra4wfms/internal/xmltree"
)

// Canonical serialization sorts attributes and uses explicit end tags, so
// structurally equal trees digest identically — the property XML
// signatures rely on.
func ExampleNode_Canonical() {
	a := xmltree.NewElement("Field")
	a.SetAttr("Variable", "amount")
	a.SetAttr("Id", "f1")
	a.AppendChild(xmltree.NewText("15000"))

	b := xmltree.NewElement("Field")
	b.SetAttr("Id", "f1") // different insertion order
	b.SetAttr("Variable", "amount")
	b.AppendChild(xmltree.NewText("15000"))

	fmt.Println(string(a.Canonical()))
	fmt.Println(string(a.Canonical()) == string(b.Canonical()))
	// Output:
	// <Field Id="f1" Variable="amount">15000</Field>
	// true
}

// Parse round-trips canonical output.
func ExampleParseBytes() {
	root, err := xmltree.ParseBytes([]byte(`<Doc><Name>alice</Name></Doc>`))
	if err != nil {
		panic(err)
	}
	fmt.Println(root.ChildText("Name"))
	// Output:
	// alice
}
