//go:build !race

package xmltree

const raceEnabled = false
