package xmltree

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestBuildAndAttr(t *testing.T) {
	root := NewElement("Doc")
	root.SetAttr("Id", "d1")
	root.SetAttr("Version", "1")
	root.SetAttr("Id", "d2") // overwrite

	if got, ok := root.Attr("Id"); !ok || got != "d2" {
		t.Fatalf("Attr(Id) = %q, %v; want d2, true", got, ok)
	}
	if got := root.AttrDefault("Missing", "def"); got != "def" {
		t.Fatalf("AttrDefault = %q, want def", got)
	}
	if !root.RemoveAttr("Version") {
		t.Fatal("RemoveAttr(Version) = false, want true")
	}
	if _, ok := root.Attr("Version"); ok {
		t.Fatal("Version still present after RemoveAttr")
	}
	if root.RemoveAttr("Version") {
		t.Fatal("second RemoveAttr reported a deletion")
	}
}

func TestChildManipulation(t *testing.T) {
	root := NewElement("R")
	a := NewElement("A")
	b := NewElement("B")
	c := NewElement("C")
	root.AppendChild(a)
	root.AppendChild(c)
	root.InsertChild(1, b)

	names := make([]string, 0, 3)
	for _, k := range root.ChildElements() {
		names = append(names, k.Name)
	}
	if !reflect.DeepEqual(names, []string{"A", "B", "C"}) {
		t.Fatalf("children = %v, want [A B C]", names)
	}

	d := NewElement("D")
	if !root.ReplaceChild(b, d) {
		t.Fatal("ReplaceChild(b, d) = false")
	}
	if root.Child("B") != nil || root.Child("D") == nil {
		t.Fatal("ReplaceChild did not swap B for D")
	}
	if !root.RemoveChild(d) {
		t.Fatal("RemoveChild(d) = false")
	}
	if root.RemoveChild(d) {
		t.Fatal("RemoveChild of absent node = true")
	}
	if len(root.ChildElements()) != 2 {
		t.Fatalf("want 2 children after removal, got %d", len(root.ChildElements()))
	}
}

func TestInsertChildClamps(t *testing.T) {
	root := NewElement("R")
	root.InsertChild(-5, NewElement("A"))
	root.InsertChild(99, NewElement("B"))
	if root.Children[0].Name != "A" || root.Children[1].Name != "B" {
		t.Fatalf("clamped insert produced %v", root.String())
	}
}

func TestFindAndFindByID(t *testing.T) {
	root, err := ParseString(`<W><X Id="x1"><Y Id="y1">t</Y></X><Y Id="y2"/></W>`)
	if err != nil {
		t.Fatal(err)
	}
	if got := root.Find("Y"); got == nil || got.AttrDefault("Id", "") != "y1" {
		t.Fatalf("Find(Y) = %v, want element with Id y1", got)
	}
	if got := len(root.FindAll("Y")); got != 2 {
		t.Fatalf("FindAll(Y) returned %d, want 2", got)
	}
	if got := root.FindByID("y2"); got == nil || got.Name != "Y" {
		t.Fatalf("FindByID(y2) = %v", got)
	}
	if got := root.FindByID("nope"); got != nil {
		t.Fatalf("FindByID(nope) = %v, want nil", got)
	}
}

func TestParentLookup(t *testing.T) {
	root, _ := ParseString(`<A><B><C/></B></A>`)
	c := root.Find("C")
	if p := root.Parent(c); p == nil || p.Name != "B" {
		t.Fatalf("Parent(C) = %v, want B", p)
	}
	if p := root.Parent(root); p != nil {
		t.Fatalf("Parent(root) = %v, want nil", p)
	}
	if p := root.Parent(NewElement("Z")); p != nil {
		t.Fatalf("Parent(alien) = %v, want nil", p)
	}
}

func TestTextContentAndSetText(t *testing.T) {
	root, _ := ParseString(`<A>one<B>two</B>three</A>`)
	if got := root.TextContent(); got != "onetwothree" {
		t.Fatalf("TextContent = %q", got)
	}
	root.SetText("replaced")
	if got := root.TextContent(); got != "replaced" {
		t.Fatalf("after SetText, TextContent = %q", got)
	}
	root.SetText("")
	if len(root.Children) != 0 {
		t.Fatal("SetText(\"\") should leave no children")
	}
}

func TestChildText(t *testing.T) {
	root, _ := ParseString(`<A><Name>alice</Name><Empty/></A>`)
	if got := root.ChildText("Name"); got != "alice" {
		t.Fatalf("ChildText(Name) = %q", got)
	}
	if got := root.ChildText("Empty"); got != "" {
		t.Fatalf("ChildText(Empty) = %q", got)
	}
	if got := root.ChildText("Missing"); got != "" {
		t.Fatalf("ChildText(Missing) = %q", got)
	}
}

func TestCanonicalSortsAttributes(t *testing.T) {
	a := NewElement("E")
	a.SetAttr("zeta", "1")
	a.SetAttr("alpha", "2")
	b := NewElement("E")
	b.SetAttr("alpha", "2")
	b.SetAttr("zeta", "1")
	if string(a.Canonical()) != string(b.Canonical()) {
		t.Fatalf("canonical differs by attr order:\n%s\n%s", a.Canonical(), b.Canonical())
	}
	want := `<E alpha="2" zeta="1"></E>`
	if got := string(a.Canonical()); got != want {
		t.Fatalf("canonical = %q, want %q", got, want)
	}
}

func TestCanonicalEscaping(t *testing.T) {
	e := NewElement("E")
	e.SetAttr("a", `q"<&`+"\t\n\r")
	e.AppendChild(NewText("x<y>&z\rw"))
	got := string(e.Canonical())
	want := `<E a="q&quot;&lt;&amp;&#x9;&#xA;&#xD;">x&lt;y&gt;&amp;z&#xD;w</E>`
	if got != want {
		t.Fatalf("canonical = %q, want %q", got, want)
	}
	// Round-trip through the parser must preserve content.
	back, err := ParseBytes(e.Canonical())
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := back.Attr("a"); v != `q"<&`+"\t\n\r" {
		t.Fatalf("attr after round trip = %q", v)
	}
	if back.TextContent() != "x<y>&z\rw" {
		t.Fatalf("text after round trip = %q", back.TextContent())
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, in string
	}{
		{"empty", ""},
		{"two roots", "<a></a><b></b>"},
		{"unclosed", "<a><b></b>"},
		{"stray text", "<a></a>junk"},
		{"namespace decl", `<a xmlns="urn:x"></a>`},
		{"prefixed attr", `<a xml:lang="en"></a>`},
	}
	for _, c := range cases {
		if _, err := ParseString(c.in); err == nil {
			t.Errorf("%s: ParseString(%q) succeeded, want error", c.name, c.in)
		}
	}
}

func TestParseDiscardsCommentsAndPIs(t *testing.T) {
	root, err := ParseString(`<?xml version="1.0"?><!-- c --><a><!-- inner -->t<?pi data?></a>`)
	if err != nil {
		t.Fatal(err)
	}
	if root.TextContent() != "t" {
		t.Fatalf("TextContent = %q, want t", root.TextContent())
	}
	if len(root.Children) != 1 {
		t.Fatalf("children = %d, want 1 (text only)", len(root.Children))
	}
}

func TestParseMergesAdjacentCharData(t *testing.T) {
	// CDATA and plain text are adjacent character data and must merge.
	root, err := ParseString(`<a>one<![CDATA[two]]>three</a>`)
	if err != nil {
		t.Fatal(err)
	}
	if len(root.Children) != 1 || !root.Children[0].IsText() {
		t.Fatalf("want a single merged text node, got %d children", len(root.Children))
	}
	if root.TextContent() != "onetwothree" {
		t.Fatalf("TextContent = %q", root.TextContent())
	}
}

func TestCloneIsDeep(t *testing.T) {
	orig, _ := ParseString(`<A x="1"><B>t</B></A>`)
	cp := orig.Clone()
	if !Equal(orig, cp) {
		t.Fatal("clone not equal to original")
	}
	cp.Find("B").SetText("mutated")
	cp.SetAttr("x", "2")
	if orig.ChildText("B") != "t" {
		t.Fatal("mutating clone changed original text")
	}
	if v, _ := orig.Attr("x"); v != "1" {
		t.Fatal("mutating clone changed original attr")
	}
}

func TestEqualSemantics(t *testing.T) {
	a, _ := ParseString(`<A x="1" y="2"><B/></A>`)
	b, _ := ParseString(`<A y="2" x="1"><B/></A>`)
	if !Equal(a, b) {
		t.Fatal("attribute order should not affect Equal")
	}
	c, _ := ParseString(`<A x="1" y="2"><C/></A>`)
	if Equal(a, c) {
		t.Fatal("different children compared equal")
	}
	if !Equal(nil, nil) || Equal(a, nil) || Equal(nil, a) {
		t.Fatal("nil handling wrong")
	}
}

func TestNormalizeMergesText(t *testing.T) {
	n := NewElement("A")
	n.AppendChild(NewText("x"))
	n.AppendChild(NewText(""))
	n.AppendChild(NewText("y"))
	inner := NewElement("B")
	inner.AppendChild(NewText("a"))
	inner.AppendChild(NewText("b"))
	n.AppendChild(inner)
	n.Normalize()
	if len(n.Children) != 2 {
		t.Fatalf("children after Normalize = %d, want 2", len(n.Children))
	}
	if n.Children[0].Text != "xy" {
		t.Fatalf("merged text = %q", n.Children[0].Text)
	}
	if len(inner.Children) != 1 || inner.Children[0].Text != "ab" {
		t.Fatalf("inner not normalized: %v", inner.String())
	}
}

func TestSize(t *testing.T) {
	root, _ := ParseString(`<A>t<B><C/></B></A>`)
	if got := root.Size(); got != 4 {
		t.Fatalf("Size = %d, want 4", got)
	}
	var nilNode *Node
	if nilNode.Size() != 0 {
		t.Fatal("nil Size != 0")
	}
}

func TestWalkStops(t *testing.T) {
	root, _ := ParseString(`<A><B/><C/><D/></A>`)
	var visited []string
	root.Walk(func(e *Node) bool {
		visited = append(visited, e.Name)
		return e.Name != "C"
	})
	if !reflect.DeepEqual(visited, []string{"A", "B", "C"}) {
		t.Fatalf("visited = %v", visited)
	}
}

func TestIndentIsReadableAndParsable(t *testing.T) {
	root, _ := ParseString(`<A x="1"><B>hi</B><C/></A>`)
	ind := root.Indent()
	if !strings.Contains(ind, "\n") {
		t.Fatal("Indent output has no newlines")
	}
	back, err := ParseString(ind)
	if err != nil {
		t.Fatalf("Indent output not parsable: %v", err)
	}
	if back.ChildText("B") != "hi" {
		t.Fatalf("content lost in Indent round trip: %q", back.ChildText("B"))
	}
}

func TestElemBuilder(t *testing.T) {
	root := NewElement("R")
	b := root.Elem("B", "text")
	root.Elem("C", "")
	if b.TextContent() != "text" || root.Child("C") == nil {
		t.Fatal("Elem builder misbehaved")
	}
	if len(root.Child("C").Children) != 0 {
		t.Fatal("Elem with empty text should create no text node")
	}
}

// --- property tests -------------------------------------------------------

// randomTree builds a random tree with the given recursion budget. Names and
// text use a safe alphabet plus characters requiring escaping.
func randomTree(r *rand.Rand, depth int) *Node {
	names := []string{"A", "Bq", "Cx", "Data", "Field", "Sig"}
	texts := []string{"", "plain", "a<b", "x&y", `q"z`, "line1\nline2", "tab\tend", "cr\rend"}
	n := NewElement(names[r.Intn(len(names))])
	for i := 0; i < r.Intn(3); i++ {
		n.SetAttr(names[r.Intn(len(names))]+"attr", texts[r.Intn(len(texts))])
	}
	kids := r.Intn(4)
	if depth <= 0 {
		kids = 0
	}
	lastWasText := false
	for i := 0; i < kids; i++ {
		if r.Intn(2) == 0 && !lastWasText {
			txt := texts[1+r.Intn(len(texts)-1)] // non-empty
			n.AppendChild(NewText(txt))
			lastWasText = true
		} else {
			n.AppendChild(randomTree(r, depth-1))
			lastWasText = false
		}
	}
	return n
}

// TestPropCanonicalRoundTrip: for any normalized tree t,
// parse(canonical(t)) is structurally equal to t, and canonicalization is
// stable across the round trip.
func TestPropCanonicalRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for i := 0; i < 200; i++ {
		tree := randomTree(r, 4)
		tree.Normalize()
		c1 := tree.Canonical()
		back, err := ParseBytes(c1)
		if err != nil {
			t.Fatalf("iter %d: parse(canonical) failed: %v\n%s", i, err, c1)
		}
		back.Normalize()
		if !Equal(tree, back) {
			t.Fatalf("iter %d: round trip not equal\norig: %s\nback: %s", i, c1, back.Canonical())
		}
		if string(back.Canonical()) != string(c1) {
			t.Fatalf("iter %d: canonical not stable", i)
		}
	}
}

// TestPropCloneEqual: Clone always yields an Equal tree with equal canonical
// bytes.
func TestPropCloneEqual(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 100; i++ {
		tree := randomTree(r, 4)
		cp := tree.Clone()
		if !Equal(tree, cp) {
			t.Fatalf("iter %d: clone not Equal", i)
		}
		if string(tree.Canonical()) != string(cp.Canonical()) {
			t.Fatalf("iter %d: clone canonical differs", i)
		}
	}
}

// TestPropEscaping uses testing/quick over arbitrary strings: any string
// stored as text or attribute survives a canonical round trip, as long as it
// is valid UTF-8 without control characters rejected by XML.
func TestPropEscaping(t *testing.T) {
	sanitize := func(s string) string {
		var b strings.Builder
		for _, r := range s {
			// XML 1.0 forbids most control characters; keep printable text
			// plus the whitespace we explicitly escape.
			if r == '\t' || r == '\n' || r == '\r' || (r >= 0x20 && r != 0xFFFE && r != 0xFFFF && r != 0xFFFD) {
				b.WriteRune(r)
			}
		}
		return b.String()
	}
	f := func(text, attr string) bool {
		text, attr = sanitize(text), sanitize(attr)
		e := NewElement("E")
		e.SetAttr("a", attr)
		if text != "" {
			e.AppendChild(NewText(text))
		}
		back, err := ParseBytes(e.Canonical())
		if err != nil {
			return false
		}
		got, _ := back.Attr("a")
		return got == attr && back.TextContent() == text
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPropSizePositive(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for i := 0; i < 100; i++ {
		tree := randomTree(r, 3)
		size := tree.Size()
		count := 0
		var rec func(*Node)
		rec = func(n *Node) {
			count++
			for _, c := range n.Children {
				rec(c)
			}
		}
		rec(tree)
		if size != count {
			t.Fatalf("Size = %d, manual count = %d", size, count)
		}
	}
}

// TestPropParseNeverPanics: Parse must handle arbitrary byte input without
// panicking (documents arrive over the network).
func TestPropParseNeverPanics(t *testing.T) {
	f := func(b []byte) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("ParseBytes(%q) panicked: %v", b, r)
			}
		}()
		_, _ = ParseBytes(b)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1500}); err != nil {
		t.Fatal(err)
	}
	for _, s := range []string{
		"<", "<>", "</>", "<a", "<a b=>", "<a 'b'>", "<a></b>", "<a><a><a>",
		"<a>&#x0;</a>", "<a>&bogus;</a>", "\xff\xfe<a/>",
	} {
		_, _ = ParseString(s)
	}
}
