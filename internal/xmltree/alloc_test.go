package xmltree

import (
	"fmt"
	"runtime/debug"
	"strings"
	"sync"
	"testing"
)

// Allocation regression tests for the canonicalization hot path. The
// verify loop canonicalizes subtrees constantly; these tests pin the three
// properties the pooled-buffer pass bought: memo hits allocate nothing,
// rebuilds allocate O(1) (memo copy) rather than O(bytes) of buffer
// doubling, and serialization scratch is actually reused across calls.

func allocTree(entries int) *Node {
	root := NewElement("Doc")
	for i := 0; i < entries; i++ {
		e := root.Elem("Entry", strings.Repeat("x", 64))
		e.SetAttr("Id", fmt.Sprintf("id-%d", i))
		e.SetAttr("Kind", "payload")
	}
	return root
}

func TestCanonicalMemoHitZeroAllocs(t *testing.T) {
	root := allocTree(100)
	_ = root.Canonical() // prime
	allocs := testing.AllocsPerRun(100, func() {
		_ = root.Canonical()
	})
	if allocs != 0 {
		t.Fatalf("memo-hit Canonical allocates %.1f objects/op, want 0", allocs)
	}
}

func TestCanonicalRebuildAllocsBounded(t *testing.T) {
	root := allocTree(100)
	for _, c := range root.Children {
		_ = c.Canonical() // prime child memos
	}
	// Each run invalidates only the root: the rebuild splices 100 child
	// memos into a pooled scratch buffer sized by the lastLen hint. The
	// allocations left are the memo struct, its exact-size data copy, and
	// at worst one scratch(re)allocation when GC flushed the pool — far
	// from the O(doublings + per-node garbage) of the unpooled path.
	allocs := testing.AllocsPerRun(100, func() {
		root.Invalidate()
		_ = root.Canonical()
	})
	if allocs > 8 {
		t.Fatalf("root-invalidated Canonical allocates %.1f objects/op, want <= 8", allocs)
	}
}

// TestScratchBufferReuse proves pooled buffers are actually reused: with
// the GC paused (so the pool cannot be flushed mid-test), a long
// mutate-and-serialize loop may only draw a bounded number of fresh
// buffers, no matter how many serializations run. Run with -race: the
// concurrent arm exercises pool handoff between goroutines.
func TestScratchBufferReuse(t *testing.T) {
	defer debug.SetGCPercent(debug.SetGCPercent(-1))

	// The race detector makes sync.Pool drop a random ~25% of Puts on
	// purpose, so under -race reuse is probabilistic: the bound loosens to
	// "well below one fresh buffer per call" instead of near-zero.
	serialBound, concurrentBound := int64(4), int64(8)
	if raceEnabled {
		serialBound, concurrentBound = 200, 200
	}

	root := allocTree(40)
	target := root.Children[0]
	before := scratchNews()
	const iters = 400
	for i := 0; i < iters; i++ {
		target.SetText(fmt.Sprintf("v%d", i))
		_ = root.Canonical()
	}
	if grew := scratchNews() - before; grew > serialBound {
		t.Fatalf("serial loop drew %d fresh scratch buffers over %d serializations — pool not reused", grew, iters)
	}

	// Concurrent serializations on independent trees share the pool.
	const workers = 8
	trees := make([]*Node, workers)
	for i := range trees {
		trees[i] = allocTree(20)
	}
	before = scratchNews()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				trees[w].Children[i%20].SetText(fmt.Sprintf("w%d-%d", w, i))
				_ = trees[w].Canonical()
			}
		}(w)
	}
	wg.Wait()
	// At most one live scratch per concurrent serialization, so the pool
	// may grow to the worker count but must not scale with iterations.
	if grew := scratchNews() - before; grew > concurrentBound {
		t.Fatalf("concurrent loop drew %d fresh scratch buffers for %d workers — per-call growth", grew, workers)
	}
}

// TestCanonicalSizeHintSurvivesInvalidation checks the lastLen fast path:
// after one serialization, a rebuild of a same-sized tree grows its
// scratch buffer once instead of doubling up to the canonical length.
func TestCanonicalSizeHintSurvivesInvalidation(t *testing.T) {
	root := allocTree(200)
	first := root.Canonical()
	if root.lastLen.Load() != uint32(len(first)) {
		t.Fatalf("lastLen = %d, want %d", root.lastLen.Load(), len(first))
	}
	root.Invalidate()
	if root.memo.Load() != nil {
		t.Fatal("Invalidate left a memo")
	}
	if root.lastLen.Load() != uint32(len(first)) {
		t.Fatal("Invalidate cleared the size hint — it must survive memo invalidation")
	}
}
