//go:build race

package xmltree

// raceEnabled loosens pool-reuse bounds: with the race detector on,
// sync.Pool deliberately drops a random fraction of Puts, so reuse is
// probabilistic rather than exact.
const raceEnabled = true
