// Package xmltree provides a small, mutable XML document tree with a
// deterministic canonical serialization.
//
// It is the foundation of the DRA4WfMS document format: XML digital
// signatures (package dsig) digest the canonical bytes of subtrees, and
// element-wise encryption (package xmlenc) replaces subtrees in place.
//
// The tree model is deliberately simpler than a full DOM:
//
//   - two node kinds only, elements and text (no comments, processing
//     instructions, or CDATA — CDATA sections parse into plain text nodes);
//   - no namespace support: DRA4WfMS documents do not declare namespaces,
//     and the canonical form is defined over plain element and attribute
//     names (a parse error is reported if a namespace declaration is seen);
//   - attributes keep insertion order for storage but are sorted by name in
//     the canonical serialization, mirroring Canonical XML.
//
// Canonical form rules (a pragmatic subset of W3C C14N 1.0):
//
//   - UTF-8 output;
//   - attributes sorted lexicographically by name, values double-quoted;
//   - empty elements serialize as <a></a>, never <a/>;
//   - text escapes &, <, > and carriage return; attribute values escape
//     &, <, " and the whitespace characters TAB, CR, LF;
//   - no XML declaration, no insignificant whitespace added or removed.
package xmltree

import (
	"bytes"
	"encoding/xml"
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"dra4wfms/internal/telemetry"
)

// Canonical-bytes memoization telemetry (the verification fast path:
// repeated digesting of an unchanged prefix must not re-serialize it).
var (
	mMemoHits          = telemetry.Default().Counter("xmltree_canon_memo_hits_total")
	mMemoMisses        = telemetry.Default().Counter("xmltree_canon_memo_misses_total")
	mMemoInvalidations = telemetry.Default().Counter("xmltree_canon_memo_invalidations_total")
	mScratchNews       = telemetry.Default().Counter("xmltree_canon_scratch_news_total")
)

// scratchPool recycles the serialization buffers behind Canonical. The
// memo used to keep each serialization's entire bytes.Buffer backing array
// alive (and every call that missed the memo allocated a fresh one);
// with the pool, serialization scratch is reused across calls and the
// memo holds an exact-size copy. The New counter feeds the allocation
// regression test: steady-state canonicalization must reuse, not grow.
var scratchPool = sync.Pool{
	New: func() any {
		mScratchNews.Inc()
		return new(bytes.Buffer)
	},
}

// scratchNews reports how many fresh scratch buffers have been allocated
// process-wide (test hook for pooled-buffer reuse).
func scratchNews() int64 { return mScratchNews.Value() }

// Kind discriminates the two node kinds in a tree.
type Kind int

const (
	// ElementKind is an element node with a name, attributes and children.
	ElementKind Kind = iota
	// TextKind is a character-data node; only Text is meaningful.
	TextKind
)

// Attr is a single element attribute.
type Attr struct {
	Name  string
	Value string
}

// Node is one node of an XML tree. The zero value is an empty element with
// no name; use NewElement and NewText to construct nodes.
//
// Canonical serialization results are memoized per node (see Canonical).
// Mutating a subtree through the Node methods (SetAttr, AppendChild,
// SetText, …) invalidates affected memos automatically. Writing the
// exported fields directly is still possible for construction, but after
// Canonical has been called on an enclosing subtree such writes must be
// followed by Invalidate on the modified node (or an ancestor) — the
// generation accumulator catches most direct edits as a safety net, but
// only method mutations are guaranteed to be seen.
type Node struct {
	Kind     Kind
	Name     string  // element name; empty for text nodes
	Attrs    []Attr  // attributes in insertion order; nil for text nodes
	Children []*Node // child nodes in document order; nil for text nodes
	Text     string  // character data; empty for element nodes

	gen  uint64                    // bumped by every method mutation
	memo atomic.Pointer[canonMemo] // cached canonical bytes + accumulator
	// lastLen remembers the most recent canonical length. Unlike the memo
	// it survives invalidation, so a re-serialization after a mutation can
	// size its scratch buffer in one Grow instead of doubling up to it.
	lastLen atomic.Uint32
}

// canonMemo is a cached canonical serialization, valid while the subtree
// accumulator (an order-sensitive fold over every node's generation and
// shape) still evaluates to acc.
type canonMemo struct {
	acc  uint64
	data []byte
}

// touch records a mutation of n: the generation counter is bumped (which
// changes the accumulator of every enclosing subtree) and any canonical
// memo cached on n itself is dropped.
func (n *Node) touch() {
	n.gen++
	if n.memo.Load() != nil {
		n.memo.Store(nil)
		mMemoInvalidations.Inc()
	}
}

// Invalidate marks n as mutated, dropping any cached canonical bytes for n
// and making memos cached on ancestors stale. Call it after writing the
// exported fields of a node directly; the mutating methods call it
// implicitly.
func (n *Node) Invalidate() { n.touch() }

// accum folds the subtree rooted at n into an order-sensitive FNV-style
// accumulator. It covers each node's generation counter plus enough shape
// information (kind, name/text/attribute lengths, child count) that direct
// field edits which change any length are caught even without a gen bump.
func (n *Node) accum() uint64 {
	h := uint64(14695981039346656037) // FNV-64 offset basis
	n.accumInto(&h)
	return h
}

func (n *Node) accumInto(h *uint64) {
	mix := func(v uint64) {
		*h ^= v
		*h *= 1099511628211 // FNV-64 prime
	}
	mix(n.gen)
	mix(uint64(n.Kind))
	mix(uint64(len(n.Name)))
	mix(uint64(len(n.Text)))
	mix(uint64(len(n.Attrs)))
	for _, a := range n.Attrs {
		mix(uint64(len(a.Name)))
		mix(uint64(len(a.Value)))
	}
	mix(uint64(len(n.Children)))
	for _, c := range n.Children {
		c.accumInto(h)
	}
}

// NewElement returns a new element node with the given name.
func NewElement(name string) *Node {
	return &Node{Kind: ElementKind, Name: name}
}

// NewText returns a new text node carrying s.
func NewText(s string) *Node {
	return &Node{Kind: TextKind, Text: s}
}

// Elem creates an element with optional text content and appends it as a
// child of n, returning the new element. It is a convenience for building
// documents: parent.Elem("Name", "text").
func (n *Node) Elem(name, text string) *Node {
	e := NewElement(name)
	if text != "" {
		e.AppendChild(NewText(text))
	}
	n.AppendChild(e)
	return e
}

// IsElement reports whether n is an element node.
func (n *Node) IsElement() bool { return n != nil && n.Kind == ElementKind }

// IsText reports whether n is a text node.
func (n *Node) IsText() bool { return n != nil && n.Kind == TextKind }

// Attr returns the value of the named attribute and whether it is present.
func (n *Node) Attr(name string) (string, bool) {
	for _, a := range n.Attrs {
		if a.Name == name {
			return a.Value, true
		}
	}
	return "", false
}

// AttrDefault returns the value of the named attribute, or def if absent.
func (n *Node) AttrDefault(name, def string) string {
	if v, ok := n.Attr(name); ok {
		return v
	}
	return def
}

// SetAttr sets the named attribute, replacing an existing value or
// appending a new attribute. It returns n to allow chaining.
func (n *Node) SetAttr(name, value string) *Node {
	n.touch()
	for i, a := range n.Attrs {
		if a.Name == name {
			n.Attrs[i].Value = value
			return n
		}
	}
	n.Attrs = append(n.Attrs, Attr{Name: name, Value: value})
	return n
}

// RemoveAttr deletes the named attribute if present and reports whether a
// deletion happened.
func (n *Node) RemoveAttr(name string) bool {
	for i, a := range n.Attrs {
		if a.Name == name {
			n.touch()
			n.Attrs = append(n.Attrs[:i], n.Attrs[i+1:]...)
			return true
		}
	}
	return false
}

// AppendChild appends c as the last child of n.
func (n *Node) AppendChild(c *Node) *Node {
	n.touch()
	n.Children = append(n.Children, c)
	return n
}

// InsertChild inserts c at index i among n's children. Out-of-range indices
// clamp to the valid range.
func (n *Node) InsertChild(i int, c *Node) {
	n.touch()
	if i < 0 {
		i = 0
	}
	if i > len(n.Children) {
		i = len(n.Children)
	}
	n.Children = append(n.Children, nil)
	copy(n.Children[i+1:], n.Children[i:])
	n.Children[i] = c
}

// RemoveChild removes the first occurrence of c (pointer identity) from n's
// children and reports whether it was found.
func (n *Node) RemoveChild(c *Node) bool {
	for i, k := range n.Children {
		if k == c {
			n.touch()
			n.Children = append(n.Children[:i], n.Children[i+1:]...)
			return true
		}
	}
	return false
}

// ReplaceChild replaces the first occurrence of old (pointer identity) with
// repl and reports whether a replacement happened.
func (n *Node) ReplaceChild(old, repl *Node) bool {
	for i, k := range n.Children {
		if k == old {
			n.touch()
			n.Children[i] = repl
			return true
		}
	}
	return false
}

// ChildElements returns n's direct element children, skipping text nodes.
func (n *Node) ChildElements() []*Node {
	var out []*Node
	for _, c := range n.Children {
		if c.IsElement() {
			out = append(out, c)
		}
	}
	return out
}

// Child returns the first direct child element with the given name, or nil.
func (n *Node) Child(name string) *Node {
	for _, c := range n.Children {
		if c.IsElement() && c.Name == name {
			return c
		}
	}
	return nil
}

// ChildText returns the text content of the first direct child element with
// the given name, or "" if there is no such child.
func (n *Node) ChildText(name string) string {
	if c := n.Child(name); c != nil {
		return c.TextContent()
	}
	return ""
}

// Find returns the first element in the subtree rooted at n (including n
// itself) whose name matches, in depth-first document order, or nil.
func (n *Node) Find(name string) *Node {
	if n.IsElement() && n.Name == name {
		return n
	}
	for _, c := range n.Children {
		if c.IsElement() {
			if m := c.Find(name); m != nil {
				return m
			}
		}
	}
	return nil
}

// FindAll returns every element in the subtree rooted at n (including n)
// whose name matches, in depth-first document order.
func (n *Node) FindAll(name string) []*Node {
	var out []*Node
	n.Walk(func(e *Node) bool {
		if e.Name == name {
			out = append(out, e)
		}
		return true
	})
	return out
}

// FindByID returns the element in the subtree whose "Id" attribute equals
// id, or nil. DRA4WfMS signatures reference signed subtrees by Id.
func (n *Node) FindByID(id string) *Node {
	var found *Node
	n.Walk(func(e *Node) bool {
		if v, ok := e.Attr("Id"); ok && v == id {
			found = e
			return false
		}
		return true
	})
	return found
}

// Parent returns the parent element of target within the subtree rooted at
// n, or nil if target is n itself or is not in the subtree.
func (n *Node) Parent(target *Node) *Node {
	var parent *Node
	var rec func(e *Node) bool
	rec = func(e *Node) bool {
		for _, c := range e.Children {
			if c == target {
				parent = e
				return true
			}
			if c.IsElement() && rec(c) {
				return true
			}
		}
		return false
	}
	rec(n)
	return parent
}

// Walk visits every element in the subtree rooted at n in depth-first
// document order, calling fn for each. If fn returns false the walk stops.
func (n *Node) Walk(fn func(*Node) bool) {
	if !n.IsElement() {
		return
	}
	stop := false
	var rec func(e *Node)
	rec = func(e *Node) {
		if stop {
			return
		}
		if !fn(e) {
			stop = true
			return
		}
		for _, c := range e.Children {
			if c.IsElement() {
				rec(c)
			}
		}
	}
	rec(n)
}

// TextContent returns the concatenation of all text nodes in the subtree,
// in document order.
func (n *Node) TextContent() string {
	var b strings.Builder
	var rec func(e *Node)
	rec = func(e *Node) {
		if e.IsText() {
			b.WriteString(e.Text)
			return
		}
		for _, c := range e.Children {
			rec(c)
		}
	}
	rec(n)
	return b.String()
}

// SetText replaces all children of n with a single text node carrying s.
func (n *Node) SetText(s string) *Node {
	n.touch()
	n.Children = n.Children[:0]
	if s != "" {
		n.Children = append(n.Children, NewText(s))
	}
	return n
}

// Clone returns a deep copy of the subtree rooted at n. Canonical memos
// are deliberately not carried over: a clone is a common prelude to direct
// field surgery (tamper tests, element-wise encryption), and a fresh tree
// must never serve bytes cached on its original.
func (n *Node) Clone() *Node {
	if n == nil {
		return nil
	}
	c := &Node{Kind: n.Kind, Name: n.Name, Text: n.Text}
	if n.Attrs != nil {
		c.Attrs = make([]Attr, len(n.Attrs))
		copy(c.Attrs, n.Attrs)
	}
	if n.Children != nil {
		c.Children = make([]*Node, len(n.Children))
		for i, k := range n.Children {
			c.Children[i] = k.Clone()
		}
	}
	return c
}

// Equal reports whether two subtrees are structurally identical: same node
// kinds, names, attribute sets (order-insensitive) and children (order-
// sensitive). Adjacent text nodes are not merged before comparison.
func Equal(a, b *Node) bool {
	if a == nil || b == nil {
		return a == b
	}
	if a.Kind != b.Kind {
		return false
	}
	if a.Kind == TextKind {
		return a.Text == b.Text
	}
	if a.Name != b.Name || len(a.Attrs) != len(b.Attrs) || len(a.Children) != len(b.Children) {
		return false
	}
	for _, attr := range a.Attrs {
		v, ok := b.Attr(attr.Name)
		if !ok || v != attr.Value {
			return false
		}
	}
	for i := range a.Children {
		if !Equal(a.Children[i], b.Children[i]) {
			return false
		}
	}
	return true
}

// Canonical returns the canonical serialization of the subtree rooted at n.
// Two structurally equal trees always produce identical canonical bytes,
// regardless of attribute insertion order.
//
// The result is memoized on n and revalidated against the subtree's
// generation accumulator on every call, so repeated canonicalization of an
// unchanged subtree costs one O(nodes) walk instead of a full
// re-serialization, and valid memos cached on descendants are spliced in
// when the subtree around them changed. The returned slice is shared with
// the memo and with future callers: treat it as immutable.
//
// Concurrent Canonical calls on a shared tree are safe with each other;
// they are not safe against concurrent mutation (the usual reader/writer
// contract of the tree itself).
func (n *Node) Canonical() []byte {
	acc := n.accum()
	if m := n.memo.Load(); m != nil && m.acc == acc {
		mMemoHits.Inc()
		return m.data
	}
	mMemoMisses.Inc()
	b := scratchPool.Get().(*bytes.Buffer)
	b.Reset()
	if hint := n.lastLen.Load(); hint > 0 {
		b.Grow(int(hint))
	}
	if n.IsText() {
		escapeText(b, n.Text)
	} else {
		writeCanonicalElem(b, n)
	}
	// Copy out at exact size: the memo must not pin the (possibly much
	// larger) scratch backing array, and the scratch goes back to the pool.
	data := make([]byte, b.Len())
	copy(data, b.Bytes())
	scratchPool.Put(b)
	if len(data) <= int(^uint32(0)) {
		n.lastLen.Store(uint32(len(data)))
	}
	n.memo.Store(&canonMemo{acc: acc, data: data})
	return data
}

// String returns the canonical serialization as a string; it implements
// fmt.Stringer for debugging convenience.
func (n *Node) String() string { return string(n.Canonical()) }

// Indent returns a human-readable, indented rendering of the subtree. The
// output is NOT canonical (whitespace is added) and must never be digested;
// it exists for logs, CLIs and documentation.
func (n *Node) Indent() string {
	var b bytes.Buffer
	writeIndented(&b, n, 0)
	return b.String()
}

func writeIndented(b *bytes.Buffer, n *Node, depth int) {
	ind := strings.Repeat("  ", depth)
	if n.IsText() {
		t := strings.TrimSpace(n.Text)
		if t != "" {
			b.WriteString(ind)
			escapeText(b, t)
			b.WriteByte('\n')
		}
		return
	}
	b.WriteString(ind)
	b.WriteByte('<')
	b.WriteString(n.Name)
	for _, a := range sortedAttrs(n.Attrs) {
		b.WriteByte(' ')
		b.WriteString(a.Name)
		b.WriteString(`="`)
		escapeAttr(b, a.Value)
		b.WriteByte('"')
	}
	if len(n.Children) == 0 {
		b.WriteString("></")
		b.WriteString(n.Name)
		b.WriteString(">\n")
		return
	}
	// Single text child renders inline.
	if len(n.Children) == 1 && n.Children[0].IsText() {
		b.WriteByte('>')
		escapeText(b, n.Children[0].Text)
		b.WriteString("</")
		b.WriteString(n.Name)
		b.WriteString(">\n")
		return
	}
	b.WriteString(">\n")
	for _, c := range n.Children {
		writeIndented(b, c, depth+1)
	}
	b.WriteString(ind)
	b.WriteString("</")
	b.WriteString(n.Name)
	b.WriteString(">\n")
}

func sortedAttrs(attrs []Attr) []Attr {
	if len(attrs) < 2 {
		return attrs
	}
	// Attributes are usually inserted in sorted order already (SetAttr in
	// builder code tends to follow the canonical order); detect that and
	// skip the per-serialization copy.
	sorted := true
	for i := 1; i < len(attrs); i++ {
		if attrs[i-1].Name > attrs[i].Name {
			sorted = false
			break
		}
	}
	if sorted {
		return attrs
	}
	s := make([]Attr, len(attrs))
	copy(s, attrs)
	sort.Slice(s, func(i, j int) bool { return s[i].Name < s[j].Name })
	return s
}

// writeCanonical serializes n into b, splicing in a still-valid canonical
// memo cached on n by an earlier Canonical call instead of re-serializing
// that subtree.
func writeCanonical(b *bytes.Buffer, n *Node) {
	if n.IsText() {
		escapeText(b, n.Text)
		return
	}
	if m := n.memo.Load(); m != nil && m.acc == n.accum() {
		mMemoHits.Inc()
		b.Write(m.data)
		return
	}
	writeCanonicalElem(b, n)
}

// writeCanonicalElem serializes an element without consulting n's own memo
// (children still reuse theirs).
func writeCanonicalElem(b *bytes.Buffer, n *Node) {
	b.WriteByte('<')
	b.WriteString(n.Name)
	for _, a := range sortedAttrs(n.Attrs) {
		b.WriteByte(' ')
		b.WriteString(a.Name)
		b.WriteString(`="`)
		escapeAttr(b, a.Value)
		b.WriteByte('"')
	}
	b.WriteByte('>')
	for _, c := range n.Children {
		writeCanonical(b, c)
	}
	b.WriteString("</")
	b.WriteString(n.Name)
	b.WriteByte('>')
}

// escapeText and escapeAttr write clean spans in one WriteString call and
// only switch per-byte at an actual escape — most text has none, making
// the common case a single bulk copy instead of len(s) WriteByte calls.

func escapeText(b *bytes.Buffer, s string) {
	start := 0
	for i := 0; i < len(s); i++ {
		var repl string
		switch s[i] {
		case '&':
			repl = "&amp;"
		case '<':
			repl = "&lt;"
		case '>':
			repl = "&gt;"
		case '\r':
			repl = "&#xD;"
		default:
			continue
		}
		b.WriteString(s[start:i])
		b.WriteString(repl)
		start = i + 1
	}
	b.WriteString(s[start:])
}

func escapeAttr(b *bytes.Buffer, s string) {
	start := 0
	for i := 0; i < len(s); i++ {
		var repl string
		switch s[i] {
		case '&':
			repl = "&amp;"
		case '<':
			repl = "&lt;"
		case '"':
			repl = "&quot;"
		case '\t':
			repl = "&#x9;"
		case '\n':
			repl = "&#xA;"
		case '\r':
			repl = "&#xD;"
		default:
			continue
		}
		b.WriteString(s[start:i])
		b.WriteString(repl)
		start = i + 1
	}
	b.WriteString(s[start:])
}

// ErrNamespace is returned by Parse when the input declares or uses XML
// namespaces, which the DRA4WfMS document format does not employ.
var ErrNamespace = errors.New("xmltree: namespaced XML is not supported")

// Parse reads a single XML document from r and returns its root element.
// Comments and processing instructions are discarded; CDATA becomes plain
// text. Namespaced input is rejected with ErrNamespace.
func Parse(r io.Reader) (*Node, error) {
	dec := xml.NewDecoder(r)
	var root *Node
	var stack []*Node
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("xmltree: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			if t.Name.Space != "" {
				return nil, ErrNamespace
			}
			e := NewElement(t.Name.Local)
			for _, a := range t.Attr {
				if a.Name.Space != "" || a.Name.Local == "xmlns" {
					return nil, ErrNamespace
				}
				e.Attrs = append(e.Attrs, Attr{Name: a.Name.Local, Value: a.Value})
			}
			if len(stack) == 0 {
				if root != nil {
					return nil, errors.New("xmltree: multiple root elements")
				}
				root = e
			} else {
				stack[len(stack)-1].AppendChild(e)
			}
			stack = append(stack, e)
		case xml.EndElement:
			if len(stack) == 0 {
				return nil, errors.New("xmltree: unbalanced end element")
			}
			stack = stack[:len(stack)-1]
		case xml.CharData:
			if len(stack) == 0 {
				// Whitespace outside the root is insignificant.
				if strings.TrimSpace(string(t)) != "" {
					return nil, errors.New("xmltree: character data outside root element")
				}
				continue
			}
			parent := stack[len(stack)-1]
			// Merge adjacent character data into one text node so that
			// parse(canonical(t)) == t holds for trees without adjacent
			// text children.
			if len(parent.Children) > 0 && parent.Children[len(parent.Children)-1].IsText() {
				parent.Children[len(parent.Children)-1].Text += string(t)
			} else {
				parent.AppendChild(NewText(string(t)))
			}
		case xml.Comment, xml.ProcInst, xml.Directive:
			// Not part of the document model.
		}
	}
	if root == nil {
		return nil, errors.New("xmltree: no root element")
	}
	if len(stack) != 0 {
		return nil, errors.New("xmltree: unexpected EOF inside element")
	}
	return root, nil
}

// ParseBytes parses an XML document held in b. See Parse.
func ParseBytes(b []byte) (*Node, error) {
	return Parse(bytes.NewReader(b))
}

// ParseString parses an XML document held in s. See Parse.
func ParseString(s string) (*Node, error) {
	return Parse(strings.NewReader(s))
}

// Normalize merges adjacent text children and removes empty text nodes
// throughout the subtree, in place. Canonical serialization followed by
// parsing yields a normalized tree; normalizing both sides makes
// Equal(t, reparse(canonical(t))) hold for any tree.
func (n *Node) Normalize() {
	if !n.IsElement() {
		return
	}
	out := n.Children[:0]
	changed := false
	for _, c := range n.Children {
		if c.IsText() {
			if c.Text == "" {
				changed = true
				continue
			}
			if len(out) > 0 && out[len(out)-1].IsText() {
				out[len(out)-1].touch()
				out[len(out)-1].Text += c.Text
				changed = true
				continue
			}
		} else {
			c.Normalize()
		}
		out = append(out, c)
	}
	if changed {
		n.touch()
	}
	n.Children = out
}

// Size returns the number of nodes (elements and text) in the subtree.
func (n *Node) Size() int {
	if n == nil {
		return 0
	}
	total := 1
	for _, c := range n.Children {
		total += c.Size()
	}
	return total
}
