package xmltree

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"
)

// buildMemoTree returns a small document with a nested element, suitable
// for exercising every mutator at both the root and a descendant.
func buildMemoTree() (root, inner *Node) {
	root = NewElement("Doc")
	root.SetAttr("Id", "d1")
	mid := root.Elem("Mid", "")
	mid.SetAttr("Id", "m1")
	inner = mid.Elem("Inner", "payload")
	inner.SetAttr("Id", "i1")
	root.Elem("Tail", "tail text")
	return root, inner
}

// freshCanonical serializes a clone of n, bypassing any memo cached on n
// itself — the ground truth a memoized Canonical must match.
func freshCanonical(n *Node) []byte {
	return n.Clone().Canonical()
}

// TestMutatorsInvalidateMemo drives every mutating method through the same
// scenario: canonicalize (priming the memo at the root AND at a
// descendant), mutate somewhere inside the subtree, and require Canonical
// to both change and agree with a from-scratch serialization of the
// mutated tree.
func TestMutatorsInvalidateMemo(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(root, inner *Node)
	}{
		{"SetAttr_new", func(root, inner *Node) { inner.SetAttr("Extra", "v") }},
		{"SetAttr_overwrite", func(root, inner *Node) { inner.SetAttr("Id", "i2") }},
		{"RemoveAttr", func(root, inner *Node) { inner.RemoveAttr("Id") }},
		{"AppendChild", func(root, inner *Node) { inner.AppendChild(NewElement("Added")) }},
		{"InsertChild", func(root, inner *Node) { inner.InsertChild(0, NewElement("First")) }},
		{"RemoveChild", func(root, inner *Node) { inner.RemoveChild(inner.Children[0]) }},
		{"ReplaceChild", func(root, inner *Node) {
			inner.ReplaceChild(inner.Children[0], NewText("replaced"))
		}},
		{"SetText", func(root, inner *Node) { inner.SetText("rewritten") }},
		{"Elem", func(root, inner *Node) { inner.Elem("Child", "txt") }},
		{"Normalize_merges_text", func(root, inner *Node) {
			// Adjacent text nodes canonicalize identically before and after
			// merging, so give Normalize an empty text node to drop — that
			// changes the accumulator but must keep canonical bytes valid.
			inner.AppendChild(NewText("a"))
			inner.AppendChild(NewText(""))
			inner.AppendChild(NewText("b"))
			root.Normalize()
		}},
		{"Invalidate_after_direct_edit", func(root, inner *Node) {
			inner.Children[0].Text = "directly edited"
			inner.Children[0].Invalidate()
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			root, inner := buildMemoTree()
			before := append([]byte(nil), root.Canonical()...)
			_ = inner.Canonical() // prime a descendant memo too
			tc.mutate(root, inner)
			got := root.Canonical()
			want := freshCanonical(root)
			if !bytes.Equal(got, want) {
				t.Fatalf("memoized canonical diverged from fresh serialization after %s:\n got  %s\n want %s",
					tc.name, got, want)
			}
			if tc.name != "Normalize_merges_text" && bytes.Equal(got, before) {
				t.Fatalf("canonical bytes unchanged after %s — stale memo served", tc.name)
			}
			// A second call must also be correct (and may now hit the memo).
			if again := root.Canonical(); !bytes.Equal(again, want) {
				t.Fatalf("second Canonical after %s returned stale bytes", tc.name)
			}
		})
	}
}

// TestMemoReturnsStableBytes checks the basic memo contract: repeated calls
// on an unchanged tree return identical bytes, and priming a child memo
// then mutating a sibling still yields correct parent bytes (the valid
// child memo is spliced into the rebuild).
func TestMemoReturnsStableBytes(t *testing.T) {
	root, inner := buildMemoTree()
	first := root.Canonical()
	second := root.Canonical()
	if !bytes.Equal(first, second) {
		t.Fatal("Canonical not stable across calls on an unchanged tree")
	}
	_ = inner.Canonical()
	root.SetAttr("Version", "2") // invalidates root memo, not inner's
	if got, want := root.Canonical(), freshCanonical(root); !bytes.Equal(got, want) {
		t.Fatalf("rebuild with child splice diverged:\n got  %s\n want %s", got, want)
	}
}

// TestCloneDropsMemo ensures a clone never serves bytes cached on its
// original: direct field surgery on a fresh clone (the idiom of the tamper
// tests across the repo) must be reflected in its canonical form.
func TestCloneDropsMemo(t *testing.T) {
	root, _ := buildMemoTree()
	orig := root.Canonical()
	clone := root.Clone()
	clone.Find("Inner").Children[0].Text = "tampered"
	got := clone.Canonical()
	if bytes.Equal(got, orig) {
		t.Fatal("clone served the original's memoized bytes after direct mutation")
	}
	if !bytes.Contains(got, []byte("tampered")) {
		t.Fatal("clone canonical does not reflect the direct mutation")
	}
}

// BenchmarkCanonical measures serialization of a ~100-element document
// with the memo warm (steady state of repeated digesting), invalidated at
// the root each iteration (worst-case rebuild, child memos still spliced),
// and on a cold clone (no memos anywhere).
func BenchmarkCanonical(b *testing.B) {
	root := NewElement("Doc")
	for i := 0; i < 100; i++ {
		e := root.Elem("Entry", strings.Repeat("x", 64))
		e.SetAttr("Id", fmt.Sprintf("id-%d", i))
		e.SetAttr("Kind", "payload")
	}
	b.Run("memo-hit", func(b *testing.B) {
		b.ReportAllocs()
		_ = root.Canonical()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_ = root.Canonical()
		}
	})
	b.Run("root-invalidated", func(b *testing.B) {
		for _, c := range root.Children {
			_ = c.Canonical() // prime child memos
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			root.Invalidate()
			_ = root.Canonical()
		}
	})
	b.Run("cold", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = root.Clone().Canonical()
		}
	})
}

// TestConcurrentCanonical hammers Canonical from many goroutines on a
// shared tree (run with -race): concurrent readers are part of the
// contract — parallel signature verification digests subtrees of one
// document from a worker pool.
func TestConcurrentCanonical(t *testing.T) {
	root := NewElement("Doc")
	for i := 0; i < 40; i++ {
		c := root.Elem("Item", fmt.Sprintf("value-%d", i))
		c.SetAttr("Id", fmt.Sprintf("id-%d", i))
	}
	want := freshCanonical(root)
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				// Mix whole-tree and subtree canonicalization.
				if got := root.Canonical(); !bytes.Equal(got, want) {
					errs <- fmt.Errorf("goroutine %d: canonical bytes diverged", g)
					return
				}
				sub := root.Children[(g+i)%len(root.Children)]
				if len(sub.Canonical()) == 0 {
					errs <- fmt.Errorf("goroutine %d: empty subtree canonical", g)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
