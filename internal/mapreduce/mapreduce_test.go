package mapreduce

import (
	"fmt"
	"strconv"
	"strings"
	"testing"

	"dra4wfms/internal/pool"
)

func seedTable(t *testing.T, rows int) *pool.Table {
	t.Helper()
	c, err := pool.NewCluster([]string{"rs1"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := c.CreateTable("docs", pool.FamilySpec{Name: "meta"})
	if err != nil {
		t.Fatal(err)
	}
	states := []string{"running", "completed", "completed", "running", "completed"}
	for i := 0; i < rows; i++ {
		row := fmt.Sprintf("proc-%04d", i)
		tbl.Put(row, "meta", "state", []byte(states[i%len(states)]))
		tbl.Put(row, "meta", "cers", []byte(strconv.Itoa(i%7)))
	}
	return tbl
}

func TestCountByState(t *testing.T) {
	tbl := seedTable(t, 100)
	counts, err := Count(tbl, pool.ScanOptions{Family: "meta"}, func(kv pool.KeyValue) string {
		if kv.Qualifier != "state" {
			return ""
		}
		return string(kv.Value)
	})
	if err != nil {
		t.Fatal(err)
	}
	if counts["running"] != 40 || counts["completed"] != 60 {
		t.Fatalf("counts = %v", counts)
	}
}

func TestSumJob(t *testing.T) {
	tbl := seedTable(t, 70) // cers cycle 0..6: sum = 10 * (0+..+6) = 210
	job := &Job{
		Table: tbl,
		Scan:  pool.ScanOptions{Family: "meta"},
		Map: func(kv pool.KeyValue, emit func(string, string)) {
			if kv.Qualifier == "cers" {
				emit("total", string(kv.Value))
			}
		},
		Reduce: func(key string, values []string) string {
			sum := 0
			for _, v := range values {
				n, _ := strconv.Atoi(v)
				sum += n
			}
			return strconv.Itoa(sum)
		},
	}
	res, err := job.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res["total"] != "210" {
		t.Fatalf("sum = %q", res["total"])
	}
}

func TestParallelismConfigurations(t *testing.T) {
	tbl := seedTable(t, 200)
	var baseline map[string]string
	for _, cfg := range []struct{ m, r int }{{1, 1}, {4, 2}, {16, 8}, {1000, 3}} {
		job := &Job{
			Table:    tbl,
			Scan:     pool.ScanOptions{Family: "meta"},
			Mappers:  cfg.m,
			Reducers: cfg.r,
			Map: func(kv pool.KeyValue, emit func(string, string)) {
				emit(kv.Qualifier+"|"+string(kv.Value), kv.Row)
			},
			Reduce: func(key string, values []string) string {
				return strconv.Itoa(len(values))
			},
		}
		res, err := job.Run()
		if err != nil {
			t.Fatalf("m=%d r=%d: %v", cfg.m, cfg.r, err)
		}
		if baseline == nil {
			baseline = res
			continue
		}
		if len(res) != len(baseline) {
			t.Fatalf("m=%d r=%d: %d keys, baseline %d", cfg.m, cfg.r, len(res), len(baseline))
		}
		for k, v := range baseline {
			if res[k] != v {
				t.Fatalf("m=%d r=%d: key %q = %q, baseline %q", cfg.m, cfg.r, k, res[k], v)
			}
		}
	}
}

func TestEmptyInput(t *testing.T) {
	tbl := seedTable(t, 0)
	res, err := Count(tbl, pool.ScanOptions{}, func(kv pool.KeyValue) string { return "x" })
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 0 {
		t.Fatalf("res = %v", res)
	}
}

func TestValidation(t *testing.T) {
	tbl := seedTable(t, 1)
	if _, err := (&Job{Table: tbl}).Run(); err == nil {
		t.Fatal("job without map/reduce ran")
	}
	if _, err := (&Job{Map: func(pool.KeyValue, func(string, string)) {}, Reduce: func(string, []string) string { return "" }}).Run(); err == nil {
		t.Fatal("job without table ran")
	}
}

func TestMapperPanicSurfaces(t *testing.T) {
	tbl := seedTable(t, 10)
	job := &Job{
		Table:  tbl,
		Map:    func(kv pool.KeyValue, emit func(string, string)) { panic("mapper boom") },
		Reduce: func(key string, values []string) string { return "" },
	}
	_, err := job.Run()
	if err == nil || !strings.Contains(err.Error(), "mapper boom") {
		t.Fatalf("err = %v", err)
	}
}

func TestReducerPanicSurfaces(t *testing.T) {
	tbl := seedTable(t, 10)
	job := &Job{
		Table:  tbl,
		Map:    func(kv pool.KeyValue, emit func(string, string)) { emit("k", "v") },
		Reduce: func(key string, values []string) string { panic("reducer boom") },
	}
	_, err := job.Run()
	if err == nil || !strings.Contains(err.Error(), "reducer boom") {
		t.Fatalf("err = %v", err)
	}
}

func TestMultiEmitGrouping(t *testing.T) {
	// A mapper may emit several pairs per cell; grouping must see them all.
	tbl := seedTable(t, 10)
	job := &Job{
		Table: tbl,
		Scan:  pool.ScanOptions{Family: "meta"},
		Map: func(kv pool.KeyValue, emit func(string, string)) {
			emit("all", kv.Row)
			emit("fam:"+kv.Family, kv.Row)
		},
		Reduce:   func(key string, values []string) string { return strconv.Itoa(len(values)) },
		Reducers: 2,
	}
	res, err := job.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res["all"] != "20" || res["fam:meta"] != "20" {
		t.Fatalf("res = %v", res)
	}
}
