// Package mapreduce runs parallel map-reduce jobs over scans of the
// document pool, standing in for the Hadoop MapReduce layer the paper uses
// for "statistical analyses to workflow processes or instances stored in
// the DRA4WfMS cloud system" (Section 4.2).
//
// A Job scans a pool table, fans the cells out to M mapper goroutines,
// shuffles emitted pairs to R reducer goroutines by key hash, and returns
// the reduced result. Values reaching a reducer for one key preserve no
// particular order (as in Hadoop without secondary sort).
package mapreduce

import (
	"errors"
	"fmt"
	"hash/fnv"
	"runtime"
	"sort"
	"sync"

	"dra4wfms/internal/pool"
)

// MapFunc processes one cell and may emit any number of key/value pairs.
type MapFunc func(kv pool.KeyValue, emit func(key, value string))

// ReduceFunc folds all values emitted under one key into a single value.
type ReduceFunc func(key string, values []string) string

// Job describes one map-reduce run.
type Job struct {
	// Table is the input table, local or clustered.
	Table pool.DocTable
	// Scan selects the input cells.
	Scan pool.ScanOptions
	// Map is the mapper (required).
	Map MapFunc
	// Reduce is the reducer (required).
	Reduce ReduceFunc
	// Mappers is the mapper goroutine count (default GOMAXPROCS).
	Mappers int
	// Reducers is the reducer goroutine count (default 4).
	Reducers int
}

// Run executes the job and returns key → reduced value.
func (j *Job) Run() (map[string]string, error) {
	if j.Table == nil {
		return nil, errors.New("mapreduce: no input table")
	}
	if j.Map == nil || j.Reduce == nil {
		return nil, errors.New("mapreduce: Map and Reduce are required")
	}
	mappers := j.Mappers
	if mappers <= 0 {
		mappers = runtime.GOMAXPROCS(0)
	}
	reducers := j.Reducers
	if reducers <= 0 {
		reducers = 4
	}

	input := j.Table.Scan(j.Scan)
	if len(input) == 0 {
		return map[string]string{}, nil
	}
	if mappers > len(input) {
		mappers = len(input)
	}

	// Map phase: each mapper owns a chunk and a private set of per-reducer
	// buckets, so no locking is needed until the merge.
	type buckets []map[string][]string
	perMapper := make([]buckets, mappers)
	var wg sync.WaitGroup
	chunk := (len(input) + mappers - 1) / mappers
	var panicked error
	var panicMu sync.Mutex
	for m := 0; m < mappers; m++ {
		lo := m * chunk
		hi := lo + chunk
		if hi > len(input) {
			hi = len(input)
		}
		b := make(buckets, reducers)
		for i := range b {
			b[i] = map[string][]string{}
		}
		perMapper[m] = b
		wg.Add(1)
		go func(cells []pool.KeyValue, b buckets) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicMu.Lock()
					if panicked == nil {
						panicked = fmt.Errorf("mapreduce: mapper panic: %v", r)
					}
					panicMu.Unlock()
				}
			}()
			emit := func(key, value string) {
				idx := shard(key, reducers)
				b[idx][key] = append(b[idx][key], value)
			}
			for _, kv := range cells {
				j.Map(kv, emit)
			}
		}(input[lo:hi], b)
	}
	wg.Wait()
	if panicked != nil {
		return nil, panicked
	}

	// Shuffle: merge per-mapper buckets into per-reducer groups.
	groups := make([]map[string][]string, reducers)
	for i := range groups {
		groups[i] = map[string][]string{}
	}
	for _, b := range perMapper {
		for r, bucket := range b {
			for k, vs := range bucket {
				groups[r][k] = append(groups[r][k], vs...)
			}
		}
	}

	// Reduce phase.
	results := make([]map[string]string, reducers)
	for r := 0; r < reducers; r++ {
		results[r] = map[string]string{}
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			defer func() {
				if rec := recover(); rec != nil {
					panicMu.Lock()
					if panicked == nil {
						panicked = fmt.Errorf("mapreduce: reducer panic: %v", rec)
					}
					panicMu.Unlock()
				}
			}()
			// Deterministic key order within the reducer.
			keys := make([]string, 0, len(groups[r]))
			for k := range groups[r] {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				results[r][k] = j.Reduce(k, groups[r][k])
			}
		}(r)
	}
	wg.Wait()
	if panicked != nil {
		return nil, panicked
	}

	out := map[string]string{}
	for _, m := range results {
		for k, v := range m {
			out[k] = v
		}
	}
	return out, nil
}

func shard(key string, n int) int {
	h := fnv.New32a()
	h.Write([]byte(key))
	return int(h.Sum32() % uint32(n))
}

// Count is a convenience job: it maps every selected cell through keyOf
// (skipping cells mapped to "") and returns how many cells produced each
// key — the workhorse of workflow monitoring statistics.
func Count(t pool.DocTable, scan pool.ScanOptions, keyOf func(pool.KeyValue) string) (map[string]int, error) {
	j := &Job{
		Table: t,
		Scan:  scan,
		Map: func(kv pool.KeyValue, emit func(string, string)) {
			if k := keyOf(kv); k != "" {
				emit(k, "1")
			}
		},
		Reduce: func(key string, values []string) string {
			return fmt.Sprintf("%d", len(values))
		},
	}
	res, err := j.Run()
	if err != nil {
		return nil, err
	}
	out := make(map[string]int, len(res))
	for k, v := range res {
		var n int
		fmt.Sscanf(v, "%d", &n)
		out[k] = n
	}
	return out, nil
}
