package tfc

import (
	"strings"
	"testing"

	"dra4wfms/internal/aea"
	"dra4wfms/internal/document"
)

// flipCipherByte flips one byte inside the first encrypted execution
// result, tampering mid-cascade with a signed subtree.
func flipCipherByte(t *testing.T, doc *document.Document) {
	t.Helper()
	cv := doc.Root.Find("CipherValue")
	if cv == nil {
		t.Fatal("document has no CipherValue to tamper with")
	}
	b := []byte(cv.TextContent())
	if b[0] == 'A' {
		b[0] = 'B'
	} else {
		b[0] = 'A'
	}
	cv.SetText(string(b))
}

// TestTFCRejectsTamperAfterWarmCache: the TFC notarizes an intermediate
// document (verifying the full cascade and warming the verified-prefix
// cache), then receives the same document with one byte flipped
// mid-cascade — it must reject it at verification, before timestamping or
// signing anything.
func TestTFCRejectsTamperAfterWarmCache(t *testing.T) {
	f := newFig9B(t)
	interm, err := f.agents["A"].ExecuteToTFC(f.doc, "A", aea.Inputs{"request": "req"})
	if err != nil {
		t.Fatal(err)
	}
	// Warm the cache on the pristine cascade.
	if _, err := interm.VerifyAll(f.env.Registry); err != nil {
		t.Fatalf("pristine intermediate rejected: %v", err)
	}
	tampered := interm.Clone()
	flipCipherByte(t, tampered)
	if _, err := f.server.Process(tampered); err == nil {
		t.Fatal("TFC accepted a tampered document on a warm cache")
	} else if !strings.Contains(err.Error(), "verification failed") {
		t.Fatalf("unexpected rejection cause: %v", err)
	}
	// The pristine document still notarizes afterwards.
	if _, err := f.server.Process(interm); err != nil {
		t.Fatalf("pristine intermediate rejected after tamper attempt: %v", err)
	}
}
