package tfc

import (
	"errors"
	"strings"
	"testing"
	"time"

	"dra4wfms/internal/aea"
	"dra4wfms/internal/document"
	"dra4wfms/internal/testenv"
	"dra4wfms/internal/wfdef"
	"dra4wfms/internal/xmlenc"
	"dra4wfms/internal/xmltree"
)

var base = time.Date(2026, 7, 6, 11, 0, 0, 0, time.UTC)

// clock returns a deterministic monotonic clock.
func clock() func() time.Time {
	t := base
	return func() time.Time {
		t = t.Add(time.Second)
		return t
	}
}

type fixture struct {
	env    *testenv.Env
	def    *wfdef.Definition
	doc    *document.Document
	server *Server
	agents map[string]*aea.AEA
}

func newFig9B(t *testing.T) *fixture {
	t.Helper()
	env := testenv.Fig9(0)
	def := wfdef.Fig9B()
	doc, err := document.New(def, env.KeyOf("designer@acme"), testenv.ProcessID(), base)
	if err != nil {
		t.Fatal(err)
	}
	agents := map[string]*aea.AEA{}
	for act, p := range wfdef.Fig9Participants {
		agents[act] = aea.New(env.KeyOf(p), env.Registry)
	}
	return &fixture{
		env: env, def: def, doc: doc,
		server: New(env.KeyOf("tfc@cloud"), env.Registry, clock()),
		agents: agents,
	}
}

// step runs one activity through AEA → TFC and returns the TFC outcome.
func (f *fixture) step(t *testing.T, doc *document.Document, activity string, inputs aea.Inputs) *Outcome {
	t.Helper()
	interm, err := f.agents[activity].ExecuteToTFC(doc, activity, inputs)
	if err != nil {
		t.Fatalf("AEA %s: %v", activity, err)
	}
	out, err := f.server.Process(interm)
	if err != nil {
		t.Fatalf("TFC after %s: %v", activity, err)
	}
	return out
}

func (f *fixture) runIteration(t *testing.T, doc *document.Document, accept string) *Outcome {
	t.Helper()
	outA := f.step(t, doc, "A", aea.Inputs{"request": "req"})
	outB1 := f.step(t, outA.Routed["B1"], "B1", aea.Inputs{"techReview": "ok"})
	outB2 := f.step(t, outA.Routed["B2"], "B2", aea.Inputs{"budgetReview": "ok"})
	merged, err := document.Merge(outB1.Routed["C"], outB2.Routed["C"])
	if err != nil {
		t.Fatal(err)
	}
	outC := f.step(t, merged, "C", aea.Inputs{"summary": "fine"})
	return f.step(t, outC.Routed["D"], "D", aea.Inputs{"accept": accept})
}

func TestAdvancedModelFullRun(t *testing.T) {
	f := newFig9B(t)
	outD := f.runIteration(t, f.doc, "false")
	if outD.Completed || outD.Routed["A"] == nil {
		t.Fatalf("first pass should loop back: %v", outD.Next)
	}
	outD2 := f.runIteration(t, outD.Routed["A"], "true")
	if !outD2.Completed {
		t.Fatal("second pass should complete")
	}
	final := outD2.Doc
	// Each activity contributes an intermediate + a final CER: 10 each.
	if got := len(final.CERs()); got != 20 {
		t.Fatalf("total CERs = %d, want 20", got)
	}
	if got := len(final.FinalCERs()); got != 10 {
		t.Fatalf("final CERs = %d, want 10", got)
	}
	if n, err := final.VerifyAll(f.env.Registry); err != nil || n != 21 {
		t.Fatalf("VerifyAll = %d, %v", n, err)
	}
	// All final CERs are TFC-signed, carry timestamps, and timestamps are
	// monotone in document order.
	var prev time.Time
	for _, c := range final.FinalCERs() {
		if c.Signer() != "tfc@cloud" {
			t.Fatalf("final CER %s signed by %q", c.ID(), c.Signer())
		}
		ts, ok := c.Timestamp()
		if !ok {
			t.Fatalf("final CER %s has no timestamp", c.ID())
		}
		if ts.Before(prev) {
			t.Fatalf("timestamps not monotone at %s", c.ID())
		}
		prev = ts
	}
}

func TestForwardRecords(t *testing.T) {
	f := newFig9B(t)
	outD := f.runIteration(t, f.doc, "true")
	if !outD.Completed {
		t.Fatal("should complete")
	}
	recs := f.server.RecordsFor(f.doc.ProcessID())
	if len(recs) != 5 {
		t.Fatalf("records = %d, want 5", len(recs))
	}
	if recs[0].Activity != "A" || recs[4].Activity != "D" {
		t.Fatalf("record order: %v", recs)
	}
	if recs[4].Next[0] != wfdef.EndID {
		t.Fatalf("last record next = %v", recs[4].Next)
	}
	for _, r := range recs {
		if r.Size == 0 || r.Timestamp.IsZero() || r.Participant == "" {
			t.Fatalf("incomplete record %+v", r)
		}
	}
	if got := f.server.RecordsFor("nope"); len(got) != 0 {
		t.Fatal("records for unknown process")
	}
}

// TestOnRecordFailureFailsProcess: a forwarding-record persistence
// failure must fail the whole Process call — the contract is "journaled
// before the process response is acknowledged" — and disarm the replay
// guard so the client can retry once persistence recovers.
func TestOnRecordFailureFailsProcess(t *testing.T) {
	f := newFig9B(t)
	persistErr := errors.New("journal unavailable")
	f.server.OnRecord = func(ForwardRecord) error { return persistErr }

	interm, err := f.agents["A"].ExecuteToTFC(f.doc, "A", aea.Inputs{"request": "req"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.server.Process(interm); !errors.Is(err, persistErr) {
		t.Fatalf("Process with failing journal = %v, want wrapped persistErr", err)
	}
	if got := f.server.Records(); len(got) != 0 {
		t.Fatalf("unjournaled record appended to the in-memory log: %v", got)
	}

	// Persistence recovers: the same intermediate must be retryable (the
	// failed attempt must not have armed the replay guard) and journaled
	// exactly once.
	var journaled []ForwardRecord
	f.server.OnRecord = func(r ForwardRecord) error { journaled = append(journaled, r); return nil }
	if _, err := f.server.Process(interm); err != nil {
		t.Fatalf("retry after journal recovery: %v", err)
	}
	if len(journaled) != 1 || journaled[0].Activity != "A" {
		t.Fatalf("journaled records = %+v, want exactly the retried A record", journaled)
	}
	if len(f.server.Records()) != 1 {
		t.Fatalf("in-memory log holds %d records, want 1", len(f.server.Records()))
	}

	// And the successful retry must arm the guard.
	if _, err := f.server.Process(interm); !errors.Is(err, ErrReplay) {
		t.Fatalf("second retry = %v, want ErrReplay", err)
	}
}

func TestFig4ConcealedRouting(t *testing.T) {
	env := testenv.Fig4(0)
	def := wfdef.Fig4()
	p := wfdef.Fig4Participants
	server := New(env.KeyOf("tfc@cloud"), env.Registry, clock())
	newAgent := func(id string) *aea.AEA { return aea.New(env.KeyOf(id), env.Registry) }

	run := func(x string) (*Outcome, *document.Document) {
		doc, err := document.New(def, env.KeyOf("designer@p0"), testenv.ProcessID(), base)
		if err != nil {
			t.Fatal(err)
		}
		interm, err := newAgent(p.Peter).ExecuteToTFC(doc, "A1", aea.Inputs{"X": x})
		if err != nil {
			t.Fatal(err)
		}
		o1, err := server.Process(interm)
		if err != nil {
			t.Fatal(err)
		}
		interm, err = newAgent(p.Tony).ExecuteToTFC(o1.Routed["A2"], "A2", aea.Inputs{"Y": "secret-Y"})
		if err != nil {
			t.Fatal(err)
		}
		o2, err := server.Process(interm)
		if err != nil {
			t.Fatal(err)
		}
		interm, err = newAgent(p.Amy).ExecuteToTFC(o2.Routed["A3"], "A3", aea.Inputs{"reviewed": "true"})
		if err != nil {
			t.Fatal(err)
		}
		o3, err := server.Process(interm)
		if err != nil {
			t.Fatal(err)
		}
		return o3, o3.Doc
	}

	// X > 1000 routes to John (A4).
	o, doc := run("1500")
	if strings.Join(o.Next, ",") != "A4" {
		t.Fatalf("Next = %v, want A4", o.Next)
	}
	// Tony never saw X: his view of the final document hides it.
	spy := doc.Clone()
	if _, err := xmlenc.DecryptVisible(spy.Root, env.KeyOf(p.Tony)); err != nil {
		t.Fatal(err)
	}
	if _, visible := spy.Values()["X"]; visible {
		t.Fatal("X leaked to Tony")
	}
	// John can read Y (the TFC re-encrypted it per policy).
	johnView := doc.Clone()
	if _, err := xmlenc.DecryptVisible(johnView.Root, env.KeyOf(p.John)); err != nil {
		t.Fatal(err)
	}
	if johnView.Values()["Y"] != "secret-Y" {
		t.Fatalf("John cannot read Y: %v", johnView.Values())
	}
	// Amy (reader of X) can read it.
	amyView := doc.Clone()
	if _, err := xmlenc.DecryptVisible(amyView.Root, env.KeyOf(p.Amy)); err != nil {
		t.Fatal(err)
	}
	if amyView.Values()["X"] != "1500" {
		t.Fatalf("Amy cannot read X: %v", amyView.Values())
	}

	// X <= 1000 routes to Mary (A5).
	o, _ = run("10")
	if strings.Join(o.Next, ",") != "A5" {
		t.Fatalf("Next = %v, want A5", o.Next)
	}
}

func TestProcessErrors(t *testing.T) {
	f := newFig9B(t)

	// No pending intermediate CER.
	if _, err := f.server.Process(f.doc); !errors.Is(err, ErrNoPending) {
		t.Fatalf("fresh doc: %v", err)
	}

	interm, err := f.agents["A"].ExecuteToTFC(f.doc, "A", aea.Inputs{"request": "r"})
	if err != nil {
		t.Fatal(err)
	}

	// Wrong TFC server.
	f.env.MustRegister("tfc@other")
	other := New(f.env.KeyOf("tfc@other"), f.env.Registry, clock())
	if _, err := other.Process(interm); !errors.Is(err, ErrNotResponsible) {
		t.Fatalf("wrong server: %v", err)
	}

	// Tampered intermediate document.
	forged := interm.Clone()
	forged.Root.FindByID("res-it-A-0").SetAttr("X", "1")
	if _, err := f.server.Process(forged); err == nil {
		t.Fatal("tampered intermediate accepted")
	}

	// Success, then replay.
	if _, err := f.server.Process(interm); err != nil {
		t.Fatal(err)
	}
	if _, err := f.server.Process(interm); !errors.Is(err, ErrReplay) {
		t.Fatalf("replay: %v", err)
	}
}

func TestIntermediateParticipantMismatch(t *testing.T) {
	// An intermediate CER whose recorded participant is not the activity's
	// assigned executor is rejected even if signatures verify.
	f := newFig9B(t)
	// Build a definition-valid doc, then have the WRONG principal craft an
	// intermediate CER directly (bypassing the AEA's own checks).
	mallory := f.env.KeyOf(wfdef.Fig9Participants["B1"]) // legitimate key, wrong activity
	doc := f.doc.Clone()
	tfcKey, _ := f.env.Registry.PublicKey("tfc@cloud")
	payload := document.Field("request", "forged")
	enc, err := xmlenc.Encrypt(payload, "encit-A-0", xmlenc.Recipient{ID: "tfc@cloud", Key: tfcKey})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := doc.AppendCER(document.AppendSpec{
		ActivityID: "A", Iteration: 0, Kind: document.KindIntermediate,
		Participant:    mallory.Owner,
		ResultChildren: []*xmltree.Node{enc},
		PredSigIDs:     []string{document.DesignerSig},
		Signer:         mallory,
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := f.server.Process(doc); err == nil {
		t.Fatal("intermediate from wrong participant accepted")
	}
}

func TestDefaultClock(t *testing.T) {
	f := newFig9B(t)
	s := New(f.env.KeyOf("tfc@cloud"), f.env.Registry, nil)
	if s.Clock == nil {
		t.Fatal("nil clock not defaulted")
	}
	before := time.Now()
	if got := s.Clock(); got.Before(before.Add(-time.Minute)) {
		t.Fatal("default clock is not wall time")
	}
}
