// Package tfc implements the Timestamp and Flow Control server of the
// advanced operational model (Section 2.2 of the paper).
//
// A TFC server is deliberately NOT a workflow engine: it holds no process
// state of its own, it merely
//
//  1. verifies a received intermediate document;
//  2. decrypts the participant's raw execution result, which the AEA
//     encrypted to the TFC's public key (the paper's ⟨R⟩Pub(TFC));
//  3. re-encrypts each result variable element-wise according to the
//     security policy — something the participant could not do when the
//     next reader depends on a concealed branch condition (Figure 4);
//  4. evaluates the flow conditions it is entitled to read and decides the
//     routing;
//  5. embeds a timestamp witnessing the activity finish time (the notary
//     role) and a TFC signature chaining to the participant's intermediate
//     signature, preserving the nonrepudiation cascade;
//  6. forwards the document to the next participant(s) and records the
//     forwarding for workflow monitoring.
//
// Because the TFC never opens an interactive session with participants its
// per-document work is bounded, which is why the paper finds it is not the
// system bottleneck; BenchmarkTFCThroughput reproduces that claim.
package tfc

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"dra4wfms/internal/document"
	"dra4wfms/internal/dsig"
	"dra4wfms/internal/pki"
	"dra4wfms/internal/secpol"
	"dra4wfms/internal/telemetry"
	"dra4wfms/internal/wfdef"
	"dra4wfms/internal/xmlenc"
)

// Runtime telemetry: end-to-end and per-phase latencies (the paper's α
// and γ columns for the TFC share of Table 2) plus witness/replay
// counters. The TFC's per-document cost bounds the advanced model's
// shared-tier capacity, so these histograms are the "is the TFC the
// bottleneck?" signal at runtime.
var (
	tel               = telemetry.Default()
	mTimestamps       = tel.Counter("tfc_timestamps_total")
	mReplayRejections = tel.Counter("tfc_replay_rejections_total")
)

// Typed failures.
var (
	// ErrNotResponsible: the definition names a different TFC server.
	ErrNotResponsible = errors.New("tfc: this server is not the definition's TFC")
	// ErrNoPending: the document holds no intermediate CER awaiting
	// processing.
	ErrNoPending = errors.New("tfc: no pending intermediate CER")
	// ErrReplay: this server already processed this (process, activity,
	// iteration).
	ErrReplay = errors.New("tfc: duplicate intermediate document (replay)")
)

// ForwardRecord is one monitoring log entry: the paper's TFC "keeps a copy
// of each forwarded document and makes a record of the document
// processing".
type ForwardRecord struct {
	ProcessID   string
	Activity    string
	Iteration   int
	Participant string
	Timestamp   time.Time
	Next        []string
	Size        int // canonical bytes of the forwarded document
}

// Server is one TFC server instance. It is safe for concurrent use.
type Server struct {
	// Keys is the server's key pair; Keys.Owner must match the
	// definition's Policy.TFC.
	Keys *pki.KeyPair
	// Registry resolves participant keys.
	Registry *pki.Registry
	// Suite selects the signature suite for final CERs the server signs;
	// nil uses the process-wide default (dsig.DefaultSuite).
	Suite dsig.Suite
	// Clock supplies timestamps; it defaults to time.Now and is injectable
	// for deterministic tests.
	Clock func() time.Time
	// OnRecord, when non-nil, is called once for every ForwardRecord,
	// outside the server's lock and before the record is appended or the
	// outcome returned — the journaling hook cmd/dratfc uses to persist
	// the forwarding log (and the replay guard it implies) across
	// restarts. A non-nil error fails the whole Process call: the caller
	// never sees an acknowledged outcome whose record is not durable, and
	// the replay guard for the intermediate is disarmed so the client can
	// retry once persistence recovers.
	OnRecord func(ForwardRecord) error

	mu      sync.Mutex
	seen    map[string]bool
	records []ForwardRecord
}

// New creates a TFC server. clock may be nil (defaults to time.Now).
func New(keys *pki.KeyPair, reg *pki.Registry, clock func() time.Time) *Server {
	if clock == nil {
		clock = time.Now
	}
	return &Server{Keys: keys, Registry: reg, Clock: clock, seen: make(map[string]bool)}
}

// Outcome is the result of processing one intermediate document.
type Outcome struct {
	// Doc is the document after the TFC appended the final CER.
	Doc *document.Document
	// CER is the appended final characteristic execution result.
	CER document.CER
	// Next lists the routed targets.
	Next []string
	// Completed reports whether the process instance reached the end.
	Completed bool
	// Routed holds one document clone per next activity.
	Routed map[string]*document.Document
	// VerifiedSignatures counts signatures checked (the TFC share of α).
	VerifiedSignatures int
	// Timestamp is the witnessed finish time embedded in the CER.
	Timestamp time.Time
	// VerifyDuration is the wall time spent verifying the received
	// document's signatures and decrypting — the TFC's share of the
	// paper's α column (Table 2).
	VerifyDuration time.Duration
	// EncryptSignDuration is the wall time spent policy-encrypting the
	// result and embedding the timestamped signature — the paper's γ
	// column (Table 2).
	EncryptSignDuration time.Duration
}

// Process handles one intermediate document end to end.
func (s *Server) Process(doc *document.Document) (*Outcome, error) {
	return s.ProcessCtx(context.Background(), doc)
}

// ProcessCtx is Process carrying the caller's trace context: inside a
// sampled distributed trace the TFC's verify/route/encrypt/sign work
// lands as a tfc-tier span with the process and activity as attributes.
func (s *Server) ProcessCtx(ctx context.Context, doc *document.Document) (*Outcome, error) {
	ctx, span := tel.StartSpanCtx(ctx, "tfc_process_seconds")
	defer span.End()
	span.Trace().SetAttr("process", doc.ProcessID())
	verifyStart := time.Now()
	work := doc.Clone()
	nsigs, err := work.VerifyAllCtx(ctx, s.Registry)
	if err != nil {
		return nil, fmt.Errorf("tfc: document verification failed after %d valid signatures: %w", nsigs, err)
	}
	def, err := work.Definition()
	if err != nil {
		return nil, err
	}
	if err := def.Validate(); err != nil {
		return nil, fmt.Errorf("tfc: embedded definition invalid: %w", err)
	}
	pending, err := pendingIntermediate(work)
	if err != nil {
		return nil, err
	}
	act := def.Activity(pending.ActivityID())
	if act == nil {
		return nil, fmt.Errorf("tfc: intermediate CER names unknown activity %q", pending.ActivityID())
	}
	span.Trace().SetAttr("activity", act.ID)
	if responsible := def.TFCFor(act.ID); responsible != s.Keys.Owner {
		return nil, fmt.Errorf("%w: activity %s is assigned to %q, this server is %q",
			ErrNotResponsible, act.ID, responsible, s.Keys.Owner)
	}
	// Statically concealed conditions (document.NewConcealed) are vaulted
	// inside the signed definition; only vault recipients can open it.
	for _, t := range def.Transitions {
		if t.Concealed {
			if err := work.RevealConditions(def, s.Keys); err != nil {
				return nil, fmt.Errorf("tfc: revealing concealed conditions: %w", err)
			}
			break
		}
	}
	if pending.Signer() != pending.Participant() {
		return nil, fmt.Errorf("tfc: intermediate CER of %s signed by %q but records participant %q",
			act.ID, pending.Signer(), pending.Participant())
	}
	if act.Participant != "" && act.Participant != pending.Participant() {
		return nil, fmt.Errorf("tfc: intermediate CER of %s executed by %q, expected participant %q",
			act.ID, pending.Participant(), act.Participant)
	}
	if act.Role != "" {
		id, err := s.Registry.Identity(pending.Participant())
		if err != nil {
			return nil, fmt.Errorf("tfc: resolving executor %q: %w", pending.Participant(), err)
		}
		if !id.HasRole(act.Role) {
			return nil, fmt.Errorf("tfc: executor %q of %s lacks role %q", pending.Participant(), act.ID, act.Role)
		}
	}
	iter := pending.Iteration()
	key := fmt.Sprintf("%s|%s|%d", work.ProcessID(), act.ID, iter)
	s.mu.Lock()
	if s.seen[key] {
		s.mu.Unlock()
		mReplayRejections.Inc()
		return nil, fmt.Errorf("%w: %s", ErrReplay, key)
	}
	s.seen[key] = true
	s.mu.Unlock()

	// Unwrap the raw result the AEA encrypted to this server.
	res := pending.Result()
	if res == nil || len(res.ChildElements()) != 1 || !xmlenc.IsEncrypted(res.ChildElements()[0]) {
		return nil, errors.New("tfc: intermediate result is not a single encrypted payload")
	}
	plain, err := xmlenc.Decrypt(res.ChildElements()[0], s.Keys)
	if err != nil {
		return nil, fmt.Errorf("tfc: unwrapping intermediate result: %w", err)
	}
	values := map[string]string{}
	for _, f := range document.Fields(plain) {
		values[f.AttrDefault("Variable", "")] = f.TextContent()
	}

	// Routing environment: everything the TFC itself can read from the
	// document history plus the fresh raw values.
	hist := work.Clone()
	if _, err := xmlenc.DecryptVisible(hist.Root, s.Keys); err != nil {
		return nil, fmt.Errorf("tfc: decrypting history: %w", err)
	}
	envVals := hist.Values()
	for k, v := range values {
		envVals[k] = v
	}
	verifyDur := time.Since(verifyStart)
	next, err := secpol.Route(def, act, secpol.Env(envVals))
	if err != nil {
		return nil, fmt.Errorf("tfc: routing after %s: %w", act.ID, err)
	}

	// Policy encryption of the result fields.
	encStart := time.Now()
	fields, err := secpol.EncryptFields(def, s.Registry, act.ID, iter, values)
	if err != nil {
		return nil, err
	}

	now := s.Clock()
	cer, err := work.AppendCER(document.AppendSpec{
		ActivityID:     act.ID,
		Iteration:      iter,
		Kind:           document.KindFinal,
		Participant:    pending.Participant(),
		ResultChildren: fields,
		Timestamp:      now,
		Next:           next,
		PredSigIDs:     []string{pending.SignatureID()},
		Signer:         s.Keys,
		Suite:          s.Suite,
	})
	if err != nil {
		return nil, err
	}

	encryptSignDur := time.Since(encStart)
	tel.Histogram("tfc_verify_seconds", telemetry.LatencyBuckets).ObserveDuration(verifyDur)
	tel.Histogram("tfc_encrypt_sign_seconds", telemetry.LatencyBuckets).ObserveDuration(encryptSignDur)
	mTimestamps.Inc()

	out := &Outcome{
		Doc: work, CER: cer, Next: next,
		Routed:              map[string]*document.Document{},
		VerifiedSignatures:  nsigs,
		Timestamp:           now,
		VerifyDuration:      verifyDur,
		EncryptSignDuration: encryptSignDur,
	}
	for _, to := range next {
		if to == wfdef.EndID {
			out.Completed = true
			continue
		}
		out.Routed[to] = work.Clone()
	}

	rec := ForwardRecord{
		ProcessID:   work.ProcessID(),
		Activity:    act.ID,
		Iteration:   iter,
		Participant: pending.Participant(),
		Timestamp:   now,
		Next:        next,
		Size:        work.Size(),
	}
	// Journal before the in-memory append: the record must be durable (per
	// the hook's policy) before the process response is acknowledged. On
	// failure the replay guard is disarmed again — after a restart the
	// unpersisted record would not re-arm it anyway, so keeping it armed
	// in memory would only block a legitimate retry until then.
	if s.OnRecord != nil {
		if err := s.OnRecord(rec); err != nil {
			s.mu.Lock()
			delete(s.seen, key)
			s.mu.Unlock()
			return nil, fmt.Errorf("tfc: persisting forwarding record for %s: %w", key, err)
		}
	}
	s.mu.Lock()
	s.records = append(s.records, rec)
	s.mu.Unlock()
	return out, nil
}

// Restore preloads the forwarding log — typically read back from durable
// storage on daemon boot — and re-arms the replay guard for every restored
// record, so an intermediate document already processed before a restart
// is still rejected with ErrReplay afterwards. Restore is meant to run
// before the server takes traffic; it appends to whatever is already held.
func (s *Server) Restore(records []ForwardRecord) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, rec := range records {
		s.records = append(s.records, rec)
		s.seen[fmt.Sprintf("%s|%s|%d", rec.ProcessID, rec.Activity, rec.Iteration)] = true
	}
}

// Records returns a copy of the forwarding log, the data source for
// workflow monitoring in the advanced model.
func (s *Server) Records() []ForwardRecord {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]ForwardRecord, len(s.records))
	copy(out, s.records)
	return out
}

// RecordsFor returns the forwarding log entries of one process instance.
func (s *Server) RecordsFor(processID string) []ForwardRecord {
	var out []ForwardRecord
	for _, r := range s.Records() {
		if r.ProcessID == processID {
			out = append(out, r)
		}
	}
	return out
}

// pendingIntermediate finds the unique intermediate CER without a matching
// final CER.
func pendingIntermediate(d *document.Document) (document.CER, error) {
	var pending []document.CER
	for _, c := range d.CERs() {
		if c.Kind() != document.KindIntermediate {
			continue
		}
		if _, done := d.FindCER(document.KindFinal, c.ActivityID(), c.Iteration()); !done {
			pending = append(pending, c)
		}
	}
	switch len(pending) {
	case 0:
		return document.CER{}, ErrNoPending
	case 1:
		return pending[0], nil
	default:
		return document.CER{}, fmt.Errorf("tfc: %d pending intermediate CERs in one document", len(pending))
	}
}
