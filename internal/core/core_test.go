package core

import (
	"errors"
	"strings"
	"testing"
	"time"

	"dra4wfms/internal/aea"
	"dra4wfms/internal/testenv"
	"dra4wfms/internal/wfdef"
)

// newTestSystem builds a System with small keys and cached test key pairs
// for the Figure 9 / Figure 4 principals.
func newTestSystem(t *testing.T) *System {
	t.Helper()
	tick := time.Date(2026, 7, 6, 15, 0, 0, 0, time.UTC)
	sys, err := NewSystem(Config{
		KeyBits: 1024,
		Portals: 2,
		Clock: func() time.Time {
			tick = tick.Add(time.Second)
			return tick
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	env := testenv.New(1024)
	ids := []string{"designer@acme", "designer@p0", "tfc@cloud"}
	for _, p := range wfdef.Fig9Participants {
		ids = append(ids, p)
	}
	p4 := wfdef.Fig4Participants
	ids = append(ids, p4.Peter, p4.Tony, p4.Amy, p4.John, p4.Mary)
	for _, id := range ids {
		if err := sys.EnrollWithKeys(env.KeyOf(id)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := sys.EnrollTFC("tfc@cloud"); err != nil {
		t.Fatal(err)
	}
	return sys
}

func fig9Responders(r *Runner, accepts []string) {
	i := 0
	r.RespondValues("A", aea.Inputs{"request": "buy"}).
		RespondValues("B1", aea.Inputs{"techReview": "ok"}).
		RespondValues("B2", aea.Inputs{"budgetReview": "ok"}).
		RespondValues("C", aea.Inputs{"summary": "fine"}).
		Respond("D", func(s *aea.Session) (aea.Inputs, error) {
			v := accepts[i%len(accepts)]
			i++
			return aea.Inputs{"accept": v}, nil
		})
}

func TestRunnerBasicModelWithLoop(t *testing.T) {
	sys := newTestSystem(t)
	designer, _ := sys.Keys("designer@acme")
	doc, notes, err := sys.StartProcess(wfdef.Fig9A(), designer)
	if err != nil {
		t.Fatal(err)
	}
	if len(notes) != 1 || notes[0].Activity != "A" {
		t.Fatalf("initial notes = %v", notes)
	}
	runner := sys.NewRunner()
	fig9Responders(runner, []string{"false", "true"}) // one loop, then accept

	final, err := runner.Run(doc.ProcessID())
	if err != nil {
		t.Fatal(err)
	}
	if got := len(final.FinalCERs()); got != 10 {
		t.Fatalf("final CERs = %d, want 10 (two passes)", got)
	}
	if n, err := final.VerifyAll(sys.Registry); err != nil || n != 11 {
		t.Fatalf("VerifyAll = %d, %v", n, err)
	}
	state, _ := sys.Portal(1).State(doc.ProcessID())
	if state != "completed" {
		t.Fatalf("state = %s", state)
	}
	// Monitoring sees the completed instance.
	st, err := sys.Monitor.InstanceStatus(doc.ProcessID())
	if err != nil || st.State != "completed" || len(st.Steps) != 10 {
		t.Fatalf("monitor status = %+v, %v", st, err)
	}
}

func TestRunnerAdvancedModel(t *testing.T) {
	sys := newTestSystem(t)
	designer, _ := sys.Keys("designer@acme")
	doc, _, err := sys.StartProcess(wfdef.Fig9B(), designer)
	if err != nil {
		t.Fatal(err)
	}
	runner := sys.NewRunner()
	fig9Responders(runner, []string{"true"})
	final, err := runner.Run(doc.ProcessID())
	if err != nil {
		t.Fatal(err)
	}
	// Advanced model: intermediate + final CER per activity.
	if got := len(final.CERs()); got != 10 {
		t.Fatalf("CERs = %d, want 10 (5 intermediate + 5 final)", got)
	}
	for _, c := range final.FinalCERs() {
		if _, ok := c.Timestamp(); !ok {
			t.Fatalf("final CER %s lacks a TFC timestamp", c.ID())
		}
	}
	// The TFC recorded all five forwards.
	srv, _ := sys.TFC("tfc@cloud")
	if got := len(srv.RecordsFor(doc.ProcessID())); got != 5 {
		t.Fatalf("TFC records = %d", got)
	}
	// Monitoring can compute activity durations from the timestamps.
	durs, err := sys.Monitor.ActivityDurations(doc.ProcessID())
	if err != nil || len(durs) != 5 {
		t.Fatalf("durations = %v, %v", durs, err)
	}
}

func TestRunnerFig4ConcealedFlow(t *testing.T) {
	sys := newTestSystem(t)
	designer, _ := sys.Keys("designer@p0")
	doc, _, err := sys.StartProcess(wfdef.Fig4(), designer)
	if err != nil {
		t.Fatal(err)
	}
	p := wfdef.Fig4Participants
	runner := sys.NewRunner()
	runner.RespondValues("A1", aea.Inputs{"X": "1500"}).
		RespondValues("A2", aea.Inputs{"Y": "classified"}).
		RespondValues("A3", aea.Inputs{"reviewed": "true"}).
		RespondValues("A4", aea.Inputs{"highResult": "handled-high"}).
		RespondValues("A5", aea.Inputs{"lowResult": "handled-low"})

	final, err := runner.Run(doc.ProcessID())
	if err != nil {
		t.Fatal(err)
	}
	// X > 1000: A4 (John) executed, A5 (Mary) did not.
	if _, ok := final.FindCER("final", "A4", 0); !ok {
		t.Fatal("A4 did not run")
	}
	if _, ok := final.FindCER("final", "A5", 0); ok {
		t.Fatal("A5 ran despite X > 1000")
	}
	_ = p
}

func TestRunnerErrors(t *testing.T) {
	sys := newTestSystem(t)
	designer, _ := sys.Keys("designer@acme")
	doc, _, _ := sys.StartProcess(wfdef.Fig9A(), designer)

	// Missing responder.
	runner := sys.NewRunner()
	if _, err := runner.Run(doc.ProcessID()); !errors.Is(err, ErrNoResponder) {
		t.Fatalf("missing responder: %v", err)
	}

	// Responder error propagates.
	runner2 := sys.NewRunner()
	boom := errors.New("boom")
	runner2.Respond("A", func(*aea.Session) (aea.Inputs, error) { return nil, boom })
	if _, err := runner2.Run(doc.ProcessID()); !errors.Is(err, boom) {
		t.Fatalf("responder error: %v", err)
	}

	// Unknown process.
	if _, err := sys.NewRunner().Run("ghost"); err == nil {
		t.Fatal("ghost process ran")
	}
}

func TestRunnerStepLimit(t *testing.T) {
	sys := newTestSystem(t)
	designer, _ := sys.Keys("designer@acme")
	doc, _, _ := sys.StartProcess(wfdef.Fig9A(), designer)
	runner := sys.NewRunner()
	fig9Responders(runner, []string{"false"}) // never accepts: infinite loop
	runner.MaxSteps = 23
	_, err := runner.Run(doc.ProcessID())
	if err == nil || !strings.Contains(err.Error(), "exceeded 23 steps") {
		t.Fatalf("err = %v", err)
	}
}

func TestEnrollmentAndAccessors(t *testing.T) {
	sys := newTestSystem(t)
	kp1, err := sys.Enroll("new@org", "admin")
	if err != nil {
		t.Fatal(err)
	}
	kp2, _ := sys.Enroll("new@org")
	if kp1 != kp2 {
		t.Fatal("re-enrollment generated new keys")
	}
	id, err := sys.Registry.Identity("new@org")
	if err != nil || id.Org != "org" || !id.HasRole("admin") {
		t.Fatalf("identity = %+v, %v", id, err)
	}
	if _, err := sys.Keys("ghost@x"); err == nil {
		t.Fatal("keys for unenrolled principal")
	}
	if _, err := sys.TFC("ghost@x"); err == nil {
		t.Fatal("TFC for unenrolled principal")
	}
	if _, err := sys.NewAEA("ghost@x"); err == nil {
		t.Fatal("AEA for unenrolled principal")
	}
	if a, err := sys.NewAEA("new@org"); err != nil || a == nil {
		t.Fatalf("NewAEA: %v", err)
	}
	srv1, _ := sys.EnrollTFC("tfc2@cloud")
	srv2, _ := sys.EnrollTFC("tfc2@cloud")
	if srv1 != srv2 {
		t.Fatal("EnrollTFC not idempotent")
	}
	if sys.Portal(0) == nil || sys.Portal(5) == nil {
		t.Fatal("portal accessor")
	}
	if sys.Now().IsZero() {
		t.Fatal("zero clock")
	}
}

func TestNewProcessIDUnique(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 1000; i++ {
		id := NewProcessID()
		if seen[id] {
			t.Fatal("duplicate process id")
		}
		seen[id] = true
		if !strings.HasPrefix(id, "proc-") {
			t.Fatalf("id = %q", id)
		}
	}
}

func TestSystemDefaults(t *testing.T) {
	sys, err := NewSystem(Config{KeyBits: 1024})
	if err != nil {
		t.Fatal(err)
	}
	if len(sys.Portals) != 2 || len(sys.Cluster.Servers()) != 3 {
		t.Fatalf("defaults: portals=%d servers=%d", len(sys.Portals), len(sys.Cluster.Servers()))
	}
	if sys.Cluster.SplitThresholdBytes != 1<<20 {
		t.Fatalf("split threshold = %d", sys.Cluster.SplitThresholdBytes)
	}
	sysNoSplit, _ := NewSystem(Config{KeyBits: 1024, PoolSplitThreshold: -1})
	if sysNoSplit.Cluster.SplitThresholdBytes != 0 {
		t.Fatal("negative threshold did not disable splitting")
	}
}

func TestRoleBasedActivityEndToEnd(t *testing.T) {
	sys := newTestSystem(t)
	// Any "approver" may claim the approval activity; two candidates exist.
	env := testenv.New(1024)
	if err := sys.EnrollWithKeys(env.KeyOf("mgr1@acme"), "approver"); err != nil {
		t.Fatal(err)
	}
	if err := sys.EnrollWithKeys(env.KeyOf("mgr2@acme"), "approver"); err != nil {
		t.Fatal(err)
	}
	designer, _ := sys.Keys("designer@acme")
	def := wfdef.NewBuilder("roled-approval", "designer@acme").
		Activity("file", "File request", wfdef.Fig9Participants["A"]).
		Response("req", "string", true).Done().
		Activity("approve", "Approve", "").Role("approver").
		Request("req").Response("ok", "bool", true).Done().
		Start("file").Edge("file", "approve").End("approve").
		DefaultReaders(wfdef.Fig9Participants["A"], "mgr1@acme", "mgr2@acme").
		MustBuild()

	doc, _, err := sys.StartProcess(def, designer)
	if err != nil {
		t.Fatal(err)
	}
	// The role-based worklist shows the item to both managers.
	pA, _ := sys.Keys(wfdef.Fig9Participants["A"])
	_ = pA
	runnerA := sys.NewRunner()
	runnerA.RespondValues("file", aea.Inputs{"req": "please"})
	runnerA.RespondValues("approve", aea.Inputs{"ok": "true"})
	runnerA.ActAs("approver", "mgr2@acme")

	// After the first step, both role holders see the work item.
	if err := func() error {
		// run only the first activity by temporarily limiting steps
		r2 := sys.NewRunner()
		r2.RespondValues("file", aea.Inputs{"req": "please"})
		r2.MaxSteps = 1
		_, err := r2.Run(doc.ProcessID())
		if err == nil {
			return errors.New("expected step-limit error")
		}
		return nil
	}(); err != nil {
		t.Fatal(err)
	}
	for _, mgr := range []string{"mgr1@acme", "mgr2@acme"} {
		items, err := sys.Portal(0).Worklist(mgr)
		if err != nil {
			t.Fatal(err)
		}
		if len(items) != 1 || items[0].Activity != "approve" {
			t.Fatalf("%s worklist = %v", mgr, items)
		}
	}
	// A non-holder does not see it.
	items, err := sys.Portal(0).Worklist(wfdef.Fig9Participants["B1"])
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 0 {
		t.Fatalf("non-holder worklist = %v", items)
	}

	final, err := runnerA.Run(doc.ProcessID())
	if err != nil {
		t.Fatal(err)
	}
	cer, ok := final.FindCER("final", "approve", 0)
	if !ok || cer.Participant() != "mgr2@acme" || cer.Signer() != "mgr2@acme" {
		t.Fatalf("approve CER: %v %s/%s", ok, cer.Participant(), cer.Signer())
	}
	if n, err := final.VerifyAll(sys.Registry); err != nil || n != 3 {
		t.Fatalf("VerifyAll = %d, %v", n, err)
	}
}

func TestRoleBasedRejectsNonHolder(t *testing.T) {
	sys := newTestSystem(t)
	env := testenv.New(1024)
	if err := sys.EnrollWithKeys(env.KeyOf("pleb@acme")); err != nil { // no role
		t.Fatal(err)
	}
	designer, _ := sys.Keys("designer@acme")
	def := wfdef.NewBuilder("roled2", "designer@acme").
		Activity("approve", "", "").Role("approver").Response("ok", "bool", true).Done().
		Start("approve").End("approve").
		DefaultReaders("pleb@acme").
		MustBuild()
	doc, _, err := sys.StartProcess(def, designer)
	if err != nil {
		t.Fatal(err)
	}
	runner := sys.NewRunner()
	runner.RespondValues("approve", aea.Inputs{"ok": "true"})
	runner.ActAs("approver", "pleb@acme")
	if _, err := runner.Run(doc.ProcessID()); !errors.Is(err, aea.ErrNotParticipant) {
		t.Fatalf("non-holder executed role activity: %v", err)
	}
	// Without ActAs at all the runner reports a clear error.
	runner2 := sys.NewRunner()
	runner2.RespondValues("approve", aea.Inputs{"ok": "true"})
	if _, err := runner2.Run(doc.ProcessID()); err == nil || !strings.Contains(err.Error(), "ActAs") {
		t.Fatalf("missing actor: %v", err)
	}
}

func TestMultiTFCDeployment(t *testing.T) {
	// The Figure 6 deployment: different activities handled by different
	// TFC servers, all chained into one verifiable document.
	sys := newTestSystem(t)
	if _, err := sys.EnrollTFC("tfc-east@cloud"); err != nil {
		t.Fatal(err)
	}
	designer, _ := sys.Keys("designer@acme")

	def := wfdef.Fig9B() // default TFC tfc@cloud
	def.Policy.TFCAssigns = []wfdef.TFCAssign{
		{Activity: "B2", TFC: "tfc-east@cloud"},
		{Activity: "C", TFC: "tfc-east@cloud"},
	}
	if err := def.Validate(); err != nil {
		t.Fatal(err)
	}
	if def.TFCFor("A") != "tfc@cloud" || def.TFCFor("B2") != "tfc-east@cloud" {
		t.Fatalf("TFCFor routing wrong")
	}
	if got := strings.Join(def.TFCs(), ","); got != "tfc-east@cloud,tfc@cloud" {
		t.Fatalf("TFCs = %q", got)
	}

	doc, _, err := sys.StartProcess(def, designer)
	if err != nil {
		t.Fatal(err)
	}
	runner := sys.NewRunner()
	fig9Responders(runner, []string{"true"})
	final, err := runner.Run(doc.ProcessID())
	if err != nil {
		t.Fatal(err)
	}
	// Final CERs signed by the responsible server per activity.
	wantSigner := map[string]string{
		"A": "tfc@cloud", "B1": "tfc@cloud", "B2": "tfc-east@cloud",
		"C": "tfc-east@cloud", "D": "tfc@cloud",
	}
	for _, c := range final.FinalCERs() {
		if c.Signer() != wantSigner[c.ActivityID()] {
			t.Fatalf("CER %s signed by %q, want %q", c.ID(), c.Signer(), wantSigner[c.ActivityID()])
		}
	}
	if n, err := final.VerifyAll(sys.Registry); err != nil || n != 11 {
		t.Fatalf("VerifyAll = %d, %v", n, err)
	}
	// The wrong server refuses a document bound for the other.
	east, _ := sys.TFC("tfc-east@cloud")
	fresh, _, _ := sys.StartProcess(def, designer)
	agent, _ := sys.NewAEA(wfdef.Fig9Participants["A"])
	interm, err := agent.ExecuteToTFC(fresh, "A", aea.Inputs{"request": "r"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := east.Process(interm); err == nil {
		t.Fatal("east TFC processed a document assigned to the default TFC")
	}
}
