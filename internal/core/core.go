// Package core is the high-level DRA4WfMS API — the paper's "DRA4WfMS
// API" (Section 4.1) — assembling the trust fabric (pki), the cloud tier
// (pool, portal, monitor), the TFC servers, and the participant agents
// into one System that examples, tools, and benchmarks drive.
//
// Typical use:
//
//	sys, _ := core.NewSystem(core.Config{})
//	designer, _ := sys.Enroll("designer@acme")
//	alice, _ := sys.Enroll("alice@acme")
//	def, _ := wfdef.NewBuilder("demo", "designer@acme"). ... .Build()
//	doc, notes, _ := sys.StartProcess(def, designer)
//	runner := sys.NewRunner()
//	runner.Respond("A1", func(s *aea.Session) (aea.Inputs, error) { ... })
//	_ = runner.Run(doc.ProcessID())
package core

import (
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"time"

	"dra4wfms/internal/aea"
	"dra4wfms/internal/document"
	"dra4wfms/internal/monitor"
	"dra4wfms/internal/pki"
	"dra4wfms/internal/pool"
	"dra4wfms/internal/portal"
	"dra4wfms/internal/tfc"
	"dra4wfms/internal/wfdef"
	"dra4wfms/internal/xmlenc"
)

// Config parameterizes a System.
type Config struct {
	// KeyBits is the RSA modulus size for enrolled principals (default
	// pki.DefaultKeyBits).
	KeyBits int
	// PoolServers are the region-server IDs (default 3 servers).
	PoolServers []string
	// PoolSplitThreshold triggers region splits (default 1 MiB; 0 keeps
	// the default, negative disables splitting).
	PoolSplitThreshold int
	// Portals is how many portal servers front the pool (default 2).
	Portals int
	// Clock drives timestamps (default time.Now).
	Clock func() time.Time
}

// System is a fully assembled DRA4WfMS cloud deployment.
type System struct {
	// CA anchors trust for all enterprises in this deployment.
	CA *pki.CA
	// Registry resolves principals to verified public keys.
	Registry *pki.Registry
	// Cluster is the document-pool cluster.
	Cluster *pool.Cluster
	// Table is the shared documents table.
	Table *pool.Table
	// Portals are the portal servers (all equivalent, all over Table).
	Portals []*portal.Portal
	// Monitor reads statistics and instance status from the pool.
	Monitor *monitor.Monitor

	clock   func() time.Time
	keyBits int
	keys    map[string]*pki.KeyPair
	tfcs    map[string]*tfc.Server
}

// NewSystem assembles a System from the configuration.
func NewSystem(cfg Config) (*System, error) {
	if cfg.KeyBits == 0 {
		cfg.KeyBits = pki.DefaultKeyBits
	}
	if len(cfg.PoolServers) == 0 {
		cfg.PoolServers = []string{"rs-1", "rs-2", "rs-3"}
	}
	if cfg.PoolSplitThreshold == 0 {
		cfg.PoolSplitThreshold = 1 << 20
	}
	if cfg.PoolSplitThreshold < 0 {
		cfg.PoolSplitThreshold = 0
	}
	if cfg.Portals <= 0 {
		cfg.Portals = 2
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}

	ca, err := pki.NewCA("ca@dra4wfms", cfg.KeyBits)
	if err != nil {
		return nil, err
	}
	cluster, err := pool.NewCluster(cfg.PoolServers, cfg.PoolSplitThreshold)
	if err != nil {
		return nil, err
	}
	table, err := portal.CreateTable(cluster)
	if err != nil {
		return nil, err
	}
	sys := &System{
		CA:       ca,
		Registry: pki.NewRegistry(ca),
		Cluster:  cluster,
		Table:    table,
		Monitor:  monitor.New(table),
		clock:    cfg.Clock,
		keyBits:  cfg.KeyBits,
		keys:     map[string]*pki.KeyPair{},
		tfcs:     map[string]*tfc.Server{},
	}
	for i := 0; i < cfg.Portals; i++ {
		sys.Portals = append(sys.Portals, portal.New(fmt.Sprintf("portal-%d", i+1), sys.Registry, table, cfg.Clock))
	}
	return sys, nil
}

// Now returns the system clock's current time.
func (s *System) Now() time.Time { return s.clock() }

// Portal returns the i-th portal (mod the portal count), giving callers a
// trivial load-balancing accessor.
func (s *System) Portal(i int) *portal.Portal {
	return s.Portals[i%len(s.Portals)]
}

// Enroll generates a key pair for the principal, has the CA issue a
// certificate (valid one year from the system clock), registers it, and
// returns the key pair. Enrolling an existing principal returns the
// existing keys.
func (s *System) Enroll(id string, roles ...string) (*pki.KeyPair, error) {
	if kp, ok := s.keys[id]; ok {
		return kp, nil
	}
	kp, err := pki.GenerateKeyPair(id, s.keyBits)
	if err != nil {
		return nil, err
	}
	org := ""
	for i := 0; i < len(id); i++ {
		if id[i] == '@' {
			org = id[i+1:]
			break
		}
	}
	cert, err := s.CA.Issue(pki.Identity{ID: id, DisplayName: id, Org: org, Roles: roles},
		kp.Public(), s.clock(), 365*24*time.Hour)
	if err != nil {
		return nil, err
	}
	if err := s.Registry.Register(cert, s.clock()); err != nil {
		return nil, err
	}
	s.keys[id] = kp
	return kp, nil
}

// EnrollWithKeys registers a pre-generated key pair (used by tests that
// share cached keys).
func (s *System) EnrollWithKeys(kp *pki.KeyPair, roles ...string) error {
	if _, ok := s.keys[kp.Owner]; ok {
		return nil
	}
	cert, err := s.CA.Issue(pki.Identity{ID: kp.Owner, DisplayName: kp.Owner, Roles: roles},
		kp.Public(), s.clock(), 365*24*time.Hour)
	if err != nil {
		return err
	}
	if err := s.Registry.Register(cert, s.clock()); err != nil {
		return err
	}
	s.keys[kp.Owner] = kp
	return nil
}

// Keys returns the enrolled principal's key pair.
func (s *System) Keys(id string) (*pki.KeyPair, error) {
	kp, ok := s.keys[id]
	if !ok {
		return nil, fmt.Errorf("core: principal %q not enrolled", id)
	}
	return kp, nil
}

// EnrollTFC enrolls a principal and starts a TFC server under its identity.
func (s *System) EnrollTFC(id string) (*tfc.Server, error) {
	if srv, ok := s.tfcs[id]; ok {
		return srv, nil
	}
	kp, err := s.Enroll(id)
	if err != nil {
		return nil, err
	}
	srv := tfc.New(kp, s.Registry, s.clock)
	s.tfcs[id] = srv
	return srv, nil
}

// TFC returns the running TFC server for the principal.
func (s *System) TFC(id string) (*tfc.Server, error) {
	srv, ok := s.tfcs[id]
	if !ok {
		return nil, fmt.Errorf("core: no TFC server %q", id)
	}
	return srv, nil
}

// NewAEA builds an activity execution agent for an enrolled principal.
func (s *System) NewAEA(id string) (*aea.AEA, error) {
	kp, err := s.Keys(id)
	if err != nil {
		return nil, err
	}
	return aea.New(kp, s.Registry), nil
}

// NewProcessID returns a fresh globally unique process instance id.
func NewProcessID() string {
	var b [12]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(err) // crypto/rand failure is unrecoverable
	}
	return "proc-" + hex.EncodeToString(b[:])
}

// StartProcess creates the secured initial document for the definition,
// signed by the designer's enrolled keys, stores it through portal 0 and
// returns the document plus the initial notifications. Definitions that
// conceal flow information get their branch conditions vaulted for the TFC
// server via document.NewConcealed.
func (s *System) StartProcess(def *wfdef.Definition, designer *pki.KeyPair) (*document.Document, []portal.Notification, error) {
	var doc *document.Document
	var err error
	if def.Policy.ConcealFlow {
		tfcKey, kerr := s.Registry.PublicKey(def.Policy.TFC)
		if kerr != nil {
			return nil, nil, fmt.Errorf("core: resolving TFC for concealed flow: %w", kerr)
		}
		doc, err = document.NewConcealed(def, designer, NewProcessID(), s.clock(),
			xmlenc.Recipient{ID: def.Policy.TFC, Key: tfcKey},
			xmlenc.Recipient{ID: designer.Owner, Key: designer.Public()})
	} else {
		doc, err = document.New(def, designer, NewProcessID(), s.clock())
	}
	if err != nil {
		return nil, nil, err
	}
	notes, err := s.Portal(0).StoreInitial(doc)
	if err != nil {
		return nil, nil, err
	}
	return doc, notes, nil
}

// --- runner --------------------------------------------------------------------

// Responder supplies a participant's inputs for one activity execution,
// playing the role of the human in front of the AEA's user interface.
type Responder func(s *aea.Session) (aea.Inputs, error)

// Runner drives process instances to completion by repeatedly asking the
// portal for enabled activities, executing them through the participants'
// AEAs with scripted Responders, and storing the results. It transparently
// uses the basic or advanced operational model depending on the
// definition's security policy.
type Runner struct {
	sys        *System
	agents     map[string]*aea.AEA
	responders map[string]Responder
	actors     map[string]string // role → principal playing it
	// MaxSteps bounds the total activity executions (default 1000) as a
	// guard against non-terminating loops in buggy responders.
	MaxSteps int
}

// NewRunner creates a Runner over the system.
func (s *System) NewRunner() *Runner {
	return &Runner{
		sys:        s,
		agents:     map[string]*aea.AEA{},
		responders: map[string]Responder{},
		actors:     map[string]string{},
		MaxSteps:   1000,
	}
}

// ActAs names the principal that claims role-based activities of the
// given role during this run.
func (r *Runner) ActAs(role, principal string) *Runner {
	r.actors[role] = principal
	return r
}

// Respond registers the responder for an activity ID.
func (r *Runner) Respond(activityID string, fn Responder) *Runner {
	r.responders[activityID] = fn
	return r
}

// RespondValues registers a fixed-input responder.
func (r *Runner) RespondValues(activityID string, inputs aea.Inputs) *Runner {
	return r.Respond(activityID, func(*aea.Session) (aea.Inputs, error) { return inputs, nil })
}

func (r *Runner) agentFor(participant string) (*aea.AEA, error) {
	if a, ok := r.agents[participant]; ok {
		return a, nil
	}
	a, err := r.sys.NewAEA(participant)
	if err != nil {
		return nil, err
	}
	r.agents[participant] = a
	return a, nil
}

// ErrNoResponder is returned when an enabled activity has no registered
// responder.
var ErrNoResponder = errors.New("core: no responder for activity")

// Run drives the instance until completion. It returns the final stored
// document.
func (r *Runner) Run(processID string) (*document.Document, error) {
	p := r.sys.Portal(0)
	steps := 0
	for {
		enabled, completed, err := p.Enabled(processID)
		if err != nil {
			return nil, err
		}
		if completed {
			// Retrieve with any executing principal; use the first agent's
			// identity or fall back to scanning the table directly.
			return r.retrieve(processID)
		}
		if len(enabled) == 0 {
			return nil, fmt.Errorf("core: process %s is stuck (nothing enabled, not completed)", processID)
		}
		progressed := false
		for _, act := range enabled {
			if steps >= r.MaxSteps {
				return nil, fmt.Errorf("core: process %s exceeded %d steps", processID, r.MaxSteps)
			}
			if err := r.step(processID, act); err != nil {
				return nil, err
			}
			steps++
			progressed = true
			// Re-evaluate enabled set after every step: executing one
			// activity can enable or disable others (AND-joins, loops).
			break
		}
		if !progressed {
			return nil, fmt.Errorf("core: process %s made no progress", processID)
		}
	}
}

func (r *Runner) retrieve(processID string) (*document.Document, error) {
	raw, ok := r.sys.Table.Get(processID, "doc", "content")
	if !ok {
		return nil, fmt.Errorf("core: process %s has no stored document", processID)
	}
	return document.Parse(raw)
}

// step executes one enabled activity end to end.
func (r *Runner) step(processID, activityID string) error {
	p := r.sys.Portal(0)
	doc, err := r.retrieve(processID)
	if err != nil {
		return err
	}
	def, err := doc.Definition()
	if err != nil {
		return err
	}
	participant, err := def.ParticipantOf(activityID)
	if err != nil {
		return err
	}
	if participant == "" {
		role := def.Activity(activityID).Role
		participant = r.actors[role]
		if participant == "" {
			return fmt.Errorf("core: activity %s needs role %q but no actor was registered (Runner.ActAs)", activityID, role)
		}
	}
	agent, err := r.agentFor(participant)
	if err != nil {
		return err
	}
	session, err := agent.Open(doc, activityID)
	if err != nil {
		return fmt.Errorf("core: opening %s for %s: %w", activityID, participant, err)
	}
	responder, ok := r.responders[activityID]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoResponder, activityID)
	}
	inputs, err := responder(session)
	if err != nil {
		return err
	}

	var produced *document.Document
	if def.Policy.ConcealFlow || def.Policy.TFC != "" {
		// Advanced model: AEA → the activity's TFC → portal.
		interm, err := session.CompleteToTFC(inputs)
		if err != nil {
			return err
		}
		srv, err := r.sys.TFC(def.TFCFor(activityID))
		if err != nil {
			return err
		}
		out, err := srv.Process(interm)
		if err != nil {
			return err
		}
		produced = out.Doc
	} else {
		out, err := session.Complete(inputs, r.sys.clock())
		if err != nil {
			return err
		}
		produced = out.Doc
	}
	if _, err := p.Store(produced); err != nil {
		return err
	}
	return nil
}
