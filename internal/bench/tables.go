// Package bench implements the experiment harness that regenerates the
// paper's evaluation: Table 1 (basic operational model) and Table 2
// (advanced operational model) on the Figure 9 workflows, plus the
// ablation and scalability experiments DESIGN.md calls out. The cmd/drabench
// binary prints the rows; the repository-root benchmarks wrap the same
// runners in testing.B.
package bench

import (
	"fmt"
	"time"

	"dra4wfms/internal/aea"
	"dra4wfms/internal/document"
	"dra4wfms/internal/testenv"
	"dra4wfms/internal/tfc"
	"dra4wfms/internal/wfdef"
)

// step describes one activity execution of the Figure 9 run: two passes
// through A, B1∥B2, C, D with the first decision rejecting.
type step struct {
	act    string
	iter   int
	inputs aea.Inputs
}

func fig9Steps() []step {
	pass := func(iter int, accept string) []step {
		return []step{
			{"A", iter, aea.Inputs{"request": "purchase 10 servers", "attachment": "quote.pdf"}},
			{"B1", iter, aea.Inputs{"techReview": "technically adequate"}},
			{"B2", iter, aea.Inputs{"budgetReview": "within budget"}},
			{"C", iter, aea.Inputs{"summary": "both reviews positive"}},
			{"D", iter, aea.Inputs{"accept": accept}},
		}
	}
	return append(pass(0, "false"), pass(1, "true")...)
}

// docName renders the paper's document naming, e.g. "X_B1(0)".
func docName(act string, iter int) string { return fmt.Sprintf("X_%s(%d)", act, iter) }

// Table1Row is one row of the reproduced Table 1.
type Table1Row struct {
	// Doc is the produced document, in the paper's naming.
	Doc string
	// SigsVerified is the number of embedded signatures the executing AEA
	// verified on receipt ("Number of signatures to verify").
	SigsVerified int
	// CERs is the number of characteristic execution results in the
	// produced document ("Number of CERs"; the designer's CER(A0) is not
	// counted).
	CERs int
	// Alpha is the time to decrypt cipher data and verify signatures on
	// receipt (the paper's α, seconds).
	Alpha time.Duration
	// Beta is the time to encrypt the result and embed the signature
	// after the participant finished (the paper's β, seconds).
	Beta time.Duration
	// Sigma is the produced document's size in bytes (the paper's Σ).
	Sigma int
}

// RunTable1 executes the Figure 9A workflow under the basic operational
// model reps times with RSA keys of the given size, and returns the
// averaged per-document measurements. The first row is the secured initial
// document (α, β not applicable).
func RunTable1(bits, reps int) ([]Table1Row, error) {
	if reps <= 0 {
		reps = 1
	}
	env := testenv.Fig9(bits)
	def := wfdef.Fig9A()
	steps := fig9Steps()

	rows := make([]Table1Row, len(steps)+1)
	rows[0] = Table1Row{Doc: "Initial"}
	for i, s := range steps {
		rows[i+1] = Table1Row{Doc: docName(s.act, s.iter)}
	}

	for rep := 0; rep < reps; rep++ {
		agents := map[string]*aea.AEA{}
		for act, p := range wfdef.Fig9Participants {
			agents[act] = aea.New(env.KeyOf(p), env.Registry)
		}
		initial, err := document.New(def, env.KeyOf("designer@acme"), testenv.ProcessID(), time.Now())
		if err != nil {
			return nil, err
		}
		rows[0].Sigma += initial.Size()

		// Documents currently addressed to each activity.
		inbox := map[string]*document.Document{"A": initial}
		for i, s := range steps {
			doc := inbox[s.act]
			if doc == nil {
				return nil, fmt.Errorf("bench: no document for %s#%d", s.act, s.iter)
			}
			t0 := time.Now()
			session, err := agents[s.act].Open(doc, s.act)
			if err != nil {
				return nil, fmt.Errorf("bench: open %s#%d: %w", s.act, s.iter, err)
			}
			alpha := time.Since(t0)

			t1 := time.Now()
			out, err := session.Complete(s.inputs, time.Now())
			if err != nil {
				return nil, fmt.Errorf("bench: complete %s#%d: %w", s.act, s.iter, err)
			}
			beta := time.Since(t1)

			row := &rows[i+1]
			row.Alpha += alpha
			row.Beta += beta
			row.Sigma += out.Doc.Size()
			row.SigsVerified = session.VerifiedSignatures
			row.CERs = len(out.Doc.FinalCERs())

			// Deliver to successors; AND-join merges branch documents.
			for to, d := range out.Routed {
				if existing := inbox[to]; existing != nil && existing.ProcessID() == d.ProcessID() &&
					to != s.act && hasNewCERs(existing, d) {
					merged, err := document.Merge(existing, d)
					if err != nil {
						return nil, err
					}
					inbox[to] = merged
				} else {
					inbox[to] = d
				}
			}
			delete(inbox, s.act)
			if _, again := out.Routed[s.act]; again {
				inbox[s.act] = out.Routed[s.act]
			}
		}
	}
	for i := range rows {
		rows[i].Alpha /= time.Duration(reps)
		rows[i].Beta /= time.Duration(reps)
		rows[i].Sigma /= reps
	}
	return rows, nil
}

// hasNewCERs reports whether d carries CERs absent from existing (a real
// parallel branch rather than a stale copy).
func hasNewCERs(existing, d *document.Document) bool {
	seen := map[string]bool{}
	for _, c := range existing.CERs() {
		seen[c.ID()] = true
	}
	for _, c := range d.CERs() {
		if !seen[c.ID()] {
			return true
		}
	}
	return false
}

// Table2Row is one row of the reproduced Table 2. Under the advanced
// model each activity produces two documents: the intermediate X̄ (built
// by the AEA, result encrypted to the TFC) and the final X” (built by
// the TFC after policy encryption and timestamping).
type Table2Row struct {
	// Doc is the produced document, "X̄_A(0)" for intermediate or
	// "X_A(0)" for TFC-final.
	Doc string
	// Stage is "AEA" (intermediate) or "TFC" (final).
	Stage string
	// SigsVerified is the number of signatures verified on receipt by the
	// stage's actor.
	SigsVerified int
	// CERs counts the characteristic execution results (both kinds) in
	// the produced document.
	CERs int
	// Alpha is the receive-side decrypt+verify time of this stage (the
	// paper's α covers AEA and TFC).
	Alpha time.Duration
	// Beta is the AEA's encrypt+embed time (empty for TFC rows).
	Beta time.Duration
	// Gamma is the TFC's encrypt+stamp+sign time (empty for AEA rows).
	Gamma time.Duration
	// Sigma is the produced document's size in bytes.
	Sigma int
}

// RunTable2 executes the Figure 9B workflow under the advanced operational
// model reps times and returns the averaged measurements.
func RunTable2(bits, reps int) ([]Table2Row, error) {
	if reps <= 0 {
		reps = 1
	}
	env := testenv.Fig9(bits)
	def := wfdef.Fig9B()
	steps := fig9Steps()

	rows := make([]Table2Row, 2*len(steps)+1)
	rows[0] = Table2Row{Doc: "Initial", Stage: "designer"}
	for i, s := range steps {
		rows[1+2*i] = Table2Row{Doc: "X̄_" + s.act + fmt.Sprintf("(%d)", s.iter), Stage: "AEA"}
		rows[2+2*i] = Table2Row{Doc: docName(s.act, s.iter), Stage: "TFC"}
	}

	for rep := 0; rep < reps; rep++ {
		agents := map[string]*aea.AEA{}
		for act, p := range wfdef.Fig9Participants {
			agents[act] = aea.New(env.KeyOf(p), env.Registry)
		}
		server := tfc.New(env.KeyOf("tfc@cloud"), env.Registry, time.Now)
		initial, err := document.New(def, env.KeyOf("designer@acme"), testenv.ProcessID(), time.Now())
		if err != nil {
			return nil, err
		}
		rows[0].Sigma += initial.Size()

		inbox := map[string]*document.Document{"A": initial}
		for i, s := range steps {
			doc := inbox[s.act]
			if doc == nil {
				return nil, fmt.Errorf("bench: no document for %s#%d", s.act, s.iter)
			}
			// AEA stage.
			t0 := time.Now()
			session, err := agents[s.act].Open(doc, s.act)
			if err != nil {
				return nil, fmt.Errorf("bench: open %s#%d: %w", s.act, s.iter, err)
			}
			aeaAlpha := time.Since(t0)
			t1 := time.Now()
			interm, err := session.CompleteToTFC(s.inputs)
			if err != nil {
				return nil, fmt.Errorf("bench: to-tfc %s#%d: %w", s.act, s.iter, err)
			}
			aeaBeta := time.Since(t1)

			aeaRow := &rows[1+2*i]
			aeaRow.Alpha += aeaAlpha
			aeaRow.Beta += aeaBeta
			aeaRow.Sigma += interm.Size()
			aeaRow.SigsVerified = session.VerifiedSignatures
			aeaRow.CERs = len(interm.CERs())

			// TFC stage.
			out, err := server.Process(interm)
			if err != nil {
				return nil, fmt.Errorf("bench: tfc %s#%d: %w", s.act, s.iter, err)
			}
			tfcRow := &rows[2+2*i]
			tfcRow.Alpha += out.VerifyDuration
			tfcRow.Gamma += out.EncryptSignDuration
			tfcRow.Sigma += out.Doc.Size()
			tfcRow.SigsVerified = out.VerifiedSignatures
			tfcRow.CERs = len(out.Doc.CERs())

			for to, d := range out.Routed {
				if existing := inbox[to]; existing != nil && to != s.act && hasNewCERs(existing, d) {
					merged, err := document.Merge(existing, d)
					if err != nil {
						return nil, err
					}
					inbox[to] = merged
				} else {
					inbox[to] = d
				}
			}
			delete(inbox, s.act)
			if d, again := out.Routed[s.act]; again {
				inbox[s.act] = d
			}
		}
	}
	for i := range rows {
		rows[i].Alpha /= time.Duration(reps)
		rows[i].Beta /= time.Duration(reps)
		rows[i].Gamma /= time.Duration(reps)
		rows[i].Sigma /= reps
	}
	return rows, nil
}

// FormatTable1 renders the rows in the paper's column layout.
func FormatTable1(rows []Table1Row) string {
	out := fmt.Sprintf("%-10s %6s %6s %12s %12s %10s\n", "Document", "#sigs", "#CERs", "alpha", "beta", "Sigma(B)")
	for _, r := range rows {
		out += fmt.Sprintf("%-10s %6d %6d %12s %12s %10d\n",
			r.Doc, r.SigsVerified, r.CERs, fmtDur(r.Alpha), fmtDur(r.Beta), r.Sigma)
	}
	return out
}

// FormatTable2 renders the rows in the paper's column layout.
func FormatTable2(rows []Table2Row) string {
	out := fmt.Sprintf("%-10s %-5s %6s %6s %12s %12s %12s %10s\n",
		"Document", "stage", "#sigs", "#CERs", "alpha", "beta", "gamma", "Sigma(B)")
	for _, r := range rows {
		out += fmt.Sprintf("%-10s %-5s %6d %6d %12s %12s %12s %10d\n",
			r.Doc, r.Stage, r.SigsVerified, r.CERs, fmtDur(r.Alpha), fmtDur(r.Beta), fmtDur(r.Gamma), r.Sigma)
	}
	return out
}

func fmtDur(d time.Duration) string {
	if d == 0 {
		return "-"
	}
	return fmt.Sprintf("%.4fms", float64(d.Microseconds())/1000)
}
