package bench

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"time"

	"dra4wfms/internal/chaos"
	"dra4wfms/internal/httpapi"
	"dra4wfms/internal/pool"
	"dra4wfms/internal/poolcluster"
	"dra4wfms/internal/relay"
)

// The chaos experiment drives the cluster through the failure modes the
// robustness work exists for — partition, slow node, flapping membership,
// and 2× overload — with every fault injected through the deterministic
// chaos.Network, so a scenario replays byte-identically from its seed.
// Each scenario's verdict rides the trajectory ratchet: zero
// acknowledged-write loss is enforced here (the run errors otherwise),
// and the latency/recovery numbers land in BENCH_<n>.json where
// `drabench -compare` refuses quiet regressions.

// ChaosRow is one chaos scenario's measured outcome. Durations serialize
// as integer nanoseconds for the trajectory ratchet.
type ChaosRow struct {
	Scenario string `json:"scenario"`
	Seed     int64  `json:"seed"`
	// AckedWrites/LostWrites carry the zero-loss guarantee: RunChaos
	// errors when LostWrites is nonzero, so recorded rows always show 0.
	AckedWrites int `json:"ackedWrites,omitempty"`
	LostWrites  int `json:"lostWrites"`
	// FailoverLatency is the one write that pays for failure detection
	// and promotion inline (partition and flapping scenarios).
	FailoverLatency time.Duration `json:"failoverLatency,omitempty"`
	// Recovery is how long after healing the fault the cluster took to
	// re-converge (auto-rejoin + replica catch-up).
	Recovery  time.Duration `json:"recovery,omitempty"`
	MeanWrite time.Duration `json:"meanWrite,omitempty"`
	MaxStall  time.Duration `json:"maxStall,omitempty"`
	// Served/Shed/GoodputRatio belong to the overload scenario: how many
	// requests got 2xx vs 429 at 2× offered load, and goodput under
	// overload relative to the unloaded run (want >= 0.8).
	Served       int64   `json:"served,omitempty"`
	Shed         int64   `json:"shed,omitempty"`
	GoodputRatio float64 `json:"goodputRatio,omitempty"`
}

// chaosCluster builds a 3-node clustered pool whose every coordinator →
// node hop runs through the chaos network under the source name "coord".
func chaosCluster(net *chaos.Network, writes int) (*poolcluster.Cluster, []string, func(int) string, error) {
	const nodeCount = 3
	ids := make([]string, 0, nodeCount)
	refs := make([]poolcluster.NodeRef, 0, nodeCount)
	for i := 0; i < nodeCount; i++ {
		id := fmt.Sprintf("pool-%d", i+1)
		cl, err := pool.NewCluster([]string{id}, 0)
		if err != nil {
			return nil, nil, nil, err
		}
		tbl, err := cl.CreateTable("dra4wfms_documents",
			pool.FamilySpec{Name: "doc", MaxVersions: 3},
			pool.FamilySpec{Name: "meta", MaxVersions: 1})
		if err != nil {
			return nil, nil, nil, err
		}
		ids = append(ids, id)
		refs = append(refs, net.NodeRef("coord", poolcluster.NewNode(id, tbl)))
	}
	rowOf := func(i int) string { return fmt.Sprintf("proc-%08d", i) }
	var bounds []string
	for k := 1; k <= 4; k++ {
		bounds = append(bounds, rowOf(writes*k/5))
	}
	c, err := poolcluster.New(refs, poolcluster.Config{
		Replicas:   2,
		Boundaries: bounds,
		// Snappy repair so recovery measures convergence, not the
		// production pacemaker interval.
		RepairInterval: 10 * time.Millisecond,
		Relay: relay.Config{
			Backoff: relay.BackoffPolicy{Base: 2 * time.Millisecond, Cap: 20 * time.Millisecond},
			Breaker: relay.BreakerPolicy{Threshold: 1000, Cooldown: 10 * time.Millisecond, Jitter: 0.2},
			Budget:  relay.BudgetPolicy{Burst: 50, ProbeInterval: 20 * time.Millisecond},
		},
	})
	if err != nil {
		return nil, nil, nil, err
	}
	return c, ids, rowOf, nil
}

// driveWrites writes rows [0, writes) through s, calling hook before each
// write. Every Put must be acknowledged; read-your-writes is spot-checked
// on each row.
func driveWrites(s *poolcluster.Session, rowOf func(int) string, writes int, payload []byte, hook func(i int)) (mean, maxStall time.Duration, latencies []time.Duration, err error) {
	var total time.Duration
	latencies = make([]time.Duration, 0, writes)
	for i := 0; i < writes; i++ {
		if hook != nil {
			hook(i)
		}
		row := rowOf(i)
		t0 := time.Now()
		if perr := s.Put(row, "doc", "content", payload); perr != nil {
			return 0, 0, nil, fmt.Errorf("write %s not acknowledged: %w", row, perr)
		}
		d := time.Since(t0)
		total += d
		latencies = append(latencies, d)
		if d > maxStall {
			maxStall = d
		}
		if got, ok := s.Get(row, "doc", "content"); !ok || !bytes.Equal(got, payload) {
			return 0, 0, nil, fmt.Errorf("read-your-writes violated at %s (ok=%v)", row, ok)
		}
	}
	return total / time.Duration(writes), maxStall, latencies, nil
}

// settleAndAudit heals nothing itself: it quiesces the cluster and then
// reads every row back, returning the count that failed — the
// acknowledged-write-loss audit every cluster scenario ends with.
func settleAndAudit(c *poolcluster.Cluster, s *poolcluster.Session, rowOf func(int) string, writes int) (recovery time.Duration, lost int, err error) {
	t0 := time.Now()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if qerr := c.Quiesce(ctx); qerr != nil {
		return 0, 0, fmt.Errorf("cluster did not re-converge: %w", qerr)
	}
	recovery = time.Since(t0)
	for i := 0; i < writes; i++ {
		if _, ok := s.Get(rowOf(i), "doc", "content"); !ok {
			lost++
		}
	}
	return recovery, lost, nil
}

// runPartitionPrimary partitions the primary of the mid-run region at the
// halfway write, keeps writing through the inline failover, heals the
// partition, and verifies the node auto-rejoins with zero acked loss.
func runPartitionPrimary(seed int64, writes int) (*ChaosRow, error) {
	net := chaos.NewNetwork(seed)
	c, _, rowOf, err := chaosCluster(net, writes)
	if err != nil {
		return nil, err
	}
	defer c.Close()
	s := c.NewSession()
	payload := bytes.Repeat([]byte("dra4wfms chaos payload block... "), 32)

	cut := writes / 2
	_, victim := c.PrimaryFor(rowOf(cut))
	if victim == "" {
		return nil, fmt.Errorf("chaos: no primary for row %s", rowOf(cut))
	}
	var failover time.Duration
	mean, maxStall, lats, err := driveWrites(s, rowOf, writes, payload, func(i int) {
		if i == cut {
			// Asymmetric total isolation: the node is healthy but no
			// packet reaches it — the partition case, not the crash case.
			net.Isolate(victim)
		}
	})
	if err != nil {
		return nil, fmt.Errorf("partition_primary: %w", err)
	}
	failover = lats[cut]

	// Heal; the repair loop must readmit the victim on its own.
	net.HealNode(victim)
	recovery, lost, err := settleAndAudit(c, s, rowOf, writes)
	if err != nil {
		return nil, fmt.Errorf("partition_primary: %w", err)
	}
	if lost > 0 {
		return nil, fmt.Errorf("partition_primary: %d acknowledged writes lost", lost)
	}
	alive := 0
	for _, n := range c.Status().Nodes {
		if n.Alive {
			alive++
		}
	}
	if alive != 3 {
		return nil, fmt.Errorf("partition_primary: healed node not auto-rejoined (%d/3 alive)", alive)
	}
	return &ChaosRow{
		Scenario: "partition_primary", Seed: seed,
		AckedWrites: writes, LostWrites: lost,
		FailoverLatency: failover, Recovery: recovery,
		MeanWrite: mean, MaxStall: maxStall,
	}, nil
}

// runSlowBackup drags one backup's hops by a fixed delay: acked writes
// must stay fast (replication is asynchronous) and nothing may be lost.
func runSlowBackup(seed int64, writes int) (*ChaosRow, error) {
	net := chaos.NewNetwork(seed)
	c, ids, rowOf, err := chaosCluster(net, writes)
	if err != nil {
		return nil, err
	}
	defer c.Close()
	s := c.NewSession()
	payload := bytes.Repeat([]byte("dra4wfms chaos payload block... "), 32)

	// Slow a node that does NOT lead the first-written region, so the
	// inline (primary) path stays clean and the drag lands on the
	// replication fan-out.
	_, firstPrimary := c.PrimaryFor(rowOf(0))
	slow := ""
	for _, id := range ids {
		if id != firstPrimary {
			slow = id
			break
		}
	}
	net.SlowNode(slow, 3*time.Millisecond)

	mean, maxStall, _, err := driveWrites(s, rowOf, writes, payload, nil)
	if err != nil {
		return nil, fmt.Errorf("slow_backup: %w", err)
	}
	net.HealNode(slow)
	recovery, lost, err := settleAndAudit(c, s, rowOf, writes)
	if err != nil {
		return nil, fmt.Errorf("slow_backup: %w", err)
	}
	if lost > 0 {
		return nil, fmt.Errorf("slow_backup: %d acknowledged writes lost", lost)
	}
	return &ChaosRow{
		Scenario: "slow_backup", Seed: seed,
		AckedWrites: writes, LostWrites: lost,
		Recovery: recovery, MeanWrite: mean, MaxStall: maxStall,
	}, nil
}

// runFlappingNode isolates and heals the same node repeatedly while
// writes flow — the pathological membership churn case. The repair
// loop's auto-rejoin must keep readmitting it, and no acknowledged write
// may be lost across any flap.
func runFlappingNode(seed int64, writes int) (*ChaosRow, error) {
	net := chaos.NewNetwork(seed)
	c, ids, rowOf, err := chaosCluster(net, writes)
	if err != nil {
		return nil, err
	}
	defer c.Close()
	s := c.NewSession()
	payload := bytes.Repeat([]byte("dra4wfms chaos payload block... "), 32)

	victim := ids[len(ids)-1]
	period := writes / 6
	if period < 2 {
		period = 2
	}
	var worstFlap time.Duration
	mean, maxStall, lats, err := driveWrites(s, rowOf, writes, payload, func(i int) {
		if i%period == 0 && i > 0 {
			net.Isolate(victim)
		} else if i%period == period/2 {
			net.HealNode(victim)
		}
	})
	if err != nil {
		return nil, fmt.Errorf("flapping_node: %w", err)
	}
	for i, d := range lats {
		if i > 0 && i%period == 0 && d > worstFlap {
			worstFlap = d // the write that lands right on an isolation
		}
	}
	net.HealNode(victim)
	recovery, lost, err := settleAndAudit(c, s, rowOf, writes)
	if err != nil {
		return nil, fmt.Errorf("flapping_node: %w", err)
	}
	if lost > 0 {
		return nil, fmt.Errorf("flapping_node: %d acknowledged writes lost", lost)
	}
	return &ChaosRow{
		Scenario: "flapping_node", Seed: seed,
		AckedWrites: writes, LostWrites: lost,
		FailoverLatency: worstFlap, Recovery: recovery,
		MeanWrite: mean, MaxStall: maxStall,
	}, nil
}

// runOverload measures admission control under 2× offered load. The
// server simulates the verify-bound tier: a fixed worker pool each
// request occupies for a fixed service time, fronted by the admission
// gate. Goodput at 2× load must stay close to the unloaded goodput —
// the gate sheds the excess with 429 instead of letting queues grow.
func runOverload(seed int64) (*ChaosRow, error) {
	const (
		workers     = 8
		service     = time.Millisecond
		perClient   = 100
		maxInFlight = 2 * workers
	)
	makeHandler := func() (http.HandlerFunc, *atomic.Int64) {
		var served atomic.Int64
		slots := make(chan struct{}, workers)
		return func(w http.ResponseWriter, r *http.Request) {
			slots <- struct{}{}
			time.Sleep(service)
			<-slots
			served.Add(1)
			w.WriteHeader(http.StatusOK)
		}, &served
	}
	// drive fires clients×perClient requests and returns goodput (2xx/s)
	// and how many were shed (429).
	drive := func(h http.HandlerFunc, clients int) (goodput float64, ok, shed int64) {
		var okN, shedN atomic.Int64
		var wg sync.WaitGroup
		t0 := time.Now()
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < perClient; i++ {
					rec := httptest.NewRecorder()
					h(rec, httptest.NewRequest(http.MethodPost, "/v1/documents", nil))
					switch rec.Code {
					case http.StatusOK:
						okN.Add(1)
					case http.StatusTooManyRequests:
						shedN.Add(1)
					}
				}
			}()
		}
		wg.Wait()
		elapsed := time.Since(t0)
		return float64(okN.Load()) / elapsed.Seconds(), okN.Load(), shedN.Load()
	}

	// Unloaded: as many clients as workers — the gate never engages.
	base, _ := makeHandler()
	adm := httpapi.NewAdmission(httpapi.AdmissionConfig{MaxInFlight: maxInFlight, WriteShare: 1})
	baseline, _, baseShed := drive(adm.Middleware(httpapi.ClassWrite, base), workers)
	if baseShed != 0 {
		return nil, fmt.Errorf("overload: baseline run shed %d requests", baseShed)
	}

	// 2× overload: double the offered concurrency beyond capacity.
	over, _ := makeHandler()
	adm2 := httpapi.NewAdmission(httpapi.AdmissionConfig{MaxInFlight: maxInFlight, WriteShare: 1})
	goodput, served, shed := drive(adm2.Middleware(httpapi.ClassWrite, over), 4*workers)
	if shed == 0 {
		return nil, fmt.Errorf("overload: 2x load shed nothing — the gate never engaged")
	}
	ratio := goodput / baseline
	if ratio < 0.8 {
		return nil, fmt.Errorf("overload: goodput under 2x load fell to %.0f%% of unloaded (want >= 80%%)", ratio*100)
	}
	return &ChaosRow{
		Scenario: "overload_2x", Seed: seed,
		Served: served, Shed: shed, GoodputRatio: ratio,
	}, nil
}

// RunChaos runs every chaos scenario with the given seed and write count,
// failing the whole bench run on any lost acknowledged write, missed
// rejoin, or collapsed goodput.
func RunChaos(seed int64, writes int) ([]ChaosRow, error) {
	if writes < 20 {
		return nil, fmt.Errorf("bench: chaos needs >=20 writes, got %d", writes)
	}
	var rows []ChaosRow
	for _, fn := range []func() (*ChaosRow, error){
		func() (*ChaosRow, error) { return runPartitionPrimary(seed, writes) },
		func() (*ChaosRow, error) { return runSlowBackup(seed, writes/2) },
		func() (*ChaosRow, error) { return runFlappingNode(seed, writes) },
		func() (*ChaosRow, error) { return runOverload(seed) },
	} {
		row, err := fn()
		if err != nil {
			return nil, err
		}
		rows = append(rows, *row)
	}
	return rows, nil
}
