package bench

import (
	"bytes"
	"context"
	"fmt"
	"time"

	"dra4wfms/internal/pool"
	"dra4wfms/internal/poolcluster"
	"dra4wfms/internal/relay"
)

// PoolFailoverResult measures the clustered pool's headline guarantee:
// killing a pool node mid-run loses no acknowledged write, and exactly
// one write pays the failover stall (suspicion + promotion + retry).
// Durations serialize as integer nanoseconds for the trajectory ratchet.
type PoolFailoverResult struct {
	Nodes       int `json:"nodes"`
	Replicas    int `json:"replicas"`
	Regions     int `json:"regions"`
	AckedWrites int `json:"ackedWrites"`
	// LostWrites counts acknowledged rows that failed to read back after
	// the kill and repair settled. RunPoolFailover errors when it is
	// nonzero, so a recorded trajectory always carries 0 here — the field
	// exists to make the guarantee visible in BENCH_<n>.json.
	LostWrites   int    `json:"lostWrites"`
	KilledNode   string `json:"killedNode"`
	KilledRegion string `json:"killedRegion"`
	// FailoverLatency is the duration of the write issued immediately
	// after the kill into the dead node's region — the one write that
	// pays for failure detection and primary promotion inline.
	FailoverLatency time.Duration `json:"failoverLatency"`
	// MaxStall is the slowest single acknowledged write of the whole run
	// (an upper bound on FailoverLatency plus any repair interference).
	MaxStall time.Duration `json:"maxStall"`
	// MeanWrite is the mean acknowledged-write latency including the
	// failover window.
	MeanWrite time.Duration `json:"meanWrite"`
}

// RunPoolFailover drives writes through a coordinator over an in-process
// fleet of pool nodes, kills the primary of the mid-run row's region at
// the halfway point, and keeps writing: every Put must still be
// acknowledged, read-your-writes must hold across the kill, and after
// repair settles every acknowledged row must read back from the
// survivors. Returns an error — failing the whole bench run — if any
// acknowledged write is lost or any write fails.
func RunPoolFailover(nodeCount, writes int) (*PoolFailoverResult, error) {
	if nodeCount < 3 {
		return nil, fmt.Errorf("bench: failover needs >=3 nodes so replicas=2 survives a kill, got %d", nodeCount)
	}
	if writes < 10 {
		return nil, fmt.Errorf("bench: failover needs >=10 writes, got %d", writes)
	}

	nodes := make(map[string]*poolcluster.Node, nodeCount)
	refs := make([]poolcluster.NodeRef, 0, nodeCount)
	for i := 0; i < nodeCount; i++ {
		id := fmt.Sprintf("pool-%d", i+1)
		cl, err := pool.NewCluster([]string{id}, 0)
		if err != nil {
			return nil, err
		}
		tbl, err := cl.CreateTable("dra4wfms_documents",
			pool.FamilySpec{Name: "doc", MaxVersions: 3},
			pool.FamilySpec{Name: "meta", MaxVersions: 1})
		if err != nil {
			return nil, err
		}
		node := poolcluster.NewNode(id, tbl)
		nodes[id] = node
		refs = append(refs, node)
	}

	// Split the proc- keyspace into five spans at the write-count
	// quintiles, so the sequential row stream crosses region (and
	// therefore primary) boundaries as it advances.
	rowOf := func(i int) string { return fmt.Sprintf("proc-%08d", i) }
	var bounds []string
	for k := 1; k <= 4; k++ {
		bounds = append(bounds, rowOf(writes*k/5))
	}
	c, err := poolcluster.New(refs, poolcluster.Config{
		Replicas:   2,
		Boundaries: bounds,
		// Snappy redelivery: the measurement is failover latency, not the
		// production backoff schedule.
		Relay: relay.Config{
			Backoff: relay.BackoffPolicy{Base: 2 * time.Millisecond, Cap: 20 * time.Millisecond},
			Breaker: relay.BreakerPolicy{Threshold: 1000, Cooldown: 10 * time.Millisecond},
		},
	})
	if err != nil {
		return nil, err
	}
	defer c.Close()
	s := c.NewSession()

	// ~1 KiB payload: enough to make replication frames non-trivial
	// without drowning the latency signal in memcpy.
	payload := bytes.Repeat([]byte("dra4wfms failover payload block "), 32)

	killAt := writes / 2
	killRegion, killNode := c.PrimaryFor(rowOf(killAt))
	if killNode == "" {
		return nil, fmt.Errorf("bench: no primary for row %s", rowOf(killAt))
	}

	var total, maxStall, failover time.Duration
	acked := 0
	for i := 0; i < writes; i++ {
		if i == killAt {
			// Simulated process death: the node stops answering, exactly as
			// a kill -9 looks to the coordinator. The very next Put targets
			// its region and must fail over inline.
			nodes[killNode].Down()
		}
		row := rowOf(i)
		t0 := time.Now()
		if err := s.Put(row, "doc", "content", payload); err != nil {
			return nil, fmt.Errorf("bench: write %s not acknowledged after killing %s: %w", row, killNode, err)
		}
		d := time.Since(t0)
		total += d
		if d > maxStall {
			maxStall = d
		}
		if i == killAt {
			failover = d
		}
		acked++
		// Read-your-writes must hold through the failover window.
		if got, ok := s.Get(row, "doc", "content"); !ok || !bytes.Equal(got, payload) {
			return nil, fmt.Errorf("bench: read-your-writes violated at %s (ok=%v)", row, ok)
		}
	}

	// Let repair settle: the dead node demoted everywhere, surviving
	// replicas caught up, re-replication done.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := c.Quiesce(ctx); err != nil {
		return nil, fmt.Errorf("bench: post-kill repair did not settle: %w", err)
	}

	// The guarantee: zero acknowledged-write loss. Every acked row must
	// read back from the survivors.
	lost := 0
	for i := 0; i < writes; i++ {
		if _, ok := s.Get(rowOf(i), "doc", "content"); !ok {
			lost++
		}
	}
	if lost > 0 {
		return nil, fmt.Errorf("bench: %d of %d acknowledged writes lost after failover", lost, acked)
	}

	return &PoolFailoverResult{
		Nodes:           nodeCount,
		Replicas:        c.Replicas(),
		Regions:         len(c.Status().Regions),
		AckedWrites:     acked,
		LostWrites:      lost,
		KilledNode:      killNode,
		KilledRegion:    killRegion,
		FailoverLatency: failover,
		MaxStall:        maxStall,
		MeanWrite:       total / time.Duration(acked),
	}, nil
}
