package bench

import (
	"fmt"
	"sort"
	"time"

	"dra4wfms/internal/aea"
	"dra4wfms/internal/cloudsim"
	"dra4wfms/internal/document"
	"dra4wfms/internal/dsig"
	"dra4wfms/internal/engine"
	"dra4wfms/internal/monitor"
	"dra4wfms/internal/pool"
	"dra4wfms/internal/testenv"
	"dra4wfms/internal/tfc"
	"dra4wfms/internal/wfdef"
	"dra4wfms/internal/xmlenc"
	"dra4wfms/internal/xmltree"
)

// medianDuration returns the median of samples (destructively sorting).
// Medians replace means in the timed ablations: a single scheduler stall
// used to make the 8-CER row report more than the 16-CER one.
func medianDuration(samples []time.Duration) time.Duration {
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	return samples[len(samples)/2]
}

// timeMedian runs fn reps times after warmup throwaway runs and returns
// the median duration.
func timeMedian(warmup, reps int, fn func() error) (time.Duration, error) {
	for i := 0; i < warmup; i++ {
		if err := fn(); err != nil {
			return 0, err
		}
	}
	if reps < 1 {
		reps = 1
	}
	samples := make([]time.Duration, 0, reps)
	for i := 0; i < reps; i++ {
		t0 := time.Now()
		if err := fn(); err != nil {
			return 0, err
		}
		samples = append(samples, time.Since(t0))
	}
	return medianDuration(samples), nil
}

// --- ablation: signature-cascade depth -----------------------------------------

// CascadeRow measures verification cost against chain length — the linear
// α term Tables 1 and 2 exhibit, isolated. VerifyTime is the
// pre-optimization baseline (one worker, no verified-prefix cache);
// WarmVerifyTime re-verifies the same document through a warm prefix
// cache — the before/after of the verification fast path.
type CascadeRow struct {
	CERs           int
	VerifyTime     time.Duration
	WarmVerifyTime time.Duration
	DocBytes       int
	ScopeTime      time.Duration // Algorithm 1 over the last CER
	ScopeSize      int
}

// linearChain builds a document with a chain of n cascade-signed CERs.
func linearChain(env *testenv.Env, n int) (*document.Document, error) {
	docs, err := chainDocs(env, n)
	if err != nil {
		return nil, err
	}
	return docs[len(docs)-1], nil
}

// chainDocs builds an n-activity linear chain and returns the document as
// it stood after every hop: docs[i] carries i+1 CERs — the sequence of
// documents the verifying tiers actually see as the workflow routes.
func chainDocs(env *testenv.Env, n int) ([]*document.Document, error) {
	b := wfdef.NewBuilder("chain", "designer@acme")
	ids := make([]string, n)
	for i := 0; i < n; i++ {
		ids[i] = fmt.Sprintf("S%03d", i)
		b = b.Activity(ids[i], "", "alice@acme").Response("v", "string", false).Join(wfdef.JoinNone).Done()
	}
	b = b.Start(ids[0])
	for i := 1; i < n; i++ {
		b = b.Edge(ids[i-1], ids[i])
	}
	def, err := b.End(ids[n-1]).DefaultReaders("alice@acme").Build()
	if err != nil {
		return nil, err
	}
	// Chains reuse duplicate response variable names across activities;
	// that is fine (each CER stores its own field).
	doc, err := document.New(def, env.KeyOf("designer@acme"), testenv.ProcessID(), time.Now())
	if err != nil {
		return nil, err
	}
	agent := aea.New(env.KeyOf("alice@acme"), env.Registry)
	docs := make([]*document.Document, 0, n)
	cur := doc
	for i := 0; i < n; i++ {
		out, err := agent.Execute(cur, ids[i], aea.Inputs{"v": fmt.Sprintf("result %d", i)}, time.Now())
		if err != nil {
			return nil, err
		}
		if out.Completed {
			docs = append(docs, out.Doc)
			break
		}
		cur = out.Routed[ids[i+1]]
		docs = append(docs, cur)
	}
	return docs, nil
}

// RunCascadeDepth measures VerifyAll and Algorithm 1 cost for chains of
// the given lengths. Each depth is timed with one warm-up pass and
// median-of-reps (single-shot means made the ablation non-monotonic under
// scheduler noise). VerifyTime uses a serial, cache-less verifier — the
// paper's per-hop α; WarmVerifyTime re-verifies through a warm
// verified-prefix cache, the fast path's steady state.
func RunCascadeDepth(bits int, depths []int, reps int) ([]CascadeRow, error) {
	env := testenv.New(bits)
	env.MustRegister("designer@acme", "alice@acme")
	serial := &dsig.Verifier{Workers: 1}
	var rows []CascadeRow
	for _, n := range depths {
		doc, err := linearChain(env, n)
		if err != nil {
			return nil, err
		}
		verify, err := timeMedian(1, reps, func() error {
			_, err := doc.VerifyAllWith(serial, env.Registry)
			return err
		})
		if err != nil {
			return nil, err
		}
		warmed := &dsig.Verifier{Cache: dsig.NewCache(dsig.DefaultCacheSize)}
		warmVerify, err := timeMedian(1, reps, func() error {
			_, err := doc.VerifyAllWith(warmed, env.Registry)
			return err
		})
		if err != nil {
			return nil, err
		}

		lastID := fmt.Sprintf("cer-S%03d-0", n-1)
		t1 := time.Now()
		scope, err := doc.NonrepudiationScope(lastID)
		if err != nil {
			return nil, err
		}
		rows = append(rows, CascadeRow{
			CERs:           n,
			VerifyTime:     verify,
			WarmVerifyTime: warmVerify,
			DocBytes:       doc.Size(),
			ScopeTime:      time.Since(t1),
			ScopeSize:      len(scope),
		})
	}
	return rows, nil
}

// --- ablation: verified-prefix cache (the α-flattening table) -------------------

// VerifyCacheRow compares, for one chain depth, the cost of verifying the
// hop document three ways: the pre-optimization baseline, the parallel
// fast path with a cold cache, and the steady-state hop where every
// predecessor signature is already in the verified-prefix cache — the
// paper's Fig. 9 α curve before and after the fast path.
type VerifyCacheRow struct {
	CERs int
	// Sigs is the signature count in the hop document (CERs + designer).
	Sigs int
	// ColdSerial: one worker, no cache — every hop re-pays one RSA verify
	// per signature (the O(#sigs) α the paper measures).
	ColdSerial time.Duration
	// ColdFast: worker pool, but an empty cache (first document a fresh
	// tier ever sees).
	ColdFast time.Duration
	// WarmHop: the tier verified hops 1..k-1 earlier, so only the newest
	// signature pays RSA — α drops to O(new sigs) plus digest re-checks.
	WarmHop time.Duration
}

// RunVerifyCache routes one linear chain to the maximum requested depth,
// keeping the document after every hop, then measures each requested depth
// with warm-up and median-of-reps.
func RunVerifyCache(bits int, depths []int, reps int) ([]VerifyCacheRow, error) {
	if reps < 1 {
		reps = 1
	}
	env := testenv.New(bits)
	env.MustRegister("designer@acme", "alice@acme")
	maxDepth := 0
	for _, n := range depths {
		if n > maxDepth {
			maxDepth = n
		}
	}
	docs, err := chainDocs(env, maxDepth)
	if err != nil {
		return nil, err
	}
	var rows []VerifyCacheRow
	for _, n := range depths {
		doc := docs[n-1]
		serial := &dsig.Verifier{Workers: 1}
		nsigs := 0
		coldSerial, err := timeMedian(1, reps, func() error {
			var err error
			nsigs, err = doc.VerifyAllWith(serial, env.Registry)
			return err
		})
		if err != nil {
			return nil, err
		}
		coldFast, err := timeMedian(1, reps, func() error {
			// A fresh cache every run: cold by construction.
			v := &dsig.Verifier{Cache: dsig.NewCache(dsig.DefaultCacheSize)}
			_, err := doc.VerifyAllWith(v, env.Registry)
			return err
		})
		if err != nil {
			return nil, err
		}
		// WarmHop replays the tier's history per rep: a fresh cache is
		// warmed by verifying every predecessor hop OUTSIDE the timer, so
		// the timed verify of the final hop pays RSA only for the
		// signatures those hops did not carry — exactly the steady state
		// of a portal/TFC that saw the workflow grow hop by hop. The first
		// iteration is a warm-up (primes canonical memos) and is dropped.
		samples := make([]time.Duration, 0, reps)
		for r := 0; r < reps+1; r++ {
			v := &dsig.Verifier{Cache: dsig.NewCache(dsig.DefaultCacheSize)}
			for i := 0; i < n-1; i++ {
				if _, err := docs[i].VerifyAllWith(v, env.Registry); err != nil {
					return nil, err
				}
			}
			t0 := time.Now()
			if _, err := doc.VerifyAllWith(v, env.Registry); err != nil {
				return nil, err
			}
			if r > 0 {
				samples = append(samples, time.Since(t0))
			}
		}
		warmHop := medianDuration(samples)
		rows = append(rows, VerifyCacheRow{
			CERs:       n,
			Sigs:       nsigs,
			ColdSerial: coldSerial,
			ColdFast:   coldFast,
			WarmHop:    warmHop,
		})
	}
	return rows, nil
}

// --- ablation: element-wise vs whole-document encryption ------------------------

// ElementwiseRow compares the paper's element-wise encryption design
// against encrypting the whole result as one blob.
type ElementwiseRow struct {
	Fields int
	// ElementwiseEncrypt encrypts each field separately (possibly for
	// different readers).
	ElementwiseEncrypt time.Duration
	// WholeEncrypt encrypts the whole result once for ALL readers.
	WholeEncrypt time.Duration
	// ElementwiseDecryptOne decrypts a single needed field.
	ElementwiseDecryptOne time.Duration
	// WholeDecrypt must decrypt everything to read anything.
	WholeDecrypt time.Duration
	// ElementwiseBytes / WholeBytes compare ciphertext sizes.
	ElementwiseBytes int
	WholeBytes       int
}

// RunElementwiseVsWhole measures both designs for growing field counts.
func RunElementwiseVsWhole(bits int, fieldCounts []int) ([]ElementwiseRow, error) {
	env := testenv.New(bits)
	env.MustRegister("amy@x", "bob@x")
	amy := env.KeyOf("amy@x")
	recipA := xmlenc.Recipient{ID: "amy@x", Key: env.KeyOf("amy@x").Public()}
	recipB := xmlenc.Recipient{ID: "bob@x", Key: env.KeyOf("bob@x").Public()}

	var rows []ElementwiseRow
	for _, n := range fieldCounts {
		fields := make([]*xmltree.Node, n)
		whole := xmltree.NewElement("Result")
		for i := 0; i < n; i++ {
			fields[i] = document.Field(fmt.Sprintf("v%d", i), fmt.Sprintf("value number %d with some payload text", i))
			whole.AppendChild(fields[i].Clone())
		}

		t0 := time.Now()
		encs := make([]*xmltree.Node, n)
		for i, f := range fields {
			e, err := xmlenc.Encrypt(f, fmt.Sprintf("e%d", i), recipA, recipB)
			if err != nil {
				return nil, err
			}
			encs[i] = e
		}
		ewEnc := time.Since(t0)

		t1 := time.Now()
		wholeEnc, err := xmlenc.Encrypt(whole, "ew", recipA, recipB)
		if err != nil {
			return nil, err
		}
		wEnc := time.Since(t1)

		t2 := time.Now()
		if _, err := xmlenc.Decrypt(encs[n/2], amy); err != nil {
			return nil, err
		}
		ewDecOne := time.Since(t2)

		t3 := time.Now()
		if _, err := xmlenc.Decrypt(wholeEnc, amy); err != nil {
			return nil, err
		}
		wDec := time.Since(t3)

		ewBytes := 0
		for _, e := range encs {
			ewBytes += len(e.Canonical())
		}
		rows = append(rows, ElementwiseRow{
			Fields:                n,
			ElementwiseEncrypt:    ewEnc,
			WholeEncrypt:          wEnc,
			ElementwiseDecryptOne: ewDecOne,
			WholeDecrypt:          wDec,
			ElementwiseBytes:      ewBytes,
			WholeBytes:            len(wholeEnc.Canonical()),
		})
	}
	return rows, nil
}

// --- ablation: multi-recipient key wrapping --------------------------------------

// MultiRecipientRow measures the cost of granting k readers access to one
// element (one RSA-OAEP wrap per reader).
type MultiRecipientRow struct {
	Recipients  int
	EncryptTime time.Duration
	Bytes       int
}

// RunMultiRecipient measures element encryption for growing reader sets.
func RunMultiRecipient(bits int, counts []int) ([]MultiRecipientRow, error) {
	env := testenv.New(bits)
	var rows []MultiRecipientRow
	for _, k := range counts {
		recips := make([]xmlenc.Recipient, k)
		for i := 0; i < k; i++ {
			id := fmt.Sprintf("reader%03d@x", i)
			recips[i] = xmlenc.Recipient{ID: id, Key: env.KeyOf(id).Public()}
		}
		field := document.Field("v", "the confidential execution result")
		t0 := time.Now()
		enc, err := xmlenc.Encrypt(field, "e", recips...)
		if err != nil {
			return nil, err
		}
		rows = append(rows, MultiRecipientRow{
			Recipients:  k,
			EncryptTime: time.Since(t0),
			Bytes:       len(enc.Canonical()),
		})
	}
	return rows, nil
}

// --- claim: the TFC is not the bottleneck ----------------------------------------

// TFCThroughputResult compares the TFC's per-document processing time with
// the AEA's interactive path, supporting the paper's Section 4.1 claim.
type TFCThroughputResult struct {
	Documents        int
	AEAMeanPerDoc    time.Duration // Open + CompleteToTFC
	TFCMeanPerDoc    time.Duration // Process
	TFCDocsPerSecond float64
}

// RunTFCThroughput runs n independent single-activity instances through
// one TFC server and reports mean per-document times on both sides.
func RunTFCThroughput(bits, n int) (*TFCThroughputResult, error) {
	env := testenv.New(bits)
	env.MustRegister("designer@acme", "alice@acme", "tfc@cloud")
	def, err := wfdef.NewBuilder("single", "designer@acme").
		Activity("A", "", "alice@acme").Response("v", "string", true).Done().
		Start("A").End("A").
		DefaultReaders("alice@acme").
		TFC("tfc@cloud").
		Build()
	if err != nil {
		return nil, err
	}
	server := tfc.New(env.KeyOf("tfc@cloud"), env.Registry, time.Now)
	agent := aea.New(env.KeyOf("alice@acme"), env.Registry)

	var aeaTotal, tfcTotal time.Duration
	for i := 0; i < n; i++ {
		doc, err := document.New(def, env.KeyOf("designer@acme"), testenv.ProcessID(), time.Now())
		if err != nil {
			return nil, err
		}
		t0 := time.Now()
		interm, err := agent.ExecuteToTFC(doc, "A", aea.Inputs{"v": fmt.Sprintf("result %d", i)})
		if err != nil {
			return nil, err
		}
		aeaTotal += time.Since(t0)
		t1 := time.Now()
		if _, err := server.Process(interm); err != nil {
			return nil, err
		}
		tfcTotal += time.Since(t1)
	}
	res := &TFCThroughputResult{
		Documents:     n,
		AEAMeanPerDoc: aeaTotal / time.Duration(n),
		TFCMeanPerDoc: tfcTotal / time.Duration(n),
	}
	if res.TFCMeanPerDoc > 0 {
		res.TFCDocsPerSecond = float64(time.Second) / float64(res.TFCMeanPerDoc)
	}
	return res, nil
}

// --- scalability: centralized engine vs engine-less DRA4WfMS ---------------------

// ScalabilityRow is one load point of the simulated deployment comparison.
type ScalabilityRow struct {
	Label        string
	Instances    int
	MeanLatency  time.Duration
	P99Latency   time.Duration
	Makespan     time.Duration
	ServerMeanWt time.Duration // queueing delay at the shared server tier
}

// RunScalabilityDistributed adds the Figure 1B baseline to the comparison:
// the five activities are spread over three engines (A,B1 → e1; B2,C → e2;
// D → e3) and the process instance migrates whenever consecutive steps
// live on different engines, paying migrationLat per transfer on top of
// the engine service time. Within one pass the path A→B1 (e1), B1→B2
// (migrate), B2→C (e2), C→D (migrate) costs two migrations.
func RunScalabilityDistributed(loads []int, engineSvc, migrationLat time.Duration) []ScalabilityRow {
	const activities = 5
	// engine index per step of the pass.
	stepEngine := []int{0, 0, 1, 1, 2}
	var rows []ScalabilityRow
	for _, n := range loads {
		sim := cloudsim.NewSim()
		engines := []*cloudsim.Station{
			cloudsim.NewStation(sim, "e1"),
			cloudsim.NewStation(sim, "e2"),
			cloudsim.NewStation(sim, "e3"),
		}
		latencies := make([]time.Duration, 0, n)
		for i := 0; i < n; i++ {
			start := time.Duration(i) * time.Millisecond
			sim.Schedule(start, func() {
				begin := sim.Now()
				var stepDone func(step int)
				stepDone = func(step int) {
					if step == activities {
						latencies = append(latencies, sim.Now()-begin)
						return
					}
					run := func() {
						engines[stepEngine[step]].Submit(engineSvc, func(time.Duration) { stepDone(step + 1) })
					}
					if step > 0 && stepEngine[step] != stepEngine[step-1] {
						// Instance migration over the network first.
						sim.Schedule(migrationLat, run)
					} else {
						run()
					}
				}
				stepDone(0)
			})
		}
		makespan := sim.Run()
		var meanWait time.Duration
		for _, e := range engines {
			meanWait += e.MeanWait()
		}
		meanWait /= time.Duration(len(engines))
		rows = append(rows, ScalabilityRow{
			Label: "engine-distributed", Instances: n,
			MeanLatency: cloudsim.Mean(latencies), P99Latency: cloudsim.Percentile(latencies, 99),
			Makespan: makespan, ServerMeanWt: meanWait,
		})
	}
	return rows
}

// RunScalability compares, in the discrete-event simulator, a centralized
// engine-based WfMS (every one of the five activity executions of a
// Figure 9 pass is served by ONE engine) against the engine-less DRA4WfMS
// advanced model (activity execution happens on the participants' own
// machines; only the lightweight TFC stamp-and-forward is shared, spread
// across tfcServers instances). Service times are taken from real
// measurements: pass the per-activity engine time and the AEA/TFC times
// from RunTable1/RunTable2 (or use calibration defaults).
func RunScalability(loads []int, engineSvc, aeaSvc, tfcSvc time.Duration, tfcServers int) []ScalabilityRow {
	if tfcServers <= 0 {
		tfcServers = 1
	}
	var rows []ScalabilityRow
	const activities = 5

	for _, n := range loads {
		// Centralized: all steps of all instances share one engine.
		{
			sim := cloudsim.NewSim()
			eng := cloudsim.NewStation(sim, "engine")
			latencies := make([]time.Duration, 0, n)
			for i := 0; i < n; i++ {
				start := time.Duration(i) * time.Millisecond // staggered arrivals
				sim.Schedule(start, func() {
					begin := sim.Now()
					var stepDone func(step int)
					stepDone = func(step int) {
						if step == activities {
							latencies = append(latencies, sim.Now()-begin)
							return
						}
						eng.Submit(engineSvc, func(time.Duration) { stepDone(step + 1) })
					}
					stepDone(0)
				})
			}
			makespan := sim.Run()
			rows = append(rows, ScalabilityRow{
				Label: "engine-centralized", Instances: n,
				MeanLatency: cloudsim.Mean(latencies), P99Latency: cloudsim.Percentile(latencies, 99),
				Makespan: makespan, ServerMeanWt: eng.MeanWait(),
			})
		}
		// DRA4WfMS advanced: each instance's AEA work runs on its own
		// participant machines (one station per instance, no sharing);
		// only the TFC tier is shared.
		{
			sim := cloudsim.NewSim()
			tfcs := make([]*cloudsim.Station, tfcServers)
			for i := range tfcs {
				tfcs[i] = cloudsim.NewStation(sim, fmt.Sprintf("tfc-%d", i))
			}
			latencies := make([]time.Duration, 0, n)
			for i := 0; i < n; i++ {
				i := i
				participant := cloudsim.NewStation(sim, fmt.Sprintf("participant-%d", i))
				start := time.Duration(i) * time.Millisecond
				sim.Schedule(start, func() {
					begin := sim.Now()
					var stepDone func(step int)
					stepDone = func(step int) {
						if step == activities {
							latencies = append(latencies, sim.Now()-begin)
							return
						}
						participant.Submit(aeaSvc, func(time.Duration) {
							tfcs[i%tfcServers].Submit(tfcSvc, func(time.Duration) { stepDone(step + 1) })
						})
					}
					stepDone(0)
				})
			}
			makespan := sim.Run()
			var meanWait time.Duration
			for _, st := range tfcs {
				meanWait += st.MeanWait()
			}
			meanWait /= time.Duration(len(tfcs))
			rows = append(rows, ScalabilityRow{
				Label: fmt.Sprintf("dra4wfms-%dtfc", tfcServers), Instances: n,
				MeanLatency: cloudsim.Mean(latencies), P99Latency: cloudsim.Percentile(latencies, 99),
				Makespan: makespan, ServerMeanWt: meanWait,
			})
		}
	}
	return rows
}

// --- denial of service -------------------------------------------------------------

// DoSRow compares legitimate-request latency under a flood aimed at the
// system's fixed address: the engine IS that address; in DRA4WfMS the
// flooded portal is one of many equivalent portals.
type DoSRow struct {
	Label       string
	AttackRate  int // attack requests per second
	LegitMean   time.Duration
	LegitP99    time.Duration
	LegitServed int
}

// RunDoS floods one server with attackRate junk requests/second for a
// second while 100 legitimate requests arrive; the engine deployment has
// one server, the DRA deployment has `portals` equivalent servers and
// legitimate clients spread across them (the attacker, knowing only the
// fixed published address, hits one).
func RunDoS(attackRates []int, svc time.Duration, portals int) []DoSRow {
	const legit = 100
	var rows []DoSRow
	for _, rate := range attackRates {
		// Centralized engine.
		{
			sim := cloudsim.NewSim()
			eng := cloudsim.NewStation(sim, "engine")
			var lat []time.Duration
			for i := 0; i < rate; i++ {
				sim.Schedule(time.Duration(i)*time.Second/time.Duration(rate+1), func() {
					eng.Submit(svc, nil) // junk work still consumes service
				})
			}
			for i := 0; i < legit; i++ {
				sim.Schedule(time.Duration(i)*10*time.Millisecond, func() {
					begin := sim.Now()
					eng.Submit(svc, func(time.Duration) { lat = append(lat, sim.Now()-begin) })
				})
			}
			sim.Run()
			rows = append(rows, DoSRow{
				Label: "engine-centralized", AttackRate: rate,
				LegitMean: cloudsim.Mean(lat), LegitP99: cloudsim.Percentile(lat, 99),
				LegitServed: len(lat),
			})
		}
		// DRA4WfMS portals.
		{
			sim := cloudsim.NewSim()
			ps := make([]*cloudsim.Station, portals)
			for i := range ps {
				ps[i] = cloudsim.NewStation(sim, fmt.Sprintf("portal-%d", i))
			}
			var lat []time.Duration
			for i := 0; i < rate; i++ {
				sim.Schedule(time.Duration(i)*time.Second/time.Duration(rate+1), func() {
					ps[0].Submit(svc, nil) // attacker hits the one address it knows
				})
			}
			for i := 0; i < legit; i++ {
				i := i
				sim.Schedule(time.Duration(i)*10*time.Millisecond, func() {
					begin := sim.Now()
					ps[i%portals].Submit(svc, func(time.Duration) { lat = append(lat, sim.Now()-begin) })
				})
			}
			sim.Run()
			rows = append(rows, DoSRow{
				Label: fmt.Sprintf("dra4wfms-%dportals", portals), AttackRate: rate,
				LegitMean: cloudsim.Mean(lat), LegitP99: cloudsim.Percentile(lat, 99),
				LegitServed: len(lat),
			})
		}
	}
	return rows
}

// --- wall-clock engine vs DRA comparison -------------------------------------------

// EngineVsDRAResult reports real (not simulated) per-instance costs and
// the tamper-detection property difference.
type EngineVsDRAResult struct {
	Instances          int
	EngineMeanPerInst  time.Duration
	DRAMeanPerInst     time.Duration
	EngineTamperCaught bool // always false: nothing to catch it with
	DRATamperCaught    bool // always true: signature verification fails
}

// RunEngineVsDRA runs n Figure 9A instances (single pass, accepting) on
// the plaintext engine baseline and on the full-crypto DRA4WfMS basic
// model, then applies the same tamper to both and reports detection.
func RunEngineVsDRA(bits, n int) (*EngineVsDRAResult, error) {
	env := testenv.Fig9(bits)
	def := wfdef.Fig9A()
	steps := fig9Steps()[5:] // single accepting pass

	// Engine baseline.
	eng := engine.New("engine-1", nil)
	if err := eng.Deploy(def); err != nil {
		return nil, err
	}
	t0 := time.Now()
	var lastInstance string
	for i := 0; i < n; i++ {
		id, err := eng.CreateInstance(def.Name)
		if err != nil {
			return nil, err
		}
		lastInstance = id
		for _, s := range steps {
			if _, err := eng.Execute(id, s.act, wfdef.Fig9Participants[s.act], s.inputs); err != nil {
				return nil, err
			}
		}
	}
	engineTotal := time.Since(t0)

	// DRA4WfMS basic model.
	t1 := time.Now()
	var lastDoc *document.Document
	for i := 0; i < n; i++ {
		agents := map[string]*aea.AEA{}
		for act, p := range wfdef.Fig9Participants {
			agents[act] = aea.New(env.KeyOf(p), env.Registry)
		}
		doc, err := document.New(def, env.KeyOf("designer@acme"), testenv.ProcessID(), time.Now())
		if err != nil {
			return nil, err
		}
		inbox := map[string]*document.Document{"A": doc}
		for _, s := range steps {
			out, err := agents[s.act].Execute(inbox[s.act], s.act, s.inputs, time.Now())
			if err != nil {
				return nil, err
			}
			for to, d := range out.Routed {
				if existing := inbox[to]; existing != nil && hasNewCERs(existing, d) {
					if inbox[to], err = document.Merge(existing, d); err != nil {
						return nil, err
					}
				} else {
					inbox[to] = d
				}
			}
			delete(inbox, s.act)
			lastDoc = out.Doc
		}
	}
	draTotal := time.Since(t1)

	// The same tamper against both systems.
	res := &EngineVsDRAResult{
		Instances:         n,
		EngineMeanPerInst: engineTotal / time.Duration(n),
		DRAMeanPerInst:    draTotal / time.Duration(n),
	}
	su := eng.Superuser()
	if err := su.TamperResult(lastInstance, "A", 0, "request", "forged"); err != nil {
		return nil, err
	}
	res.EngineTamperCaught = eng.VerifyInstance(lastInstance) != nil

	forged := lastDoc.Clone()
	forged.Root.FindByID("res-A-0").SetText("forged")
	_, err := forged.VerifyAll(env.Registry)
	res.DRATamperCaught = err != nil
	return res, nil
}

// --- pool primitives ----------------------------------------------------------------

// PoolResult reports throughput of the document-pool primitives.
type PoolResult struct {
	Rows          int
	PutsPerSecond float64
	GetsPerSecond float64
	ScanMillis    float64
	Regions       int
}

// RunPool loads n synthetic documents into a small cluster and measures
// primitive throughput.
func RunPool(n int, valueBytes int, splitThreshold int) (*PoolResult, error) {
	c, err := pool.NewCluster([]string{"rs1", "rs2", "rs3"}, splitThreshold)
	if err != nil {
		return nil, err
	}
	tbl, err := c.CreateTable("docs", pool.FamilySpec{Name: "doc"}, pool.FamilySpec{Name: "meta"})
	if err != nil {
		return nil, err
	}
	val := make([]byte, valueBytes)
	t0 := time.Now()
	for i := 0; i < n; i++ {
		row := fmt.Sprintf("proc-%08d", i)
		if err := tbl.Put(row, "doc", "content", val); err != nil {
			return nil, err
		}
		tbl.Put(row, "meta", "state", []byte("running"))
	}
	putDur := time.Since(t0)

	t1 := time.Now()
	for i := 0; i < n; i++ {
		row := fmt.Sprintf("proc-%08d", i)
		if _, ok := tbl.Get(row, "doc", "content"); !ok {
			return nil, fmt.Errorf("bench: row %s lost", row)
		}
	}
	getDur := time.Since(t1)

	t2 := time.Now()
	kvs := tbl.Scan(pool.ScanOptions{Family: "meta"})
	scanDur := time.Since(t2)
	if len(kvs) != n {
		return nil, fmt.Errorf("bench: scan saw %d rows, want %d", len(kvs), n)
	}
	return &PoolResult{
		Rows:          n,
		PutsPerSecond: float64(2*n) / putDur.Seconds(),
		GetsPerSecond: float64(n) / getDur.Seconds(),
		ScanMillis:    float64(scanDur.Microseconds()) / 1000,
		Regions:       len(tbl.Regions()),
	}, nil
}

// --- the paper's stated future work: pool scale-out ------------------------------

// PoolScaleRow measures the document-pool operations the paper lists in
// its conclusion as future work — "measuring the performance of querying,
// storing, monitoring, and statistical analyses when the pool of DRA4WfMS
// documents contains a huge number of documents" — across pool sizes and
// region-server counts.
type PoolScaleRow struct {
	Servers   int
	Documents int
	Regions   int
	// StoreMicrosPerDoc is the mean per-document store cost.
	StoreMicrosPerDoc float64
	// QueryMicrosPerDoc is the mean random-retrieve cost.
	QueryMicrosPerDoc float64
	// MonitorMicros is the cost of one instance-status query.
	MonitorMicros float64
	// StatsMillis is the cost of a full map-reduce statistics pass.
	StatsMillis float64
}

// RunPoolScale loads synthetic DRA4WfMS-sized documents through a real
// portal into pools of varying size and server count, then measures
// retrieval, monitoring and statistics. One real Figure 9A document is
// built with actual crypto and replicated with distinct process ids so
// document parsing/verification costs in the monitor stay realistic.
func RunPoolScale(bits int, servers []int, docCounts []int) ([]PoolScaleRow, error) {
	env := testenv.Fig9(bits)
	def := wfdef.Fig9A()

	// One genuinely executed document as the payload prototype.
	agents := map[string]*aea.AEA{}
	for act, p := range wfdef.Fig9Participants {
		agents[act] = aea.New(env.KeyOf(p), env.Registry)
	}
	proto, err := document.New(def, env.KeyOf("designer@acme"), testenv.ProcessID(), time.Now())
	if err != nil {
		return nil, err
	}
	cur := proto
	for _, s := range fig9Steps()[5:] { // one accepting pass
		out, err := agents[s.act].Execute(cur, s.act, s.inputs, time.Now())
		if err != nil {
			return nil, err
		}
		cur = out.Doc
	}
	payload := cur.Bytes()

	var rows []PoolScaleRow
	for _, ns := range servers {
		ids := make([]string, ns)
		for i := range ids {
			ids[i] = fmt.Sprintf("rs-%02d", i+1)
		}
		for _, n := range docCounts {
			cluster, err := pool.NewCluster(ids, 1<<20)
			if err != nil {
				return nil, err
			}
			tbl, err := cluster.CreateTable("dra4wfms_documents",
				pool.FamilySpec{Name: "doc", MaxVersions: 3},
				pool.FamilySpec{Name: "meta", MaxVersions: 1},
				pool.FamilySpec{Name: "idx", MaxVersions: 1})
			if err != nil {
				return nil, err
			}

			t0 := time.Now()
			for i := 0; i < n; i++ {
				row := fmt.Sprintf("proc-%08d", i)
				if err := tbl.Put(row, "doc", "content", payload); err != nil {
					return nil, err
				}
				tbl.Put(row, "meta", "definition", []byte(def.Name))
				tbl.Put(row, "meta", "state", []byte("completed"))
				tbl.Put(row, "meta", "cers", []byte("5"))
			}
			storePer := float64(time.Since(t0).Microseconds()) / float64(n)

			t1 := time.Now()
			const queries = 2000
			for i := 0; i < queries; i++ {
				row := fmt.Sprintf("proc-%08d", (i*7919)%n)
				if _, ok := tbl.Get(row, "doc", "content"); !ok {
					return nil, fmt.Errorf("bench: row %s lost", row)
				}
			}
			queryPer := float64(time.Since(t1).Microseconds()) / float64(queries)

			mon := monitor.New(tbl)
			t2 := time.Now()
			if _, err := mon.InstanceStatus(fmt.Sprintf("proc-%08d", n/2)); err != nil {
				return nil, err
			}
			monMicros := float64(time.Since(t2).Microseconds())

			t3 := time.Now()
			stats, err := mon.Statistics()
			if err != nil {
				return nil, err
			}
			if stats.InstancesByState["completed"] != n {
				return nil, fmt.Errorf("bench: statistics saw %d docs, want %d", stats.InstancesByState["completed"], n)
			}
			rows = append(rows, PoolScaleRow{
				Servers:           ns,
				Documents:         n,
				Regions:           len(tbl.Regions()),
				StoreMicrosPerDoc: storePer,
				QueryMicrosPerDoc: queryPer,
				MonitorMicros:     monMicros,
				StatsMillis:       float64(time.Since(t3).Microseconds()) / 1000,
			})
		}
	}
	return rows, nil
}
