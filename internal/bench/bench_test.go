package bench

import (
	"strings"
	"testing"
	"time"
)

// Runner tests use 1024-bit keys: the structural assertions (row counts,
// monotonic growth, who-wins ordering) are key-size independent.
const bits = 1024

func TestRunTable1Shape(t *testing.T) {
	rows, err := RunTable1(bits, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 11 { // Initial + 10 executions
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].Doc != "Initial" || rows[0].Sigma == 0 {
		t.Fatalf("initial row = %+v", rows[0])
	}
	// Document size and signature count grow monotonically along the run.
	for i := 2; i < len(rows); i++ {
		if rows[i].Sigma <= rows[0].Sigma {
			t.Fatalf("row %d size %d not above initial", i, rows[i].Sigma)
		}
	}
	if rows[1].SigsVerified != 1 { // A(0) verified only the designer's signature
		t.Fatalf("X_A(0) sigs = %d", rows[1].SigsVerified)
	}
	// C joins two branches: it verifies designer + A + B1 + B2 = 4.
	if rows[4].Doc != "X_C(0)" || rows[4].SigsVerified != 4 {
		t.Fatalf("X_C(0) row = %+v", rows[4])
	}
	// Final document of the second pass holds 10 CERs.
	last := rows[len(rows)-1]
	if last.Doc != "X_D(1)" || last.CERs != 10 {
		t.Fatalf("last row = %+v", last)
	}
	// α of the last step (verify 10+ signatures) exceeds α of the first
	// (verify 1) — the paper's linear-growth observation.
	if last.Alpha <= rows[1].Alpha {
		t.Fatalf("alpha not growing: first %v last %v", rows[1].Alpha, last.Alpha)
	}
	// Every executed row has positive β.
	for _, r := range rows[1:] {
		if r.Beta <= 0 {
			t.Fatalf("row %s has no beta", r.Doc)
		}
	}
	out := FormatTable1(rows)
	for _, want := range []string{"Document", "X_A(0)", "X_D(1)", "Sigma"} {
		if !strings.Contains(out, want) {
			t.Fatalf("FormatTable1 missing %q:\n%s", want, out)
		}
	}
}

func TestRunTable2Shape(t *testing.T) {
	rows, err := RunTable2(bits, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 21 { // Initial + (AEA + TFC) × 10
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[1].Stage != "AEA" || rows[2].Stage != "TFC" {
		t.Fatalf("stage order: %+v %+v", rows[1], rows[2])
	}
	// AEA rows have β, TFC rows have γ and a larger document.
	for i := 1; i < len(rows); i += 2 {
		aeaRow, tfcRow := rows[i], rows[i+1]
		if aeaRow.Beta <= 0 {
			t.Fatalf("AEA row %s has no beta", aeaRow.Doc)
		}
		if aeaRow.Gamma != 0 {
			t.Fatalf("AEA row %s has gamma", aeaRow.Doc)
		}
		if tfcRow.Gamma <= 0 || tfcRow.Beta != 0 {
			t.Fatalf("TFC row %s beta/gamma wrong: %+v", tfcRow.Doc, tfcRow)
		}
		if tfcRow.Sigma <= aeaRow.Sigma {
			t.Fatalf("TFC doc %s not larger than intermediate", tfcRow.Doc)
		}
		if tfcRow.CERs != aeaRow.CERs+1 {
			t.Fatalf("TFC row %s CERs %d vs AEA %d", tfcRow.Doc, tfcRow.CERs, aeaRow.CERs)
		}
	}
	// Advanced-model documents are larger than basic-model ones (extra
	// intermediate CERs + timestamps) — the Table 1 vs Table 2 comparison.
	t1, err := RunTable1(bits, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rows[len(rows)-1].Sigma <= t1[len(t1)-1].Sigma {
		t.Fatalf("advanced final doc (%d B) not larger than basic (%d B)",
			rows[len(rows)-1].Sigma, t1[len(t1)-1].Sigma)
	}
	out := FormatTable2(rows)
	if !strings.Contains(out, "gamma") || !strings.Contains(out, "TFC") {
		t.Fatalf("FormatTable2 output:\n%s", out)
	}
}

func TestRunCascadeDepth(t *testing.T) {
	// Wall-clock assertions are noisy when the whole suite shares the CPU
	// (e.g. during -bench runs): take the best of three runs per depth and
	// compare depths far apart.
	var rows []CascadeRow
	for attempt := 0; attempt < 3; attempt++ {
		got, err := RunCascadeDepth(bits, []int{2, 32}, 3)
		if err != nil {
			t.Fatal(err)
		}
		if rows == nil {
			rows = got
			continue
		}
		for i := range got {
			if got[i].VerifyTime < rows[i].VerifyTime {
				rows[i].VerifyTime = got[i].VerifyTime
			}
			if got[i].WarmVerifyTime < rows[i].WarmVerifyTime {
				rows[i].WarmVerifyTime = got[i].WarmVerifyTime
			}
		}
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[1].VerifyTime <= rows[0].VerifyTime {
		t.Fatalf("verify time not growing with depth: %v then %v", rows[0].VerifyTime, rows[1].VerifyTime)
	}
	if rows[1].DocBytes <= rows[0].DocBytes {
		t.Fatal("doc size not growing with depth")
	}
	if rows[0].ScopeSize != 3 || rows[1].ScopeSize != 33 { // chain + CER(A0)
		t.Fatalf("scope sizes = %d, %d", rows[0].ScopeSize, rows[1].ScopeSize)
	}
	// The warm column exists and carries a measurement; at depth 32 the
	// warm re-verify skips 33 RSA operations, so even under heavy noise it
	// must not exceed the serial baseline (best of three on both sides).
	if rows[1].WarmVerifyTime <= 0 {
		t.Fatal("warm verify time not measured")
	}
	if rows[1].WarmVerifyTime > rows[1].VerifyTime {
		t.Fatalf("warm re-verify slower than serial baseline at depth 32: %v > %v",
			rows[1].WarmVerifyTime, rows[1].VerifyTime)
	}
}

func TestRunVerifyCache(t *testing.T) {
	rows, err := RunVerifyCache(bits, []int{1, 8}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Sigs != r.CERs+1 { // chain CERs + the designer signature
			t.Fatalf("depth %d: Sigs = %d, want %d", r.CERs, r.Sigs, r.CERs+1)
		}
		if r.ColdSerial <= 0 || r.ColdFast <= 0 || r.WarmHop <= 0 {
			t.Fatalf("depth %d: missing measurement: %+v", r.CERs, r)
		}
	}
	// At depth 8 the warm hop pays one RSA verify instead of nine; the
	// sub-linear re-verify is the acceptance criterion of the fast path.
	if rows[1].WarmHop > rows[1].ColdSerial {
		t.Fatalf("warm hop slower than cold serial at depth 8: %v > %v",
			rows[1].WarmHop, rows[1].ColdSerial)
	}
}

func TestRunElementwiseVsWhole(t *testing.T) {
	rows, err := RunElementwiseVsWhole(bits, []int{4})
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	if r.ElementwiseEncrypt <= 0 || r.WholeEncrypt <= 0 {
		t.Fatalf("row = %+v", r)
	}
	// Element-wise costs more space and encrypt time (k key wraps) but
	// allows decrypting a single field.
	if r.ElementwiseBytes <= r.WholeBytes {
		t.Fatalf("elementwise %dB vs whole %dB", r.ElementwiseBytes, r.WholeBytes)
	}
	if r.ElementwiseDecryptOne <= 0 || r.WholeDecrypt <= 0 {
		t.Fatalf("decrypt times: %+v", r)
	}
}

func TestRunMultiRecipient(t *testing.T) {
	rows, err := RunMultiRecipient(bits, []int{1, 8})
	if err != nil {
		t.Fatal(err)
	}
	if rows[1].Bytes <= rows[0].Bytes {
		t.Fatal("ciphertext not growing with recipients")
	}
}

func TestRunTFCThroughput(t *testing.T) {
	res, err := RunTFCThroughput(bits, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Documents != 5 || res.TFCMeanPerDoc <= 0 || res.AEAMeanPerDoc <= 0 {
		t.Fatalf("res = %+v", res)
	}
	if res.TFCDocsPerSecond <= 0 {
		t.Fatal("no throughput computed")
	}
	// The paper's observation: AEA and TFC have "very similar total
	// processing times" (the TFC additionally unwraps the CEK and signs —
	// two RSA private operations vs the AEA's one — but holds no
	// interactive session). Same order of magnitude is the claim.
	if res.TFCMeanPerDoc > res.AEAMeanPerDoc*5 {
		t.Fatalf("TFC (%v) is not in the same order as AEA (%v)", res.TFCMeanPerDoc, res.AEAMeanPerDoc)
	}
}

func TestRunScalabilityShape(t *testing.T) {
	rows := RunScalability([]int{10, 100}, 5*time.Millisecond, 5*time.Millisecond, time.Millisecond, 2)
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	// At load 100 the centralized engine's latency must exceed DRA's (the
	// who-wins shape), and the gap must grow with load.
	var eng10, dra10, eng100, dra100 time.Duration
	for _, r := range rows {
		switch {
		case r.Instances == 10 && strings.HasPrefix(r.Label, "engine"):
			eng10 = r.MeanLatency
		case r.Instances == 10:
			dra10 = r.MeanLatency
		case r.Instances == 100 && strings.HasPrefix(r.Label, "engine"):
			eng100 = r.MeanLatency
		case r.Instances == 100:
			dra100 = r.MeanLatency
		}
	}
	if eng100 <= dra100 {
		t.Fatalf("engine (%v) not slower than DRA (%v) at load 100", eng100, dra100)
	}
	if float64(eng100)/float64(dra100) <= float64(eng10)/float64(dra10) {
		t.Fatalf("gap not growing with load: %v/%v then %v/%v", eng10, dra10, eng100, dra100)
	}
}

func TestRunDoSShape(t *testing.T) {
	rows := RunDoS([]int{0, 1000}, 2*time.Millisecond, 4)
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	var engAttacked, draAttacked time.Duration
	for _, r := range rows {
		if r.AttackRate == 1000 {
			if strings.HasPrefix(r.Label, "engine") {
				engAttacked = r.LegitMean
			} else {
				draAttacked = r.LegitMean
			}
		}
		if r.LegitServed != 100 {
			t.Fatalf("legit served = %d", r.LegitServed)
		}
	}
	// Under attack, legit latency through the engine collapses while the
	// multi-portal deployment degrades far less (3/4 of clients unaffected).
	if engAttacked <= draAttacked*2 {
		t.Fatalf("DoS shape wrong: engine %v vs dra %v", engAttacked, draAttacked)
	}
}

func TestRunEngineVsDRA(t *testing.T) {
	res, err := RunEngineVsDRA(bits, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.EngineTamperCaught {
		t.Fatal("baseline unexpectedly detected tampering")
	}
	if !res.DRATamperCaught {
		t.Fatal("DRA4WfMS failed to detect tampering")
	}
	// The crypto costs real time: DRA per-instance must exceed plaintext
	// engine per-instance (an honest trade-off the paper accepts).
	if res.DRAMeanPerInst <= res.EngineMeanPerInst {
		t.Fatalf("DRA (%v) unexpectedly cheaper than engine (%v)", res.DRAMeanPerInst, res.EngineMeanPerInst)
	}
}

func TestRunPool(t *testing.T) {
	res, err := RunPool(500, 1024, 64<<10)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows != 500 || res.PutsPerSecond <= 0 || res.GetsPerSecond <= 0 {
		t.Fatalf("res = %+v", res)
	}
	if res.Regions < 2 {
		t.Fatalf("no splits at 64KiB threshold: %d regions", res.Regions)
	}
}

func TestRunScalabilityDistributedShape(t *testing.T) {
	loads := []int{100}
	central := RunScalability(loads, 5*time.Millisecond, 5*time.Millisecond, time.Millisecond, 2)
	distributed := RunScalabilityDistributed(loads, 5*time.Millisecond, 5*time.Millisecond)
	if len(distributed) != 1 {
		t.Fatalf("rows = %d", len(distributed))
	}
	var centralRow ScalabilityRow
	for _, r := range central {
		if strings.HasPrefix(r.Label, "engine-centralized") {
			centralRow = r
		}
	}
	d := distributed[0]
	// Three engines beat one engine on queueing (load spreads)...
	if d.MeanLatency >= centralRow.MeanLatency {
		t.Fatalf("distributed (%v) not faster than centralized (%v)", d.MeanLatency, centralRow.MeanLatency)
	}
	// ...but pay for instance migrations: per-instance latency must exceed
	// the zero-queue service floor (5 steps * 5ms) by at least the two
	// migration latencies.
	floor := 5*5*time.Millisecond + 2*5*time.Millisecond
	if d.MeanLatency < floor {
		t.Fatalf("distributed latency %v below migration-inclusive floor %v", d.MeanLatency, floor)
	}
	if d.Label != "engine-distributed" || d.Instances != 100 {
		t.Fatalf("row = %+v", d)
	}
}

func TestRunPoolScale(t *testing.T) {
	rows, err := RunPoolScale(bits, []int{1, 4}, []int{200, 1000})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.StoreMicrosPerDoc <= 0 || r.QueryMicrosPerDoc <= 0 || r.MonitorMicros <= 0 || r.StatsMillis <= 0 {
			t.Fatalf("row = %+v", r)
		}
		if r.Regions < 1 {
			t.Fatalf("regions = %d", r.Regions)
		}
	}
	// Random query cost stays roughly flat as the pool grows (region
	// routing + binary search, not linear scan): allow generous slack.
	var q200, q1000 float64
	for _, r := range rows {
		if r.Servers == 4 && r.Documents == 200 {
			q200 = r.QueryMicrosPerDoc
		}
		if r.Servers == 4 && r.Documents == 1000 {
			q1000 = r.QueryMicrosPerDoc
		}
	}
	if q1000 > q200*20 {
		t.Fatalf("query cost exploded with pool size: %v -> %v", q200, q1000)
	}
}

func TestRunPoolFailover(t *testing.T) {
	res, err := RunPoolFailover(3, 300)
	if err != nil {
		t.Fatal(err)
	}
	// The headline guarantee: every write acknowledged, none lost.
	if res.AckedWrites != 300 || res.LostWrites != 0 {
		t.Fatalf("acked=%d lost=%d, want 300/0", res.AckedWrites, res.LostWrites)
	}
	if res.KilledNode == "" || res.KilledRegion == "" {
		t.Fatalf("no kill target recorded: %+v", res)
	}
	if res.FailoverLatency <= 0 || res.MaxStall < res.FailoverLatency || res.MeanWrite <= 0 {
		t.Fatalf("latencies inconsistent: failover=%v stall=%v mean=%v",
			res.FailoverLatency, res.MaxStall, res.MeanWrite)
	}
	if res.Nodes != 3 || res.Replicas != 2 || res.Regions != 5 {
		t.Fatalf("topology = %+v", res)
	}
}
