package bench

import (
	"crypto/rsa"
	"fmt"
	"time"

	"dra4wfms/internal/aea"
	"dra4wfms/internal/document"
	"dra4wfms/internal/dsig"
	"dra4wfms/internal/pki"
	"dra4wfms/internal/testenv"
	"dra4wfms/internal/wfdef"
)

// Crypto-throughput experiment: how fast can one verifying tier turn
// around a Figure 9A hop document under each signature suite, before and
// after the crypto amortizations (shared verify pool, per-principal
// resolved-key cache, verified-prefix cache, pooled canonicalization)?
//
// A "hop" is what a portal or AEA pays per routed document: verify the
// full signature cascade (α) plus produce the next CER signature (β).
// Three configurations are measured per suite:
//
//   - seed: the pre-optimization path — serial verification, no
//     verified-prefix cache, and a cache-less resolver that re-fetches the
//     certificate, re-verifies the CA signature and re-parses the PKIX key
//     on every lookup. RSA only (the seed had a single hard-wired suite).
//   - cold: the optimized stack on a document this tier has never seen —
//     shared verify pool, resolved-key cache warm, prefix cache empty.
//   - warm: the steady state — the tier verified the document's earlier
//     hops, so the prefix cache covers every predecessor signature.

// CryptoRow is one suite × configuration measurement.
type CryptoRow struct {
	// Suite is the dsig algorithm identifier (e.g. "rsa-sha256").
	Suite string `json:"suite"`
	// Mode is "seed", "cold" or "warm".
	Mode string `json:"mode"`
	// Sigs is the number of signatures in the measured hop document.
	Sigs int `json:"sigs"`
	// Verify is the α half: verifying the full cascade.
	Verify time.Duration `json:"verify"`
	// Sign is the β half: producing one new CER signature.
	Sign time.Duration `json:"sign"`
	// Hop is Verify + Sign — the per-document turnaround cost.
	Hop time.Duration `json:"hop"`
}

// DocsPerSecond is the hop throughput of the row's configuration.
func (r CryptoRow) DocsPerSecond() float64 {
	if r.Hop <= 0 {
		return 0
	}
	return float64(time.Second) / float64(r.Hop)
}

// seedResolver re-does, on every lookup, everything the per-principal
// resolved-key cache amortizes: fetch the certificate, re-verify the CA
// signature over it, and re-parse the PKIX key material — the cache-less
// path a verifying tier paid before internal/pki memoized it.
type seedResolver struct {
	reg *pki.Registry
	ca  *pki.CA
	at  time.Time
}

func (r seedResolver) PublicKey(id string) (*rsa.PublicKey, error) {
	cert, err := r.reg.Certificate(id)
	if err != nil {
		return nil, err
	}
	if err := r.ca.VerifyCertificate(cert, r.at); err != nil {
		return nil, err
	}
	return cert.RSAPublicKey()
}

// runFig9 executes the two-pass Figure 9A workflow (reject, then accept)
// with every AEA signing under suite, and returns the final document —
// the deepest cascade of the run (10 CERs + the designer signature).
func runFig9(env *testenv.Env, suite dsig.Suite) (*document.Document, error) {
	def := wfdef.Fig9A()
	agents := map[string]*aea.AEA{}
	for act, p := range wfdef.Fig9Participants {
		a := aea.New(env.KeyOf(p), env.Registry)
		a.Suite = suite
		agents[act] = a
	}
	initial, err := document.New(def, env.KeyOf("designer@acme"), testenv.ProcessID(), time.Now())
	if err != nil {
		return nil, err
	}
	inbox := map[string]*document.Document{"A": initial}
	var final *document.Document
	for _, s := range fig9Steps() {
		doc := inbox[s.act]
		if doc == nil {
			return nil, fmt.Errorf("bench: no document for %s#%d", s.act, s.iter)
		}
		out, err := agents[s.act].Execute(doc, s.act, s.inputs, time.Now())
		if err != nil {
			return nil, fmt.Errorf("bench: execute %s#%d: %w", s.act, s.iter, err)
		}
		if out.Completed {
			final = out.Doc
			break
		}
		for to, d := range out.Routed {
			if existing := inbox[to]; existing != nil && to != s.act && hasNewCERs(existing, d) {
				merged, err := document.Merge(existing, d)
				if err != nil {
					return nil, err
				}
				inbox[to] = merged
			} else {
				inbox[to] = d
			}
		}
		delete(inbox, s.act)
		if again, ok := out.Routed[s.act]; ok {
			inbox[s.act] = again
		}
	}
	if final == nil {
		return nil, fmt.Errorf("bench: Figure 9A run did not complete")
	}
	return final, nil
}

// RunCrypto measures the crypto-throughput rows for every registered
// suite. All configurations verify the same parsed document, so canonical
// memos are shared and the comparison isolates signature, resolver and
// prefix-cache cost.
func RunCrypto(bits, reps int) ([]CryptoRow, error) {
	if reps < 1 {
		reps = 1
	}
	env := testenv.Fig9(bits)

	// One shared pool, as in a real process; fresh caches make runs cold.
	pool := dsig.NewVerifyPool(0, 0)
	defer pool.Close()

	var rows []CryptoRow
	for _, alg := range []string{dsig.SignatureAlg, dsig.SignatureAlgEd25519} {
		suite, ok := dsig.SuiteFor(alg)
		if !ok {
			return nil, fmt.Errorf("bench: suite %q not registered", alg)
		}
		doc, err := runFig9(env, suite)
		if err != nil {
			return nil, err
		}
		signer := env.KeyOf(wfdef.Fig9Participants["D"])
		sigs := 0

		// β: the suite's signature over a fresh SignedInfo against the
		// document (the Sign node is built but not attached, so reps are
		// independent). Identical for every mode of the suite.
		sign, err := timeMedian(1, reps, func() error {
			_, err := dsig.SignWith(suite, doc.Root, []string{document.HeaderID}, signer, "bench-sig")
			return err
		})
		if err != nil {
			return nil, err
		}

		if alg == dsig.SignatureAlg {
			// The seed resolver is RSA-only, like the seed itself.
			resolver := seedResolver{reg: env.Registry, ca: env.CA, at: env.Now}
			seedVerify, err := timeMedian(1, reps, func() error {
				v := &dsig.Verifier{Workers: 1}
				var verr error
				sigs, verr = doc.VerifyAllWith(v, resolver)
				return verr
			})
			if err != nil {
				return nil, err
			}
			rows = append(rows, CryptoRow{
				Suite: alg, Mode: "seed", Sigs: sigs,
				Verify: seedVerify, Sign: sign, Hop: seedVerify + sign,
			})
		}

		coldVerify, err := timeMedian(1, reps, func() error {
			v := &dsig.Verifier{Cache: dsig.NewCache(dsig.DefaultCacheSize), Pool: pool}
			var verr error
			sigs, verr = doc.VerifyAllWith(v, env.Registry)
			return verr
		})
		if err != nil {
			return nil, err
		}
		rows = append(rows, CryptoRow{
			Suite: alg, Mode: "cold", Sigs: sigs,
			Verify: coldVerify, Sign: sign, Hop: coldVerify + sign,
		})

		warm := &dsig.Verifier{Cache: dsig.NewCache(dsig.DefaultCacheSize), Pool: pool}
		warmVerify, err := timeMedian(1, reps, func() error {
			var verr error
			sigs, verr = doc.VerifyAllWith(warm, env.Registry)
			return verr
		})
		if err != nil {
			return nil, err
		}
		rows = append(rows, CryptoRow{
			Suite: alg, Mode: "warm", Sigs: sigs,
			Verify: warmVerify, Sign: sign, Hop: warmVerify + sign,
		})
	}
	return rows, nil
}
