package bench

import (
	"testing"
	"time"

	"dra4wfms/internal/relay"
)

func TestRunFaults(t *testing.T) {
	policy := relay.BackoffPolicy{Base: time.Millisecond, Cap: 10 * time.Millisecond, Factor: 2}
	rows := RunFaults([]float64{0, 0.2}, 100, 20, policy, 7)
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}

	clean := rows[0]
	if clean.CompletedRelay != 100 || clean.CompletedNoRetry != 100 || clean.DeadLetters != 0 {
		t.Fatalf("lossless run: %+v", clean)
	}
	if clean.Attempts != 100*faultHops {
		t.Fatalf("lossless attempts = %d, want %d", clean.Attempts, 100*faultHops)
	}

	lossy := rows[1]
	// 20% hop loss strands ~1-(0.8)^6 ≈ 74% of fire-and-forget instances
	// but the relay retries them all through.
	if lossy.CompletedNoRetry >= 60 {
		t.Fatalf("fire-and-forget completed %d/100 at 20%% loss — too lucky", lossy.CompletedNoRetry)
	}
	if lossy.CompletedRelay != 100 || lossy.DeadLetters != 0 {
		t.Fatalf("relay run at 20%% loss: %+v", lossy)
	}
	if lossy.Attempts <= 100*faultHops {
		t.Fatalf("lossy attempts = %d — retries not visible", lossy.Attempts)
	}
	if lossy.DupSuppressed == 0 {
		t.Fatal("no duplicates suppressed at 10% dup rate")
	}
	if lossy.MeanLatency <= clean.MeanLatency {
		t.Fatalf("lossy mean %v not above clean mean %v", lossy.MeanLatency, clean.MeanLatency)
	}

	// Determinism: same seed, same numbers.
	again := RunFaults([]float64{0.2}, 100, 20, policy, 7)[0]
	if again != lossy {
		t.Fatalf("same seed diverged:\n%+v\n%+v", again, lossy)
	}
}
