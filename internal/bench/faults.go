package bench

import (
	"math/rand"
	"time"

	"dra4wfms/internal/cloudsim"
	"dra4wfms/internal/relay"
)

// --- fault injection: relay retry policy under lossy hops ----------------------

// FaultRow is one discrete-event run of the Figure 9 hop chain under a
// given hop-loss probability, with and without the relay's retry policy.
type FaultRow struct {
	// DropRate is the probability one delivery attempt is lost in flight.
	DropRate float64
	// DupRate is the probability a delivered hop arrives twice.
	DupRate float64
	// Instances is how many concurrent workflow instances ran.
	Instances int
	// CompletedNoRetry counts instances finishing all hops when every
	// hop gets exactly one attempt (fire-and-forget dispatch).
	CompletedNoRetry int
	// CompletedRelay counts instances finishing under the relay policy.
	CompletedRelay int
	// DeadLetters counts hops the relay gave up on after MaxAttempts.
	DeadLetters int
	// Attempts is the total delivery attempts the relay made.
	Attempts int
	// DupSuppressed counts duplicate arrivals absorbed by receiver-side
	// idempotency keys (they never re-applied an effect).
	DupSuppressed int
	// MeanLatency / P99Latency are per-instance completion times under
	// the relay; Makespan is when the last instance finished.
	MeanLatency time.Duration
	P99Latency  time.Duration
	Makespan    time.Duration
}

// faultsConfig fixes the simulated deployment: Figure 9A routes six
// documents portal-ward per instance (the initial store plus one per
// activity), each hop one network round trip plus portal service.
const (
	faultHops       = 6
	faultNetLatency = 2 * time.Millisecond
	faultPortalSvc  = 500 * time.Microsecond
)

// RunFaults sweeps hop-loss probabilities and replays the Figure 9A hop
// chain on the discrete-event simulator, comparing fire-and-forget
// dispatch against the relay's retry policy (exponential backoff, full
// jitter, bounded attempts, receiver-side dedup). Deterministic for a
// given seed.
func RunFaults(dropRates []float64, instances, maxAttempts int, policy relay.BackoffPolicy, seed int64) []FaultRow {
	var rows []FaultRow
	for _, p := range dropRates {
		dup := p / 2
		rng := rand.New(rand.NewSource(seed))
		rows = append(rows, runFaultRate(p, dup, instances, maxAttempts, policy, rng))
	}
	return rows
}

func runFaultRate(drop, dup float64, instances, maxAttempts int, policy relay.BackoffPolicy, rng *rand.Rand) FaultRow {
	row := FaultRow{DropRate: drop, DupRate: dup, Instances: instances}

	// Baseline: every hop fires once; a single loss strands the instance.
	for i := 0; i < instances; i++ {
		alive := true
		for h := 0; h < faultHops; h++ {
			if rng.Float64() < drop {
				alive = false
			}
		}
		if alive {
			row.CompletedNoRetry++
		}
	}

	// Relay: one FIFO portal station shared by all instances; each hop
	// retries with the real backoff policy until delivered or out of
	// attempts. Duplicated arrivals consume portal service but are
	// absorbed by the idempotency key — the hop chain advances once.
	sim := cloudsim.NewSim()
	portal := cloudsim.NewStation(sim, "portal")
	var latencies []time.Duration

	for i := 0; i < instances; i++ {
		start := time.Duration(i) * time.Millisecond // staggered arrivals
		var hop func(h int)
		var attemptHop func(h, attempt int)
		attemptHop = func(h, attempt int) {
			row.Attempts++
			if rng.Float64() < drop {
				// Lost in flight: the relay times out and backs off.
				if attempt >= maxAttempts {
					row.DeadLetters++
					return // instance stalls; operator re-drives via DLQ
				}
				sim.Schedule(policy.Delay(attempt, rng.Float64), func() {
					attemptHop(h, attempt+1)
				})
				return
			}
			duplicated := rng.Float64() < dup
			sim.Schedule(faultNetLatency, func() {
				portal.Submit(faultPortalSvc, func(time.Duration) {
					hop(h + 1)
				})
				if duplicated {
					// Second arrival: serviced, deduplicated, no effect.
					portal.Submit(faultPortalSvc, func(time.Duration) {
						row.DupSuppressed++
					})
				}
			})
		}
		var begin time.Duration
		hop = func(h int) {
			if h == faultHops {
				row.CompletedRelay++
				latencies = append(latencies, sim.Now()-begin)
				return
			}
			attemptHop(h, 1)
		}
		sim.Schedule(start, func() {
			begin = sim.Now()
			hop(0)
		})
	}

	row.Makespan = sim.Run()
	row.MeanLatency = cloudsim.Mean(latencies)
	row.P99Latency = cloudsim.Percentile(latencies, 99)
	return row
}
