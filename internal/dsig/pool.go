package dsig

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"dra4wfms/internal/telemetry"
)

// Process-wide verify pool. Before this existed, every VerifyBatch call
// spun up its own worker goroutines and tore them down again — fine for
// one request, wasteful when a portal, a TFC server, and a dozen AEA
// sessions verify cascades concurrently: each batch fans out to
// GOMAXPROCS workers and they all fight. The VerifyPool inverts that: one
// fixed set of workers sized to the machine, fed by every in-flight batch
// through a small admission queue. Saturation is handled by the callers
// themselves — when the queue is full, TrySubmit refuses and the caller
// runs the verification inline on its own goroutine, so the pool can
// never deadlock on its own backpressure and total parallelism stays
// bounded by workers + in-flight requests.

// Pool telemetry: queue depth, time-in-queue, and how work was placed.
var (
	mPoolDepth     = telemetry.Default().Gauge("dsig_verify_pool_depth")
	mPoolWait      = telemetry.Default().Histogram("dsig_verify_pool_queue_wait_seconds", telemetry.LatencyBuckets)
	mPoolSubmitted = telemetry.Default().Counter("dsig_verify_pool_submitted_total")
	mPoolInline    = telemetry.Default().Counter("dsig_verify_pool_inline_total")
)

// verifyTask is one unit of pool work. Tasks are self-contained — they
// signal their batch's WaitGroup themselves and never submit further
// tasks, which is what makes inline execution on a saturated submit safe.
type verifyTask func()

// VerifyPool is a fixed-size worker pool shared by all in-flight
// verification batches. The zero value is not usable; construct with
// NewVerifyPool. Safe for concurrent use.
type VerifyPool struct {
	tasks chan queuedTask
	quit  chan struct{}
	wg    sync.WaitGroup
	depth atomic.Int64 // queued-but-unstarted tasks, mirrors mPoolDepth

	mu     sync.RWMutex
	closed bool
}

type queuedTask struct {
	run verifyTask
	at  time.Time
}

// NewVerifyPool starts a pool with the given number of workers (0 =
// GOMAXPROCS) and admission-queue capacity (0 = 4× workers). The queue is
// deliberately small: it exists to smooth bursts, not to buffer load —
// sustained oversubscription should push work back onto request
// goroutines, not grow a queue without bound.
func NewVerifyPool(workers, queue int) *VerifyPool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if queue <= 0 {
		queue = 4 * workers
	}
	p := &VerifyPool{
		tasks: make(chan queuedTask, queue),
		quit:  make(chan struct{}),
	}
	for i := 0; i < workers; i++ {
		p.wg.Add(1)
		go p.worker()
	}
	return p
}

func (p *VerifyPool) worker() {
	defer p.wg.Done()
	for {
		select {
		case t := <-p.tasks:
			p.execute(t)
		case <-p.quit:
			return
		}
	}
}

func (p *VerifyPool) execute(t queuedTask) {
	p.depth.Add(-1)
	mPoolDepth.Add(-1)
	//lint:ignore nondeterminism queue-wait telemetry only; the verification outcome does not depend on the clock
	mPoolWait.Observe(time.Since(t.at).Seconds())
	t.run()
}

// TrySubmit offers a task to the pool. It returns false — and runs
// nothing — when the admission queue is full or the pool is closed; the
// caller then executes the task inline. Submission happens under a read
// lock ordered before Close's write lock, so a task admitted here is
// always either executed by a worker or drained by Close — never lost.
func (p *VerifyPool) TrySubmit(t verifyTask) bool {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.closed {
		return false
	}
	select {
	//lint:ignore nondeterminism admission timestamp feeds the queue-wait histogram, not the verification result
	case p.tasks <- queuedTask{run: t, at: time.Now()}:
		p.depth.Add(1)
		mPoolDepth.Add(1)
		mPoolSubmitted.Inc()
		return true
	default:
		return false
	}
}

// Depth reports the number of admitted-but-unstarted tasks — how far
// behind the workers are. Admission control (httpapi) reads it as a
// saturation signal to shed writes before they join the queue.
func (p *VerifyPool) Depth() int { return int(p.depth.Load()) }

// PoolDepth reports the Depth of the process-wide verifier's pool, or 0
// when the default verifier runs without one (Configure with workers=1).
func PoolDepth() int {
	if v := DefaultVerifier(); v != nil && v.Pool != nil {
		return v.Pool.Depth()
	}
	return 0
}

// Close stops the workers and runs any still-queued tasks to completion
// on the calling goroutine, so batches that admitted work before the
// close can never hang on their WaitGroup. Close is idempotent. It is
// used when Configure retires a previous pool; in-flight batches holding
// the old pool fall back to inline execution once it is closed.
func (p *VerifyPool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	p.mu.Unlock()
	close(p.quit)
	p.wg.Wait()
	for {
		select {
		case t := <-p.tasks:
			p.execute(t)
		default:
			return
		}
	}
}
