package dsig

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"dra4wfms/internal/xmltree"
)

// buildCascade builds an n-signature DRA-style cascade: payload i is signed
// by user i together with the previous Signature element, exactly the
// nonrepudiation chain a routed document accumulates. It returns the root
// and a resolver trusting every participant.
func buildCascade(t testing.TB, n int) (*xmltree.Node, mapResolver) {
	t.Helper()
	root := xmltree.NewElement("Doc")
	resolver := mapResolver{}
	prevSig := ""
	for i := 0; i < n; i++ {
		owner := fmt.Sprintf("user%d", i)
		resolver[owner] = cache.MustGet(owner).Public()
		p := root.Elem("Payload", fmt.Sprintf("result %d", i))
		pid := fmt.Sprintf("p%d", i)
		p.SetAttr("Id", pid)
		refs := []string{pid}
		if prevSig != "" {
			refs = append(refs, prevSig)
		}
		sigID := fmt.Sprintf("sig%d", i)
		sig, err := Sign(root, refs, cache.MustGet(owner), sigID)
		if err != nil {
			t.Fatal(err)
		}
		root.AppendChild(sig)
		prevSig = sigID
	}
	return root, resolver
}

func TestVerifierParallelMatchesSerial(t *testing.T) {
	root, resolver := buildCascade(t, 12)
	for _, v := range []*Verifier{
		{Workers: 1},
		{Workers: 4},
		{Workers: 0}, // GOMAXPROCS
		{Workers: 4, Cache: NewCache(64)},
	} {
		n, err := v.VerifyAll(root, root, resolver)
		if err != nil || n != 12 {
			t.Fatalf("Workers=%d Cache=%v: VerifyAll = %d, %v", v.Workers, v.Cache != nil, n, err)
		}
	}
}

func TestVerifyAllReportsCountAndFailingID(t *testing.T) {
	root, resolver := buildCascade(t, 8)
	// Tamper with payload 3: only sig3 references p3 directly, and the
	// Signature elements themselves are untouched, so exactly sig3 fails.
	root.FindByID("p3").SetText("tampered")

	v := &Verifier{Workers: 1}
	n, err := v.VerifyAll(root, root, resolver)
	if err == nil {
		t.Fatal("tampered cascade verified")
	}
	if n != 3 {
		t.Fatalf("verified count before failure = %d, want 3", n)
	}
	if !strings.Contains(err.Error(), "sig3") {
		t.Fatalf("error does not name the failing signature Id: %v", err)
	}
	if !strings.Contains(err.Error(), "digest mismatch") {
		t.Fatalf("unexpected failure cause: %v", err)
	}

	// Parallel mode must report the same failing signature (count may
	// legitimately include later signatures that finished before cancel).
	vp := &Verifier{Workers: 4}
	if _, err := vp.VerifyAll(root, root, resolver); err == nil || !strings.Contains(err.Error(), "sig3") {
		t.Fatalf("parallel error does not name sig3: %v", err)
	}
}

func TestVerifiedPrefixCacheStillChecksDigests(t *testing.T) {
	root, resolver := buildCascade(t, 6)
	v := &Verifier{Workers: 1, Cache: NewCache(64)}

	if n, err := v.VerifyAll(root, root, resolver); err != nil || n != 6 {
		t.Fatalf("cold verify = %d, %v", n, err)
	}
	if v.Cache.Len() != 6 {
		t.Fatalf("cache holds %d entries after cold verify, want 6", v.Cache.Len())
	}
	if n, err := v.VerifyAll(root, root, resolver); err != nil || n != 6 {
		t.Fatalf("warm verify = %d, %v", n, err)
	}

	// Flip a byte of a mid-cascade payload AFTER the cache is warm: the hit
	// path skips only the RSA operation, never the reference digests, so
	// the tamper must still be rejected.
	root.FindByID("p2").SetText("flipped")
	n, err := v.VerifyAll(root, root, resolver)
	if err == nil {
		t.Fatal("warm cache masked a tampered referenced subtree")
	}
	if n != 2 || !strings.Contains(err.Error(), "sig2") {
		t.Fatalf("warm tamper: n=%d err=%v, want 2 verified and sig2 named", n, err)
	}
}

func TestCacheMissesOnSignatureTamper(t *testing.T) {
	root, resolver := buildCascade(t, 4)
	v := &Verifier{Workers: 1, Cache: NewCache(64)}
	if _, err := v.VerifyAll(root, root, resolver); err != nil {
		t.Fatal(err)
	}
	// Any byte flipped inside a cached Signature element changes its
	// canonical bytes, so the cache cannot vouch for it — the fresh RSA
	// check runs and fails.
	root.Find("SignatureValue").SetText("QUFBQQ==")
	if _, err := v.VerifyAll(root, root, resolver); err == nil {
		t.Fatal("tampered SignatureValue accepted on a warm cache")
	}
}

func TestCacheKeyedByResolvedKey(t *testing.T) {
	root, resolver := buildCascade(t, 3)
	v := &Verifier{Workers: 1, Cache: NewCache(64)}
	if _, err := v.VerifyAll(root, root, resolver); err != nil {
		t.Fatal(err)
	}
	// A different registry binds the same principal names to different
	// keys. The cached entries fingerprint the resolved public key, so the
	// warm cache must not vouch for signatures under the impostor registry.
	impostor := mapResolver{}
	for owner := range resolver {
		impostor[owner] = cache.MustGet("impostor-" + owner).Public()
	}
	if _, err := v.VerifyAll(root, root, impostor); err == nil {
		t.Fatal("cache entry honored under a registry with different keys")
	}
}

func TestCacheEviction(t *testing.T) {
	c := NewCache(2)
	k := func(b byte) cacheKey {
		var key cacheKey
		key.sig[0] = b
		return key
	}
	c.add(k(1))
	c.add(k(2))
	c.add(k(3)) // evicts k(1)
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
	if c.contains(k(1)) {
		t.Fatal("least recently used entry not evicted")
	}
	// Touch k(3) then k(2): k(3) becomes the LRU victim for the next add.
	if !c.contains(k(3)) || !c.contains(k(2)) {
		t.Fatal("recent entries evicted")
	}
	c.add(k(4))
	if !c.contains(k(2)) || c.contains(k(3)) {
		t.Fatal("LRU order not updated on access")
	}
	if NewCache(0) != nil {
		t.Fatal("NewCache(0) should disable caching")
	}
}

func TestVerifyAllConcurrentCallers(t *testing.T) {
	// Several goroutines verifying the same document through one shared
	// verifier — the server steady state. Run with -race.
	root, resolver := buildCascade(t, 8)
	v := &Verifier{Workers: 2, Cache: NewCache(64)}
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if n, err := v.VerifyAll(root, root, resolver); err != nil || n != 8 {
				errs <- fmt.Errorf("VerifyAll = %d, %v", n, err)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestConfigureReplacesDefaultVerifier(t *testing.T) {
	orig := DefaultVerifier()
	defer defaultVerifier.Store(orig)
	Configure(3, 7)
	v := DefaultVerifier()
	if v.Workers != 3 || v.Cache == nil {
		t.Fatalf("Configure not applied: %+v", v)
	}
	Configure(1, 0)
	if DefaultVerifier().Cache != nil {
		t.Fatal("Configure(1, 0) left a cache enabled")
	}
}

// BenchmarkVerifyAll measures the 32-CER cascade of the acceptance
// criterion. "serial" is the pre-optimization baseline (one worker, no
// cache); "parallel" adds the worker pool; "warm" is the steady state a
// tier reaches after verifying the prefix once — the verified-prefix cache
// plus memoized canonical bytes reduce the hop to digest re-checks.
func BenchmarkVerifyAll(b *testing.B) {
	root, resolver := buildCascade(b, 32)
	bench := func(v *Verifier) func(*testing.B) {
		return func(b *testing.B) {
			b.ReportAllocs()
			if n, err := v.VerifyAll(root, root, resolver); err != nil || n != 32 {
				b.Fatalf("VerifyAll = %d, %v", n, err) // also warms the cache
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := v.VerifyAll(root, root, resolver); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	b.Run("serial", bench(&Verifier{Workers: 1}))
	b.Run("parallel", bench(&Verifier{}))
	b.Run("warm", bench(&Verifier{Cache: NewCache(64)}))
	b.Run("warm-serial", bench(&Verifier{Workers: 1, Cache: NewCache(64)}))
}

// BenchmarkCanonicalMemo isolates the xmltree contribution: canonicalizing
// an unchanged 32-CER document with and without a primed memo.
func BenchmarkCanonicalMemo(b *testing.B) {
	root, _ := buildCascade(b, 32)
	b.Run("memoized", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = root.Canonical()
		}
	})
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = root.Clone().Canonical()
		}
	})
}

// TestWarmVerifyAllocsBounded is the dsig half of the allocation ratchet
// (BenchmarkVerifyAll reports the numbers; this pins them). A warm serial
// re-verify hits the prefix cache and canonical memos, so per-signature
// work is Reference digest checks over memoized bytes plus a cache probe —
// a small constant number of allocations per signature, not O(bytes).
func TestWarmVerifyAllocsBounded(t *testing.T) {
	const sigs = 8
	root, resolver := buildCascade(t, sigs)
	v := &Verifier{Workers: 1, Cache: NewCache(64)}
	if n, err := v.VerifyAll(root, root, resolver); err != nil || n != sigs {
		t.Fatalf("prime VerifyAll = %d, %v", n, err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		if _, err := v.VerifyAll(root, root, resolver); err != nil {
			t.Fatal(err)
		}
	})
	if perSig := allocs / sigs; perSig > 20 {
		t.Fatalf("warm VerifyAll allocates %.1f objects per signature, want <= 20", perSig)
	}
}
