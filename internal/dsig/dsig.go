// Package dsig implements XML digital signatures over xmltree documents,
// mirroring the W3C XML-Signature structure the paper's prototype used via
// the Java XML Digital Signature API and Apache Santuario.
//
// A signature is itself an XML element:
//
//	<Signature Id="sig-A1">
//	  <SignedInfo>
//	    <CanonicalizationMethod Algorithm="dra-c14n"></CanonicalizationMethod>
//	    <SignatureMethod Algorithm="rsa-sha256"></SignatureMethod>
//	    <Reference URI="#res-A1">
//	      <DigestMethod Algorithm="sha256"></DigestMethod>
//	      <DigestValue>…base64…</DigestValue>
//	    </Reference>
//	    <Reference URI="#sig-A0">…</Reference>
//	  </SignedInfo>
//	  <SignatureValue>…base64…</SignatureValue>
//	  <KeyInfo><KeyName>peter@acme</KeyName></KeyInfo>
//	</Signature>
//
// Each Reference digests the canonical bytes of the element carrying the
// matching Id attribute anywhere in the enclosing document. The private key
// signs the canonical bytes of SignedInfo, so the signature covers every
// referenced subtree. DRA4WfMS's nonrepudiation cascade falls out naturally:
// the signature embedded after activity Ai references both Ai's encrypted
// execution result and the Signature elements of all predecessor
// activities, each of which is an Id-carrying element.
package dsig

import (
	"crypto"
	"crypto/rsa"
	"crypto/subtle"
	"encoding/base64"
	"errors"
	"fmt"
	"strings"

	"dra4wfms/internal/pki"
	"dra4wfms/internal/telemetry"
	"dra4wfms/internal/xmltree"
)

// Runtime telemetry: operation and byte counters for the crypto hot path
// (the paper's α/β cost drivers).
var (
	mSignOps     = telemetry.Default().Counter("dsig_sign_ops_total")
	mSignBytes   = telemetry.Default().Counter("dsig_sign_bytes_total")
	mVerifyOps   = telemetry.Default().Counter("dsig_verify_ops_total")
	mVerifyBytes = telemetry.Default().Counter("dsig_verify_bytes_total")
)

// Algorithm identifiers recorded inside signatures. Verification rejects
// anything else, preventing silent algorithm downgrades.
const (
	CanonicalizationAlg = "dra-c14n"
	SignatureAlg        = "rsa-sha256"
	DigestAlg           = "sha256"
)

// Element names of the signature structure.
const (
	SignatureElem       = "Signature"
	signedInfoElem      = "SignedInfo"
	referenceElem       = "Reference"
	digestValueElem     = "DigestValue"
	digestMethodElem    = "DigestMethod"
	signatureValueElem  = "SignatureValue"
	keyInfoElem         = "KeyInfo"
	keyNameElem         = "KeyName"
	c14nMethodElem      = "CanonicalizationMethod"
	signatureMethodElem = "SignatureMethod"
)

// KeyResolver resolves a signer ID (the KeyName) to a trusted public key.
// *pki.Registry satisfies it.
type KeyResolver interface {
	PublicKey(id string) (*rsa.PublicKey, error)
}

// ErrMissingReference is returned when a Reference URI does not resolve to
// an element in the document.
var ErrMissingReference = errors.New("dsig: reference target not found")

// ErrDigestMismatch is returned when a referenced subtree's digest no longer
// matches the signed DigestValue — the subtree was altered after signing.
var ErrDigestMismatch = errors.New("dsig: digest mismatch (referenced element was altered)")

// ErrBadSignature is returned when the RSA signature over SignedInfo fails.
var ErrBadSignature = errors.New("dsig: signature value invalid")

// Sign creates a Signature element covering the elements of root whose Id
// attributes appear in refIDs (order preserved), signing under the
// process-wide default suite (see ConfigureSuite). The signature is labeled
// sigID via its own Id attribute so later signatures can reference it, and
// names key.Owner in KeyInfo/KeyName. The returned element is NOT attached
// to root; callers append it where their format requires.
func Sign(root *xmltree.Node, refIDs []string, key *pki.KeyPair, sigID string) (*xmltree.Node, error) {
	return SignWith(nil, root, refIDs, key, sigID)
}

// SignWith is Sign under an explicit signature suite; nil selects the
// process-wide default. The suite's algorithm identifier is recorded in
// SignedInfo/SignatureMethod, inside the signed bytes.
func SignWith(suite Suite, root *xmltree.Node, refIDs []string, key *pki.KeyPair, sigID string) (*xmltree.Node, error) {
	if len(refIDs) == 0 {
		return nil, errors.New("dsig: no references to sign")
	}
	if suite == nil {
		suite = DefaultSuite()
	}
	ix := newDigestIndex(root)
	signedInfo := xmltree.NewElement(signedInfoElem)
	signedInfo.Elem(c14nMethodElem, "").SetAttr("Algorithm", CanonicalizationAlg)
	signedInfo.Elem(signatureMethodElem, "").SetAttr("Algorithm", suite.Alg())
	for _, id := range refIDs {
		digest, err := ix.digest(id)
		if err != nil {
			return nil, err
		}
		ref := xmltree.NewElement(referenceElem)
		ref.SetAttr("URI", "#"+id)
		ref.Elem(digestMethodElem, "").SetAttr("Algorithm", DigestAlg)
		ref.Elem(digestValueElem, base64.StdEncoding.EncodeToString(digest))
		signedInfo.AppendChild(ref)
	}

	canon := signedInfo.Canonical()
	sigValue, err := suite.Sign(key, canon)
	if err != nil {
		return nil, err
	}
	mSignOps.Inc()
	mSignBytes.Add(int64(len(canon)))

	sig := xmltree.NewElement(SignatureElem)
	if sigID != "" {
		sig.SetAttr("Id", sigID)
	}
	sig.AppendChild(signedInfo)
	sig.Elem(signatureValueElem, base64.StdEncoding.EncodeToString(sigValue))
	keyInfo := xmltree.NewElement(keyInfoElem)
	keyInfo.Elem(keyNameElem, key.Owner)
	sig.AppendChild(keyInfo)
	return sig, nil
}

// SignerOf returns the KeyName recorded in a Signature element, or "".
func SignerOf(sig *xmltree.Node) string {
	if ki := sig.Child(keyInfoElem); ki != nil {
		return ki.ChildText(keyNameElem)
	}
	return ""
}

// References returns the Ids (without the leading '#') referenced by a
// Signature element, in signature order.
func References(sig *xmltree.Node) []string {
	si := sig.Child(signedInfoElem)
	if si == nil {
		return nil
	}
	var ids []string
	for _, ref := range si.ChildElements() {
		if ref.Name != referenceElem {
			continue
		}
		uri, _ := ref.Attr("URI")
		ids = append(ids, strings.TrimPrefix(uri, "#"))
	}
	return ids
}

var errMissingKeyName = errors.New("dsig: signature has no KeyName")

// checkStructure validates a Signature element's shape and algorithm
// identifiers and returns its SignedInfo plus the signature suite the
// recorded SignatureMethod selects. Only registered suites pass — an
// unknown or empty algorithm fails closed, so there is no downgrade path.
func checkStructure(sig *xmltree.Node) (*xmltree.Node, Suite, error) {
	si := sig.Child(signedInfoElem)
	if si == nil {
		return nil, nil, errors.New("dsig: Signature has no SignedInfo")
	}
	if alg := algorithmOf(si, c14nMethodElem); alg != CanonicalizationAlg {
		return nil, nil, fmt.Errorf("dsig: unsupported canonicalization %q", alg)
	}
	alg := algorithmOf(si, signatureMethodElem)
	suite, ok := SuiteFor(alg)
	if !ok {
		return nil, nil, fmt.Errorf("dsig: unsupported signature method %q", alg)
	}
	return si, suite, nil
}

// checkReferences recomputes every Reference digest against the current
// document (through the shared index) and compares it to the signed
// DigestValue. This always runs — even on a verified-prefix cache hit —
// because the referenced subtrees live outside the signature and may have
// been altered since it was cached.
func checkReferences(ix *digestIndex, si *xmltree.Node) error {
	nRefs := 0
	for _, ref := range si.ChildElements() {
		if ref.Name != referenceElem {
			continue
		}
		nRefs++
		if alg := algorithmOf(ref, digestMethodElem); alg != DigestAlg {
			return fmt.Errorf("dsig: unsupported digest method %q", alg)
		}
		uri, _ := ref.Attr("URI")
		if !strings.HasPrefix(uri, "#") {
			return fmt.Errorf("dsig: unsupported reference URI %q", uri)
		}
		want, err := base64.StdEncoding.DecodeString(ref.ChildText(digestValueElem))
		if err != nil {
			return fmt.Errorf("dsig: corrupt DigestValue in %s: %w", uri, err)
		}
		got, err := ix.digest(strings.TrimPrefix(uri, "#"))
		if err != nil {
			return err
		}
		if !equalBytes(want, got) {
			return fmt.Errorf("%w: %s", ErrDigestMismatch, uri)
		}
	}
	if nRefs == 0 {
		return errors.New("dsig: signature covers no references")
	}
	return nil
}

// checkSignatureValue verifies the suite signature over SignedInfo's
// canonical bytes under the resolved public key.
func checkSignatureValue(si, sig *xmltree.Node, signer string, pub crypto.PublicKey, suite Suite) error {
	sigValue, err := base64.StdEncoding.DecodeString(sig.ChildText(signatureValueElem))
	if err != nil {
		return fmt.Errorf("dsig: corrupt SignatureValue: %w", err)
	}
	canon := si.Canonical()
	if err := suite.Verify(pub, canon, sigValue); err != nil {
		return fmt.Errorf("%w (signer %s, suite %s)", ErrBadSignature, signer, suite.Alg())
	}
	mVerifyOps.Inc()
	mVerifyBytes.Add(int64(len(canon)))
	return nil
}

// Verify checks a Signature element against the current state of root:
// every Reference digest must match the present canonical bytes of its
// target, and the RSA signature over SignedInfo must verify under the
// public key the resolver returns for the recorded KeyName. It uses no
// cache; batch verification goes through Verifier.VerifyAll.
func Verify(root, sig *xmltree.Node, resolver KeyResolver) error {
	return verifyWith(newDigestIndex(root), sig, resolver, nil)
}

// VerifyAll verifies every Signature element found in the subtree rooted at
// container against the document root using the process-wide default
// verifier (parallel workers plus the verified-prefix cache; see
// Configure). It reports the number of signatures that verified; on
// failure that count excludes the failing signature and the error names the
// failing signature's Id.
func VerifyAll(root, container *xmltree.Node, resolver KeyResolver) (int, error) {
	return DefaultVerifier().VerifyAll(root, container, resolver)
}

func algorithmOf(parent *xmltree.Node, elem string) string {
	if c := parent.Child(elem); c != nil {
		return c.AttrDefault("Algorithm", "")
	}
	return ""
}

// equalBytes compares digests without leaking a timing oracle on the
// first differing byte (the dralint consttime invariant).
func equalBytes(a, b []byte) bool {
	return subtle.ConstantTimeCompare(a, b) == 1
}
