package dsig

import (
	"crypto/rsa"
	"fmt"
	"strings"
	"testing"

	"dra4wfms/internal/pki"
	"dra4wfms/internal/xmltree"
)

var cache = pki.NewKeyCache(1024)

type mapResolver map[string]*rsa.PublicKey

func (m mapResolver) PublicKey(id string) (*rsa.PublicKey, error) {
	if k, ok := m[id]; ok {
		return k, nil
	}
	return nil, fmt.Errorf("no key for %s", id)
}

func resolverFor(owners ...string) mapResolver {
	m := mapResolver{}
	for _, o := range owners {
		m[o] = cache.MustGet(o).Public()
	}
	return m
}

// buildDoc returns a document with two signable payloads.
func buildDoc() *xmltree.Node {
	root := xmltree.NewElement("Doc")
	root.Elem("Payload", "hello world").SetAttr("Id", "p1")
	root.Elem("Payload", "second part").SetAttr("Id", "p2")
	return root
}

func TestSignAndVerify(t *testing.T) {
	root := buildDoc()
	alice := cache.MustGet("alice")
	sig, err := Sign(root, []string{"p1", "p2"}, alice, "sig1")
	if err != nil {
		t.Fatal(err)
	}
	root.AppendChild(sig)

	if err := Verify(root, sig, resolverFor("alice")); err != nil {
		t.Fatalf("valid signature rejected: %v", err)
	}
	if got := SignerOf(sig); got != "alice" {
		t.Fatalf("SignerOf = %q", got)
	}
	refs := References(sig)
	if len(refs) != 2 || refs[0] != "p1" || refs[1] != "p2" {
		t.Fatalf("References = %v", refs)
	}
}

func TestVerifyDetectsContentTamper(t *testing.T) {
	root := buildDoc()
	alice := cache.MustGet("alice")
	sig, _ := Sign(root, []string{"p1"}, alice, "sig1")
	root.AppendChild(sig)

	root.FindByID("p1").SetText("altered by superuser")
	err := Verify(root, sig, resolverFor("alice"))
	if err == nil {
		t.Fatal("tampered content verified")
	}
	if !strings.Contains(err.Error(), "digest mismatch") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestVerifyDetectsAttrTamper(t *testing.T) {
	root := buildDoc()
	alice := cache.MustGet("alice")
	sig, _ := Sign(root, []string{"p1"}, alice, "sig1")
	root.AppendChild(sig)

	root.FindByID("p1").SetAttr("Injected", "true")
	if err := Verify(root, sig, resolverFor("alice")); err == nil {
		t.Fatal("attribute tamper verified")
	}
}

func TestVerifyDetectsRemovedTarget(t *testing.T) {
	root := buildDoc()
	alice := cache.MustGet("alice")
	sig, _ := Sign(root, []string{"p1"}, alice, "sig1")
	root.AppendChild(sig)

	root.RemoveChild(root.FindByID("p1"))
	if err := Verify(root, sig, resolverFor("alice")); err == nil {
		t.Fatal("signature verified after its target was deleted")
	}
}

func TestVerifyDetectsDigestSwap(t *testing.T) {
	// An attacker who alters content and re-computes the DigestValue still
	// fails: SignedInfo (containing digests) is what the RSA key signed.
	root := buildDoc()
	alice := cache.MustGet("alice")
	sig, _ := Sign(root, []string{"p1"}, alice, "sig1")
	root.AppendChild(sig)

	root.FindByID("p1").SetText("altered")
	// Recompute and overwrite the digest like a malicious intermediary.
	fresh, _ := Sign(root, []string{"p1"}, alice, "tmp") // digests current state
	freshDigest := fresh.Find("DigestValue").TextContent()
	sig.Find("DigestValue").SetText(freshDigest)

	err := Verify(root, sig, resolverFor("alice"))
	if err == nil {
		t.Fatal("digest-swap attack succeeded")
	}
	if !strings.Contains(err.Error(), "signature value invalid") {
		t.Fatalf("want signature-value failure, got: %v", err)
	}
}

func TestVerifyWrongSignerClaim(t *testing.T) {
	// Attacker replaces KeyName to pin the signature on someone else.
	root := buildDoc()
	alice := cache.MustGet("alice")
	sig, _ := Sign(root, []string{"p1"}, alice, "sig1")
	root.AppendChild(sig)
	sig.Find("KeyName").SetText("bob")

	if err := Verify(root, sig, resolverFor("alice", "bob")); err == nil {
		t.Fatal("signature accepted under reassigned KeyName")
	}
}

func TestVerifyUnknownSigner(t *testing.T) {
	root := buildDoc()
	alice := cache.MustGet("alice")
	sig, _ := Sign(root, []string{"p1"}, alice, "sig1")
	root.AppendChild(sig)
	if err := Verify(root, sig, resolverFor("bob")); err == nil {
		t.Fatal("signature from unregistered signer accepted")
	}
}

func TestAlgorithmDowngradeRejected(t *testing.T) {
	root := buildDoc()
	alice := cache.MustGet("alice")
	sig, _ := Sign(root, []string{"p1"}, alice, "sig1")
	root.AppendChild(sig)

	for _, elem := range []string{"CanonicalizationMethod", "SignatureMethod", "DigestMethod"} {
		s := sig.Clone()
		s.Find(elem).SetAttr("Algorithm", "md5-home-rolled")
		if err := Verify(root, s, resolverFor("alice")); err == nil {
			t.Fatalf("downgraded %s accepted", elem)
		}
	}
}

func TestSignMissingReference(t *testing.T) {
	root := buildDoc()
	alice := cache.MustGet("alice")
	if _, err := Sign(root, []string{"no-such-id"}, alice, "s"); err == nil {
		t.Fatal("Sign with dangling reference succeeded")
	}
	if _, err := Sign(root, nil, alice, "s"); err == nil {
		t.Fatal("Sign with zero references succeeded")
	}
}

func TestCascadeSignatures(t *testing.T) {
	// The DRA4WfMS cascade: sig2 references payload p2 AND sig1 itself.
	// Any tamper with p1 breaks sig1; any tamper with sig1 breaks sig2.
	root := buildDoc()
	alice := cache.MustGet("alice")
	bob := cache.MustGet("bob")
	resolver := resolverFor("alice", "bob")

	sig1, _ := Sign(root, []string{"p1"}, alice, "sig1")
	root.AppendChild(sig1)
	sig2, err := Sign(root, []string{"p2", "sig1"}, bob, "sig2")
	if err != nil {
		t.Fatal(err)
	}
	root.AppendChild(sig2)

	if n, err := VerifyAll(root, root, resolver); err != nil || n != 2 {
		t.Fatalf("VerifyAll = %d, %v", n, err)
	}

	// Tampering with sig1 (e.g. stripping a reference) breaks sig2.
	si := sig1.Child("SignedInfo")
	si.SetAttr("X", "1")
	if _, err := VerifyAll(root, root, resolver); err == nil {
		t.Fatal("cascade did not detect predecessor-signature tamper")
	}
}

func TestCascadeDeepChain(t *testing.T) {
	// Chain of 8 participants, each signing its payload and the previous
	// signature; altering the FIRST payload must break verification, and it
	// must be detectable even if the first signature is "fixed up" because
	// signature k+1 signed signature k.
	root := xmltree.NewElement("Doc")
	resolver := mapResolver{}
	prevSig := ""
	for i := 0; i < 8; i++ {
		owner := fmt.Sprintf("user%d", i)
		resolver[owner] = cache.MustGet(owner).Public()
		p := root.Elem("Payload", fmt.Sprintf("result %d", i))
		pid := fmt.Sprintf("p%d", i)
		p.SetAttr("Id", pid)
		refs := []string{pid}
		if prevSig != "" {
			refs = append(refs, prevSig)
		}
		sigID := fmt.Sprintf("sig%d", i)
		sig, err := Sign(root, refs, cache.MustGet(owner), sigID)
		if err != nil {
			t.Fatal(err)
		}
		root.AppendChild(sig)
		prevSig = sigID
	}
	if n, err := VerifyAll(root, root, resolver); err != nil || n != 8 {
		t.Fatalf("VerifyAll = %d, %v", n, err)
	}

	root.FindByID("p0").SetText("repudiated!")
	if _, err := VerifyAll(root, root, resolver); err == nil {
		t.Fatal("deep cascade did not detect root tamper")
	}
}

func TestVerifyAllEmpty(t *testing.T) {
	root := buildDoc()
	if n, err := VerifyAll(root, root, resolverFor()); err != nil || n != 0 {
		t.Fatalf("VerifyAll on unsigned doc = %d, %v", n, err)
	}
}

func TestSignatureSurvivesSerializationRoundTrip(t *testing.T) {
	root := buildDoc()
	alice := cache.MustGet("alice")
	sig, _ := Sign(root, []string{"p1", "p2"}, alice, "sig1")
	root.AppendChild(sig)

	back, err := xmltree.ParseBytes(root.Canonical())
	if err != nil {
		t.Fatal(err)
	}
	sigBack := back.Find("Signature")
	if sigBack == nil {
		t.Fatal("signature lost in round trip")
	}
	if err := Verify(back, sigBack, resolverFor("alice")); err != nil {
		t.Fatalf("signature invalid after serialization round trip: %v", err)
	}
}

func TestCorruptSignatureFields(t *testing.T) {
	root := buildDoc()
	alice := cache.MustGet("alice")
	resolver := resolverFor("alice")

	cases := []struct {
		name   string
		mutate func(sig *xmltree.Node)
	}{
		{"garbage DigestValue", func(s *xmltree.Node) { s.Find("DigestValue").SetText("!!!") }},
		{"garbage SignatureValue", func(s *xmltree.Node) { s.Find("SignatureValue").SetText("!!!") }},
		{"no SignedInfo", func(s *xmltree.Node) { s.RemoveChild(s.Child("SignedInfo")) }},
		{"no KeyInfo", func(s *xmltree.Node) { s.RemoveChild(s.Child("KeyInfo")) }},
		{"external URI", func(s *xmltree.Node) { s.Find("Reference").SetAttr("URI", "http://evil") }},
		{"no references", func(s *xmltree.Node) {
			si := s.Child("SignedInfo")
			for _, r := range si.FindAll("Reference") {
				si.RemoveChild(r)
			}
		}},
	}
	for _, c := range cases {
		sig, _ := Sign(root, []string{"p1"}, alice, "sig1")
		c.mutate(sig)
		if err := Verify(root, sig, resolver); err == nil {
			t.Errorf("%s: corrupted signature verified", c.name)
		}
	}
}
