// Verification fast path for signature cascades.
//
// A routed DRA4WfMS document accumulates one Signature element per executed
// activity, and every tier (AEA, portal, TFC) re-verifies the whole cascade
// on every hop — the α cost of the paper's Tables 1–2, which grows linearly
// per hop and quadratically over a workflow. Three optimizations attack it:
//
//  1. a one-pass id→digest index shared by every signature in a batch
//     (replacing a full-document FindByID walk per Reference);
//  2. a bounded worker pool fanning independent RSA verifications out over
//     the available cores, with fail-fast cancellation;
//  3. a verified-prefix cache: an LRU of (signature canonical bytes, signer
//     public key) pairs whose RSA signature has already verified. On a hit
//     the RSA operation is skipped — the Reference digests are still
//     recomputed against the CURRENT tree, so tampering with a referenced
//     subtree is caught even when the signature itself is cached, and any
//     byte flipped inside the Signature element changes its canonical
//     bytes, missing the cache and failing the fresh RSA check.
//
// Together with the canonical-bytes memoization in package xmltree this
// turns the steady-state per-hop α from O(#signatures) RSA verifications
// into O(new signatures), the single biggest lever on the paper's
// scalability claim.
package dsig

import (
	"container/list"
	"context"
	"crypto"
	"crypto/rsa"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"

	"dra4wfms/internal/pki"
	"dra4wfms/internal/telemetry"
	"dra4wfms/internal/xmltree"
)

// Fast-path telemetry: prefix-cache effectiveness and the batch span.
var (
	mCacheHits      = telemetry.Default().Counter("dsig_verify_cache_hits_total")
	mCacheMisses    = telemetry.Default().Counter("dsig_verify_cache_misses_total")
	mCacheEvictions = telemetry.Default().Counter("dsig_verify_cache_evictions_total")
)

// DefaultCacheSize is the verified-prefix cache capacity used by the
// process-wide default verifier. Each entry is a fixed 64-byte key, so the
// default costs a few hundred KB at worst.
const DefaultCacheSize = 4096

// digestIndex resolves Reference URIs for a batch of signatures against one
// document: the id→element map is built in a single walk, and each target's
// SHA-256 digest is computed at most once per batch regardless of how many
// signatures reference it. Safe for concurrent use by the worker pool.
type digestIndex struct {
	byID map[string]*xmltree.Node

	mu   sync.Mutex
	sums map[string][]byte
}

// newDigestIndex walks root once, recording the first element (in document
// order) carrying each Id value — the same element FindByID would return.
func newDigestIndex(root *xmltree.Node) *digestIndex {
	ix := &digestIndex{
		byID: make(map[string]*xmltree.Node),
		sums: make(map[string][]byte),
	}
	root.Walk(func(e *xmltree.Node) bool {
		if v, ok := e.Attr("Id"); ok {
			if _, dup := ix.byID[v]; !dup {
				ix.byID[v] = e
			}
		}
		return true
	})
	return ix
}

// digest returns the SHA-256 of the canonical bytes of the element with the
// given Id, computing it on first use and serving the batch-local copy
// afterwards.
func (ix *digestIndex) digest(id string) ([]byte, error) {
	ix.mu.Lock()
	sum, ok := ix.sums[id]
	ix.mu.Unlock()
	if ok {
		return sum, nil
	}
	target := ix.byID[id]
	if target == nil {
		return nil, fmt.Errorf("%w: #%s", ErrMissingReference, id)
	}
	// Canonical is memoized and safe for concurrent readers; two workers
	// racing on the same id compute identical bytes, so last-write-wins on
	// the sums map is harmless.
	s := sha256.Sum256(target.Canonical())
	ix.mu.Lock()
	ix.sums[id] = s[:]
	ix.mu.Unlock()
	return s[:], nil
}

// cacheKey identifies one successfully verified (signature, key) pair. The
// signature component hashes the Signature element's full canonical bytes —
// SignedInfo with every DigestValue, SignatureValue, KeyInfo — so any
// mutation inside the signature changes the key. The key component
// fingerprints the RESOLVED public key (modulus and exponent, not just the
// KeyName), so two registries that bind the same principal name to
// different keys can never satisfy each other's cache entries.
type cacheKey struct {
	sig [sha256.Size]byte
	key [sha256.Size]byte
}

func keyFingerprint(signer string, pub *rsa.PublicKey) [sha256.Size]byte {
	h := sha256.New()
	h.Write([]byte(signer))
	h.Write([]byte{0})
	h.Write(pub.N.Bytes())
	var e [8]byte
	binary.BigEndian.PutUint64(e[:], uint64(pub.E))
	h.Write(e[:])
	var fp [sha256.Size]byte
	h.Sum(fp[:0])
	return fp
}

// Cache is a fixed-capacity LRU of verified (signature, key) pairs — the
// verified-prefix cache. A hit proves the RSA signature over SignedInfo
// already verified under the same public key; it says nothing about the
// referenced subtrees, whose digests the verifier always rechecks against
// the current document. Safe for concurrent use.
type Cache struct {
	mu    sync.Mutex
	max   int
	order *list.List // front = most recently used; values are cacheKey
	items map[cacheKey]*list.Element
}

// NewCache returns a verified-prefix cache holding up to max entries.
// A non-positive max returns nil, which disables caching.
func NewCache(max int) *Cache {
	if max <= 0 {
		return nil
	}
	return &Cache{max: max, order: list.New(), items: make(map[cacheKey]*list.Element)}
}

// contains reports whether k was verified before, marking it most recently
// used. A nil cache never hits.
func (c *Cache) contains(k cacheKey) bool {
	if c == nil {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[k]
	if ok {
		c.order.MoveToFront(el)
	}
	return ok
}

// add records a successful verification, evicting the least recently used
// entry when full.
func (c *Cache) add(k cacheKey) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[k]; ok {
		c.order.MoveToFront(el)
		return
	}
	c.items[k] = c.order.PushFront(k)
	for len(c.items) > c.max {
		back := c.order.Back()
		c.order.Remove(back)
		delete(c.items, back.Value.(cacheKey))
		mCacheEvictions.Inc()
	}
}

// Len returns the number of cached verifications.
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.items)
}

// Verifier verifies signature batches through a shared worker pool and an
// optional verified-prefix cache. The zero value verifies serially with no
// cache; the package-level default (see Configure) feeds the process-wide
// pool and a shared cache.
type Verifier struct {
	// Workers bounds concurrent signature verifications in a batch.
	// 0 means GOMAXPROCS; 1 forces serial verification.
	Workers int
	// Cache is the verified-prefix cache; nil disables it.
	Cache *Cache
	// Pool is the shared verify pool batches submit to. nil with
	// Workers != 1 falls back to a per-batch goroutine fan-out (the
	// pre-pool behavior, kept for standalone Verifier values).
	Pool *VerifyPool
}

// defaultVerifier is what package-level VerifyAll uses; replaced atomically
// by Configure so servers can apply flags after init.
var defaultVerifier atomic.Pointer[Verifier]

func init() {
	defaultVerifier.Store(&Verifier{
		Cache: NewCache(DefaultCacheSize),
		Pool:  NewVerifyPool(0, 0),
	})
}

// DefaultVerifier returns the process-wide verifier used by VerifyAll.
func DefaultVerifier() *Verifier { return defaultVerifier.Load() }

// Configure replaces the process-wide verifier: workers sizes the shared
// verify pool (0 = GOMAXPROCS, 1 = serial, no pool) and cacheSize sizes a
// fresh verified-prefix cache (0 disables caching). Binaries expose these
// as -verify-workers and -verify-cache flags.
//
// Reconfiguration is safe while verifications are in flight: the new
// verifier is swapped in atomically, and the previous pool is retired
// asynchronously — its queued work is drained to completion, and batches
// still holding it simply fall back to inline execution once it refuses
// submissions. Concurrent Configure calls each retire exactly the
// verifier they displaced.
func Configure(workers, cacheSize int) {
	v := &Verifier{Workers: workers, Cache: NewCache(cacheSize)}
	if workers != 1 {
		v.Pool = NewVerifyPool(workers, 0)
	}
	old := defaultVerifier.Swap(v)
	if old != nil && old.Pool != nil {
		go old.Pool.Close()
	}
}

// VerifyAll verifies every Signature element found in the subtree rooted at
// container against the document root. It returns the number of signatures
// that verified; on failure that count excludes the failing signature, and
// the error names the failing signature's Id.
func (v *Verifier) VerifyAll(root, container *xmltree.Node, resolver KeyResolver) (int, error) {
	return v.VerifyAllCtx(context.Background(), root, container, resolver)
}

// VerifyAllCtx is VerifyAll carrying the caller's trace context: inside
// a sampled distributed trace the batch verification lands as a
// dsig-tier span — the RSA wall of the paper's α column, attributed.
func (v *Verifier) VerifyAllCtx(ctx context.Context, root, container *xmltree.Node, resolver KeyResolver) (int, error) {
	sigs := container.FindAll(SignatureElem)
	n, idx, err := v.VerifyBatchCtx(ctx, root, sigs, resolver)
	if err != nil {
		if idx < 0 || idx >= len(sigs) {
			// No single signature failed — the batch itself was abandoned
			// (context deadline/cancellation).
			return n, err
		}
		return n, fmt.Errorf("signature %s: %w", sigLabel(sigs[idx], idx), err)
	}
	return n, nil
}

// sigLabel names a signature for error messages: its Id when present, its
// batch position otherwise.
func sigLabel(sig *xmltree.Node, idx int) string {
	if id := sig.AttrDefault("Id", ""); id != "" {
		return id
	}
	return fmt.Sprintf("#%d", idx)
}

// VerifyBatch verifies the given signatures against root, sharing one
// id→digest index across the batch and fanning the work over the worker
// pool. It returns the number of signatures that verified and, on failure,
// the index of the failing signature (the lowest failing index when several
// fail) so callers can attribute the error; failedIdx is -1 on success.
func (v *Verifier) VerifyBatch(root *xmltree.Node, sigs []*xmltree.Node, resolver KeyResolver) (verified int, failedIdx int, err error) {
	return v.VerifyBatchCtx(context.Background(), root, sigs, resolver)
}

// VerifyBatchCtx is VerifyBatch carrying the caller's trace context
// (see VerifyAllCtx).
func (v *Verifier) VerifyBatchCtx(tctx context.Context, root *xmltree.Node, sigs []*xmltree.Node, resolver KeyResolver) (verified int, failedIdx int, err error) {
	if len(sigs) == 0 {
		return 0, -1, nil
	}
	// Deadline abandonment: an expired caller budget (the propagated
	// X-DRA-Deadline) means nobody is waiting for the answer — refuse
	// before building the digest index or spending a single RSA verify.
	if cerr := tctx.Err(); cerr != nil {
		return 0, -1, cerr
	}
	tctx, span := telemetry.Default().StartSpanCtx(tctx, "dsig_verify_all_seconds")
	defer span.End()
	span.Trace().SetAttr("sigs", strconv.Itoa(len(sigs)))

	ix := newDigestIndex(root)
	workers := v.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(sigs) {
		workers = len(sigs)
	}

	if workers <= 1 {
		for i, s := range sigs {
			if cerr := tctx.Err(); cerr != nil {
				return i, -1, cerr
			}
			if err := verifyWith(ix, s, resolver, v.Cache); err != nil {
				return i, i, err
			}
		}
		return len(sigs), -1, nil
	}

	// Parallel path. Each signature becomes one task; the first failure
	// cancels the rest, and when several signatures fail in the same batch
	// the lowest index wins so error attribution is stable. The cancel
	// context derives from tctx so an expiring propagated deadline
	// abandons the remainder of the batch mid-flight.
	ctx, cancel := context.WithCancel(tctx)
	defer cancel()
	var (
		okCount atomic.Int64
		mu      sync.Mutex
		wg      sync.WaitGroup
	)
	failedIdx = -1
	record := func(i int, verr error) {
		if verr == nil {
			okCount.Add(1)
			return
		}
		mu.Lock()
		if failedIdx == -1 || i < failedIdx {
			failedIdx, err = i, verr
		}
		mu.Unlock()
		cancel()
	}

	if v.Pool != nil {
		// Shared-pool path: offer every signature to the process-wide
		// pool; when the admission queue is saturated (or the pool was
		// retired by a concurrent Configure) the batch goroutine lends
		// itself and runs the task inline, so total parallelism degrades
		// gracefully instead of queueing without bound.
		for i := range sigs {
			if ctx.Err() != nil {
				break // fail-fast: stop feeding a failed batch
			}
			i := i
			wg.Add(1)
			task := func() {
				defer wg.Done()
				select {
				case <-ctx.Done():
					return
				default:
				}
				record(i, verifyWith(ix, sigs[i], resolver, v.Cache))
			}
			if !v.Pool.TrySubmit(task) {
				mPoolInline.Inc()
				task()
			}
		}
		wg.Wait()
	} else {
		// Standalone fan-out: workers pull indices from an atomic counter.
		var next atomic.Int64
		next.Store(-1)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1))
					if i >= len(sigs) {
						return
					}
					select {
					case <-ctx.Done():
						return
					default:
					}
					if verr := verifyWith(ix, sigs[i], resolver, v.Cache); verr != nil {
						record(i, verr)
						return
					}
					okCount.Add(1)
				}
			}()
		}
		wg.Wait()
	}
	if err != nil {
		return int(okCount.Load()), failedIdx, err
	}
	// The batch may have been cancelled by the caller's deadline rather
	// than a bad signature: tasks skipped after cancellation verified
	// nothing, so success may only be claimed when every signature ran.
	if cerr := tctx.Err(); cerr != nil && int(okCount.Load()) != len(sigs) {
		return int(okCount.Load()), -1, cerr
	}
	return len(sigs), -1, nil
}

// SuiteKeyResolver is the resolver fast path: it returns the parsed public
// key of the requested type together with a precomputed fingerprint, so
// the hot loop neither re-parses key material nor re-hashes it per
// signature. *pki.Registry satisfies it via its per-principal
// resolved-key cache; resolvers that don't are served through the legacy
// RSA-only PublicKey method.
type SuiteKeyResolver interface {
	SuiteKey(id, keyType string) (crypto.PublicKey, [sha256.Size]byte, error)
}

// resolveSignerKey resolves signer to key material matching the suite,
// plus the fingerprint that binds verified-prefix cache entries to the
// resolved key.
func resolveSignerKey(resolver KeyResolver, signer string, suite Suite) (crypto.PublicKey, [sha256.Size]byte, error) {
	if sr, ok := resolver.(SuiteKeyResolver); ok {
		return sr.SuiteKey(signer, suite.KeyType())
	}
	// Legacy resolvers only know RSA keys.
	if suite.KeyType() != pki.KeyRSA {
		return nil, [sha256.Size]byte{}, fmt.Errorf("dsig: resolver %T cannot supply %s keys", resolver, suite.KeyType())
	}
	pub, err := resolver.PublicKey(signer)
	if err != nil {
		return nil, [sha256.Size]byte{}, err
	}
	return pub, keyFingerprint(signer, pub), nil
}

// verifyWith performs the full verification of one signature: structural
// and algorithm checks, every Reference digest recomputed against the
// current document through the shared index, and the suite signature over
// SignedInfo — the last skipped on a verified-prefix cache hit, since the
// hit proves the identical signature bytes already verified under the same
// resolved key.
func verifyWith(ix *digestIndex, sig *xmltree.Node, resolver KeyResolver, cache *Cache) error {
	si, suite, err := checkStructure(sig)
	if err != nil {
		return err
	}
	if err := checkReferences(ix, si); err != nil {
		return err
	}

	signer := SignerOf(sig)
	if signer == "" {
		return errMissingKeyName
	}
	pub, fp, err := resolveSignerKey(resolver, signer, suite)
	if err != nil {
		return fmt.Errorf("dsig: resolving signer %q: %w", signer, err)
	}

	var key cacheKey
	if cache != nil {
		key = cacheKey{sig: sha256.Sum256(sig.Canonical()), key: fp}
		if cache.contains(key) {
			mCacheHits.Inc()
			return nil
		}
		mCacheMisses.Inc()
	}

	if err := checkSignatureValue(si, sig, signer, pub, suite); err != nil {
		return err
	}
	cache.add(key)
	return nil
}
