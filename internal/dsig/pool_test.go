package dsig

import (
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

func TestVerifyPoolBatchMatchesSerial(t *testing.T) {
	root, resolver := buildCascade(t, 12)
	pool := NewVerifyPool(2, 2)
	defer pool.Close()
	for _, v := range []*Verifier{
		{Workers: 4, Pool: pool},
		{Workers: 4, Pool: pool, Cache: NewCache(64)},
		{Workers: 0, Pool: pool},
	} {
		n, err := v.VerifyAll(root, root, resolver)
		if err != nil || n != 12 {
			t.Fatalf("pooled VerifyAll = %d, %v", n, err)
		}
	}
}

func TestVerifyPoolFailFastAttribution(t *testing.T) {
	root, resolver := buildCascade(t, 8)
	root.FindByID("p3").SetText("tampered")
	pool := NewVerifyPool(2, 2)
	defer pool.Close()
	v := &Verifier{Workers: 4, Pool: pool}
	if _, err := v.VerifyAll(root, root, resolver); err == nil || !strings.Contains(err.Error(), "sig3") {
		t.Fatalf("pooled error does not name sig3: %v", err)
	}
}

// TestVerifyPoolSaturationRunsInline drives a batch through a pool whose
// single worker is blocked: every signature must still verify because the
// submitting goroutine runs refused tasks itself (the saturating design).
func TestVerifyPoolSaturationRunsInline(t *testing.T) {
	root, resolver := buildCascade(t, 8)
	pool := NewVerifyPool(1, 1)
	defer pool.Close()

	// Wedge the lone worker and fill the queue so every TrySubmit from the
	// batch below is refused.
	block := make(chan struct{})
	started := make(chan struct{})
	var wedge sync.WaitGroup
	wedge.Add(1)
	if !pool.TrySubmit(func() { defer wedge.Done(); close(started); <-block }) {
		t.Fatal("wedge task refused")
	}
	<-started
	wedge.Add(1)
	if !pool.TrySubmit(func() { wedge.Done() }) {
		t.Fatal("queue-filling task refused")
	}

	v := &Verifier{Workers: 4, Pool: pool}
	n, err := v.VerifyAll(root, root, resolver)
	if err != nil || n != 8 {
		t.Fatalf("saturated pool VerifyAll = %d, %v", n, err)
	}
	close(block)
	wedge.Wait()
}

// TestVerifyPoolCloseDrains proves the Close contract: tasks admitted
// before the close run to completion, and submissions after it are
// refused — so no batch can lose work or hang on a retired pool.
func TestVerifyPoolCloseDrains(t *testing.T) {
	pool := NewVerifyPool(1, 8)
	block := make(chan struct{})
	started := make(chan struct{})
	if !pool.TrySubmit(func() { close(started); <-block }) {
		t.Fatal("wedge task refused")
	}
	<-started

	var ran atomic.Int32
	for i := 0; i < 5; i++ {
		if !pool.TrySubmit(func() { ran.Add(1) }) {
			t.Fatalf("task %d refused with queue space free", i)
		}
	}
	done := make(chan struct{})
	go func() { pool.Close(); close(done) }()
	close(block)
	<-done
	if got := ran.Load(); got != 5 {
		t.Fatalf("%d of 5 admitted tasks ran after Close", got)
	}
	if pool.TrySubmit(func() {}) {
		t.Fatal("TrySubmit accepted work on a closed pool")
	}
	pool.Close() // idempotent
}

// TestConfigureWhileVerifying reconfigures the process-wide verifier while
// package-level verifications are in flight — the satellite race fix. Run
// with -race: the old pools are retired concurrently with batches still
// holding them, which must degrade to inline execution, never to a hang,
// a lost task, or a data race.
func TestConfigureWhileVerifying(t *testing.T) {
	orig := DefaultVerifier()
	defer func() {
		old := defaultVerifier.Swap(orig)
		if old != nil && old.Pool != nil && old.Pool != orig.Pool {
			old.Pool.Close()
		}
	}()

	root, resolver := buildCascade(t, 6)
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if n, err := VerifyAll(root, root, resolver); err != nil || n != 6 {
					errs <- err
					return
				}
			}
		}()
	}
	for i := 0; i < 20; i++ {
		Configure(1+i%4, 16)
	}
	close(stop)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("verification failed during reconfiguration: %v", err)
	}
}
