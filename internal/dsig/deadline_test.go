package dsig

import (
	"context"
	"errors"
	"testing"
)

// An expired caller deadline must abandon the batch before any RSA work
// and surface context.DeadlineExceeded — never a panic from attributing
// the error to a signature that did not fail.
func TestVerifyBatchAbandonedOnExpiredDeadline(t *testing.T) {
	root, resolver := buildCascade(t, 6)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	for _, v := range []*Verifier{
		{Workers: 1},
		{Workers: 4},
	} {
		sigs := root.FindAll(SignatureElem)
		n, idx, err := v.VerifyBatchCtx(ctx, root, sigs, resolver)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("Workers=%d: VerifyBatchCtx err = %v, want context.Canceled", v.Workers, err)
		}
		if n != 0 {
			t.Fatalf("Workers=%d: claimed %d verified on an abandoned batch", v.Workers, n)
		}
		if idx != -1 {
			t.Fatalf("Workers=%d: failing index %d, want -1 (no signature failed)", v.Workers, idx)
		}

		// VerifyAllCtx on the same abandoned batch must not panic trying
		// to label signature -1.
		if _, err := v.VerifyAllCtx(ctx, root, root, resolver); !errors.Is(err, context.Canceled) {
			t.Fatalf("Workers=%d: VerifyAllCtx err = %v, want context.Canceled", v.Workers, err)
		}
	}
}

// A live deadline must not disturb a healthy batch.
func TestVerifyBatchWithLiveDeadline(t *testing.T) {
	root, resolver := buildCascade(t, 6)
	ctx, cancel := context.WithTimeout(context.Background(), 30e9)
	defer cancel()
	v := &Verifier{Workers: 4}
	if n, err := v.VerifyAllCtx(ctx, root, root, resolver); err != nil || n != 6 {
		t.Fatalf("VerifyAllCtx = %d, %v", n, err)
	}
}
