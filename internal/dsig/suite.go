package dsig

import (
	"crypto"
	"crypto/ed25519"
	"crypto/rsa"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"dra4wfms/internal/pki"
)

// Signature suites. The cascade construction (Algorithm 1 of the paper) is
// agnostic to the signature primitive: a Signature element records its
// SignatureMethod Algorithm, the signer's KeyName resolves to key material
// of the matching type, and everything else — canonicalization, Reference
// digests, the verified-prefix cache — is shared. A Suite bundles the
// primitive-specific pieces so cascades can be built and verified under
// RSA-2048/SHA-256 (the paper's prototype) or Ed25519 interchangeably.
//
// Verification never trusts the default suite: each signature's recorded
// algorithm selects the suite from the fixed registry, and unknown
// algorithms fail closed, so there is no downgrade path — forging a
// cascade under a different suite still requires the signer's registered
// key of that type.

// Suite is one signature algorithm: how to sign SignedInfo bytes, how to
// verify them, which algorithm identifier the wire format records, and
// which half of a principal's key material it consumes.
type Suite interface {
	// Alg returns the SignatureMethod Algorithm identifier.
	Alg() string
	// KeyType names the key material the suite needs (pki.KeyRSA, …).
	KeyType() string
	// Sign signs msg (canonical SignedInfo bytes) with key.
	Sign(key *pki.KeyPair, msg []byte) ([]byte, error)
	// Verify checks sig over msg under pub, which must be of KeyType.
	Verify(pub crypto.PublicKey, msg, sig []byte) error
}

// SignatureAlgEd25519 is the SignatureMethod identifier of the Ed25519
// suite (SignatureAlg is the RSA default).
const SignatureAlgEd25519 = "ed25519"

// rsaSuite is RSASSA-PKCS1-v1_5 over SHA-256 — the default, matching the
// paper's Java XML-DSig prototype.
type rsaSuite struct{}

func (rsaSuite) Alg() string     { return SignatureAlg }
func (rsaSuite) KeyType() string { return pki.KeyRSA }

func (rsaSuite) Sign(key *pki.KeyPair, msg []byte) ([]byte, error) {
	return key.Sign(msg)
}

func (rsaSuite) Verify(pub crypto.PublicKey, msg, sig []byte) error {
	rsaPub, ok := pub.(*rsa.PublicKey)
	if !ok {
		return fmt.Errorf("dsig: %s suite given %T key", SignatureAlg, pub)
	}
	return pki.Verify(rsaPub, msg, sig)
}

// edSuite is Ed25519. Signing is ~50x cheaper than RSA-2048, verification
// comparable; see DESIGN.md "Signature-suite substitution".
type edSuite struct{}

func (edSuite) Alg() string     { return SignatureAlgEd25519 }
func (edSuite) KeyType() string { return pki.KeyEd25519 }

func (edSuite) Sign(key *pki.KeyPair, msg []byte) ([]byte, error) {
	return key.SignEd(msg)
}

func (edSuite) Verify(pub crypto.PublicKey, msg, sig []byte) error {
	edPub, ok := pub.(ed25519.PublicKey)
	if !ok {
		return fmt.Errorf("dsig: %s suite given %T key", SignatureAlgEd25519, pub)
	}
	return pki.VerifyEd(edPub, msg, sig)
}

// suiteRegistry maps algorithm identifiers to registered suites. It is
// append-only; verification consults it per signature.
var (
	suiteMu sync.RWMutex
	suites  = map[string]Suite{}
)

// RegisterSuite adds a suite to the verification registry. Registering a
// second suite under an existing algorithm identifier is an error: the
// identifier is part of the signed bytes, so its meaning must never change.
func RegisterSuite(s Suite) error {
	suiteMu.Lock()
	defer suiteMu.Unlock()
	if _, dup := suites[s.Alg()]; dup {
		return fmt.Errorf("dsig: suite %q already registered", s.Alg())
	}
	suites[s.Alg()] = s
	return nil
}

// SuiteFor returns the registered suite for an algorithm identifier.
func SuiteFor(alg string) (Suite, bool) {
	suiteMu.RLock()
	defer suiteMu.RUnlock()
	s, ok := suites[alg]
	return s, ok
}

// Suites returns the registered algorithm identifiers, sorted.
func Suites() []string {
	suiteMu.RLock()
	defer suiteMu.RUnlock()
	out := make([]string, 0, len(suites))
	for alg := range suites {
		out = append(out, alg)
	}
	sort.Strings(out)
	return out
}

// suiteBox wraps a Suite so atomic.Value always stores one concrete type
// regardless of which suite implementation is selected.
type suiteBox struct{ s Suite }

// defaultSuite is the suite Sign uses when the caller does not pick one;
// swapped atomically by ConfigureSuite (daemon -suite flags).
var defaultSuite atomic.Value // holds suiteBox

func init() {
	if err := RegisterSuite(rsaSuite{}); err != nil {
		panic(err)
	}
	if err := RegisterSuite(edSuite{}); err != nil {
		panic(err)
	}
	defaultSuite.Store(suiteBox{rsaSuite{}})
}

// DefaultSuite returns the process-wide signing suite.
func DefaultSuite() Suite { return defaultSuite.Load().(suiteBox).s }

// ConfigureSuite selects the process-wide signing suite by algorithm
// identifier. Verification is unaffected: it always honors the algorithm
// recorded in each signature.
func ConfigureSuite(alg string) error {
	s, ok := SuiteFor(alg)
	if !ok {
		return fmt.Errorf("dsig: unknown signature suite %q (have %v)", alg, Suites())
	}
	defaultSuite.Store(suiteBox{s})
	return nil
}
