package dsig

import (
	"strings"
	"testing"
	"time"

	"dra4wfms/internal/pki"
	"dra4wfms/internal/xmltree"
)

// registryFor issues dual-key certificates for the owners into a fresh
// pki.Registry — the resolver shape production uses, satisfying
// SuiteKeyResolver so both suites can resolve keys.
func registryFor(t testing.TB, owners ...string) *pki.Registry {
	t.Helper()
	ca, err := pki.NewCA("ca@test", 1024)
	if err != nil {
		t.Fatal(err)
	}
	reg := pki.NewRegistry(ca)
	now := time.Now()
	for _, o := range owners {
		cert, err := ca.IssueKeys(pki.Identity{ID: o, DisplayName: o}, cache.MustGet(o), now, time.Hour)
		if err != nil {
			t.Fatal(err)
		}
		if err := reg.Register(cert, now); err != nil {
			t.Fatal(err)
		}
	}
	return reg
}

func TestSignWithEd25519RoundTrip(t *testing.T) {
	suite, ok := SuiteFor(SignatureAlgEd25519)
	if !ok {
		t.Fatal("ed25519 suite not registered")
	}
	root := buildDoc()
	reg := registryFor(t, "alice")
	sig, err := SignWith(suite, root, []string{"p1", "p2"}, cache.MustGet("alice"), "sig-ed")
	if err != nil {
		t.Fatal(err)
	}
	root.AppendChild(sig)
	if got := sig.Child(signedInfoElem).Child(signatureMethodElem).AttrDefault("Algorithm", ""); got != SignatureAlgEd25519 {
		t.Fatalf("SignatureMethod = %q, want %q", got, SignatureAlgEd25519)
	}
	if err := Verify(root, sig, reg); err != nil {
		t.Fatalf("ed25519 signature rejected: %v", err)
	}

	// Tamper detection is suite-independent.
	root.FindByID("p1").SetText("altered")
	if err := Verify(root, sig, reg); err == nil {
		t.Fatal("tampered payload accepted under ed25519 suite")
	}
}

// TestMixedSuiteCascade interleaves RSA and Ed25519 signatures in one
// cascade: verification honors each signature's own recorded algorithm,
// so Algorithm 1 is suite-agnostic end to end.
func TestMixedSuiteCascade(t *testing.T) {
	edS, _ := SuiteFor(SignatureAlgEd25519)
	rsaS, _ := SuiteFor(SignatureAlg)
	owners := []string{"u0", "u1", "u2", "u3"}
	reg := registryFor(t, owners...)

	root := xmltree.NewElement("Doc")
	prevSig := ""
	for i, owner := range owners {
		p := root.Elem("Payload", "result")
		pid := "p" + owner
		p.SetAttr("Id", pid)
		refs := []string{pid}
		if prevSig != "" {
			refs = append(refs, prevSig)
		}
		suite := rsaS
		if i%2 == 1 {
			suite = edS
		}
		sigID := "sig" + owner
		sig, err := SignWith(suite, root, refs, cache.MustGet(owner), sigID)
		if err != nil {
			t.Fatal(err)
		}
		root.AppendChild(sig)
		prevSig = sigID
	}

	for _, v := range []*Verifier{{Workers: 1, Cache: NewCache(16)}, {Workers: 4}} {
		n, err := v.VerifyAll(root, root, reg)
		if err != nil || n != 4 {
			t.Fatalf("mixed-suite cascade: VerifyAll = %d, %v", n, err)
		}
	}
}

// TestSuiteConfusionRejected re-labels an RSA signature as ed25519: the
// SignatureMethod is inside the signed bytes, so flipping it invalidates
// the signature rather than reinterpreting it under another primitive.
func TestSuiteConfusionRejected(t *testing.T) {
	root := buildDoc()
	reg := registryFor(t, "alice")
	sig, err := Sign(root, []string{"p1"}, cache.MustGet("alice"), "sig1")
	if err != nil {
		t.Fatal(err)
	}
	root.AppendChild(sig)
	sig.Child(signedInfoElem).Child(signatureMethodElem).SetAttr("Algorithm", SignatureAlgEd25519)
	if err := Verify(root, sig, reg); err == nil {
		t.Fatal("suite-confused signature accepted")
	}
}

func TestLegacyResolverCannotServeEd25519(t *testing.T) {
	edS, _ := SuiteFor(SignatureAlgEd25519)
	root := buildDoc()
	sig, err := SignWith(edS, root, []string{"p1"}, cache.MustGet("alice"), "sig1")
	if err != nil {
		t.Fatal(err)
	}
	root.AppendChild(sig)
	// mapResolver implements only the legacy RSA PublicKey method.
	err = Verify(root, sig, resolverFor("alice"))
	if err == nil || !strings.Contains(err.Error(), "cannot supply ed25519") {
		t.Fatalf("legacy resolver served an ed25519 signature: %v", err)
	}
}

func TestConfigureSuite(t *testing.T) {
	if DefaultSuite().Alg() != SignatureAlg {
		t.Fatalf("default suite = %q, want %q", DefaultSuite().Alg(), SignatureAlg)
	}
	defer func() {
		if err := ConfigureSuite(SignatureAlg); err != nil {
			t.Fatal(err)
		}
	}()
	if err := ConfigureSuite(SignatureAlgEd25519); err != nil {
		t.Fatal(err)
	}
	if DefaultSuite().Alg() != SignatureAlgEd25519 {
		t.Fatal("ConfigureSuite did not switch the default")
	}
	if err := ConfigureSuite("dsa-sha1"); err == nil {
		t.Fatal("unknown suite accepted")
	}

	// Sign (no explicit suite) must follow the configured default.
	root := buildDoc()
	reg := registryFor(t, "bob")
	sig, err := Sign(root, []string{"p1"}, cache.MustGet("bob"), "sig1")
	if err != nil {
		t.Fatal(err)
	}
	root.AppendChild(sig)
	if got := sig.Child(signedInfoElem).Child(signatureMethodElem).AttrDefault("Algorithm", ""); got != SignatureAlgEd25519 {
		t.Fatalf("Sign used %q, want configured default %q", got, SignatureAlgEd25519)
	}
	if err := Verify(root, sig, reg); err != nil {
		t.Fatal(err)
	}
}

func TestSuitesRegistry(t *testing.T) {
	algs := Suites()
	want := map[string]bool{SignatureAlg: false, SignatureAlgEd25519: false}
	for _, a := range algs {
		if _, ok := want[a]; ok {
			want[a] = true
		}
	}
	for a, seen := range want {
		if !seen {
			t.Fatalf("suite %q not listed in %v", a, algs)
		}
	}
	if err := RegisterSuite(rsaSuite{}); err == nil {
		t.Fatal("duplicate suite registration accepted")
	}
}
