// Package telemetry is the runtime observability substrate of the
// DRA4WfMS reproduction: a dependency-free metrics registry (atomic
// counters, gauges, and histograms with fixed log-scale buckets) plus
// lightweight span tracing for hot-path latencies.
//
// The paper's scalability argument (Section 4: portals, the NoSQL
// document pool, and the MapReduce layer absorb load because documents —
// not engines — carry all process state) is only testable in a running
// system if signature-verification cost, pool scan latency, and portal
// request throughput are observable while traffic is served. Every
// middleware package (aea, portal, pool, tfc, dsig, xmlenc, httpapi)
// records into the process-wide Default registry; httpapi renders it in
// Prometheus text exposition format at GET /v1/metrics.
//
// Everything is safe for concurrent use and allocation-free on the hot
// recording paths (atomic adds; metric lookup is a read-locked map hit,
// and instrumented packages cache their metric handles at init).
package telemetry

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dra4wfms/internal/trace"
)

// --- bucket layouts ----------------------------------------------------------

// ExpBuckets returns count upper bounds starting at start, each factor
// times the previous — the fixed log-scale layout every histogram here
// uses. A final +Inf bucket is implicit in Histogram.
func ExpBuckets(start, factor float64, count int) []float64 {
	if start <= 0 || factor <= 1 || count <= 0 {
		panic("telemetry: ExpBuckets needs start > 0, factor > 1, count > 0")
	}
	out := make([]float64, count)
	b := start
	for i := range out {
		out[i] = b
		b *= factor
	}
	return out
}

// LatencyBuckets spans 1µs … ~8.4s in factor-2 steps (24 buckets), in
// seconds — wide enough for both sub-millisecond pool reads and
// multi-second RSA key generation.
var LatencyBuckets = ExpBuckets(1e-6, 2, 24)

// SizeBuckets spans 64B … ~1GiB in factor-4 steps (13 buckets), in bytes.
var SizeBuckets = ExpBuckets(64, 4, 13)

// --- metrics -----------------------------------------------------------------

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds delta (negative deltas are ignored; counters only go up).
func (c *Counter) Add(delta int64) {
	if delta > 0 {
		c.v.Add(delta)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomically settable float value.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds delta with a CAS loop.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+delta)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram counts observations into fixed log-scale buckets. Bounds are
// upper bounds; an implicit +Inf bucket catches the tail.
type Histogram struct {
	bounds  []float64
	counts  []atomic.Uint64 // len(bounds)+1, last is +Inf
	count   atomic.Uint64
	sumBits atomic.Uint64 // float64 bits, CAS-updated
}

func newHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = LatencyBuckets
	}
	if !sort.Float64sAreSorted(bounds) {
		panic("telemetry: histogram bounds must be sorted")
	}
	return &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// ObserveDuration records a latency in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Quantile estimates the q-quantile (0 < q <= 1) by linear interpolation
// within the owning bucket, the standard Prometheus histogram_quantile
// approach. Returns 0 with no observations; observations in the +Inf
// bucket clamp to the highest finite bound.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum float64
	for i := range h.counts {
		n := float64(h.counts[i].Load())
		if cum+n >= rank && n > 0 {
			if i == len(h.bounds) { // +Inf bucket
				return h.bounds[len(h.bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			return lo + (h.bounds[i]-lo)*((rank-cum)/n)
		}
		cum += n
	}
	return h.bounds[len(h.bounds)-1]
}

// bucketCumulative returns (upper bound, cumulative count) pairs, ending
// with (+Inf, total), for exposition.
func (h *Histogram) bucketCumulative() ([]float64, []uint64) {
	bounds := make([]float64, len(h.bounds)+1)
	cums := make([]uint64, len(h.bounds)+1)
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i].Load()
		if i < len(h.bounds) {
			bounds[i] = h.bounds[i]
		} else {
			bounds[i] = math.Inf(1)
		}
		cums[i] = cum
	}
	return bounds, cums
}

// --- registry ----------------------------------------------------------------

type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// family groups all label variants of one metric name.
type family struct {
	name    string
	kind    metricKind
	mu      sync.Mutex
	samples map[string]any // label key → *Counter | *Gauge | *Histogram
	labels  map[string][]string
}

// Logger receives slow-operation reports; *log.Logger satisfies it.
type Logger interface {
	Printf(format string, v ...any)
}

// Registry holds a process's metrics. The zero value is not usable; use
// New or the package-wide Default.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family

	slowNanos atomic.Int64 // spans slower than this are logged; 0 = off

	logMu  sync.RWMutex
	logger Logger
}

// New creates an empty registry.
func New() *Registry {
	return &Registry{families: map[string]*family{}}
}

var defaultRegistry = New()

// Default returns the process-wide registry every instrumented package
// records into.
func Default() *Registry { return defaultRegistry }

// SetSlowOpThreshold enables logging of spans slower than d (0 disables).
func (r *Registry) SetSlowOpThreshold(d time.Duration) { r.slowNanos.Store(int64(d)) }

// SetSlowOpLogger directs slow-op reports to l (nil silences them even
// when the threshold is set).
func (r *Registry) SetSlowOpLogger(l Logger) {
	r.logMu.Lock()
	r.logger = l
	r.logMu.Unlock()
}

// labelKey canonicalizes label pairs; pairs must be even-length.
func labelKey(labels []string) string {
	if len(labels) == 0 {
		return ""
	}
	if len(labels)%2 != 0 {
		panic("telemetry: labels must be key/value pairs")
	}
	pairs := make([]string, 0, len(labels)/2)
	for i := 0; i < len(labels); i += 2 {
		pairs = append(pairs, labels[i]+"\x00"+labels[i+1])
	}
	sort.Strings(pairs)
	return strings.Join(pairs, "\x01")
}

func (r *Registry) familyFor(name string, kind metricKind) *family {
	r.mu.RLock()
	f := r.families[name]
	r.mu.RUnlock()
	if f == nil {
		r.mu.Lock()
		f = r.families[name]
		if f == nil {
			f = &family{name: name, kind: kind, samples: map[string]any{}, labels: map[string][]string{}}
			r.families[name] = f
		}
		r.mu.Unlock()
	}
	if f.kind != kind {
		panic(fmt.Sprintf("telemetry: metric %q already registered as %s, requested as %s", name, f.kind, kind))
	}
	return f
}

// Counter returns (creating on first use) the counter name with the given
// label pairs.
func (r *Registry) Counter(name string, labels ...string) *Counter {
	f := r.familyFor(name, kindCounter)
	key := labelKey(labels)
	f.mu.Lock()
	defer f.mu.Unlock()
	if m, ok := f.samples[key]; ok {
		return m.(*Counter)
	}
	c := &Counter{}
	f.samples[key] = c
	f.labels[key] = append([]string(nil), labels...)
	return c
}

// Gauge returns (creating on first use) the gauge name with the given
// label pairs.
func (r *Registry) Gauge(name string, labels ...string) *Gauge {
	f := r.familyFor(name, kindGauge)
	key := labelKey(labels)
	f.mu.Lock()
	defer f.mu.Unlock()
	if m, ok := f.samples[key]; ok {
		return m.(*Gauge)
	}
	g := &Gauge{}
	f.samples[key] = g
	f.labels[key] = append([]string(nil), labels...)
	return g
}

// Histogram returns (creating on first use) the histogram name with the
// given bucket upper bounds (nil = LatencyBuckets) and label pairs. The
// bounds of the first creation win for all label variants.
func (r *Registry) Histogram(name string, bounds []float64, labels ...string) *Histogram {
	f := r.familyFor(name, kindHistogram)
	key := labelKey(labels)
	f.mu.Lock()
	defer f.mu.Unlock()
	if m, ok := f.samples[key]; ok {
		return m.(*Histogram)
	}
	h := newHistogram(bounds)
	f.samples[key] = h
	f.labels[key] = append([]string(nil), labels...)
	return h
}

// --- spans -------------------------------------------------------------------

// Span is one in-flight timed operation; End records its duration.
type Span struct {
	reg    *Registry
	h      *Histogram
	name   string
	labels []string
	start  time.Time
	// tspan is the distributed-trace twin when the span was started via
	// StartSpanCtx inside a sampled trace; nil otherwise (nil is inert).
	tspan *trace.Span
}

// StartSpan begins timing an operation. End records the duration, in
// seconds, into the histogram named name (LatencyBuckets) with the given
// labels, and logs the operation when it exceeds the registry's slow-op
// threshold. Usage:
//
//	defer telemetry.Default().StartSpan("portal_store_seconds").End()
func (r *Registry) StartSpan(name string, labels ...string) *Span {
	return &Span{
		reg:    r,
		h:      r.Histogram(name, LatencyBuckets, labels...),
		name:   name,
		labels: labels,
		start:  time.Now(),
	}
}

// StartSpanCtx begins timing an operation inside the trace carried by
// ctx. The histogram side is identical to StartSpan; additionally, when
// ctx belongs to a sampled distributed trace, a child trace span with
// the same name lands in the process trace ring on End. The returned
// context carries the new span as parent — pass it to downstream calls
// so their spans nest correctly. When ctx carries no trace (or an
// unsampled one) only the histogram records; no trace root is created
// here, because sampling is decided once at the root. Usage:
//
//	ctx, span := telemetry.Default().StartSpanCtx(ctx, "portal_store_seconds")
//	defer span.End()
func (r *Registry) StartSpanCtx(ctx context.Context, name string, labels ...string) (context.Context, *Span) {
	s := r.StartSpan(name, labels...)
	ctx, s.tspan = trace.Default().StartSpan(ctx, name)
	return ctx, s
}

// Trace returns the span's distributed-trace twin, or nil when the span
// was started outside a sampled trace. The result is safe to use even
// when nil (trace.Span methods are nil-tolerant).
func (s *Span) Trace() *trace.Span {
	if s == nil {
		return nil
	}
	return s.tspan
}

// End stops the span, records its duration, and returns it. Safe to call
// on a nil span (no-op, returns 0).
func (s *Span) End() time.Duration {
	if s == nil {
		return 0
	}
	d := time.Since(s.start)
	s.h.ObserveDuration(d)
	s.tspan.End()
	if slow := s.reg.slowNanos.Load(); slow > 0 && int64(d) >= slow {
		s.reg.logMu.RLock()
		l := s.reg.logger
		s.reg.logMu.RUnlock()
		if l != nil {
			if len(s.labels) > 0 {
				l.Printf("telemetry: slow op %s%v took %v", s.name, s.labels, d)
			} else {
				l.Printf("telemetry: slow op %s took %v", s.name, d)
			}
		}
	}
	return d
}

// --- snapshots ---------------------------------------------------------------

// CounterSnapshot is one counter's point-in-time value.
type CounterSnapshot struct {
	Name   string   `json:"name"`
	Labels []string `json:"labels,omitempty"`
	Value  int64    `json:"value"`
}

// GaugeSnapshot is one gauge's point-in-time value.
type GaugeSnapshot struct {
	Name   string   `json:"name"`
	Labels []string `json:"labels,omitempty"`
	Value  float64  `json:"value"`
}

// HistogramSnapshot summarizes one histogram: count, sum, and the
// interpolated p50/p95/p99.
type HistogramSnapshot struct {
	Name   string   `json:"name"`
	Labels []string `json:"labels,omitempty"`
	Count  uint64   `json:"count"`
	Sum    float64  `json:"sum"`
	P50    float64  `json:"p50"`
	P95    float64  `json:"p95"`
	P99    float64  `json:"p99"`
}

// Snapshot is a consistent-enough point-in-time view of a registry
// (individual metrics are read atomically; the set is read under lock).
type Snapshot struct {
	Counters   []CounterSnapshot   `json:"counters,omitempty"`
	Gauges     []GaugeSnapshot     `json:"gauges,omitempty"`
	Histograms []HistogramSnapshot `json:"histograms,omitempty"`
}

// sortedFamilies returns families by name; each family's sample keys
// sorted. Used by Snapshot and WritePrometheus for stable output.
func (r *Registry) sortedFamilies() []*family {
	r.mu.RLock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.RUnlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	return fams
}

// Snapshot captures every metric in the registry, sorted by name.
func (r *Registry) Snapshot() Snapshot {
	var snap Snapshot
	for _, f := range r.sortedFamilies() {
		f.mu.Lock()
		keys := make([]string, 0, len(f.samples))
		for k := range f.samples {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			labels := f.labels[k]
			switch m := f.samples[k].(type) {
			case *Counter:
				snap.Counters = append(snap.Counters, CounterSnapshot{Name: f.name, Labels: labels, Value: m.Value()})
			case *Gauge:
				snap.Gauges = append(snap.Gauges, GaugeSnapshot{Name: f.name, Labels: labels, Value: m.Value()})
			case *Histogram:
				snap.Histograms = append(snap.Histograms, HistogramSnapshot{
					Name: f.name, Labels: labels,
					Count: m.Count(), Sum: m.Sum(),
					P50: m.Quantile(0.50), P95: m.Quantile(0.95), P99: m.Quantile(0.99),
				})
			}
		}
		f.mu.Unlock()
	}
	return snap
}
