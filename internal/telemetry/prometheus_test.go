package telemetry

import (
	"strings"
	"testing"
)

// TestPrometheusLabelEscaping pins the exposition-format escaping rules:
// backslash, double quote, and newline in label VALUES must come out as
// \\, \", and \n — an unescaped newline splits a sample line in two and
// silently corrupts the whole scrape.
func TestPrometheusLabelEscaping(t *testing.T) {
	cases := []struct {
		name  string
		value string
		want  string // the rendered label assignment
	}{
		{"backslash", `C:\temp\doc`, `route="C:\\temp\\doc"`},
		{"quote", `say "hi"`, `route="say \"hi\""`},
		{"newline", "line1\nline2", `route="line1\nline2"`},
		{"mixed", "a\\\"b\nc", `route="a\\\"b\nc"`},
		{"backslash-n-literal", `already\n`, `route="already\\n"`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := New()
			r.Counter("requests_total", "route", tc.value).Inc()
			var sb strings.Builder
			if err := r.WritePrometheus(&sb); err != nil {
				t.Fatal(err)
			}
			out := sb.String()
			if !strings.Contains(out, tc.want) {
				t.Errorf("exposition output missing %s:\n%s", tc.want, out)
			}
			// Exactly the TYPE line and the sample line: escapes must not
			// introduce extra physical lines.
			if got := strings.Count(strings.TrimRight(out, "\n"), "\n") + 1; got != 2 {
				t.Errorf("output has %d lines, want 2 (escaped newline leaked?):\n%q", got, out)
			}
		})
	}
}

// TestPrometheusEscapingRoundTrip feeds every escaped value through the
// inverse mapping and requires the original back; escaping must be
// unambiguous, not merely scrape-parseable.
func TestPrometheusEscapingRoundTrip(t *testing.T) {
	unescape := func(s string) string {
		var b strings.Builder
		for i := 0; i < len(s); i++ {
			if s[i] == '\\' && i+1 < len(s) {
				i++
				switch s[i] {
				case 'n':
					b.WriteByte('\n')
				default:
					b.WriteByte(s[i])
				}
				continue
			}
			b.WriteByte(s[i])
		}
		return b.String()
	}
	for _, v := range []string{
		`plain`, `back\slash`, `"quoted"`, "new\nline", `trailing\`, "\n", `\n`, `\\n`, "",
	} {
		if got := unescape(escapeLabelValue(v)); got != v {
			t.Errorf("escape(%q) = %q does not round-trip: got %q", v, escapeLabelValue(v), got)
		}
	}
}

// TestPrometheusEmptyRegistry pins the degenerate scrape: a registry
// with no metric families renders as the empty string, not a stray
// header or error.
func TestPrometheusEmptyRegistry(t *testing.T) {
	var sb strings.Builder
	if err := New().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if sb.String() != "" {
		t.Errorf("empty registry rendered %q, want empty output", sb.String())
	}
}

// TestPrometheusHistogramLabelEscaping covers the histogram expansion:
// the escaped label value must survive into the _bucket, _sum, and
// _count series, and the appended le label must not disturb it.
func TestPrometheusHistogramLabelEscaping(t *testing.T) {
	r := New()
	r.Histogram("latency_seconds", []float64{0.1, 1}, "route", "GET /v1/\"odd\"\npath").Observe(0.05)
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	want := `route="GET /v1/\"odd\"\npath"`
	for _, series := range []string{"latency_seconds_bucket", "latency_seconds_sum", "latency_seconds_count"} {
		found := false
		for _, line := range strings.Split(out, "\n") {
			if strings.HasPrefix(line, series) && strings.Contains(line, want) {
				found = true
			}
		}
		if !found {
			t.Errorf("%s series missing escaped label %s:\n%s", series, want, out)
		}
	}
	if strings.Contains(out, "\npath\"") {
		t.Errorf("raw newline from label value leaked into output:\n%q", out)
	}
}
