package telemetry

import (
	"fmt"
	"math"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterAndGauge(t *testing.T) {
	r := New()
	c := r.Counter("ops_total")
	c.Inc()
	c.Add(4)
	c.Add(-10) // ignored: counters are monotonic
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	if again := r.Counter("ops_total"); again != c {
		t.Fatal("same name+labels did not return the same counter")
	}
	if other := r.Counter("ops_total", "kind", "x"); other == c {
		t.Fatal("different labels returned the same counter")
	}

	g := r.Gauge("depth")
	g.Set(2.5)
	g.Add(-0.5)
	if g.Value() != 2 {
		t.Fatalf("gauge = %v, want 2", g.Value())
	}
}

func TestHistogramQuantiles(t *testing.T) {
	r := New()
	h := r.Histogram("lat", ExpBuckets(1, 2, 10)) // 1,2,4,…,512
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Sum() != 5050 {
		t.Fatalf("sum = %v", h.Sum())
	}
	p50 := h.Quantile(0.50)
	if p50 < 32 || p50 > 64 {
		t.Fatalf("p50 = %v, want within (32, 64]", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 < 64 || p99 > 128 {
		t.Fatalf("p99 = %v, want within (64, 128]", p99)
	}
	// Values beyond the last bound land in +Inf and clamp to the top bound.
	h.Observe(1e9)
	if q := h.Quantile(1); q != 512 {
		t.Fatalf("clamped quantile = %v, want 512", q)
	}
	// Empty histogram.
	if q := r.Histogram("empty", nil).Quantile(0.5); q != 0 {
		t.Fatalf("empty quantile = %v", q)
	}
}

func TestExpBuckets(t *testing.T) {
	b := ExpBuckets(1e-6, 2, 4)
	want := []float64{1e-6, 2e-6, 4e-6, 8e-6}
	for i := range want {
		if math.Abs(b[i]-want[i]) > 1e-15 {
			t.Fatalf("bucket %d = %v, want %v", i, b[i], want[i])
		}
	}
}

type testLogger struct {
	mu    sync.Mutex
	lines []string
}

func (l *testLogger) Printf(format string, v ...any) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.lines = append(l.lines, fmt.Sprintf(format, v...))
}

func TestSpanRecordsAndLogsSlowOps(t *testing.T) {
	r := New()
	log := &testLogger{}
	r.SetSlowOpLogger(log)
	r.SetSlowOpThreshold(time.Nanosecond) // everything is slow

	sp := r.StartSpan("op_seconds", "phase", "verify")
	time.Sleep(time.Millisecond)
	if d := sp.End(); d < time.Millisecond {
		t.Fatalf("span duration = %v", d)
	}
	h := r.Histogram("op_seconds", LatencyBuckets, "phase", "verify")
	if h.Count() != 1 || h.Sum() < 0.001 {
		t.Fatalf("histogram count=%d sum=%v", h.Count(), h.Sum())
	}
	log.mu.Lock()
	n := len(log.lines)
	line := ""
	if n > 0 {
		line = log.lines[0]
	}
	log.mu.Unlock()
	if n != 1 || !strings.Contains(line, "op_seconds") {
		t.Fatalf("slow-op log = %q (%d lines)", line, n)
	}

	// Below threshold: silent.
	r.SetSlowOpThreshold(time.Hour)
	r.StartSpan("op_seconds").End()
	log.mu.Lock()
	n = len(log.lines)
	log.mu.Unlock()
	if n != 1 {
		t.Fatalf("fast op was logged (%d lines)", n)
	}

	// Nil span End is a no-op.
	var nilSpan *Span
	if d := nilSpan.End(); d != 0 {
		t.Fatalf("nil span End = %v", d)
	}
}

func TestKindConflictPanics(t *testing.T) {
	r := New()
	r.Counter("x")
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on kind conflict")
		}
	}()
	r.Histogram("x", nil)
}

// sampleLine matches one exposition sample: name{labels} value.
var sampleLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*"(,[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*")*\})? (-?[0-9.e+-]+|\+Inf|NaN)$`)

func TestWritePrometheusFormat(t *testing.T) {
	r := New()
	r.Counter("requests_total", "route", "/v1/documents", "code", "2xx").Add(7)
	r.Gauge("pool_regions").Set(3)
	h := r.Histogram("req_seconds", ExpBuckets(0.001, 10, 3))
	h.Observe(0.0005)
	h.Observe(0.05)
	h.Observe(99) // +Inf bucket

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()

	// Every line must be a TYPE comment or a well-formed sample.
	types := 0
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			types++
			continue
		}
		if !sampleLine.MatchString(line) {
			t.Fatalf("malformed exposition line: %q", line)
		}
	}
	if types != 3 {
		t.Fatalf("TYPE lines = %d, want 3\n%s", types, out)
	}
	for _, want := range []string{
		`requests_total{route="/v1/documents",code="2xx"} 7`,
		"# TYPE req_seconds histogram",
		`req_seconds_bucket{le="0.001"} 1`,
		`req_seconds_bucket{le="0.1"} 2`,
		`req_seconds_bucket{le="+Inf"} 3`,
		"req_seconds_count 3",
		"pool_regions 3",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	// Cumulative bucket counts must be non-decreasing (already asserted
	// implicitly above) and label values escaped.
	r2 := New()
	r2.Counter("esc", "k", "a\"b\\c\nd").Inc()
	sb.Reset()
	if err := r2.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `esc{k="a\"b\\c\nd"} 1`) {
		t.Fatalf("unescaped label value: %s", sb.String())
	}
}

func TestSnapshot(t *testing.T) {
	r := New()
	r.Counter("c").Add(3)
	r.Gauge("g").Set(1.5)
	h := r.Histogram("h", ExpBuckets(1, 2, 8))
	for i := 0; i < 10; i++ {
		h.Observe(5)
	}
	snap := r.Snapshot()
	if len(snap.Counters) != 1 || snap.Counters[0].Value != 3 {
		t.Fatalf("counters = %+v", snap.Counters)
	}
	if len(snap.Gauges) != 1 || snap.Gauges[0].Value != 1.5 {
		t.Fatalf("gauges = %+v", snap.Gauges)
	}
	if len(snap.Histograms) != 1 {
		t.Fatalf("histograms = %+v", snap.Histograms)
	}
	hs := snap.Histograms[0]
	if hs.Count != 10 || hs.Sum != 50 || hs.P50 <= 4 || hs.P50 > 8 {
		t.Fatalf("histogram snapshot = %+v", hs)
	}
}

// TestConcurrentRegistry hammers counters, gauges, histograms, spans, the
// exposition writer, and snapshots from 32 goroutines; `go test -race`
// proves the registry race-free (the Makefile check target runs it so).
func TestConcurrentRegistry(t *testing.T) {
	r := New()
	r.SetSlowOpThreshold(time.Nanosecond)
	r.SetSlowOpLogger(&testLogger{})
	const goroutines = 32
	const iters = 500

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			label := fmt.Sprintf("w%d", g%4)
			for i := 0; i < iters; i++ {
				r.Counter("hammer_total", "worker", label).Inc()
				r.Gauge("hammer_depth").Add(1)
				r.Histogram("hammer_values", ExpBuckets(1, 2, 16)).Observe(float64(i % 100))
				r.StartSpan("hammer_span_seconds", "worker", label).End()
				if i%100 == 0 {
					var sb strings.Builder
					if err := r.WritePrometheus(&sb); err != nil {
						t.Errorf("WritePrometheus: %v", err)
					}
					_ = r.Snapshot()
				}
			}
		}(g)
	}
	wg.Wait()

	var total int64
	for _, c := range r.Snapshot().Counters {
		if c.Name == "hammer_total" {
			total += c.Value
		}
	}
	if total != goroutines*iters {
		t.Fatalf("hammer_total = %d, want %d", total, goroutines*iters)
	}
	if n := r.Histogram("hammer_values", nil).Count(); n != goroutines*iters {
		t.Fatalf("hammer_values count = %d, want %d", n, goroutines*iters)
	}
	if n := r.Histogram("hammer_span_seconds", nil, "worker", "w0").Count(); n == 0 {
		t.Fatal("no spans recorded for w0")
	}
	if g := r.Gauge("hammer_depth").Value(); g != goroutines*iters {
		t.Fatalf("gauge = %v, want %d", g, goroutines*iters)
	}
}
