package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus renders the registry in Prometheus text exposition
// format (version 0.0.4): one # TYPE line per metric family, then one
// sample line per label variant; histograms expand into cumulative
// _bucket{le=...} series plus _sum and _count. Output is sorted by family
// name and label key, so it is stable across calls.
func (r *Registry) WritePrometheus(w io.Writer) error {
	for _, f := range r.sortedFamilies() {
		f.mu.Lock()
		keys := make([]string, 0, len(f.samples))
		for k := range f.samples {
			keys = append(keys, k)
		}
		f.mu.Unlock()
		sort.Strings(keys)
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind); err != nil {
			return err
		}
		for _, k := range keys {
			f.mu.Lock()
			m := f.samples[k]
			labels := f.labels[k]
			f.mu.Unlock()
			if err := writeSample(w, f.name, labels, m); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeSample(w io.Writer, name string, labels []string, m any) error {
	switch v := m.(type) {
	case *Counter:
		_, err := fmt.Fprintf(w, "%s%s %d\n", name, labelString(labels), v.Value())
		return err
	case *Gauge:
		_, err := fmt.Fprintf(w, "%s%s %s\n", name, labelString(labels), formatFloat(v.Value()))
		return err
	case *Histogram:
		bounds, cums := v.bucketCumulative()
		for i := range bounds {
			le := "+Inf"
			if !math.IsInf(bounds[i], 1) {
				le = formatFloat(bounds[i])
			}
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
				name, labelString(append(append([]string(nil), labels...), "le", le)), cums[i]); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", name, labelString(labels), formatFloat(v.Sum())); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, labelString(labels), v.Count())
		return err
	}
	return nil
}

// labelString renders {k="v",...} or "" for no labels. Label values are
// escaped per the exposition format (backslash, quote, newline).
func labelString(labels []string) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i := 0; i+1 < len(labels); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(labels[i])
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(labels[i+1]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabelValue(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
