package pool

import "context"

// DocTable is the read/write surface the upper tiers (portal, monitor,
// mapreduce, the daemons) need from a document table. Both the
// in-process *Table and a clustered session (internal/poolcluster)
// implement it, so a portal can be pointed at a local pool or a multi-node
// clustered pool without changing any call site.
type DocTable interface {
	Put(row, family, qualifier string, value []byte) error
	PutCtx(ctx context.Context, row, family, qualifier string, value []byte) error
	Delete(row, family, qualifier string) error
	Get(row, family, qualifier string) ([]byte, bool)
	GetCtx(ctx context.Context, row, family, qualifier string) ([]byte, bool)
	GetVersions(row, family, qualifier string) []Cell
	GetRow(row string) []KeyValue
	Scan(opts ScanOptions) []KeyValue
	ScanCtx(ctx context.Context, opts ScanOptions) []KeyValue
}

var _ DocTable = (*Table)(nil)
