package pool

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"
)

func newTable(t *testing.T, split int) *Table {
	t.Helper()
	c, err := NewCluster([]string{"rs1", "rs2", "rs3"}, split)
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := c.CreateTable("documents",
		FamilySpec{Name: "doc", MaxVersions: 3},
		FamilySpec{Name: "meta", MaxVersions: 1},
	)
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

func TestPutGetDelete(t *testing.T) {
	tbl := newTable(t, 0)
	if err := tbl.Put("row1", "doc", "content", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	got, ok := tbl.Get("row1", "doc", "content")
	if !ok || string(got) != "v1" {
		t.Fatalf("Get = %q, %v", got, ok)
	}
	if _, ok := tbl.Get("missing", "doc", "content"); ok {
		t.Fatal("missing row found")
	}
	if _, ok := tbl.Get("row1", "doc", "other"); ok {
		t.Fatal("missing qualifier found")
	}
	if err := tbl.Delete("row1", "doc", "content"); err != nil {
		t.Fatal(err)
	}
	if _, ok := tbl.Get("row1", "doc", "content"); ok {
		t.Fatal("deleted cell still visible")
	}
}

func TestValidationErrors(t *testing.T) {
	tbl := newTable(t, 0)
	if err := tbl.Put("", "doc", "q", []byte("x")); err == nil {
		t.Fatal("empty row accepted")
	}
	if err := tbl.Put("r", "nofam", "q", []byte("x")); err == nil {
		t.Fatal("unknown family accepted")
	}
	if err := tbl.Delete("", "doc", "q"); err == nil {
		t.Fatal("empty row delete accepted")
	}
	if err := tbl.Delete("r", "nofam", "q"); err == nil {
		t.Fatal("unknown family delete accepted")
	}
	if _, ok := tbl.Get("", "doc", "q"); ok {
		t.Fatal("empty row get succeeded")
	}
}

func TestClusterValidation(t *testing.T) {
	if _, err := NewCluster(nil, 0); err == nil {
		t.Fatal("empty cluster accepted")
	}
	c, _ := NewCluster([]string{"rs1"}, 0)
	if _, err := c.CreateTable(""); err == nil {
		t.Fatal("empty table name accepted")
	}
	if _, err := c.CreateTable("t"); err == nil {
		t.Fatal("table without families accepted")
	}
	if _, err := c.CreateTable("t", FamilySpec{Name: "f"}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.CreateTable("t", FamilySpec{Name: "f"}); err == nil {
		t.Fatal("duplicate table accepted")
	}
	if _, err := c.Table("t"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Table("nope"); err == nil {
		t.Fatal("unknown table found")
	}
	if got := len(c.Servers()); got != 1 {
		t.Fatalf("Servers = %d", got)
	}
}

func TestOverwriteLatestWins(t *testing.T) {
	tbl := newTable(t, 0)
	for i := 1; i <= 5; i++ {
		if err := tbl.Put("r", "doc", "q", []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	got, _ := tbl.Get("r", "doc", "q")
	if string(got) != "v5" {
		t.Fatalf("latest = %q", got)
	}
}

func TestGetRow(t *testing.T) {
	tbl := newTable(t, 0)
	tbl.Put("r", "doc", "a", []byte("1"))
	tbl.Put("r", "doc", "b", []byte("2"))
	tbl.Put("r", "meta", "c", []byte("3"))
	tbl.Put("other", "doc", "a", []byte("x"))
	kvs := tbl.GetRow("r")
	if len(kvs) != 3 {
		t.Fatalf("GetRow = %d cells", len(kvs))
	}
	// Sorted by (family, qualifier) within the row.
	if kvs[0].Qualifier != "a" || kvs[1].Qualifier != "b" || kvs[2].Family != "meta" {
		t.Fatalf("order wrong: %v", kvs)
	}
}

func TestScanOrderingAndFilters(t *testing.T) {
	tbl := newTable(t, 0)
	rows := []string{"wf#p3", "wf#p1", "todo#u1", "wf#p2", "todo#u2"}
	for i, r := range rows {
		tbl.Put(r, "doc", "content", []byte(fmt.Sprintf("%d", i)))
		tbl.Put(r, "meta", "state", []byte("open"))
	}

	all := tbl.Scan(ScanOptions{})
	if len(all) != 10 {
		t.Fatalf("full scan = %d cells", len(all))
	}
	if !sort.SliceIsSorted(all, func(i, j int) bool { return all[i].coordLess(all[j]) }) {
		t.Fatal("scan not ordered")
	}

	pre := tbl.Scan(ScanOptions{Prefix: "wf#"})
	if len(pre) != 6 {
		t.Fatalf("prefix scan = %d", len(pre))
	}
	fam := tbl.Scan(ScanOptions{Family: "meta"})
	if len(fam) != 5 {
		t.Fatalf("family scan = %d", len(fam))
	}
	lim := tbl.Scan(ScanOptions{Limit: 3})
	if len(lim) != 3 {
		t.Fatalf("limited scan = %d", len(lim))
	}
	rng := tbl.Scan(ScanOptions{StartRow: "todo#u2", EndRow: "wf#p2"})
	for _, kv := range rng {
		if kv.Row < "todo#u2" || kv.Row >= "wf#p2" {
			t.Fatalf("range scan leaked row %q", kv.Row)
		}
	}
	filtered := tbl.Scan(ScanOptions{Filter: func(kv KeyValue) bool { return kv.Qualifier == "state" }})
	if len(filtered) != 5 {
		t.Fatalf("filtered scan = %d", len(filtered))
	}
}

func TestFlushAndGetFromSegment(t *testing.T) {
	tbl := newTable(t, 0)
	tbl.Put("r1", "doc", "q", []byte("flushed"))
	tbl.FlushAll()
	got, ok := tbl.Get("r1", "doc", "q")
	if !ok || string(got) != "flushed" {
		t.Fatalf("Get after flush = %q, %v", got, ok)
	}
	// Newer memstore write shadows the segment.
	tbl.Put("r1", "doc", "q", []byte("newer"))
	got, _ = tbl.Get("r1", "doc", "q")
	if string(got) != "newer" {
		t.Fatalf("memstore should shadow segment: %q", got)
	}
	// Scan merges both layers with latest-wins.
	kvs := tbl.Scan(ScanOptions{})
	if len(kvs) != 1 || string(kvs[0].Value) != "newer" {
		t.Fatalf("merged scan = %v", kvs)
	}
}

func TestDeleteTombstoneMasksSegment(t *testing.T) {
	tbl := newTable(t, 0)
	tbl.Put("r", "doc", "q", []byte("old"))
	tbl.FlushAll() // "old" now in a segment
	tbl.Delete("r", "doc", "q")
	if _, ok := tbl.Get("r", "doc", "q"); ok {
		t.Fatal("tombstone did not mask segment value")
	}
	tbl.FlushAll() // tombstone flushed into a second segment
	if _, ok := tbl.Get("r", "doc", "q"); ok {
		t.Fatal("flushed tombstone did not mask")
	}
	tbl.CompactAll()
	if _, ok := tbl.Get("r", "doc", "q"); ok {
		t.Fatal("compaction resurrected deleted cell")
	}
	if kvs := tbl.Scan(ScanOptions{}); len(kvs) != 0 {
		t.Fatalf("scan after compact = %v", kvs)
	}
}

func TestCompactMergesSegments(t *testing.T) {
	tbl := newTable(t, 0)
	for i := 0; i < 5; i++ {
		tbl.Put(fmt.Sprintf("r%d", i), "doc", "q", []byte{byte('0' + byte(i))})
		tbl.FlushAll()
	}
	region := tbl.Regions()[0]
	if len(region.segments) != 5 {
		t.Fatalf("segments before compact = %d", len(region.segments))
	}
	tbl.CompactAll()
	if len(region.segments) != 1 {
		t.Fatalf("segments after compact = %d", len(region.segments))
	}
	for i := 0; i < 5; i++ {
		if _, ok := tbl.Get(fmt.Sprintf("r%d", i), "doc", "q"); !ok {
			t.Fatalf("row r%d lost in compaction", i)
		}
	}
}

func TestCrashRecoveryViaWAL(t *testing.T) {
	tbl := newTable(t, 0)
	tbl.Put("durable", "doc", "q", []byte("flushed"))
	tbl.FlushAll()
	tbl.Put("recent", "doc", "q", []byte("unflushed"))

	region := tbl.Regions()[0]
	region.Crash()
	if _, ok := tbl.Get("recent", "doc", "q"); ok {
		t.Fatal("memstore data survived crash without recovery")
	}
	if _, ok := tbl.Get("durable", "doc", "q"); !ok {
		t.Fatal("segment data lost in crash")
	}
	region.Recover()
	got, ok := tbl.Get("recent", "doc", "q")
	if !ok || string(got) != "unflushed" {
		t.Fatalf("WAL replay failed: %q, %v", got, ok)
	}
}

func TestRegionSplitAndRouting(t *testing.T) {
	tbl := newTable(t, 4096)
	val := make([]byte, 256)
	for i := 0; i < 64; i++ {
		row := fmt.Sprintf("row-%03d", i)
		if err := tbl.Put(row, "doc", "content", val); err != nil {
			t.Fatal(err)
		}
	}
	regions := tbl.Regions()
	if len(regions) < 2 {
		t.Fatalf("no split happened: %d region(s)", len(regions))
	}
	// Regions must tile the key space.
	if regions[0].Start() != "" || regions[len(regions)-1].End() != "" {
		t.Fatal("regions do not cover the key space")
	}
	for i := 1; i < len(regions); i++ {
		if regions[i].Start() != regions[i-1].End() {
			t.Fatalf("gap between regions %d and %d", i-1, i)
		}
	}
	// Every row remains readable after splits.
	for i := 0; i < 64; i++ {
		row := fmt.Sprintf("row-%03d", i)
		if _, ok := tbl.Get(row, "doc", "content"); !ok {
			t.Fatalf("row %s lost after split", row)
		}
	}
	// Scans still return everything in order.
	kvs := tbl.Scan(ScanOptions{})
	if len(kvs) != 64 {
		t.Fatalf("scan after splits = %d", len(kvs))
	}
	// Splits were recorded and daughters spread across servers.
	c := tbl.cluster
	if c.Splits("documents") == 0 {
		t.Fatal("no splits recorded")
	}
	dist := c.RegionDistribution()
	usedServers := 0
	for _, n := range dist {
		if n > 0 {
			usedServers++
		}
	}
	if usedServers < 2 {
		t.Fatalf("regions not distributed: %v", dist)
	}
}

func TestConcurrentClients(t *testing.T) {
	tbl := newTable(t, 8192)
	const goroutines = 8
	const perG = 100
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < perG; i++ {
				row := fmt.Sprintf("proc-%02d-%03d", g, i)
				if err := tbl.Put(row, "doc", "content", []byte(fmt.Sprintf("%d", i))); err != nil {
					t.Error(err)
					return
				}
				if r.Intn(4) == 0 {
					tbl.Get(row, "doc", "content")
				}
				if r.Intn(16) == 0 {
					tbl.Scan(ScanOptions{Prefix: fmt.Sprintf("proc-%02d-", g), Limit: 5})
				}
			}
		}(g)
	}
	wg.Wait()
	kvs := tbl.Scan(ScanOptions{})
	if len(kvs) != goroutines*perG {
		t.Fatalf("scan = %d cells, want %d", len(kvs), goroutines*perG)
	}
}

// TestPropScanEqualsModel: random operations against the store and a flat
// model map must agree, across random flush/compact/crash-recover events.
func TestPropScanEqualsModel(t *testing.T) {
	tbl := newTable(t, 0)
	model := map[[3]string]string{}
	r := rand.New(rand.NewSource(2026))
	rows := []string{"a", "b", "c", "d", "e"}
	quals := []string{"q1", "q2"}
	for i := 0; i < 2000; i++ {
		row := rows[r.Intn(len(rows))]
		qual := quals[r.Intn(len(quals))]
		switch r.Intn(10) {
		case 0:
			tbl.Delete(row, "doc", qual)
			delete(model, [3]string{row, "doc", qual})
		case 1:
			tbl.FlushAll()
		case 2:
			tbl.CompactAll()
		case 3:
			reg := tbl.Regions()[0]
			reg.Crash()
			reg.Recover()
		default:
			v := fmt.Sprintf("v%d", i)
			tbl.Put(row, "doc", qual, []byte(v))
			model[[3]string{row, "doc", qual}] = v
		}
	}
	got := tbl.Scan(ScanOptions{})
	if len(got) != len(model) {
		t.Fatalf("scan = %d cells, model = %d", len(got), len(model))
	}
	for _, kv := range got {
		want, ok := model[[3]string{kv.Row, kv.Family, kv.Qualifier}]
		if !ok || want != string(kv.Value) {
			t.Fatalf("divergence at %s/%s/%s: got %q want %q", kv.Row, kv.Family, kv.Qualifier, kv.Value, want)
		}
	}
}

func TestCrashLosesOnlyUnloggedNothing(t *testing.T) {
	// Crash+Recover must be lossless because every put is WAL-logged.
	tbl := newTable(t, 0)
	for i := 0; i < 50; i++ {
		tbl.Put(fmt.Sprintf("r%02d", i), "doc", "q", []byte{byte(i)})
	}
	reg := tbl.Regions()[0]
	reg.Crash()
	reg.Recover()
	if got := len(tbl.Scan(ScanOptions{})); got != 50 {
		t.Fatalf("after recovery scan = %d", got)
	}
}

func TestMaxVersionsBound(t *testing.T) {
	tbl := newTable(t, 0)
	region := tbl.Regions()[0]
	for i := 0; i < 10; i++ {
		tbl.Put("r", "doc", "q", []byte(fmt.Sprintf("v%d", i)))
	}
	region.mu.RLock()
	nVersions := len(region.mem["r"]["doc"]["q"])
	region.mu.RUnlock()
	if nVersions != 3 { // doc family declares MaxVersions 3
		t.Fatalf("retained versions = %d, want 3", nVersions)
	}
}

func TestEmptyValueStoredNotNil(t *testing.T) {
	tbl := newTable(t, 0)
	tbl.Put("r", "doc", "q", nil)
	got, ok := tbl.Get("r", "doc", "q")
	if !ok || got == nil || len(got) != 0 {
		t.Fatalf("nil value put: got %v, %v (a nil value would read as a tombstone)", got, ok)
	}
}

func TestFailServerRecoversViaWAL(t *testing.T) {
	c, err := NewCluster([]string{"rs1", "rs2", "rs3"}, 4096)
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := c.CreateTable("documents", FamilySpec{Name: "doc"})
	if err != nil {
		t.Fatal(err)
	}
	val := make([]byte, 256)
	for i := 0; i < 64; i++ {
		if err := tbl.Put(fmt.Sprintf("row-%03d", i), "doc", "content", val); err != nil {
			t.Fatal(err)
		}
	}
	// Ensure at least two servers actually host regions.
	dist := c.RegionDistribution()
	victim := ""
	for s, n := range dist {
		if n > 0 {
			victim = s
			break
		}
	}
	if victim == "" {
		t.Fatal("no loaded server to fail")
	}

	if err := c.FailServer(victim); err != nil {
		t.Fatal(err)
	}
	// The server is gone from the cluster.
	for _, s := range c.Servers() {
		if s == victim {
			t.Fatal("failed server still listed")
		}
	}
	// No region is hosted by the dead server and all data survives (WAL
	// replay covered the unflushed memstores).
	for _, r := range tbl.Regions() {
		if r.Server() == victim {
			t.Fatalf("region [%q,%q) still on failed server", r.Start(), r.End())
		}
	}
	for i := 0; i < 64; i++ {
		if _, ok := tbl.Get(fmt.Sprintf("row-%03d", i), "doc", "content"); !ok {
			t.Fatalf("row %d lost in failover", i)
		}
	}
	// Error paths.
	if err := c.FailServer("ghost"); err == nil {
		t.Fatal("failing unknown server succeeded")
	}
	c.FailServer(c.Servers()[0])
	if err := c.FailServer(c.Servers()[0]); err == nil {
		t.Fatal("failing the last server succeeded")
	}
}

func TestGetVersions(t *testing.T) {
	tbl := newTable(t, 0) // doc family keeps 3 versions
	for i := 1; i <= 5; i++ {
		tbl.Put("r", "doc", "q", []byte(fmt.Sprintf("v%d", i)))
	}
	vs := tbl.GetVersions("r", "doc", "q")
	if len(vs) != 3 {
		t.Fatalf("versions = %d, want 3", len(vs))
	}
	if string(vs[0].Value) != "v5" || string(vs[2].Value) != "v3" {
		t.Fatalf("version order: %q ... %q", vs[0].Value, vs[2].Value)
	}
	// Versions survive a flush (one per segment snapshot).
	tbl.FlushAll()
	tbl.Put("r", "doc", "q", []byte("v6"))
	vs = tbl.GetVersions("r", "doc", "q")
	if len(vs) < 2 || string(vs[0].Value) != "v6" || string(vs[1].Value) != "v5" {
		t.Fatalf("after flush: %v", vs)
	}
	// A tombstone cuts history.
	tbl.Delete("r", "doc", "q")
	if vs := tbl.GetVersions("r", "doc", "q"); len(vs) != 0 {
		t.Fatalf("versions after delete = %v", vs)
	}
	if vs := tbl.GetVersions("", "doc", "q"); vs != nil {
		t.Fatal("empty row returned versions")
	}
	if vs := tbl.GetVersions("ghost", "doc", "q"); len(vs) != 0 {
		t.Fatal("ghost row returned versions")
	}
}

func TestSnapshotExportImport(t *testing.T) {
	src := newTable(t, 0)
	for i := 0; i < 40; i++ {
		src.Put(fmt.Sprintf("r%02d", i), "doc", "content", []byte(fmt.Sprintf("doc %d", i)))
		src.Put(fmt.Sprintf("r%02d", i), "meta", "state", []byte("running"))
	}
	src.Delete("r00", "doc", "content") // tombstones are not exported

	var buf bytes.Buffer
	if err := src.Export(&buf); err != nil {
		t.Fatal(err)
	}

	dst := newTable(t, 0)
	n, err := dst.Import(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if n != 79 { // 80 cells minus the deleted one
		t.Fatalf("imported %d cells", n)
	}
	if _, ok := dst.Get("r00", "doc", "content"); ok {
		t.Fatal("tombstoned cell resurrected by snapshot")
	}
	got, ok := dst.Get("r07", "doc", "content")
	if !ok || string(got) != "doc 7" {
		t.Fatalf("r07 = %q, %v", got, ok)
	}
	if len(dst.Scan(ScanOptions{})) != 79 {
		t.Fatal("scan count mismatch after import")
	}

	// Corrupt snapshots fail cleanly.
	if _, err := dst.Import(strings.NewReader("not json")); err == nil {
		t.Fatal("garbage snapshot accepted")
	}
	truncated := buf.String()[:buf.Len()/2]
	if _, err := newTable(t, 0).Import(strings.NewReader(truncated)); err == nil {
		t.Fatal("truncated snapshot accepted")
	}
}
