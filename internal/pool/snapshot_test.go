package pool

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

func TestSnapshotEmptyTableRoundTrip(t *testing.T) {
	src := newTable(t, 0)
	var buf bytes.Buffer
	if err := src.Export(&buf); err != nil {
		t.Fatal(err)
	}
	dst := newTable(t, 0)
	n, err := dst.Import(&buf)
	if err != nil {
		t.Fatalf("Import: %v", err)
	}
	if n != 0 {
		t.Fatalf("imported %d cells from an empty table", n)
	}
	if got := dst.Scan(ScanOptions{}); len(got) != 0 {
		t.Fatalf("destination holds %d cells after empty import", len(got))
	}
}

func TestSnapshotSkipsTombstonedCells(t *testing.T) {
	src := newTable(t, 0)
	if err := src.Put("alive", "doc", "xml", []byte("kept")); err != nil {
		t.Fatal(err)
	}
	if err := src.Put("dead", "doc", "xml", []byte("doomed")); err != nil {
		t.Fatal(err)
	}
	if err := src.Delete("dead", "doc", "xml"); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := src.Export(&buf); err != nil {
		t.Fatal(err)
	}
	info, err := ReadSnapshot(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(info.Cells) != 1 || info.Cells[0].Row != "alive" {
		t.Fatalf("exported cells = %+v, want only row %q", info.Cells, "alive")
	}

	dst := newTable(t, 0)
	if _, err := dst.Import(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if _, ok := dst.Get("dead", "doc", "xml"); ok {
		t.Fatal("tombstoned cell resurrected by import")
	}
}

// TestSnapshotMultiVersionFamilies: export carries only the latest live
// version of each cell, even when the family retains several.
func TestSnapshotMultiVersionFamilies(t *testing.T) {
	src := newTable(t, 0) // family "doc" keeps MaxVersions: 3
	for _, v := range []string{"v1", "v2", "v3"} {
		if err := src.Put("row", "doc", "xml", []byte(v)); err != nil {
			t.Fatal(err)
		}
	}
	if got := src.GetVersions("row", "doc", "xml"); len(got) != 3 {
		t.Fatalf("fixture holds %d versions, want 3", len(got))
	}

	var buf bytes.Buffer
	if err := src.Export(&buf); err != nil {
		t.Fatal(err)
	}
	dst := newTable(t, 0)
	if _, err := dst.Import(&buf); err != nil {
		t.Fatal(err)
	}
	if got, _ := dst.Get("row", "doc", "xml"); string(got) != "v3" {
		t.Fatalf("imported latest = %q, want v3", got)
	}
	if got := dst.GetVersions("row", "doc", "xml"); len(got) != 1 {
		t.Fatalf("import carried %d versions, want only the latest", len(got))
	}
}

func TestSnapshotImportIntoNonEmptyTable(t *testing.T) {
	src := newTable(t, 0)
	if err := src.Put("row", "doc", "xml", []byte("v")); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := src.Export(&buf); err != nil {
		t.Fatal(err)
	}

	dst := newTable(t, 0)
	if err := dst.Put("pre-existing", "doc", "xml", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if _, err := dst.Import(&buf); !errors.Is(err, ErrNotEmpty) {
		t.Fatalf("Import into non-empty table = %v, want ErrNotEmpty", err)
	}
}

func TestReadSnapshotRejectsDamage(t *testing.T) {
	src := newTable(t, 0)
	if err := src.Put("row", "doc", "xml", []byte("v")); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := src.Export(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.String()

	cases := map[string]string{
		"garbage header":   "not json at all\n",
		"truncated stream": good[:len(good)-10],
		"count mismatch":   strings.Replace(good, `"cells":1`, `"cells":2`, 1),
		"bad base64":       strings.Replace(good, `"value":"`, `"value":"!!!`, 1),
	}
	for name, stream := range cases {
		if _, err := ReadSnapshot(strings.NewReader(stream)); err == nil {
			t.Errorf("%s: ReadSnapshot accepted damaged stream", name)
		}
	}
}

func TestSnapshotPreservesWALSeqHeader(t *testing.T) {
	var buf bytes.Buffer
	if err := writeSnapshot(&buf, "documents", 42, nil); err != nil {
		t.Fatal(err)
	}
	info, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if info.WALSeq != 42 || info.Table != "documents" {
		t.Fatalf("decoded header = %+v, want WALSeq 42 / table documents", info)
	}
}
