package pool

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
)

// Replication support: the clustered pool (internal/poolcluster) ships
// mutations between nodes as the exact CRC-framed records the durable
// store appends to its WAL, so the wire format, the corruption checks,
// and the size bound are shared with crash recovery instead of being a
// second, subtly different codec. A frame carries the coordinator's
// replication sequence number in the LSN slot and the coordinator's
// version-clock value in Version, so every replica that applies it ends
// up with a byte-identical cell — latest-wins conflict resolution then
// needs no per-node tie-breaking.

// Mutation is one table write in transportable form: a Put of KV, or,
// when Del is set, a tombstone at KV's coordinates.
type Mutation struct {
	Del bool
	KV  KeyValue
}

// EncodeMutationFrame frames m as a checksummed WAL record carrying seq
// as its sequence number. The frame is self-validating: DecodeMutationFrame
// (and store recovery's scanner) refuse it on any header, length, or
// checksum damage.
func EncodeMutationFrame(seq uint64, m Mutation) ([]byte, error) {
	op := walOpPut
	if m.Del {
		op = walOpDel
	}
	rec := walRec{
		Op:        op,
		LSN:       seq,
		Row:       m.KV.Row,
		Family:    m.KV.Family,
		Qualifier: m.KV.Qualifier,
		Version:   m.KV.Version,
	}
	if !m.Del {
		v := m.KV.Value
		if v == nil {
			v = []byte{}
		}
		rec.Value = v
	}
	return encodeWALRecord(rec)
}

// DecodeMutationFrame validates and decodes one replication frame,
// returning the sequence number it was encoded with. The checks mirror
// scanWAL: framed length, CRC-32 of the payload, JSON shape, known op.
func DecodeMutationFrame(frame []byte) (uint64, Mutation, error) {
	if len(frame) < walFrameHeader {
		return 0, Mutation{}, fmt.Errorf("pool: replication frame too short (%d bytes)", len(frame))
	}
	length := binary.LittleEndian.Uint32(frame[0:4])
	sum := binary.LittleEndian.Uint32(frame[4:8])
	if length > maxWALRecordBytes {
		return 0, Mutation{}, fmt.Errorf("pool: replication frame declares implausible length %d", length)
	}
	payload := frame[walFrameHeader:]
	if int(length) != len(payload) {
		return 0, Mutation{}, fmt.Errorf("pool: replication frame length %d does not match payload %d", length, len(payload))
	}
	if crc32.ChecksumIEEE(payload) != sum {
		return 0, Mutation{}, fmt.Errorf("pool: replication frame checksum mismatch")
	}
	var rec walRec
	if err := json.Unmarshal(payload, &rec); err != nil {
		return 0, Mutation{}, fmt.Errorf("pool: undecodable replication frame: %w", err)
	}
	if rec.Op != walOpPut && rec.Op != walOpDel {
		return 0, Mutation{}, fmt.Errorf("pool: replication frame has unknown op %q", rec.Op)
	}
	return rec.LSN, Mutation{Del: rec.Op == walOpDel, KV: rec.keyValue()}, nil
}

// ApplyReplicated applies a mutation that carries a coordinator-assigned
// version: the table's logical clock is advanced past it (so locally
// minted versions can never collide with replicated ones) and the cell
// is stored with its version preserved — replicas converge to identical
// state regardless of apply order, because latest-wins resolves by
// version. When the table has a durable store attached the mutation is
// journaled to the local WAL before this call returns, exactly like a
// local Put.
func (t *Table) ApplyReplicated(m Mutation) error {
	if m.KV.Row == "" {
		return ErrEmptyRow
	}
	if _, ok := t.families[m.KV.Family]; !ok {
		return fmt.Errorf("%w: %s.%s", ErrNoFamily, t.name, m.KV.Family)
	}
	t.mu.Lock()
	if m.KV.Version > t.seq {
		t.seq = m.KV.Version
	}
	t.mu.Unlock()
	if !m.Del && m.KV.Value == nil {
		m.KV.Value = []byte{}
	}
	region, err := t.applyDurable(m.KV, m.Del)
	if err != nil {
		return err
	}
	t.maybeSplit(region)
	return nil
}

// VersionClock returns the table's current logical version clock. A
// cluster coordinator seeds its global clock from the maximum across its
// nodes on startup, so versions keep ascending across restarts.
func (t *Table) VersionClock() int64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.seq
}
