package pool

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// The mutation WAL is the durability backbone of a Store: every Put and
// Delete is framed, checksummed, and appended to wal.log before the
// mutation is acknowledged, mirroring the write-ahead discipline the
// paper's BigTable-style pool inherits from HBase. The framing is
// deliberately paranoid about partial writes:
//
//	uint32 LE payload length | uint32 LE CRC-32 (IEEE) of payload | payload
//
// with the payload a JSON walRec. A crash mid-append leaves a torn tail
// (short header, short payload, or a CRC that no longer matches); replay
// stops at the first damaged frame, quarantines the damaged suffix to a
// sidecar file for forensics, and truncates the log back to its intact
// prefix — the damage is surfaced in the RecoveryReport, never silently
// dropped.

// walFrameHeader is the fixed per-record prefix: length + CRC.
const walFrameHeader = 8

// maxWALRecordBytes bounds one record's payload, enforced symmetrically:
// encodeWALRecord rejects an oversized record before it is appended (and
// before the mutation is acknowledged), and scanWAL treats an oversized
// length field as corruption, keeping a flipped length byte from driving
// a giant allocation. The bound must exceed the largest payload a legal
// mutation can produce: httpapi caps documents at 64 MiB, json.Marshal
// base64-encodes walRec.Value (4/3 inflation, ~85.4 MiB), and the other
// JSON fields add a small envelope on top — so 96 MiB with headroom. If
// the append-side bound were smaller than a legal record, the write would
// be acknowledged and then quarantined as "implausible" on the next boot,
// silently losing durable data.
const maxWALRecordBytes = 96 << 20

// WAL record operations.
const (
	walOpPut = "put"
	walOpDel = "del"
)

// walRec is one journaled mutation. LSN is the append sequence number
// (the store's ordering authority); Version is the table's logical clock
// value assigned to the cell, preserved across replay so recovered state
// is identical to the pre-crash live state.
type walRec struct {
	Op        string `json:"op"`
	LSN       uint64 `json:"lsn"`
	Row       string `json:"row"`
	Family    string `json:"family"`
	Qualifier string `json:"qualifier"`
	Value     []byte `json:"value,omitempty"`
	Version   int64  `json:"version"`
}

// cell rebuilds the stored cell; a del record becomes a tombstone.
func (r walRec) cell() Cell {
	if r.Op == walOpDel {
		return Cell{Value: nil, Version: r.Version}
	}
	v := r.Value
	if v == nil {
		v = []byte{}
	}
	return Cell{Value: v, Version: r.Version}
}

// keyValue rebuilds the full mutation coordinate.
func (r walRec) keyValue() KeyValue {
	return KeyValue{Row: r.Row, Family: r.Family, Qualifier: r.Qualifier, Cell: r.cell()}
}

// encodeWALRecord frames one record: header and payload in a single
// buffer so the append is one write call, shrinking the torn-write window
// to what the filesystem itself can tear.
func encodeWALRecord(rec walRec) ([]byte, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return nil, fmt.Errorf("pool: encoding WAL record: %w", err)
	}
	if len(payload) > maxWALRecordBytes {
		// Reject before the append: a record the scanner would refuse to
		// read back must never be acknowledged as durable.
		return nil, fmt.Errorf("pool: WAL record payload is %d bytes, above the %d-byte limit", len(payload), maxWALRecordBytes)
	}
	buf := make([]byte, walFrameHeader+len(payload))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:8], crc32.ChecksumIEEE(payload))
	copy(buf[walFrameHeader:], payload)
	return buf, nil
}

// walScan is the result of one pass over a WAL file.
type walScan struct {
	// recs are the intact records in append order.
	recs []walRec
	// intact is the byte length of the undamaged prefix.
	intact int64
	// damaged is the byte count from the first bad frame to EOF (0 when
	// the log is clean).
	damaged int64
	// reason describes why scanning stopped early ("" when clean).
	reason string
}

// scanWAL reads every intact record from the start of f. I/O errors are
// returned as errors; framing damage (torn tail, checksum mismatch) is
// reported in the walScan instead, because after a crash it is expected.
func scanWAL(f *os.File) (walScan, error) {
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return walScan{}, fmt.Errorf("pool: seeking WAL: %w", err)
	}
	size, err := f.Seek(0, io.SeekEnd)
	if err != nil {
		return walScan{}, fmt.Errorf("pool: sizing WAL: %w", err)
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return walScan{}, fmt.Errorf("pool: seeking WAL: %w", err)
	}
	var (
		scan   walScan
		header [walFrameHeader]byte
	)
	stop := func(reason string) (walScan, error) {
		scan.reason = reason
		scan.damaged = size - scan.intact
		return scan, nil
	}
	for scan.intact < size {
		n, err := io.ReadFull(f, header[:])
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return stop(fmt.Sprintf("torn frame header (%d of %d bytes)", n, walFrameHeader))
		}
		if err != nil {
			return walScan{}, fmt.Errorf("pool: reading WAL header: %w", err)
		}
		length := binary.LittleEndian.Uint32(header[0:4])
		sum := binary.LittleEndian.Uint32(header[4:8])
		if length > maxWALRecordBytes {
			return stop(fmt.Sprintf("implausible record length %d", length))
		}
		payload := make([]byte, length)
		n, err = io.ReadFull(f, payload)
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return stop(fmt.Sprintf("torn payload (%d of %d bytes)", n, length))
		}
		if err != nil {
			return walScan{}, fmt.Errorf("pool: reading WAL payload: %w", err)
		}
		if crc32.ChecksumIEEE(payload) != sum {
			return stop("payload checksum mismatch")
		}
		var rec walRec
		if err := json.Unmarshal(payload, &rec); err != nil {
			return stop(fmt.Sprintf("undecodable payload: %v", err))
		}
		if rec.Op != walOpPut && rec.Op != walOpDel {
			return stop(fmt.Sprintf("unknown op %q", rec.Op))
		}
		scan.recs = append(scan.recs, rec)
		scan.intact += int64(walFrameHeader) + int64(length)
	}
	return scan, nil
}

// quarantineWALTail copies the damaged suffix of the WAL to a sidecar
// file (overwriting a previous quarantine) and truncates the log back to
// its intact prefix, so the next append starts on a clean frame boundary.
func quarantineWALTail(f *os.File, scan walScan, quarantinePath string) error {
	if scan.damaged == 0 {
		return nil
	}
	if _, err := f.Seek(scan.intact, io.SeekStart); err != nil {
		return fmt.Errorf("pool: seeking to damaged WAL tail: %w", err)
	}
	tail, err := io.ReadAll(f)
	if err != nil {
		return fmt.Errorf("pool: reading damaged WAL tail: %w", err)
	}
	q, err := os.OpenFile(quarantinePath, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("pool: creating quarantine file: %w", err)
	}
	_, werr := q.Write(tail)
	serr := q.Sync()
	cerr := q.Close()
	if err := errors.Join(werr, serr, cerr); err != nil {
		return fmt.Errorf("pool: writing quarantine file: %w", err)
	}
	if err := f.Truncate(scan.intact); err != nil {
		return fmt.Errorf("pool: truncating torn WAL tail: %w", err)
	}
	return nil
}
