package pool

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
)

// newDurableTable creates a fresh table bound to a Store in dir.
func newDurableTable(t *testing.T, dir string, opts StoreOptions) (*Table, *Store, *RecoveryReport) {
	t.Helper()
	tbl := newTable(t, 0)
	s, rep, err := Open(tbl, dir, opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return tbl, s, rep
}

// scanAll returns the table's full live state (latest live cells with
// versions), the equality unit for crash-recovery assertions.
func scanAll(tbl *Table) []KeyValue {
	return tbl.Scan(ScanOptions{})
}

func assertSameState(t *testing.T, want, got []KeyValue) {
	t.Helper()
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("recovered state differs:\nwant %d cells: %+v\ngot  %d cells: %+v",
			len(want), want, len(got), got)
	}
}

// crash abandons a store the way a killed process would: the OS releases
// its file handles and the data-dir lock, but no final checkpoint or
// clean shutdown runs.
func crash(t *testing.T, s *Store) {
	t.Helper()
	if err := s.Abandon(); err != nil {
		t.Fatalf("Abandon: %v", err)
	}
}

func TestStoreRecoversWithoutCheckpoint(t *testing.T) {
	dir := t.TempDir()
	tbl, s, rep := newDurableTable(t, dir, StoreOptions{})
	if rep.Checkpoint != "" || rep.ReplayedRecords != 0 {
		t.Fatalf("fresh dir produced recovery %+v", rep)
	}
	for i := 0; i < 20; i++ {
		if err := tbl.Put(fmt.Sprintf("row-%02d", i), "doc", "xml", []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := tbl.Delete("row-03", "doc", "xml"); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Put("row-05", "doc", "xml", []byte("overwritten")); err != nil {
		t.Fatal(err)
	}
	want := scanAll(tbl)

	// Simulated crash: no Close, no final checkpoint — the WAL alone must
	// rebuild the table.
	crash(t, s)
	tbl2, _, rep2 := newDurableTable(t, dir, StoreOptions{})
	if rep2.ReplayedRecords != 22 {
		t.Fatalf("replayed %d records, want 22", rep2.ReplayedRecords)
	}
	if rep2.Damaged() {
		t.Fatalf("clean WAL reported damage: %s", rep2.Summary())
	}
	assertSameState(t, want, scanAll(tbl2))
	if _, ok := tbl2.Get("row-03", "doc", "xml"); ok {
		t.Fatal("tombstone did not survive recovery")
	}
	if v, _ := tbl2.Get("row-05", "doc", "xml"); string(v) != "overwritten" {
		t.Fatalf("row-05 = %q after recovery", v)
	}
}

func TestStoreRecoversFromCheckpointPlusWALSuffix(t *testing.T) {
	dir := t.TempDir()
	tbl, s, _ := newDurableTable(t, dir, StoreOptions{})
	for i := 0; i < 10; i++ {
		if err := tbl.Put(fmt.Sprintf("a-%02d", i), "doc", "xml", []byte("pre")); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	for i := 0; i < 5; i++ {
		if err := tbl.Put(fmt.Sprintf("b-%02d", i), "doc", "xml", []byte("post")); err != nil {
			t.Fatal(err)
		}
	}
	if err := tbl.Delete("a-00", "doc", "xml"); err != nil {
		t.Fatal(err)
	}
	want := scanAll(tbl)

	crash(t, s)
	tbl2, _, rep := newDurableTable(t, dir, StoreOptions{})
	if rep.Checkpoint == "" {
		t.Fatal("no checkpoint loaded")
	}
	if rep.CheckpointCells != 10 {
		t.Fatalf("checkpoint cells = %d, want 10", rep.CheckpointCells)
	}
	if rep.ReplayedRecords != 6 {
		t.Fatalf("replayed %d WAL records, want 6 (post-checkpoint suffix only)", rep.ReplayedRecords)
	}
	assertSameState(t, want, scanAll(tbl2))
}

// TestStoreKillMidWriteTornTail simulates a crash mid-append: the final
// WAL frame is cut short. Recovery must keep every complete record,
// quarantine the torn bytes, and say so.
func TestStoreKillMidWriteTornTail(t *testing.T) {
	dir := t.TempDir()
	tbl, s, _ := newDurableTable(t, dir, StoreOptions{})
	for i := 0; i < 8; i++ {
		if err := tbl.Put(fmt.Sprintf("row-%d", i), "doc", "xml", []byte(strings.Repeat("x", 50))); err != nil {
			t.Fatal(err)
		}
	}
	want := scanAll(tbl)
	crash(t, s)

	// Append a torn frame: a full header promising 100 payload bytes, then
	// only 10 of them (the fsync never happened).
	walPath := filepath.Join(dir, walFileName)
	f, err := os.OpenFile(walPath, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], 100)
	binary.LittleEndian.PutUint32(hdr[4:8], 0xdeadbeef)
	if _, err := f.Write(append(hdr[:], bytes.Repeat([]byte{0x7f}, 10)...)); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	tbl2, s2, rep := newDurableTable(t, dir, StoreOptions{})
	if rep.QuarantinedBytes != 18 {
		t.Fatalf("quarantined %d bytes, want 18 (%s)", rep.QuarantinedBytes, rep.Summary())
	}
	if rep.DamageReason == "" {
		t.Fatal("torn tail not surfaced in the report")
	}
	q, err := os.ReadFile(rep.QuarantineFile)
	if err != nil {
		t.Fatalf("quarantine file: %v", err)
	}
	if len(q) != 18 {
		t.Fatalf("quarantine file holds %d bytes, want 18", len(q))
	}
	assertSameState(t, want, scanAll(tbl2))

	// The truncated WAL must now be clean: a third boot replays everything
	// with no damage.
	crash(t, s2)
	tbl3, _, rep3 := newDurableTable(t, dir, StoreOptions{})
	if rep3.QuarantinedBytes != 0 {
		t.Fatalf("second recovery still damaged: %s", rep3.Summary())
	}
	assertSameState(t, want, scanAll(tbl3))
}

// TestStoreBitFlippedTail flips one payload byte in the last WAL record:
// the CRC must catch it, the record must be quarantined and reported, and
// the intact prefix must recover exactly.
func TestStoreBitFlippedTail(t *testing.T) {
	dir := t.TempDir()
	tbl, s, _ := newDurableTable(t, dir, StoreOptions{})
	for i := 0; i < 5; i++ {
		if err := tbl.Put(fmt.Sprintf("row-%d", i), "doc", "xml", []byte("payload")); err != nil {
			t.Fatal(err)
		}
	}
	// State before the final (to-be-corrupted) mutation.
	wantPrefix := scanAll(tbl)
	walPath := filepath.Join(dir, walFileName)
	sizeBefore := fileSize(t, walPath)
	if err := tbl.Put("victim", "doc", "xml", []byte("to be flipped")); err != nil {
		t.Fatal(err)
	}
	crash(t, s)

	raw, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	raw[sizeBefore+walFrameHeader+4] ^= 0x01 // flip one payload byte of the last record
	if err := os.WriteFile(walPath, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	tbl2, _, rep := newDurableTable(t, dir, StoreOptions{})
	if rep.QuarantinedBytes == 0 {
		t.Fatalf("bit flip not detected: %s", rep.Summary())
	}
	if !strings.Contains(rep.DamageReason, "checksum") {
		t.Fatalf("damage reason = %q, want checksum mismatch", rep.DamageReason)
	}
	if _, ok := tbl2.Get("victim", "doc", "xml"); ok {
		t.Fatal("corrupted record was applied")
	}
	assertSameState(t, wantPrefix, scanAll(tbl2))
}

func TestStoreCorruptNewestCheckpointFallsBack(t *testing.T) {
	dir := t.TempDir()
	tbl, s, _ := newDurableTable(t, dir, StoreOptions{})
	for i := 0; i < 6; i++ {
		if err := tbl.Put(fmt.Sprintf("row-%d", i), "doc", "xml", []byte("one")); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	for i := 6; i < 12; i++ {
		if err := tbl.Put(fmt.Sprintf("row-%d", i), "doc", "xml", []byte("two")); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Put("late", "doc", "xml", []byte("after second checkpoint")); err != nil {
		t.Fatal(err)
	}
	want := scanAll(tbl)

	// Corrupt the newest checkpoint wholesale.
	names, err := s.checkpointFiles()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 {
		t.Fatalf("retained %d checkpoints, want 2", len(names))
	}
	newest := filepath.Join(dir, names[1])
	if err := os.WriteFile(newest, []byte("{\"table\":\"documents\",garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	crash(t, s)

	tbl2, _, rep := newDurableTable(t, dir, StoreOptions{})
	if len(rep.SkippedCheckpoints) != 1 || rep.SkippedCheckpoints[0] != names[1] {
		t.Fatalf("skipped checkpoints = %v, want [%s]", rep.SkippedCheckpoints, names[1])
	}
	if rep.Checkpoint != names[0] {
		t.Fatalf("loaded %q, want fallback %q", rep.Checkpoint, names[0])
	}
	// The WAL keeps the suffix past the OLDEST retained checkpoint, so the
	// fallback plus replay still yields the full state.
	assertSameState(t, want, scanAll(tbl2))
	if _, err := os.Stat(newest + corruptSuffix); err != nil {
		t.Fatalf("corrupt checkpoint not quarantined: %v", err)
	}
}

func TestStoreCheckpointPrunesAndCompacts(t *testing.T) {
	dir := t.TempDir()
	tbl, s, _ := newDurableTable(t, dir, StoreOptions{KeepCheckpoints: 2})
	for round := 0; round < 4; round++ {
		for i := 0; i < 5; i++ {
			if err := tbl.Put(fmt.Sprintf("r%d-%d", round, i), "doc", "xml", bytes.Repeat([]byte("z"), 100)); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.Checkpoint(); err != nil {
			t.Fatal(err)
		}
	}
	names, err := s.checkpointFiles()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 {
		t.Fatalf("retained %d checkpoints, want 2", len(names))
	}
	// After the last checkpoint no mutations are outstanding past the
	// oldest retained watermark minus the newest round; the WAL holds only
	// the records after the oldest retained checkpoint.
	walSize := fileSize(t, filepath.Join(dir, walFileName))
	if walSize == 0 {
		// Records between the two retained checkpoints must still be there.
		t.Fatal("WAL compacted past the oldest retained checkpoint")
	}
	want := scanAll(tbl)
	crash(t, s)
	tbl2, _, _ := newDurableTable(t, dir, StoreOptions{})
	assertSameState(t, want, scanAll(tbl2))
}

func TestStoreCloseWritesFinalCheckpoint(t *testing.T) {
	dir := t.TempDir()
	tbl, s, _ := newDurableTable(t, dir, StoreOptions{})
	for i := 0; i < 7; i++ {
		if err := tbl.Put(fmt.Sprintf("row-%d", i), "doc", "xml", []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	want := scanAll(tbl)
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if err := tbl.Put("late", "doc", "xml", []byte("v")); err != ErrStoreClosed {
		t.Fatalf("Put after Close = %v, want ErrStoreClosed", err)
	}

	tbl2, _, rep := newDurableTable(t, dir, StoreOptions{})
	if rep.Checkpoint == "" {
		t.Fatal("Close did not write a final checkpoint")
	}
	if rep.ReplayedRecords != 0 {
		t.Fatalf("replayed %d records after clean shutdown, want 0", rep.ReplayedRecords)
	}
	assertSameState(t, want, scanAll(tbl2))
}

func TestStoreRejectsNonEmptyTable(t *testing.T) {
	tbl := newTable(t, 0)
	if err := tbl.Put("row", "doc", "xml", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(tbl, t.TempDir(), StoreOptions{}); err == nil {
		t.Fatal("Open accepted a non-empty table")
	}
}

func TestStoreRejectsDoubleAttach(t *testing.T) {
	dir := t.TempDir()
	tbl, _, _ := newDurableTable(t, dir, StoreOptions{})
	if _, _, err := Open(tbl, t.TempDir(), StoreOptions{}); err == nil {
		t.Fatal("Open attached a second store to the same table")
	}
}

// TestStoreConcurrentMutationsAndCheckpoints hammers the store from many
// writers while checkpoints run, then crashes and recovers — the
// race-detector version of the kill-mid-write scenario.
func TestStoreConcurrentMutationsAndCheckpoints(t *testing.T) {
	dir := t.TempDir()
	tbl, s, _ := newDurableTable(t, dir, StoreOptions{NoFsync: true})
	const writers, perWriter = 8, 40
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				row := fmt.Sprintf("w%d-row%03d", w, i)
				if err := tbl.Put(row, "doc", "xml", []byte(fmt.Sprintf("val-%d-%d", w, i))); err != nil {
					t.Errorf("Put %s: %v", row, err)
					return
				}
				if i%7 == 3 {
					if err := tbl.Delete(fmt.Sprintf("w%d-row%03d", w, i-1), "doc", "xml"); err != nil {
						t.Errorf("Delete: %v", err)
						return
					}
				}
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 5; i++ {
			if err := s.Checkpoint(); err != nil {
				t.Errorf("concurrent Checkpoint: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	<-done
	want := scanAll(tbl)

	crash(t, s)
	tbl2, _, rep := newDurableTable(t, dir, StoreOptions{})
	if rep.Damaged() {
		t.Fatalf("recovery reported damage: %s", rep.Summary())
	}
	assertSameState(t, want, scanAll(tbl2))
}

func TestStoreSyncAndLSN(t *testing.T) {
	dir := t.TempDir()
	tbl, s, _ := newDurableTable(t, dir, StoreOptions{NoFsync: true})
	if err := tbl.Put("row", "doc", "xml", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := s.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	if got := s.LastLSN(); got != 1 {
		t.Fatalf("LastLSN = %d, want 1", got)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Sync(); err != ErrStoreClosed {
		t.Fatalf("Sync after Close = %v, want ErrStoreClosed", err)
	}
}

// TestStoreMaxBodySizedValueSurvivesRecovery round-trips the largest
// value httpapi will accept (64 MiB) through append + crash recovery.
// json.Marshal base64-encodes the value, inflating the WAL payload to
// ~85.4 MiB — this is the regression test for the append bound being
// smaller than a legal record, which acknowledged the write and then
// quarantined it as "implausible" on the next boot.
func TestStoreMaxBodySizedValueSurvivesRecovery(t *testing.T) {
	const maxHTTPBody = 64 << 20 // httpapi's maxBody
	dir := t.TempDir()
	tbl, s, _ := newDurableTable(t, dir, StoreOptions{NoFsync: true})
	big := bytes.Repeat([]byte{0xab}, maxHTTPBody)
	if err := tbl.Put("doc|big", "doc", "xml", big); err != nil {
		t.Fatalf("Put of a maxBody-sized value must be journalable: %v", err)
	}
	want := scanAll(tbl)
	crash(t, s)

	// Recovery must replay the large (but legal) record, not quarantine it.
	tbl2, _, rep := newDurableTable(t, dir, StoreOptions{NoFsync: true})
	if rep.Damaged() {
		t.Fatalf("legal maxBody-sized record quarantined on recovery: %s", rep.Summary())
	}
	if rep.ReplayedRecords != 1 {
		t.Fatalf("replayed %d records, want 1", rep.ReplayedRecords)
	}
	assertSameState(t, want, scanAll(tbl2))
}

// TestStoreRejectsOversizedWALRecordAtAppend: a record whose encoded
// payload exceeds the WAL bound must fail the Put (never acked, never
// applied) instead of being journaled and lost at the next boot.
func TestStoreRejectsOversizedWALRecordAtAppend(t *testing.T) {
	dir := t.TempDir()
	tbl, s, _ := newDurableTable(t, dir, StoreOptions{NoFsync: true})
	if err := tbl.Put("doc|ok", "doc", "xml", []byte("fine")); err != nil {
		t.Fatal(err)
	}
	want := scanAll(tbl)

	// 73 MiB raw base64-inflates past the 96 MiB payload bound.
	huge := bytes.Repeat([]byte{0xcd}, 73<<20)
	err := tbl.Put("doc|huge", "doc", "xml", huge)
	if err == nil {
		t.Fatal("oversized record was acknowledged")
	}
	if !strings.Contains(err.Error(), "limit") {
		t.Fatalf("Put error = %v, want the WAL size-limit rejection", err)
	}
	if _, ok := tbl.Get("doc|huge", "doc", "xml"); ok {
		t.Fatal("rejected record reached the memstore")
	}
	crash(t, s)

	tbl2, _, rep := newDurableTable(t, dir, StoreOptions{NoFsync: true})
	if rep.Damaged() {
		t.Fatalf("rejected append damaged the WAL: %s", rep.Summary())
	}
	assertSameState(t, want, scanAll(tbl2))
}

// TestStoreOpenRefusesLockedDataDir: two live stores on one data dir
// would interleave appends and compactions on the same wal.log, so the
// second Open must fail fast while the first holds the lock, and succeed
// once it is released.
func TestStoreOpenRefusesLockedDataDir(t *testing.T) {
	dir := t.TempDir()
	_, s, _ := newDurableTable(t, dir, StoreOptions{})
	if _, _, err := Open(newTable(t, 0), dir, StoreOptions{}); err == nil {
		t.Fatal("second Open on a locked data dir succeeded")
	} else if !strings.Contains(err.Error(), "locked by another process") {
		t.Fatalf("second Open error = %v, want the lock refusal", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, _, err := Open(newTable(t, 0), dir, StoreOptions{}); err != nil {
		t.Fatalf("Open after Close: %v", err)
	}
}

// TestStoreCheckpointOnDamagedWALKeepsAppendOffset: when compaction
// refuses an externally damaged WAL, the append offset must be restored
// to EOF — otherwise the next Put would overwrite framed records at the
// spot where the compaction scan stopped.
func TestStoreCheckpointOnDamagedWALKeepsAppendOffset(t *testing.T) {
	dir := t.TempDir()
	tbl, s, _ := newDurableTable(t, dir, StoreOptions{})
	for i := 0; i < 6; i++ {
		if err := tbl.Put(fmt.Sprintf("row-%d", i), "doc", "xml", bytes.Repeat([]byte("p"), 200)); err != nil {
			t.Fatal(err)
		}
	}
	walPath := filepath.Join(dir, walFileName)
	raw, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte early in the log so the compaction scan stops
	// far from EOF.
	raw[walFrameHeader+4] ^= 0x01
	if err := os.WriteFile(walPath, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	sizeBefore := fileSize(t, walPath)

	if err := s.Checkpoint(); err == nil {
		t.Fatal("Checkpoint compacted a damaged WAL")
	} else if !strings.Contains(err.Error(), "damaged") {
		t.Fatalf("Checkpoint error = %v, want damage refusal", err)
	}
	if err := tbl.Put("after", "doc", "xml", []byte("appended")); err != nil {
		t.Fatalf("Put after refused compaction: %v", err)
	}
	if got := fileSize(t, walPath); got <= sizeBefore {
		t.Fatalf("WAL did not grow (size %d -> %d): append overwrote framed records mid-file", sizeBefore, got)
	}
}

func fileSize(t *testing.T, path string) int64 {
	t.Helper()
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	return st.Size()
}
