package pool

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"sync"
	"syscall"
	"time"
)

// Store attaches crash-consistent persistence to one Table, closing the
// gap between the paper's "documents live in a BigTable-like cloud store"
// scalability story and the in-memory reproduction: a portal or TFC crash
// must not lose stored workflow instances, or the nonrepudiation evidence
// the cascaded signatures carry dies with the process.
//
// The design is the classic log-structured recovery pair:
//
//   - every mutation is appended to a CRC-checksummed WAL (wal.go) before
//     the table acknowledges it;
//   - Checkpoint writes the table's full live state as a snapshot file
//     (the Export format plus a WAL watermark) and compacts the WAL down
//     to the suffix not yet covered by a retained checkpoint;
//   - Open recovers by loading the newest valid checkpoint and replaying
//     the WAL suffix, preserving cell versions so the recovered table is
//     identical to the pre-crash live state. Damaged checkpoints and torn
//     or bit-flipped WAL tails are quarantined and surfaced in the
//     RecoveryReport, never silently dropped.
var (
	mWALAppends       = tel.Counter("pool_wal_appends_total")
	mWALBytes         = tel.Counter("pool_wal_bytes_total")
	mWALFsyncs        = tel.Counter("pool_wal_fsyncs_total")
	mWALQuarantined   = tel.Counter("pool_wal_quarantined_bytes_total")
	mCheckpoints      = tel.Counter("pool_checkpoints_total")
	mCheckpointErrors = tel.Counter("pool_checkpoint_errors_total")
	mReplayedRecords  = tel.Counter("pool_recovery_replayed_records_total")
)

// ErrStoreClosed is returned for mutations after Close: the final
// checkpoint has been written and accepting more writes would silently
// leave them undurable.
var ErrStoreClosed = errors.New("pool: durable store is closed")

// ErrStoreFailed is returned for mutations after the store lost its WAL
// append handle (the compacted WAL could not be reopened after the swap).
// Accepting writes in that state would send them to an unlinked inode —
// acknowledged, then gone on the next boot — so the store fails hard and
// stays failed until the process restarts and recovers.
var ErrStoreFailed = errors.New("pool: durable store failed: compacted WAL could not be reopened, restart to recover")

// Store file names inside a data directory.
const (
	walFileName        = "wal.log"
	walQuarantineName  = "wal.quarantine"
	lockFileName       = "LOCK"
	checkpointExt      = ".ckpt"
	corruptSuffix      = ".corrupt"
	checkpointTmpName  = "checkpoint.tmp"
	defaultCheckpoints = 2
)

// checkpointNameRe matches durable checkpoint files; the zero-padded
// watermark makes lexical order equal numeric order.
var checkpointNameRe = regexp.MustCompile(`^checkpoint-(\d{20})\.ckpt$`)

func checkpointFileName(walSeq uint64) string {
	return fmt.Sprintf("checkpoint-%020d%s", walSeq, checkpointExt)
}

// StoreOptions tune a Store. The zero value is usable: fsync on every
// append, no automatic checkpoints, two retained checkpoints.
type StoreOptions struct {
	// NoFsync skips the per-append fsync. Appends still reach the OS page
	// cache before the mutation is acknowledged, so only a machine (not
	// process) crash can lose acknowledged writes.
	NoFsync bool
	// CheckpointInterval starts a background checkpoint loop when > 0.
	CheckpointInterval time.Duration
	// KeepCheckpoints bounds retained checkpoint files (default 2; the
	// WAL keeps the suffix needed to recover from the oldest retained one,
	// so a corrupt newest checkpoint never costs data).
	KeepCheckpoints int
}

func (o StoreOptions) withDefaults() StoreOptions {
	if o.KeepCheckpoints <= 0 {
		o.KeepCheckpoints = defaultCheckpoints
	}
	return o
}

// RecoveryReport describes what Open found and rebuilt. Surfacing the
// damage is part of the contract: operators must learn about quarantined
// records from the boot log, not from a missing workflow instance.
type RecoveryReport struct {
	// Checkpoint is the base name of the checkpoint loaded ("" if none).
	Checkpoint string
	// CheckpointCells counts cells loaded from that checkpoint.
	CheckpointCells int
	// SkippedCheckpoints lists checkpoint files that failed validation and
	// were renamed aside with a .corrupt suffix.
	SkippedCheckpoints []string
	// ReplayedRecords counts WAL records applied after the checkpoint.
	ReplayedRecords int
	// QuarantinedBytes is the size of the damaged WAL suffix moved to
	// QuarantineFile (0 when the log was clean).
	QuarantinedBytes int64
	// QuarantineFile is the sidecar holding the damaged bytes ("" if none).
	QuarantineFile string
	// DamageReason describes the first damaged WAL frame ("" when clean).
	DamageReason string
}

// Damaged reports whether recovery found anything to quarantine.
func (r *RecoveryReport) Damaged() bool {
	return r.QuarantinedBytes > 0 || len(r.SkippedCheckpoints) > 0
}

// Summary renders the report as one operator-readable line.
func (r *RecoveryReport) Summary() string {
	s := fmt.Sprintf("recovered %d cells from %s, replayed %d WAL records",
		r.CheckpointCells, orNone(r.Checkpoint), r.ReplayedRecords)
	if len(r.SkippedCheckpoints) > 0 {
		s += fmt.Sprintf(", skipped %d corrupt checkpoint(s)", len(r.SkippedCheckpoints))
	}
	if r.QuarantinedBytes > 0 {
		s += fmt.Sprintf(", quarantined %d damaged WAL bytes to %s (%s)",
			r.QuarantinedBytes, r.QuarantineFile, r.DamageReason)
	}
	return s
}

func orNone(s string) string {
	if s == "" {
		return "no checkpoint"
	}
	return s
}

// Store is the durable backing of one Table. Safe for concurrent use.
type Store struct {
	table *Table
	dir   string
	opts  StoreOptions

	// applyMu orders WAL appends relative to checkpoints: mutators hold
	// the read side across journal+apply, Checkpoint takes the write side
	// to pick a watermark no in-flight mutation can precede.
	applyMu sync.RWMutex

	// ckMu serializes whole checkpoint runs (tmp file, pruning, WAL
	// compaction) against each other.
	ckMu sync.Mutex

	mu     sync.Mutex // guards f, lsn, closed, failed
	f      *os.File
	lsn    uint64
	closed bool
	// failed latches when the WAL append handle is lost (see ErrStoreFailed);
	// mutations are refused so no acknowledged write can land on a dead file.
	failed bool

	// lockF holds the exclusive advisory lock on the data dir for the
	// store's lifetime, keeping a second process (another daemon, or
	// `dractl snapshot save` against a live dir) from interleaving appends
	// and compactions on the same wal.log.
	lockF *os.File

	closeOnce sync.Once
	closeErr  error

	tickerStop chan struct{}
	tickerDone chan struct{}
}

// Open attaches durable storage in dir to a freshly created table: it
// recovers existing state (newest valid checkpoint plus WAL replay), then
// journals every subsequent mutation before it is acknowledged. The
// returned report describes what was recovered and what had to be
// quarantined. The table must be empty — recovery owns its version clock.
func Open(t *Table, dir string, opts StoreOptions) (*Store, *RecoveryReport, error) {
	defer tel.StartSpan("pool_recovery_seconds").End()
	if len(t.Scan(ScanOptions{Limit: 1})) > 0 {
		return nil, nil, fmt.Errorf("pool: durable store needs a freshly created table, %s already holds data", t.name)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("pool: creating data dir: %w", err)
	}
	lockF, err := lockDataDir(dir)
	if err != nil {
		return nil, nil, err
	}
	s := &Store{table: t, dir: dir, opts: opts.withDefaults(), lockF: lockF}
	rep := &RecoveryReport{}

	watermark, err := s.recoverCheckpoint(rep)
	if err != nil {
		return nil, nil, errors.Join(err, unlockDataDir(lockF))
	}
	if err := s.recoverWAL(watermark, rep); err != nil {
		return nil, nil, errors.Join(err, unlockDataDir(lockF))
	}
	if err := t.attachStore(s); err != nil {
		cerr := s.f.Close()
		return nil, nil, errors.Join(err, cerr, unlockDataDir(lockF))
	}
	if s.opts.CheckpointInterval > 0 {
		s.tickerStop = make(chan struct{})
		s.tickerDone = make(chan struct{})
		go s.checkpointLoop()
	}
	return s, rep, nil
}

// recoverCheckpoint loads the newest checkpoint that validates, renaming
// damaged ones aside, and returns its WAL watermark.
func (s *Store) recoverCheckpoint(rep *RecoveryReport) (uint64, error) {
	names, err := s.checkpointFiles()
	if err != nil {
		return 0, err
	}
	for i := len(names) - 1; i >= 0; i-- {
		name := names[i]
		path := filepath.Join(s.dir, name)
		info, err := readSnapshotFile(path)
		if err != nil {
			// Quarantine: keep the bytes for forensics, but make sure the
			// next boot does not trip over the same damage.
			if rerr := os.Rename(path, path+corruptSuffix); rerr != nil {
				return 0, fmt.Errorf("pool: quarantining corrupt checkpoint %s: %w", name, rerr)
			}
			rep.SkippedCheckpoints = append(rep.SkippedCheckpoints, name)
			continue
		}
		for _, kv := range info.Cells {
			s.table.applyReplay(kv)
		}
		rep.Checkpoint = name
		rep.CheckpointCells = len(info.Cells)
		return info.WALSeq, nil
	}
	return 0, nil
}

// recoverWAL replays the intact WAL suffix past the checkpoint watermark,
// quarantining any damaged tail, and leaves the file open for appends.
func (s *Store) recoverWAL(watermark uint64, rep *RecoveryReport) error {
	f, err := os.OpenFile(filepath.Join(s.dir, walFileName), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return fmt.Errorf("pool: opening WAL: %w", err)
	}
	scan, err := scanWAL(f)
	if err != nil {
		cerr := f.Close()
		return errors.Join(err, cerr)
	}
	if scan.damaged > 0 {
		qpath := filepath.Join(s.dir, walQuarantineName)
		if err := quarantineWALTail(f, scan, qpath); err != nil {
			cerr := f.Close()
			return errors.Join(err, cerr)
		}
		mWALQuarantined.Add(scan.damaged)
		rep.QuarantinedBytes = scan.damaged
		rep.QuarantineFile = qpath
		rep.DamageReason = scan.reason
	}
	s.lsn = watermark
	for _, rec := range scan.recs {
		if rec.LSN > s.lsn {
			s.lsn = rec.LSN
		}
		if rec.LSN <= watermark {
			continue // already contained in the checkpoint
		}
		s.table.applyReplay(rec.keyValue())
		rep.ReplayedRecords++
	}
	mReplayedRecords.Add(int64(rep.ReplayedRecords))
	if _, err := f.Seek(scan.intact, io.SeekStart); err != nil {
		cerr := f.Close()
		return errors.Join(fmt.Errorf("pool: seeking WAL to append position: %w", err), cerr)
	}
	s.f = f
	return nil
}

// checkpointFiles returns the durable checkpoint base names in ascending
// watermark order.
func (s *Store) checkpointFiles() ([]string, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("pool: listing data dir: %w", err)
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && checkpointNameRe.MatchString(e.Name()) {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

// logMutation journals one mutation and applies it to the table. It is
// the table-mutator entry point: the record is durable (per the fsync
// policy) before the memstore sees it.
func (s *Store) logMutation(kv KeyValue, del bool) (*Region, error) {
	s.applyMu.RLock()
	defer s.applyMu.RUnlock()
	if err := s.appendRec(kv, del); err != nil {
		return nil, err
	}
	return s.table.putKV(kv), nil
}

func (s *Store) appendRec(kv KeyValue, del bool) error {
	op := walOpPut
	var value []byte
	if del {
		op = walOpDel
	} else {
		value = kv.Value
		if value == nil {
			value = []byte{}
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrStoreClosed
	}
	if s.failed {
		return ErrStoreFailed
	}
	s.lsn++
	frame, err := encodeWALRecord(walRec{
		Op: op, LSN: s.lsn,
		Row: kv.Row, Family: kv.Family, Qualifier: kv.Qualifier,
		Value: value, Version: kv.Version,
	})
	if err != nil {
		return err
	}
	if _, err := s.f.Write(frame); err != nil {
		return fmt.Errorf("pool: appending to WAL: %w", err)
	}
	mWALAppends.Inc()
	mWALBytes.Add(int64(len(frame)))
	if !s.opts.NoFsync {
		if err := s.f.Sync(); err != nil {
			return fmt.Errorf("pool: fsyncing WAL: %w", err)
		}
		mWALFsyncs.Inc()
	}
	return nil
}

// Sync forces the WAL to stable storage — the manual durability barrier
// for stores running with NoFsync.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrStoreClosed
	}
	if s.failed {
		return ErrStoreFailed
	}
	if err := s.f.Sync(); err != nil {
		return fmt.Errorf("pool: fsyncing WAL: %w", err)
	}
	mWALFsyncs.Inc()
	return nil
}

// Checkpoint writes the table's live state as a durable snapshot file and
// compacts the WAL down to the suffix not covered by a retained
// checkpoint. Safe to call concurrently with mutations.
func (s *Store) Checkpoint() error {
	defer tel.StartSpan("pool_checkpoint_seconds").End()
	s.ckMu.Lock()
	defer s.ckMu.Unlock()
	// Barrier: wait out in-flight journal+apply pairs so every record with
	// LSN <= watermark is visible to the scan below. Mutations landing
	// after the barrier may also appear in the scan — replay preserves
	// versions, so re-applying them from the WAL is idempotent.
	s.applyMu.Lock()
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.applyMu.Unlock()
		return ErrStoreClosed
	}
	watermark := s.lsn
	s.mu.Unlock()
	s.applyMu.Unlock()

	kvs := s.table.Scan(ScanOptions{})
	name := checkpointFileName(watermark)
	if err := writeCheckpointFile(s.dir, name, &SnapshotInfo{
		Table: s.table.Name(), WALSeq: watermark, Cells: kvs,
	}); err != nil {
		mCheckpointErrors.Inc()
		return err
	}
	keepFrom, err := s.pruneCheckpoints()
	if err != nil {
		mCheckpointErrors.Inc()
		return err
	}
	if err := s.compactWAL(keepFrom); err != nil {
		mCheckpointErrors.Inc()
		return err
	}
	mCheckpoints.Inc()
	return nil
}

// pruneCheckpoints deletes checkpoints beyond KeepCheckpoints and returns
// the watermark of the oldest retained one — the WAL must keep every
// record past it so any retained checkpoint can still recover.
func (s *Store) pruneCheckpoints() (uint64, error) {
	names, err := s.checkpointFiles()
	if err != nil {
		return 0, err
	}
	for len(names) > s.opts.KeepCheckpoints {
		if err := os.Remove(filepath.Join(s.dir, names[0])); err != nil {
			return 0, fmt.Errorf("pool: pruning checkpoint: %w", err)
		}
		names = names[1:]
	}
	if len(names) == 0 {
		return 0, nil
	}
	m := checkpointNameRe.FindStringSubmatch(names[0])
	wm, err := strconv.ParseUint(m[1], 10, 64)
	if err != nil {
		return 0, fmt.Errorf("pool: parsing checkpoint watermark: %w", err)
	}
	return wm, nil
}

// compactWAL rewrites the WAL keeping only records with LSN > watermark.
// Appends are blocked for the duration; the suffix past a fresh
// checkpoint is small, so the pause is bounded.
func (s *Store) compactWAL(watermark uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrStoreClosed
	}
	if s.failed {
		return ErrStoreFailed
	}
	// scanWAL moves the file offset; every return that keeps the current
	// handle must first put the offset back at EOF, or the next append
	// would overwrite framed records mid-file.
	restoreOffset := func() error {
		if _, serr := s.f.Seek(0, io.SeekEnd); serr != nil {
			return fmt.Errorf("pool: restoring WAL append offset: %w", serr)
		}
		return nil
	}
	scan, err := scanWAL(s.f)
	if err != nil {
		return errors.Join(err, restoreOffset())
	}
	if scan.damaged > 0 {
		// Cannot happen for frames this process wrote; refuse to rewrite a
		// log we cannot fully read and keep the original intact.
		return errors.Join(
			fmt.Errorf("pool: WAL damaged during compaction (%s); keeping original", scan.reason),
			restoreOffset())
	}
	tmpPath := filepath.Join(s.dir, walFileName+".compact")
	//lint:ignore lockio compaction swaps the append handle, so it must hold the append mutex across the rewrite; the post-checkpoint suffix is small and the pause bounded
	tmp, err := os.OpenFile(tmpPath, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("pool: compacting WAL: %w", err)
	}
	werr := func() error {
		for _, rec := range scan.recs {
			if rec.LSN <= watermark {
				continue
			}
			frame, err := encodeWALRecord(rec)
			if err != nil {
				return err
			}
			if _, err := tmp.Write(frame); err != nil {
				return err
			}
		}
		return tmp.Sync()
	}()
	if werr != nil {
		cerr := tmp.Close()
		//lint:ignore lockio error-path cleanup of the tmp file; see the OpenFile above for why the mutex is held
		rerr := os.Remove(tmpPath)
		return fmt.Errorf("pool: compacting WAL: %w", errors.Join(werr, cerr, rerr))
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("pool: compacting WAL: %w", err)
	}
	walPath := filepath.Join(s.dir, walFileName)
	//lint:ignore lockio the rename IS the swap appends must not interleave with; see the OpenFile above
	if err := os.Rename(tmpPath, walPath); err != nil {
		return fmt.Errorf("pool: swapping compacted WAL: %w", err)
	}
	if err := syncDir(s.dir); err != nil {
		return err
	}
	//lint:ignore lockio the fresh append handle must be installed before any append can run; see the OpenFile above
	nf, err := os.OpenFile(walPath, os.O_RDWR, 0o644)
	if err != nil {
		// The rename already happened: s.f points at the old, now-unlinked
		// inode. Accepting appends there would acknowledge writes that
		// vanish on the next restart, so fail the store hard — mutations
		// return ErrStoreFailed until a restart recovers from the (intact)
		// compacted WAL on disk.
		s.failed = true
		cerr := s.f.Close()
		return errors.Join(fmt.Errorf("pool: reopening compacted WAL: %w", err), cerr, ErrStoreFailed)
	}
	if _, err := nf.Seek(0, io.SeekEnd); err != nil {
		s.failed = true
		cerr := nf.Close()
		oerr := s.f.Close()
		return errors.Join(fmt.Errorf("pool: seeking compacted WAL: %w", err), cerr, oerr, ErrStoreFailed)
	}
	old := s.f
	s.f = nf
	return old.Close()
}

// checkpointLoop runs periodic checkpoints until Close.
func (s *Store) checkpointLoop() {
	defer close(s.tickerDone)
	ticker := time.NewTicker(s.opts.CheckpointInterval)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			// Errors are counted (pool_checkpoint_errors_total); the next
			// tick retries, and the WAL alone still recovers everything.
			_ = s.Checkpoint() //lint:ignore cryptoerr periodic checkpoint failure is retried next tick and counted in pool_checkpoint_errors_total; durability is preserved by the WAL
		case <-s.tickerStop:
			return
		}
	}
}

// Close stops the checkpoint loop, writes a final checkpoint, and closes
// the WAL. Mutations after Close fail with ErrStoreClosed. Idempotent.
func (s *Store) Close() error {
	s.closeOnce.Do(func() { s.closeErr = s.doClose() })
	return s.closeErr
}

func (s *Store) doClose() error {
	if s.tickerStop != nil {
		close(s.tickerStop)
		<-s.tickerDone
	}
	ckErr := s.Checkpoint()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	if s.failed {
		// The WAL handle was already closed when the store failed; the
		// snapshot half of the checkpoint above still preserved live state.
		return errors.Join(ckErr, unlockDataDir(s.lockF))
	}
	serr := s.f.Sync()
	cerr := s.f.Close()
	return errors.Join(ckErr, serr, cerr, unlockDataDir(s.lockF))
}

// Abandon releases the store the way a killed process would: the WAL
// handle and the data-dir lock are dropped with no drain, no final
// checkpoint, and no sync, so the next Open must rebuild purely from the
// on-disk checkpoint + WAL. It exists for crash-recovery drills and
// tests; production shutdown is Close. Further mutations are refused.
// Shares idempotency with Close: whichever runs first wins.
func (s *Store) Abandon() error {
	s.closeOnce.Do(func() {
		if s.tickerStop != nil {
			close(s.tickerStop)
			<-s.tickerDone
		}
		s.mu.Lock()
		defer s.mu.Unlock()
		s.closed = true
		var cerr error
		if !s.failed { // a failed store already closed its WAL handle
			cerr = s.f.Close()
		}
		s.closeErr = errors.Join(cerr, unlockDataDir(s.lockF))
	})
	return s.closeErr
}

// Dir returns the store's data directory.
func (s *Store) Dir() string { return s.dir }

// LastLSN returns the most recently assigned WAL sequence number.
func (s *Store) LastLSN() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lsn
}

// readSnapshotFile opens and fully validates one snapshot/checkpoint file.
func readSnapshotFile(path string) (*SnapshotInfo, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("pool: opening checkpoint: %w", err)
	}
	defer f.Close()
	return ReadSnapshot(f)
}

// writeCheckpointFile atomically writes info into dir under name: tmp
// file, fsync, rename, directory fsync — a crash leaves either the old
// state or the complete new checkpoint, never a half-written one.
func writeCheckpointFile(dir, name string, info *SnapshotInfo) error {
	tmpPath := filepath.Join(dir, checkpointTmpName)
	tmp, err := os.OpenFile(tmpPath, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("pool: creating checkpoint: %w", err)
	}
	werr := writeSnapshot(tmp, info.Table, info.WALSeq, info.Cells)
	if werr == nil {
		werr = tmp.Sync()
	}
	if werr != nil {
		cerr := tmp.Close()
		rerr := os.Remove(tmpPath)
		return errors.Join(werr, cerr, rerr)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("pool: closing checkpoint: %w", err)
	}
	if err := os.Rename(tmpPath, filepath.Join(dir, name)); err != nil {
		return fmt.Errorf("pool: publishing checkpoint: %w", err)
	}
	return syncDir(dir)
}

// WriteCheckpointFile publishes info as a durable checkpoint file in dir
// using the store's naming scheme and returns the file's base name. It is
// the offline restore path (`dractl snapshot restore`).
func WriteCheckpointFile(dir string, info *SnapshotInfo) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("pool: creating data dir: %w", err)
	}
	name := checkpointFileName(info.WALSeq)
	if err := writeCheckpointFile(dir, name, info); err != nil {
		return "", err
	}
	return name, nil
}

// lockDataDir takes the exclusive advisory lock guarding a data dir. Two
// writers on one dir append to wal.log at independent offsets and both
// truncate/rename it during quarantine and compaction — guaranteed
// corruption — so a held lock fails fast instead of opening. The lock is
// advisory (flock): it binds every cooperating opener (daemons and dractl
// alike), not arbitrary file access.
func lockDataDir(dir string) (*os.File, error) {
	path := filepath.Join(dir, lockFileName)
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("pool: opening lock file: %w", err)
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		cerr := f.Close()
		return nil, errors.Join(
			fmt.Errorf("pool: data dir %s is locked by another process (a running daemon or dractl); refusing to open it concurrently: %w", dir, err),
			cerr)
	}
	return f, nil
}

// unlockDataDir releases the advisory lock; closing the descriptor drops
// the flock.
func unlockDataDir(f *os.File) error {
	if f == nil {
		return nil
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("pool: releasing data dir lock: %w", err)
	}
	return nil
}

// syncDir fsyncs a directory so a just-renamed file survives power loss.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("pool: opening data dir for sync: %w", err)
	}
	serr := d.Sync()
	cerr := d.Close()
	if err := errors.Join(serr, cerr); err != nil {
		return fmt.Errorf("pool: fsyncing data dir: %w", err)
	}
	return nil
}
