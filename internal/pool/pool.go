// Package pool implements the pool of DRA4WfMS documents: a distributed,
// column-oriented key-value store modeled on HBase, which the paper's
// prototype used on top of Hadoop (Section 4.2). A DRA4WfMS document is
// stored as a cell in a row of a table; portals perform random reads and
// writes by row key and prefix scans for worklists, and the mapreduce
// package runs statistics over scans.
//
// The store reproduces the HBase mechanics that matter for those access
// patterns:
//
//   - tables with declared column families and bounded cell versions;
//   - range-sharded regions, each with a write-ahead log, an in-memory
//     memstore, and immutable flushed segments (HFiles);
//   - region flush, compaction, and splitting when a region grows past a
//     threshold;
//   - a cluster of region servers with master-directed region assignment
//     and client-side routing by key range;
//   - ordered scans with family/prefix/limit filtering, merging memstore
//     and segments with latest-version-wins and delete tombstones.
//
// Everything is in-memory and protected by per-region locks; Crash and
// Recover simulate a region server failure with WAL replay.
package pool

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"

	"dra4wfms/internal/telemetry"
)

// Runtime telemetry: latency histograms for the three access patterns
// portals exercise (random get/put, ordered scan) plus scan volume and
// region-split counters — the pool-tier half of the paper's scalability
// claim.
var (
	tel           = telemetry.Default()
	mScannedCells = tel.Counter("pool_scan_cells_total")
	mSplits       = tel.Counter("pool_region_splits_total")
)

// Cell is one versioned value.
type Cell struct {
	// Value is the stored bytes; nil marks a delete tombstone.
	Value []byte
	// Version is the cell's logical timestamp; higher is newer.
	Version int64
}

// IsTombstone reports whether the cell marks a deletion.
func (c Cell) IsTombstone() bool { return c.Value == nil }

// KeyValue is one cell with its full coordinates, the unit scans return.
type KeyValue struct {
	Row       string
	Family    string
	Qualifier string
	Cell
}

func (kv KeyValue) coordLess(other KeyValue) bool {
	if kv.Row != other.Row {
		return kv.Row < other.Row
	}
	if kv.Family != other.Family {
		return kv.Family < other.Family
	}
	return kv.Qualifier < other.Qualifier
}

// FamilySpec configures one column family.
type FamilySpec struct {
	// Name is the family name, e.g. "doc".
	Name string
	// MaxVersions bounds retained versions per cell (default 1).
	MaxVersions int
}

// Errors.
var (
	// ErrNoTable is returned for operations on undeclared tables.
	ErrNoTable = errors.New("pool: no such table")
	// ErrNoFamily is returned for writes to undeclared column families.
	ErrNoFamily = errors.New("pool: no such column family")
	// ErrEmptyRow is returned for operations with an empty row key.
	ErrEmptyRow = errors.New("pool: empty row key")
)

// --- region ------------------------------------------------------------------

type walEntry struct {
	kv KeyValue
}

// versions is a cell's version list, newest first.
type versions []Cell

func (v versions) insert(c Cell, max int) versions {
	i := sort.Search(len(v), func(i int) bool { return v[i].Version <= c.Version })
	if i < len(v) && v[i].Version == c.Version {
		v[i] = c
		return v
	}
	v = append(v, Cell{})
	copy(v[i+1:], v[i:])
	v[i] = c
	if len(v) > max {
		v = v[:max]
	}
	return v
}

type memstore map[string]map[string]map[string]versions // row -> family -> qualifier

// segment is an immutable flushed snapshot, sorted by coordinates with the
// newest version per coordinate.
type segment struct {
	kvs []KeyValue
}

func (s *segment) get(row, family, qualifier string) (Cell, bool) {
	i := sort.Search(len(s.kvs), func(i int) bool {
		kv := s.kvs[i]
		target := KeyValue{Row: row, Family: family, Qualifier: qualifier}
		return !kv.coordLess(target)
	})
	if i < len(s.kvs) {
		kv := s.kvs[i]
		if kv.Row == row && kv.Family == family && kv.Qualifier == qualifier {
			return kv.Cell, true
		}
	}
	return Cell{}, false
}

// Region is one contiguous key range [Start, End) of a table. End == ""
// means unbounded.
type Region struct {
	mu       sync.RWMutex
	table    *Table
	start    string
	end      string
	mem      memstore
	memBytes int
	segments []*segment
	wal      []walEntry
	server   string // owning region server ID
	offline  bool   // set while the region is being split; writes must retry
}

// Start returns the inclusive start key of the region's range.
func (r *Region) Start() string { return r.start }

// End returns the exclusive end key ("" = unbounded).
func (r *Region) End() string { return r.end }

// Server returns the ID of the region server hosting this region.
func (r *Region) Server() string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.server
}

func (r *Region) contains(row string) bool {
	return row >= r.start && (r.end == "" || row < r.end)
}

// put stores kv in the region. It reports false when the region has been
// taken offline by a split — the caller must re-route and retry, mirroring
// HBase's NotServingRegionException.
func (r *Region) put(kv KeyValue, logWAL bool) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.offline {
		return false
	}
	if logWAL {
		r.wal = append(r.wal, walEntry{kv: kv})
	}
	fam, ok := r.mem[kv.Row]
	if !ok {
		fam = map[string]map[string]versions{}
		r.mem[kv.Row] = fam
	}
	quals, ok := fam[kv.Family]
	if !ok {
		quals = map[string]versions{}
		fam[kv.Family] = quals
	}
	max := r.table.maxVersions(kv.Family)
	quals[kv.Qualifier] = quals[kv.Qualifier].insert(kv.Cell, max)
	r.memBytes += len(kv.Row) + len(kv.Family) + len(kv.Qualifier) + len(kv.Value) + 16
	return true
}

// get returns the newest live cell for the coordinate.
func (r *Region) get(row, family, qualifier string) (Cell, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if fam, ok := r.mem[row]; ok {
		if quals, ok := fam[family]; ok {
			if vs, ok := quals[qualifier]; ok && len(vs) > 0 {
				c := vs[0]
				if c.IsTombstone() {
					return Cell{}, false
				}
				return c, true
			}
		}
	}
	// Newest segment first.
	for i := len(r.segments) - 1; i >= 0; i-- {
		if c, ok := r.segments[i].get(row, family, qualifier); ok {
			if c.IsTombstone() {
				return Cell{}, false
			}
			return c, true
		}
	}
	return Cell{}, false
}

// snapshot returns the merged latest live cells of the region, sorted.
func (r *Region) snapshot() []KeyValue {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.snapshotLocked()
}

func (r *Region) snapshotLocked() []KeyValue {
	latest := map[[3]string]Cell{}
	// Oldest segments first, then memstore, so newer layers override.
	for _, seg := range r.segments {
		for _, kv := range seg.kvs {
			key := [3]string{kv.Row, kv.Family, kv.Qualifier}
			if cur, ok := latest[key]; !ok || kv.Version > cur.Version {
				latest[key] = kv.Cell
			}
		}
	}
	for row, fams := range r.mem {
		for family, quals := range fams {
			for qual, vs := range quals {
				if len(vs) == 0 {
					continue
				}
				key := [3]string{row, family, qual}
				if cur, ok := latest[key]; !ok || vs[0].Version > cur.Version {
					latest[key] = vs[0]
				}
			}
		}
	}
	out := make([]KeyValue, 0, len(latest))
	for key, c := range latest {
		if c.IsTombstone() {
			continue
		}
		out = append(out, KeyValue{Row: key[0], Family: key[1], Qualifier: key[2], Cell: c})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].coordLess(out[j]) })
	return out
}

// Flush writes the memstore into a new immutable segment and truncates the
// WAL (the data is now durable in the segment).
func (r *Region) Flush() {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.mem) == 0 {
		return
	}
	// Build a segment holding the newest version per coordinate (including
	// tombstones, which must mask older segment data).
	var kvs []KeyValue
	for row, fams := range r.mem {
		for family, quals := range fams {
			for qual, vs := range quals {
				if len(vs) == 0 {
					continue
				}
				kvs = append(kvs, KeyValue{Row: row, Family: family, Qualifier: qual, Cell: vs[0]})
			}
		}
	}
	sort.Slice(kvs, func(i, j int) bool { return kvs[i].coordLess(kvs[j]) })
	r.segments = append(r.segments, &segment{kvs: kvs})
	r.mem = memstore{}
	r.memBytes = 0
	r.wal = nil
}

// Compact merges all segments into one, dropping masked versions and
// purging tombstones.
func (r *Region) Compact() {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.segments) <= 1 {
		// A single segment may still hold tombstones worth purging.
		if len(r.segments) == 1 {
			r.segments = []*segment{compactSegments(r.segments)}
			if len(r.segments[0].kvs) == 0 {
				r.segments = nil
			}
		}
		return
	}
	merged := compactSegments(r.segments)
	if len(merged.kvs) == 0 {
		r.segments = nil
	} else {
		r.segments = []*segment{merged}
	}
}

func compactSegments(segs []*segment) *segment {
	latest := map[[3]string]Cell{}
	for _, seg := range segs {
		for _, kv := range seg.kvs {
			key := [3]string{kv.Row, kv.Family, kv.Qualifier}
			if cur, ok := latest[key]; !ok || kv.Version > cur.Version {
				latest[key] = kv.Cell
			}
		}
	}
	var kvs []KeyValue
	for key, c := range latest {
		if c.IsTombstone() {
			continue
		}
		kvs = append(kvs, KeyValue{Row: key[0], Family: key[1], Qualifier: key[2], Cell: c})
	}
	sort.Slice(kvs, func(i, j int) bool { return kvs[i].coordLess(kvs[j]) })
	return &segment{kvs: kvs}
}

// Crash simulates a region server failure: the memstore is lost; the WAL
// and flushed segments survive.
func (r *Region) Crash() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.mem = memstore{}
	r.memBytes = 0
}

// Recover replays the WAL into the memstore after a Crash.
func (r *Region) Recover() {
	r.mu.Lock()
	wal := r.wal
	r.wal = nil
	r.mu.Unlock()
	for _, e := range wal {
		r.put(e.kv, true)
	}
}

// SizeBytes returns the approximate in-memory size of the region.
func (r *Region) SizeBytes() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	size := r.memBytes
	for _, seg := range r.segments {
		for _, kv := range seg.kvs {
			size += len(kv.Row) + len(kv.Family) + len(kv.Qualifier) + len(kv.Value) + 16
		}
	}
	return size
}

// --- table -------------------------------------------------------------------

// Table is a named table with declared families and its region map.
type Table struct {
	name     string
	families map[string]FamilySpec

	mu      sync.RWMutex
	regions []*Region // sorted by start key, covering ["", "")
	cluster *Cluster
	seq     int64  // logical version clock
	store   *Store // durable backing; nil while the table is memory-only
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

func (t *Table) maxVersions(family string) int {
	if f, ok := t.families[family]; ok && f.MaxVersions > 0 {
		return f.MaxVersions
	}
	return 1
}

func (t *Table) nextVersion() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.seq++
	return t.seq
}

// attachStore binds a durable store to the table; every subsequent Put
// and Delete is journaled to its WAL before being acknowledged.
func (t *Table) attachStore(s *Store) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.store != nil {
		return fmt.Errorf("pool: table %s already has a durable store", t.name)
	}
	t.store = s
	return nil
}

// durableStore returns the attached store, if any.
func (t *Table) durableStore() *Store {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.store
}

// Durable reports whether the table is backed by a Store.
func (t *Table) Durable() bool { return t.durableStore() != nil }

// applyReplay reinserts a recovered cell with its original version and
// advances the table's version clock past it. Recovery-only: the mutation
// is not re-journaled, and re-applying a cell that is already present is
// idempotent because latest-wins resolves by version, not apply order.
func (t *Table) applyReplay(kv KeyValue) {
	t.mu.Lock()
	if kv.Version > t.seq {
		t.seq = kv.Version
	}
	t.mu.Unlock()
	t.putKV(kv)
}

// applyDurable journals kv (when a store is attached) and applies it.
func (t *Table) applyDurable(kv KeyValue, del bool) (*Region, error) {
	if s := t.durableStore(); s != nil {
		return s.logMutation(kv, del)
	}
	return t.putKV(kv), nil
}

// regionFor routes a row key to its region (client-side meta lookup).
func (t *Table) regionFor(row string) *Region {
	t.mu.RLock()
	defer t.mu.RUnlock()
	i := sort.Search(len(t.regions), func(i int) bool {
		r := t.regions[i]
		return r.end == "" || row < r.end
	})
	return t.regions[i]
}

// Regions returns the current regions in key order.
func (t *Table) Regions() []*Region {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]*Region, len(t.regions))
	copy(out, t.regions)
	return out
}

// Put stores value at (row, family, qualifier) with a fresh version.
func (t *Table) Put(row, family, qualifier string, value []byte) error {
	return t.PutCtx(context.Background(), row, family, qualifier, value)
}

// PutCtx is Put carrying the caller's trace context: inside a sampled
// distributed trace the pool write lands as a pool-tier span.
func (t *Table) PutCtx(ctx context.Context, row, family, qualifier string, value []byte) error {
	_, span := tel.StartSpanCtx(ctx, "pool_put_seconds")
	defer span.End()
	if row == "" {
		return ErrEmptyRow
	}
	if _, ok := t.families[family]; !ok {
		return fmt.Errorf("%w: %s.%s", ErrNoFamily, t.name, family)
	}
	if value == nil {
		value = []byte{}
	}
	kv := KeyValue{Row: row, Family: family, Qualifier: qualifier,
		Cell: Cell{Value: value, Version: t.nextVersion()}}
	region, err := t.applyDurable(kv, false)
	if err != nil {
		return err
	}
	t.maybeSplit(region)
	return nil
}

// putKV routes and stores kv, retrying when the target region goes offline
// mid-flight because of a concurrent split.
func (t *Table) putKV(kv KeyValue) *Region {
	for {
		region := t.regionFor(kv.Row)
		if region.put(kv, true) {
			return region
		}
		runtime.Gosched()
	}
}

// Delete writes a tombstone for (row, family, qualifier).
func (t *Table) Delete(row, family, qualifier string) error {
	if row == "" {
		return ErrEmptyRow
	}
	if _, ok := t.families[family]; !ok {
		return fmt.Errorf("%w: %s.%s", ErrNoFamily, t.name, family)
	}
	kv := KeyValue{Row: row, Family: family, Qualifier: qualifier,
		Cell: Cell{Value: nil, Version: t.nextVersion()}}
	if _, err := t.applyDurable(kv, true); err != nil {
		return err
	}
	return nil
}

// Get returns the newest live value at (row, family, qualifier).
func (t *Table) Get(row, family, qualifier string) ([]byte, bool) {
	return t.GetCtx(context.Background(), row, family, qualifier)
}

// GetCtx is Get carrying the caller's trace context (see PutCtx).
func (t *Table) GetCtx(ctx context.Context, row, family, qualifier string) ([]byte, bool) {
	_, span := tel.StartSpanCtx(ctx, "pool_get_seconds")
	defer span.End()
	if row == "" {
		return nil, false
	}
	c, ok := t.regionFor(row).get(row, family, qualifier)
	if !ok {
		return nil, false
	}
	return c.Value, true
}

// GetVersions returns up to the family's retained versions of a cell,
// newest first, including only live (non-tombstone) values. It merges
// memstore and segment versions; segments keep one version per flush, so
// history depth depends on flush cadence, as in HBase.
func (t *Table) GetVersions(row, family, qualifier string) []Cell {
	if row == "" {
		return nil
	}
	r := t.regionFor(row)
	r.mu.RLock()
	defer r.mu.RUnlock()
	var out []Cell
	if fam, ok := r.mem[row]; ok {
		if quals, ok := fam[family]; ok {
			out = append(out, quals[qualifier]...)
		}
	}
	for i := len(r.segments) - 1; i >= 0; i-- {
		if c, ok := r.segments[i].get(row, family, qualifier); ok {
			out = append(out, c)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Version > out[j].Version })
	// Deduplicate by version and stop at the first tombstone (older
	// versions are logically deleted).
	max := t.maxVersions(family)
	var live []Cell
	var lastVer int64 = -1
	for _, c := range out {
		if c.Version == lastVer {
			continue
		}
		lastVer = c.Version
		if c.IsTombstone() {
			break
		}
		live = append(live, c)
		if len(live) >= max {
			break
		}
	}
	return live
}

// GetRow returns every live cell of a row.
func (t *Table) GetRow(row string) []KeyValue {
	var out []KeyValue
	for _, kv := range t.regionFor(row).snapshot() {
		if kv.Row == row {
			out = append(out, kv)
		}
	}
	return out
}

// ScanOptions filter a Scan.
type ScanOptions struct {
	// StartRow is the inclusive scan start ("" = table start).
	StartRow string
	// EndRow is the exclusive scan end ("" = table end).
	EndRow string
	// Prefix restricts to rows with the given prefix.
	Prefix string
	// Family restricts to one column family ("" = all).
	Family string
	// Limit bounds the number of returned cells (0 = unlimited).
	Limit int
	// Filter, when non-nil, keeps only cells for which it returns true.
	Filter func(KeyValue) bool
}

// Scan returns live cells in (row, family, qualifier) order across all
// regions, applying the options.
func (t *Table) Scan(opts ScanOptions) []KeyValue {
	return t.ScanCtx(context.Background(), opts)
}

// ScanCtx is Scan carrying the caller's trace context (see PutCtx).
func (t *Table) ScanCtx(ctx context.Context, opts ScanOptions) []KeyValue {
	_, span := tel.StartSpanCtx(ctx, "pool_scan_seconds")
	defer span.End()
	var scanned int64
	defer func() { mScannedCells.Add(scanned) }()
	var out []KeyValue
	for _, r := range t.Regions() {
		if opts.EndRow != "" && r.start >= opts.EndRow {
			break
		}
		for _, kv := range r.snapshot() {
			scanned++
			if kv.Row < opts.StartRow {
				continue
			}
			if opts.EndRow != "" && kv.Row >= opts.EndRow {
				continue
			}
			if opts.Prefix != "" && !strings.HasPrefix(kv.Row, opts.Prefix) {
				continue
			}
			if opts.Family != "" && kv.Family != opts.Family {
				continue
			}
			if opts.Filter != nil && !opts.Filter(kv) {
				continue
			}
			out = append(out, kv)
			if opts.Limit > 0 && len(out) >= opts.Limit {
				return out
			}
		}
	}
	return out
}

// FlushAll flushes every region's memstore.
func (t *Table) FlushAll() {
	for _, r := range t.Regions() {
		r.Flush()
	}
}

// CompactAll compacts every region.
func (t *Table) CompactAll() {
	for _, r := range t.Regions() {
		r.Compact()
	}
}

// maybeSplit splits the region at its median row when it exceeds the
// cluster's split threshold, assigning the new daughter region to the
// least-loaded server.
func (t *Table) maybeSplit(r *Region) {
	if t.cluster == nil || t.cluster.SplitThresholdBytes <= 0 {
		return
	}
	if r.SizeBytes() < t.cluster.SplitThresholdBytes {
		return
	}
	// Resolve the daughter's server before taking t.mu: leastLoadedServer
	// reads t.Regions() and must not run under this table's write lock.
	daughterServer := t.cluster.leastLoadedServer()
	split := false
	defer func() {
		if split {
			t.cluster.noteSplit(t.name)
		}
	}()
	r.mu.Lock()
	if r.offline {
		r.mu.Unlock()
		return
	}
	rows := map[string]bool{}
	for _, seg := range r.segments {
		for _, kv := range seg.kvs {
			rows[kv.Row] = true
		}
	}
	for row := range r.mem {
		rows[row] = true
	}
	if len(rows) < 2 {
		r.mu.Unlock()
		return
	}
	sorted := make([]string, 0, len(rows))
	for row := range rows {
		sorted = append(sorted, row)
	}
	sort.Strings(sorted)
	mid := sorted[len(sorted)/2]
	if mid == r.start {
		r.mu.Unlock()
		return
	}

	// Take the parent offline: concurrent writers bounce and retry against
	// the daughters once the region map is swapped. Reads keep hitting the
	// parent's (now frozen) state until then.
	r.offline = true
	all := r.snapshotLocked()
	left := &Region{table: t, start: r.start, end: mid, mem: memstore{}, server: r.server}
	right := &Region{table: t, start: mid, end: r.end, mem: memstore{}, server: daughterServer}
	r.mu.Unlock()
	for _, kv := range all {
		if kv.Row < mid {
			left.put(kv, true)
		} else {
			right.put(kv, true)
		}
	}
	t.mu.Lock()
	for i, reg := range t.regions {
		if reg == r {
			t.regions = append(t.regions[:i], append([]*Region{left, right}, t.regions[i+1:]...)...)
			split = true
			break
		}
	}
	t.mu.Unlock()
}

// --- cluster -----------------------------------------------------------------

// Cluster is the document-pool deployment: a master directing region
// assignment across a set of region servers.
type Cluster struct {
	// SplitThresholdBytes triggers a region split when a region grows past
	// it (0 disables splitting).
	SplitThresholdBytes int

	mu      sync.RWMutex
	servers []string
	tables  map[string]*Table
	splits  map[string]int
}

// NewCluster creates a cluster with the given region server IDs (at least
// one) and split threshold.
func NewCluster(servers []string, splitThreshold int) (*Cluster, error) {
	if len(servers) == 0 {
		return nil, errors.New("pool: cluster needs at least one region server")
	}
	return &Cluster{
		SplitThresholdBytes: splitThreshold,
		servers:             append([]string(nil), servers...),
		tables:              map[string]*Table{},
		splits:              map[string]int{},
	}, nil
}

// CreateTable declares a table with its column families. The table starts
// with a single region covering the whole key space.
func (c *Cluster) CreateTable(name string, families ...FamilySpec) (*Table, error) {
	if name == "" {
		return nil, errors.New("pool: empty table name")
	}
	if len(families) == 0 {
		return nil, errors.New("pool: table needs at least one column family")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, exists := c.tables[name]; exists {
		return nil, fmt.Errorf("pool: table %q already exists", name)
	}
	t := &Table{
		name:     name,
		families: map[string]FamilySpec{},
		cluster:  c,
	}
	for _, f := range families {
		t.families[f.Name] = f
	}
	t.regions = []*Region{{table: t, mem: memstore{}, server: c.servers[0]}}
	c.tables[name] = t
	return t, nil
}

// Table returns a declared table.
func (c *Cluster) Table(name string) (*Table, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	t, ok := c.tables[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoTable, name)
	}
	return t, nil
}

// Servers returns the region server IDs.
func (c *Cluster) Servers() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return append([]string(nil), c.servers...)
}

// leastLoadedServer picks the server hosting the fewest regions.
func (c *Cluster) leastLoadedServer() string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	load := map[string]int{}
	for _, s := range c.servers {
		load[s] = 0
	}
	for _, t := range c.tables {
		for _, r := range t.Regions() {
			load[r.Server()]++
		}
	}
	best := c.servers[0]
	for _, s := range c.servers[1:] {
		if load[s] < load[best] {
			best = s
		}
	}
	return best
}

func (c *Cluster) noteSplit(table string) {
	mSplits.Inc()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.splits[table]++
}

// Splits reports how many region splits the table has undergone.
func (c *Cluster) Splits(table string) int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.splits[table]
}

// FailServer simulates the crash of one region server: every region it
// hosts loses its memstore (the crash), is reassigned by the master to the
// least-loaded surviving server, and replays its write-ahead log there —
// the HBase recovery path. The failed server leaves the cluster. Failing
// the last server is refused.
func (c *Cluster) FailServer(serverID string) error {
	c.mu.Lock()
	idx := -1
	for i, s := range c.servers {
		if s == serverID {
			idx = i
			break
		}
	}
	if idx < 0 {
		c.mu.Unlock()
		return fmt.Errorf("pool: no such server %q", serverID)
	}
	if len(c.servers) == 1 {
		c.mu.Unlock()
		return errors.New("pool: cannot fail the last region server")
	}
	c.servers = append(c.servers[:idx], c.servers[idx+1:]...)
	tables := make([]*Table, 0, len(c.tables))
	for _, t := range c.tables {
		tables = append(tables, t)
	}
	c.mu.Unlock()

	for _, t := range tables {
		for _, r := range t.Regions() {
			if r.Server() != serverID {
				continue
			}
			r.Crash()
			target := c.leastLoadedServer()
			r.mu.Lock()
			r.server = target
			r.mu.Unlock()
			r.Recover()
		}
	}
	return nil
}

// RegionDistribution returns server ID → hosted region count across all
// tables, the master's load-balancing view.
func (c *Cluster) RegionDistribution() map[string]int {
	c.mu.RLock()
	tables := make([]*Table, 0, len(c.tables))
	for _, t := range c.tables {
		tables = append(tables, t)
	}
	servers := append([]string(nil), c.servers...)
	c.mu.RUnlock()

	dist := map[string]int{}
	for _, s := range servers {
		dist[s] = 0
	}
	for _, t := range tables {
		for _, r := range t.Regions() {
			dist[r.Server()]++
		}
	}
	return dist
}

// Equal reports whether two values are byte-identical (test helper).
func Equal(a, b []byte) bool { return bytes.Equal(a, b) }
