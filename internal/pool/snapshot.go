package pool

import (
	"encoding/base64"
	"encoding/json"
	"fmt"
	"io"
)

// Snapshot support: a table's full live state can be exported to a stream
// and imported into a freshly created table — the operational escape hatch
// for the in-memory pool (backups, process restarts of cmd/draportal,
// migrations between clusters). The snapshot holds the latest live version
// of every cell; tombstoned and superseded versions are not carried.

// snapshotCell is the portable JSON form of one cell.
type snapshotCell struct {
	Row       string `json:"row"`
	Family    string `json:"family"`
	Qualifier string `json:"qualifier"`
	Value     string `json:"value"` // base64
	Version   int64  `json:"version"`
}

type snapshotHeader struct {
	Table string `json:"table"`
	Cells int    `json:"cells"`
}

// Export writes the table's live cells as a JSON snapshot.
func (t *Table) Export(w io.Writer) error {
	kvs := t.Scan(ScanOptions{})
	enc := json.NewEncoder(w)
	if err := enc.Encode(snapshotHeader{Table: t.name, Cells: len(kvs)}); err != nil {
		return fmt.Errorf("pool: writing snapshot header: %w", err)
	}
	for _, kv := range kvs {
		c := snapshotCell{
			Row:       kv.Row,
			Family:    kv.Family,
			Qualifier: kv.Qualifier,
			Value:     base64.StdEncoding.EncodeToString(kv.Value),
			Version:   kv.Version,
		}
		if err := enc.Encode(c); err != nil {
			return fmt.Errorf("pool: writing snapshot cell: %w", err)
		}
	}
	return nil
}

// Import loads a snapshot into the table. Imported cells receive fresh
// versions in snapshot order (the logical clock of the importing table
// owns versioning); existing cells with the same coordinates are
// overwritten. It returns the number of imported cells.
func (t *Table) Import(r io.Reader) (int, error) {
	dec := json.NewDecoder(r)
	var hdr snapshotHeader
	if err := dec.Decode(&hdr); err != nil {
		return 0, fmt.Errorf("pool: reading snapshot header: %w", err)
	}
	n := 0
	for dec.More() {
		var c snapshotCell
		if err := dec.Decode(&c); err != nil {
			return n, fmt.Errorf("pool: reading snapshot cell %d: %w", n, err)
		}
		raw, err := base64.StdEncoding.DecodeString(c.Value)
		if err != nil {
			return n, fmt.Errorf("pool: snapshot cell %d: bad value encoding: %w", n, err)
		}
		if err := t.Put(c.Row, c.Family, c.Qualifier, raw); err != nil {
			return n, err
		}
		n++
	}
	if n != hdr.Cells {
		return n, fmt.Errorf("pool: snapshot declared %d cells, read %d", hdr.Cells, n)
	}
	return n, nil
}
