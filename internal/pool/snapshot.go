package pool

import (
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"io"
)

// Snapshot support: a table's full live state can be exported to a stream
// and imported into a freshly created table — the operational escape hatch
// for the in-memory pool (backups, process restarts of cmd/draportal,
// migrations between clusters). The snapshot holds the latest live version
// of every cell; tombstoned and superseded versions are not carried.
//
// The same stream format doubles as the Store checkpoint format: a
// checkpoint is a snapshot whose header additionally records the WAL
// sequence watermark covered by it, so recovery knows which WAL suffix
// still has to be replayed (see store.go).

// ErrNotEmpty is returned by Import when the target table already holds
// live cells: importing over existing state would silently interleave two
// version histories.
var ErrNotEmpty = errors.New("pool: import target table is not empty")

// snapshotCell is the portable JSON form of one cell.
type snapshotCell struct {
	Row       string `json:"row"`
	Family    string `json:"family"`
	Qualifier string `json:"qualifier"`
	Value     string `json:"value"` // base64
	Version   int64  `json:"version"`
}

type snapshotHeader struct {
	Table string `json:"table"`
	Cells int    `json:"cells"`
	// WALSeq is the WAL watermark of a checkpoint: every mutation with
	// LSN <= WALSeq is contained in the snapshot. Zero (and absent) for
	// plain Export snapshots.
	WALSeq uint64 `json:"walSeq,omitempty"`
}

// SnapshotInfo is the fully decoded, validated content of one snapshot or
// checkpoint stream.
type SnapshotInfo struct {
	// Table is the name of the table the snapshot was taken from.
	Table string
	// WALSeq is the checkpoint's WAL watermark (0 for plain snapshots).
	WALSeq uint64
	// Cells are the live cells with their original versions, in the
	// stream's order (coordinate order for streams written by this
	// package).
	Cells []KeyValue
}

// writeSnapshot streams a snapshot header plus cells to w.
func writeSnapshot(w io.Writer, table string, walSeq uint64, kvs []KeyValue) error {
	enc := json.NewEncoder(w)
	if err := enc.Encode(snapshotHeader{Table: table, Cells: len(kvs), WALSeq: walSeq}); err != nil {
		return fmt.Errorf("pool: writing snapshot header: %w", err)
	}
	for _, kv := range kvs {
		c := snapshotCell{
			Row:       kv.Row,
			Family:    kv.Family,
			Qualifier: kv.Qualifier,
			Value:     base64.StdEncoding.EncodeToString(kv.Value),
			Version:   kv.Version,
		}
		if err := enc.Encode(c); err != nil {
			return fmt.Errorf("pool: writing snapshot cell: %w", err)
		}
	}
	return nil
}

// ReadSnapshot fully decodes and validates a snapshot (or checkpoint)
// stream: the header must parse, every cell must decode, and the declared
// cell count must match. It is the integrity gate recovery and `dractl
// snapshot` rely on — a checkpoint that fails ReadSnapshot is treated as
// corrupt wholesale.
func ReadSnapshot(r io.Reader) (*SnapshotInfo, error) {
	dec := json.NewDecoder(r)
	var hdr snapshotHeader
	if err := dec.Decode(&hdr); err != nil {
		return nil, fmt.Errorf("pool: reading snapshot header: %w", err)
	}
	info := &SnapshotInfo{Table: hdr.Table, WALSeq: hdr.WALSeq}
	for dec.More() {
		var c snapshotCell
		if err := dec.Decode(&c); err != nil {
			return nil, fmt.Errorf("pool: reading snapshot cell %d: %w", len(info.Cells), err)
		}
		raw, err := base64.StdEncoding.DecodeString(c.Value)
		if err != nil {
			return nil, fmt.Errorf("pool: snapshot cell %d: bad value encoding: %w", len(info.Cells), err)
		}
		if raw == nil {
			raw = []byte{}
		}
		info.Cells = append(info.Cells, KeyValue{
			Row: c.Row, Family: c.Family, Qualifier: c.Qualifier,
			Cell: Cell{Value: raw, Version: c.Version},
		})
	}
	if len(info.Cells) != hdr.Cells {
		return nil, fmt.Errorf("pool: snapshot declared %d cells, read %d", hdr.Cells, len(info.Cells))
	}
	return info, nil
}

// WriteSnapshot streams info in the snapshot/checkpoint format — the
// inverse of ReadSnapshot, used by the offline tooling (`dractl
// snapshot`) to re-serialize recovered state.
func WriteSnapshot(w io.Writer, info *SnapshotInfo) error {
	return writeSnapshot(w, info.Table, info.WALSeq, info.Cells)
}

// Export writes the table's live cells as a JSON snapshot.
func (t *Table) Export(w io.Writer) error {
	return writeSnapshot(w, t.name, 0, t.Scan(ScanOptions{}))
}

// Import loads a snapshot into an empty table. Imported cells receive
// fresh versions in snapshot order (the logical clock of the importing
// table owns versioning). Importing into a table that already holds live
// cells fails with ErrNotEmpty — restore into a freshly created table.
// It returns the number of imported cells.
func (t *Table) Import(r io.Reader) (int, error) {
	if len(t.Scan(ScanOptions{Limit: 1})) > 0 {
		return 0, fmt.Errorf("%w: %s", ErrNotEmpty, t.name)
	}
	info, err := ReadSnapshot(r)
	if err != nil {
		return 0, err
	}
	for n, kv := range info.Cells {
		if err := t.Put(kv.Row, kv.Family, kv.Qualifier, kv.Value); err != nil {
			return n, err
		}
	}
	return len(info.Cells), nil
}
