// Package xmlenc implements element-wise XML encryption over xmltree
// documents, mirroring the W3C XML-Encryption structure the paper's
// prototype used via Apache Santuario.
//
// Element-wise ("element-level") encryption is the paper's confidentiality
// mechanism: instead of encrypting a whole workflow document, each sensitive
// element is replaced, in place, by an EncryptedData element that only the
// intended readers can open. One element may be readable by several
// principals — the content is encrypted once under a fresh AES-256-GCM
// content-encryption key (CEK), and the CEK is wrapped separately to every
// recipient with RSA-OAEP:
//
//	<EncryptedData Id="enc-X">
//	  <EncryptionMethod Algorithm="aes-256-gcm"></EncryptionMethod>
//	  <KeyInfo>
//	    <EncryptedKey Recipient="amy@corp">
//	      <EncryptionMethod Algorithm="rsa-oaep-sha256"></EncryptionMethod>
//	      <CipherValue>…</CipherValue>
//	    </EncryptedKey>
//	  </KeyInfo>
//	  <CipherData><CipherValue>nonce‖ciphertext</CipherValue></CipherData>
//	</EncryptedData>
//
// The plaintext is the canonical serialization of the replaced element, so
// decryption reconstructs the exact subtree.
package xmlenc

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/rand"
	"crypto/rsa"
	"crypto/sha256"
	"encoding/base64"
	"errors"
	"fmt"
	"sort"

	"dra4wfms/internal/pki"
	"dra4wfms/internal/telemetry"
	"dra4wfms/internal/xmltree"
)

// Runtime telemetry: operation and plaintext-byte counters for the
// element-wise encryption hot path.
var (
	mEncryptOps   = telemetry.Default().Counter("xmlenc_encrypt_ops_total")
	mEncryptBytes = telemetry.Default().Counter("xmlenc_encrypt_bytes_total")
	mDecryptOps   = telemetry.Default().Counter("xmlenc_decrypt_ops_total")
	mDecryptBytes = telemetry.Default().Counter("xmlenc_decrypt_bytes_total")
)

// Algorithm identifiers recorded in encrypted elements.
const (
	DataAlg = "aes-256-gcm"
	KeyAlg  = "rsa-oaep-sha256"
)

// Element names of the encryption structure.
const (
	EncryptedDataElem = "EncryptedData"
	encryptedKeyElem  = "EncryptedKey"
	encMethodElem     = "EncryptionMethod"
	keyInfoElem       = "KeyInfo"
	cipherDataElem    = "CipherData"
	cipherValueElem   = "CipherValue"
)

// Recipient names one principal allowed to decrypt an element.
type Recipient struct {
	// ID is the principal identifier recorded on the EncryptedKey.
	ID string
	// Key is the principal's RSA public key used to wrap the CEK.
	Key *rsa.PublicKey
	// Label optionally carries the precomputed OAEP label bytes (the
	// recipient ID); nil derives them from ID. pki.ResolvedKey supplies
	// this so hot-path encryption avoids the per-wrap conversion.
	Label []byte
}

// label returns the OAEP label bytes for the recipient.
func (r Recipient) label() []byte {
	if r.Label != nil {
		return r.Label
	}
	return []byte(r.ID)
}

// ErrNotRecipient is returned by Decrypt when the supplied key pair's owner
// has no EncryptedKey entry.
var ErrNotRecipient = errors.New("xmlenc: principal is not a recipient of this element")

// ErrCorrupt is returned when ciphertext or key material fails to decode or
// authenticate. With AES-GCM any post-encryption modification of the cipher
// value is detected here.
var ErrCorrupt = errors.New("xmlenc: ciphertext corrupt or tampered")

// Encrypt encrypts element el for the given recipients and returns the
// EncryptedData element. el itself is not modified or detached; use
// EncryptInPlace to substitute within a document. The EncryptedData carries
// the given id in its Id attribute when non-empty (so signatures can
// reference it).
func Encrypt(el *xmltree.Node, id string, recipients ...Recipient) (*xmltree.Node, error) {
	if len(recipients) == 0 {
		return nil, errors.New("xmlenc: at least one recipient required")
	}
	plaintext := el.Canonical()

	cek := make([]byte, 32)
	if _, err := rand.Read(cek); err != nil {
		return nil, fmt.Errorf("xmlenc: generating CEK: %w", err)
	}
	block, err := aes.NewCipher(cek)
	if err != nil {
		return nil, fmt.Errorf("xmlenc: %w", err)
	}
	gcm, err := cipher.NewGCM(block)
	if err != nil {
		return nil, fmt.Errorf("xmlenc: %w", err)
	}
	nonce := make([]byte, gcm.NonceSize())
	if _, err := rand.Read(nonce); err != nil {
		return nil, fmt.Errorf("xmlenc: generating nonce: %w", err)
	}
	sealed := gcm.Seal(nil, nonce, plaintext, nil)
	cipherValue := append(nonce, sealed...)

	enc := xmltree.NewElement(EncryptedDataElem)
	if id != "" {
		enc.SetAttr("Id", id)
	}
	enc.Elem(encMethodElem, "").SetAttr("Algorithm", DataAlg)

	keyInfo := xmltree.NewElement(keyInfoElem)
	// Deterministic recipient order keeps document bytes reproducible.
	sorted := make([]Recipient, len(recipients))
	copy(sorted, recipients)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].ID < sorted[j].ID })
	seen := make(map[string]bool, len(sorted))
	for _, r := range sorted {
		if seen[r.ID] {
			continue
		}
		seen[r.ID] = true
		if r.Key == nil {
			return nil, fmt.Errorf("xmlenc: recipient %q has no public key", r.ID)
		}
		wrapped, err := rsa.EncryptOAEP(sha256.New(), rand.Reader, r.Key, cek, r.label())
		if err != nil {
			return nil, fmt.Errorf("xmlenc: wrapping CEK for %s: %w", r.ID, err)
		}
		ek := xmltree.NewElement(encryptedKeyElem)
		ek.SetAttr("Recipient", r.ID)
		ek.Elem(encMethodElem, "").SetAttr("Algorithm", KeyAlg)
		ek.Elem(cipherValueElem, base64.StdEncoding.EncodeToString(wrapped))
		keyInfo.AppendChild(ek)
	}
	enc.AppendChild(keyInfo)

	cd := xmltree.NewElement(cipherDataElem)
	cd.Elem(cipherValueElem, base64.StdEncoding.EncodeToString(cipherValue))
	enc.AppendChild(cd)

	// Zero the CEK copy we hold; recipients recover it via RSA only.
	for i := range cek {
		cek[i] = 0
	}
	mEncryptOps.Inc()
	mEncryptBytes.Add(int64(len(plaintext)))
	return enc, nil
}

// EncryptInPlace replaces child el of parent with its encrypted form and
// returns the EncryptedData element.
func EncryptInPlace(parent, el *xmltree.Node, id string, recipients ...Recipient) (*xmltree.Node, error) {
	enc, err := Encrypt(el, id, recipients...)
	if err != nil {
		return nil, err
	}
	if !parent.ReplaceChild(el, enc) {
		return nil, errors.New("xmlenc: element is not a child of parent")
	}
	return enc, nil
}

// IsEncrypted reports whether n is an EncryptedData element.
func IsEncrypted(n *xmltree.Node) bool {
	return n.IsElement() && n.Name == EncryptedDataElem
}

// Recipients lists the principal IDs that can decrypt enc, in document
// order (lexicographic, as written by Encrypt).
func Recipients(enc *xmltree.Node) []string {
	ki := enc.Child(keyInfoElem)
	if ki == nil {
		return nil
	}
	var ids []string
	for _, ek := range ki.ChildElements() {
		if ek.Name == encryptedKeyElem {
			ids = append(ids, ek.AttrDefault("Recipient", ""))
		}
	}
	return ids
}

// CanDecrypt reports whether the principal id is a recipient of enc.
func CanDecrypt(enc *xmltree.Node, id string) bool {
	for _, r := range Recipients(enc) {
		if r == id {
			return true
		}
	}
	return false
}

// Decrypt opens an EncryptedData element with the recipient's key pair and
// returns the reconstructed plaintext element.
func Decrypt(enc *xmltree.Node, key *pki.KeyPair) (*xmltree.Node, error) {
	if !IsEncrypted(enc) {
		return nil, errors.New("xmlenc: not an EncryptedData element")
	}
	if alg := algorithmOf(enc); alg != DataAlg {
		return nil, fmt.Errorf("xmlenc: unsupported data algorithm %q", alg)
	}
	ki := enc.Child(keyInfoElem)
	if ki == nil {
		return nil, errors.New("xmlenc: EncryptedData has no KeyInfo")
	}
	var ek *xmltree.Node
	for _, c := range ki.ChildElements() {
		if c.Name == encryptedKeyElem && c.AttrDefault("Recipient", "") == key.Owner {
			ek = c
			break
		}
	}
	if ek == nil {
		return nil, fmt.Errorf("%w: %s", ErrNotRecipient, key.Owner)
	}
	if alg := algorithmOf(ek); alg != KeyAlg {
		return nil, fmt.Errorf("xmlenc: unsupported key algorithm %q", alg)
	}
	wrapped, err := base64.StdEncoding.DecodeString(ek.ChildText(cipherValueElem))
	if err != nil {
		return nil, fmt.Errorf("%w: bad EncryptedKey encoding", ErrCorrupt)
	}
	cek, err := rsa.DecryptOAEP(sha256.New(), rand.Reader, key.Private, wrapped, []byte(key.Owner))
	if err != nil {
		return nil, fmt.Errorf("%w: CEK unwrap failed", ErrCorrupt)
	}

	cd := enc.Child(cipherDataElem)
	if cd == nil {
		return nil, errors.New("xmlenc: EncryptedData has no CipherData")
	}
	cipherValue, err := base64.StdEncoding.DecodeString(cd.ChildText(cipherValueElem))
	if err != nil {
		return nil, fmt.Errorf("%w: bad CipherValue encoding", ErrCorrupt)
	}
	block, err := aes.NewCipher(cek)
	if err != nil {
		return nil, fmt.Errorf("xmlenc: %w", err)
	}
	gcm, err := cipher.NewGCM(block)
	if err != nil {
		return nil, fmt.Errorf("xmlenc: %w", err)
	}
	if len(cipherValue) < gcm.NonceSize() {
		return nil, fmt.Errorf("%w: truncated cipher value", ErrCorrupt)
	}
	nonce, sealed := cipherValue[:gcm.NonceSize()], cipherValue[gcm.NonceSize():]
	plaintext, err := gcm.Open(nil, nonce, sealed, nil)
	if err != nil {
		return nil, fmt.Errorf("%w: authentication failed", ErrCorrupt)
	}
	el, err := xmltree.ParseBytes(plaintext)
	if err != nil {
		return nil, fmt.Errorf("xmlenc: decrypted payload is not well-formed XML: %w", err)
	}
	mDecryptOps.Inc()
	mDecryptBytes.Add(int64(len(plaintext)))
	return el, nil
}

// DecryptInPlace replaces EncryptedData child enc of parent with its
// decrypted plaintext element, returning the plaintext element.
func DecryptInPlace(parent, enc *xmltree.Node, key *pki.KeyPair) (*xmltree.Node, error) {
	el, err := Decrypt(enc, key)
	if err != nil {
		return nil, err
	}
	if !parent.ReplaceChild(enc, el) {
		return nil, errors.New("xmlenc: element is not a child of parent")
	}
	return el, nil
}

// DecryptVisible walks the subtree rooted at n and decrypts, in place,
// every EncryptedData element the key's owner is a recipient of. Elements
// for other readers are left intact. It returns the number of elements
// decrypted. This is what an AEA does to build the participant's view.
func DecryptVisible(n *xmltree.Node, key *pki.KeyPair) (int, error) {
	count := 0
	var rec func(parent *xmltree.Node) error
	rec = func(parent *xmltree.Node) error {
		for i := 0; i < len(parent.Children); i++ {
			c := parent.Children[i]
			if !c.IsElement() {
				continue
			}
			if IsEncrypted(c) && CanDecrypt(c, key.Owner) {
				el, err := Decrypt(c, key)
				if err != nil {
					return err
				}
				if !parent.ReplaceChild(c, el) {
					return errors.New("xmlenc: encrypted element detached during walk")
				}
				count++
				c = el
			}
			if err := rec(c); err != nil {
				return err
			}
		}
		return nil
	}
	if err := rec(n); err != nil {
		return 0, err
	}
	return count, nil
}

func algorithmOf(parent *xmltree.Node) string {
	if c := parent.Child(encMethodElem); c != nil {
		return c.AttrDefault("Algorithm", "")
	}
	return ""
}
