package xmlenc

import (
	"math/rand"
	"strings"
	"testing"

	"dra4wfms/internal/pki"
	"dra4wfms/internal/xmltree"
)

var cache = pki.NewKeyCache(1024)

func recipient(id string) Recipient {
	return Recipient{ID: id, Key: cache.MustGet(id).Public()}
}

func payload() *xmltree.Node {
	el := xmltree.NewElement("Result")
	el.SetAttr("Id", "res1")
	el.Elem("Amount", "1500")
	el.Elem("Comment", "approved & <signed>")
	return el
}

func TestEncryptDecryptRoundTrip(t *testing.T) {
	el := payload()
	enc, err := Encrypt(el, "enc1", recipient("amy"))
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := enc.Attr("Id"); got != "enc1" {
		t.Fatalf("Id = %q", got)
	}
	dec, err := Decrypt(enc, cache.MustGet("amy"))
	if err != nil {
		t.Fatal(err)
	}
	if !xmltree.Equal(el, dec) {
		t.Fatalf("round trip mismatch:\nwant %s\ngot  %s", el, dec)
	}
}

func TestMultiRecipient(t *testing.T) {
	el := payload()
	enc, err := Encrypt(el, "e", recipient("amy"), recipient("john"), recipient("mary"))
	if err != nil {
		t.Fatal(err)
	}
	got := Recipients(enc)
	if strings.Join(got, ",") != "amy,john,mary" {
		t.Fatalf("Recipients = %v (want sorted amy,john,mary)", got)
	}
	for _, id := range got {
		dec, err := Decrypt(enc, cache.MustGet(id))
		if err != nil {
			t.Fatalf("recipient %s: %v", id, err)
		}
		if !xmltree.Equal(el, dec) {
			t.Fatalf("recipient %s got wrong plaintext", id)
		}
	}
	if !CanDecrypt(enc, "john") || CanDecrypt(enc, "tony") {
		t.Fatal("CanDecrypt wrong")
	}
	if _, err := Decrypt(enc, cache.MustGet("tony")); err == nil {
		t.Fatal("non-recipient decrypted")
	}
}

func TestDuplicateRecipientsDeduplicated(t *testing.T) {
	enc, err := Encrypt(payload(), "e", recipient("amy"), recipient("amy"))
	if err != nil {
		t.Fatal(err)
	}
	if got := Recipients(enc); len(got) != 1 {
		t.Fatalf("Recipients = %v, want one entry", got)
	}
}

func TestEncryptValidation(t *testing.T) {
	if _, err := Encrypt(payload(), "e"); err == nil {
		t.Fatal("Encrypt with no recipients succeeded")
	}
	if _, err := Encrypt(payload(), "e", Recipient{ID: "x", Key: nil}); err == nil {
		t.Fatal("Encrypt with nil key succeeded")
	}
}

func TestWrappedKeyBoundToRecipientID(t *testing.T) {
	// The CEK is wrapped with the recipient ID as OAEP label; stealing the
	// EncryptedKey entry of another recipient (or relabeling your own) must
	// not allow decryption under a different identity.
	el := payload()
	amyKeys := cache.MustGet("amy")
	enc, _ := Encrypt(el, "e", Recipient{ID: "amy", Key: amyKeys.Public()})
	// Mallory relabels amy's entry with her own ID but has amy's... no —
	// realistic attack: the entry is re-labeled so that a holder of amy's
	// key under a different registered identity tries to use it.
	enc.Find("EncryptedKey").SetAttr("Recipient", "mallory")
	mallory := &pki.KeyPair{Owner: "mallory", Private: amyKeys.Private}
	if _, err := Decrypt(enc, mallory); err == nil {
		t.Fatal("relabeled EncryptedKey decrypted under wrong identity")
	}
}

func TestCiphertextTamperDetected(t *testing.T) {
	enc, _ := Encrypt(payload(), "e", recipient("amy"))
	cv := enc.Child("CipherData").Child("CipherValue")
	txt := cv.TextContent()
	// Flip one base64 character (avoiding padding).
	b := []byte(txt)
	if b[5] == 'A' {
		b[5] = 'B'
	} else {
		b[5] = 'A'
	}
	cv.SetText(string(b))
	if _, err := Decrypt(enc, cache.MustGet("amy")); err == nil {
		t.Fatal("tampered ciphertext decrypted (GCM should authenticate)")
	}
}

func TestTruncatedCipherValue(t *testing.T) {
	enc, _ := Encrypt(payload(), "e", recipient("amy"))
	enc.Child("CipherData").Child("CipherValue").SetText("QQ==") // 1 byte
	if _, err := Decrypt(enc, cache.MustGet("amy")); err == nil {
		t.Fatal("truncated ciphertext accepted")
	}
}

func TestAlgorithmDowngradeRejected(t *testing.T) {
	enc, _ := Encrypt(payload(), "e", recipient("amy"))
	e2 := enc.Clone()
	e2.Child("EncryptionMethod").SetAttr("Algorithm", "rot13")
	if _, err := Decrypt(e2, cache.MustGet("amy")); err == nil {
		t.Fatal("downgraded data algorithm accepted")
	}
	e3 := enc.Clone()
	e3.Find("EncryptedKey").Child("EncryptionMethod").SetAttr("Algorithm", "raw")
	if _, err := Decrypt(e3, cache.MustGet("amy")); err == nil {
		t.Fatal("downgraded key algorithm accepted")
	}
}

func TestMalformedStructures(t *testing.T) {
	if _, err := Decrypt(xmltree.NewElement("NotEncrypted"), cache.MustGet("amy")); err == nil {
		t.Fatal("non-EncryptedData accepted")
	}
	enc, _ := Encrypt(payload(), "e", recipient("amy"))
	noKI := enc.Clone()
	noKI.RemoveChild(noKI.Child("KeyInfo"))
	if _, err := Decrypt(noKI, cache.MustGet("amy")); err == nil {
		t.Fatal("missing KeyInfo accepted")
	}
	noCD := enc.Clone()
	noCD.RemoveChild(noCD.Child("CipherData"))
	if _, err := Decrypt(noCD, cache.MustGet("amy")); err == nil {
		t.Fatal("missing CipherData accepted")
	}
}

func TestEncryptInPlaceAndDecryptInPlace(t *testing.T) {
	doc := xmltree.NewElement("Doc")
	secret := doc.Elem("Secret", "s3cret")
	doc.Elem("Public", "open")

	enc, err := EncryptInPlace(doc, secret, "enc-s", recipient("amy"))
	if err != nil {
		t.Fatal(err)
	}
	if doc.Child("Secret") != nil {
		t.Fatal("plaintext still present after EncryptInPlace")
	}
	if doc.Child("EncryptedData") != enc {
		t.Fatal("EncryptedData not substituted in place")
	}
	if !strings.Contains(doc.String(), "open") {
		t.Fatal("sibling element disturbed")
	}

	dec, err := DecryptInPlace(doc, enc, cache.MustGet("amy"))
	if err != nil {
		t.Fatal(err)
	}
	if doc.Child("Secret") != dec || dec.TextContent() != "s3cret" {
		t.Fatal("DecryptInPlace did not restore the element")
	}

	// In-place on a non-child fails cleanly.
	orphan := xmltree.NewElement("X")
	if _, err := EncryptInPlace(doc, orphan, "e", recipient("amy")); err == nil {
		t.Fatal("EncryptInPlace on non-child succeeded")
	}
}

func TestDecryptVisible(t *testing.T) {
	// A document with three encrypted fields for different readers; amy
	// sees two of them, tony sees one.
	doc := xmltree.NewElement("Doc")
	x := doc.Elem("X", "for amy")
	y := doc.Elem("Y", "for amy and tony")
	z := doc.Elem("Z", "for tony")
	if _, err := EncryptInPlace(doc, x, "ex", recipient("amy")); err != nil {
		t.Fatal(err)
	}
	if _, err := EncryptInPlace(doc, y, "ey", recipient("amy"), recipient("tony")); err != nil {
		t.Fatal(err)
	}
	if _, err := EncryptInPlace(doc, z, "ez", recipient("tony")); err != nil {
		t.Fatal(err)
	}

	view := doc.Clone()
	n, err := DecryptVisible(view, cache.MustGet("amy"))
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("amy decrypted %d elements, want 2", n)
	}
	if view.Child("X") == nil || view.Child("Y") == nil {
		t.Fatal("amy's fields not restored")
	}
	if view.Child("Z") != nil {
		t.Fatal("tony's field leaked to amy")
	}
	if len(view.FindAll("EncryptedData")) != 1 {
		t.Fatal("expected exactly one remaining opaque element")
	}
}

func TestDecryptVisibleNested(t *testing.T) {
	// An encrypted element may itself contain encrypted elements for other
	// readers (policy nesting). Outer decrypt must recurse into plaintext.
	inner := xmltree.NewElement("Inner")
	inner.Elem("Deep", "deep secret")
	innerEnc, _ := Encrypt(inner, "ei", recipient("amy"))

	outer := xmltree.NewElement("Outer")
	outer.AppendChild(innerEnc)
	outerEnc, _ := Encrypt(outer, "eo", recipient("amy"))

	doc := xmltree.NewElement("Doc")
	doc.AppendChild(outerEnc)

	n, err := DecryptVisible(doc, cache.MustGet("amy"))
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("decrypted %d, want 2 (outer then nested inner)", n)
	}
	if doc.Find("Deep") == nil {
		t.Fatal("nested plaintext not reachable")
	}
}

func TestEncryptedDataSurvivesSerialization(t *testing.T) {
	doc := xmltree.NewElement("Doc")
	s := doc.Elem("Secret", "s")
	if _, err := EncryptInPlace(doc, s, "e", recipient("amy")); err != nil {
		t.Fatal(err)
	}
	back, err := xmltree.ParseBytes(doc.Canonical())
	if err != nil {
		t.Fatal(err)
	}
	dec, err := Decrypt(back.Child("EncryptedData"), cache.MustGet("amy"))
	if err != nil {
		t.Fatal(err)
	}
	if dec.TextContent() != "s" {
		t.Fatalf("plaintext after round trip = %q", dec.TextContent())
	}
}

func TestPropEncryptDecryptRandomTrees(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	names := []string{"F", "G", "H"}
	for i := 0; i < 25; i++ {
		el := xmltree.NewElement("P")
		depth := r.Intn(3) + 1
		var fill func(n *xmltree.Node, d int)
		fill = func(n *xmltree.Node, d int) {
			for j := 0; j < r.Intn(3)+1; j++ {
				c := n.Elem(names[r.Intn(len(names))], "")
				if d > 0 && r.Intn(2) == 0 {
					fill(c, d-1)
				} else {
					c.SetText(strings.Repeat("x<&>", r.Intn(4)))
				}
			}
		}
		fill(el, depth)
		el.Normalize()

		recips := []Recipient{recipient("amy")}
		if r.Intn(2) == 0 {
			recips = append(recips, recipient("tony"))
		}
		enc, err := Encrypt(el, "e", recips...)
		if err != nil {
			t.Fatal(err)
		}
		dec, err := Decrypt(enc, cache.MustGet("amy"))
		if err != nil {
			t.Fatal(err)
		}
		dec.Normalize()
		if !xmltree.Equal(el, dec) {
			t.Fatalf("iter %d: round trip mismatch", i)
		}
	}
}

func TestCiphertextNondeterministic(t *testing.T) {
	// Fresh CEK and nonce per call: identical plaintext must not produce
	// identical ciphertext (prevents equality inference by observers).
	el := payload()
	e1, _ := Encrypt(el, "e", recipient("amy"))
	e2, _ := Encrypt(el, "e", recipient("amy"))
	if e1.Child("CipherData").TextContent() == e2.Child("CipherData").TextContent() {
		t.Fatal("two encryptions produced identical ciphertext")
	}
}
