package wfgen

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"

	"dra4wfms/internal/document"
	"dra4wfms/internal/pki"
	"dra4wfms/internal/testenv"
	"dra4wfms/internal/tfc"
	"dra4wfms/internal/wfdef"
	"dra4wfms/internal/xmltree"
)

var now = time.Date(2026, 7, 6, 17, 0, 0, 0, time.UTC)

var participants = []string{"p1@gen", "p2@gen", "p3@gen"}

func newEnv(t *testing.T) (*testenv.Env, map[string]*pki.KeyPair) {
	t.Helper()
	env := testenv.New(0)
	ids := append([]string{"designer@gen"}, participants...)
	env.MustRegister(ids...)
	keys := map[string]*pki.KeyPair{}
	for _, id := range ids {
		keys[id] = env.KeyOf(id)
	}
	return env, keys
}

func opts(loops bool) Options {
	return Options{Participants: participants, MaxDepth: 2, MaxSegments: 2, MaxBranches: 3, AllowLoops: loops}
}

// TestPropGeneratedDefinitionsValid: every generated definition validates
// and survives an XML round trip.
func TestPropGeneratedDefinitionsValid(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		r := rand.New(rand.NewSource(seed))
		g, err := Generate(r, opts(seed%2 == 0))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := g.Def.Validate(); err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, g.Def)
		}
		back, err := xmltree.ParseBytes(g.Def.ToXML().Canonical())
		if err != nil {
			t.Fatalf("seed %d: reparse: %v", seed, err)
		}
		if back == nil {
			t.Fatal("nil reparse")
		}
	}
}

// TestPropRandomExecutionsVerify: random executions of random workflows
// terminate and yield fully verifiable documents with intact cascades.
func TestPropRandomExecutionsVerify(t *testing.T) {
	env, keys := newEnv(t)
	for seed := int64(100); seed < 120; seed++ {
		r := rand.New(rand.NewSource(seed))
		g := MustGenerate(r, opts(true))
		doc, err := document.New(g.Def, keys["designer@gen"], testenv.ProcessID(), now)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		ex := &Executor{Gen: g, Registry: env.Registry, Keys: keys}
		final, err := ex.Run(r, doc, now)
		if err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, g.Def)
		}
		nsigs, err := final.VerifyAll(env.Registry)
		if err != nil {
			t.Fatalf("seed %d: final doc does not verify: %v", seed, err)
		}
		if nsigs != len(final.FinalCERs())+1 {
			t.Fatalf("seed %d: %d signatures for %d CERs", seed, nsigs, len(final.FinalCERs()))
		}
		// The nonrepudiation scope of the last CER must reach CER(A0).
		cers := final.FinalCERs()
		last := cers[len(cers)-1]
		scope, err := final.NonrepudiationScope(last.ID())
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		foundRoot := false
		for _, id := range scope {
			if id == "cer-A0" {
				foundRoot = true
			}
		}
		if !foundRoot {
			t.Fatalf("seed %d: scope of %s does not reach the designer: %v", seed, last.ID(), scope)
		}
	}
}

// TestPropRandomTamperDetected: after a random execution, mutating any
// text node inside any signed region breaks verification.
func TestPropRandomTamperDetected(t *testing.T) {
	env, keys := newEnv(t)
	r := rand.New(rand.NewSource(7))
	g := MustGenerate(r, opts(false))
	doc, err := document.New(g.Def, keys["designer@gen"], testenv.ProcessID(), now)
	if err != nil {
		t.Fatal(err)
	}
	ex := &Executor{Gen: g, Registry: env.Registry, Keys: keys}
	final, err := ex.Run(r, doc, now)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := final.VerifyAll(env.Registry); err != nil {
		t.Fatal(err)
	}

	// Collect every text node with its parent, then mutate each in a fresh
	// clone. Text inside signed regions must break verification; the only
	// unsigned text in the whole document lives inside the Signature
	// elements themselves (KeyName, algorithm labels) — mutating those
	// must ALSO fail verification (wrong key / bad encoding).
	type site struct{ path []int }
	var sites []site
	var walk func(n *xmltree.Node, path []int)
	walk = func(n *xmltree.Node, path []int) {
		for i, c := range n.Children {
			p := append(append([]int{}, path...), i)
			if c.IsText() {
				sites = append(sites, site{path: p})
			} else {
				walk(c, p)
			}
		}
	}
	walk(final.Root, nil)
	if len(sites) < 10 {
		t.Fatalf("suspiciously few text nodes: %d", len(sites))
	}
	for _, s := range sites {
		clone := final.Clone()
		n := clone.Root
		for _, idx := range s.path[:len(s.path)-1] {
			n = n.Children[idx]
		}
		target := n.Children[s.path[len(s.path)-1]]
		target.Text = target.Text + "x"
		if _, err := clone.VerifyAll(env.Registry); err == nil {
			t.Fatalf("mutating text under <%s> went undetected", n.Name)
		}
	}
}

func TestGenerateValidation(t *testing.T) {
	if _, err := Generate(rand.New(rand.NewSource(1)), Options{}); err == nil {
		t.Fatal("no participants accepted")
	}
	if _, err := Generate(rand.New(rand.NewSource(1)),
		Options{Participants: []string{"solo@gen"}, Leaks: 1}); err == nil {
		t.Fatal("leak seeding with a single participant accepted")
	}
}

// TestPropSeededLeaksDetected is the negative corpus for the
// information-flow lint: every definition generated with Options.Leaks
// still validates, and the IFC pass reports EACH seeded leak as an
// error-severity finding that names the concealed variable, the excluded
// participant, and a concrete counterexample path through the leaking
// activity.
func TestPropSeededLeaksDetected(t *testing.T) {
	for seed := int64(400); seed < 440; seed++ {
		r := rand.New(rand.NewSource(seed))
		o := opts(seed%2 == 0)
		o.Leaks = 1 + int(seed%3)
		g, err := Generate(r, o)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if len(g.Leaks) != o.Leaks {
			t.Fatalf("seed %d: seeded %d leaks, recorded %d", seed, o.Leaks, len(g.Leaks))
		}
		if err := g.Def.Validate(); err != nil {
			t.Fatalf("seed %d: leaky definition must still validate: %v\n%s", seed, err, g.Def)
		}
		findings := wfdef.Lint(g.Def)
		for _, leak := range g.Leaks {
			found := false
			for _, f := range findings {
				if f.Rule != wfdef.RuleIFCFlow || f.Severity != wfdef.SevError {
					continue
				}
				if strings.Contains(f.Message, fmt.Sprintf("%q", leak.Variable)) &&
					strings.Contains(f.Message, leak.Participant) &&
					strings.Contains(f.Message, leak.Reader) &&
					strings.Contains(f.Message, "→") {
					found = true
					break
				}
			}
			if !found {
				t.Errorf("seed %d: seeded leak of %q to %s at %s not reported\nfindings: %v",
					seed, leak.Variable, leak.Participant, leak.Reader, findings)
			}
		}
	}
}

func TestExecutorTerminatesLoops(t *testing.T) {
	env, keys := newEnv(t)
	// Seeds chosen arbitrarily; with AllowLoops the executor must always
	// terminate thanks to LoopBudget.
	for seed := int64(200); seed < 210; seed++ {
		r := rand.New(rand.NewSource(seed))
		g := MustGenerate(r, Options{Participants: participants, MaxDepth: 2, MaxSegments: 2, AllowLoops: true})
		doc, err := document.New(g.Def, keys["designer@gen"], testenv.ProcessID(), now)
		if err != nil {
			t.Fatal(err)
		}
		ex := &Executor{Gen: g, Registry: env.Registry, Keys: keys, LoopBudget: 1}
		if _, err := ex.Run(r, doc, now); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestGeneratedShapesVary(t *testing.T) {
	// Sanity: across seeds the generator produces AND, XOR and loop
	// structures, not just chains.
	sawAND, sawXOR, sawLoop := false, false, false
	for seed := int64(0); seed < 80; seed++ {
		g := MustGenerate(rand.New(rand.NewSource(seed)), opts(true))
		for _, a := range g.Def.Activities {
			if a.Split == "AND" {
				sawAND = true
			}
			if a.Split == "XOR" {
				sawXOR = true
			}
		}
		if len(g.LoopVars) > 0 {
			sawLoop = true
		}
	}
	if !sawAND || !sawXOR || !sawLoop {
		t.Fatalf("generator variety: AND=%v XOR=%v loop=%v", sawAND, sawXOR, sawLoop)
	}
}

// TestPropRandomAdvancedExecutionsVerify: random workflows through the
// TFC server — intermediate+final CER pairs, timestamps, full cascade.
func TestPropRandomAdvancedExecutionsVerify(t *testing.T) {
	env := testenv.New(0)
	ids := append([]string{"designer@gen", "tfc@gen"}, participants...)
	env.MustRegister(ids...)
	keys := map[string]*pki.KeyPair{}
	for _, id := range ids {
		keys[id] = env.KeyOf(id)
	}
	server := tfc.New(env.KeyOf("tfc@gen"), env.Registry, time.Now)
	for seed := int64(300); seed < 312; seed++ {
		r := rand.New(rand.NewSource(seed))
		o := opts(true)
		o.TFC = "tfc@gen"
		g := MustGenerate(r, o)
		doc, err := document.New(g.Def, keys["designer@gen"], testenv.ProcessID(), now)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		ex := &Executor{Gen: g, Registry: env.Registry, Keys: keys}
		final, err := ex.RunAdvanced(r, doc, server)
		if err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, g.Def)
		}
		if _, err := final.VerifyAll(env.Registry); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		finals := final.FinalCERs()
		if len(final.CERs()) != 2*len(finals) {
			t.Fatalf("seed %d: %d CERs for %d finals (want pairs)", seed, len(final.CERs()), len(finals))
		}
		for _, c := range finals {
			if _, ok := c.Timestamp(); !ok {
				t.Fatalf("seed %d: final CER %s without timestamp", seed, c.ID())
			}
			if c.Signer() != "tfc@gen" {
				t.Fatalf("seed %d: final CER %s signed by %q", seed, c.ID(), c.Signer())
			}
		}
	}
}
