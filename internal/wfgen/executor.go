package wfgen

import (
	"fmt"
	"math/rand"
	"time"

	"dra4wfms/internal/aea"
	"dra4wfms/internal/document"
	"dra4wfms/internal/pki"
	"dra4wfms/internal/tfc"
	"dra4wfms/internal/wfdef"
)

// Executor drives a generated workflow to completion under the basic
// operational model, choosing random decision values (with loop exits
// forced after LoopBudget iterations so every run terminates).
type Executor struct {
	// Gen is the generated workflow.
	Gen *Generated
	// Registry resolves participant keys.
	Registry *pki.Registry
	// Keys maps participant ID to key pair.
	Keys map[string]*pki.KeyPair
	// LoopBudget bounds how often each loop variable may come up true
	// (default 2).
	LoopBudget int
	// MaxSteps aborts runaway executions (default 500).
	MaxSteps int

	loopUses map[string]int
}

// Run executes the instance starting from the given initial document and
// returns the final document. Every routed branch document is merged into
// a single logical inbox, mirroring what a portal does.
func (e *Executor) Run(r *rand.Rand, initial *document.Document, now time.Time) (*document.Document, error) {
	if e.LoopBudget <= 0 {
		e.LoopBudget = 2
	}
	if e.MaxSteps <= 0 {
		e.MaxSteps = 500
	}
	e.loopUses = map[string]int{}

	agents := map[string]*aea.AEA{}
	def := e.Gen.Def
	current := initial
	for steps := 0; ; steps++ {
		if steps > e.MaxSteps {
			return nil, fmt.Errorf("wfgen: execution exceeded %d steps", e.MaxSteps)
		}
		enabled, completed, err := document.Enabled(def, current)
		if err != nil {
			return nil, err
		}
		if completed {
			return current, nil
		}
		if len(enabled) == 0 {
			return nil, fmt.Errorf("wfgen: stuck (no enabled activity, not completed):\n%s", current.Summary())
		}
		act := enabled[r.Intn(len(enabled))]
		participant := def.Activity(act).Participant
		agent, ok := agents[participant]
		if !ok {
			agent = aea.New(e.Keys[participant], e.Registry)
			agents[participant] = agent
		}
		inputs := e.inputsFor(r, def.Activity(act))
		out, err := agent.Execute(current, act, inputs, now)
		if err != nil {
			return nil, fmt.Errorf("wfgen: executing %s: %w", act, err)
		}
		// Merge all routed branches back into one logical document (the
		// portal's view); out.Doc already contains everything.
		current = out.Doc
	}
}

// RunAdvanced executes the instance under the advanced operational model:
// every step goes AEA → TFC server → next. The generated definition must
// declare the server's principal as its TFC.
func (e *Executor) RunAdvanced(r *rand.Rand, initial *document.Document, server *tfc.Server) (*document.Document, error) {
	if e.LoopBudget <= 0 {
		e.LoopBudget = 2
	}
	if e.MaxSteps <= 0 {
		e.MaxSteps = 500
	}
	e.loopUses = map[string]int{}

	agents := map[string]*aea.AEA{}
	def := e.Gen.Def
	current := initial
	for steps := 0; ; steps++ {
		if steps > e.MaxSteps {
			return nil, fmt.Errorf("wfgen: execution exceeded %d steps", e.MaxSteps)
		}
		enabled, completed, err := document.Enabled(def, current)
		if err != nil {
			return nil, err
		}
		if completed {
			return current, nil
		}
		if len(enabled) == 0 {
			return nil, fmt.Errorf("wfgen: stuck (no enabled activity, not completed):\n%s", current.Summary())
		}
		act := enabled[r.Intn(len(enabled))]
		participant := def.Activity(act).Participant
		agent, ok := agents[participant]
		if !ok {
			agent = aea.New(e.Keys[participant], e.Registry)
			agents[participant] = agent
		}
		inputs := e.inputsFor(r, def.Activity(act))
		interm, err := agent.ExecuteToTFC(current, act, inputs)
		if err != nil {
			return nil, fmt.Errorf("wfgen: executing %s to TFC: %w", act, err)
		}
		out, err := server.Process(interm)
		if err != nil {
			return nil, fmt.Errorf("wfgen: TFC after %s: %w", act, err)
		}
		current = out.Doc
	}
}

func (e *Executor) inputsFor(r *rand.Rand, act *wfdef.Activity) aea.Inputs {
	in := aea.Inputs{}
	for _, resp := range act.Responses {
		if _, isDecision := e.Gen.DecisionVars[resp.Variable]; isDecision {
			v := "false"
			if e.Gen.LoopVars[resp.Variable] {
				if e.loopUses[resp.Variable] < e.LoopBudget && r.Intn(2) == 0 {
					v = "true"
					e.loopUses[resp.Variable]++
				}
			} else if r.Intn(2) == 0 {
				v = "true"
			}
			in[resp.Variable] = v
			continue
		}
		in[resp.Variable] = fmt.Sprintf("value-%d", r.Int31())
	}
	return in
}
