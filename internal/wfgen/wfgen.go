// Package wfgen generates random — but always structurally valid —
// workflow definitions and drives random executions of them. It exists for
// property-based testing across the whole stack: any generated definition
// must validate, any random execution must terminate with a fully
// verifiable document, and any tampering with that document must be
// detected.
//
// Generation is block-structured, which guarantees well-formed graphs by
// construction: a block is a sequence of segments, where each segment is a
// single activity, an AND-split/join of sub-blocks, an XOR-split/join of
// sub-blocks (guarded by a boolean variable produced just before the
// split), or a loop (a block followed by a decision activity with a
// bounded back edge).
package wfgen

import (
	"fmt"
	"math/rand"

	"dra4wfms/internal/wfdef"
)

// Options bound the generator.
type Options struct {
	// Participants are the candidate executors (at least one required).
	Participants []string
	// MaxDepth bounds block nesting (default 3).
	MaxDepth int
	// MaxSegments bounds segments per block (default 3).
	MaxSegments int
	// MaxBranches bounds AND/XOR fan-out (default 3).
	MaxBranches int
	// AllowLoops enables loop segments.
	AllowLoops bool
	// TFC, when non-empty, declares a TFC server so the workflow can run
	// under the advanced operational model.
	TFC string
	// Leaks seeds that many deliberate concealment leaks: a producer
	// activity emits a secret readable by everyone EXCEPT one participant,
	// and a following activity displays the secret to exactly that
	// participant. The information-flow lint must report each one with a
	// counterexample path — the adversarial corpus for the IFC pass.
	// Requires at least two participants.
	Leaks int
}

func (o *Options) defaults() {
	if o.MaxDepth <= 0 {
		o.MaxDepth = 3
	}
	if o.MaxSegments <= 0 {
		o.MaxSegments = 3
	}
	if o.MaxBranches < 2 {
		o.MaxBranches = 3
	}
}

// Generated couples a definition with the knowledge a random executor
// needs: which variables are loop/branch decisions.
type Generated struct {
	// Def is the generated, validated definition.
	Def *wfdef.Definition
	// DecisionVars maps boolean decision variables to the activity that
	// produces them.
	DecisionVars map[string]string
	// LoopVars is the subset of DecisionVars guarding loop back edges;
	// executors should eventually set them "false" to terminate.
	LoopVars map[string]bool
	// Leaks records the concealment leaks seeded by Options.Leaks, so a
	// property test can assert the IFC lint finds every one.
	Leaks []SeededLeak
	// Activities counts generated activities.
	Activities int
}

// SeededLeak is one deliberately planted information-flow violation.
type SeededLeak struct {
	// Variable is the concealed variable.
	Variable string
	// Producer is the activity producing it.
	Producer string
	// Reader is the activity that wrongly displays it.
	Reader string
	// Participant executes Reader and is excluded from the variable's
	// reader set.
	Participant string
}

type gen struct {
	r    *rand.Rand
	opts Options
	b    *wfdef.Builder
	seq  int
	out  *Generated
}

// Generate builds a random definition using r for all randomness.
func Generate(r *rand.Rand, opts Options) (*Generated, error) {
	opts.defaults()
	if len(opts.Participants) == 0 {
		return nil, fmt.Errorf("wfgen: no participants")
	}
	if opts.Leaks > 0 && len(opts.Participants) < 2 {
		return nil, fmt.Errorf("wfgen: seeding leaks needs at least two participants (one reader, one excluded)")
	}
	g := &gen{
		r:    r,
		opts: opts,
		b:    wfdef.NewBuilder(fmt.Sprintf("gen-%d", r.Int63()), "designer@gen"),
		out:  &Generated{DecisionVars: map[string]string{}, LoopVars: map[string]bool{}},
	}
	entry, exit := g.block(opts.MaxDepth)
	for i := 0; i < opts.Leaks; i++ {
		exit = g.seedLeak(exit)
	}
	g.b = g.b.Start(entry).End(exit)
	g.b = g.b.DefaultReaders(opts.Participants...)
	if opts.TFC != "" {
		g.b = g.b.TFC(opts.TFC)
	}
	def, err := g.b.Build()
	if err != nil {
		return nil, fmt.Errorf("wfgen: generated definition invalid: %w", err)
	}
	g.out.Def = def
	g.out.Activities = len(def.Activities)
	return g.out, nil
}

// MustGenerate panics on generation failure (tests).
func MustGenerate(r *rand.Rand, opts Options) *Generated {
	g, err := Generate(r, opts)
	if err != nil {
		panic(err)
	}
	return g
}

func (g *gen) participant() string {
	return g.opts.Participants[g.r.Intn(len(g.opts.Participants))]
}

// activity emits a plain activity producing one string response.
func (g *gen) activity() string {
	g.seq++
	id := fmt.Sprintf("N%03d", g.seq)
	g.b = g.b.Activity(id, "generated "+id, g.participant()).
		Response(fmt.Sprintf("v%03d", g.seq), "string", true).Done()
	return id
}

// decisionActivity emits an activity additionally producing a boolean
// decision variable; returns (activityID, variable).
func (g *gen) decisionActivity() (string, string) {
	g.seq++
	id := fmt.Sprintf("N%03d", g.seq)
	v := fmt.Sprintf("d%03d", g.seq)
	g.b = g.b.Activity(id, "decision "+id, g.participant()).
		Response(v, "bool", true).Done()
	g.out.DecisionVars[v] = id
	return id, v
}

// block emits a sequence of segments and returns its entry and exit
// activity IDs.
func (g *gen) block(depth int) (entry, exit string) {
	n := 1 + g.r.Intn(g.opts.MaxSegments)
	var first, last string
	for i := 0; i < n; i++ {
		e, x := g.segment(depth)
		if first == "" {
			first = e
		} else {
			g.b = g.b.Edge(last, e)
		}
		last = x
	}
	return first, last
}

func (g *gen) segment(depth int) (entry, exit string) {
	choices := []string{"activity"}
	if depth > 0 {
		choices = append(choices, "and", "xor")
		if g.opts.AllowLoops {
			choices = append(choices, "loop")
		}
	}
	switch choices[g.r.Intn(len(choices))] {
	case "and":
		return g.andBlock(depth - 1)
	case "xor":
		return g.xorBlock(depth - 1)
	case "loop":
		return g.loopBlock(depth - 1)
	default:
		id := g.activity()
		return id, id
	}
}

// setSplit / setJoin adjust the kinds of already-emitted activities.
func (g *gen) setSplit(id string, k wfdef.SplitKind) {
	g.patch(id, func(a *wfdef.Activity) { a.Split = k })
}
func (g *gen) setJoin(id string, k wfdef.JoinKind) {
	g.patch(id, func(a *wfdef.Activity) { a.Join = k })
}

// patch relies on Builder internals being value-backed; re-expose via a
// dedicated Builder hook instead.
func (g *gen) patch(id string, fn func(*wfdef.Activity)) {
	g.b.PatchActivity(id, fn)
}

// andBlock: split activity → k parallel sub-blocks → join activity.
func (g *gen) andBlock(depth int) (string, string) {
	split := g.activity()
	join := g.activity()
	k := 2 + g.r.Intn(g.opts.MaxBranches-1)
	g.setSplit(split, wfdef.SplitAND)
	g.setJoin(join, wfdef.JoinAND)
	for i := 0; i < k; i++ {
		e, x := g.block(depth)
		g.b = g.b.Edge(split, e)
		g.b = g.b.Edge(x, join)
	}
	return split, join
}

// xorBlock: decision activity → one of k guarded sub-blocks → XOR join.
func (g *gen) xorBlock(depth int) (string, string) {
	split, v := g.decisionActivity()
	join := g.activity()
	g.setSplit(split, wfdef.SplitXOR)
	g.setJoin(join, wfdef.JoinXOR)
	// Two branches: condition true / default.
	eTrue, xTrue := g.block(depth)
	g.b = g.b.EdgeIf(split, eTrue, v+" == true")
	eFalse, xFalse := g.block(depth)
	g.b = g.b.Edge(split, eFalse) // default branch
	g.b = g.b.Edge(xTrue, join)
	g.b = g.b.Edge(xFalse, join)
	return split, join
}

// seedLeak appends a producer/leaker pair after exit: the producer emits
// a secret whose readers are every participant except one, and the
// leaker — executed by exactly that excluded participant — displays it.
// Returns the new exit (the leaker).
func (g *gen) seedLeak(exit string) string {
	excluded := g.participant()
	var readers []string
	for _, p := range g.opts.Participants {
		if p != excluded {
			readers = append(readers, p)
		}
	}
	producer := readers[g.r.Intn(len(readers))]

	g.seq++
	pid := fmt.Sprintf("S%03d", g.seq)
	secret := fmt.Sprintf("s%03d", g.seq)
	g.b = g.b.Activity(pid, "secret "+pid, producer).
		Response(secret, "string", true).Done()

	g.seq++
	lid := fmt.Sprintf("L%03d", g.seq)
	g.b = g.b.Activity(lid, "leak "+lid, excluded).
		Request(secret).
		Response(fmt.Sprintf("v%03d", g.seq), "string", true).Done()

	g.b = g.b.Edge(exit, pid).Edge(pid, lid).ReadRule(secret, readers...)
	g.out.Leaks = append(g.out.Leaks, SeededLeak{
		Variable: secret, Producer: pid, Reader: lid, Participant: excluded,
	})
	return lid
}

// loopBlock: body block → decision activity; "true" loops back to the
// body entry, default exits.
func (g *gen) loopBlock(depth int) (string, string) {
	entry, bodyExit := g.block(depth)
	dec, v := g.decisionActivity()
	exit := g.activity()
	g.b = g.b.Edge(bodyExit, dec)
	g.setSplit(dec, wfdef.SplitXOR)
	g.setJoin(entry, wfdef.JoinXOR)
	g.setJoin(exit, wfdef.JoinNone)
	g.b = g.b.EdgeIf(dec, entry, v+" == true")
	g.b = g.b.Edge(dec, exit) // default: leave the loop
	g.out.LoopVars[v] = true
	return entry, exit
}
