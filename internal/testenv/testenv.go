// Package testenv builds ready-made trust environments for tests,
// benchmarks and examples: a certification authority, a registry, and
// cached key pairs for the principals of the paper's workflows. RSA key
// generation dominates setup cost, so keys are memoized per (bits, owner)
// process-wide.
package testenv

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"sync"
	"time"

	"dra4wfms/internal/pki"
	"dra4wfms/internal/wfdef"
)

var (
	cachesMu sync.Mutex
	caches   = map[int]*pki.KeyCache{}
)

func cacheFor(bits int) *pki.KeyCache {
	cachesMu.Lock()
	defer cachesMu.Unlock()
	c, ok := caches[bits]
	if !ok {
		c = pki.NewKeyCache(bits)
		caches[bits] = c
	}
	return c
}

// Env is a populated trust environment.
type Env struct {
	// CA is the single trust anchor.
	CA *pki.CA
	// Registry trusts CA and holds certificates for every registered
	// principal.
	Registry *pki.Registry
	// Bits is the RSA modulus size of all keys in this environment.
	Bits int
	// Now is the reference instant used for certificate validity.
	Now time.Time

	cache *pki.KeyCache
}

// New creates an environment with keys of the given RSA size (<=0 selects
// 1024, adequate for tests; benchmarks use 2048 to mirror deployments).
func New(bits int) *Env {
	if bits <= 0 {
		bits = 1024
	}
	cache := cacheFor(bits)
	ca := &pki.CA{
		Identity: pki.Identity{ID: "ca@root", DisplayName: "Root CA"},
		Keys:     cache.MustGet("ca@root"),
	}
	return &Env{
		CA:       ca,
		Registry: pki.NewRegistry(ca),
		Bits:     bits,
		Now:      time.Date(2026, 7, 6, 8, 0, 0, 0, time.UTC),
		cache:    cache,
	}
}

// KeyOf returns the (cached) key pair of a principal; the principal need
// not be registered.
func (e *Env) KeyOf(id string) *pki.KeyPair { return e.cache.MustGet(id) }

// Register issues and registers a certificate for each principal ID,
// deriving the organization from the part after '@'.
func (e *Env) Register(ids ...string) error {
	for _, id := range ids {
		org := ""
		for i := 0; i < len(id); i++ {
			if id[i] == '@' {
				org = id[i+1:]
				break
			}
		}
		cert, err := e.CA.IssueKeys(pki.Identity{ID: id, DisplayName: id, Org: org},
			e.KeyOf(id), e.Now, 24*365*time.Hour)
		if err != nil {
			return fmt.Errorf("testenv: issuing for %s: %w", id, err)
		}
		if err := e.Registry.Register(cert, e.Now); err != nil {
			return fmt.Errorf("testenv: registering %s: %w", id, err)
		}
	}
	return nil
}

// MustRegister is Register that panics on failure.
func (e *Env) MustRegister(ids ...string) {
	if err := e.Register(ids...); err != nil {
		panic(err)
	}
}

// Fig9 returns an environment with the designer, the TFC server and all
// Figure 9 participants registered.
func Fig9(bits int) *Env {
	e := New(bits)
	ids := []string{"designer@acme", "tfc@cloud"}
	for _, p := range wfdef.Fig9Participants {
		ids = append(ids, p)
	}
	e.MustRegister(ids...)
	return e
}

// Fig4 returns an environment with the designer, the TFC server and all
// Figure 4 participants registered.
func Fig4(bits int) *Env {
	e := New(bits)
	p := wfdef.Fig4Participants
	e.MustRegister("designer@p0", "tfc@cloud", p.Peter, p.Tony, p.Amy, p.John, p.Mary)
	return e
}

// ProcessID returns a fresh unique process instance id.
func ProcessID() string {
	var b [12]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(err)
	}
	return "proc-" + hex.EncodeToString(b[:])
}
