package wfdef

import (
	"reflect"
	"strings"
	"testing"
)

// leakyDisplay builds a definition where "salary" is concealed from the
// clerk but the final activity displays it to the clerk anyway — the
// explicit display flow with the chain A1 → A2 → A3.
func leakyDisplay() *Definition {
	return &Definition{
		Name:     "leaky-display",
		Designer: "designer@x",
		Activities: []Activity{
			{ID: "A1", Participant: "hr@x", Responses: []Response{{Variable: "salary"}}},
			{ID: "A2", Participant: "manager@x",
				Requests:  []Request{{Variable: "salary"}},
				Responses: []Response{{Variable: "approved"}}},
			{ID: "A3", Participant: "clerk@x", Requests: []Request{{Variable: "salary"}}},
		},
		Transitions: []Transition{
			{ID: "t0", From: StartID, To: "A1"},
			{ID: "t1", From: "A1", To: "A2"},
			{ID: "t2", From: "A2", To: "A3"},
			{ID: "t3", From: "A3", To: EndID},
		},
		Policy: SecurityPolicy{
			DefaultReaders: []string{"hr@x", "manager@x", "clerk@x"},
			Rules:          []ReadRule{{Variable: "salary", Readers: []string{"hr@x", "manager@x"}}},
		},
	}
}

func findRule(fs []Finding, rule string) []Finding {
	var out []Finding
	for _, f := range fs {
		if f.Rule == rule {
			out = append(out, f)
		}
	}
	return out
}

func TestIFCDisplayLeakWithPath(t *testing.T) {
	fs := Lint(leakyDisplay())
	flows := findRule(fs, RuleIFCFlow)
	if len(flows) != 1 {
		t.Fatalf("ifc-flow findings = %d, want 1\nall: %v", len(flows), fs)
	}
	f := flows[0]
	if f.Severity != SevError {
		t.Errorf("ifc-flow severity = %s, want error", f.Severity)
	}
	for _, want := range []string{"salary", "clerk@x", "A1 (produces salary) → A2 → A3"} {
		if !strings.Contains(f.Message, want) {
			t.Errorf("ifc-flow message %q misses %q", f.Message, want)
		}
	}
}

// leakyCondition routes on a variable its evaluator cannot read and whose
// branch outcome an unauthorized downstream participant can observe.
func leakyCondition() *Definition {
	return &Definition{
		Name:     "leaky-condition",
		Designer: "designer@x",
		Activities: []Activity{
			{ID: "A1", Participant: "alice@x", Responses: []Response{{Variable: "score"}}},
			{ID: "A2", Participant: "bob@x", Split: SplitXOR,
				Requests:  []Request{},
				Responses: []Response{{Variable: "routed"}}},
			{ID: "HI", Participant: "eve@x"},
			{ID: "LO", Participant: "lowell@x"},
			{ID: "A5", Participant: "alice@x", Join: JoinXOR},
		},
		Transitions: []Transition{
			{ID: "t0", From: StartID, To: "A1"},
			{ID: "t1", From: "A1", To: "A2"},
			{ID: "t2", From: "A2", To: "HI", Condition: "score > 700"},
			{ID: "t3", From: "A2", To: "LO"},
			{ID: "t4", From: "HI", To: "A5"},
			{ID: "t5", From: "LO", To: "A5"},
			{ID: "t6", From: "A5", To: EndID},
		},
		Policy: SecurityPolicy{
			DefaultReaders: []string{"alice@x", "bob@x", "eve@x", "lowell@x"},
			Rules:          []ReadRule{{Variable: "score", Readers: []string{"alice@x"}}},
		},
	}
}

func TestIFCConditionAndImplicitLeaks(t *testing.T) {
	fs := Lint(leakyCondition())

	flows := findRule(fs, RuleIFCFlow)
	if len(flows) != 1 {
		t.Fatalf("ifc-flow findings = %d, want 1 (bob evaluates t2)\nall: %v", len(flows), fs)
	}
	for _, want := range []string{"score", "bob@x", "transition t2", "A1 (produces score) → A2"} {
		if !strings.Contains(flows[0].Message, want) {
			t.Errorf("ifc-flow message %q misses %q", flows[0].Message, want)
		}
	}

	// eve and lowell each appear on exactly one branch and neither reads
	// "score": both observe the guard outcome. alice (A5, both branches and
	// a reader) must not be flagged.
	implicit := findRule(fs, RuleIFCImplicit)
	var who []string
	for _, f := range implicit {
		if f.Severity != SevWarning {
			t.Errorf("ifc-implicit-flow severity = %s, want warning", f.Severity)
		}
		if !strings.Contains(f.Message, "A2 (branches on score)") {
			t.Errorf("implicit message %q misses the split path prefix", f.Message)
		}
		for _, p := range []string{"eve@x", "lowell@x", "alice@x", "bob@x"} {
			if strings.Contains(f.Message, p+" receives work") {
				who = append(who, p)
			}
		}
	}
	if len(implicit) != 2 || len(who) != 2 || who[0] == who[1] {
		t.Fatalf("ifc-implicit-flow = %v, want exactly eve@x and lowell@x\nall: %v", who, fs)
	}
}

// Concealed flow vaults the guard for the TFC: neither the evaluator-side
// nor the implicit-observation check applies (the paper's Figure 4 shape).
func TestIFCConcealedFlowExemptsConditions(t *testing.T) {
	d := leakyCondition()
	d.Policy.ConcealFlow = true
	d.Policy.TFC = "tfc@cloud"
	d.Policy.Rules[0].Readers = append(d.Policy.Rules[0].Readers, TFCReader)
	fs := Lint(d)
	if n := len(findRule(fs, RuleIFCFlow)) + len(findRule(fs, RuleIFCImplicit)); n != 0 {
		t.Fatalf("concealed flow should silence condition IFC findings, got %d: %v", n, fs)
	}
}

// A role-based activity has no static principal: display flows into it are
// skipped rather than guessed at.
func TestIFCSkipsRoleActivities(t *testing.T) {
	d := leakyDisplay()
	d.Activities[2].Participant = ""
	d.Activities[2].Role = "clerks"
	if n := len(findRule(Lint(d), RuleIFCFlow)); n != 0 {
		t.Fatalf("role-based display should not be flagged, got %d findings", n)
	}
}

// The shipped fixtures — the definitions every example runs — must be
// fully IFC-clean, not merely free of error findings.
func TestIFCBuiltinsClean(t *testing.T) {
	for name, def := range map[string]*Definition{
		"fig9a":            Fig9A(),
		"fig9b":            Fig9B(),
		"fig4":             Fig4(),
		"leave-request":    LeaveRequest(),
		"expense-approval": ExpenseApproval(),
	} {
		fs := Lint(def)
		if n := len(findRule(fs, RuleIFCFlow)) + len(findRule(fs, RuleIFCImplicit)); n != 0 {
			t.Errorf("%s: IFC findings on a shipped definition: %v", name, fs)
		}
	}
}

// Finding aggregation: when several analyzers report on the same activity
// the results arrive in the documented stable order with every finding
// preserved — lintPolicy's unreadable-request and the IFC pass both fire
// on A3 here, and repeated runs agree exactly.
func TestLintAggregationStableNoDedupLoss(t *testing.T) {
	d := leakyDisplay()
	first := Lint(d)

	// Both rules report on activity A3 / variable salary: no dedup loss.
	if n := len(findRule(first, "unreadable-request")); n != 1 {
		t.Errorf("unreadable-request findings = %d, want 1 alongside ifc-flow\nall: %v", n, first)
	}
	if n := len(findRule(first, RuleIFCFlow)); n != 1 {
		t.Errorf("ifc-flow findings = %d, want 1 alongside unreadable-request\nall: %v", n, first)
	}

	// Stable order: errors before warnings before info, rule-sorted within.
	lastRank, lastRule, lastMsg := -1, "", ""
	for _, f := range first {
		r := severityRank(f.Severity)
		if r < lastRank {
			t.Fatalf("severity order violated at %v\nall: %v", f, first)
		}
		if r == lastRank {
			if f.Rule < lastRule {
				t.Fatalf("rule order violated at %v\nall: %v", f, first)
			}
			if f.Rule == lastRule && f.Message < lastMsg {
				t.Fatalf("message order violated at %v\nall: %v", f, first)
			}
		}
		lastRank, lastRule, lastMsg = r, f.Rule, f.Message
	}

	// Deterministic across runs.
	for i := 0; i < 5; i++ {
		if again := Lint(leakyDisplay()); !reflect.DeepEqual(first, again) {
			t.Fatalf("run %d differs:\nfirst: %v\nagain: %v", i, first, again)
		}
	}
}

func TestResolvedReaders(t *testing.T) {
	d := Fig4()
	got, err := d.ResolvedReaders("X")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{Fig4Participants.Amy, "tfc@cloud"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("ResolvedReaders(X) = %v, want %v", got, want)
	}

	d.Policy.TFC = ""
	if _, err := d.ResolvedReaders("X"); err == nil {
		t.Fatal("ResolvedReaders with unresolvable TFCReader: expected error")
	}
}
