package wfdef

// ifc.go is the static information-flow-control pass of Lint, after
// Bauereiss & Hutter's possibilistic IFC for workflow management systems.
// The concealment policy of a definition (the per-variable reader sets of
// the security section) is only meaningful if the *control structure*
// cannot move a concealed value — or information about it — in front of a
// principal outside its reader set. The signature cascade proves who did
// what after the fact; this pass proves before deployment that the
// definition cannot leak in the first place, or produces a concrete
// counterexample: the activity chain the value travels and the principal
// who ends up seeing it.
//
// Taint lattice. Each variable's label is its resolved reader set, a
// point in the powerset lattice of workflow principals ordered by ⊇
// (more readers = lower = more public). A variable is *concealed* when
// its label excludes at least one participant of the workflow. Flows
// checked, per concealed variable v:
//
//   - display flow: an activity Requests v; its participant must carry
//     v's label (be a reader).
//   - condition read: a visible guard mentions v; the guard's evaluator
//     (the source activity's participant under the basic model) reads v
//     to route. Concealed flow hands evaluation to the TFC, whose read
//     grant Validate enforces.
//   - implicit flow: a visible guard mentioning v selects between
//     branches with different downstream participant sets. A participant
//     who receives work on one branch but not another observes the
//     guard's outcome — one bit of v — without ever holding its key
//     (possibilistic interference). Under concealed flow the guard text
//     is vaulted for the TFC, so an activation reveals no predicate on v
//     and the flow is accepted (the paper's Figure 4 relies on this).
//
// Soundness assumptions (see DESIGN.md "IFC taint lattice"):
//
//   - authorized readers are trusted declassifiers: what a participant
//     produces after legitimately reading v carries the participant's
//     judgment, not v's label (otherwise every approval workflow would
//     be a leak);
//   - role-based activities resolve their principal at runtime, so
//     display flows into them are not statically decidable and are
//     skipped;
//   - carrying an encrypted field through a non-reader is not a flow:
//     element-wise encryption is exactly the mechanism that makes
//     routing-without-reading safe.

import (
	"fmt"
	"strings"

	"dra4wfms/internal/expr"
)

// IFC rule identifiers.
const (
	// RuleIFCFlow marks direct flows of a concealed variable (display or
	// visible-condition read) to a principal outside its reader set.
	RuleIFCFlow = "ifc-flow"
	// RuleIFCImplicit marks implicit flows: branch selection on a visible
	// guard observable by a non-reader of a guard variable.
	RuleIFCImplicit = "ifc-implicit-flow"
)

// lintIFC runs the information-flow pass and reports findings through add.
func lintIFC(d *Definition, add addFunc) {
	participants := map[string]bool{}
	for _, a := range d.Activities {
		if a.Participant != "" {
			participants[a.Participant] = true
		}
	}

	for _, v := range d.Variables() {
		label := readerLabel(d, v)
		if !isConcealed(label, participants) {
			continue // public within the workflow: nothing to prove
		}
		checkDisplayFlows(d, v, label, add)
		checkConditionFlows(d, v, label, add)
	}
}

// readerLabel resolves the variable's reader set to concrete principals
// (TFCReader → the definition's TFC server). An unresolvable TFCReader is
// dropped here; Validate reports it as a hard error.
func readerLabel(d *Definition, variable string) map[string]bool {
	label := map[string]bool{}
	for _, r := range d.Readers(variable) {
		if r == TFCReader {
			if d.Policy.TFC == "" {
				continue
			}
			r = d.Policy.TFC
		}
		label[r] = true
	}
	return label
}

// isConcealed reports whether the label excludes any workflow participant.
func isConcealed(label, participants map[string]bool) bool {
	for p := range participants {
		if !label[p] {
			return true
		}
	}
	return false
}

// checkDisplayFlows verifies every Request of v against v's label.
func checkDisplayFlows(d *Definition, v string, label map[string]bool, add addFunc) {
	for _, a := range d.Activities {
		if a.Participant == "" {
			continue // role-resolved at runtime: statically undecidable
		}
		for _, req := range a.Requests {
			if req.Variable != v || label[a.Participant] {
				continue
			}
			add(SevError, RuleIFCFlow,
				"concealed variable %q flows to %s, participant of activity %s, who is outside its reader set; flow path: %s",
				v, a.Participant, a.ID, flowPath(d, v, a.ID))
		}
	}
}

// checkConditionFlows verifies visible guards mentioning v: the evaluator
// must read v, and branch selection must not be observable by non-readers
// (implicit flow). Concealed flow vaults the guard for the TFC and the
// whole family of checks does not apply.
func checkConditionFlows(d *Definition, v string, label map[string]bool, add addFunc) {
	if d.Policy.ConcealFlow {
		return
	}
	for _, t := range d.Transitions {
		if t.Condition == "" || t.Concealed {
			continue
		}
		vars, err := expr.VariablesOf(t.Condition)
		if err != nil {
			continue // Validate reports the syntax error
		}
		if !containsString(vars, v) {
			continue
		}
		src := d.Activity(t.From)
		if src == nil {
			continue // StartID guard: no evaluator to check
		}
		if src.Participant != "" && !label[src.Participant] {
			add(SevError, RuleIFCFlow,
				"concealed variable %q flows to %s, who evaluates the guard of transition %s at activity %s without being a reader; flow path: %s",
				v, src.Participant, t.ID, src.ID, flowPath(d, v, src.ID))
		}
		if src.Split == SplitXOR {
			checkImplicitFlow(d, v, label, src, add)
		}
	}
}

// checkImplicitFlow reports participants who can distinguish which branch
// of the XOR-split at src fired — they appear downstream of one branch but
// not of another — without being readers of the guard variable v.
func checkImplicitFlow(d *Definition, v string, label map[string]bool, src *Activity, add addFunc) {
	branches := d.Outgoing(src.ID)
	if len(branches) < 2 {
		return
	}
	// Downstream participant sets per branch.
	type branchView struct {
		t         Transition
		observers map[string]bool
	}
	views := make([]branchView, 0, len(branches))
	for _, b := range branches {
		views = append(views, branchView{t: b, observers: downstreamParticipants(d, b.To)})
	}

	reported := map[string]bool{}
	for i, seen := range views {
		for p := range seen.observers {
			if label[p] || reported[p] || p == src.Participant {
				continue // readers may observe; the evaluator is checked above
			}
			distinguishes := false
			for j, other := range views {
				if j != i && !other.observers[p] {
					distinguishes = true
					break
				}
			}
			if !distinguishes {
				continue // present on every branch: activation reveals nothing
			}
			reported[p] = true
			add(SevWarning, RuleIFCImplicit,
				"XOR-split at %s branches on concealed variable %q; %s receives work on branch %s but not on every branch and so observes the guard's outcome without being a reader; flow path: %s",
				src.ID, v, p, seen.t.ID, implicitPath(d, v, src.ID, seen.t, p))
		}
	}
}

// downstreamParticipants collects the participants of every activity
// reachable from id (inclusive), following transitions.
func downstreamParticipants(d *Definition, id string) map[string]bool {
	out := map[string]bool{}
	seen := map[string]bool{}
	frontier := []string{id}
	for len(frontier) > 0 {
		next := frontier[:0:0]
		for _, cur := range frontier {
			if cur == EndID || seen[cur] {
				continue
			}
			seen[cur] = true
			if a := d.Activity(cur); a != nil && a.Participant != "" {
				out[a.Participant] = true
			}
			for _, t := range d.Outgoing(cur) {
				next = append(next, t.To)
			}
		}
		frontier = next
	}
	return out
}

// flowPath renders the activity chain a value of v travels to reach
// target: the shortest transition path from any activity producing v.
// When no producer reaches target (the variable is unproduced, or target
// precedes every producer) the path degrades to the target alone.
func flowPath(d *Definition, v, target string) string {
	var producers []string
	for _, a := range d.Activities {
		for _, r := range a.Responses {
			if r.Variable == v {
				producers = append(producers, a.ID)
			}
		}
	}
	best := shortestPath(d, producers, target)
	if best == nil {
		return fmt.Sprintf("%s (shown at %s)", v, target)
	}
	parts := make([]string, 0, len(best))
	for i, id := range best {
		if i == 0 {
			parts = append(parts, fmt.Sprintf("%s (produces %s)", id, v))
			continue
		}
		parts = append(parts, id)
	}
	return strings.Join(parts, " → ")
}

// implicitPath renders split → branch → first downstream activity whose
// participant is p.
func implicitPath(d *Definition, v, split string, branch Transition, p string) string {
	// BFS from the branch target to the nearest activity executed by p.
	type hop struct {
		id   string
		prev *hop
	}
	seen := map[string]bool{}
	queue := []*hop{{id: branch.To}}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if cur.id == EndID || seen[cur.id] {
			continue
		}
		seen[cur.id] = true
		if a := d.Activity(cur.id); a != nil && a.Participant == p {
			var chain []string
			for h := cur; h != nil; h = h.prev {
				chain = append(chain, h.id)
			}
			for i, j := 0, len(chain)-1; i < j; i, j = i+1, j-1 {
				chain[i], chain[j] = chain[j], chain[i]
			}
			return fmt.Sprintf("%s (branches on %s) → %s", split, v, strings.Join(chain, " → "))
		}
		for _, t := range d.Outgoing(cur.id) {
			queue = append(queue, &hop{id: t.To, prev: cur})
		}
	}
	return fmt.Sprintf("%s (branches on %s) → %s", split, v, branch.To)
}

// shortestPath returns the shortest activity chain from any of sources to
// target over the transition graph, or nil when unreachable. A source
// equal to target returns the single-element chain.
func shortestPath(d *Definition, sources []string, target string) []string {
	type hop struct {
		id   string
		prev *hop
	}
	seen := map[string]bool{}
	var queue []*hop
	for _, s := range sources {
		queue = append(queue, &hop{id: s})
	}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if seen[cur.id] || cur.id == EndID {
			continue
		}
		seen[cur.id] = true
		if cur.id == target {
			var chain []string
			for h := cur; h != nil; h = h.prev {
				chain = append(chain, h.id)
			}
			// Reverse into source → target order.
			for i, j := 0, len(chain)-1; i < j; i, j = i+1, j-1 {
				chain[i], chain[j] = chain[j], chain[i]
			}
			return chain
		}
		for _, t := range d.Outgoing(cur.id) {
			queue = append(queue, &hop{id: t.To, prev: cur})
		}
	}
	return nil
}

func containsString(list []string, s string) bool {
	for _, x := range list {
		if x == s {
			return true
		}
	}
	return false
}
