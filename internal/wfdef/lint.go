package wfdef

import (
	"fmt"
	"sort"
	"strings"

	"dra4wfms/internal/expr"
)

// Severity grades a lint finding.
type Severity string

const (
	// SevError findings describe definitions that will misbehave at
	// runtime: unreachable work, undecryptable requests, dead cycles.
	SevError Severity = "error"
	// SevWarning findings are probable policy mistakes worth a review.
	SevWarning Severity = "warning"
	// SevInfo findings describe notable but legitimate structure (loops,
	// write-only variables).
	SevInfo Severity = "info"
)

// Finding is one diagnostic produced by Lint.
type Finding struct {
	// Severity grades the finding.
	Severity Severity
	// Rule names the check that produced the finding (stable identifier).
	Rule string
	// Message is the human-readable description.
	Message string
}

// String renders "severity[rule]: message".
func (f Finding) String() string {
	return fmt.Sprintf("%s[%s]: %s", f.Severity, f.Rule, f.Message)
}

// Lint statically checks a workflow definition beyond the hard
// well-formedness rules of Validate: control-flow shape (cycles without an
// exit, unreachable activities, XOR-splits with no default branch) and
// security-policy consistency (participants shown variables they hold no
// key for, read grants to principals outside the workflow, variables
// nobody can decrypt or nobody produces).
//
// Unlike Validate, which stops at the first hard error, Lint reports every
// finding it can and never fails: it is usable on definitions that do not
// validate. Error-severity findings indicate the process will misbehave at
// runtime; warnings are probable mistakes; info findings are notable but
// legitimate structure.
//
// Beyond the structural and policy checks, Lint runs the static
// information-flow-control pass of ifc.go: for every concealed variable
// (one whose reader set excludes a workflow participant) it either proves
// no flow — display, visible-condition read, or implicit branch
// observation — can put the variable in front of a non-reader, or reports
// the concrete counterexample path.
//
// Findings are returned in a stable, documented order — severity
// (errors, then warnings, then info), then rule, then message — so that
// repeated runs over the same definition, and analyzers reporting on the
// same activity, aggregate deterministically with nothing deduplicated
// away.
func Lint(d *Definition) []Finding {
	var out []Finding
	add := func(sev Severity, rule, format string, args ...any) {
		out = append(out, Finding{Severity: sev, Rule: rule, Message: fmt.Sprintf(format, args...)})
	}

	ids := map[string]bool{}
	for _, a := range d.Activities {
		ids[a.ID] = true
	}

	lintReachability(d, ids, add)
	lintCycles(d, ids, add)
	lintSplits(d, add)
	lintPolicy(d, add)
	lintVariables(d, add)
	lintIFC(d, add)
	sortFindings(out)
	return out
}

// severityRank orders severities for reporting: errors first.
func severityRank(s Severity) int {
	switch s {
	case SevError:
		return 0
	case SevWarning:
		return 1
	default:
		return 2
	}
}

// sortFindings applies the documented stable ordering. The sort is stable
// and the key includes the full message, so two analyzers reporting
// distinct findings on the same activity both survive, in a fixed order.
func sortFindings(fs []Finding) {
	sort.SliceStable(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if ra, rb := severityRank(a.Severity), severityRank(b.Severity); ra != rb {
			return ra < rb
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Message < b.Message
	})
}

type addFunc func(sev Severity, rule, format string, args ...any)

// lintReachability reports activities no token can reach and activities
// from which the end is unreachable.
func lintReachability(d *Definition, ids map[string]bool, add addFunc) {
	reached := map[string]bool{}
	frontier := d.InitialActivities()
	for len(frontier) > 0 {
		next := frontier[:0:0]
		for _, id := range frontier {
			if id == EndID || reached[id] {
				continue
			}
			reached[id] = true
			for _, t := range d.Outgoing(id) {
				next = append(next, t.To)
			}
		}
		frontier = next
	}
	coreached := map[string]bool{}
	rev := []string{}
	for _, t := range d.Incoming(EndID) {
		rev = append(rev, t.From)
	}
	for len(rev) > 0 {
		next := rev[:0:0]
		for _, id := range rev {
			if id == StartID || coreached[id] {
				continue
			}
			coreached[id] = true
			for _, t := range d.Incoming(id) {
				next = append(next, t.From)
			}
		}
		rev = next
	}
	for _, a := range d.Activities {
		if !reached[a.ID] {
			add(SevError, "unreachable", "activity %s is unreachable from start; it can never execute", a.ID)
		}
		if !coreached[a.ID] {
			add(SevError, "no-exit", "no path from activity %s to end; an instance entering it never terminates", a.ID)
		}
	}
}

// lintCycles finds the strongly connected components of the activity graph
// (Tarjan). A cycle with an exit is a legitimate loop and reported as
// info; a cycle no transition leaves can never terminate.
func lintCycles(d *Definition, ids map[string]bool, add addFunc) {
	type nodeState struct {
		index, lowlink int
		onStack        bool
	}
	var (
		order  []string // deterministic node order: definition order
		states = map[string]*nodeState{}
		stack  []string
		index  int
		sccs   [][]string
	)
	for _, a := range d.Activities {
		order = append(order, a.ID)
	}
	var strongconnect func(v string)
	strongconnect = func(v string) {
		st := &nodeState{index: index, lowlink: index}
		states[v] = st
		index++
		stack = append(stack, v)
		st.onStack = true
		for _, t := range d.Outgoing(v) {
			w := t.To
			if !ids[w] {
				continue // EndID
			}
			ws, seen := states[w]
			switch {
			case !seen:
				strongconnect(w)
				if lw := states[w].lowlink; lw < st.lowlink {
					st.lowlink = lw
				}
			case ws.onStack:
				if ws.index < st.lowlink {
					st.lowlink = ws.index
				}
			}
		}
		if st.lowlink == st.index {
			var scc []string
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				states[w].onStack = false
				scc = append(scc, w)
				if w == v {
					break
				}
			}
			sort.Strings(scc)
			sccs = append(sccs, scc)
		}
	}
	for _, v := range order {
		if _, seen := states[v]; !seen {
			strongconnect(v)
		}
	}

	for _, scc := range sccs {
		member := map[string]bool{}
		for _, id := range scc {
			member[id] = true
		}
		cyclic := len(scc) > 1
		if !cyclic { // single node: cyclic only with a self-loop
			for _, t := range d.Outgoing(scc[0]) {
				if t.To == scc[0] {
					cyclic = true
					break
				}
			}
		}
		if !cyclic {
			continue
		}
		var exits []string
		for _, id := range scc {
			for _, t := range d.Outgoing(id) {
				if t.To == EndID || !member[t.To] {
					exits = append(exits, t.ID)
				}
			}
		}
		sort.Strings(exits)
		if len(exits) == 0 {
			add(SevError, "dead-cycle", "activities %s form a cycle no transition leaves; an instance entering it never terminates",
				strings.Join(scc, ", "))
		} else {
			add(SevInfo, "loop", "activities %s form a loop (exits via %s); ensure the exit condition can become true",
				strings.Join(scc, ", "), strings.Join(exits, ", "))
		}
	}
}

// lintSplits reports XOR-splits whose branches are all guarded: if every
// condition evaluates to false, the instance deadlocks at the split.
func lintSplits(d *Definition, add addFunc) {
	for _, a := range d.Activities {
		if a.Split != SplitXOR {
			continue
		}
		out := d.Outgoing(a.ID)
		if len(out) == 0 {
			continue
		}
		allGuarded := true
		for _, t := range out {
			if !t.Guarded() {
				allGuarded = false
				break
			}
		}
		if allGuarded {
			add(SevInfo, "xor-no-default", "XOR-split at %s has no default (unconditional) branch; the instance deadlocks if every guard is false",
				a.ID)
		}
	}
}

// lintPolicy checks read grants against the key-holding principals of the
// workflow: the participants, the designer and the TFC servers. A grant
// to anyone else names a principal who holds no workflow key — either a
// typo or a leftover from an earlier revision. It also flags variables
// displayed to a participant who cannot decrypt them, and variables with
// no readers at all.
func lintPolicy(d *Definition, add addFunc) {
	holders := map[string]bool{TFCReader: true}
	if d.Designer != "" {
		holders[d.Designer] = true
	}
	var roles []string
	for _, a := range d.Activities {
		if a.Participant != "" {
			holders[a.Participant] = true
		}
		if a.Participant == "" && a.Role != "" {
			roles = append(roles, a.Role)
		}
	}
	for _, id := range d.TFCs() {
		holders[id] = true
	}

	for _, v := range d.Variables() {
		readers := d.Readers(v)
		if len(readers) == 0 {
			add(SevError, "no-readers", "no principal can read variable %q; grant readers in a rule or set default readers", v)
			continue
		}
		for _, r := range readers {
			if holders[r] {
				continue
			}
			if len(roles) > 0 {
				// A role-based activity resolves its participant at
				// runtime; the grant may name a role holder the
				// definition cannot enumerate.
				add(SevInfo, "possible-role-reader", "variable %q grants read access to %q, who is not a declared participant; assuming a runtime holder of role %q",
					v, r, roles[0])
				continue
			}
			add(SevWarning, "orphan-reader", "variable %q grants read access to %q, who participates nowhere in the workflow and holds no key for it",
				v, r)
		}
	}

	// Every variable displayed to a participant must be decryptable by
	// that participant.
	for _, a := range d.Activities {
		if a.Participant == "" {
			continue // role-resolved at runtime; the concrete principal is unknown
		}
		for _, req := range a.Requests {
			if !readableBy(d.Readers(req.Variable), a.Participant) {
				add(SevError, "unreadable-request", "activity %s displays %q to %s, who is not among its readers and cannot decrypt it",
					a.ID, req.Variable, a.Participant)
			}
		}
	}

	// Under the basic model the forwarding participant's AEA evaluates the
	// branch conditions; under concealed flow the TFC does (Validate
	// enforces the TFC grants there).
	if !d.Policy.ConcealFlow {
		for _, t := range d.Transitions {
			if t.Condition == "" || t.From == StartID {
				continue
			}
			a := d.Activity(t.From)
			if a == nil || a.Participant == "" {
				continue
			}
			e, err := expr.Parse(t.Condition)
			if err != nil {
				continue // Validate reports the syntax error
			}
			for _, v := range e.Variables() {
				if !readableBy(d.Readers(v), a.Participant) {
					add(SevError, "unreadable-condition", "transition %s condition reads %q, which %s (participant of %s) cannot decrypt",
						t.ID, v, a.Participant, a.ID)
				}
			}
		}
	}
}

// lintVariables cross-checks requests against responses: a variable shown
// to a participant that no activity produces is displayed as an empty
// value; a produced variable nobody displays or branches on is write-only
// output.
func lintVariables(d *Definition, add addFunc) {
	produced := map[string]bool{}
	requested := map[string]bool{}
	for _, a := range d.Activities {
		for _, r := range a.Responses {
			produced[r.Variable] = true
		}
		for _, r := range a.Requests {
			requested[r.Variable] = true
		}
	}
	inCondition := map[string]bool{}
	if vars, err := d.ConditionVariables(); err == nil {
		for _, v := range vars {
			inCondition[v] = true
		}
	}

	for _, v := range d.Variables() {
		if requested[v] && !produced[v] {
			add(SevWarning, "unproduced-variable", "variable %q is displayed to participants but no activity produces it", v)
		}
		if produced[v] && !requested[v] && !inCondition[v] {
			add(SevInfo, "write-only-variable", "variable %q is produced but never displayed or branched on; it is final output only", v)
		}
	}
}
