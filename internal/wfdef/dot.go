package wfdef

import (
	"fmt"
	"strings"
)

// DOT renders the definition as a Graphviz digraph for documentation and
// review: activities as boxes (AND/XOR splits and joins annotated),
// transitions as edges labeled with their conditions (or "<concealed>"),
// and the start/end pseudo-nodes as circles.
func (d *Definition) DOT() string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", d.Name)
	b.WriteString("  rankdir=LR;\n")
	b.WriteString("  __start__ [shape=circle, label=\"\", style=filled, fillcolor=black, width=0.2];\n")
	b.WriteString("  __end__ [shape=doublecircle, label=\"\", style=filled, fillcolor=black, width=0.15];\n")
	for _, a := range d.Activities {
		label := a.ID
		if a.Name != "" {
			label += "\\n" + escapeDot(a.Name)
		}
		who := a.Participant
		if who == "" {
			who = "role:" + a.Role
		}
		label += "\\n(" + escapeDot(who) + ")"
		var marks []string
		if a.Split != SplitNone {
			marks = append(marks, string(a.Split)+"-split")
		}
		if a.Join != JoinNone {
			marks = append(marks, string(a.Join)+"-join")
		}
		if len(marks) > 0 {
			label += "\\n[" + strings.Join(marks, ", ") + "]"
		}
		fmt.Fprintf(&b, "  %q [shape=box, label=\"%s\"];\n", a.ID, label)
	}
	for _, t := range d.Transitions {
		attrs := ""
		switch {
		case t.Concealed:
			attrs = " [label=\"<concealed>\", style=dashed]"
		case t.Condition != "":
			attrs = fmt.Sprintf(" [label=\"%s\"]", escapeDot(t.Condition))
		}
		fmt.Fprintf(&b, "  %q -> %q%s;\n", t.From, t.To, attrs)
	}
	b.WriteString("}\n")
	return b.String()
}

func escapeDot(s string) string {
	s = strings.ReplaceAll(s, "\\", "\\\\")
	s = strings.ReplaceAll(s, "\"", "\\\"")
	return s
}
