package wfdef

import "fmt"

// Builder assembles a Definition with a fluent API. It auto-numbers
// transitions and is the intended way for example applications and tests to
// author workflows:
//
//	def, err := wfdef.NewBuilder("purchase", "designer@acme").
//	    Activity("A", "Prepare order", "peter@acme").
//	        Response("amount", "number", true).Split(wfdef.SplitAND).Done().
//	    ...
//	    Start("A").Edge("A", "B1").
//	    Build()
type Builder struct {
	def  Definition
	errs []error
	tseq int
}

// NewBuilder starts a definition with the given name and designer.
func NewBuilder(name, designer string) *Builder {
	return &Builder{def: Definition{Name: name, Designer: designer}}
}

// ActivityBuilder configures one activity; call Done to return to the
// parent Builder.
type ActivityBuilder struct {
	b *Builder
	a *Activity
}

// Activity appends an activity and returns its sub-builder.
func (b *Builder) Activity(id, name, participant string) *ActivityBuilder {
	b.def.Activities = append(b.def.Activities, Activity{ID: id, Name: name, Participant: participant})
	return &ActivityBuilder{b: b, a: &b.def.Activities[len(b.def.Activities)-1]}
}

// Request adds a displayed variable.
func (ab *ActivityBuilder) Request(variable string) *ActivityBuilder {
	ab.a.Requests = append(ab.a.Requests, Request{Variable: variable})
	return ab
}

// Response adds a produced variable.
func (ab *ActivityBuilder) Response(variable, typ string, required bool) *ActivityBuilder {
	ab.a.Responses = append(ab.a.Responses, Response{Variable: variable, Type: typ, Required: required})
	return ab
}

// Split sets the outgoing fan-out kind.
func (ab *ActivityBuilder) Split(k SplitKind) *ActivityBuilder {
	ab.a.Split = k
	return ab
}

// Join sets the incoming fan-in kind.
func (ab *ActivityBuilder) Join(k JoinKind) *ActivityBuilder {
	ab.a.Join = k
	return ab
}

// Role constrains the executing principal to holders of the role.
func (ab *ActivityBuilder) Role(role string) *ActivityBuilder {
	ab.a.Role = role
	return ab
}

// Done returns to the parent builder.
func (ab *ActivityBuilder) Done() *Builder { return ab.b }

// Start adds an initial transition from the start pseudo-node to each id.
func (b *Builder) Start(ids ...string) *Builder {
	for _, id := range ids {
		b.edge(StartID, id, "")
	}
	return b
}

// Edge adds an unconditional transition.
func (b *Builder) Edge(from, to string) *Builder {
	b.edge(from, to, "")
	return b
}

// EdgeIf adds a transition guarded by condition.
func (b *Builder) EdgeIf(from, to, condition string) *Builder {
	b.edge(from, to, condition)
	return b
}

// End adds a terminating transition from each id to the end pseudo-node.
func (b *Builder) End(ids ...string) *Builder {
	for _, id := range ids {
		b.edge(id, EndID, "")
	}
	return b
}

// EndIf adds a conditional terminating transition.
func (b *Builder) EndIf(from, condition string) *Builder {
	b.edge(from, EndID, condition)
	return b
}

func (b *Builder) edge(from, to, cond string) {
	b.tseq++
	b.def.Transitions = append(b.def.Transitions, Transition{
		ID:        fmt.Sprintf("t%d", b.tseq),
		From:      from,
		To:        to,
		Condition: cond,
	})
}

// PatchActivity mutates an already-added activity in place — support for
// programmatic generators that decide split/join kinds after emitting the
// activity. Patching an unknown ID records an error surfaced by Build.
func (b *Builder) PatchActivity(id string, fn func(*Activity)) *Builder {
	for i := range b.def.Activities {
		if b.def.Activities[i].ID == id {
			fn(&b.def.Activities[i])
			return b
		}
	}
	b.errs = append(b.errs, fmt.Errorf("wfdef: PatchActivity: unknown activity %q", id))
	return b
}

// DefaultReaders sets the policy's default reader list.
func (b *Builder) DefaultReaders(readers ...string) *Builder {
	b.def.Policy.DefaultReaders = readers
	return b
}

// ReadRule grants the listed readers access to variable.
func (b *Builder) ReadRule(variable string, readers ...string) *Builder {
	b.def.Policy.Rules = append(b.def.Policy.Rules, ReadRule{Variable: variable, Readers: readers})
	return b
}

// ConcealFlow hides flow information from participants and names the TFC
// that will route documents.
func (b *Builder) ConcealFlow(tfcID string) *Builder {
	b.def.Policy.ConcealFlow = true
	b.def.Policy.TFC = tfcID
	return b
}

// TFC names the default TFC server without concealing flow.
func (b *Builder) TFC(tfcID string) *Builder {
	b.def.Policy.TFC = tfcID
	return b
}

// AssignTFC routes one activity's advanced-model processing to a specific
// TFC server (multi-TFC deployments).
func (b *Builder) AssignTFC(activityID, tfcID string) *Builder {
	b.def.Policy.TFCAssigns = append(b.def.Policy.TFCAssigns, TFCAssign{Activity: activityID, TFC: tfcID})
	return b
}

// Build validates and returns the definition.
func (b *Builder) Build() (*Definition, error) {
	if len(b.errs) > 0 {
		return nil, b.errs[0]
	}
	def := b.def
	if err := def.Validate(); err != nil {
		return nil, err
	}
	return &def, nil
}

// MustBuild is Build for static fixtures; it panics on error.
func (b *Builder) MustBuild() *Definition {
	def, err := b.Build()
	if err != nil {
		panic(err)
	}
	return def
}
