package wfdef

import (
	"strings"
	"testing"
)

func rulesOf(fs []Finding) map[string]int {
	m := map[string]int{}
	for _, f := range fs {
		m[f.Rule]++
	}
	return m
}

func errorsIn(fs []Finding) []Finding {
	var out []Finding
	for _, f := range fs {
		if f.Severity == SevError {
			out = append(out, f)
		}
	}
	return out
}

// The shipped paper workflows must be free of error-severity findings:
// `dractl lint fig9a|fig9b|fig4` exits 0.
func TestLintBuiltinsClean(t *testing.T) {
	for name, def := range map[string]*Definition{
		"fig9a": Fig9A(), "fig9b": Fig9B(), "fig4": Fig4(),
	} {
		for _, f := range errorsIn(Lint(def)) {
			t.Errorf("%s: unexpected error finding: %s", name, f)
		}
	}
}

func TestLintFig9Loop(t *testing.T) {
	fs := Lint(Fig9A())
	var loop *Finding
	for i := range fs {
		if fs[i].Rule == "loop" {
			loop = &fs[i]
		}
	}
	if loop == nil {
		t.Fatalf("no loop finding in %v", fs)
	}
	if loop.Severity != SevInfo {
		t.Errorf("loop severity = %s, want info", loop.Severity)
	}
	for _, id := range []string{"A", "B1", "B2", "C", "D"} {
		if !strings.Contains(loop.Message, id) {
			t.Errorf("loop message %q misses member %s", loop.Message, id)
		}
	}
}

func TestLintFig4WriteOnly(t *testing.T) {
	got := rulesOf(Lint(Fig4()))
	// reviewed, highResult and lowResult are final outputs nobody displays.
	if got["write-only-variable"] != 3 {
		t.Errorf("write-only-variable findings = %d, want 3", got["write-only-variable"])
	}
}

// two activities where B is a dead end and C is unreachable.
func brokenFlow() *Definition {
	return &Definition{
		Name:     "broken",
		Designer: "designer@x",
		Activities: []Activity{
			{ID: "A", Participant: "p1@x"},
			{ID: "B", Participant: "p2@x"},
			{ID: "C", Participant: "p3@x"},
		},
		Transitions: []Transition{
			{ID: "t0", From: StartID, To: "A"},
			{ID: "t1", From: "A", To: "B"},
			{ID: "t2", From: "A", To: EndID},
			{ID: "t3", From: "C", To: EndID},
		},
		Policy: SecurityPolicy{DefaultReaders: []string{"p1@x", "p2@x", "p3@x"}},
	}
}

func TestLintReachability(t *testing.T) {
	got := rulesOf(Lint(brokenFlow()))
	if got["unreachable"] != 1 { // C
		t.Errorf("unreachable findings = %d, want 1", got["unreachable"])
	}
	if got["no-exit"] != 1 { // B
		t.Errorf("no-exit findings = %d, want 1", got["no-exit"])
	}
}

func TestLintDeadCycle(t *testing.T) {
	d := &Definition{
		Name:     "dead-cycle",
		Designer: "designer@x",
		Activities: []Activity{
			{ID: "A", Participant: "p1@x"},
			{ID: "B", Participant: "p2@x", Join: JoinXOR},
		},
		Transitions: []Transition{
			{ID: "t0", From: StartID, To: "B"},
			{ID: "t1", From: "B", To: "A"},
			{ID: "t2", From: "A", To: "B"},
		},
		Policy: SecurityPolicy{DefaultReaders: []string{"p1@x", "p2@x"}},
	}
	fs := Lint(d)
	got := rulesOf(fs)
	if got["dead-cycle"] != 1 {
		t.Fatalf("dead-cycle findings = %d, want 1 (%v)", got["dead-cycle"], fs)
	}
	if got["loop"] != 0 {
		t.Errorf("a dead cycle must not also be reported as a loop (%v)", fs)
	}
}

func TestLintPolicyFindings(t *testing.T) {
	d := &Definition{
		Name:     "leaky",
		Designer: "designer@x",
		Activities: []Activity{
			{ID: "A", Participant: "alice@x", Responses: []Response{
				{Variable: "secret"}, {Variable: "amount"}, {Variable: "orphaned"},
			}},
			{ID: "B", Participant: "bob@y", Split: SplitXOR,
				Requests:  []Request{{Variable: "secret"}, {Variable: "ghost"}},
				Responses: []Response{{Variable: "verdict"}}},
			{ID: "C", Participant: "carol@z"},
			{ID: "D", Participant: "dan@z", Join: JoinXOR},
		},
		Transitions: []Transition{
			{ID: "t0", From: StartID, To: "A"},
			{ID: "t1", From: "A", To: "B"},
			{ID: "t2", From: "B", To: "C", Condition: `amount > 10`},
			{ID: "t3", From: "B", To: "D", Condition: `amount <= 10`},
			{ID: "t4", From: "C", To: "D"},
			{ID: "t5", From: "D", To: EndID},
		},
		Policy: SecurityPolicy{
			DefaultReaders: []string{"alice@x", "bob@y", "carol@z", "dan@z"},
			Rules: []ReadRule{
				// bob displays "secret" but is not a reader; mallory holds no key.
				{Variable: "secret", Readers: []string{"alice@x", "mallory@evil"}},
				// bob guards t2/t3 on "amount" but cannot read it.
				{Variable: "amount", Readers: []string{"alice@x"}},
				// nobody at all can read "orphaned".
				{Variable: "orphaned", Readers: nil},
			},
		},
	}
	fs := Lint(d)
	got := rulesOf(fs)
	want := map[string]int{
		"orphan-reader":        1, // mallory@evil on secret
		"unreadable-request":   1, // secret shown to bob
		"unreadable-condition": 2, // amount guards t2 and t3
		"no-readers":           1, // orphaned
		"unproduced-variable":  1, // ghost
		"xor-no-default":       1, // B's split is fully guarded
	}
	for rule, n := range want {
		if got[rule] != n {
			t.Errorf("%s findings = %d, want %d\nall: %v", rule, got[rule], n, fs)
		}
	}
	for _, f := range fs {
		if f.Rule == "orphan-reader" && !strings.Contains(f.Message, "mallory@evil") {
			t.Errorf("orphan-reader message %q does not name the orphan", f.Message)
		}
	}
}

// Concealed flow hands condition evaluation to the TFC, so the
// participant-side condition check must stay quiet.
func TestLintConcealedSkipsConditionCheck(t *testing.T) {
	d := Fig4()
	if !d.Policy.ConcealFlow {
		t.Fatal("Fig4 should conceal flow")
	}
	for _, f := range Lint(d) {
		if f.Rule == "unreadable-condition" {
			t.Errorf("unexpected condition finding under concealed flow: %s", f)
		}
	}
}

func TestFindingString(t *testing.T) {
	f := Finding{Severity: SevWarning, Rule: "orphan-reader", Message: "m"}
	if got := f.String(); got != "warning[orphan-reader]: m" {
		t.Errorf("String() = %q", got)
	}
}
