// Package wfdef models workflow process definitions: the static part of a
// DRA4WfMS document (the paper's "workflow definition section" and
// "security definition section" of Figure 8).
//
// A definition is a directed graph of activities with control-flow edges.
// Supported flow constructs match the paper's experimental workflows
// (Figure 9): sequence, AND-split / AND-join (parallel branches), XOR-split
// (conditional branch, the paper's OR-split) and loops (back edges).
//
// The security policy assigns, per process variable, the set of principals
// allowed to read it; this drives the element-wise encryption performed by
// AEAs (basic model) or the TFC server (advanced model). A definition may
// also declare that control-flow information is concealed from
// participants, which forces the advanced operational model: participants
// cannot evaluate branch conditions, so routing and policy encryption are
// delegated to the TFC (the Figure 4 scenario).
package wfdef

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"dra4wfms/internal/expr"
	"dra4wfms/internal/xmltree"
)

// Pseudo-activity IDs marking the process boundaries in transitions.
const (
	// StartID is the source of initial transitions.
	StartID = "__start__"
	// EndID is the target of terminating transitions.
	EndID = "__end__"
)

// TFCReader is the pseudo-principal naming the TFC server in read-policy
// rules; the TFC must be able to read variables appearing in concealed flow
// conditions.
const TFCReader = "__tfc__"

// SplitKind describes how control flow fans out of an activity with more
// than one outgoing transition.
type SplitKind string

const (
	// SplitNone: at most one outgoing transition.
	SplitNone SplitKind = ""
	// SplitAND: all outgoing transitions fire in parallel (AND-split).
	SplitAND SplitKind = "AND"
	// SplitXOR: exactly one outgoing transition fires, chosen by condition
	// (the paper's OR-split / conditional branch).
	SplitXOR SplitKind = "XOR"
)

// JoinKind describes how control flow fans into an activity with more than
// one incoming transition.
type JoinKind string

const (
	// JoinNone: at most one incoming transition.
	JoinNone JoinKind = ""
	// JoinAND: the activity waits for every incoming branch (AND-join) and
	// the routed documents are merged.
	JoinAND JoinKind = "AND"
	// JoinXOR: any single incoming branch enables the activity (used for
	// loop re-entry edges).
	JoinXOR JoinKind = "XOR"
)

// Request names a process variable shown to the activity's participant.
type Request struct {
	// Variable is the process variable to display.
	Variable string
}

// Response declares a process variable the activity's participant produces.
type Response struct {
	// Variable is the name under which the value is stored.
	Variable string
	// Type is a display hint: "string", "number", "bool" or "file".
	Type string
	// Required marks responses the participant must fill in.
	Required bool
}

// Activity is one logic step of the workflow (a node of the graph).
type Activity struct {
	// ID uniquely identifies the activity within the definition (e.g. "A1").
	ID string
	// Name is a human-readable title.
	Name string
	// Participant is the principal expected to execute the activity.
	Participant string
	// Role optionally constrains execution to principals holding the role.
	Role string
	// Requests are the variables shown to the participant.
	Requests []Request
	// Responses are the variables the participant produces.
	Responses []Response
	// Split declares the outgoing fan-out semantics.
	Split SplitKind
	// Join declares the incoming fan-in semantics.
	Join JoinKind
}

// Transition is one control-flow edge of the graph.
type Transition struct {
	// ID uniquely identifies the transition.
	ID string
	// From is the source activity ID, or StartID.
	From string
	// To is the target activity ID, or EndID.
	To string
	// Condition is an expr source guarding the edge; empty means
	// unconditional (or the default branch of an XOR-split).
	Condition string
	// Concealed marks a guarded edge whose condition text has been
	// removed from the participant-visible definition and vaulted,
	// element-wise encrypted, for the TFC server (the Figure 4
	// requirement that control-flow information not be revealed to
	// forwarding participants). A concealed transition behaves as
	// conditional for validation even though Condition is empty.
	Concealed bool
}

// Guarded reports whether the transition carries a condition, visible or
// concealed.
func (t Transition) Guarded() bool { return t.Condition != "" || t.Concealed }

// ReadRule grants read access on one variable.
type ReadRule struct {
	// Variable is the process variable the rule covers.
	Variable string
	// Readers are principal IDs permitted to decrypt the variable;
	// TFCReader names the TFC server.
	Readers []string
}

// TFCAssign routes one activity's advanced-model processing to a specific
// TFC server (the paper's Figure 6 deployment has several TFC servers).
type TFCAssign struct {
	// Activity is the activity whose documents go to this server.
	Activity string
	// TFC is the server's principal ID.
	TFC string
}

// SecurityPolicy is the definition's "security definition section".
type SecurityPolicy struct {
	// DefaultReaders can read any variable without a specific rule.
	DefaultReaders []string
	// Rules override DefaultReaders per variable.
	Rules []ReadRule
	// ConcealFlow hides control-flow information from participants; the
	// process must then run under the advanced operational model.
	ConcealFlow bool
	// TFC is the principal ID of the default timestamp-and-flow-control
	// server for the advanced model; empty means the basic model suffices.
	TFC string
	// TFCAssigns override the default TFC per activity (multi-TFC
	// deployments, Figure 6 of the paper).
	TFCAssigns []TFCAssign
}

// Definition is a complete workflow process definition.
type Definition struct {
	// Name identifies the workflow process type.
	Name string
	// Designer is the principal who authored (and signs) the definition.
	Designer string
	// Activities are the nodes of the control-flow graph.
	Activities []Activity
	// Transitions are the edges of the control-flow graph.
	Transitions []Transition
	// Policy is the security definition section.
	Policy SecurityPolicy
}

// Activity returns the activity with the given ID, or nil.
func (d *Definition) Activity(id string) *Activity {
	for i := range d.Activities {
		if d.Activities[i].ID == id {
			return &d.Activities[i]
		}
	}
	return nil
}

// Outgoing returns the transitions leaving the given activity (or StartID),
// in definition order.
func (d *Definition) Outgoing(from string) []Transition {
	var out []Transition
	for _, t := range d.Transitions {
		if t.From == from {
			out = append(out, t)
		}
	}
	return out
}

// Incoming returns the transitions entering the given activity (or EndID),
// in definition order.
func (d *Definition) Incoming(to string) []Transition {
	var out []Transition
	for _, t := range d.Transitions {
		if t.To == to {
			out = append(out, t)
		}
	}
	return out
}

// InitialActivities returns the IDs of activities entered from StartID.
func (d *Definition) InitialActivities() []string {
	var ids []string
	for _, t := range d.Outgoing(StartID) {
		ids = append(ids, t.To)
	}
	return ids
}

// Variables returns every process variable mentioned by any request or
// response, sorted.
func (d *Definition) Variables() []string {
	set := map[string]bool{}
	for _, a := range d.Activities {
		for _, r := range a.Requests {
			set[r.Variable] = true
		}
		for _, r := range a.Responses {
			set[r.Variable] = true
		}
	}
	vars := make([]string, 0, len(set))
	for v := range set {
		vars = append(vars, v)
	}
	sort.Strings(vars)
	return vars
}

// Readers returns the principal IDs allowed to read the given variable:
// the matching rule's readers if one exists, else the policy default. The
// variable's producer and display targets are NOT implicitly added; the
// designer must list every reader (the paper's Figure 4 policy is explicit
// about who may see X and Y).
func (d *Definition) Readers(variable string) []string {
	for _, r := range d.Policy.Rules {
		if r.Variable == variable {
			return r.Readers
		}
	}
	return d.Policy.DefaultReaders
}

// ResolvedReaders returns the concrete principal IDs able to decrypt the
// variable: Readers with the TFCReader pseudo-principal resolved to the
// definition's TFC server. Naming TFCReader in a definition without a TFC
// is an error — encrypting "for the TFC" with no TFC configured would
// silently drop a reader.
func (d *Definition) ResolvedReaders(variable string) ([]string, error) {
	readers := d.Readers(variable)
	out := make([]string, 0, len(readers))
	for _, r := range readers {
		if r == TFCReader {
			if d.Policy.TFC == "" {
				return nil, fmt.Errorf("wfdef: variable %q names the TFC reader but the definition has no TFC", variable)
			}
			r = d.Policy.TFC
		}
		out = append(out, r)
	}
	return out, nil
}

// TFCFor returns the TFC server responsible for the activity under the
// advanced model: its per-activity assignment if one exists, else the
// policy default ("" when the definition runs the basic model).
func (d *Definition) TFCFor(activityID string) string {
	for _, a := range d.Policy.TFCAssigns {
		if a.Activity == activityID {
			return a.TFC
		}
	}
	return d.Policy.TFC
}

// TFCs returns every distinct TFC principal the definition names, sorted.
func (d *Definition) TFCs() []string {
	set := map[string]bool{}
	if d.Policy.TFC != "" {
		set[d.Policy.TFC] = true
	}
	for _, a := range d.Policy.TFCAssigns {
		set[a.TFC] = true
	}
	out := make([]string, 0, len(set))
	for id := range set {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// ConditionVariables returns the set of variables referenced by any
// transition condition, sorted. In the advanced model the TFC must be a
// reader of each.
func (d *Definition) ConditionVariables() ([]string, error) {
	set := map[string]bool{}
	for _, t := range d.Transitions {
		if t.Condition == "" {
			continue
		}
		vars, err := expr.VariablesOf(t.Condition)
		if err != nil {
			return nil, fmt.Errorf("wfdef: transition %s: %w", t.ID, err)
		}
		for _, v := range vars {
			set[v] = true
		}
	}
	vars := make([]string, 0, len(set))
	for v := range set {
		vars = append(vars, v)
	}
	sort.Strings(vars)
	return vars, nil
}

// Validate checks the structural well-formedness of the definition. It
// verifies ID uniqueness, edge endpoints, split/join declarations against
// actual fan-out/fan-in, condition syntax, reachability of every activity
// from the start, co-reachability of the end, and security-policy
// consistency (rules name known variables; concealed flow requires a TFC
// that can read every condition variable).
func (d *Definition) Validate() error {
	if d.Name == "" {
		return errors.New("wfdef: definition has no name")
	}
	if d.Designer == "" {
		return errors.New("wfdef: definition has no designer")
	}
	if len(d.Activities) == 0 {
		return errors.New("wfdef: definition has no activities")
	}

	ids := map[string]bool{}
	for _, a := range d.Activities {
		if a.ID == "" || a.ID == StartID || a.ID == EndID {
			return fmt.Errorf("wfdef: invalid activity ID %q", a.ID)
		}
		if ids[a.ID] {
			return fmt.Errorf("wfdef: duplicate activity ID %q", a.ID)
		}
		ids[a.ID] = true
		if a.Participant == "" && a.Role == "" {
			return fmt.Errorf("wfdef: activity %s has neither a participant nor a role", a.ID)
		}
		seenResp := map[string]bool{}
		for _, r := range a.Responses {
			if r.Variable == "" {
				return fmt.Errorf("wfdef: activity %s has a response with no variable", a.ID)
			}
			if seenResp[r.Variable] {
				return fmt.Errorf("wfdef: activity %s declares response %q twice", a.ID, r.Variable)
			}
			seenResp[r.Variable] = true
		}
	}

	tids := map[string]bool{}
	for _, t := range d.Transitions {
		if t.ID == "" {
			return errors.New("wfdef: transition with empty ID")
		}
		if tids[t.ID] {
			return fmt.Errorf("wfdef: duplicate transition ID %q", t.ID)
		}
		tids[t.ID] = true
		if t.From != StartID && !ids[t.From] {
			return fmt.Errorf("wfdef: transition %s from unknown activity %q", t.ID, t.From)
		}
		if t.To != EndID && !ids[t.To] {
			return fmt.Errorf("wfdef: transition %s to unknown activity %q", t.ID, t.To)
		}
		if t.From == StartID && t.To == EndID {
			return fmt.Errorf("wfdef: transition %s connects start directly to end", t.ID)
		}
		if t.Condition != "" {
			if _, err := expr.Parse(t.Condition); err != nil {
				return fmt.Errorf("wfdef: transition %s condition: %w", t.ID, err)
			}
		}
	}

	if len(d.Outgoing(StartID)) == 0 {
		return errors.New("wfdef: no initial transition from start")
	}
	if len(d.Incoming(EndID)) == 0 {
		return errors.New("wfdef: no terminating transition to end")
	}

	// Split/join declarations must match fan-out/fan-in.
	for _, a := range d.Activities {
		out := d.Outgoing(a.ID)
		if len(out) == 0 {
			return fmt.Errorf("wfdef: activity %s has no outgoing transition", a.ID)
		}
		switch a.Split {
		case SplitNone:
			if len(out) > 1 {
				return fmt.Errorf("wfdef: activity %s has %d outgoing transitions but no split kind", a.ID, len(out))
			}
		case SplitAND:
			if len(out) < 2 {
				return fmt.Errorf("wfdef: activity %s declares AND-split with %d outgoing transition(s)", a.ID, len(out))
			}
			for _, t := range out {
				if t.Guarded() {
					return fmt.Errorf("wfdef: AND-split transition %s must be unconditional", t.ID)
				}
			}
		case SplitXOR:
			if len(out) < 2 {
				return fmt.Errorf("wfdef: activity %s declares XOR-split with %d outgoing transition(s)", a.ID, len(out))
			}
			defaults := 0
			for _, t := range out {
				if !t.Guarded() {
					defaults++
				}
			}
			if defaults > 1 {
				return fmt.Errorf("wfdef: XOR-split at %s has %d default (unconditional) branches", a.ID, defaults)
			}
		default:
			return fmt.Errorf("wfdef: activity %s has unknown split kind %q", a.ID, a.Split)
		}

		in := d.Incoming(a.ID)
		switch a.Join {
		case JoinNone:
			if len(in) > 1 {
				return fmt.Errorf("wfdef: activity %s has %d incoming transitions but no join kind", a.ID, len(in))
			}
		case JoinAND, JoinXOR:
			if len(in) < 2 {
				return fmt.Errorf("wfdef: activity %s declares %s-join with %d incoming transition(s)", a.ID, a.Join, len(in))
			}
		default:
			return fmt.Errorf("wfdef: activity %s has unknown join kind %q", a.ID, a.Join)
		}
	}

	// Reachability from start.
	reached := map[string]bool{}
	frontier := d.InitialActivities()
	for len(frontier) > 0 {
		next := frontier[:0:0]
		for _, id := range frontier {
			if id == EndID || reached[id] {
				continue
			}
			reached[id] = true
			for _, t := range d.Outgoing(id) {
				next = append(next, t.To)
			}
		}
		frontier = next
	}
	for id := range ids {
		if !reached[id] {
			return fmt.Errorf("wfdef: activity %s is unreachable from start", id)
		}
	}
	// Co-reachability of end (reverse BFS).
	coreached := map[string]bool{}
	rev := []string{}
	for _, t := range d.Incoming(EndID) {
		rev = append(rev, t.From)
	}
	for len(rev) > 0 {
		next := rev[:0:0]
		for _, id := range rev {
			if id == StartID || coreached[id] {
				continue
			}
			coreached[id] = true
			for _, t := range d.Incoming(id) {
				next = append(next, t.From)
			}
		}
		rev = next
	}
	for id := range ids {
		if !coreached[id] {
			return fmt.Errorf("wfdef: no path from activity %s to end", id)
		}
	}

	// Security policy sanity.
	known := map[string]bool{}
	for _, v := range d.Variables() {
		known[v] = true
	}
	ruleSeen := map[string]bool{}
	for _, r := range d.Policy.Rules {
		if !known[r.Variable] {
			return fmt.Errorf("wfdef: policy rule for unknown variable %q", r.Variable)
		}
		if ruleSeen[r.Variable] {
			return fmt.Errorf("wfdef: duplicate policy rule for variable %q", r.Variable)
		}
		ruleSeen[r.Variable] = true
		if len(r.Readers) == 0 {
			return fmt.Errorf("wfdef: policy rule for %q grants no readers", r.Variable)
		}
	}
	seenAssign := map[string]bool{}
	for _, a := range d.Policy.TFCAssigns {
		if !ids[a.Activity] {
			return fmt.Errorf("wfdef: TFC assignment for unknown activity %q", a.Activity)
		}
		if a.TFC == "" {
			return fmt.Errorf("wfdef: empty TFC in assignment for activity %q", a.Activity)
		}
		if seenAssign[a.Activity] {
			return fmt.Errorf("wfdef: duplicate TFC assignment for activity %q", a.Activity)
		}
		seenAssign[a.Activity] = true
	}
	if len(d.Policy.TFCAssigns) > 0 && d.Policy.TFC == "" {
		return errors.New("wfdef: per-activity TFC assignments require a default TFC")
	}
	if d.Policy.ConcealFlow {
		if d.Policy.TFC == "" {
			return errors.New("wfdef: concealed flow requires a TFC server")
		}
		condVars, err := d.ConditionVariables()
		if err != nil {
			return err
		}
		for _, v := range condVars {
			if !readableBy(d.Readers(v), TFCReader) {
				return fmt.Errorf("wfdef: concealed flow condition uses variable %q that the TFC cannot read (add %s to its readers)", v, TFCReader)
			}
		}
	}
	return nil
}

func readableBy(readers []string, id string) bool {
	for _, r := range readers {
		if r == id {
			return true
		}
	}
	return false
}

// --- XML serialization -------------------------------------------------------

// ToXML serializes the definition into the DRA4WfMS "workflow definition
// section" element.
func (d *Definition) ToXML() *xmltree.Node {
	root := xmltree.NewElement("WorkflowDefinition")
	root.SetAttr("Name", d.Name)
	root.SetAttr("Designer", d.Designer)

	acts := xmltree.NewElement("Activities")
	for _, a := range d.Activities {
		ae := xmltree.NewElement("Activity")
		ae.SetAttr("Id", a.ID)
		if a.Name != "" {
			ae.SetAttr("Name", a.Name)
		}
		ae.SetAttr("Participant", a.Participant)
		if a.Role != "" {
			ae.SetAttr("Role", a.Role)
		}
		if a.Split != SplitNone {
			ae.SetAttr("Split", string(a.Split))
		}
		if a.Join != JoinNone {
			ae.SetAttr("Join", string(a.Join))
		}
		for _, r := range a.Requests {
			ae.Elem("Request", "").SetAttr("Variable", r.Variable)
		}
		for _, r := range a.Responses {
			re := ae.Elem("Response", "")
			re.SetAttr("Variable", r.Variable)
			if r.Type != "" {
				re.SetAttr("Type", r.Type)
			}
			if r.Required {
				re.SetAttr("Required", "true")
			}
		}
		acts.AppendChild(ae)
	}
	root.AppendChild(acts)

	trans := xmltree.NewElement("Transitions")
	for _, t := range d.Transitions {
		te := xmltree.NewElement("Transition")
		te.SetAttr("Id", t.ID)
		te.SetAttr("From", t.From)
		te.SetAttr("To", t.To)
		if t.Condition != "" {
			te.SetAttr("Condition", t.Condition)
		}
		if t.Concealed {
			te.SetAttr("Concealed", "true")
		}
		trans.AppendChild(te)
	}
	root.AppendChild(trans)

	pol := xmltree.NewElement("SecurityPolicy")
	if d.Policy.ConcealFlow {
		pol.SetAttr("ConcealFlow", "true")
	}
	if d.Policy.TFC != "" {
		pol.SetAttr("TFC", d.Policy.TFC)
	}
	for _, a := range d.Policy.TFCAssigns {
		ae := pol.Elem("TFCAssign", "")
		ae.SetAttr("Activity", a.Activity)
		ae.SetAttr("TFC", a.TFC)
	}
	if len(d.Policy.DefaultReaders) > 0 {
		def := xmltree.NewElement("DefaultReaders")
		for _, r := range d.Policy.DefaultReaders {
			def.Elem("Reader", r)
		}
		pol.AppendChild(def)
	}
	for _, rule := range d.Policy.Rules {
		re := xmltree.NewElement("Rule")
		re.SetAttr("Variable", rule.Variable)
		for _, r := range rule.Readers {
			re.Elem("Reader", r)
		}
		pol.AppendChild(re)
	}
	root.AppendChild(pol)
	return root
}

// FromXML reconstructs a definition from its XML element. The result is
// not automatically validated; call Validate.
func FromXML(root *xmltree.Node) (*Definition, error) {
	if root == nil || root.Name != "WorkflowDefinition" {
		return nil, errors.New("wfdef: not a WorkflowDefinition element")
	}
	d := &Definition{
		Name:     root.AttrDefault("Name", ""),
		Designer: root.AttrDefault("Designer", ""),
	}
	if acts := root.Child("Activities"); acts != nil {
		for _, ae := range acts.ChildElements() {
			if ae.Name != "Activity" {
				return nil, fmt.Errorf("wfdef: unexpected element %s in Activities", ae.Name)
			}
			a := Activity{
				ID:          ae.AttrDefault("Id", ""),
				Name:        ae.AttrDefault("Name", ""),
				Participant: ae.AttrDefault("Participant", ""),
				Role:        ae.AttrDefault("Role", ""),
				Split:       SplitKind(ae.AttrDefault("Split", "")),
				Join:        JoinKind(ae.AttrDefault("Join", "")),
			}
			for _, c := range ae.ChildElements() {
				switch c.Name {
				case "Request":
					a.Requests = append(a.Requests, Request{Variable: c.AttrDefault("Variable", "")})
				case "Response":
					req, _ := strconv.ParseBool(c.AttrDefault("Required", "false"))
					a.Responses = append(a.Responses, Response{
						Variable: c.AttrDefault("Variable", ""),
						Type:     c.AttrDefault("Type", ""),
						Required: req,
					})
				default:
					return nil, fmt.Errorf("wfdef: unexpected element %s in Activity", c.Name)
				}
			}
			d.Activities = append(d.Activities, a)
		}
	}
	if trans := root.Child("Transitions"); trans != nil {
		for _, te := range trans.ChildElements() {
			if te.Name != "Transition" {
				return nil, fmt.Errorf("wfdef: unexpected element %s in Transitions", te.Name)
			}
			d.Transitions = append(d.Transitions, Transition{
				ID:        te.AttrDefault("Id", ""),
				From:      te.AttrDefault("From", ""),
				To:        te.AttrDefault("To", ""),
				Condition: te.AttrDefault("Condition", ""),
				Concealed: te.AttrDefault("Concealed", "") == "true",
			})
		}
	}
	if pol := root.Child("SecurityPolicy"); pol != nil {
		d.Policy.ConcealFlow = pol.AttrDefault("ConcealFlow", "") == "true"
		d.Policy.TFC = pol.AttrDefault("TFC", "")
		if def := pol.Child("DefaultReaders"); def != nil {
			for _, r := range def.ChildElements() {
				d.Policy.DefaultReaders = append(d.Policy.DefaultReaders, r.TextContent())
			}
		}
		for _, re := range pol.ChildElements() {
			switch re.Name {
			case "Rule":
				rule := ReadRule{Variable: re.AttrDefault("Variable", "")}
				for _, r := range re.ChildElements() {
					rule.Readers = append(rule.Readers, r.TextContent())
				}
				d.Policy.Rules = append(d.Policy.Rules, rule)
			case "TFCAssign":
				d.Policy.TFCAssigns = append(d.Policy.TFCAssigns, TFCAssign{
					Activity: re.AttrDefault("Activity", ""),
					TFC:      re.AttrDefault("TFC", ""),
				})
			}
		}
	}
	return d, nil
}

// Summary returns a one-line description of the definition for logs.
func (d *Definition) Summary() string {
	return fmt.Sprintf("%s (%d activities, %d transitions, designer %s)",
		d.Name, len(d.Activities), len(d.Transitions), d.Designer)
}

// ParticipantOf returns the participant assigned to the activity, or an
// error for unknown activities. Role-based activities (no fixed
// participant) return "" — use the activity's Role to find candidates.
func (d *Definition) ParticipantOf(activityID string) (string, error) {
	a := d.Activity(activityID)
	if a == nil {
		return "", fmt.Errorf("wfdef: unknown activity %q", activityID)
	}
	return a.Participant, nil
}

// String implements fmt.Stringer with a multi-line graph rendering, useful
// in CLI output and examples.
func (d *Definition) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "workflow %q by %s\n", d.Name, d.Designer)
	for _, a := range d.Activities {
		fmt.Fprintf(&b, "  [%s] %s (participant %s", a.ID, a.Name, a.Participant)
		if a.Split != SplitNone {
			fmt.Fprintf(&b, ", split %s", a.Split)
		}
		if a.Join != JoinNone {
			fmt.Fprintf(&b, ", join %s", a.Join)
		}
		b.WriteString(")\n")
	}
	for _, t := range d.Transitions {
		fmt.Fprintf(&b, "  %s -> %s", t.From, t.To)
		if t.Condition != "" {
			fmt.Fprintf(&b, " when %s", t.Condition)
		}
		if t.Concealed {
			b.WriteString(" when <concealed>")
		}
		b.WriteString("\n")
	}
	return b.String()
}
