package wfdef

import (
	"strings"
	"testing"

	"dra4wfms/internal/xmltree"
)

// linear returns a minimal valid two-activity sequence for mutation tests.
func linear() *Definition {
	return NewBuilder("linear", "designer@x").
		Activity("A1", "First", "alice").Response("v", "string", true).Done().
		Activity("A2", "Second", "bob").Request("v").Response("w", "string", false).Done().
		Start("A1").Edge("A1", "A2").End("A2").
		DefaultReaders("alice", "bob").
		MustBuild()
}

func TestLinearValid(t *testing.T) {
	d := linear()
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := d.InitialActivities(); len(got) != 1 || got[0] != "A1" {
		t.Fatalf("InitialActivities = %v", got)
	}
	if a := d.Activity("A2"); a == nil || a.Participant != "bob" {
		t.Fatalf("Activity(A2) = %+v", a)
	}
	if d.Activity("missing") != nil {
		t.Fatal("Activity(missing) != nil")
	}
	p, err := d.ParticipantOf("A1")
	if err != nil || p != "alice" {
		t.Fatalf("ParticipantOf = %q, %v", p, err)
	}
	if _, err := d.ParticipantOf("zz"); err == nil {
		t.Fatal("ParticipantOf(zz) succeeded")
	}
	if got := d.Variables(); strings.Join(got, ",") != "v,w" {
		t.Fatalf("Variables = %v", got)
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Definition)
	}{
		{"no name", func(d *Definition) { d.Name = "" }},
		{"no designer", func(d *Definition) { d.Designer = "" }},
		{"no activities", func(d *Definition) { d.Activities = nil }},
		{"reserved id", func(d *Definition) { d.Activities[0].ID = StartID }},
		{"duplicate id", func(d *Definition) { d.Activities[1].ID = "A1" }},
		{"no participant", func(d *Definition) { d.Activities[0].Participant = "" }},
		{"empty response var", func(d *Definition) { d.Activities[0].Responses[0].Variable = "" }},
		{"duplicate response", func(d *Definition) {
			d.Activities[0].Responses = append(d.Activities[0].Responses, Response{Variable: "v"})
		}},
		{"empty transition id", func(d *Definition) { d.Transitions[0].ID = "" }},
		{"duplicate transition id", func(d *Definition) { d.Transitions[1].ID = d.Transitions[0].ID }},
		{"unknown from", func(d *Definition) { d.Transitions[1].From = "nope" }},
		{"unknown to", func(d *Definition) { d.Transitions[1].To = "nope" }},
		{"bad condition", func(d *Definition) { d.Transitions[1].Condition = "((" }},
		{"no start", func(d *Definition) { d.Transitions[0].From = "A2"; d.Activities[0].Join = JoinAND }},
		{"unknown split kind", func(d *Definition) { d.Activities[0].Split = "WAT" }},
		{"unknown join kind", func(d *Definition) { d.Activities[0].Join = "WAT" }},
		{"policy unknown var", func(d *Definition) { d.Policy.Rules = []ReadRule{{Variable: "zz", Readers: []string{"x"}}} }},
		{"policy empty readers", func(d *Definition) { d.Policy.Rules = []ReadRule{{Variable: "v"}} }},
		{"policy duplicate rule", func(d *Definition) {
			d.Policy.Rules = []ReadRule{{Variable: "v", Readers: []string{"x"}}, {Variable: "v", Readers: []string{"y"}}}
		}},
		{"conceal without tfc", func(d *Definition) { d.Policy.ConcealFlow = true }},
	}
	for _, c := range cases {
		d := linear()
		c.mutate(d)
		if err := d.Validate(); err == nil {
			t.Errorf("%s: Validate succeeded, want error", c.name)
		}
	}
}

func TestValidateFanMismatch(t *testing.T) {
	// Two outgoing edges with no declared split.
	_, err := NewBuilder("w", "d").
		Activity("A", "", "p").Response("v", "", false).Done().
		Activity("B", "", "p").Done().
		Activity("C", "", "p").Done().
		Start("A").Edge("A", "B").Edge("A", "C").End("B", "C").
		Build()
	if err == nil || !strings.Contains(err.Error(), "split") {
		t.Fatalf("undeclared split accepted: %v", err)
	}

	// AND-split with a condition.
	_, err = NewBuilder("w", "d").
		Activity("A", "", "p").Split(SplitAND).Done().
		Activity("B", "", "p").Done().
		Activity("C", "", "p").Done().
		Start("A").EdgeIf("A", "B", "true").Edge("A", "C").End("B", "C").
		Build()
	if err == nil || !strings.Contains(err.Error(), "unconditional") {
		t.Fatalf("conditional AND-split accepted: %v", err)
	}

	// XOR-split with two default branches.
	_, err = NewBuilder("w", "d").
		Activity("A", "", "p").Split(SplitXOR).Done().
		Activity("B", "", "p").Done().
		Activity("C", "", "p").Done().
		Start("A").Edge("A", "B").Edge("A", "C").End("B", "C").
		Build()
	if err == nil || !strings.Contains(err.Error(), "default") {
		t.Fatalf("double-default XOR accepted: %v", err)
	}

	// Two incoming edges with no declared join.
	_, err = NewBuilder("w", "d").
		Activity("A", "", "p").Split(SplitAND).Done().
		Activity("B", "", "p").Done().
		Activity("C", "", "p").Done().
		Activity("D", "", "p").Done().
		Start("A").Edge("A", "B").Edge("A", "C").Edge("B", "D").Edge("C", "D").End("D").
		Build()
	if err == nil || !strings.Contains(err.Error(), "join") {
		t.Fatalf("undeclared join accepted: %v", err)
	}
}

func TestValidateReachability(t *testing.T) {
	// Unreachable activity.
	_, err := NewBuilder("w", "d").
		Activity("A", "", "p").Done().
		Activity("Z", "", "p").Done().
		Start("A").End("A").End("Z").
		Build()
	if err == nil || !strings.Contains(err.Error(), "unreachable") {
		t.Fatalf("unreachable activity accepted: %v", err)
	}

	// Activity that cannot reach the end.
	_, err = NewBuilder("w", "d").
		Activity("A", "", "p").Split(SplitAND).Done().
		Activity("B", "", "p").Done().
		Activity("T", "", "p").Join(JoinXOR).Done().
		Start("A").Edge("A", "B").Edge("A", "T").Edge("T", "T").End("B").
		Build()
	if err == nil || !strings.Contains(err.Error(), "to end") {
		t.Fatalf("trap state accepted: %v", err)
	}
}

func TestReaders(t *testing.T) {
	d := linear()
	d.Policy.Rules = []ReadRule{{Variable: "v", Readers: []string{"alice"}}}
	if got := d.Readers("v"); len(got) != 1 || got[0] != "alice" {
		t.Fatalf("Readers(v) = %v", got)
	}
	if got := d.Readers("w"); len(got) != 2 {
		t.Fatalf("Readers(w) = %v (want default)", got)
	}
}

func TestConditionVariables(t *testing.T) {
	d := Fig9A()
	vars, err := d.ConditionVariables()
	if err != nil {
		t.Fatal(err)
	}
	if len(vars) != 1 || vars[0] != "accept" {
		t.Fatalf("ConditionVariables = %v", vars)
	}
}

func TestConcealedFlowRequiresTFCReader(t *testing.T) {
	d := Fig4()
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	// Remove the TFC from X's readers: validation must fail because the
	// concealed condition X > 1000 becomes unevaluable.
	for i := range d.Policy.Rules {
		if d.Policy.Rules[i].Variable == "X" {
			d.Policy.Rules[i].Readers = []string{Fig4Participants.Amy}
		}
	}
	err := d.Validate()
	if err == nil || !strings.Contains(err.Error(), "TFC cannot read") {
		t.Fatalf("concealed condition without TFC reader accepted: %v", err)
	}
}

func TestFixturesValid(t *testing.T) {
	for _, d := range []*Definition{Fig9A(), Fig9B(), Fig4()} {
		if err := d.Validate(); err != nil {
			t.Errorf("%s: %v", d.Name, err)
		}
	}
	if Fig9B().Policy.TFC == "" {
		t.Error("Fig9B has no TFC")
	}
	if Fig9A().Policy.TFC != "" {
		t.Error("Fig9A unexpectedly names a TFC")
	}
	if !Fig4().Policy.ConcealFlow {
		t.Error("Fig4 does not conceal flow")
	}
}

func TestFig9Shape(t *testing.T) {
	d := Fig9A()
	if got := len(d.Activities); got != 5 {
		t.Fatalf("Fig9A activities = %d, want 5", got)
	}
	a := d.Activity("A")
	if a.Split != SplitAND || a.Join != JoinXOR {
		t.Fatalf("A split/join = %s/%s", a.Split, a.Join)
	}
	if d.Activity("C").Join != JoinAND {
		t.Fatal("C is not an AND-join")
	}
	if d.Activity("D").Split != SplitXOR {
		t.Fatal("D is not an XOR-split")
	}
	// The loop-back edge D -> A exists.
	loop := false
	for _, tr := range d.Outgoing("D") {
		if tr.To == "A" {
			loop = true
		}
	}
	if !loop {
		t.Fatal("no loop edge D->A")
	}
}

func TestXMLRoundTrip(t *testing.T) {
	for _, d := range []*Definition{linear(), Fig9A(), Fig9B(), Fig4()} {
		el := d.ToXML()
		// Serialize to bytes and back, as documents do.
		parsed, err := xmltree.ParseBytes(el.Canonical())
		if err != nil {
			t.Fatalf("%s: reparse: %v", d.Name, err)
		}
		back, err := FromXML(parsed)
		if err != nil {
			t.Fatalf("%s: FromXML: %v", d.Name, err)
		}
		if err := back.Validate(); err != nil {
			t.Fatalf("%s: round-tripped definition invalid: %v", d.Name, err)
		}
		if !xmltree.Equal(el, back.ToXML()) {
			t.Fatalf("%s: XML round trip not stable:\n%s\nvs\n%s", d.Name, el, back.ToXML())
		}
	}
}

func TestFromXMLErrors(t *testing.T) {
	if _, err := FromXML(nil); err == nil {
		t.Fatal("FromXML(nil) succeeded")
	}
	if _, err := FromXML(xmltree.NewElement("Wrong")); err == nil {
		t.Fatal("FromXML(wrong element) succeeded")
	}
	bad, _ := xmltree.ParseString(`<WorkflowDefinition><Activities><Junk/></Activities></WorkflowDefinition>`)
	if _, err := FromXML(bad); err == nil {
		t.Fatal("junk inside Activities accepted")
	}
	bad2, _ := xmltree.ParseString(`<WorkflowDefinition><Activities><Activity Id="A"><Junk/></Activity></Activities></WorkflowDefinition>`)
	if _, err := FromXML(bad2); err == nil {
		t.Fatal("junk inside Activity accepted")
	}
	bad3, _ := xmltree.ParseString(`<WorkflowDefinition><Transitions><Junk/></Transitions></WorkflowDefinition>`)
	if _, err := FromXML(bad3); err == nil {
		t.Fatal("junk inside Transitions accepted")
	}
}

func TestOutgoingIncoming(t *testing.T) {
	d := Fig9A()
	if got := len(d.Outgoing("A")); got != 2 {
		t.Fatalf("Outgoing(A) = %d", got)
	}
	if got := len(d.Incoming("C")); got != 2 {
		t.Fatalf("Incoming(C) = %d", got)
	}
	if got := len(d.Incoming("A")); got != 2 { // initial + loop-back
		t.Fatalf("Incoming(A) = %d", got)
	}
	if got := len(d.Incoming(EndID)); got != 1 {
		t.Fatalf("Incoming(end) = %d", got)
	}
}

func TestStringAndSummary(t *testing.T) {
	d := Fig9A()
	s := d.String()
	for _, want := range []string{"fig9-review", "[A]", "AND", "__start__ -> A", "when accept == true"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q:\n%s", want, s)
		}
	}
	if !strings.Contains(d.Summary(), "5 activities") {
		t.Errorf("Summary = %q", d.Summary())
	}
}

func TestBuilderStartEndDirect(t *testing.T) {
	// start -> end directly is rejected.
	_, err := NewBuilder("w", "d").
		Activity("A", "", "p").Done().
		Start("A").End("A").
		EdgeIf(StartID, EndID, "").
		Build()
	if err == nil {
		t.Fatal("start->end transition accepted")
	}
}

func TestDOTExport(t *testing.T) {
	d := Fig9A()
	dot := d.DOT()
	for _, want := range []string{
		"digraph \"fig9-review\"", "rankdir=LR", "__start__", "__end__",
		"AND-split", "AND-join", "XOR-split", "accept == true", "\"D\" -> \"A\"",
	} {
		if !strings.Contains(dot, want) {
			t.Fatalf("DOT missing %q:\n%s", want, dot)
		}
	}
	// Concealed edges render dashed without the predicate.
	c := Fig4()
	for i := range c.Transitions {
		if c.Transitions[i].Condition != "" {
			c.Transitions[i].Condition = ""
			c.Transitions[i].Concealed = true
		}
	}
	dot = c.DOT()
	if !strings.Contains(dot, "<concealed>") || strings.Contains(dot, "X > 1000") {
		t.Fatalf("concealed DOT leaks predicates:\n%s", dot)
	}
	// Role-based activity labels.
	r := NewBuilder("roled", "d@x").
		Activity("A", "Approve", "").Role("approver").Response("ok", "bool", true).Done().
		Start("A").End("A").DefaultReaders("x@y").MustBuild()
	if !strings.Contains(r.DOT(), "role:approver") {
		t.Fatal("role label missing in DOT")
	}
}

func TestTFCAssignValidationAndRoundTrip(t *testing.T) {
	d := Fig9B()
	d.Policy.TFCAssigns = []TFCAssign{{Activity: "C", TFC: "tfc2@cloud"}}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	// XML round trip preserves assignments.
	back, err := FromXML(d.ToXML())
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Policy.TFCAssigns) != 1 || back.TFCFor("C") != "tfc2@cloud" {
		t.Fatalf("round trip lost TFC assignment: %+v", back.Policy.TFCAssigns)
	}
	// Error cases.
	bad := Fig9B()
	bad.Policy.TFCAssigns = []TFCAssign{{Activity: "ZZ", TFC: "x"}}
	if err := bad.Validate(); err == nil {
		t.Fatal("unknown activity assignment accepted")
	}
	bad2 := Fig9B()
	bad2.Policy.TFCAssigns = []TFCAssign{{Activity: "C", TFC: ""}}
	if err := bad2.Validate(); err == nil {
		t.Fatal("empty TFC assignment accepted")
	}
	bad3 := Fig9B()
	bad3.Policy.TFCAssigns = []TFCAssign{{Activity: "C", TFC: "a"}, {Activity: "C", TFC: "b"}}
	if err := bad3.Validate(); err == nil {
		t.Fatal("duplicate assignment accepted")
	}
	bad4 := Fig9A() // no default TFC
	bad4.Policy.TFCAssigns = []TFCAssign{{Activity: "C", TFC: "a"}}
	if err := bad4.Validate(); err == nil {
		t.Fatal("assignments without default TFC accepted")
	}
}
