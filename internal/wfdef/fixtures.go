package wfdef

// This file holds the workflow definitions used in the paper's evaluation
// (Figure 9) and the flow-concealment scenario of Figure 4. They are the
// workloads behind Tables 1 and 2 and several examples and benchmarks.

// Fig9Participants maps the five activities of the Figure 9 workflow to
// default participant IDs. The paper does not name participants; we assign
// one principal per activity across two enterprises to make the workflow
// cross-enterprise.
var Fig9Participants = map[string]string{
	"A":  "alice@acme",
	"B1": "bob@acme",
	"B2": "betty@bolt",
	"C":  "carol@bolt",
	"D":  "dave@acme",
}

// Fig9A builds the paper's first experimental workflow (Figure 9A): five
// activities with sequence, AND-split/AND-join, and a loop —
//
//	start → A → (B1 ∥ B2) → C → D ─ accept ─→ end
//	                              └ attachment insufficient ─→ A (again)
//
// Activity A re-entry uses an XOR-join (either the initial edge or the
// loop-back edge enables it). Run under the basic operational model.
func Fig9A() *Definition {
	return fig9(false)
}

// Fig9B builds the paper's second experimental workflow (Figure 9B): the
// same process as Figure 9A but executed under the advanced operational
// model — every hop passes through a TFC server that timestamps, applies
// the policy encryption and forwards. The TFC principal is "tfc@cloud".
func Fig9B() *Definition {
	return fig9(true)
}

func fig9(advanced bool) *Definition {
	everyone := []string{
		Fig9Participants["A"], Fig9Participants["B1"], Fig9Participants["B2"],
		Fig9Participants["C"], Fig9Participants["D"],
	}
	b := NewBuilder("fig9-review", "designer@acme").
		Activity("A", "Prepare request", Fig9Participants["A"]).
		Response("request", "string", true).
		Response("attachment", "file", false).
		Split(SplitAND).Join(JoinXOR).Done().
		Activity("B1", "Technical review", Fig9Participants["B1"]).
		Request("request").
		Response("techReview", "string", true).Done().
		Activity("B2", "Budget review", Fig9Participants["B2"]).
		Request("request").
		Response("budgetReview", "string", true).Done().
		Activity("C", "Consolidate", Fig9Participants["C"]).
		Request("techReview").Request("budgetReview").
		Response("summary", "string", true).
		Join(JoinAND).Done().
		Activity("D", "Final decision", Fig9Participants["D"]).
		Request("summary").Request("attachment").
		Response("accept", "bool", true).
		Split(SplitXOR).Done().
		Start("A").
		Edge("A", "B1").
		Edge("A", "B2").
		Edge("B1", "C").
		Edge("B2", "C").
		Edge("C", "D").
		EndIf("D", `accept == true`).
		EdgeIf("D", "A", `accept != true`). // "attachment is insufficient"
		DefaultReaders(everyone...)
	if advanced {
		b = b.TFC("tfc@cloud").
			ReadRule("accept", append(append([]string{}, everyone...), TFCReader)...)
	} else {
		// In the basic model the deciding participant (and everyone, per the
		// default) can read the condition variable directly.
		_ = b
	}
	return b.MustBuild()
}

// LeaveRequest builds the quickstart example's three-step HR workflow:
// Emma files a leave request, her manager approves it, HR records the
// decision. The "reason" variable is personal and readable by the manager
// alone — HR records the outcome without ever holding a key for the
// reason, which the IFC lint proves cannot reach them.
func LeaveRequest() *Definition {
	return NewBuilder("leave-request", "designer@hr").
		Activity("request", "File leave request", "emma@eng").
		Response("days", "number", true).
		Response("reason", "string", true).Done().
		Activity("approve", "Manager approval", "manager@eng").
		Request("days").Request("reason").
		Response("approved", "bool", true).Done().
		Activity("record", "HR records the decision", "hr@corp").
		Request("days").Request("approved").
		Response("recorded", "bool", true).Done().
		Start("request").
		Edge("request", "approve").
		Edge("approve", "record").
		End("record").
		DefaultReaders("emma@eng", "manager@eng", "hr@corp").
		// The reason is personal: only the manager may read it.
		ReadRule("reason", "manager@eng").
		MustBuild()
}

// ExpenseApproval builds the expenseflow example's workflow: Emma files an
// expense with a binary receipt attachment, any principal holding the
// "approver" role claims the approval, and finance records the payout.
func ExpenseApproval() *Definition {
	return NewBuilder("expense-approval", "designer@corp").
		Activity("file", "File expense", "emma@eng").
		Response("amount", "number", true).
		Response("receipt", "file", true).Done().
		Activity("approve", "Approve expense", "").Role("approver").
		Request("amount").Request("receipt").
		Response("approved", "bool", true).Done().
		Activity("payout", "Record payout", "finance@corp").
		Request("amount").Request("approved").
		Response("paid", "bool", true).Done().
		Start("file").Edge("file", "approve").Edge("approve", "payout").End("payout").
		DefaultReaders("emma@eng", "mgr-north@corp", "mgr-south@corp", "finance@corp").
		MustBuild()
}

// Fig4Participants names the principals of the Figure 4 concealment
// scenario.
var Fig4Participants = struct {
	Peter, Tony, Amy, John, Mary string
}{"peter@p1", "tony@p2", "amy@p3", "john@p4", "mary@p5"}

// Fig4 builds the paper's Figure 4 scenario: Peter inputs X (readable only
// by Amy and the TFC), Tony inputs Y, and a concealed conditional branch on
// Func(X) routes either to John (A4) or Mary (A5). Tony cannot read X, so
// he can neither evaluate the branch nor encrypt Y for the right next
// reader — the advanced operational model with a TFC server is required.
// Amy's activity A3 forwards the document after the condition is resolved.
func Fig4() *Definition {
	p := Fig4Participants
	return NewBuilder("fig4-concealed", "designer@p0").
		Activity("A1", "Input X", p.Peter).
		Response("X", "number", true).Done().
		Activity("A2", "Input Y", p.Tony).
		Response("Y", "string", true).Done().
		Activity("A3", "Review", p.Amy).
		Request("X").
		Response("reviewed", "bool", true).
		Split(SplitXOR).Done().
		Activity("A4", "Handle high", p.John).
		Request("Y").
		Response("highResult", "string", true).Done().
		Activity("A5", "Handle low", p.Mary).
		Request("Y").
		Response("lowResult", "string", true).Done().
		Start("A1").
		Edge("A1", "A2").
		Edge("A2", "A3").
		EdgeIf("A3", "A4", `X > 1000`). // Func(X) = True
		EdgeIf("A3", "A5", `X <= 1000`).
		End("A4", "A5").
		ConcealFlow("tfc@cloud").
		// X: only Peter's successor reviewer Amy and the TFC may read it.
		ReadRule("X", p.Amy, TFCReader).
		// Y: confidential; John or Mary will need it, but which one is
		// decided by the concealed condition — so only the TFC can read it
		// in transit and re-encrypts for the chosen branch.
		ReadRule("Y", p.John, p.Mary, TFCReader).
		DefaultReaders(p.Peter, p.Tony, p.Amy, p.John, p.Mary).
		MustBuild()
}
