package wfdef_test

import (
	"fmt"

	"dra4wfms/internal/wfdef"
)

// The Builder assembles a validated definition; String renders the graph.
func ExampleBuilder() {
	def, err := wfdef.NewBuilder("order", "designer@acme").
		Activity("submit", "Submit order", "alice@acme").
		Response("amount", "number", true).
		Split(wfdef.SplitXOR).Done().
		Activity("review", "Manager review", "bob@acme").
		Request("amount").
		Response("ok", "bool", true).Done().
		Activity("auto", "Auto-approve", "bot@acme").
		Response("ok", "bool", true).Done().
		Start("submit").
		EdgeIf("submit", "review", "amount > 1000").
		Edge("submit", "auto").
		End("review", "auto").
		DefaultReaders("alice@acme", "bob@acme", "bot@acme").
		Build()
	if err != nil {
		panic(err)
	}
	fmt.Print(def)
	// Output:
	// workflow "order" by designer@acme
	//   [submit] Submit order (participant alice@acme, split XOR)
	//   [review] Manager review (participant bob@acme)
	//   [auto] Auto-approve (participant bot@acme)
	//   __start__ -> submit
	//   submit -> review when amount > 1000
	//   submit -> auto
	//   review -> __end__
	//   auto -> __end__
}
