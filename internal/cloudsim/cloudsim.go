// Package cloudsim is a discrete-event simulator for the cloud deployment
// experiments: it models network latency, message transfer, and
// single-server FIFO processing stations in virtual time, so scalability
// and denial-of-service scenarios run in microseconds of wall-clock time
// with deterministic results.
//
// The paper argues (Section 1) that engine-based WfMSs scale poorly — the
// engine is a shared bottleneck with a fixed address an attacker can
// flood — while the engine-less DRA4WfMS distributes activity execution
// across the participants' own machines with only the stateless TFC/portal
// tier in common. The comparative benchmarks encode both deployments on
// this simulator with per-operation service times measured from the real
// crypto code.
package cloudsim

import (
	"container/heap"
	"fmt"
	"sort"
	"time"
)

// event is one scheduled callback.
type event struct {
	at  time.Duration
	seq int64 // tie-break: FIFO among simultaneous events
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Sim is a discrete-event simulation clock and event queue. It is not safe
// for concurrent use: all model code runs inside event callbacks on one
// goroutine, as is conventional for DES.
type Sim struct {
	now    time.Duration
	seq    int64
	events eventHeap
}

// NewSim creates a simulation starting at virtual time zero.
func NewSim() *Sim { return &Sim{} }

// Now returns the current virtual time.
func (s *Sim) Now() time.Duration { return s.now }

// Schedule runs fn after delay of virtual time (negative delays clamp to
// "now"). Events scheduled for the same instant run in scheduling order.
func (s *Sim) Schedule(delay time.Duration, fn func()) {
	if delay < 0 {
		delay = 0
	}
	s.seq++
	heap.Push(&s.events, &event{at: s.now + delay, seq: s.seq, fn: fn})
}

// Run processes events until the queue drains and returns the final time.
func (s *Sim) Run() time.Duration {
	for s.events.Len() > 0 {
		e := heap.Pop(&s.events).(*event)
		s.now = e.at
		e.fn()
	}
	return s.now
}

// RunUntil processes events up to and including virtual time t, leaving
// later events queued, and advances the clock to t.
func (s *Sim) RunUntil(t time.Duration) {
	for s.events.Len() > 0 && s.events[0].at <= t {
		e := heap.Pop(&s.events).(*event)
		s.now = e.at
		e.fn()
	}
	if s.now < t {
		s.now = t
	}
}

// Pending returns the number of queued events.
func (s *Sim) Pending() int { return s.events.Len() }

// --- stations -----------------------------------------------------------------

// Station is a single-server FIFO processing queue (one CPU of a workflow
// engine, TFC server, portal, or participant machine). Jobs submitted
// while the server is busy wait in order.
type Station struct {
	// ID names the station in results.
	ID string

	sim       *Sim
	busyUntil time.Duration

	completed    int
	totalWait    time.Duration
	totalService time.Duration
	maxQueueTime time.Duration
}

// NewStation attaches a station to a simulation.
func NewStation(sim *Sim, id string) *Station {
	return &Station{ID: id, sim: sim}
}

// Submit enqueues a job requiring the given service time; done (optional)
// runs at completion with the finish instant.
func (st *Station) Submit(service time.Duration, done func(finish time.Duration)) {
	if service < 0 {
		service = 0
	}
	now := st.sim.Now()
	start := now
	if st.busyUntil > start {
		start = st.busyUntil
	}
	finish := start + service
	st.busyUntil = finish
	wait := start - now
	st.totalWait += wait
	st.totalService += service
	if wait > st.maxQueueTime {
		st.maxQueueTime = wait
	}
	st.completed++
	if done != nil {
		st.sim.Schedule(finish-now, func() { done(finish) })
	}
}

// Completed returns how many jobs the station accepted.
func (st *Station) Completed() int { return st.completed }

// MeanWait returns the average queueing delay across accepted jobs.
func (st *Station) MeanWait() time.Duration {
	if st.completed == 0 {
		return 0
	}
	return st.totalWait / time.Duration(st.completed)
}

// MaxWait returns the worst queueing delay seen.
func (st *Station) MaxWait() time.Duration { return st.maxQueueTime }

// Utilization returns the busy fraction of the station over [0, horizon].
func (st *Station) Utilization(horizon time.Duration) float64 {
	if horizon <= 0 {
		return 0
	}
	busy := st.totalService
	if busy > horizon {
		busy = horizon
	}
	return float64(busy) / float64(horizon)
}

// BusyUntil returns the instant the station drains its current queue.
func (st *Station) BusyUntil() time.Duration { return st.busyUntil }

// --- network ------------------------------------------------------------------

// Network models point-to-point message delivery with per-pair latency and
// a shared per-link bandwidth.
type Network struct {
	sim *Sim
	// Latency returns the propagation delay between two nodes; nil means
	// a uniform DefaultLatency.
	Latency func(from, to string) time.Duration
	// DefaultLatency applies when Latency is nil.
	DefaultLatency time.Duration
	// BytesPerSecond is the link bandwidth (0 = infinite).
	BytesPerSecond int64

	messages int
	volume   int64
}

// NewNetwork attaches a network to a simulation with a uniform latency.
func NewNetwork(sim *Sim, latency time.Duration, bytesPerSecond int64) *Network {
	return &Network{sim: sim, DefaultLatency: latency, BytesPerSecond: bytesPerSecond}
}

// Send schedules delivery of size bytes from one node to another; deliver
// runs at the arrival instant.
func (n *Network) Send(from, to string, size int, deliver func()) {
	lat := n.DefaultLatency
	if n.Latency != nil {
		lat = n.Latency(from, to)
	}
	transfer := time.Duration(0)
	if n.BytesPerSecond > 0 {
		transfer = time.Duration(int64(size) * int64(time.Second) / n.BytesPerSecond)
	}
	n.messages++
	n.volume += int64(size)
	n.sim.Schedule(lat+transfer, deliver)
}

// Messages returns the number of messages sent.
func (n *Network) Messages() int { return n.messages }

// Volume returns the total bytes sent.
func (n *Network) Volume() int64 { return n.volume }

// --- result helpers -------------------------------------------------------------

// Percentile returns the p-th percentile (0..100) of the samples.
func Percentile(samples []time.Duration, p float64) time.Duration {
	if len(samples) == 0 {
		return 0
	}
	sorted := make([]time.Duration, len(samples))
	copy(sorted, samples)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	idx := int(p / 100 * float64(len(sorted)-1))
	return sorted[idx]
}

// Mean returns the arithmetic mean of the samples.
func Mean(samples []time.Duration) time.Duration {
	if len(samples) == 0 {
		return 0
	}
	var sum time.Duration
	for _, s := range samples {
		sum += s
	}
	return sum / time.Duration(len(samples))
}

// FormatLoadLine renders one load-sweep result row for harness output.
func FormatLoadLine(label string, load int, mean, p99, makespan time.Duration) string {
	return fmt.Sprintf("%-22s load=%5d  mean=%12v  p99=%12v  makespan=%12v",
		label, load, mean.Round(time.Microsecond), p99.Round(time.Microsecond), makespan.Round(time.Microsecond))
}
