package cloudsim

import (
	"testing"
	"time"
)

func TestEventOrdering(t *testing.T) {
	s := NewSim()
	var order []int
	s.Schedule(3*time.Second, func() { order = append(order, 3) })
	s.Schedule(1*time.Second, func() { order = append(order, 1) })
	s.Schedule(2*time.Second, func() {
		order = append(order, 2)
		// Nested scheduling.
		s.Schedule(500*time.Millisecond, func() { order = append(order, 25) })
	})
	end := s.Run()
	want := []int{1, 2, 25, 3}
	if len(order) != len(want) {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if end != 3*time.Second {
		t.Fatalf("end = %v", end)
	}
}

func TestSimultaneousEventsFIFO(t *testing.T) {
	s := NewSim()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.Schedule(time.Second, func() { order = append(order, i) })
	}
	s.Run()
	for i := range order {
		if order[i] != i {
			t.Fatalf("simultaneous events out of order: %v", order)
		}
	}
}

func TestNegativeDelayClamps(t *testing.T) {
	s := NewSim()
	ran := false
	s.Schedule(-5*time.Second, func() { ran = true })
	if end := s.Run(); end != 0 || !ran {
		t.Fatalf("end = %v ran = %v", end, ran)
	}
}

func TestRunUntil(t *testing.T) {
	s := NewSim()
	var fired []time.Duration
	for _, d := range []time.Duration{1 * time.Second, 2 * time.Second, 3 * time.Second} {
		d := d
		s.Schedule(d, func() { fired = append(fired, d) })
	}
	s.RunUntil(2 * time.Second)
	if len(fired) != 2 || s.Now() != 2*time.Second || s.Pending() != 1 {
		t.Fatalf("fired=%v now=%v pending=%d", fired, s.Now(), s.Pending())
	}
	s.RunUntil(10 * time.Second)
	if len(fired) != 3 || s.Now() != 10*time.Second {
		t.Fatalf("fired=%v now=%v", fired, s.Now())
	}
}

func TestStationFIFOQueueing(t *testing.T) {
	// Three jobs arriving at t=0 with 2s service: waits 0, 2, 4; finishes
	// at 2, 4, 6.
	s := NewSim()
	st := NewStation(s, "engine")
	var finishes []time.Duration
	for i := 0; i < 3; i++ {
		st.Submit(2*time.Second, func(f time.Duration) { finishes = append(finishes, f) })
	}
	s.Run()
	want := []time.Duration{2 * time.Second, 4 * time.Second, 6 * time.Second}
	for i := range want {
		if finishes[i] != want[i] {
			t.Fatalf("finishes = %v", finishes)
		}
	}
	if st.Completed() != 3 {
		t.Fatalf("completed = %d", st.Completed())
	}
	if st.MeanWait() != 2*time.Second { // (0+2+4)/3
		t.Fatalf("mean wait = %v", st.MeanWait())
	}
	if st.MaxWait() != 4*time.Second {
		t.Fatalf("max wait = %v", st.MaxWait())
	}
	if u := st.Utilization(6 * time.Second); u != 1.0 {
		t.Fatalf("utilization = %v", u)
	}
	if u := st.Utilization(12 * time.Second); u != 0.5 {
		t.Fatalf("utilization = %v", u)
	}
}

func TestStationIdleGaps(t *testing.T) {
	// Job at t=0 (1s) and job at t=5 (1s): no queueing for the second.
	s := NewSim()
	st := NewStation(s, "x")
	st.Submit(time.Second, nil)
	s.Schedule(5*time.Second, func() {
		st.Submit(time.Second, func(f time.Duration) {
			if f != 6*time.Second {
				t.Errorf("finish = %v, want 6s", f)
			}
		})
	})
	s.Run()
	if st.MeanWait() != 0 {
		t.Fatalf("mean wait = %v", st.MeanWait())
	}
}

func TestStationSaturationGrowsLinearly(t *testing.T) {
	// The bottleneck behaviour the DoS/scalability benches rely on: with
	// arrivals faster than service, the k-th job's wait grows linearly.
	s := NewSim()
	st := NewStation(s, "engine")
	var waits []time.Duration
	for i := 0; i < 100; i++ {
		i := i
		s.Schedule(time.Duration(i)*time.Millisecond, func() {
			submitted := s.Now()
			st.Submit(10*time.Millisecond, func(f time.Duration) {
				waits = append(waits, f-submitted-10*time.Millisecond)
			})
		})
	}
	s.Run()
	if len(waits) != 100 {
		t.Fatalf("waits = %d", len(waits))
	}
	// Wait of job k ≈ k * 9ms.
	if waits[0] != 0 {
		t.Fatalf("first wait = %v", waits[0])
	}
	if waits[99] != 99*9*time.Millisecond {
		t.Fatalf("last wait = %v, want %v", waits[99], 99*9*time.Millisecond)
	}
}

func TestNetworkDelivery(t *testing.T) {
	s := NewSim()
	n := NewNetwork(s, 10*time.Millisecond, 1000) // 1000 B/s
	var at time.Duration
	n.Send("a", "b", 500, func() { at = s.Now() })
	s.Run()
	// 10ms latency + 500B/1000Bps = 510ms.
	if at != 510*time.Millisecond {
		t.Fatalf("delivery at %v", at)
	}
	if n.Messages() != 1 || n.Volume() != 500 {
		t.Fatalf("messages=%d volume=%d", n.Messages(), n.Volume())
	}
}

func TestNetworkCustomLatency(t *testing.T) {
	s := NewSim()
	n := NewNetwork(s, 0, 0)
	n.Latency = func(from, to string) time.Duration {
		if from == "tw" && to == "us" {
			return 150 * time.Millisecond
		}
		return time.Millisecond
	}
	var far, near time.Duration
	n.Send("tw", "us", 1, func() { far = s.Now() })
	n.Send("tw", "tw2", 1, func() { near = s.Now() })
	s.Run()
	if far != 150*time.Millisecond || near != time.Millisecond {
		t.Fatalf("far=%v near=%v", far, near)
	}
}

func TestPercentileAndMean(t *testing.T) {
	samples := []time.Duration{5, 1, 3, 2, 4} // ns
	if got := Percentile(samples, 0); got != 1 {
		t.Fatalf("p0 = %v", got)
	}
	if got := Percentile(samples, 100); got != 5 {
		t.Fatalf("p100 = %v", got)
	}
	if got := Percentile(samples, 50); got != 3 {
		t.Fatalf("p50 = %v", got)
	}
	if got := Mean(samples); got != 3 {
		t.Fatalf("mean = %v", got)
	}
	if Percentile(nil, 50) != 0 || Mean(nil) != 0 {
		t.Fatal("empty samples not handled")
	}
	// Percentile must not mutate its input.
	if samples[0] != 5 {
		t.Fatal("Percentile sorted the caller's slice")
	}
}

func TestFormatLoadLine(t *testing.T) {
	line := FormatLoadLine("centralized", 100, time.Millisecond, 2*time.Millisecond, time.Second)
	for _, want := range []string{"centralized", "load=  100", "mean=", "p99=", "makespan="} {
		if !contains(line, want) {
			t.Fatalf("line %q missing %q", line, want)
		}
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (func() bool {
		for i := 0; i+len(sub) <= len(s); i++ {
			if s[i:i+len(sub)] == sub {
				return true
			}
		}
		return false
	})()
}
