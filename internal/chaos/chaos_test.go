package chaos

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"dra4wfms/internal/pool"
	"dra4wfms/internal/poolcluster"
)

// Two networks with the same seed and the same fault profile must judge
// an identical verdict sequence — the property every scenario replay
// rests on.
func TestDeterministicReplay(t *testing.T) {
	mk := func() *Network {
		n := NewNetwork(42)
		n.SetDefault(LinkFaults{Drop: 0.3, Dup: 0.2, Corrupt: 0.1, Latency: time.Millisecond, Jitter: 3 * time.Millisecond})
		return n
	}
	a, b := mk(), mk()
	for i := 0; i < 500; i++ {
		va, vb := a.Judge("x", "y"), b.Judge("x", "y")
		if va != vb {
			t.Fatalf("verdict %d diverged: %+v vs %+v", i, va, vb)
		}
	}
}

func TestCutsAndIsolation(t *testing.T) {
	n := NewNetwork(1)
	if v := n.Judge("a", "b"); v.Drop {
		t.Fatal("fault-free network dropped a hop")
	}
	n.Cut("a", "b")
	if v := n.Judge("a", "b"); !v.Drop {
		t.Fatal("cut link did not drop")
	}
	if v := n.Judge("b", "a"); v.Drop {
		t.Fatal("asymmetric cut severed the reverse direction")
	}
	n.Heal("a", "b")
	if v := n.Judge("a", "b"); v.Drop {
		t.Fatal("healed link still drops")
	}

	n.Isolate("c")
	if !n.InboundCut("c") {
		t.Fatal("isolated node reports inbound open")
	}
	for _, pair := range [][2]string{{"a", "c"}, {"c", "a"}, {"c", "b"}} {
		if v := n.Judge(pair[0], pair[1]); !v.Drop {
			t.Fatalf("isolation left %s → %s up", pair[0], pair[1])
		}
	}
	if v := n.Judge("a", "b"); v.Drop {
		t.Fatal("isolating c partitioned a → b")
	}
	n.HealNode("c")
	if n.InboundCut("c") || n.Judge("a", "c").Drop {
		t.Fatal("HealNode did not restore the isolated node")
	}

	n.Crash("d")
	if v := n.Judge("a", "d"); !v.Drop {
		t.Fatal("crashed node still reachable")
	}
	n.Restart("d")
	if v := n.Judge("a", "d"); v.Drop {
		t.Fatal("restarted node unreachable")
	}
}

func TestLinkFaultPrecedence(t *testing.T) {
	n := NewNetwork(7)
	n.SetDefault(LinkFaults{Drop: 1})
	n.SetLink("a", Wildcard, LinkFaults{})
	if v := n.Judge("a", "anyone"); v.Drop {
		t.Fatal("(src, *) override not applied")
	}
	n.SetLink("a", "b", LinkFaults{Drop: 1})
	if v := n.Judge("a", "b"); !v.Drop {
		t.Fatal("exact link override not preferred over wildcard")
	}
	if v := n.Judge("c", "d"); !v.Drop {
		t.Fatal("default profile not applied")
	}
}

func TestRoundTripperDropDupCorrupt(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		io.Copy(io.Discard, r.Body)
		w.Write([]byte("payload-abcdefgh"))
	}))
	defer srv.Close()

	n := NewNetwork(3)
	resolve := func(*http.Request) string { return "srv" }
	client := &http.Client{Transport: n.RoundTripper("cli", resolve, nil)}

	// Clean hop.
	resp, err := client.Get(srv.URL)
	if err != nil {
		t.Fatalf("clean hop: %v", err)
	}
	resp.Body.Close()

	// Drop: transport error, server never sees it.
	n.SetLink("cli", "srv", LinkFaults{Drop: 1})
	before := hits.Load()
	if _, err := client.Get(srv.URL); err == nil {
		t.Fatal("dropped hop returned no error")
	} else if !Injected(errors.Unwrap(err)) && !strings.Contains(err.Error(), "chaos") {
		t.Fatalf("drop error does not identify chaos: %v", err)
	}
	if hits.Load() != before {
		t.Fatal("dropped request reached the server")
	}

	// Dup: server sees the request twice, client sees one response.
	n.SetLink("cli", "srv", LinkFaults{Dup: 1})
	before = hits.Load()
	req, _ := http.NewRequest(http.MethodPost, srv.URL, bytes.NewReader([]byte("body")))
	resp, err = client.Do(req)
	if err != nil {
		t.Fatalf("dup hop: %v", err)
	}
	resp.Body.Close()
	if got := hits.Load() - before; got != 2 {
		t.Fatalf("dup hop hit the server %d times, want 2", got)
	}

	// Corrupt: the body differs from what the server sent.
	n.SetLink("cli", "srv", LinkFaults{Corrupt: 1})
	resp, err = client.Get(srv.URL)
	if err != nil {
		t.Fatalf("corrupt hop: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if bytes.Equal(body, []byte("payload-abcdefgh")) {
		t.Fatal("corrupt verdict delivered an intact body")
	}
	if len(body) != len("payload-abcdefgh") {
		t.Fatalf("corruption changed the length: %d", len(body))
	}
}

func TestRoundTripperDelayHonorsContext(t *testing.T) {
	n := NewNetwork(5)
	n.SetDefault(LinkFaults{Latency: time.Hour})
	rt := n.RoundTripper("cli", nil, http.DefaultTransport)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, "http://127.0.0.1:0/", nil)
	start := time.Now()
	if _, err := rt.RoundTrip(req); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expected deadline error, got %v", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("delay ignored the context deadline")
	}
}

func TestWrapListenerCrashRestart(t *testing.T) {
	n := NewNetwork(9)
	base := httptest.NewUnstartedServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok"))
	}))
	base.Listener = n.WrapListener("node", base.Listener)
	base.Start()
	defer base.Close()

	if _, err := http.Get(base.URL); err != nil {
		t.Fatalf("healthy node refused: %v", err)
	}
	n.Crash("node")
	client := &http.Client{Timeout: 2 * time.Second}
	if _, err := client.Get(base.URL); err == nil {
		t.Fatal("crashed node served a request")
	}
	n.Restart("node")
	resp, err := http.Get(base.URL)
	if err != nil {
		t.Fatalf("restarted node refused: %v", err)
	}
	resp.Body.Close()
}

func TestGateAndAdminHandler(t *testing.T) {
	n := NewNetwork(11)
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/work", func(w http.ResponseWriter, r *http.Request) { w.Write([]byte("ok")) })
	mux.HandleFunc(AdminPath, n.Handler())
	srv := httptest.NewServer(n.Gate("node", mux))
	defer srv.Close()

	get := func(path string) int {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}
	post := func(body string) int {
		resp, err := http.Post(srv.URL+AdminPath, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatalf("POST chaos: %v", err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}

	if got := get("/v1/work"); got != http.StatusOK {
		t.Fatalf("open gate returned %d", got)
	}
	if got := post(`{"action":"isolate","node":"node"}`); got != http.StatusOK {
		t.Fatalf("isolate directive returned %d", got)
	}
	if got := get("/v1/work"); got != http.StatusServiceUnavailable {
		t.Fatalf("partitioned gate returned %d, want 503", got)
	}
	// The control plane must stay reachable through the partition.
	if got := get(AdminPath); got != http.StatusOK {
		t.Fatalf("admin endpoint gated: %d", got)
	}
	if got := post(`{"action":"heal_node","node":"node"}`); got != http.StatusOK {
		t.Fatalf("heal directive returned %d", got)
	}
	if got := get("/v1/work"); got != http.StatusOK {
		t.Fatalf("healed gate returned %d", got)
	}
	if got := post(`{"action":"warp","node":"node"}`); got != http.StatusBadRequest {
		t.Fatalf("unknown action returned %d, want 400", got)
	}
}

func TestNodeRefPartitionAndDedup(t *testing.T) {
	cl, err := pool.NewCluster([]string{"n1"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := cl.CreateTable("t", pool.FamilySpec{Name: "doc", MaxVersions: 3})
	if err != nil {
		t.Fatal(err)
	}
	node := poolcluster.NewNode("n1", tbl)

	n := NewNetwork(13)
	ref := n.NodeRef("coord", node)

	frame, err := pool.EncodeMutationFrame(1, pool.Mutation{KV: pool.KeyValue{
		Row: "r", Family: "doc", Qualifier: "q",
		Cell: pool.Cell{Value: []byte("v"), Version: 1},
	}})
	if err != nil {
		t.Fatal(err)
	}
	rec := poolcluster.Record{Region: "region-0001", Seq: 1, Frame: frame}

	// Duplicate delivery must be absorbed by the node's seq dedup.
	n.SetLink("coord", "n1", LinkFaults{Dup: 1})
	if err := ref.Apply(context.Background(), rec); err != nil {
		t.Fatalf("dup apply: %v", err)
	}
	if seq, _ := node.AppliedSeq("region-0001"); seq != 1 {
		t.Fatalf("applied seq %d after dup delivery, want 1", seq)
	}

	// Partition: every call fails with ErrNodeDown so the coordinator's
	// failover path fires exactly as for a dead process.
	n.Isolate("n1")
	if err := ref.Apply(context.Background(), rec); !errors.Is(err, poolcluster.ErrNodeDown) {
		t.Fatalf("partitioned apply error %v, want ErrNodeDown", err)
	}
	if _, err := ref.Status(); !errors.Is(err, poolcluster.ErrNodeDown) {
		t.Fatalf("partitioned status error %v, want ErrNodeDown", err)
	}
	n.HealNode("n1")
	if _, err := ref.Status(); err != nil {
		t.Fatalf("healed status: %v", err)
	}
}
