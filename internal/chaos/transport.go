package chaos

import (
	"bytes"
	"io"
	"net/http"
	"time"
)

// RoundTripper wraps an http.RoundTripper with the network's fault
// model. src names the sending node; resolve maps each outgoing request
// to the destination node's name (typically by host:port). A nil base
// falls back to http.DefaultTransport.
//
// Judged faults surface exactly like the real thing: drops become
// transport errors (the sender cannot tell a chaos drop from a refused
// connection), duplicates re-send the request before returning the
// second response (exercising receiver idempotency), corruption flips a
// byte of the response body in flight, and delays are ctx-aware sleeps
// charged before the request leaves.
func (n *Network) RoundTripper(src string, resolve func(*http.Request) string, base http.RoundTripper) http.RoundTripper {
	if base == nil {
		base = http.DefaultTransport
	}
	return &roundTripper{net: n, src: src, resolve: resolve, base: base}
}

type roundTripper struct {
	net     *Network
	src     string
	resolve func(*http.Request) string
	base    http.RoundTripper
}

func (t *roundTripper) RoundTrip(req *http.Request) (*http.Response, error) {
	dst := Wildcard
	if t.resolve != nil {
		dst = t.resolve(req)
	}
	v := t.net.Judge(t.src, dst)
	if v.Delay > 0 {
		timer := time.NewTimer(v.Delay)
		select {
		case <-req.Context().Done():
			timer.Stop()
			return nil, req.Context().Err()
		case <-timer.C:
		}
	}
	if v.Drop {
		return nil, injectedf("dropped %s %s → %s", req.Method, t.src, dst)
	}
	if v.Dup && req.GetBody != nil {
		// First delivery: send a clone, discard its response, then let
		// the real send proceed. The receiver sees the request twice —
		// its idempotency layer must make that invisible.
		dup := req.Clone(req.Context())
		body, err := req.GetBody()
		if err == nil {
			dup.Body = body
			if resp, err := t.base.RoundTrip(dup); err == nil {
				io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
				resp.Body.Close()
			}
			if fresh, err := req.GetBody(); err == nil {
				req.Body = fresh
			}
		}
	}
	resp, err := t.base.RoundTrip(req)
	if err != nil || !v.Corrupt {
		return resp, err
	}
	// Corrupt the response in flight: read it fully (responses on these
	// internal hops are bounded), flip one byte, hand back the damaged
	// copy. Signature and CRC layers downstream must catch this.
	raw, rerr := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
	resp.Body.Close()
	if rerr != nil {
		return nil, rerr
	}
	if len(raw) > 0 {
		raw[t.net.CorruptIndex(len(raw))] ^= 0x40
	}
	resp.Body = io.NopCloser(bytes.NewReader(raw))
	resp.ContentLength = int64(len(raw))
	return resp, nil
}
