package chaos

import (
	"net"
	"time"
)

// WrapListener imposes the node's crash and slow-node state on a real
// net.Listener. While the node is crashed, accepted connections are
// closed immediately — to clients this is indistinguishable from a dead
// process (connection reset), and unlike closing the listener the
// crash is reversible with Restart. While the node is slow, each
// accepted connection delays its first read by the configured amount.
//
// Partitions are deliberately NOT enforced here: the same listener also
// serves the /v1/chaos admin endpoint, and a listener-level cut would
// sever the control plane that heals it. Inbound partitions are
// enforced by Gate at the handler layer instead.
func (n *Network) WrapListener(node string, ln net.Listener) net.Listener {
	return &listener{Listener: ln, net: n, node: node}
}

type listener struct {
	net.Listener
	net  *Network
	node string
}

func (l *listener) Accept() (net.Conn, error) {
	for {
		c, err := l.Listener.Accept()
		if err != nil {
			return nil, err
		}
		if l.net.Down(l.node) {
			c.Close()
			continue
		}
		if d := l.net.NodeDelay(l.node); d > 0 {
			return &slowConn{Conn: c, delay: d}, nil
		}
		return c, nil
	}
}

// slowConn delays the first Read on the connection, modelling a node
// whose accept queue drains but whose service loop is starved.
type slowConn struct {
	net.Conn
	delay   time.Duration
	delayed bool
}

func (c *slowConn) Read(p []byte) (int, error) {
	if !c.delayed {
		c.delayed = true
		time.Sleep(c.delay)
	}
	return c.Conn.Read(p)
}
