// Package chaos is the deterministic fault-injection layer for the
// DRA4WfMS cluster. It models the network between named nodes as a
// shared Network: every hop (src → dst) is judged against a fault
// profile — latency, drops, duplicates, byte corruption — plus an N×N
// reachability matrix for asymmetric partitions, per-node slowness, and
// whole-node crash/restart. The same Network drives three injection
// points so in-process benches and real daemons share one fault model:
//
//   - RoundTripper wraps an http.RoundTripper (client side);
//   - WrapListener wraps a net.Listener (server side: crash + slow);
//   - Gate wraps an http.Handler (server side: inbound partitions);
//   - NodeRef wraps a poolcluster.NodeRef (in-process clusters).
//
// Everything is driven by one seeded PRNG under the Network's mutex, so
// a scenario replays byte-identically for the same seed and the package
// stays clean under the nondeterminism lint: no time-seeded randomness,
// no clock reads feeding decisions.
package chaos

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"
)

// Wildcard matches any node on one side of a link ("*" → dst, src → "*").
const Wildcard = "*"

// LinkFaults is the fault profile of one directed link. Probabilities
// are in [0, 1]; Latency is the base one-way delay and Jitter an extra
// uniform random amount on top.
type LinkFaults struct {
	// Drop is the probability the message is lost (the sender sees a
	// transport error, exactly like a timed-out or refused connection).
	Drop float64 `json:"drop,omitempty"`
	// Dup is the probability the message is delivered twice.
	Dup float64 `json:"dup,omitempty"`
	// Corrupt is the probability the payload is bit-flipped in flight.
	Corrupt float64 `json:"corrupt,omitempty"`
	// Latency is the base injected one-way delay.
	Latency time.Duration `json:"latency,omitempty"`
	// Jitter adds a uniform random delay in [0, Jitter).
	Jitter time.Duration `json:"jitter,omitempty"`
}

// Verdict is one judged hop: what the fault layer decided to do to this
// particular message.
type Verdict struct {
	// Drop: the message must not be delivered; the sender sees an error.
	Drop bool
	// Dup: deliver the message twice (exercises idempotency/dedup).
	Dup bool
	// Corrupt: flip a byte of the payload in flight.
	Corrupt bool
	// Delay: sleep this long before delivering.
	Delay time.Duration
}

// linkKey identifies one directed link.
type linkKey struct{ src, dst string }

// Network is the shared fault model. All methods are safe for
// concurrent use; the zero value is not usable — construct with
// NewNetwork.
type Network struct {
	mu  sync.Mutex
	rng *rand.Rand

	def   LinkFaults
	links map[linkKey]LinkFaults
	// cut is the reachability matrix: a true entry severs the directed
	// link. Wildcard entries sever whole rows/columns (Isolate).
	cut  map[linkKey]bool
	down map[string]bool
	slow map[string]time.Duration
}

// NewNetwork builds a fault-free network driven by the given seed. The
// same seed and the same sequence of judged hops replay identically.
func NewNetwork(seed int64) *Network {
	return &Network{
		rng:   rand.New(rand.NewSource(seed)),
		links: make(map[linkKey]LinkFaults),
		cut:   make(map[linkKey]bool),
		down:  make(map[string]bool),
		slow:  make(map[string]time.Duration),
	}
}

// SetDefault sets the fault profile applied to links with no specific
// override.
func (n *Network) SetDefault(f LinkFaults) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.def = f
}

// SetLink overrides the fault profile of one directed link. Either side
// may be Wildcard; lookup precedence is exact, (src, *), (*, dst), then
// the default profile.
func (n *Network) SetLink(src, dst string, f LinkFaults) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.links[linkKey{src, dst}] = f
}

// ClearLink removes a per-link override.
func (n *Network) ClearLink(src, dst string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.links, linkKey{src, dst})
}

// Cut severs the directed link src → dst (asymmetric partition: dst may
// still reach src unless the reverse is cut too).
func (n *Network) Cut(src, dst string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.cut[linkKey{src, dst}] = true
}

// CutBoth severs both directions between a and b.
func (n *Network) CutBoth(a, b string) {
	n.Cut(a, b)
	n.Cut(b, a)
}

// Isolate severs every link to and from the node — a full partition.
func (n *Network) Isolate(node string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.cut[linkKey{node, Wildcard}] = true
	n.cut[linkKey{Wildcard, node}] = true
}

// Heal restores the directed link src → dst.
func (n *Network) Heal(src, dst string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.cut, linkKey{src, dst})
}

// HealBoth restores both directions between a and b.
func (n *Network) HealBoth(a, b string) {
	n.Heal(a, b)
	n.Heal(b, a)
}

// HealNode removes every cut involving the node, including wildcard
// isolation rows.
func (n *Network) HealNode(node string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	for k := range n.cut {
		if k.src == node || k.dst == node {
			delete(n.cut, k)
		}
	}
}

// HealAll clears the whole reachability matrix.
func (n *Network) HealAll() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.cut = make(map[linkKey]bool)
}

// Crash marks the node's process dead: its listener refuses work and
// every hop to or from it drops.
func (n *Network) Crash(node string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.down[node] = true
}

// Restart revives a crashed node.
func (n *Network) Restart(node string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.down, node)
}

// Down reports whether the node is crashed.
func (n *Network) Down(node string) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.down[node]
}

// SlowNode imposes an extra per-message delay on everything the node
// serves (d <= 0 clears it).
func (n *Network) SlowNode(node string, d time.Duration) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if d <= 0 {
		delete(n.slow, node)
		return
	}
	n.slow[node] = d
}

// NodeDelay reports the node's configured slowness.
func (n *Network) NodeDelay(node string) time.Duration {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.slow[node]
}

// Reachable reports whether the directed link src → dst is up: neither
// endpoint crashed and no cut (exact or wildcard) severs it.
func (n *Network) Reachable(src, dst string) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.reachableLocked(src, dst)
}

func (n *Network) reachableLocked(src, dst string) bool {
	if n.down[src] || n.down[dst] {
		return false
	}
	if n.cut[linkKey{src, dst}] {
		return false
	}
	if n.cut[linkKey{src, Wildcard}] || n.cut[linkKey{Wildcard, dst}] {
		return false
	}
	if n.cut[linkKey{dst, Wildcard}] || n.cut[linkKey{Wildcard, src}] {
		// Isolation is total: a node cut from the world neither sends
		// nor receives, whichever wildcard row recorded it.
		return false
	}
	return true
}

// faultsLocked resolves the fault profile for one directed link.
func (n *Network) faultsLocked(src, dst string) LinkFaults {
	if f, ok := n.links[linkKey{src, dst}]; ok {
		return f
	}
	if f, ok := n.links[linkKey{src, Wildcard}]; ok {
		return f
	}
	if f, ok := n.links[linkKey{Wildcard, dst}]; ok {
		return f
	}
	return n.def
}

// Judge decides the fate of one message on the directed link src → dst.
// Unreachable links always drop; otherwise each fault fires
// independently from the seeded PRNG.
func (n *Network) Judge(src, dst string) Verdict {
	n.mu.Lock()
	defer n.mu.Unlock()
	if !n.reachableLocked(src, dst) {
		return Verdict{Drop: true}
	}
	f := n.faultsLocked(src, dst)
	var v Verdict
	if f.Drop > 0 && n.rng.Float64() < f.Drop {
		return Verdict{Drop: true}
	}
	if f.Dup > 0 && n.rng.Float64() < f.Dup {
		v.Dup = true
	}
	if f.Corrupt > 0 && n.rng.Float64() < f.Corrupt {
		v.Corrupt = true
	}
	v.Delay = f.Latency
	if f.Jitter > 0 {
		v.Delay += time.Duration(n.rng.Int63n(int64(f.Jitter)))
	}
	if d := n.slow[dst]; d > 0 {
		v.Delay += d
	}
	return v
}

// CorruptIndex picks the byte offset to flip in an n-byte payload.
func (n *Network) CorruptIndex(size int) int {
	if size <= 0 {
		return 0
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.rng.Intn(size)
}

// LinkState is one row of the network's observable state.
type LinkState struct {
	Src    string     `json:"src"`
	Dst    string     `json:"dst"`
	Cut    bool       `json:"cut,omitempty"`
	Faults LinkFaults `json:"faults,omitempty"`
}

// State is a snapshot of the whole fault model, served by the admin
// endpoint so drills can assert what they injected.
type State struct {
	Default LinkFaults               `json:"default,omitempty"`
	Links   []LinkState              `json:"links,omitempty"`
	Cuts    []LinkState              `json:"cuts,omitempty"`
	Down    []string                 `json:"down,omitempty"`
	Slow    map[string]time.Duration `json:"slow,omitempty"`
}

// Snapshot returns the current fault model in a stable order.
func (n *Network) Snapshot() State {
	n.mu.Lock()
	defer n.mu.Unlock()
	st := State{Default: n.def}
	for k, f := range n.links {
		st.Links = append(st.Links, LinkState{Src: k.src, Dst: k.dst, Faults: f})
	}
	for k := range n.cut {
		st.Cuts = append(st.Cuts, LinkState{Src: k.src, Dst: k.dst, Cut: true})
	}
	for id := range n.down {
		st.Down = append(st.Down, id)
	}
	if len(n.slow) > 0 {
		st.Slow = make(map[string]time.Duration, len(n.slow))
		for id, d := range n.slow {
			st.Slow[id] = d
		}
	}
	sortLinks(st.Links)
	sortLinks(st.Cuts)
	sort.Strings(st.Down)
	return st
}

func sortLinks(ls []LinkState) {
	sort.Slice(ls, func(i, j int) bool {
		if ls[i].Src != ls[j].Src {
			return ls[i].Src < ls[j].Src
		}
		return ls[i].Dst < ls[j].Dst
	})
}

// ErrInjected wraps every chaos-caused failure so callers (and tests)
// can tell injected faults from real ones.
type injectedError struct{ msg string }

func (e *injectedError) Error() string { return e.msg }

// Injected reports whether err was produced (possibly wrapped) by this
// package.
func Injected(err error) bool {
	var ie *injectedError
	return errors.As(err, &ie)
}

func injectedf(format string, args ...any) error {
	return &injectedError{msg: "chaos: " + fmt.Sprintf(format, args...)}
}
