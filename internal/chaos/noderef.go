package chaos

import (
	"context"
	"fmt"
	"time"

	"dra4wfms/internal/pool"
	"dra4wfms/internal/poolcluster"
)

// NodeRef wraps a poolcluster.NodeRef with the network's fault model
// for in-process clusters (benches and tests). src names the caller —
// usually the coordinator — and the destination is the wrapped node's
// ID, so Isolate/Cut/SetLink address real node IDs. Dropped hops return
// an error wrapping poolcluster.ErrNodeDown, which is exactly what the
// HTTP transport produces for a dead or partitioned remote node: the
// coordinator's failover path cannot tell chaos from reality, which is
// the point. Duplicate verdicts double-deliver Apply (the node's seq
// dedup must absorb it); corrupt verdicts flip a byte of the frame (the
// CRC framing must reject it).
func (n *Network) NodeRef(src string, ref poolcluster.NodeRef) poolcluster.NodeRef {
	return &nodeRef{net: n, src: src, ref: ref}
}

type nodeRef struct {
	net *Network
	src string
	ref poolcluster.NodeRef
}

func (r *nodeRef) ID() string { return r.ref.ID() }

// judge rolls the hop verdict and serves the delay; it reports an
// ErrNodeDown-wrapping error on drop.
func (r *nodeRef) judge(ctx context.Context) (Verdict, error) {
	v := r.net.Judge(r.src, r.ref.ID())
	if v.Delay > 0 {
		if ctx == nil {
			time.Sleep(v.Delay)
		} else {
			timer := time.NewTimer(v.Delay)
			select {
			case <-ctx.Done():
				timer.Stop()
				return v, ctx.Err()
			case <-timer.C:
			}
		}
	}
	if v.Drop {
		return v, fmt.Errorf("%w: chaos dropped hop %s → %s", poolcluster.ErrNodeDown, r.src, r.ref.ID())
	}
	return v, nil
}

func (r *nodeRef) Apply(ctx context.Context, rec poolcluster.Record) error {
	v, err := r.judge(ctx)
	if err != nil {
		return err
	}
	if v.Corrupt && len(rec.Frame) > 0 {
		frame := append([]byte(nil), rec.Frame...)
		frame[r.net.CorruptIndex(len(frame))] ^= 0x40
		rec.Frame = frame
	}
	if v.Dup {
		if err := r.ref.Apply(ctx, rec); err != nil {
			return err
		}
	}
	return r.ref.Apply(ctx, rec)
}

func (r *nodeRef) AppliedSeq(region string) (uint64, error) {
	if _, err := r.judge(nil); err != nil {
		return 0, err
	}
	return r.ref.AppliedSeq(region)
}

func (r *nodeRef) RecordsSince(region string, after uint64) ([]poolcluster.Record, bool, error) {
	if _, err := r.judge(nil); err != nil {
		return nil, false, err
	}
	return r.ref.RecordsSince(region, after)
}

func (r *nodeRef) Snapshot(region, start, end string) ([]pool.KeyValue, uint64, error) {
	if _, err := r.judge(nil); err != nil {
		return nil, 0, err
	}
	return r.ref.Snapshot(region, start, end)
}

func (r *nodeRef) Import(region string, kvs []pool.KeyValue, seq uint64) error {
	if _, err := r.judge(nil); err != nil {
		return err
	}
	return r.ref.Import(region, kvs, seq)
}

func (r *nodeRef) Status() (poolcluster.NodeStatus, error) {
	if _, err := r.judge(nil); err != nil {
		return poolcluster.NodeStatus{}, err
	}
	return r.ref.Status()
}

func (r *nodeRef) Get(ctx context.Context, row, family, qualifier string) ([]byte, bool, error) {
	if _, err := r.judge(ctx); err != nil {
		return nil, false, err
	}
	return r.ref.Get(ctx, row, family, qualifier)
}

func (r *nodeRef) GetRow(row string) ([]pool.KeyValue, error) {
	if _, err := r.judge(nil); err != nil {
		return nil, err
	}
	return r.ref.GetRow(row)
}

func (r *nodeRef) GetVersions(row, family, qualifier string) ([]pool.Cell, error) {
	if _, err := r.judge(nil); err != nil {
		return nil, err
	}
	return r.ref.GetVersions(row, family, qualifier)
}

func (r *nodeRef) Scan(ctx context.Context, opts pool.ScanOptions) ([]pool.KeyValue, error) {
	if _, err := r.judge(ctx); err != nil {
		return nil, err
	}
	return r.ref.Scan(ctx, opts)
}

var _ poolcluster.NodeRef = (*nodeRef)(nil)
