package chaos

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// AdminPath is the route prefix the chaos control plane is served on.
// Requests under this prefix are exempt from Gate, so a drill can always
// heal the partition it injected.
const AdminPath = "/v1/chaos"

// Directive is one control-plane command, POSTed as JSON to AdminPath.
type Directive struct {
	// Action selects the operation: isolate, heal_node, heal_all, cut,
	// cut_both, heal, heal_both, crash, restart, slow, link, default,
	// reset.
	Action string `json:"action"`
	// Node names the target for node-scoped actions (isolate, heal_node,
	// crash, restart, slow).
	Node string `json:"node,omitempty"`
	// Src/Dst name the directed link for link-scoped actions.
	Src string `json:"src,omitempty"`
	Dst string `json:"dst,omitempty"`
	// Faults carries the profile for link/default actions.
	Faults LinkFaults `json:"faults,omitempty"`
	// DelayMS is the slowness for the slow action, in milliseconds
	// (0 clears it).
	DelayMS int `json:"delay_ms,omitempty"`
}

// Apply executes one directive against the network.
func (n *Network) Apply(d Directive) error {
	switch d.Action {
	case "isolate":
		n.Isolate(d.Node)
	case "heal_node":
		n.HealNode(d.Node)
	case "heal_all":
		n.HealAll()
	case "cut":
		n.Cut(d.Src, d.Dst)
	case "cut_both":
		n.CutBoth(d.Src, d.Dst)
	case "heal":
		n.Heal(d.Src, d.Dst)
	case "heal_both":
		n.HealBoth(d.Src, d.Dst)
	case "crash":
		n.Crash(d.Node)
	case "restart":
		n.Restart(d.Node)
	case "slow":
		n.SlowNode(d.Node, time.Duration(d.DelayMS)*time.Millisecond)
	case "link":
		n.SetLink(d.Src, d.Dst, d.Faults)
	case "default":
		n.SetDefault(d.Faults)
	case "reset":
		n.Reset()
	default:
		return fmt.Errorf("chaos: unknown action %q", d.Action)
	}
	return nil
}

// Reset restores a fault-free network (the PRNG stream continues — only
// the fault model is cleared, determinism of the seed is preserved).
func (n *Network) Reset() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.def = LinkFaults{}
	n.links = make(map[linkKey]LinkFaults)
	n.cut = make(map[linkKey]bool)
	n.down = make(map[string]bool)
	n.slow = make(map[string]time.Duration)
}

// Handler serves the chaos control plane: GET returns the Snapshot,
// POST applies a Directive. It is intentionally unauthenticated — it
// only exists behind the -chaos daemon flag, which is a test-only mode.
func (n *Network) Handler() http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		switch r.Method {
		case http.MethodGet:
			w.Header().Set("Content-Type", "application/json")
			json.NewEncoder(w).Encode(n.Snapshot())
		case http.MethodPost:
			body, err := io.ReadAll(io.LimitReader(r.Body, 1<<16))
			if err != nil {
				http.Error(w, "chaos: read: "+err.Error(), http.StatusBadRequest)
				return
			}
			var d Directive
			if err := json.Unmarshal(body, &d); err != nil {
				http.Error(w, "chaos: decode: "+err.Error(), http.StatusBadRequest)
				return
			}
			if err := n.Apply(d); err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			json.NewEncoder(w).Encode(n.Snapshot())
		default:
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		}
	}
}

// InboundCut reports whether the node should refuse inbound traffic:
// crashed, or isolated by a wildcard cut in either direction.
func (n *Network) InboundCut(node string) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.down[node] {
		return true
	}
	return n.cut[linkKey{Wildcard, node}] || n.cut[linkKey{node, Wildcard}]
}

// Gate enforces inbound partitions at the handler layer: while the node
// is isolated or crashed, every request outside AdminPath is refused
// with 503. A refused hop is indistinguishable from a dead node to the
// coordinator (httpapi.RemoteNode maps 5xx to poolcluster.ErrNodeDown),
// which is exactly how a partition should look. The control plane stays
// reachable so the drill can heal what it injected.
func (n *Network) Gate(node string, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasPrefix(r.URL.Path, AdminPath) {
			next.ServeHTTP(w, r)
			return
		}
		if n.InboundCut(node) {
			http.Error(w, "chaos: partitioned", http.StatusServiceUnavailable)
			return
		}
		next.ServeHTTP(w, r)
	})
}
