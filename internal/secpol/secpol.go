// Package secpol applies a workflow definition's security policy to
// process-instance data: it resolves the per-variable reader lists to
// registered public keys and produces element-wise encrypted fields. Both
// the AEA (basic operational model) and the TFC server (advanced model)
// perform this step, so it lives in its own package.
package secpol

import (
	"fmt"
	"sort"

	"dra4wfms/internal/document"
	"dra4wfms/internal/expr"
	"dra4wfms/internal/pki"
	"dra4wfms/internal/wfdef"
	"dra4wfms/internal/xmlenc"
	"dra4wfms/internal/xmltree"
)

// Recipients resolves the reader list of variable to encryption recipients.
// Reader resolution — including the wfdef.TFCReader pseudo-principal
// mapping to the definition's TFC server — is delegated to
// wfdef.ResolvedReaders, the same source of truth the static IFC lint
// reasons over, so the set a value is encrypted for and the set the lint
// proves it can reach never drift apart. Unregistered readers are an
// error: encrypting to an unknown key would make the value unrecoverable
// or, worse, silently skip a reader.
func Recipients(def *wfdef.Definition, reg *pki.Registry, variable string) ([]xmlenc.Recipient, error) {
	readers, err := def.ResolvedReaders(variable)
	if err != nil {
		return nil, fmt.Errorf("secpol: %w", err)
	}
	if len(readers) == 0 {
		return nil, fmt.Errorf("secpol: variable %q has no readers (neither a rule nor default readers)", variable)
	}
	var out []xmlenc.Recipient
	for _, id := range readers {
		rk, err := reg.ResolvedKey(id)
		if err != nil {
			return nil, fmt.Errorf("secpol: reader %q of variable %q: %w", id, variable, err)
		}
		out = append(out, xmlenc.Recipient{ID: id, Key: rk.RSA, Label: rk.OAEPLabel})
	}
	return out, nil
}

// EncryptFields turns a (variable → value) result into element-wise
// encrypted Field elements per the definition's policy, in sorted variable
// order for deterministic documents. Each EncryptedData element carries a
// Variable attribute so readers can locate their fields without trial
// decryption (the value, not the variable name, is confidential).
func EncryptFields(def *wfdef.Definition, reg *pki.Registry, activity string, iter int, values map[string]string) ([]*xmltree.Node, error) {
	vars := make([]string, 0, len(values))
	for v := range values {
		vars = append(vars, v)
	}
	sort.Strings(vars)
	var out []*xmltree.Node
	for i, v := range vars {
		recips, err := Recipients(def, reg, v)
		if err != nil {
			return nil, err
		}
		field := document.Field(v, values[v])
		encID := fmt.Sprintf("encf-%s-%d-%d", activity, iter, i)
		enc, err := xmlenc.Encrypt(field, encID, recips...)
		if err != nil {
			return nil, err
		}
		enc.SetAttr("Variable", v)
		out = append(out, enc)
	}
	return out, nil
}

// Env builds an expression-evaluation environment from visible variable
// values, re-typing stored text via expr.FromText.
func Env(values map[string]string) expr.MapEnv {
	env := expr.MapEnv{}
	for k, v := range values {
		env[k] = expr.FromText(v)
	}
	return env
}
