package secpol

import (
	"errors"
	"strings"
	"testing"

	"dra4wfms/internal/document"
	"dra4wfms/internal/expr"
	"dra4wfms/internal/testenv"
	"dra4wfms/internal/wfdef"
	"dra4wfms/internal/xmlenc"
)

func TestRecipientsResolution(t *testing.T) {
	env := testenv.Fig4(0)
	def := wfdef.Fig4()
	p := wfdef.Fig4Participants

	recips, err := Recipients(def, env.Registry, "X")
	if err != nil {
		t.Fatal(err)
	}
	ids := map[string]bool{}
	for _, r := range recips {
		ids[r.ID] = true
	}
	if !ids[p.Amy] || !ids["tfc@cloud"] || len(ids) != 2 {
		t.Fatalf("Recipients(X) = %v", ids)
	}

	// Default readers for a variable without a rule.
	recips, err = Recipients(def, env.Registry, "reviewed")
	if err != nil {
		t.Fatal(err)
	}
	if len(recips) != 5 {
		t.Fatalf("Recipients(reviewed) = %d, want 5 defaults", len(recips))
	}
}

func TestRecipientsErrors(t *testing.T) {
	env := testenv.Fig4(0)
	def := wfdef.Fig4()

	// Unregistered reader.
	def2 := *def
	def2.Policy.Rules = append([]wfdef.ReadRule{}, def.Policy.Rules...)
	def2.Policy.Rules[0].Readers = []string{"ghost@nowhere"}
	if _, err := Recipients(&def2, env.Registry, def2.Policy.Rules[0].Variable); err == nil {
		t.Fatal("unregistered reader accepted")
	}

	// No readers at all.
	def3 := *def
	def3.Policy.DefaultReaders = nil
	if _, err := Recipients(&def3, env.Registry, "no-rule-var"); err == nil {
		t.Fatal("variable without readers accepted")
	}

	// TFCReader with no TFC configured.
	def4 := *def
	def4.Policy.TFC = ""
	if _, err := Recipients(&def4, env.Registry, "X"); err == nil {
		t.Fatal("TFC reader without TFC accepted")
	}
}

func TestEncryptFieldsPolicy(t *testing.T) {
	env := testenv.Fig4(0)
	def := wfdef.Fig4()
	p := wfdef.Fig4Participants

	fields, err := EncryptFields(def, env.Registry, "A1", 0, map[string]string{
		"X": "1500",
		"Y": "confidential payload",
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(fields) != 2 {
		t.Fatalf("fields = %d", len(fields))
	}
	// Sorted variable order: X then Y.
	if fields[0].AttrDefault("Variable", "") != "X" || fields[1].AttrDefault("Variable", "") != "Y" {
		t.Fatalf("field order: %s, %s", fields[0].AttrDefault("Variable", ""), fields[1].AttrDefault("Variable", ""))
	}
	for _, f := range fields {
		if !xmlenc.IsEncrypted(f) {
			t.Fatalf("field %s not encrypted", f.AttrDefault("Variable", ""))
		}
	}
	// Amy can read X but not Y.
	if !xmlenc.CanDecrypt(fields[0], p.Amy) || xmlenc.CanDecrypt(fields[1], p.Amy) {
		t.Fatal("X/Y recipient sets wrong for Amy")
	}
	// Tony (the Figure 4 victim) can read neither.
	if xmlenc.CanDecrypt(fields[0], p.Tony) || xmlenc.CanDecrypt(fields[1], p.Tony) {
		t.Fatal("Tony can read concealed variables")
	}
	// Decrypt X as Amy and check the plaintext Field.
	plain, err := xmlenc.Decrypt(fields[0], env.KeyOf(p.Amy))
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := document.FieldValue(plain, "X"); !ok || v != "1500" {
		t.Fatalf("decrypted X = %q, %v", v, ok)
	}
}

func TestEnv(t *testing.T) {
	e := Env(map[string]string{"n": "42", "b": "true", "s": "hi"})
	if v, _ := e.Lookup("n"); v.Kind != expr.NumberKind || v.Num != 42 {
		t.Fatalf("n = %+v", v)
	}
	if v, _ := e.Lookup("b"); v.Kind != expr.BoolKind || !v.Bool {
		t.Fatalf("b = %+v", v)
	}
	if v, _ := e.Lookup("s"); v.Kind != expr.StringKind || v.Str != "hi" {
		t.Fatalf("s = %+v", v)
	}
	if _, ok := e.Lookup("missing"); ok {
		t.Fatal("missing found")
	}
}

func routeDef() *wfdef.Definition {
	return wfdef.NewBuilder("route", "d@x").
		Activity("A", "", "p@x").Response("v", "number", true).Split(wfdef.SplitXOR).Done().
		Activity("B", "", "p@x").Done().
		Activity("C", "", "p@x").Done().
		Start("A").
		EdgeIf("A", "B", "v > 10").
		Edge("A", "C"). // default branch
		End("B", "C").
		MustBuild()
}

func TestRouteXOR(t *testing.T) {
	def := routeDef()
	act := def.Activity("A")

	next, err := Route(def, act, Env(map[string]string{"v": "11"}))
	if err != nil || strings.Join(next, ",") != "B" {
		t.Fatalf("Route(v=11) = %v, %v", next, err)
	}
	next, err = Route(def, act, Env(map[string]string{"v": "5"}))
	if err != nil || strings.Join(next, ",") != "C" {
		t.Fatalf("Route(v=5, default) = %v, %v", next, err)
	}
	// Concealed variable.
	_, err = Route(def, act, Env(nil))
	if !errors.Is(err, ErrUnreadableCondition) {
		t.Fatalf("Route(no env) err = %v, want ErrUnreadableCondition", err)
	}
}

func TestRouteXORNoDefault(t *testing.T) {
	def := wfdef.NewBuilder("route", "d@x").
		Activity("A", "", "p@x").Response("v", "number", true).Split(wfdef.SplitXOR).Done().
		Activity("B", "", "p@x").Done().
		Activity("C", "", "p@x").Done().
		Start("A").
		EdgeIf("A", "B", "v > 10").
		EdgeIf("A", "C", "v < 0").
		End("B", "C").
		MustBuild()
	_, err := Route(def, def.Activity("A"), Env(map[string]string{"v": "5"}))
	if !errors.Is(err, ErrNoBranch) {
		t.Fatalf("err = %v, want ErrNoBranch", err)
	}
}

func TestRouteANDAndSequence(t *testing.T) {
	def := wfdef.Fig9A()
	next, err := Route(def, def.Activity("A"), Env(nil))
	if err != nil || strings.Join(next, ",") != "B1,B2" {
		t.Fatalf("AND-split route = %v, %v", next, err)
	}
	next, err = Route(def, def.Activity("B1"), Env(nil))
	if err != nil || strings.Join(next, ",") != "C" {
		t.Fatalf("sequence route = %v, %v", next, err)
	}
	// XOR at D.
	next, err = Route(def, def.Activity("D"), Env(map[string]string{"accept": "true"}))
	if err != nil || strings.Join(next, ",") != wfdef.EndID {
		t.Fatalf("accept route = %v, %v", next, err)
	}
	next, err = Route(def, def.Activity("D"), Env(map[string]string{"accept": "false"}))
	if err != nil || strings.Join(next, ",") != "A" {
		t.Fatalf("loop route = %v, %v", next, err)
	}
}

func TestRouteGuardedSequence(t *testing.T) {
	def := wfdef.NewBuilder("g", "d@x").
		Activity("A", "", "p@x").Response("ok", "bool", true).Done().
		Activity("B", "", "p@x").Join(wfdef.JoinNone).Done().
		Start("A").
		EdgeIf("A", "B", "ok == true").
		End("B").
		MustBuild()
	act := def.Activity("A")
	if next, err := Route(def, act, Env(map[string]string{"ok": "true"})); err != nil || len(next) != 1 {
		t.Fatalf("guarded edge true: %v, %v", next, err)
	}
	if _, err := Route(def, act, Env(map[string]string{"ok": "false"})); !errors.Is(err, ErrNoBranch) {
		t.Fatalf("guarded edge false: %v", err)
	}
}
