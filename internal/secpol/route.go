package secpol

import (
	"errors"
	"fmt"

	"dra4wfms/internal/expr"
	"dra4wfms/internal/wfdef"
)

// Routing errors.
var (
	// ErrUnreadableCondition: a branch condition references a variable the
	// evaluating principal cannot read — in the basic model this means the
	// advanced model (TFC routing) is required.
	ErrUnreadableCondition = errors.New("secpol: branch condition references an unreadable variable")
	// ErrNoBranch: an XOR-split evaluated with no branch taken and no
	// default branch declared.
	ErrNoBranch = errors.New("secpol: no branch condition holds and there is no default branch")
)

// Route decides the outgoing targets of act given the variable environment
// visible to the router (an AEA under the basic model, the TFC server
// under the advanced model):
//
//   - AND-split: every outgoing target fires;
//   - XOR-split: the first transition (definition order) whose condition
//     holds, falling back to the default (unconditional) transition;
//   - plain sequence: the single outgoing transition, whose optional guard
//     must hold.
func Route(def *wfdef.Definition, act *wfdef.Activity, env expr.Env) ([]string, error) {
	out := def.Outgoing(act.ID)
	switch act.Split {
	case wfdef.SplitAND:
		next := make([]string, 0, len(out))
		for _, t := range out {
			next = append(next, t.To)
		}
		return next, nil
	case wfdef.SplitXOR:
		var deflt *wfdef.Transition
		for i := range out {
			t := out[i]
			if t.Concealed {
				return nil, fmt.Errorf("%w: transition %s condition is concealed (vaulted for the TFC)",
					ErrUnreadableCondition, t.ID)
			}
			if t.Condition == "" {
				deflt = &out[i]
				continue
			}
			ok, err := evalGuard(t.Condition, env)
			if err != nil {
				return nil, err
			}
			if ok {
				return []string{t.To}, nil
			}
		}
		if deflt != nil {
			return []string{deflt.To}, nil
		}
		return nil, fmt.Errorf("%w (activity %s)", ErrNoBranch, act.ID)
	default:
		t := out[0]
		if t.Concealed {
			return nil, fmt.Errorf("%w: transition %s condition is concealed (vaulted for the TFC)",
				ErrUnreadableCondition, t.ID)
		}
		if t.Condition != "" {
			ok, err := evalGuard(t.Condition, env)
			if err != nil {
				return nil, err
			}
			if !ok {
				return nil, fmt.Errorf("%w (activity %s, single guarded edge)", ErrNoBranch, act.ID)
			}
		}
		return []string{t.To}, nil
	}
}

func evalGuard(condition string, env expr.Env) (bool, error) {
	e, err := expr.Parse(condition)
	if err != nil {
		return false, err
	}
	ok, err := e.EvalBool(env)
	if err != nil {
		if errors.Is(err, expr.ErrUndefinedVariable) {
			return false, fmt.Errorf("%w: %v", ErrUnreadableCondition, err)
		}
		return false, err
	}
	return ok, nil
}
