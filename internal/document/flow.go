package document

import (
	"fmt"
	"sort"

	"dra4wfms/internal/wfdef"
)

// This file implements the control-flow state of a process instance as a
// token game over the document's final CERs. Every final CER records the
// routing decision its router (AEA or TFC) made in a signed Next element,
// so any party — portals in particular — can compute which activities are
// enabled WITHOUT decrypting any process data or evaluating any (possibly
// concealed) branch condition.
//
// Semantics: the start places one token on each initial activity.
// Executing an activity consumes its required tokens (all incoming edges
// for an AND-join, one otherwise) and places one token on each target in
// its Next. An activity is enabled when it holds at least its required
// token count. A Next entry of wfdef.EndID completes the process.

func requiredTokens(def *wfdef.Definition, activity string) int {
	a := def.Activity(activity)
	if a == nil {
		return 1
	}
	if a.Join == wfdef.JoinAND {
		return len(def.Incoming(activity))
	}
	return 1
}

// Enabled returns the activities currently able to execute, and whether
// the process instance has completed. Branch documents of an AND-split
// each see a partial token state; merge sibling documents first (Merge) to
// obtain the instance-wide view.
func Enabled(def *wfdef.Definition, d *Document) (enabled []string, completed bool, err error) {
	tokens := map[string]int{}
	for _, id := range def.InitialActivities() {
		tokens[id]++
	}
	for _, c := range d.FinalCERs() {
		act := c.ActivityID()
		if def.Activity(act) == nil {
			return nil, false, fmt.Errorf("document: CER %s names unknown activity %q", c.ID(), act)
		}
		tokens[act] -= requiredTokens(def, act)
		for _, to := range c.Next() {
			if to == wfdef.EndID {
				completed = true
				continue
			}
			if def.Activity(to) == nil {
				return nil, false, fmt.Errorf("document: CER %s routes to unknown activity %q", c.ID(), to)
			}
			tokens[to]++
		}
	}
	for act, n := range tokens {
		if n >= requiredTokens(def, act) {
			enabled = append(enabled, act)
		}
	}
	sort.Strings(enabled)
	return enabled, completed, nil
}

// PredecessorSignatures returns the signature-element Ids that the CER of
// the next execution of activity must reference to maintain the
// nonrepudiation cascade:
//
//   - for an AND-join, the latest final CER of every incoming activity
//     (all must exist);
//   - otherwise, the latest final CER among incoming activities whose Next
//     routes to this activity;
//   - for an initial execution with no predecessor CER, the designer's
//     signature (CER(A0)).
func PredecessorSignatures(def *wfdef.Definition, d *Document, activity string) ([]string, error) {
	a := def.Activity(activity)
	if a == nil {
		return nil, fmt.Errorf("document: unknown activity %q", activity)
	}
	incoming := def.Incoming(activity)

	if a.Join == wfdef.JoinAND {
		var sigs []string
		for _, t := range incoming {
			cer, ok := d.LatestFinalCER(t.From)
			if !ok {
				return nil, fmt.Errorf("document: AND-join at %s awaits predecessor %s", activity, t.From)
			}
			sigs = append(sigs, cer.SignatureID())
		}
		return sigs, nil
	}

	// Single predecessor (or XOR-join): the most recent final CER that
	// routed here. Scan in reverse document order.
	final := d.FinalCERs()
	for i := len(final) - 1; i >= 0; i-- {
		c := final[i]
		for _, to := range c.Next() {
			if to == activity {
				return []string{c.SignatureID()}, nil
			}
		}
	}
	// No routing predecessor: this must be an initial activity.
	for _, t := range incoming {
		if t.From == wfdef.StartID {
			return []string{DesignerSig}, nil
		}
	}
	return nil, fmt.Errorf("document: no predecessor CER routes to %s and it is not an initial activity", activity)
}
