package document

import (
	"errors"
	"fmt"

	"dra4wfms/internal/dsig"
	"dra4wfms/internal/pki"
	"dra4wfms/internal/wfdef"
	"dra4wfms/internal/xmltree"
)

// Workflow templates: the paper's cloud system lets "secured initial
// DRA4WfMS documents … be prepared by the system or uploaded to the system
// by the user" and provides "interfaces for users to search and manage"
// them (Section 3). Instance creation always needs the designer's private
// key (the designer signs CER(A0)), so what the cloud distributes is the
// designer-signed workflow *template*: a definition plus a signature that
// any participant can verify before trusting the process shape.
//
//	<WorkflowTemplate>
//	  <WorkflowDefinition Id="tpl-def" …/>
//	  <Signature Id="tpl-sig">…</Signature>
//	</WorkflowTemplate>

// Template element names/ids.
const (
	templateElem  = "WorkflowTemplate"
	templateDefID = "tpl-def"
	templateSigID = "tpl-sig"
)

// SignTemplate wraps the definition in a designer-signed template element.
func SignTemplate(def *wfdef.Definition, designer *pki.KeyPair) (*xmltree.Node, error) {
	if err := def.Validate(); err != nil {
		return nil, err
	}
	if def.Designer != designer.Owner {
		return nil, fmt.Errorf("document: definition names designer %q but signing key belongs to %q",
			def.Designer, designer.Owner)
	}
	root := xmltree.NewElement(templateElem)
	wf := def.ToXML()
	wf.SetAttr("Id", templateDefID)
	root.AppendChild(wf)
	sig, err := dsig.Sign(root, []string{templateDefID}, designer, templateSigID)
	if err != nil {
		return nil, err
	}
	root.AppendChild(sig)
	return root, nil
}

// VerifyTemplate checks a template's designer signature and returns the
// embedded, validated definition.
func VerifyTemplate(root *xmltree.Node, resolver dsig.KeyResolver) (*wfdef.Definition, error) {
	if root == nil || root.Name != templateElem {
		return nil, errors.New("document: not a WorkflowTemplate element")
	}
	sig := root.Child(dsig.SignatureElem)
	if sig == nil {
		return nil, errors.New("document: template has no signature")
	}
	if err := dsig.Verify(root, sig, resolver); err != nil {
		return nil, fmt.Errorf("document: template signature: %w", err)
	}
	wf := root.Child("WorkflowDefinition")
	if wf == nil {
		return nil, errors.New("document: template has no definition")
	}
	def, err := wfdef.FromXML(wf)
	if err != nil {
		return nil, err
	}
	if err := def.Validate(); err != nil {
		return nil, fmt.Errorf("document: template definition invalid: %w", err)
	}
	if dsig.SignerOf(sig) != def.Designer {
		return nil, fmt.Errorf("document: template signed by %q but definition names designer %q",
			dsig.SignerOf(sig), def.Designer)
	}
	return def, nil
}
