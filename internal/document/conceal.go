package document

import (
	"errors"
	"fmt"
	"time"

	"dra4wfms/internal/dsig"
	"dra4wfms/internal/pki"
	"dra4wfms/internal/wfdef"
	"dra4wfms/internal/xmlenc"
	"dra4wfms/internal/xmltree"
)

// This file implements static flow-information concealment: the paper's
// Figure 4 requirement that "the control flow information should not be
// revealed to the participant who is responsible to forward the workflow
// document", realized with the same element-wise encryption the data uses.
//
// NewConcealed strips every transition's condition text from the
// participant-visible workflow definition (marking the edges Concealed)
// and vaults the conditions inside the definition as an element-wise
// encrypted ConcealedConditions element that only the TFC server (and
// whoever else the designer lists) can open. The designer's signature
// covers the stripped definition INCLUDING the encrypted vault, so neither
// the visible topology nor the hidden predicates can be altered.
//
// The TFC reveals the vault before routing (RevealConditions); every
// other principal sees only the topology — enough to compute enabled
// activities from the signed Next routing decisions, but not to learn the
// branch predicates.

// vaultMarker tags the EncryptedData element holding the condition vault.
const vaultMarker = "concealed-conditions"

// NewConcealed builds the secured initial document like New, but with all
// transition conditions vaulted for the given recipients (normally the TFC
// server, resolved by the caller, plus optionally the designer). The
// passed definition is not modified. It fails unless the definition
// declares ConcealFlow and a TFC.
func NewConcealed(def *wfdef.Definition, designer *pki.KeyPair, processID string, now time.Time, vaultRecipients ...xmlenc.Recipient) (*Document, error) {
	if !def.Policy.ConcealFlow || def.Policy.TFC == "" {
		return nil, errors.New("document: NewConcealed requires a concealed-flow definition with a TFC")
	}
	if len(vaultRecipients) == 0 {
		return nil, errors.New("document: NewConcealed requires at least one vault recipient (the TFC)")
	}
	tfcIncluded := false
	for _, r := range vaultRecipients {
		if r.ID == def.Policy.TFC {
			tfcIncluded = true
		}
	}
	if !tfcIncluded {
		return nil, fmt.Errorf("document: vault recipients must include the TFC %q", def.Policy.TFC)
	}

	// Build the stripped definition: conditions removed, edges marked.
	stripped := *def
	stripped.Transitions = make([]wfdef.Transition, len(def.Transitions))
	vault := xmltree.NewElement("ConcealedConditions")
	concealedAny := false
	for i, t := range def.Transitions {
		s := t
		if t.Condition != "" {
			c := vault.Elem("Condition", t.Condition)
			c.SetAttr("Transition", t.ID)
			s.Condition = ""
			s.Concealed = true
			concealedAny = true
		}
		stripped.Transitions[i] = s
	}
	if err := stripped.Validate(); err != nil {
		return nil, fmt.Errorf("document: stripped definition invalid: %w", err)
	}

	doc, err := New(&stripped, designer, processID, now)
	if err != nil {
		return nil, err
	}
	if !concealedAny {
		// Nothing to vault; the document is simply a normal initial doc.
		return doc, nil
	}

	// Replace the placeholder: encrypt the vault and insert it into the
	// WorkflowDefinition subtree, then RE-SIGN (the designer signature must
	// cover the vault).
	wf := doc.WorkflowElement()
	enc, err := xmlenc.Encrypt(vault, "vault", vaultRecipients...)
	if err != nil {
		return nil, err
	}
	enc.SetAttr("Purpose", vaultMarker)
	wf.AppendChild(enc)

	appDef := doc.Root.Child("ApplicationDefinition")
	old := doc.DesignerSignature()
	appDef.RemoveChild(old)
	sig, err := resign(doc, designer)
	if err != nil {
		return nil, err
	}
	appDef.AppendChild(sig)
	return doc, nil
}

// resign rebuilds the designer signature over header + workflow definition.
func resign(d *Document, designer *pki.KeyPair) (*xmltree.Node, error) {
	return dsig.Sign(d.Root, []string{HeaderID, WfdefID}, designer, DesignerSig)
}

// ConditionVault returns the encrypted condition vault element, or nil for
// documents without concealed conditions.
func (d *Document) ConditionVault() *xmltree.Node {
	wf := d.WorkflowElement()
	if wf == nil {
		return nil
	}
	for _, c := range wf.ChildElements() {
		if xmlenc.IsEncrypted(c) && c.AttrDefault("Purpose", "") == vaultMarker {
			return c
		}
	}
	return nil
}

// RevealConditions decrypts the condition vault with key (the TFC's key
// pair) and fills the concealed transitions of def in place, clearing
// their Concealed flags. It fails if the document has no vault, the key's
// owner is not a recipient, or a vault entry names an unknown transition.
func (d *Document) RevealConditions(def *wfdef.Definition, key *pki.KeyPair) error {
	vaultEl := d.ConditionVault()
	if vaultEl == nil {
		return errors.New("document: no concealed-conditions vault")
	}
	plain, err := xmlenc.Decrypt(vaultEl, key)
	if err != nil {
		return fmt.Errorf("document: opening condition vault: %w", err)
	}
	byID := map[string]*wfdef.Transition{}
	for i := range def.Transitions {
		byID[def.Transitions[i].ID] = &def.Transitions[i]
	}
	for _, c := range plain.ChildElements() {
		if c.Name != "Condition" {
			continue
		}
		tid := c.AttrDefault("Transition", "")
		t, ok := byID[tid]
		if !ok {
			return fmt.Errorf("document: vault names unknown transition %q", tid)
		}
		t.Condition = c.TextContent()
		t.Concealed = false
	}
	// Every concealed edge must have been revealed.
	for _, t := range def.Transitions {
		if t.Concealed {
			return fmt.Errorf("document: transition %s remains concealed after revealing the vault", t.ID)
		}
	}
	return nil
}
