package document

import (
	"crypto/rsa"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"

	"dra4wfms/internal/dsig"
	"dra4wfms/internal/pki"
	"dra4wfms/internal/wfdef"
	"dra4wfms/internal/xmltree"
)

var cache = pki.NewKeyCache(1024)

type mapResolver map[string]*rsa.PublicKey

func (m mapResolver) PublicKey(id string) (*rsa.PublicKey, error) {
	if k, ok := m[id]; ok {
		return k, nil
	}
	return nil, fmt.Errorf("no key for %s", id)
}

func fig9Resolver() mapResolver {
	m := mapResolver{}
	for _, id := range []string{"designer@acme", "tfc@cloud"} {
		m[id] = cache.MustGet(id).Public()
	}
	for _, p := range wfdef.Fig9Participants {
		m[p] = cache.MustGet(p).Public()
	}
	return m
}

var t0 = time.Date(2026, 7, 6, 9, 0, 0, 0, time.UTC)

func newFig9Doc(t *testing.T) *Document {
	t.Helper()
	doc, err := New(wfdef.Fig9A(), cache.MustGet("designer@acme"), "proc-001", t0)
	if err != nil {
		t.Fatal(err)
	}
	return doc
}

// execute appends a plaintext final CER for the activity using the flow
// helpers, mimicking a basic-model AEA without encryption.
func execute(t *testing.T, doc *Document, def *wfdef.Definition, activity string, next []string, fields map[string]string) CER {
	t.Helper()
	preds, err := PredecessorSignatures(def, doc, activity)
	if err != nil {
		t.Fatalf("preds for %s: %v", activity, err)
	}
	iter := doc.LatestIteration(activity) + 1
	participant := def.Activity(activity).Participant
	var children []*xmltree.Node
	for k, v := range fields {
		children = append(children, Field(k, v))
	}
	cer, err := doc.AppendCER(AppendSpec{
		ActivityID:     activity,
		Iteration:      iter,
		Kind:           KindFinal,
		Participant:    participant,
		ResultChildren: children,
		Next:           next,
		PredSigIDs:     preds,
		Signer:         cache.MustGet(participant),
	})
	if err != nil {
		t.Fatalf("append %s: %v", activity, err)
	}
	return cer
}

func TestNewDocumentBasics(t *testing.T) {
	doc := newFig9Doc(t)
	if doc.ProcessID() != "proc-001" {
		t.Fatalf("ProcessID = %q", doc.ProcessID())
	}
	if doc.DefinitionName() != "fig9-review" {
		t.Fatalf("DefinitionName = %q", doc.DefinitionName())
	}
	created, err := doc.CreatedAt()
	if err != nil || !created.Equal(t0) {
		t.Fatalf("CreatedAt = %v, %v", created, err)
	}
	if doc.DesignerSignature() == nil {
		t.Fatal("no designer signature")
	}
	def, err := doc.Definition()
	if err != nil || def.Name != "fig9-review" {
		t.Fatalf("Definition = %v, %v", def, err)
	}
	if n, err := doc.VerifyAll(fig9Resolver()); err != nil || n != 1 {
		t.Fatalf("VerifyAll = %d, %v", n, err)
	}
	if len(doc.CERs()) != 0 {
		t.Fatal("fresh document has CERs")
	}
}

func TestNewValidation(t *testing.T) {
	def := wfdef.Fig9A()
	if _, err := New(def, cache.MustGet("mallory"), "p", t0); err == nil {
		t.Fatal("designer key mismatch accepted")
	}
	if _, err := New(def, cache.MustGet("designer@acme"), "", t0); err == nil {
		t.Fatal("empty process id accepted")
	}
	bad := *def
	bad.Activities = nil
	if _, err := New(&bad, cache.MustGet("designer@acme"), "p", t0); err == nil {
		t.Fatal("invalid definition accepted")
	}
}

func TestParseRoundTrip(t *testing.T) {
	doc := newFig9Doc(t)
	def, _ := doc.Definition()
	execute(t, doc, def, "A", []string{"B1", "B2"}, map[string]string{"request": "buy 10 servers"})

	back, err := Parse(doc.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if n, err := back.VerifyAll(fig9Resolver()); err != nil || n != 2 {
		t.Fatalf("VerifyAll after round trip = %d, %v", n, err)
	}
	if back.Size() != doc.Size() {
		t.Fatalf("size changed in round trip: %d vs %d", back.Size(), doc.Size())
	}
	if _, err := Parse([]byte("<NotADoc></NotADoc>")); err == nil {
		t.Fatal("wrong root accepted")
	}
	if _, err := Parse([]byte("garbage")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestAppendCERValidation(t *testing.T) {
	doc := newFig9Doc(t)
	ok := AppendSpec{
		ActivityID: "A", Kind: KindFinal, Participant: "alice@acme",
		PredSigIDs: []string{DesignerSig}, Signer: cache.MustGet("alice@acme"),
	}
	cases := []struct {
		name   string
		mutate func(*AppendSpec)
	}{
		{"no activity", func(s *AppendSpec) { s.ActivityID = "" }},
		{"bad kind", func(s *AppendSpec) { s.Kind = "weird" }},
		{"no signer", func(s *AppendSpec) { s.Signer = nil }},
		{"no preds", func(s *AppendSpec) { s.PredSigIDs = nil }},
		{"dangling pred", func(s *AppendSpec) { s.PredSigIDs = []string{"sig-ghost"} }},
	}
	for _, c := range cases {
		spec := ok
		c.mutate(&spec)
		if _, err := doc.AppendCER(spec); err == nil {
			t.Errorf("%s: AppendCER succeeded", c.name)
		}
	}
	if _, err := doc.AppendCER(ok); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	if _, err := doc.AppendCER(ok); err == nil {
		t.Fatal("duplicate CER (replay) accepted")
	}
}

func TestCERAccessors(t *testing.T) {
	doc := newFig9Doc(t)
	def, _ := doc.Definition()
	ts := t0.Add(5 * time.Minute)
	preds, _ := PredecessorSignatures(def, doc, "A")
	cer, err := doc.AppendCER(AppendSpec{
		ActivityID: "A", Iteration: 0, Kind: KindFinal, Participant: "alice@acme",
		ResultChildren: []*xmltree.Node{Field("request", "r")},
		Timestamp:      ts,
		Next:           []string{"B1", "B2"},
		PredSigIDs:     preds,
		Signer:         cache.MustGet("alice@acme"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if cer.ID() != "cer-A-0" || cer.ActivityID() != "A" || cer.Iteration() != 0 {
		t.Fatalf("accessors: %s %s %d", cer.ID(), cer.ActivityID(), cer.Iteration())
	}
	if cer.Kind() != KindFinal || cer.Participant() != "alice@acme" || cer.Signer() != "alice@acme" {
		t.Fatalf("kind/participant/signer: %s %s %s", cer.Kind(), cer.Participant(), cer.Signer())
	}
	if got, ok := cer.Timestamp(); !ok || !got.Equal(ts) {
		t.Fatalf("Timestamp = %v, %v", got, ok)
	}
	if got := cer.Next(); strings.Join(got, ",") != "B1,B2" {
		t.Fatalf("Next = %v", got)
	}
	if cer.SignatureID() != "sig-A-0" {
		t.Fatalf("SignatureID = %q", cer.SignatureID())
	}
	if v, ok := FieldValue(cer.Result(), "request"); !ok || v != "r" {
		t.Fatalf("FieldValue = %q, %v", v, ok)
	}
	if _, ok := FieldValue(cer.Result(), "missing"); ok {
		t.Fatal("FieldValue found missing variable")
	}
	// Timestamp inside the signed scope: altering it breaks verification.
	cer.El.Child("Timestamp").SetText(t0.Add(time.Hour).Format(time.RFC3339Nano))
	if _, err := doc.VerifyAll(fig9Resolver()); err == nil {
		t.Fatal("timestamp tamper not detected")
	}
}

// runFig9 executes the whole Figure 9A process: two loop iterations, the
// second accepting. Returns the document and the definition.
func runFig9(t *testing.T) (*Document, *wfdef.Definition) {
	t.Helper()
	doc := newFig9Doc(t)
	def, _ := doc.Definition()
	for iter := 0; iter < 2; iter++ {
		execute(t, doc, def, "A", []string{"B1", "B2"}, map[string]string{"request": "req"})
		execute(t, doc, def, "B1", []string{"C"}, map[string]string{"techReview": "ok"})
		execute(t, doc, def, "B2", []string{"C"}, map[string]string{"budgetReview": "ok"})
		execute(t, doc, def, "C", []string{"D"}, map[string]string{"summary": "fine"})
		if iter == 0 {
			execute(t, doc, def, "D", []string{"A"}, map[string]string{"accept": "false"})
		} else {
			execute(t, doc, def, "D", []string{wfdef.EndID}, map[string]string{"accept": "true"})
		}
	}
	return doc, def
}

func TestFullFig9RunVerifies(t *testing.T) {
	doc, _ := runFig9(t)
	if got := len(doc.FinalCERs()); got != 10 {
		t.Fatalf("final CERs = %d, want 10", got)
	}
	n, err := doc.VerifyAll(fig9Resolver())
	if err != nil {
		t.Fatal(err)
	}
	if n != 11 { // designer + 10 CERs
		t.Fatalf("verified %d signatures, want 11", n)
	}
	if doc.LatestIteration("A") != 1 || doc.LatestIteration("D") != 1 {
		t.Fatal("loop iterations wrong")
	}
	if doc.LatestIteration("ghost") != -1 {
		t.Fatal("LatestIteration of unknown activity != -1")
	}
	vals := doc.Values()
	if vals["accept"] != "true" || vals["summary"] != "fine" {
		t.Fatalf("Values = %v", vals)
	}
	if !strings.Contains(doc.Summary(), "final D#1") {
		t.Fatalf("Summary missing D#1: %s", doc.Summary())
	}
}

func TestTamperAnywhereDetected(t *testing.T) {
	base, _ := runFig9(t)
	resolver := fig9Resolver()

	mutations := []struct {
		name   string
		mutate func(*Document)
	}{
		{"first result", func(d *Document) { d.Root.FindByID("res-A-0").SetText("forged") }},
		{"middle result", func(d *Document) { d.Root.FindByID("res-C-0").SetText("forged") }},
		{"last result", func(d *Document) { d.Root.FindByID("res-D-1").SetText("forged") }},
		{"routing decision", func(d *Document) { d.Root.FindByID("next-D-0").SetText("X") }},
		{"process id", func(d *Document) { d.Header().Child("ProcessID").SetText("other") }},
		{"workflow definition", func(d *Document) {
			d.WorkflowElement().Find("Activity").SetAttr("Participant", "mallory")
		}},
		{"delete a CER", func(d *Document) {
			cer, _ := d.FindCER(KindFinal, "B1", 0)
			d.Root.Child("ActivityResults").RemoveChild(cer.El)
		}},
		{"remove a signature", func(d *Document) {
			cer, _ := d.FindCER(KindFinal, "B2", 0)
			cer.El.RemoveChild(cer.Signature())
		}},
		{"swap participant attr", func(d *Document) {
			cer, _ := d.FindCER(KindFinal, "A", 0)
			cer.El.SetAttr("Participant", "mallory")
		}},
	}
	for _, m := range mutations {
		d := base.Clone()
		if _, err := d.VerifyAll(resolver); err != nil {
			t.Fatalf("%s: clone does not verify before mutation: %v", m.name, err)
		}
		m.mutate(d)
		if _, err := d.VerifyAll(resolver); err == nil {
			t.Errorf("%s: tamper not detected", m.name)
		}
	}
}

func TestVerifyAllRejectsUnboundSignature(t *testing.T) {
	// A CER whose signature references only predecessors (not its own
	// result) must be rejected even though the signature itself verifies.
	doc := newFig9Doc(t)
	cer, err := doc.AppendCER(AppendSpec{
		ActivityID: "A", Kind: KindFinal, Participant: "alice@acme",
		ResultChildren: []*xmltree.Node{Field("request", "r")},
		PredSigIDs:     []string{DesignerSig},
		Signer:         cache.MustGet("alice@acme"),
	})
	if err != nil {
		t.Fatal(err)
	}
	// Rebuild the signature to cover only the designer signature.
	cer.El.RemoveChild(cer.Signature())
	sig, err := signOnly(doc, []string{DesignerSig}, "alice@acme", "sig-A-0")
	if err != nil {
		t.Fatal(err)
	}
	cer.El.AppendChild(sig)
	if _, err := doc.VerifyAll(fig9Resolver()); err == nil {
		t.Fatal("unbound CER signature accepted")
	}
}

func signOnly(d *Document, refs []string, owner, sigID string) (*xmltree.Node, error) {
	return dsig.Sign(d.Root, refs, cache.MustGet(owner), sigID)
}

func TestMerge(t *testing.T) {
	doc := newFig9Doc(t)
	def, _ := doc.Definition()
	execute(t, doc, def, "A", []string{"B1", "B2"}, map[string]string{"request": "r"})

	// Fork for the AND-split.
	b1Doc := doc.Clone()
	b2Doc := doc.Clone()
	execute(t, b1Doc, def, "B1", []string{"C"}, map[string]string{"techReview": "ok"})
	execute(t, b2Doc, def, "B2", []string{"C"}, map[string]string{"budgetReview": "ok"})

	merged, err := Merge(b1Doc, b2Doc)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(merged.FinalCERs()); got != 3 {
		t.Fatalf("merged CERs = %d, want 3 (A, B1, B2)", got)
	}
	if n, err := merged.VerifyAll(fig9Resolver()); err != nil || n != 4 {
		t.Fatalf("merged VerifyAll = %d, %v", n, err)
	}
	// Merge is idempotent for shared CERs.
	again, err := Merge(merged, b1Doc)
	if err != nil {
		t.Fatal(err)
	}
	if len(again.FinalCERs()) != 3 {
		t.Fatal("re-merge duplicated CERs")
	}
	// C can now find both predecessors.
	preds, err := PredecessorSignatures(def, merged, "C")
	if err != nil {
		t.Fatal(err)
	}
	if len(preds) != 2 {
		t.Fatalf("preds of C = %v", preds)
	}
}

func TestMergeErrors(t *testing.T) {
	if _, err := Merge(); err == nil {
		t.Fatal("empty merge accepted")
	}
	a := newFig9Doc(t)
	other, _ := New(wfdef.Fig9A(), cache.MustGet("designer@acme"), "proc-002", t0)
	if _, err := Merge(a, other); err == nil {
		t.Fatal("merge of distinct instances accepted")
	}
	divergent := a.Clone()
	divergent.Header().Child("CreatedAt").SetText("2031-01-01T00:00:00Z")
	if _, err := Merge(a, divergent); err == nil {
		t.Fatal("merge with divergent header accepted")
	}
	divergent2 := a.Clone()
	divergent2.WorkflowElement().SetAttr("Name", "other")
	if _, err := Merge(a, divergent2); err == nil {
		t.Fatal("merge with divergent definition accepted")
	}
}

func TestNonrepudiationScope(t *testing.T) {
	doc, _ := runFig9(t)

	// Scope of the initial A CER: itself + the designer.
	scope, err := doc.NonrepudiationScope("cer-A-0")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(scope, " ") != "cer-A-0 cer-A0" {
		t.Fatalf("scope(cer-A-0) = %v", scope)
	}

	// Scope of C iteration 0 includes both AND-join branches.
	scope, err = doc.NonrepudiationScope("cer-C-0")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"cer-A-0", "cer-A0", "cer-B1-0", "cer-B2-0", "cer-C-0"}
	if strings.Join(scope, " ") != strings.Join(want, " ") {
		t.Fatalf("scope(cer-C-0) = %v, want %v", scope, want)
	}

	// Scope of the last CER covers the entire execution.
	scope, err = doc.NonrepudiationScope("cer-D-1")
	if err != nil {
		t.Fatal(err)
	}
	if len(scope) != 11 { // 10 CERs + cer-A0
		t.Fatalf("scope(cer-D-1) has %d members, want 11: %v", len(scope), scope)
	}

	if _, err := doc.NonrepudiationScope("cer-ghost-0"); err == nil {
		t.Fatal("scope of unknown CER computed")
	}
}

func TestScopeMonotonicity(t *testing.T) {
	// Property: the scope of a CER is a superset of the scope of every CER
	// it signs (minus nothing) — successors accumulate responsibility.
	doc, _ := runFig9(t)
	finals := doc.FinalCERs()
	scopes := map[string]map[string]bool{}
	for _, c := range finals {
		s, err := doc.NonrepudiationScope(c.ID())
		if err != nil {
			t.Fatal(err)
		}
		set := map[string]bool{}
		for _, id := range s {
			set[id] = true
		}
		scopes[c.ID()] = set
	}
	order := map[string]int{}
	for i, c := range finals {
		order[c.ID()] = i
	}
	for i, c := range finals {
		for j := 0; j < i; j++ {
			pred := finals[j]
			if scopes[c.ID()][pred.ID()] {
				for member := range scopes[pred.ID()] {
					if !scopes[c.ID()][member] {
						t.Fatalf("scope(%s) contains %s but not its scope member %s",
							c.ID(), pred.ID(), member)
					}
				}
			}
		}
	}
	_ = order
}

func TestEnabledTokenGame(t *testing.T) {
	doc := newFig9Doc(t)
	def, _ := doc.Definition()

	check := func(wantEnabled string, wantDone bool) {
		t.Helper()
		enabled, done, err := Enabled(def, doc)
		if err != nil {
			t.Fatal(err)
		}
		if strings.Join(enabled, ",") != wantEnabled || done != wantDone {
			t.Fatalf("Enabled = %v done=%v, want %q done=%v", enabled, done, wantEnabled, wantDone)
		}
	}

	check("A", false)
	execute(t, doc, def, "A", []string{"B1", "B2"}, nil)
	check("B1,B2", false)
	execute(t, doc, def, "B1", []string{"C"}, nil)
	check("B2", false) // C is an AND-join: one token is not enough
	execute(t, doc, def, "B2", []string{"C"}, nil)
	check("C", false)
	execute(t, doc, def, "C", []string{"D"}, nil)
	check("D", false)
	execute(t, doc, def, "D", []string{"A"}, nil) // loop back
	check("A", false)
	execute(t, doc, def, "A", []string{"B1", "B2"}, nil)
	execute(t, doc, def, "B1", []string{"C"}, nil)
	execute(t, doc, def, "B2", []string{"C"}, nil)
	execute(t, doc, def, "C", []string{"D"}, nil)
	execute(t, doc, def, "D", []string{wfdef.EndID}, nil)
	check("", true)
}

func TestEnabledRejectsUnknownActivities(t *testing.T) {
	doc := newFig9Doc(t)
	def, _ := doc.Definition()
	execute(t, doc, def, "A", []string{"B1", "B2"}, nil)
	// Corrupt the definition view (simulates definition/document mismatch).
	bad := *def
	bad.Activities = bad.Activities[1:]
	if _, _, err := Enabled(&bad, doc); err == nil {
		t.Fatal("unknown activity in CER accepted")
	}
}

func TestPredecessorSignaturesErrors(t *testing.T) {
	doc := newFig9Doc(t)
	def, _ := doc.Definition()
	if _, err := PredecessorSignatures(def, doc, "ghost"); err == nil {
		t.Fatal("unknown activity accepted")
	}
	// AND-join with a missing branch.
	execute(t, doc, def, "A", []string{"B1", "B2"}, nil)
	execute(t, doc, def, "B1", []string{"C"}, nil)
	if _, err := PredecessorSignatures(def, doc, "C"); err == nil {
		t.Fatal("AND-join with missing branch accepted")
	}
	// Non-initial activity with no routing predecessor.
	if _, err := PredecessorSignatures(def, doc, "D"); err == nil {
		t.Fatal("activity without routed predecessor accepted")
	}
	// Initial activity with no CERs falls back to the designer signature.
	fresh := newFig9Doc(t)
	preds, err := PredecessorSignatures(def, fresh, "A")
	if err != nil || len(preds) != 1 || preds[0] != DesignerSig {
		t.Fatalf("initial preds = %v, %v", preds, err)
	}
}

func TestFieldHelpers(t *testing.T) {
	f := Field("x", "1")
	if f.AttrDefault("Variable", "") != "x" || f.TextContent() != "1" {
		t.Fatal("Field construction wrong")
	}
	empty := Field("y", "")
	if len(empty.Children) != 0 {
		t.Fatal("empty Field has children")
	}
	container := xmltree.NewElement("Result")
	container.AppendChild(f)
	container.AppendChild(empty)
	if got := len(Fields(container)); got != 2 {
		t.Fatalf("Fields = %d", got)
	}
}

func TestAttachmentEncoding(t *testing.T) {
	data := []byte{0x00, 0x01, 0xFF, 0x7F, 0x80}
	v := EncodeAttachment("quote:v2.pdf", "application/pdf", data)
	if !IsAttachment(v) {
		t.Fatal("IsAttachment = false")
	}
	name, mt, raw, ok := DecodeAttachment(v)
	if !ok || name != "quote:v2.pdf" || mt != "application/pdf" {
		t.Fatalf("decode = %q %q %v", name, mt, ok)
	}
	if string(raw) != string(data) {
		t.Fatalf("data mismatch: %v", raw)
	}
	if IsAttachment("plain value") {
		t.Fatal("plain value detected as attachment")
	}
	for _, bad := range []string{"dra-att:v1:", "dra-att:v1:a:b", "dra-att:v1:a:b:!!!"} {
		if _, _, _, ok := DecodeAttachment(bad); ok {
			t.Fatalf("malformed %q decoded", bad)
		}
	}
}

func TestAttachmentThroughWorkflow(t *testing.T) {
	// An attachment travels as an ordinary (encrypted) field value.
	doc, _ := runFig9(t)
	vals := doc.Values()
	_ = vals
	fresh := newFig9Doc(t)
	def, _ := fresh.Definition()
	att := EncodeAttachment("spec.pdf", "application/pdf", []byte("pdf-bytes"))
	execute(t, fresh, def, "A", []string{"B1", "B2"}, map[string]string{
		"request": "r", "attachment": att,
	})
	got, ok := FieldValue(fresh.FinalCERs()[0].Result(), "attachment")
	if !ok {
		t.Fatal("attachment field missing")
	}
	name, _, raw, ok := DecodeAttachment(got)
	if !ok || name != "spec.pdf" || string(raw) != "pdf-bytes" {
		t.Fatalf("attachment round trip: %q %q %v", name, raw, ok)
	}
}

func TestTemplateSignVerify(t *testing.T) {
	def := wfdef.Fig9A()
	designer := cache.MustGet("designer@acme")
	tpl, err := SignTemplate(def, designer)
	if err != nil {
		t.Fatal(err)
	}
	got, err := VerifyTemplate(tpl, fig9Resolver())
	if err != nil || got.Name != def.Name {
		t.Fatalf("VerifyTemplate = %v, %v", got, err)
	}
	// Survives serialization.
	back, err := xmltree.ParseBytes(tpl.Canonical())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := VerifyTemplate(back, fig9Resolver()); err != nil {
		t.Fatal(err)
	}
	// Error paths.
	if _, err := VerifyTemplate(nil, fig9Resolver()); err == nil {
		t.Fatal("nil template verified")
	}
	if _, err := VerifyTemplate(xmltree.NewElement("Wrong"), fig9Resolver()); err == nil {
		t.Fatal("wrong element verified")
	}
	noSig := tpl.Clone()
	noSig.RemoveChild(noSig.Child("Signature"))
	if _, err := VerifyTemplate(noSig, fig9Resolver()); err == nil {
		t.Fatal("unsigned template verified")
	}
	noDef := tpl.Clone()
	noDef.RemoveChild(noDef.Child("WorkflowDefinition"))
	if _, err := VerifyTemplate(noDef, fig9Resolver()); err == nil {
		t.Fatal("definition-less template verified")
	}
	bad := wfdef.Fig9A()
	bad.Activities = nil
	if _, err := SignTemplate(bad, designer); err == nil {
		t.Fatal("invalid definition signed")
	}
}

// TestPropDocumentParseNeverPanics: network-received bytes must never
// panic the document parser.
func TestPropDocumentParseNeverPanics(t *testing.T) {
	valid := newFig9Doc(t).Bytes()
	r := rand.New(rand.NewSource(13))
	for i := 0; i < 300; i++ {
		mutated := make([]byte, len(valid))
		copy(mutated, valid)
		// Random byte-level corruption.
		for j := 0; j < 1+r.Intn(8); j++ {
			mutated[r.Intn(len(mutated))] = byte(r.Intn(256))
		}
		func() {
			defer func() {
				if rec := recover(); rec != nil {
					t.Fatalf("Parse panicked on mutation %d: %v", i, rec)
				}
			}()
			if doc, err := Parse(mutated); err == nil {
				// Even when it parses, verification must not panic.
				_, _ = doc.VerifyAll(fig9Resolver())
				_ = doc.Summary()
			}
		}()
	}
}
