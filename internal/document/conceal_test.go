package document

import (
	"strings"
	"testing"

	"dra4wfms/internal/wfdef"
	"dra4wfms/internal/xmlenc"
)

func fig4Recipients() []xmlenc.Recipient {
	return []xmlenc.Recipient{
		{ID: "tfc@cloud", Key: cache.MustGet("tfc@cloud").Public()},
		{ID: "designer@p0", Key: cache.MustGet("designer@p0").Public()},
	}
}

func fig4Resolver() mapResolver {
	m := mapResolver{}
	p := wfdef.Fig4Participants
	for _, id := range []string{"designer@p0", "tfc@cloud", p.Peter, p.Tony, p.Amy, p.John, p.Mary} {
		m[id] = cache.MustGet(id).Public()
	}
	return m
}

func newConcealedDoc(t *testing.T) (*Document, *wfdef.Definition) {
	t.Helper()
	def := wfdef.Fig4()
	doc, err := NewConcealed(def, cache.MustGet("designer@p0"), "proc-c1", t0, fig4Recipients()...)
	if err != nil {
		t.Fatal(err)
	}
	return doc, def
}

func TestNewConcealedHidesPredicates(t *testing.T) {
	doc, _ := newConcealedDoc(t)

	// The branch predicates must not appear anywhere in the document bytes.
	raw := string(doc.Bytes())
	for _, secret := range []string{"X &gt; 1000", "X > 1000", "X &lt;= 1000"} {
		if strings.Contains(raw, secret) {
			t.Fatalf("concealed document leaks predicate %q", secret)
		}
	}
	// The embedded definition shows topology but concealed guards.
	embDef, err := doc.Definition()
	if err != nil {
		t.Fatal(err)
	}
	concealed := 0
	for _, tr := range embDef.Transitions {
		if tr.Concealed {
			concealed++
			if tr.Condition != "" {
				t.Fatalf("concealed transition %s still has condition text", tr.ID)
			}
		}
	}
	if concealed != 2 {
		t.Fatalf("concealed transitions = %d, want 2", concealed)
	}
	if err := embDef.Validate(); err != nil {
		t.Fatalf("embedded stripped definition invalid: %v", err)
	}
	// The designer signature covers the vault.
	if n, err := doc.VerifyAll(fig4Resolver()); err != nil || n != 1 {
		t.Fatalf("VerifyAll = %d, %v", n, err)
	}
	if doc.ConditionVault() == nil {
		t.Fatal("no condition vault")
	}
}

func TestVaultTamperDetected(t *testing.T) {
	doc, _ := newConcealedDoc(t)
	resolver := fig4Resolver()

	// Altering the vault ciphertext breaks the designer signature.
	forged := doc.Clone()
	forged.ConditionVault().SetAttr("Injected", "1")
	if _, err := forged.VerifyAll(resolver); err == nil {
		t.Fatal("vault tamper not detected")
	}
	// Deleting the vault entirely also breaks it.
	forged2 := doc.Clone()
	wf := forged2.WorkflowElement()
	wf.RemoveChild(forged2.ConditionVault())
	if _, err := forged2.VerifyAll(resolver); err == nil {
		t.Fatal("vault removal not detected")
	}
	// Un-marking a transition as concealed breaks it too.
	forged3 := doc.Clone()
	for _, tr := range forged3.WorkflowElement().FindAll("Transition") {
		tr.RemoveAttr("Concealed")
	}
	if _, err := forged3.VerifyAll(resolver); err == nil {
		t.Fatal("topology tamper not detected")
	}
}

func TestRevealConditions(t *testing.T) {
	doc, _ := newConcealedDoc(t)
	embDef, _ := doc.Definition()

	// Only vault recipients can reveal.
	tony := cache.MustGet(wfdef.Fig4Participants.Tony)
	if err := doc.RevealConditions(embDef, tony); err == nil {
		t.Fatal("non-recipient opened the vault")
	}

	tfcKeys := cache.MustGet("tfc@cloud")
	if err := doc.RevealConditions(embDef, tfcKeys); err != nil {
		t.Fatal(err)
	}
	found := 0
	for _, tr := range embDef.Transitions {
		if tr.Concealed {
			t.Fatalf("transition %s still concealed after reveal", tr.ID)
		}
		if tr.Condition == "X > 1000" || tr.Condition == "X <= 1000" {
			found++
		}
	}
	if found != 2 {
		t.Fatalf("revealed %d conditions, want 2", found)
	}
	// The designer (second recipient) can also reveal.
	embDef2, _ := doc.Definition()
	if err := doc.RevealConditions(embDef2, cache.MustGet("designer@p0")); err != nil {
		t.Fatal(err)
	}
}

func TestRevealErrors(t *testing.T) {
	// Document without a vault.
	plain := newFig9Doc(t)
	def, _ := plain.Definition()
	if err := plain.RevealConditions(def, cache.MustGet("tfc@cloud")); err == nil {
		t.Fatal("reveal on plain document succeeded")
	}

	// Vault naming an unknown transition.
	doc, _ := newConcealedDoc(t)
	embDef, _ := doc.Definition()
	embDef.Transitions = embDef.Transitions[:2] // drop the vaulted edges
	if err := doc.RevealConditions(embDef, cache.MustGet("tfc@cloud")); err == nil {
		t.Fatal("vault with unknown transitions accepted")
	}
}

func TestNewConcealedValidation(t *testing.T) {
	def := wfdef.Fig4()
	designer := cache.MustGet("designer@p0")
	// Missing recipients.
	if _, err := NewConcealed(def, designer, "p", t0); err == nil {
		t.Fatal("no recipients accepted")
	}
	// Recipients without the TFC.
	other := xmlenc.Recipient{ID: "x@y", Key: cache.MustGet("x@y").Public()}
	if _, err := NewConcealed(def, designer, "p", t0, other); err == nil {
		t.Fatal("recipients without TFC accepted")
	}
	// Non-concealed definition.
	plain := wfdef.Fig9A()
	if _, err := NewConcealed(plain, cache.MustGet("designer@acme"), "p", t0, fig4Recipients()...); err == nil {
		t.Fatal("non-concealed definition accepted")
	}
}

func TestNewConcealedNoConditions(t *testing.T) {
	// A concealed-flow definition whose transitions happen to be all
	// unconditional needs no vault and degrades to a plain document.
	def := wfdef.NewBuilder("noconds", "designer@p0").
		Activity("A", "", "peter@p1").Response("v", "string", false).Done().
		Start("A").End("A").
		DefaultReaders("peter@p1").
		ConcealFlow("tfc@cloud").
		MustBuild()
	doc, err := NewConcealed(def, cache.MustGet("designer@p0"), "p", t0, fig4Recipients()...)
	if err != nil {
		t.Fatal(err)
	}
	if doc.ConditionVault() != nil {
		t.Fatal("unexpected vault for condition-free definition")
	}
}
