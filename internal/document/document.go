// Package document implements the DRA4WfMS document: the self-protecting,
// routed XML document that *is* the workflow process instance (Figure 8 of
// the paper).
//
// A document has three sections:
//
//   - Header: the unique process id (replay protection), definition name
//     and creation time;
//   - ApplicationDefinition: the workflow definition and security policy,
//     signed by the workflow designer — the paper's secured initial
//     document ⟨⟨Def⟩ee, [⟨Def⟩ee]Pri(A0)⟩, also written CER(A0);
//   - ActivityResults: one CER (characteristic execution result) appended
//     per executed activity. A final CER holds the element-wise encrypted
//     execution result, an optional timestamp, the routing decision, and a
//     digital signature that covers the result AND the signatures of all
//     predecessor activities — the cascade that yields nonrepudiation.
//     Under the advanced operational model an activity first contributes an
//     intermediate CER (result encrypted to the TFC server, signed by the
//     participant, the paper's CERit), and the TFC appends the final CER.
//
// Algorithm 1 of the paper — deriving the nonrepudiation scope of a CER —
// is implemented by NonrepudiationScope.
package document

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"dra4wfms/internal/dsig"
	"dra4wfms/internal/pki"
	"dra4wfms/internal/wfdef"
	"dra4wfms/internal/xmltree"
)

// Well-known element names and Ids within a DRA4WfMS document.
const (
	RootElem    = "DRA4WfMS"
	HeaderID    = "header"
	WfdefID     = "wfdef"
	DesignerSig = "sig-A0" // the designer's signature, the paper's CER(A0)
)

// CER kinds.
const (
	// KindFinal marks a complete characteristic execution result.
	KindFinal = "final"
	// KindIntermediate marks the paper's CERit: the participant's result
	// encrypted to the TFC, awaiting policy encryption and timestamping.
	KindIntermediate = "intermediate"
)

// Document wraps the XML tree of a DRA4WfMS document.
type Document struct {
	// Root is the DRA4WfMS root element.
	Root *xmltree.Node
}

// New creates the secured initial document for one process instance:
// header + workflow definition, signed by the designer. processID must be
// unique per instance (it is the replay-protection anchor; see the paper's
// Section 2.1).
func New(def *wfdef.Definition, designer *pki.KeyPair, processID string, now time.Time) (*Document, error) {
	if err := def.Validate(); err != nil {
		return nil, err
	}
	if designer.Owner != def.Designer {
		return nil, fmt.Errorf("document: definition names designer %q but signing key belongs to %q", def.Designer, designer.Owner)
	}
	if processID == "" {
		return nil, errors.New("document: empty process id")
	}
	root := xmltree.NewElement(RootElem)

	header := xmltree.NewElement("Header")
	header.SetAttr("Id", HeaderID)
	header.Elem("ProcessID", processID)
	header.Elem("DefinitionName", def.Name)
	header.Elem("CreatedAt", now.UTC().Format(time.RFC3339Nano))
	root.AppendChild(header)

	appDef := xmltree.NewElement("ApplicationDefinition")
	wf := def.ToXML()
	wf.SetAttr("Id", WfdefID)
	appDef.AppendChild(wf)
	root.AppendChild(appDef)

	root.AppendChild(xmltree.NewElement("ActivityResults"))

	sig, err := dsig.Sign(root, []string{HeaderID, WfdefID}, designer, DesignerSig)
	if err != nil {
		return nil, err
	}
	appDef.AppendChild(sig)
	return &Document{Root: root}, nil
}

// Parse reads a DRA4WfMS document from its canonical bytes.
func Parse(b []byte) (*Document, error) {
	root, err := xmltree.ParseBytes(b)
	if err != nil {
		return nil, err
	}
	if root.Name != RootElem {
		return nil, fmt.Errorf("document: root element is %q, want %s", root.Name, RootElem)
	}
	return &Document{Root: root}, nil
}

// Bytes returns the canonical serialization of the document.
func (d *Document) Bytes() []byte { return d.Root.Canonical() }

// Size returns the canonical byte size of the document — the paper's Σ
// column in Tables 1 and 2.
func (d *Document) Size() int { return len(d.Bytes()) }

// Clone returns an independent deep copy.
func (d *Document) Clone() *Document { return &Document{Root: d.Root.Clone()} }

// Header returns the header element.
func (d *Document) Header() *xmltree.Node { return d.Root.Child("Header") }

// ProcessID returns the unique process instance id.
func (d *Document) ProcessID() string {
	if h := d.Header(); h != nil {
		return h.ChildText("ProcessID")
	}
	return ""
}

// DefinitionName returns the workflow definition name from the header.
func (d *Document) DefinitionName() string {
	if h := d.Header(); h != nil {
		return h.ChildText("DefinitionName")
	}
	return ""
}

// CreatedAt returns the instant the initial document was created.
func (d *Document) CreatedAt() (time.Time, error) {
	h := d.Header()
	if h == nil {
		return time.Time{}, errors.New("document: no header")
	}
	return time.Parse(time.RFC3339Nano, h.ChildText("CreatedAt"))
}

// WorkflowElement returns the embedded WorkflowDefinition element.
func (d *Document) WorkflowElement() *xmltree.Node {
	if ad := d.Root.Child("ApplicationDefinition"); ad != nil {
		return ad.Child("WorkflowDefinition")
	}
	return nil
}

// Definition parses the embedded workflow definition.
func (d *Document) Definition() (*wfdef.Definition, error) {
	wf := d.WorkflowElement()
	if wf == nil {
		return nil, errors.New("document: no workflow definition section")
	}
	return wfdef.FromXML(wf)
}

// DesignerSignature returns the designer's signature element (CER(A0)).
func (d *Document) DesignerSignature() *xmltree.Node {
	if ad := d.Root.Child("ApplicationDefinition"); ad != nil {
		for _, c := range ad.ChildElements() {
			if c.Name == dsig.SignatureElem {
				return c
			}
		}
	}
	return nil
}

func (d *Document) resultsEl() *xmltree.Node {
	res := d.Root.Child("ActivityResults")
	if res == nil {
		res = xmltree.NewElement("ActivityResults")
		d.Root.AppendChild(res)
	}
	return res
}

// --- CER --------------------------------------------------------------------

// CER is a view over one characteristic-execution-result element.
type CER struct {
	// El is the underlying CER element.
	El *xmltree.Node
}

// ID returns the CER element's Id attribute.
func (c CER) ID() string { return c.El.AttrDefault("Id", "") }

// ActivityID returns the activity this CER belongs to.
func (c CER) ActivityID() string { return c.El.AttrDefault("ActivityID", "") }

// Iteration returns the loop iteration index (0 for the first execution).
func (c CER) Iteration() int {
	n, _ := strconv.Atoi(c.El.AttrDefault("Iteration", "0"))
	return n
}

// Kind returns KindFinal or KindIntermediate.
func (c CER) Kind() string { return c.El.AttrDefault("Kind", KindFinal) }

// Participant returns the principal recorded as the executor.
func (c CER) Participant() string { return c.El.AttrDefault("Participant", "") }

// Result returns the CER's Result element (fields, possibly encrypted).
func (c CER) Result() *xmltree.Node { return c.El.Child("Result") }

// Signature returns the CER's signature element.
func (c CER) Signature() *xmltree.Node { return c.El.Child(dsig.SignatureElem) }

// SignatureID returns the Id of the CER's signature element.
func (c CER) SignatureID() string {
	if s := c.Signature(); s != nil {
		return s.AttrDefault("Id", "")
	}
	return ""
}

// Signer returns the KeyName of the CER's signature.
func (c CER) Signer() string {
	if s := c.Signature(); s != nil {
		return dsig.SignerOf(s)
	}
	return ""
}

// Timestamp returns the TFC-embedded finish time, if present.
func (c CER) Timestamp() (time.Time, bool) {
	ts := c.El.Child("Timestamp")
	if ts == nil {
		return time.Time{}, false
	}
	t, err := time.Parse(time.RFC3339Nano, ts.TextContent())
	if err != nil {
		return time.Time{}, false
	}
	return t, true
}

// Next returns the routing decision recorded in the CER: the activity IDs
// (or wfdef.EndID) the document was forwarded to.
func (c CER) Next() []string {
	n := c.El.Child("Next")
	if n == nil {
		return nil
	}
	var out []string
	for _, to := range n.ChildElements() {
		if to.Name == "To" {
			out = append(out, to.TextContent())
		}
	}
	return out
}

// ID construction helpers; all Ids within a document derive from the
// activity ID, iteration and kind, so they are deterministic and unique.
func cerID(kind, activity string, iter int) string {
	p := "cer"
	if kind == KindIntermediate {
		p = "cer-it"
	}
	return fmt.Sprintf("%s-%s-%d", p, activity, iter)
}

func resultID(kind, activity string, iter int) string {
	p := "res"
	if kind == KindIntermediate {
		p = "res-it"
	}
	return fmt.Sprintf("%s-%s-%d", p, activity, iter)
}

// SigID returns the signature element Id for the given CER coordinates;
// exported because predecessors are referenced by signature Id.
func SigID(kind, activity string, iter int) string {
	p := "sig"
	if kind == KindIntermediate {
		p = "sig-it"
	}
	return fmt.Sprintf("%s-%s-%d", p, activity, iter)
}

// CERs returns every CER element in document order (both kinds).
func (d *Document) CERs() []CER {
	res := d.Root.Child("ActivityResults")
	if res == nil {
		return nil
	}
	var out []CER
	for _, c := range res.ChildElements() {
		if c.Name == "CER" {
			out = append(out, CER{El: c})
		}
	}
	return out
}

// FinalCERs returns only the final CERs, in document order.
func (d *Document) FinalCERs() []CER {
	var out []CER
	for _, c := range d.CERs() {
		if c.Kind() == KindFinal {
			out = append(out, c)
		}
	}
	return out
}

// FindCER returns the CER of the given kind for (activity, iteration).
func (d *Document) FindCER(kind, activity string, iter int) (CER, bool) {
	for _, c := range d.CERs() {
		if c.Kind() == kind && c.ActivityID() == activity && c.Iteration() == iter {
			return c, true
		}
	}
	return CER{}, false
}

// LatestIteration returns the highest iteration of a final CER for the
// activity, or -1 if the activity has not executed.
func (d *Document) LatestIteration(activity string) int {
	latest := -1
	for _, c := range d.FinalCERs() {
		if c.ActivityID() == activity && c.Iteration() > latest {
			latest = c.Iteration()
		}
	}
	return latest
}

// LatestFinalCER returns the final CER with the highest iteration for the
// activity.
func (d *Document) LatestFinalCER(activity string) (CER, bool) {
	iter := d.LatestIteration(activity)
	if iter < 0 {
		return CER{}, false
	}
	return d.FindCER(KindFinal, activity, iter)
}

// --- append -----------------------------------------------------------------

// AppendSpec describes one CER to append.
type AppendSpec struct {
	// ActivityID is the executed activity.
	ActivityID string
	// Iteration is the loop iteration index of this execution.
	Iteration int
	// Kind is KindFinal or KindIntermediate.
	Kind string
	// Participant is the executing principal recorded on the CER.
	Participant string
	// ResultChildren become the children of the Result element; they are
	// typically Field elements, already element-wise encrypted according to
	// the security policy (or a single EncryptedData wrapping the whole
	// result when targeting the TFC).
	ResultChildren []*xmltree.Node
	// Timestamp, when non-zero, embeds the TFC finish time inside the
	// signed scope.
	Timestamp time.Time
	// Next records the routing decision (activity IDs or wfdef.EndID);
	// empty for intermediate CERs.
	Next []string
	// PredSigIDs are the signature-element Ids of all predecessor CERs;
	// the new signature references each, forming the cascade.
	PredSigIDs []string
	// Signer signs the CER (the participant's AEA, or the TFC server).
	Signer *pki.KeyPair
	// Suite selects the signature suite for this CER's signature; nil
	// uses the process-wide default (dsig.DefaultSuite). Verification is
	// unaffected — it honors each signature's recorded algorithm.
	Suite dsig.Suite
}

// AppendCER builds, attaches and signs a CER according to spec. The
// signature covers the Result, the Timestamp and Next when present, and
// every predecessor signature listed in spec.PredSigIDs.
func (d *Document) AppendCER(spec AppendSpec) (CER, error) {
	if spec.ActivityID == "" {
		return CER{}, errors.New("document: AppendCER without activity id")
	}
	if spec.Kind != KindFinal && spec.Kind != KindIntermediate {
		return CER{}, fmt.Errorf("document: unknown CER kind %q", spec.Kind)
	}
	if spec.Signer == nil {
		return CER{}, errors.New("document: AppendCER without signer")
	}
	if len(spec.PredSigIDs) == 0 {
		return CER{}, errors.New("document: AppendCER without predecessor signatures (the cascade must not be broken)")
	}
	if _, exists := d.FindCER(spec.Kind, spec.ActivityID, spec.Iteration); exists {
		return CER{}, fmt.Errorf("document: %s CER for %s iteration %d already present (replay?)",
			spec.Kind, spec.ActivityID, spec.Iteration)
	}

	id := cerID(spec.Kind, spec.ActivityID, spec.Iteration)
	resID := resultID(spec.Kind, spec.ActivityID, spec.Iteration)
	sigID := SigID(spec.Kind, spec.ActivityID, spec.Iteration)

	cer := xmltree.NewElement("CER")
	cer.SetAttr("Id", id)
	cer.SetAttr("ActivityID", spec.ActivityID)
	cer.SetAttr("Iteration", strconv.Itoa(spec.Iteration))
	cer.SetAttr("Kind", spec.Kind)
	cer.SetAttr("Participant", spec.Participant)

	// The CER element's own attributes cannot be covered by its enveloped
	// signature (the signature is a child of the CER), so they are
	// duplicated into a signed Meta element; VerifyAll cross-checks both.
	meta := xmltree.NewElement("Meta")
	metaID := fmt.Sprintf("meta-%s-%d-%s", spec.ActivityID, spec.Iteration, spec.Kind)
	meta.SetAttr("Id", metaID)
	meta.SetAttr("ActivityID", spec.ActivityID)
	meta.SetAttr("Iteration", strconv.Itoa(spec.Iteration))
	meta.SetAttr("Kind", spec.Kind)
	meta.SetAttr("Participant", spec.Participant)
	cer.AppendChild(meta)

	result := xmltree.NewElement("Result")
	result.SetAttr("Id", resID)
	for _, c := range spec.ResultChildren {
		result.AppendChild(c)
	}
	cer.AppendChild(result)

	refs := []string{metaID, resID}
	if !spec.Timestamp.IsZero() {
		ts := cer.Elem("Timestamp", spec.Timestamp.UTC().Format(time.RFC3339Nano))
		tsID := "ts-" + spec.ActivityID + "-" + strconv.Itoa(spec.Iteration)
		ts.SetAttr("Id", tsID)
		refs = append(refs, tsID)
	}
	if len(spec.Next) > 0 {
		next := xmltree.NewElement("Next")
		nextID := fmt.Sprintf("next-%s-%d", spec.ActivityID, spec.Iteration)
		next.SetAttr("Id", nextID)
		for _, to := range spec.Next {
			next.Elem("To", to)
		}
		cer.AppendChild(next)
		refs = append(refs, nextID)
	}
	refs = append(refs, spec.PredSigIDs...)

	// Attach before signing so the references resolve within the document.
	d.resultsEl().AppendChild(cer)
	sig, err := dsig.SignWith(spec.Suite, d.Root, refs, spec.Signer, sigID)
	if err != nil {
		d.resultsEl().RemoveChild(cer)
		return CER{}, err
	}
	cer.AppendChild(sig)
	return CER{El: cer}, nil
}

// --- verification ------------------------------------------------------------

// VerifyAll checks the document end to end: the designer signature is
// present and valid, every CER's signature verifies (so no referenced
// subtree was altered), every CER signature covers the CER's own Result,
// and recorded participants match signature key names for final basic CERs
// (intermediate CERs are participant-signed, final advanced CERs are
// TFC-signed; callers with a definition can check executor assignment).
// It returns the total number of signatures verified — the quantity behind
// the paper's α column — and uses the process-wide default dsig verifier
// (parallel workers plus the verified-prefix cache).
func (d *Document) VerifyAll(resolver dsig.KeyResolver) (int, error) {
	return d.VerifyAllWith(dsig.DefaultVerifier(), resolver)
}

// VerifyAllCtx is VerifyAll carrying the caller's trace context, so the
// signature-cascade verification shows up as a dsig-tier span inside a
// sampled distributed trace.
func (d *Document) VerifyAllCtx(ctx context.Context, resolver dsig.KeyResolver) (int, error) {
	return d.verifyAllWithCtx(ctx, dsig.DefaultVerifier(), resolver)
}

// VerifyAllWith is VerifyAll with an explicit verifier, letting callers
// (benchmarks, ablations, servers with custom knobs) pick the worker count
// and prefix cache instead of the process-wide default.
//
// The cheap structural checks run serially first; the signatures then
// verify as one batch sharing a single id→digest index, so on failure the
// returned count is the number of signatures that did verify (it excludes
// the failing one).
func (d *Document) VerifyAllWith(v *dsig.Verifier, resolver dsig.KeyResolver) (int, error) {
	return d.verifyAllWithCtx(context.Background(), v, resolver)
}

func (d *Document) verifyAllWithCtx(ctx context.Context, v *dsig.Verifier, resolver dsig.KeyResolver) (int, error) {
	ds := d.DesignerSignature()
	if ds == nil {
		return 0, errors.New("document: missing designer signature")
	}
	cers := d.CERs()
	sigs := make([]*xmltree.Node, 0, len(cers)+1)
	sigs = append(sigs, ds)
	for _, c := range cers {
		sig := c.Signature()
		if sig == nil {
			return 0, fmt.Errorf("document: CER %s has no signature", c.ID())
		}
		// The signature must bind this CER's own result and meta.
		res := c.Result()
		if res == nil {
			return 0, fmt.Errorf("document: CER %s has no result", c.ID())
		}
		meta := c.El.Child("Meta")
		if meta == nil {
			return 0, fmt.Errorf("document: CER %s has no meta", c.ID())
		}
		resID := res.AttrDefault("Id", "")
		metaID := meta.AttrDefault("Id", "")
		boundRes, boundMeta := false, false
		for _, ref := range dsig.References(sig) {
			switch ref {
			case resID:
				boundRes = true
			case metaID:
				boundMeta = true
			}
		}
		if !boundRes || !boundMeta {
			return 0, fmt.Errorf("document: CER %s signature does not cover its result and meta", c.ID())
		}
		// The unsigned CER attributes must agree with the signed Meta copy.
		for _, attr := range []string{"ActivityID", "Iteration", "Kind", "Participant"} {
			if c.El.AttrDefault(attr, "") != meta.AttrDefault(attr, "") {
				return 0, fmt.Errorf("document: CER %s attribute %s disagrees with its signed meta", c.ID(), attr)
			}
		}
		sigs = append(sigs, sig)
	}
	n, idx, err := v.VerifyBatchCtx(ctx, d.Root, sigs, resolver)
	if err != nil {
		if idx == 0 {
			return n, fmt.Errorf("document: designer signature: %w", err)
		}
		return n, fmt.Errorf("document: CER %s: %w", cers[idx-1].ID(), err)
	}
	return n, nil
}

// --- merge (AND-join) ---------------------------------------------------------

// Merge combines documents of the same process instance — the AND-join of
// the paper's Section 2.1, where the resulting document carries the union
// of the branch documents' CER sets. All inputs must share identical
// header and application-definition sections. The result starts from the
// first document and appends, in encounter order, CERs present only in
// later documents.
func Merge(docs ...*Document) (*Document, error) {
	if len(docs) == 0 {
		return nil, errors.New("document: nothing to merge")
	}
	base := docs[0].Clone()
	baseHeader := docs[0].Header().Canonical()
	baseAppDef := docs[0].Root.Child("ApplicationDefinition").Canonical()
	present := map[string]bool{}
	for _, c := range base.CERs() {
		present[c.ID()] = true
	}
	for _, doc := range docs[1:] {
		if doc.ProcessID() != docs[0].ProcessID() {
			return nil, fmt.Errorf("document: cannot merge distinct process instances %q and %q",
				docs[0].ProcessID(), doc.ProcessID())
		}
		if string(doc.Header().Canonical()) != string(baseHeader) {
			return nil, errors.New("document: merge with divergent header")
		}
		if string(doc.Root.Child("ApplicationDefinition").Canonical()) != string(baseAppDef) {
			return nil, errors.New("document: merge with divergent application definition")
		}
		for _, c := range doc.CERs() {
			if present[c.ID()] {
				continue
			}
			present[c.ID()] = true
			base.resultsEl().AppendChild(c.El.Clone())
		}
	}
	return base, nil
}

// --- Algorithm 1: nonrepudiation scope ----------------------------------------

// NonrepudiationScope implements the paper's Algorithm 1: given a CER id α
// in the document, it returns the set Γ of CER ids such that the
// participant who generated α cannot deny having received a document
// containing every CER in Γ. The scope is the transitive closure of the
// "signs the signature of" relation, and always contains α itself. The
// designer's CER(A0) is represented by the pseudo-id "cer-A0" when reached.
// The result is sorted for determinism.
func (d *Document) NonrepudiationScope(alpha string) ([]string, error) {
	// Map signature id -> owning CER id.
	sigToCER := map[string]string{DesignerSig: "cer-A0"}
	cerSigns := map[string][]string{} // CER id -> signature ids it references
	found := false
	for _, c := range d.CERs() {
		if c.ID() == alpha {
			found = true
		}
		sigToCER[c.SignatureID()] = c.ID()
		if sig := c.Signature(); sig != nil {
			cerSigns[c.ID()] = dsig.References(sig)
		}
	}
	if alpha == "cer-A0" {
		found = true
	}
	if !found {
		return nil, fmt.Errorf("document: no CER %q", alpha)
	}

	scope := map[string]bool{alpha: true}
	changed := true
	for changed {
		changed = false
		for beta := range scope {
			for _, ref := range cerSigns[beta] {
				if target, ok := sigToCER[ref]; ok && !scope[target] {
					scope[target] = true
					changed = true
				}
			}
		}
	}
	out := make([]string, 0, len(scope))
	for id := range scope {
		out = append(out, id)
	}
	sort.Strings(out)
	return out, nil
}

// --- field helpers -------------------------------------------------------------

// Field builds a `<Field Variable="name">value</Field>` element, the unit
// of process-instance data inside a Result.
func Field(variable, value string) *xmltree.Node {
	f := xmltree.NewElement("Field")
	f.SetAttr("Variable", variable)
	if value != "" {
		f.AppendChild(xmltree.NewText(value))
	}
	return f
}

// FieldValue extracts the plaintext value of the named variable from a
// Result element (or any container of Field elements). Encrypted fields
// are invisible to it; decrypt first (xmlenc.DecryptVisible).
func FieldValue(container *xmltree.Node, variable string) (string, bool) {
	for _, f := range container.FindAll("Field") {
		if f.AttrDefault("Variable", "") == variable {
			return f.TextContent(), true
		}
	}
	return "", false
}

// Fields returns all plaintext Field elements under container.
func Fields(container *xmltree.Node) []*xmltree.Node {
	return container.FindAll("Field")
}

// Values collects every visible (plaintext) field in document order across
// all final CERs, later values overriding earlier ones — the current state
// of the process variables as seen by a principal who has already run
// xmlenc.DecryptVisible on the document.
func (d *Document) Values() map[string]string {
	vals := map[string]string{}
	for _, c := range d.FinalCERs() {
		res := c.Result()
		if res == nil {
			continue
		}
		for _, f := range Fields(res) {
			vals[f.AttrDefault("Variable", "")] = f.TextContent()
		}
	}
	return vals
}

// Summary renders a short human-readable description of the document state.
func (d *Document) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "process %s (%s): %d CER(s), %d bytes",
		d.ProcessID(), d.DefinitionName(), len(d.CERs()), d.Size())
	for _, c := range d.CERs() {
		fmt.Fprintf(&b, "\n  %s %s#%d by %s", c.Kind(), c.ActivityID(), c.Iteration(), c.Participant())
		if ts, ok := c.Timestamp(); ok {
			fmt.Fprintf(&b, " at %s", ts.Format(time.RFC3339))
		}
		if next := c.Next(); len(next) > 0 {
			fmt.Fprintf(&b, " -> %s", strings.Join(next, ","))
		}
	}
	return b.String()
}
