package document

import (
	"encoding/base64"
	"strings"
)

// Binary attachments — the paper's Figure 9 workflow loops on
// "attachment is insufficient" — travel inside ordinary field values using
// a self-describing encoding, so they flow through element-wise
// encryption, TFC processing, and auditing without any special casing:
//
//	dra-att:v1:<filename>:<media-type>:<base64 data>
//
// Filenames and media types are percent-free tokens; embedded ':' in the
// filename is escaped as "%3A".

const attPrefix = "dra-att:v1:"

// EncodeAttachment packs a binary attachment into a field value.
func EncodeAttachment(filename, mediaType string, data []byte) string {
	esc := strings.ReplaceAll(filename, ":", "%3A")
	return attPrefix + esc + ":" + mediaType + ":" + base64.StdEncoding.EncodeToString(data)
}

// IsAttachment reports whether a field value carries an attachment.
func IsAttachment(value string) bool { return strings.HasPrefix(value, attPrefix) }

// DecodeAttachment unpacks an attachment field value.
func DecodeAttachment(value string) (filename, mediaType string, data []byte, ok bool) {
	if !IsAttachment(value) {
		return "", "", nil, false
	}
	rest := strings.TrimPrefix(value, attPrefix)
	parts := strings.SplitN(rest, ":", 3)
	if len(parts) != 3 {
		return "", "", nil, false
	}
	raw, err := base64.StdEncoding.DecodeString(parts[2])
	if err != nil {
		return "", "", nil, false
	}
	return strings.ReplaceAll(parts[0], "%3A", ":"), parts[1], raw, true
}
