package trace

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestTraceparentRoundTrip(t *testing.T) {
	c := NewCollector(16)
	ctx, span := c.StartRoot(context.Background(), "client", "drive")
	if span == nil {
		t.Fatal("root span not sampled under AlwaysSample")
	}
	sc, ok := FromContext(ctx)
	if !ok {
		t.Fatal("context missing SpanContext after StartRoot")
	}
	header := sc.Traceparent()
	if !strings.HasPrefix(header, "00-") || !strings.HasSuffix(header, "-01") {
		t.Fatalf("traceparent = %q, want 00-…-01", header)
	}
	got, ok := ParseTraceparent(header)
	if !ok {
		t.Fatalf("ParseTraceparent(%q) failed", header)
	}
	if got != sc {
		t.Fatalf("round trip mismatch: %+v != %+v", got, sc)
	}
}

func TestParseTraceparentRejectsMalformed(t *testing.T) {
	bad := []string{
		"",
		"00-abc-def-01",
		"01-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01", // unknown version
		"00-00000000000000000000000000000000-b7ad6b7169203331-01", // zero trace id
		"00-0af7651916cd43dd8448eb211c80319c-0000000000000000-01", // zero span id
		"00-0af7651916cd43dd8448eb211c80319g-b7ad6b7169203331-01", // non-hex
		"00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331",    // missing flags
	}
	for _, s := range bad {
		if _, ok := ParseTraceparent(s); ok {
			t.Errorf("ParseTraceparent(%q) accepted malformed input", s)
		}
	}
	sc, ok := ParseTraceparent("00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-00")
	if !ok || sc.Sampled {
		t.Fatalf("valid unsampled header: ok=%v sampled=%v", ok, sc.Sampled)
	}
}

func TestParentChildLinks(t *testing.T) {
	c := NewCollector(16)
	ctx, root := c.StartRoot(context.Background(), "client", "drive")
	ctx2, child := c.StartSpan(ctx, "portal_store_seconds")
	_, grandchild := c.StartSpan(ctx2, "pool_put_seconds")
	grandchild.End()
	child.End()
	root.End()

	spans := c.Spans(root.Context().TraceID.String())
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	byName := map[string]FinishedSpan{}
	for _, fs := range spans {
		byName[fs.Name] = fs
	}
	if byName["portal_store_seconds"].ParentID != byName["drive"].SpanID {
		t.Error("child's parent is not the root")
	}
	if byName["pool_put_seconds"].ParentID != byName["portal_store_seconds"].SpanID {
		t.Error("grandchild's parent is not the child")
	}
	if byName["portal_store_seconds"].Tier != "portal" || byName["pool_put_seconds"].Tier != "pool" {
		t.Errorf("tier derivation wrong: %q, %q",
			byName["portal_store_seconds"].Tier, byName["pool_put_seconds"].Tier)
	}
	if byName["drive"].Tier != "client" {
		t.Errorf("root tier = %q, want client", byName["drive"].Tier)
	}
}

// TestSamplingDecidedOnceAtRoot is the regression test for per-hop
// resampling: with a 0% sampler the root declines and no downstream hop
// may record anything — even a hop whose own collector samples at 100% —
// and with a 100% root every hop records regardless of its local
// sampler. Partial traces must be impossible.
func TestSamplingDecidedOnceAtRoot(t *testing.T) {
	t.Run("root declines, downstream honors", func(t *testing.T) {
		rootC := NewCollector(16)
		rootC.SetSampler(NeverSample())
		downC := NewCollector(16)
		downC.SetSampler(AlwaysSample()) // must be ignored mid-trace

		ctx, span := rootC.StartRoot(context.Background(), "client", "drive")
		if span != nil {
			t.Fatal("0% sampler returned a recording root span")
		}
		sc, ok := FromContext(ctx)
		if !ok || sc.Sampled {
			t.Fatalf("unsampled root context: ok=%v sampled=%v (context must still propagate)", ok, sc.Sampled)
		}

		// Simulate the HTTP hop: serialize, parse, continue downstream.
		remote, ok := ParseTraceparent(sc.Traceparent())
		if !ok {
			t.Fatal("unsampled traceparent did not parse")
		}
		_, hop := downC.StartSpan(ContextWith(context.Background(), remote), "portal_store_seconds")
		hop.End() // nil-safe no-op
		if rootC.Len() != 0 || downC.Len() != 0 {
			t.Fatalf("unsampled trace recorded spans: root=%d down=%d", rootC.Len(), downC.Len())
		}
	})

	t.Run("root samples, downstream records", func(t *testing.T) {
		rootC := NewCollector(16)
		rootC.SetSampler(AlwaysSample())
		downC := NewCollector(16)
		downC.SetSampler(NeverSample()) // must be ignored mid-trace

		ctx, span := rootC.StartRoot(context.Background(), "client", "drive")
		if span == nil {
			t.Fatal("100% sampler declined the root")
		}
		sc, _ := FromContext(ctx)
		remote, _ := ParseTraceparent(sc.Traceparent())
		_, hop := downC.StartSpan(ContextWith(context.Background(), remote), "portal_store_seconds")
		if hop == nil {
			t.Fatal("downstream hop resampled a sampled trace away")
		}
		hop.End()
		span.End()
		if downC.Len() != 1 {
			t.Fatalf("downstream recorded %d spans, want 1", downC.Len())
		}
	})
}

func TestStartSpanWithoutContextIsInert(t *testing.T) {
	c := NewCollector(16)
	ctx, span := c.StartSpan(context.Background(), "pool_put_seconds")
	if span != nil {
		t.Fatal("StartSpan promoted a trace-free context to a root")
	}
	if _, ok := FromContext(ctx); ok {
		t.Fatal("StartSpan invented a SpanContext")
	}
	span.End()
	span.SetAttr("k", "v")
	span.SetStatus("error")
	span.SetTier("pool")
	if c.Len() != 0 {
		t.Fatal("inert span recorded")
	}
}

func TestRatioSamplerBoundaries(t *testing.T) {
	if _, ok := RatioSample(0).(neverSampler); !ok {
		t.Error("RatioSample(0) is not NeverSample")
	}
	if _, ok := RatioSample(1).(alwaysSampler); !ok {
		t.Error("RatioSample(1) is not AlwaysSample")
	}
	s := RatioSample(0.5)
	var lo, hi TraceID
	hi[0] = 0xff
	lo[15] = 1
	if !s.Sample(lo) {
		t.Error("0.5 sampler rejected a low trace ID")
	}
	if s.Sample(hi) {
		t.Error("0.5 sampler accepted a high trace ID")
	}
	// Deterministic: the same ID always gets the same verdict.
	for i := 0; i < 3; i++ {
		if s.Sample(hi) {
			t.Fatal("sampler verdict not deterministic")
		}
	}
}

func TestRingEviction(t *testing.T) {
	c := NewCollector(4)
	ctx, root := c.StartRoot(context.Background(), "client", "drive")
	root.End()
	for i := 0; i < 6; i++ {
		_, s := c.StartSpan(ctx, "portal_store_seconds")
		s.End()
	}
	if got := c.Len(); got != 4 {
		t.Fatalf("ring holds %d spans, want capacity 4", got)
	}
	spans := c.Spans("")
	if len(spans) != 4 {
		t.Fatalf("Spans returned %d, want 4", len(spans))
	}
	for i := 1; i < len(spans); i++ {
		if spans[i].Start.Before(spans[i-1].Start) {
			t.Fatal("Spans not in arrival order after wrap")
		}
	}
}

func TestBindInstance(t *testing.T) {
	c := NewCollector(4)
	_, root := c.StartRoot(context.Background(), "portal", "store_initial")
	tid := root.Context().TraceID
	c.BindInstance("p-123", tid)
	got, ok := c.InstanceTrace("p-123")
	if !ok || got != tid.String() {
		t.Fatalf("InstanceTrace = %q, %v; want %q", got, ok, tid)
	}
	if _, ok := c.InstanceTrace("p-999"); ok {
		t.Fatal("unknown instance resolved")
	}
	if b := c.Bindings(); b["p-123"] != tid.String() {
		t.Fatalf("Bindings() = %v", b)
	}
}

func TestJSONLOutput(t *testing.T) {
	c := NewCollector(8)
	var buf bytes.Buffer
	c.SetOutput(&buf)
	ctx, root := c.StartRoot(context.Background(), "client", "drive")
	_, child := c.StartSpan(ctx, "portal_store_seconds")
	child.SetAttr("doc", "X_A(0)")
	child.End()
	root.End()

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("JSONL export has %d lines, want 2", len(lines))
	}
	var fs FinishedSpan
	if err := json.Unmarshal([]byte(lines[0]), &fs); err != nil {
		t.Fatalf("line 0 not valid JSON: %v", err)
	}
	if fs.Name != "portal_store_seconds" || fs.Attrs["doc"] != "X_A(0)" {
		t.Fatalf("unexpected first exported span: %+v", fs)
	}
}

func TestAssembleAndWaterfall(t *testing.T) {
	c := NewCollector(32)
	ctx, root := c.StartRoot(context.Background(), "client", "drive")
	ctx2, portal := c.StartSpan(ctx, "portal_store_seconds")
	_, pool := c.StartSpan(ctx2, "pool_put_seconds")
	time.Sleep(time.Millisecond)
	pool.End()
	portal.End()
	_, relaySpan := c.StartSpan(ctx, "relay_delivery_seconds")
	relaySpan.SetStatus("error")
	relaySpan.End()
	root.End()

	spans := c.Spans(root.Context().TraceID.String())
	// Duplicate one span, as when two tiers serve overlapping rings.
	spans = append(spans, spans[0])
	roots := Assemble(spans)
	if len(roots) != 1 {
		t.Fatalf("Assemble produced %d roots, want 1", len(roots))
	}
	var count int
	Walk(roots, func(n *Node, depth int) {
		count++
		if n.Span.Name == "pool_put_seconds" && depth != 2 {
			t.Errorf("pool span at depth %d, want 2", depth)
		}
	})
	if count != 4 {
		t.Fatalf("tree has %d nodes, want 4 (duplicate collapsed)", count)
	}

	var buf bytes.Buffer
	Waterfall(&buf, roots)
	out := buf.String()
	for _, want := range []string{"4 spans", "portal_store_seconds", "relay_delivery_seconds", "[error]", "per-tier span time"} {
		if !strings.Contains(out, want) {
			t.Errorf("waterfall missing %q:\n%s", want, out)
		}
	}
}

func TestAssembleOrphanBecomesRoot(t *testing.T) {
	spans := []FinishedSpan{
		{TraceID: "t", SpanID: "a", Name: "root", Tier: "client"},
		{TraceID: "t", SpanID: "b", ParentID: "zz", Name: "orphan", Tier: "relay"},
	}
	roots := Assemble(spans)
	if len(roots) != 2 {
		t.Fatalf("got %d roots, want 2 (orphan promoted)", len(roots))
	}
}

func TestDoubleEndRecordsOnce(t *testing.T) {
	c := NewCollector(8)
	_, root := c.StartRoot(context.Background(), "client", "drive")
	root.End()
	root.End()
	if c.Len() != 1 {
		t.Fatalf("double End recorded %d spans", c.Len())
	}
}
