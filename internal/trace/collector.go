package trace

import (
	"context"
	"encoding/json"
	"io"
	"sync"
	"time"
)

// FinishedSpan is one completed span as kept in the ring, served by
// GET /v1/traces, and written to the JSONL export.
type FinishedSpan struct {
	TraceID  string `json:"trace_id"`
	SpanID   string `json:"span_id"`
	ParentID string `json:"parent_id,omitempty"`
	Name     string `json:"name"`
	// Tier attributes the span to an architectural tier (portal, tfc,
	// aea, pool, relay, dsig, http, client).
	Tier     string            `json:"tier"`
	Start    time.Time         `json:"start"`
	Duration time.Duration     `json:"duration_ns"`
	Status   string            `json:"status,omitempty"`
	Attrs    map[string]string `json:"attrs,omitempty"`
}

// End returns the span's completion instant.
func (f FinishedSpan) End() time.Time { return f.Start.Add(f.Duration) }

// tierOf derives the architectural tier from a span name. Metric-style
// span names here are uniformly "<tier>_<operation>_seconds", so the
// first underscore-delimited token attributes the span; StartRoot and
// SetTier override for spans that do not follow the convention.
func tierOf(name string) string {
	for i := 0; i < len(name); i++ {
		if name[i] == '_' {
			return name[:i]
		}
	}
	return name
}

// Span is one in-flight traced operation. A nil *Span is valid and
// inert — unsampled traces and trace-free contexts produce nil spans so
// call sites never branch.
type Span struct {
	c      *Collector
	ctx    SpanContext
	parent SpanID
	start  time.Time

	mu     sync.Mutex
	name   string
	tier   string
	status string
	attrs  map[string]string
	ended  bool
}

// Context returns the span's SpanContext (zero for nil spans).
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return s.ctx
}

// SetTier overrides the tier derived from the span name.
func (s *Span) SetTier(tier string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.tier = tier
	s.mu.Unlock()
}

// SetAttr attaches one key/value attribute (document IDs, CER counts,
// relay attempt numbers — metadata only, never document contents).
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.attrs == nil {
		s.attrs = map[string]string{}
	}
	s.attrs[key] = value
	s.mu.Unlock()
}

// SetStatus records the span outcome ("ok" is implied when unset).
func (s *Span) SetStatus(status string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.status = status
	s.mu.Unlock()
}

// End finishes the span and lands it in the collector ring (and the
// JSONL export, when configured). Safe on nil spans; second and later
// calls are no-ops.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	fs := FinishedSpan{
		TraceID:  s.ctx.TraceID.String(),
		SpanID:   s.ctx.SpanID.String(),
		Name:     s.name,
		Tier:     s.tier,
		Start:    s.start,
		Duration: time.Since(s.start),
		Status:   s.status,
	}
	if !s.parent.IsZero() {
		fs.ParentID = s.parent.String()
	}
	if len(s.attrs) > 0 {
		fs.Attrs = make(map[string]string, len(s.attrs))
		for k, v := range s.attrs {
			fs.Attrs[k] = v
		}
	}
	s.mu.Unlock()
	s.c.add(fs)
}

// maxBindings bounds the instance→trace table; oldest bindings are
// evicted first.
const maxBindings = 1024

// Collector keeps a bounded ring of finished spans plus the workflow
// instance → trace ID bindings registered by the portal. All methods
// are safe for concurrent use.
type Collector struct {
	mu      sync.Mutex
	ring    []FinishedSpan
	next    int
	wrapped bool

	sampler Sampler

	bindings  map[string]string // workflow instance (process) ID → trace ID
	bindOrder []string

	outMu sync.Mutex
	out   io.Writer
	enc   *json.Encoder
}

// DefaultCapacity is the ring size of the package-wide Default
// collector: enough for several full Fig-9 cascades per tier without
// unbounded growth.
const DefaultCapacity = 4096

// NewCollector creates a collector with a ring of the given capacity
// (minimum 1) that samples every trace until SetSampler says otherwise.
func NewCollector(capacity int) *Collector {
	if capacity < 1 {
		capacity = 1
	}
	return &Collector{
		ring:     make([]FinishedSpan, capacity),
		sampler:  AlwaysSample(),
		bindings: map[string]string{},
	}
}

var defaultCollector = NewCollector(DefaultCapacity)

// Default returns the process-wide collector every instrumented package
// records into.
func Default() *Collector { return defaultCollector }

// SetSampler installs the root sampling policy. Only trace roots
// consult it; mid-trace hops honor the propagated sampled flag.
func (c *Collector) SetSampler(s Sampler) {
	if s == nil {
		s = AlwaysSample()
	}
	c.mu.Lock()
	c.sampler = s
	c.mu.Unlock()
}

// SetOutput streams every finished span to w as one JSON object per
// line, in addition to the ring. nil disables the export.
func (c *Collector) SetOutput(w io.Writer) {
	c.outMu.Lock()
	c.out = w
	if w != nil {
		c.enc = json.NewEncoder(w)
	} else {
		c.enc = nil
	}
	c.outMu.Unlock()
}

func (c *Collector) add(fs FinishedSpan) {
	c.mu.Lock()
	c.ring[c.next] = fs
	c.next++
	if c.next == len(c.ring) {
		c.next = 0
		c.wrapped = true
	}
	c.mu.Unlock()

	c.outMu.Lock()
	if c.enc != nil {
		_ = c.enc.Encode(fs)
	}
	c.outMu.Unlock()
}

// StartRoot begins a new trace: it draws a fresh trace ID, consults the
// sampler exactly once, and returns ctx carrying the new SpanContext.
// The returned span is nil when the sampler declines (the context still
// propagates, with the sampled flag clear, so downstream hops stay
// consistent). tier labels the root's architectural tier.
func (c *Collector) StartRoot(ctx context.Context, tier, name string) (context.Context, *Span) {
	tid, err := newTraceID()
	if err != nil {
		return ctx, nil
	}
	sid, err := newSpanID()
	if err != nil {
		return ctx, nil
	}
	c.mu.Lock()
	sampled := c.sampler.Sample(tid)
	c.mu.Unlock()
	sc := SpanContext{TraceID: tid, SpanID: sid, Sampled: sampled}
	ctx = ContextWith(ctx, sc)
	if !sampled {
		return ctx, nil
	}
	return ctx, &Span{c: c, ctx: sc, start: time.Now(), name: name, tier: tier}
}

// StartSpan continues the trace carried by ctx with a child span. When
// ctx carries no trace — or carries one the root chose not to sample —
// it returns (ctx, nil): this package never promotes a mid-path
// operation to a trace root, and never resamples.
func (c *Collector) StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	parent, ok := FromContext(ctx)
	if !ok || !parent.Sampled {
		return ctx, nil
	}
	sid, err := newSpanID()
	if err != nil {
		return ctx, nil
	}
	sc := SpanContext{TraceID: parent.TraceID, SpanID: sid, Sampled: true}
	ctx = ContextWith(ctx, sc)
	return ctx, &Span{c: c, ctx: sc, parent: parent.SpanID, start: time.Now(), name: name, tier: tierOf(name)}
}

// BindInstance records that workflow instance (process) ID belongs to
// the given trace, so a whole cascade is queryable by either handle.
func (c *Collector) BindInstance(processID string, t TraceID) {
	if processID == "" || t.IsZero() {
		return
	}
	c.mu.Lock()
	if _, exists := c.bindings[processID]; !exists {
		c.bindOrder = append(c.bindOrder, processID)
		if len(c.bindOrder) > maxBindings {
			delete(c.bindings, c.bindOrder[0])
			c.bindOrder = c.bindOrder[1:]
		}
	}
	c.bindings[processID] = t.String()
	c.mu.Unlock()
}

// InstanceTrace resolves a workflow instance ID to its trace ID.
func (c *Collector) InstanceTrace(processID string) (string, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	t, ok := c.bindings[processID]
	return t, ok
}

// Bindings returns a copy of the instance→trace table.
func (c *Collector) Bindings() map[string]string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]string, len(c.bindings))
	for k, v := range c.bindings {
		out[k] = v
	}
	return out
}

// Spans returns finished spans in arrival order (oldest first),
// filtered to the given trace ID when traceID is non-empty.
func (c *Collector) Spans(traceID string) []FinishedSpan {
	c.mu.Lock()
	defer c.mu.Unlock()
	var ordered []FinishedSpan
	if c.wrapped {
		ordered = append(ordered, c.ring[c.next:]...)
	}
	ordered = append(ordered, c.ring[:c.next]...)
	if traceID == "" {
		return ordered
	}
	out := ordered[:0:0]
	for _, fs := range ordered {
		if fs.TraceID == traceID {
			out = append(out, fs)
		}
	}
	return out
}

// Len reports how many finished spans the ring currently holds.
func (c *Collector) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.wrapped {
		return len(c.ring)
	}
	return c.next
}

// Reset discards all finished spans and bindings (test helper).
func (c *Collector) Reset() {
	c.mu.Lock()
	c.next = 0
	c.wrapped = false
	for i := range c.ring {
		c.ring[i] = FinishedSpan{}
	}
	c.bindings = map[string]string{}
	c.bindOrder = nil
	c.mu.Unlock()
}
