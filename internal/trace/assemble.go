package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// Node is one span in an assembled trace tree.
type Node struct {
	Span     FinishedSpan
	Children []*Node
}

// Assemble builds trace trees from a flat span set (typically the merged
// /v1/traces responses of several tiers). Spans whose parent is absent
// from the set — the true root, or an orphan whose parent fell out of a
// ring — become roots. Duplicate span IDs (the same span fetched from
// two tiers) are collapsed. Children and roots are ordered by start
// time.
func Assemble(spans []FinishedSpan) []*Node {
	nodes := make(map[string]*Node, len(spans))
	order := make([]string, 0, len(spans))
	for _, fs := range spans {
		if _, dup := nodes[fs.SpanID]; dup {
			continue
		}
		nodes[fs.SpanID] = &Node{Span: fs}
		order = append(order, fs.SpanID)
	}
	var roots []*Node
	for _, id := range order {
		n := nodes[id]
		if p, ok := nodes[n.Span.ParentID]; ok && n.Span.ParentID != id {
			p.Children = append(p.Children, n)
		} else {
			roots = append(roots, n)
		}
	}
	byStart := func(ns []*Node) {
		sort.SliceStable(ns, func(i, j int) bool { return ns[i].Span.Start.Before(ns[j].Span.Start) })
	}
	byStart(roots)
	for _, n := range nodes {
		byStart(n.Children)
	}
	return roots
}

// Walk visits every node of the trees depth-first, parents before
// children, with the node's depth.
func Walk(roots []*Node, visit func(n *Node, depth int)) {
	var rec func(n *Node, depth int)
	rec = func(n *Node, depth int) {
		visit(n, depth)
		for _, c := range n.Children {
			rec(c, depth+1)
		}
	}
	for _, r := range roots {
		rec(r, 0)
	}
}

// TierTotals sums span durations per tier. Parent and child spans both
// count — the totals attribute where time was spent per tier, not
// exclusive self-time — so the per-tier numbers can exceed the trace's
// wall-clock extent.
func TierTotals(spans []FinishedSpan) map[string]time.Duration {
	out := map[string]time.Duration{}
	for _, fs := range spans {
		out[fs.Tier] += fs.Duration
	}
	return out
}

// waterfallWidth is the character width of the timing bar column.
const waterfallWidth = 32

// Waterfall renders the assembled trees as an indented waterfall: one
// line per span with tier, name, start offset from the trace's first
// span, duration, and a proportional timing bar, followed by a per-tier
// attribution summary.
func Waterfall(w io.Writer, roots []*Node) {
	var all []FinishedSpan
	Walk(roots, func(n *Node, _ int) { all = append(all, n.Span) })
	if len(all) == 0 {
		fmt.Fprintln(w, "trace: no spans")
		return
	}
	t0 := all[0].Start
	end := all[0].End()
	for _, fs := range all {
		if fs.Start.Before(t0) {
			t0 = fs.Start
		}
		if fs.End().After(end) {
			end = fs.End()
		}
	}
	extent := end.Sub(t0)
	if extent <= 0 {
		extent = time.Nanosecond
	}

	tiers := TierTotals(all)
	fmt.Fprintf(w, "trace %s: %d spans, %d tiers, %v wall clock\n",
		all[0].TraceID, len(all), len(tiers), extent.Round(time.Microsecond))

	nameWidth := 0
	Walk(roots, func(n *Node, depth int) {
		if l := 2*depth + len(n.Span.Name); l > nameWidth {
			nameWidth = l
		}
	})

	Walk(roots, func(n *Node, depth int) {
		fs := n.Span
		offset := fs.Start.Sub(t0)
		lo := int(float64(waterfallWidth) * float64(offset) / float64(extent))
		hi := int(float64(waterfallWidth) * float64(offset+fs.Duration) / float64(extent))
		if hi <= lo {
			hi = lo + 1
		}
		if hi > waterfallWidth {
			hi = waterfallWidth
		}
		bar := strings.Repeat(" ", lo) + strings.Repeat("█", hi-lo) + strings.Repeat(" ", waterfallWidth-hi)
		name := strings.Repeat("  ", depth) + fs.Name
		status := ""
		if fs.Status != "" && fs.Status != "ok" {
			status = " [" + fs.Status + "]"
		}
		attrs := ""
		if len(fs.Attrs) > 0 {
			keys := make([]string, 0, len(fs.Attrs))
			for k := range fs.Attrs {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			pairs := make([]string, len(keys))
			for i, k := range keys {
				pairs[i] = k + "=" + fs.Attrs[k]
			}
			attrs = " {" + strings.Join(pairs, " ") + "}"
		}
		fmt.Fprintf(w, "  %-6s %-*s |%s| +%-10v %10v%s%s\n",
			fs.Tier, nameWidth, name, bar,
			offset.Round(time.Microsecond), fs.Duration.Round(time.Microsecond), status, attrs)
	})

	fmt.Fprintln(w, "per-tier span time (overlapping spans double-count):")
	names := make([]string, 0, len(tiers))
	for t := range tiers {
		names = append(names, t)
	}
	sort.Slice(names, func(i, j int) bool { return tiers[names[i]] > tiers[names[j]] })
	for _, t := range names {
		d := tiers[t]
		pct := 100 * float64(d) / float64(extent)
		fmt.Fprintf(w, "  %-6s %10v  (%.0f%% of wall clock)\n", t, d.Round(time.Microsecond), pct)
	}
}
