// Package trace is a dependency-free distributed tracing layer for the
// DRA4WfMS reproduction: W3C-style trace context (128-bit trace ID,
// 64-bit span ID, a sampled flag) that propagates across HTTP hops as a
// `traceparent` header and across asynchronous relay hops inside outbox
// WAL records, plus a bounded in-process ring of finished spans that each
// tier exposes at GET /v1/traces.
//
// The paper's nonrepudiation story is an audit story — every document
// hop (AEA → portal → TFC → pool) must be reconstructible after the
// fact. Metrics histograms (internal/telemetry) answer "how slow is the
// portal store path on average"; this package answers "where did
// workflow instance X spend its time", by correlating the spans of one
// cascade under a single trace ID across every process that touched it.
//
// Sampling is decided exactly once, at the trace root. Downstream hops
// honor the inbound sampled flag verbatim and never resample, so a
// trace is always either complete across all tiers or absent entirely —
// partial traces are worse than none when attributing a signature
// cascade's latency.
package trace

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"strings"
)

// TraceID identifies one end-to-end trace (one workflow cascade's
// journey, typically).
type TraceID [16]byte

// IsZero reports whether the ID is the invalid all-zero ID.
func (t TraceID) IsZero() bool { return t == TraceID{} }

// String renders the ID as 32 lowercase hex digits.
func (t TraceID) String() string { return hex.EncodeToString(t[:]) }

// SpanID identifies one span within a trace.
type SpanID [8]byte

// IsZero reports whether the ID is the invalid all-zero ID.
func (s SpanID) IsZero() bool { return s == SpanID{} }

// String renders the ID as 16 lowercase hex digits.
func (s SpanID) String() string { return hex.EncodeToString(s[:]) }

// SpanContext is the propagated part of a trace: which trace the caller
// is in, which span is the current parent, and whether the root decided
// to sample.
type SpanContext struct {
	TraceID TraceID
	SpanID  SpanID
	Sampled bool
}

// Valid reports whether the context carries usable IDs.
func (c SpanContext) Valid() bool { return !c.TraceID.IsZero() && !c.SpanID.IsZero() }

// Version prefix of the traceparent rendering. Only version 00 is
// emitted or accepted.
const traceparentVersion = "00"

// Traceparent renders the context in W3C trace-context form:
//
//	00-<32 hex trace-id>-<16 hex span-id>-<01|00>
//
// The trailing flags octet carries only the sampled bit.
func (c SpanContext) Traceparent() string {
	flags := "00"
	if c.Sampled {
		flags = "01"
	}
	return traceparentVersion + "-" + c.TraceID.String() + "-" + c.SpanID.String() + "-" + flags
}

// ParseTraceparent parses a W3C-style traceparent header. It accepts
// only version 00 and rejects all-zero IDs, returning ok=false for
// anything malformed so callers fall back to starting a fresh root.
func ParseTraceparent(s string) (SpanContext, bool) {
	parts := strings.Split(strings.TrimSpace(s), "-")
	if len(parts) != 4 || parts[0] != traceparentVersion {
		return SpanContext{}, false
	}
	if len(parts[1]) != 32 || len(parts[2]) != 16 || len(parts[3]) != 2 {
		return SpanContext{}, false
	}
	var c SpanContext
	if _, err := hex.Decode(c.TraceID[:], []byte(parts[1])); err != nil {
		return SpanContext{}, false
	}
	if _, err := hex.Decode(c.SpanID[:], []byte(parts[2])); err != nil {
		return SpanContext{}, false
	}
	flags, err := hex.DecodeString(parts[3])
	if err != nil {
		return SpanContext{}, false
	}
	c.Sampled = flags[0]&0x01 != 0
	if !c.Valid() {
		return SpanContext{}, false
	}
	return c, true
}

// ctxKey is the private context key for SpanContext values.
type ctxKey struct{}

// ContextWith returns ctx carrying c.
func ContextWith(ctx context.Context, c SpanContext) context.Context {
	return context.WithValue(ctx, ctxKey{}, c)
}

// FromContext extracts the SpanContext stashed by ContextWith, if any.
func FromContext(ctx context.Context) (SpanContext, bool) {
	if ctx == nil {
		return SpanContext{}, false
	}
	c, ok := ctx.Value(ctxKey{}).(SpanContext)
	return c, ok && c.Valid()
}

// TraceparentFromContext renders the context's traceparent, or "" when
// the context carries no trace.
func TraceparentFromContext(ctx context.Context) string {
	c, ok := FromContext(ctx)
	if !ok {
		return ""
	}
	return c.Traceparent()
}

// newTraceID draws a random 128-bit trace ID.
func newTraceID() (TraceID, error) {
	var t TraceID
	if _, err := rand.Read(t[:]); err != nil {
		return TraceID{}, fmt.Errorf("trace: generating trace id: %w", err)
	}
	if t.IsZero() {
		t[0] = 1 // all-zero is reserved as invalid
	}
	return t, nil
}

// newSpanID draws a random 64-bit span ID.
func newSpanID() (SpanID, error) {
	var s SpanID
	if _, err := rand.Read(s[:]); err != nil {
		return SpanID{}, fmt.Errorf("trace: generating span id: %w", err)
	}
	if s.IsZero() {
		s[0] = 1
	}
	return s, nil
}

// --- sampling ----------------------------------------------------------------

// Sampler decides, once per trace and only at the root, whether the
// trace records spans. The decision rides the sampled flag to every
// downstream hop; non-root hops never consult a Sampler.
type Sampler interface {
	// Sample reports whether the trace with the given ID records.
	Sample(t TraceID) bool
}

type alwaysSampler struct{}

func (alwaysSampler) Sample(TraceID) bool { return true }

type neverSampler struct{}

func (neverSampler) Sample(TraceID) bool { return false }

// AlwaysSample records every trace.
func AlwaysSample() Sampler { return alwaysSampler{} }

// NeverSample records no traces (propagation headers still flow, with
// the sampled flag clear).
func NeverSample() Sampler { return neverSampler{} }

// ratioSampler keeps approximately ratio of traces, deciding
// deterministically from the trace ID so every process that might
// independently inspect the same ID agrees.
type ratioSampler struct {
	bound uint64
}

func (s ratioSampler) Sample(t TraceID) bool {
	return binary.BigEndian.Uint64(t[:8]) < s.bound
}

// RatioSample samples the given fraction of traces (clamped to [0, 1]).
// 0 behaves as NeverSample, 1 as AlwaysSample.
func RatioSample(ratio float64) Sampler {
	switch {
	case ratio <= 0:
		return neverSampler{}
	case ratio >= 1:
		return alwaysSampler{}
	}
	return ratioSampler{bound: uint64(ratio * float64(^uint64(0)))}
}
