package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// sensitiveWords are identifier words marking a value as a digest, MAC, or
// signature — material whose comparison must not leak timing.
var sensitiveWords = map[string]bool{
	"digest":      true,
	"digests":     true,
	"mac":         true,
	"hmac":        true,
	"sig":         true,
	"sigs":        true,
	"signature":   true,
	"signatures":  true,
	"hash":        true,
	"hashes":      true,
	"sum":         true,
	"checksum":    true,
	"sha":         true,
	"fingerprint": true,
}

// ConstTime flags variable-time comparisons of digests, MACs, and
// signature values (bytes.Equal, bytes.Compare, == / !=): a byte-wise
// early-exit comparison lets an attacker binary-search a valid MAC one
// byte at a time. crypto/subtle.ConstantTimeCompare is the fix. Test
// files are exempt — golden comparisons there are not an oracle.
var ConstTime = &Analyzer{
	Name: "consttime",
	Doc: "reports variable-time comparisons (bytes.Equal, bytes.Compare, ==) " +
		"of digests, MACs, or signatures; use crypto/subtle.ConstantTimeCompare",
	Run: runConstTime,
}

func runConstTime(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		if f.Test {
			continue
		}
		file := f.AST
		ast.Inspect(file, func(n ast.Node) bool {
			switch e := n.(type) {
			case *ast.CallExpr:
				callee, ok := pass.CalleeOf(file, e)
				if !ok || callee.PkgPath != "bytes" || (callee.Name != "Equal" && callee.Name != "Compare") {
					return true
				}
				for _, arg := range e.Args {
					if exprIsSensitive(arg) {
						pass.Reportf(e.Pos(), "bytes.%s on %s is not constant-time; use crypto/subtle.ConstantTimeCompare",
							callee.Name, describeSensitive(arg))
						break
					}
				}
			case *ast.BinaryExpr:
				if e.Op != token.EQL && e.Op != token.NEQ {
					return true
				}
				if pass.isTrivialOperand(e.X) || pass.isTrivialOperand(e.Y) {
					return true // nil / empty / constant guards are fine
				}
				if !pass.comparableSensitiveType(e.X) && !pass.comparableSensitiveType(e.Y) {
					return true
				}
				var hit ast.Expr
				switch {
				case exprIsSensitive(e.X):
					hit = e.X
				case exprIsSensitive(e.Y):
					hit = e.Y
				default:
					return true
				}
				pass.Reportf(e.Pos(), "%s comparison of %s is not constant-time; use crypto/subtle.ConstantTimeCompare",
					e.Op, describeSensitive(hit))
			}
			return true
		})
	}
}

// exprIsSensitive reports whether the operand's value is named after
// crypto material ("DigestValue", "wantMAC", "sha256.Sum256(...)"). Only
// the head of the expression describes the value being compared: for a
// call that is the function name, not its arguments (SignerOf(sig)
// returns a principal, however the argument is named).
func exprIsSensitive(e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return wordsAreSensitive(e.Name)
	case *ast.SelectorExpr:
		if x, ok := e.X.(*ast.Ident); ok && wordsAreSensitive(x.Name) {
			return true
		}
		return wordsAreSensitive(e.Sel.Name)
	case *ast.CallExpr:
		return exprIsSensitive(e.Fun)
	case *ast.IndexExpr:
		return exprIsSensitive(e.X)
	case *ast.SliceExpr:
		return exprIsSensitive(e.X)
	case *ast.StarExpr:
		return exprIsSensitive(e.X)
	case *ast.UnaryExpr:
		return exprIsSensitive(e.X)
	}
	return false
}

func wordsAreSensitive(name string) bool {
	for _, w := range splitWords(name) {
		if sensitiveWords[w] {
			return true
		}
	}
	return false
}

// describeSensitive renders the offending operand for the message.
func describeSensitive(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		if x, ok := e.X.(*ast.Ident); ok {
			return x.Name + "." + e.Sel.Name
		}
		return e.Sel.Name
	default:
		return "a digest/MAC/signature value"
	}
}

// isTrivialOperand reports operands whose comparison cannot leak secret
// timing: literals, nil, and compile-time constants (emptiness and
// sentinel checks, not content comparisons).
func (p *Pass) isTrivialOperand(e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.BasicLit:
		return true
	case *ast.Ident:
		if e.Name == "nil" || e.Name == "true" || e.Name == "false" {
			return true
		}
	}
	if p.Pkg.Info != nil {
		if tv, ok := p.Pkg.Info.Types[e]; ok && tv.Value != nil {
			return true
		}
	}
	return false
}

// comparableSensitiveType restricts == findings to value kinds that can
// actually hold crypto material: strings and byte arrays. Without type
// information the check is permissive.
func (p *Pass) comparableSensitiveType(e ast.Expr) bool {
	if p.Pkg.Info == nil {
		return true
	}
	t := p.Pkg.Info.TypeOf(e)
	if t == nil {
		return true
	}
	switch t := t.Underlying().(type) {
	case *types.Basic:
		return t.Info()&types.IsString != 0
	case *types.Array:
		elem, ok := t.Elem().Underlying().(*types.Basic)
		return ok && elem.Kind() == types.Byte
	}
	return false
}
