package lint

import (
	"go/ast"
	"sort"
	"strings"
)

// ackDurablePkgs are the packages whose append/sync/checkpoint calls
// constitute the durability point of a write: once one of them returns
// nil, the write survives a crash. Matched by import-path suffix so the
// rule works on testdata fixture modules too.
var ackDurablePkgs = []string{
	"internal/pool",
	"internal/poolcluster",
	"internal/relay",
	"internal/tfc",
}

// ackDurableWords are the identifier words marking a durable-write call
// within those packages (or (os.File).Sync anywhere).
var ackDurableWords = map[string]bool{
	"append":     true,
	"sync":       true,
	"journal":    true,
	"checkpoint": true,
	"persist":    true,
	"flush":      true,
	"wal":        true,
}

// ackWords are the identifier words marking a call that signals success
// to a remote party — an HTTP response, a protocol acknowledgement, a
// notification. Ack-named operations *inside* the durability packages
// (relay's Outbox.Ack, for one) are excluded: there the "ack" is itself
// a journal append, not an outward promise.
var ackWords = map[string]bool{
	"ack":         true,
	"acked":       true,
	"acknowledge": true,
	"respond":     true,
	"reply":       true,
	"notify":      true,
}

// AckOrder flags functions that can acknowledge a write before making it
// durable. The WAL protocol of the pool, relay and TFC tiers is
// append → sync → ack: the moment a success response leaves the process,
// the write it confirms must already be on disk, or a crash in the gap
// silently loses an acknowledged update (exactly the PR 5 family of
// bugs: the TFC acked record submissions whose replay-guard journaling
// had been skipped or had failed).
//
// The check is path-sensitive over the intraprocedural CFG: an
// acknowledgement call A is flagged for a durable call D when (a) D is
// still ahead of A on some path, and (b) some path from function entry
// reaches A without executing D itself. Condition (a) keeps pure
// error-responders clean — a validation NACK followed by an immediate
// return promises nothing durable; condition (b) keeps the
// journal-first-then-ack loop body clean (the "next iteration's append"
// reachable over the back edge is the same call that already dominates
// the ack) while still catching an append whose fsync is ahead.
var AckOrder = &Analyzer{
	Name: "ackorder",
	Doc: "reports paths where a success acknowledgement executes before the " +
		"corresponding pool/poolcluster/relay/tfc WAL append or sync; journal " +
		"first, then ack (exempt in _test.go files)",
	Run: runAckOrder,
}

func runAckOrder(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		if f.Test {
			continue
		}
		file := f.AST
		ast.Inspect(file, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					pass.checkAckOrder(file, fn.Body)
				}
			case *ast.FuncLit:
				pass.checkAckOrder(file, fn.Body)
			}
			return true
		})
	}
}

// classifyAckCalls partitions the top-level calls of body (closures
// excluded — they are analyzed as their own scope) into acknowledgement
// and durable-write calls.
func (p *Pass) classifyAckCalls(file *ast.File, body *ast.BlockStmt) (acks, durs map[*ast.CallExpr]Callee) {
	acks = map[*ast.CallExpr]Callee{}
	durs = map[*ast.CallExpr]Callee{}
	scopedInspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee, ok := p.CalleeOf(file, call)
		if !ok {
			return true
		}
		switch {
		case isDurableWrite(callee):
			durs[call] = callee
		case isAckCall(callee):
			acks[call] = callee
		}
		return true
	})
	return acks, durs
}

func isDurableWrite(c Callee) bool {
	if c.Recv == "File" && c.Name == "Sync" && c.PkgPath == "os" {
		return true
	}
	inDurablePkg := false
	for _, suffix := range ackDurablePkgs {
		if c.InPkg(suffix) {
			inDurablePkg = true
			break
		}
	}
	if !inDurablePkg {
		return false
	}
	for _, w := range splitWords(c.Name) {
		if ackDurableWords[w] {
			return true
		}
	}
	return false
}

func isAckCall(c Callee) bool {
	// Ack-named operations inside the durability packages are journal
	// mutations, not outward acknowledgements.
	for _, suffix := range ackDurablePkgs {
		if c.InPkg(suffix) {
			return false
		}
	}
	for _, w := range splitWords(c.Name) {
		if ackWords[w] {
			return true
		}
	}
	return false
}

func (p *Pass) checkAckOrder(file *ast.File, body *ast.BlockStmt) {
	acks, durs := p.classifyAckCalls(file, body)
	if len(acks) == 0 || len(durs) == 0 {
		return
	}
	cfg := NewCFG(body)

	// executes returns a stop predicate matching the specific call dur.
	executes := func(dur *ast.CallExpr) func(ast.Node) bool {
		return func(n ast.Node) bool {
			hit := false
			ast.Inspect(n, func(m ast.Node) bool {
				if m == ast.Node(dur) {
					hit = true
				}
				return !hit
			})
			return hit
		}
	}

	for ack, ackCallee := range acks {
		ackPt, ok := cfg.PointOf(ack)
		if !ok {
			continue
		}
		var pending []string
		for dur, durCallee := range durs {
			durPt, ok := cfg.PointOf(dur)
			if !ok {
				continue
			}
			// (a) Is this durable write still ahead of the ack on some
			// path — is the ack vouching for a write yet to happen?
			if !cfg.PathExists(ackPt, durPt, nil) {
				continue
			}
			// (b) Can the ack run without this durable call having
			// executed? If every entry path passes it, the "write ahead"
			// is just the next loop iteration's.
			if !cfg.PathExists(cfg.EntryPoint(), ackPt, executes(dur)) {
				continue
			}
			pending = append(pending, durCallee.String())
		}
		if len(pending) == 0 {
			continue
		}
		p.Reportf(ack.Pos(),
			"%s acknowledges success before %s makes the write durable; a crash between the two loses an acknowledged update — append and sync the journal first, then ack",
			ackCallee.String(), strings.Join(uniqueSorted(pending), ", "))
	}
}

// uniqueSorted returns the sorted, deduplicated elements of xs.
func uniqueSorted(xs []string) []string {
	sort.Strings(xs)
	var out []string
	for _, x := range xs {
		if len(out) == 0 || x != out[len(out)-1] {
			out = append(out, x)
		}
	}
	return out
}
