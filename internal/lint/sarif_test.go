package lint

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestWriteSARIF pins the shape code scanning consumes: version, the
// stable rule table, one result per diagnostic with a root-relative
// forward-slash URI, and suppression records for ignored findings.
func TestWriteSARIF(t *testing.T) {
	pkgs := loadFixture(t, "./lintfix/spanleak")
	res := Run(pkgs, []*Analyzer{SpanLeak})
	if len(res.Diagnostics) == 0 || len(res.Suppressed) == 0 {
		t.Fatalf("fixture must yield active and suppressed findings, got %d/%d",
			len(res.Diagnostics), len(res.Suppressed))
	}

	var buf bytes.Buffer
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteSARIF(&buf, res, All(), root); err != nil {
		t.Fatalf("WriteSARIF: %v", err)
	}

	var log struct {
		Schema  string `json:"$schema"`
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID               string `json:"id"`
						ShortDescription struct {
							Text string `json:"text"`
						} `json:"shortDescription"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				RuleIndex int    `json:"ruleIndex"`
				Level     string `json:"level"`
				Message   struct {
					Text string `json:"text"`
				} `json:"message"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine int `json:"startLine"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
				Suppressions []struct {
					Kind          string `json:"kind"`
					Justification string `json:"justification"`
				} `json:"suppressions"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(buf.Bytes(), &log); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if log.Version != "2.1.0" || !strings.Contains(log.Schema, "sarif") {
		t.Errorf("version/schema = %q / %q, want 2.1.0 and a sarif schema URI", log.Version, log.Schema)
	}
	if len(log.Runs) != 1 {
		t.Fatalf("runs = %d, want 1", len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "dralint" {
		t.Errorf("driver name = %q", run.Tool.Driver.Name)
	}
	if got, want := len(run.Tool.Driver.Rules), len(All()); got != want {
		t.Errorf("rule table has %d entries, want every analyzer (%d)", got, want)
	}
	if got, want := len(run.Results), len(res.Diagnostics)+len(res.Suppressed); got != want {
		t.Fatalf("results = %d, want %d (active + suppressed)", got, want)
	}

	var suppressed int
	for _, r := range run.Results {
		if r.RuleID == "" || len(r.Locations) == 0 {
			t.Errorf("result missing ruleId or location: %+v", r)
			continue
		}
		if r.RuleIndex < 0 || run.Tool.Driver.Rules[r.RuleIndex].ID != r.RuleID {
			t.Errorf("ruleIndex %d does not resolve to %q", r.RuleIndex, r.RuleID)
		}
		uri := r.Locations[0].PhysicalLocation.ArtifactLocation.URI
		if strings.HasPrefix(uri, "/") || strings.Contains(uri, "\\") {
			t.Errorf("URI %q is not root-relative with forward slashes", uri)
		}
		if !strings.HasPrefix(uri, "internal/lint/testdata/") {
			t.Errorf("URI %q not relativized against the module root", uri)
		}
		if r.Locations[0].PhysicalLocation.Region.StartLine <= 0 {
			t.Errorf("result without a start line: %+v", r)
		}
		for _, s := range r.Suppressions {
			suppressed++
			if s.Kind != "inSource" || s.Justification == "" {
				t.Errorf("suppression without kind/justification: %+v", s)
			}
		}
	}
	if suppressed != len(res.Suppressed) {
		t.Errorf("suppression records = %d, want %d", suppressed, len(res.Suppressed))
	}
}

// TestLoaderImporterModes pins that the fixture module type-checks and
// yields identical diagnostics under both concrete stdlib importers —
// the gc export-data reader and the pure source importer.
func TestLoaderImporterModes(t *testing.T) {
	diagsUnder := func(mode string) []Diagnostic {
		t.Helper()
		loader, err := NewLoader("dra4wfms", "testdata/src/dra4wfms")
		if err != nil {
			t.Fatalf("NewLoader: %v", err)
		}
		loader.Importer = mode
		pkgs, err := loader.Load("./lintfix/ctxprop")
		if err != nil {
			t.Fatalf("Load under %q: %v", mode, err)
		}
		for _, pkg := range pkgs {
			for _, terr := range pkg.TypeErrors {
				t.Errorf("importer %q: type error: %v", mode, terr)
			}
		}
		return Run(pkgs, []*Analyzer{CtxProp}).Diagnostics
	}

	gc := diagsUnder("gc")
	src := diagsUnder("source")
	if len(gc) == 0 {
		t.Fatal("gc importer run found no diagnostics in a seeded fixture")
	}
	if len(gc) != len(src) {
		t.Fatalf("importer modes disagree: gc=%d source=%d", len(gc), len(src))
	}
	for i := range gc {
		if gc[i].Message != src[i].Message || gc[i].Position.Line != src[i].Position.Line {
			t.Errorf("diagnostic %d differs between importers:\ngc:     %s\nsource: %s", i, gc[i], src[i])
		}
	}

	loader, err := NewLoader("dra4wfms", "testdata/src/dra4wfms")
	if err != nil {
		t.Fatal(err)
	}
	loader.Importer = "bogus"
	if _, err := loader.Load("./lintfix/ctxprop"); err == nil {
		// The bad mode surfaces as type errors on the unit, not a Load
		// failure; check those instead.
		pkgs, _ := loader.Load("./lintfix/ctxprop")
		clean := true
		for _, pkg := range pkgs {
			if len(pkg.TypeErrors) > 0 {
				clean = false
			}
		}
		if clean {
			t.Error("unknown importer mode produced neither a load error nor type errors")
		}
	}
}
