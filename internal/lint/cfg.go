package lint

// cfg.go builds an intraprocedural control-flow graph over a function
// body. The lexical scans of the original analyzers (spanleak's
// "no return between Start and End") answer ordering questions only for
// straight-line code; the ackorder and ctxprop analyzers need real
// path-sensitivity — "can an acknowledgement execute before the WAL
// append on SOME path?", "can the parent context reach a call while the
// derived span is still open?" — which is a reachability query over this
// graph.
//
// The graph is statement-granular: every basic block holds an ordered
// list of ast.Nodes — simple statements plus the condition/tag
// expressions of the control statements that terminate a block. Composite
// statements (if/for/switch/select) are decomposed into blocks and edges
// rather than stored, so each node appears in exactly one block and
// ordering queries are well-defined.
//
// Modeling choices, all conservative for the existential queries the
// analyzers ask (a missing edge can only hide a finding, never invent
// one):
//
//   - goto jumps to the synthetic exit block (the repo bans goto in
//     practice; the edge just keeps the graph connected);
//   - panics and process exits are not modeled — a node's successors are
//     its syntactic continuations;
//   - function literals are opaque expressions: their bodies contribute no
//     blocks. Analyzers scan closures separately (a closure owns the
//     lifetimes it captures).

import "go/ast"

// A Block is a maximal straight-line node sequence of a CFG. Execution
// enters at Nodes[0], runs the nodes in order, and continues at one of
// Succs.
type Block struct {
	// Index is the block's position in CFG.Blocks (creation order;
	// deterministic across runs).
	Index int
	// Nodes are the simple statements and branch conditions of the block,
	// in execution order.
	Nodes []ast.Node
	// Succs are the possible successor blocks.
	Succs []*Block
}

// A CFG is the control-flow graph of one function body.
type CFG struct {
	// Blocks lists every block, entry first.
	Blocks []*Block
	// Entry is the block execution starts in.
	Entry *Block
	// Exit is the synthetic, empty block every return and fall-off-the-end
	// path reaches.
	Exit *Block
}

// A Point addresses one node of a CFG: Block.Nodes[Index]. Index -1
// addresses the block's entry edge (before its first node) — the form
// EntryPoint returns.
type Point struct {
	Block *Block
	Index int
}

// EntryPoint is the point just before the first node of the entry block;
// PathExists from it asks "can execution reach ... from function entry".
func (c *CFG) EntryPoint() Point {
	return Point{Block: c.Entry, Index: -1}
}

// PointOf locates the CFG node containing n (by position range) and
// returns its point. The innermost containing node wins, so a call in an
// if-condition maps to the condition expression, not the surrounding
// statement. The second result is false when n is outside every block —
// e.g. inside a function literal, which contributes no blocks.
func (c *CFG) PointOf(n ast.Node) (Point, bool) {
	var (
		best     Point
		bestSpan = -1
		found    bool
	)
	for _, b := range c.Blocks {
		for i, node := range b.Nodes {
			if node.Pos() > n.Pos() || node.End() < n.End() {
				continue
			}
			span := int(node.End() - node.Pos())
			if !found || span < bestSpan {
				best, bestSpan, found = Point{Block: b, Index: i}, span, true
			}
		}
	}
	return best, found
}

// PathExists reports whether execution can flow from the point after
// `from` to `to` without first executing a node for which stop returns
// true. The nodes at from and to themselves are not tested against stop;
// a nil stop never blocks. Loops are followed, so the query is "on at
// least one (possibly cyclic) execution path".
func (c *CFG) PathExists(from, to Point, stop func(ast.Node) bool) bool {
	blocked := func(n ast.Node) bool { return stop != nil && stop(n) }

	// scan walks b.Nodes[start:], returning (reached, fellThrough).
	scan := func(b *Block, start int) (bool, bool) {
		for i := start; i < len(b.Nodes); i++ {
			if b == to.Block && i == to.Index {
				return true, false
			}
			if blocked(b.Nodes[i]) {
				return false, false
			}
		}
		return false, true
	}

	reached, fell := scan(from.Block, from.Index+1)
	if reached {
		return true
	}
	if !fell {
		return false
	}
	visited := map[*Block]bool{}
	frontier := append([]*Block(nil), from.Block.Succs...)
	for len(frontier) > 0 {
		b := frontier[len(frontier)-1]
		frontier = frontier[:len(frontier)-1]
		if visited[b] {
			continue
		}
		visited[b] = true
		reached, fell := scan(b, 0)
		if reached {
			return true
		}
		if fell {
			frontier = append(frontier, b.Succs...)
		}
	}
	return false
}

// NewCFG builds the control-flow graph of body.
func NewCFG(body *ast.BlockStmt) *CFG {
	b := &cfgBuilder{cfg: &CFG{}}
	b.cfg.Entry = b.newBlock()
	b.cfg.Exit = b.newBlock()
	last := b.stmtList(b.cfg.Entry, body.List)
	b.edge(last, b.cfg.Exit) // fall off the end
	return b.cfg
}

type loopFrame struct {
	label     string
	brk, cont *Block
}

type cfgBuilder struct {
	cfg   *CFG
	loops []loopFrame
	// pendingLabel names the labeled statement being built, so the loop it
	// labels registers the label for targeted break/continue.
	pendingLabel string
}

func (b *cfgBuilder) newBlock() *Block {
	blk := &Block{Index: len(b.cfg.Blocks)}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

// edge adds cur → next unless cur is nil (unreachable continuation).
func (b *cfgBuilder) edge(cur, next *Block) {
	if cur == nil || next == nil {
		return
	}
	for _, s := range cur.Succs {
		if s == next {
			return
		}
	}
	cur.Succs = append(cur.Succs, next)
}

// stmtList threads the statements through cur, returning the block the
// list falls out of (nil when every path diverted — returned, broke,
// continued).
func (b *cfgBuilder) stmtList(cur *Block, list []ast.Stmt) *Block {
	for _, s := range list {
		cur = b.stmt(cur, s)
	}
	return cur
}

// append records a simple node in cur; a nil cur (dead code after
// return/break) swallows it.
func (b *cfgBuilder) append(cur *Block, n ast.Node) {
	if cur != nil && n != nil {
		cur.Nodes = append(cur.Nodes, n)
	}
}

func (b *cfgBuilder) stmt(cur *Block, s ast.Stmt) *Block {
	if cur == nil {
		// Dead code still needs blocks (a label could re-enter it in
		// principle); keep it simple and give it an unreachable block so
		// its nodes exist for PointOf.
		cur = b.newBlock()
	}
	switch st := s.(type) {
	case *ast.BlockStmt:
		return b.stmtList(cur, st.List)

	case *ast.IfStmt:
		b.append(cur, st.Init)
		b.append(cur, st.Cond)
		after := b.newBlock()
		thenB := b.newBlock()
		b.edge(cur, thenB)
		thenEnd := b.stmtList(thenB, st.Body.List)
		b.edge(thenEnd, after)
		if st.Else != nil {
			elseB := b.newBlock()
			b.edge(cur, elseB)
			b.edge(b.stmt(elseB, st.Else), after)
		} else {
			b.edge(cur, after)
		}
		return after

	case *ast.ForStmt:
		b.append(cur, st.Init)
		label := b.takeLabel()
		cond := b.newBlock()
		body := b.newBlock()
		after := b.newBlock()
		post := b.newBlock()
		b.edge(cur, cond)
		b.append(cond, st.Cond)
		b.edge(cond, body)
		if st.Cond != nil {
			b.edge(cond, after)
		}
		b.loops = append(b.loops, loopFrame{label: label, brk: after, cont: post})
		bodyEnd := b.stmtList(body, st.Body.List)
		b.loops = b.loops[:len(b.loops)-1]
		b.edge(bodyEnd, post)
		b.append(post, st.Post)
		b.edge(post, cond)
		return after

	case *ast.RangeStmt:
		label := b.takeLabel()
		head := b.newBlock()
		body := b.newBlock()
		after := b.newBlock()
		b.edge(cur, head)
		b.append(head, st.X)
		b.edge(head, body)
		b.edge(head, after) // empty collection
		b.loops = append(b.loops, loopFrame{label: label, brk: after, cont: head})
		bodyEnd := b.stmtList(body, st.Body.List)
		b.loops = b.loops[:len(b.loops)-1]
		b.edge(bodyEnd, head)
		return after

	case *ast.SwitchStmt:
		b.append(cur, st.Init)
		b.append(cur, st.Tag)
		return b.caseClauses(cur, st.Body.List, true)

	case *ast.TypeSwitchStmt:
		b.append(cur, st.Init)
		b.append(cur, st.Assign)
		return b.caseClauses(cur, st.Body.List, true)

	case *ast.SelectStmt:
		return b.caseClauses(cur, st.Body.List, false)

	case *ast.LabeledStmt:
		b.pendingLabel = st.Label.Name
		next := b.stmt(cur, st.Stmt)
		b.pendingLabel = ""
		return next

	case *ast.ReturnStmt:
		b.append(cur, st)
		b.edge(cur, b.cfg.Exit)
		return nil

	case *ast.BranchStmt:
		b.append(cur, st)
		b.edge(cur, b.branchTarget(st))
		return nil

	default:
		// Simple statements: assignments, expressions, defers, go, send,
		// inc/dec, declarations.
		b.append(cur, s)
		return cur
	}
}

// caseClauses wires switch/select clause bodies: every clause is a
// successor of cur; a defaultless switch can fall through to after.
func (b *cfgBuilder) caseClauses(cur *Block, clauses []ast.Stmt, breakable bool) *Block {
	after := b.newBlock()
	if breakable {
		b.loops = append(b.loops, loopFrame{label: b.takeLabel(), brk: after, cont: nil})
		defer func() { b.loops = b.loops[:len(b.loops)-1] }()
	}
	hasDefault := false
	var prevEnd *Block // a fallthrough-terminated previous clause
	for _, cs := range clauses {
		blk := b.newBlock()
		b.edge(cur, blk)
		var list []ast.Stmt
		switch clause := cs.(type) {
		case *ast.CaseClause:
			for _, e := range clause.List {
				b.append(blk, e)
			}
			if clause.List == nil {
				hasDefault = true
			}
			list = clause.Body
		case *ast.CommClause:
			b.append(blk, clause.Comm)
			if clause.Comm == nil {
				hasDefault = true
			}
			list = clause.Body
		}
		// A trailing fallthrough in the previous clause continues here.
		if prevEnd != nil {
			b.edge(prevEnd, blk)
		}
		end := b.stmtList(blk, list)
		prevEnd = nil
		if n := len(list); n > 0 {
			if br, ok := list[n-1].(*ast.BranchStmt); ok && br.Tok.String() == "fallthrough" {
				prevEnd = end
			}
		}
		if prevEnd == nil {
			b.edge(end, after)
		}
	}
	// A select blocks until a comm fires; a switch without a default can
	// match nothing and fall through.
	if !hasDefault {
		b.edge(cur, after)
	}
	return after
}

// takeLabel consumes the pending statement label, if any.
func (b *cfgBuilder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

// branchTarget resolves break/continue/goto to a block.
func (b *cfgBuilder) branchTarget(st *ast.BranchStmt) *Block {
	tok := st.Tok.String()
	if tok == "goto" || tok == "fallthrough" {
		// goto: unmodeled, route to exit (conservative for existential
		// queries). fallthrough is handled by caseClauses; a stray one
		// (invalid Go) also routes to exit.
		return b.cfg.Exit
	}
	for i := len(b.loops) - 1; i >= 0; i-- {
		fr := b.loops[i]
		if st.Label != nil && fr.label != st.Label.Name {
			continue
		}
		if tok == "continue" {
			if fr.cont == nil {
				continue // a switch frame: continue targets the enclosing loop
			}
			return fr.cont
		}
		return fr.brk
	}
	return b.cfg.Exit
}
